"""Critical-path analyzer: exact decomposition, path extraction, what-ifs."""

import numpy as np
import pytest

from repro.chem.basis.basisset import BasisSet
from repro.chem.builders import benzene, water
from repro.fock.reorder import reorder_basis
from repro.fock.screening_map import ScreeningMap
from repro.fock.simulate import SimCapture, simulate_gtfock
from repro.integrals.schwarz import schwarz_model
from repro.obs.critpath import (
    DECOMP_TOL,
    analyze,
    decompose,
    extract_path,
    rank_chains,
)
from repro.obs.trace import Tracer
from repro.runtime.faults import random_plan


def _capture(mol, cores=48, basis_name="sto-3g", faults=None, **kw):
    basis = reorder_basis(BasisSet.build(mol, basis_name))
    screen = ScreeningMap(basis, schwarz_model(basis), 1e-10)
    capture = SimCapture()
    simulate_gtfock(
        basis, screen, cores, tracer=Tracer("test-critpath"),
        capture=capture, molecule_name=mol.name, faults=faults, **kw,
    )
    return capture


@pytest.fixture(scope="module")
def water_capture():
    return _capture(water())


class TestDecomposition:
    @pytest.mark.parametrize("cores", [48, 192])
    def test_exact_on_table3_style_runs(self, cores):
        """Acceptance: per-rank decomposition sums to makespan to 1e-9."""
        decomp = decompose(_capture(water(), cores=cores))
        assert not decomp.faulty
        assert decomp.max_residual <= DECOMP_TOL
        decomp.check()  # must not raise

    def test_exact_on_larger_molecule(self):
        decomp = decompose(_capture(benzene(), cores=192))
        assert decomp.max_residual <= DECOMP_TOL

    def test_rank_totals_rebuild_end_times(self, water_capture):
        decomp = decompose(water_capture)
        for r in decomp.ranks:
            rebuilt = r.compute + r.comm_total + r.blocked + r.residual
            assert rebuilt == pytest.approx(r.end, abs=1e-12)
            assert r.idle == pytest.approx(decomp.makespan - r.end, abs=1e-12)

    def test_idle_fraction_bounds(self, water_capture):
        decomp = decompose(water_capture)
        assert 0.0 <= decomp.idle_fraction < 1.0

    def test_comm_channels_are_positive(self, water_capture):
        decomp = decompose(water_capture)
        for r in decomp.ranks:
            assert all(v > 0 for v in r.comm.values())


class TestDeterminism:
    def test_event_stream_and_decomposition_repeatable(self):
        """Same inputs resolve the same event order and decomposition."""
        a, b = _capture(water()), _capture(water())
        assert a.events == b.events
        da, db = decompose(a), decompose(b)
        assert da.makespan == db.makespan
        for ra, rb in zip(da.ranks, db.ranks):
            assert ra.to_json() == rb.to_json()

    def test_decomposition_invariant_under_stealing_toggle_structure(self):
        # the invariant holds whether or not stealing rearranged work
        decomp = decompose(_capture(water(), enable_stealing=False))
        assert decomp.max_residual <= DECOMP_TOL


class TestCriticalPath:
    def test_explains_full_makespan_fault_free(self, water_capture):
        path = extract_path(water_capture)
        assert path.hops == []
        assert path.explained_ratio == pytest.approx(1.0, abs=1e-9)

    def test_blame_sums_to_path_length(self, water_capture):
        path = extract_path(water_capture)
        assert sum(t for _, t, _ in path.blame()) == pytest.approx(
            path.length
        )
        # ranked descending
        seconds = [t for _, t, _ in path.blame()]
        assert seconds == sorted(seconds, reverse=True)

    def test_chains_tile_each_rank(self, water_capture):
        chains = rank_chains(water_capture)
        finish = np.asarray(water_capture.finish, dtype=float)
        for p, chain in enumerate(chains):
            assert chain[0].start == pytest.approx(0.0, abs=1e-12)
            assert chain[-1].end == pytest.approx(finish[p], abs=1e-9)
            for prev, nxt in zip(chain, chain[1:]):
                assert nxt.start == pytest.approx(prev.end, abs=1e-9)


class TestWhatIfs:
    def test_projections_within_tolerance_of_resim(self, water_capture):
        """Acceptance: network-2x and steal-off within 15% of re-sim."""
        analysis = analyze(water_capture, resim=True, network_scale=2.0)
        by_name = {w.name: w for w in analysis.whatifs}
        for name in ("network_2x", "no_stealing"):
            w = by_name[name]
            assert w.resim_makespan is not None
            assert w.rel_err <= 0.15, (
                f"{name}: {w.rel_err:.1%} off re-simulation"
            )
        analysis.check()  # full gate: decomposition + verdicts

    def test_network_slowdown_projects_slowdown(self, water_capture):
        analysis = analyze(water_capture, resim=False, network_scale=2.0)
        by_name = {w.name: w for w in analysis.whatifs}
        assert by_name["network_2x"].speedup < 1.0
        assert by_name["perfect_balance"].speedup >= 1.0
        # without resim every scenario is projection-only
        assert all(w.resim_makespan is None for w in analysis.whatifs)

    def test_summary_round_trips_to_json(self, water_capture):
        import json

        analysis = analyze(water_capture, resim=False)
        blob = json.dumps(analysis.to_json())
        assert "decomposition" in blob and "whatifs" in blob
        s = analysis.summary()
        assert s["decomposition_ok"] is True
        assert s["explained_ratio"] == pytest.approx(1.0, abs=1e-9)


class TestFaultyRuns:
    def test_faulty_run_analyzes_without_raising(self):
        clean = _capture(water())
        plan = random_plan(
            3, 4, horizon=float(np.max(np.asarray(clean.finish)))
        )
        capture = _capture(water(), faults=plan)
        decomp = decompose(capture)
        assert decomp.faulty  # residual tolerance relaxed under faults
        decomp.check()  # must not raise on faulty runs
        analysis = analyze(capture, resim=False)
        assert analysis.path is not None
        assert analysis.summary()["explained_ratio"] > 0.0

    def test_adoption_blockage_and_hop_recorded(self):
        """Killing the bounding rank late stalls the finished ranks.

        The survivors' blocked wait must be charged explicitly, and the
        critical path must hop from a blocked segment into the dead
        rank's chain at the death instant.
        """
        from repro.runtime.faults import FaultPlan

        clean = _capture(water())
        finish = np.asarray(clean.finish, dtype=float)
        plan = FaultPlan(
            seed=0,
            deaths={int(finish.argmax()): float(finish.max()) * 0.99},
        )
        capture = _capture(water(), faults=plan)
        decomp = decompose(capture)
        assert any(r.blocked > 0 for r in decomp.ranks)
        path = extract_path(capture)
        assert len(path.hops) >= 1
        _waiting, dead, _when = path.hops[0]
        assert dead == int(finish.argmax())
        assert any(s.kind == "blocked" for s in path.segments)


class TestMetricsExport:
    def test_gauges_exported(self, water_capture):
        from repro.obs.metrics import MetricsRegistry, set_metrics

        reg = MetricsRegistry()
        previous = set_metrics(reg)
        try:
            analysis = analyze(water_capture, resim=False)
            analysis.export_metrics()
        finally:
            set_metrics(previous)
        assert "repro_critpath_makespan_seconds" in reg
        assert "repro_critpath_idle_fraction" in reg
        assert "repro_critpath_blame_seconds" in reg
