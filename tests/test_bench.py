"""Tests for the benchmark harness and experiment drivers (smoke level)."""

import pytest

from repro.bench.harness import (
    CORE_COUNTS,
    benchmark_molecules,
    format_table,
    geometric_speedups,
    molecule_setup,
)
from repro.bench.paper_data import SHAPE_TARGETS, TABLE2_MOLECULES
from repro.chem.builders import alkane


class TestHarness:
    def test_four_molecules(self):
        mols = benchmark_molecules()
        assert len(mols) == 4

    def test_setup_cached(self):
        m = alkane(6)
        s1 = molecule_setup("x", m)
        s2 = molecule_setup("x", m)
        assert s1 is s2

    def test_same_formula_different_geometry_not_shared(self):
        # two C6H14 geometries must not share screening/cost state
        m1 = alkane(6)
        coords = m1.coords_angstrom.copy()
        coords[:, 0] *= 1.25  # stretched conformer, same formula
        from repro.chem.molecule import Molecule

        m2 = Molecule.from_arrays(m1.symbols, coords, name="stretched")
        assert m1.formula == m2.formula
        assert m1.geometry_hash() != m2.geometry_hash()
        s1 = molecule_setup("x", m1)
        s2 = molecule_setup("x", m2)
        assert s1 is not s2
        assert s1.screen is not s2.screen

    def test_geometry_hash_stable(self):
        assert alkane(6).geometry_hash() == alkane(6).geometry_hash()

    def test_setup_reordered(self):
        s = molecule_setup("y", alkane(7))
        assert s.basis.order is not None
        assert s.costs.total_eris > 0

    def test_alkane_config_has_faster_nwchem_tint(self):
        s = molecule_setup("z", alkane(6))
        assert s.config.t_int_nwchem < s.config.t_int_gtfock
        assert s.is_alkane

    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.001]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_geometric_speedups(self):
        sp = geometric_speedups({12: 100.0, 48: 25.0}, 12)
        assert sp[48] == pytest.approx(4.0)
        with pytest.raises(KeyError):
            geometric_speedups({12: 1.0}, 24)


class TestPaperData:
    def test_table2_consistency(self):
        """Recorded paper counts obey the cc-pVDZ shell arithmetic."""
        for name, d in TABLE2_MOLECULES.items():
            nc = int(name[1 : name.index("H")])
            nh = int(name[name.index("H") + 1 :])
            assert d["atoms"] == nc + nh
            assert d["shells"] == 6 * nc + 3 * nh
            assert d["functions"] == 14 * nc + 5 * nh

    def test_shape_targets_present(self):
        assert len(SHAPE_TARGETS) >= 8

    def test_core_counts_span_paper_range(self):
        assert CORE_COUNTS[0] == 12
        assert CORE_COUNTS[-1] == 3888


class TestExperimentsSmoke:
    """Cheap smoke checks; the full tables run in benchmarks/."""

    def test_table5_runs(self):
        from repro.bench.experiments import table5_t_int

        rep = table5_t_int(max_shell_pairs=4)
        assert set(rep.data) == {"C24H12", "C10H22"}
        for vals in rep.data.values():
            assert vals["MD"] > 0 and vals["OS"] > 0

    def test_figure1_runs(self):
        from repro.bench.experiments import figure1_footprint

        rep = figure1_footprint()
        assert rep.data["ratio"] < rep.data["naive_ratio"]

    def test_run_cell_cached(self):
        from repro.bench.experiments import run_cell
        from repro.bench.harness import all_setups

        setup = all_setups()[0]
        a = run_cell(setup, "gtfock", 48)
        b = run_cell(setup, "gtfock", 48)
        assert a is b
