"""The per-rank flight recorder: channels, invariants, validation, reports.

The load-bearing property is **exact decomposition**: summed over
channels, the recorder's per-rank msgs/bytes equal ``CommStats.calls`` /
``CommStats.bytes`` -- every counted call is tagged exactly once.  These
tests assert it for every producer (GlobalArray, SharedCounter,
collectives, both numeric builds, both timing simulations) and cover the
model-validation pass and the HTML run report on top.
"""

import json

import numpy as np
import pytest

from repro.fock.gtfock import gtfock_build
from repro.fock.nwchem import nwchem_build
from repro.fock.simulate import simulate_gtfock, simulate_nwchem
from repro.integrals.engine import MDEngine, SyntheticERIEngine
from repro.obs.flight import (
    CH_BARRIER,
    CH_COUNTER,
    CH_FOCK_ACC,
    CH_GA,
    CH_PREFETCH_GET,
    CH_QUEUE,
    CH_STEAL_D,
    CH_STEAL_F,
    CH_STEAL_TASK,
    CH_TASK_GET,
    CHANNELS,
    FlightRecorder,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.validate import (
    FAIL,
    PASS,
    WARN,
    Deviation,
    fold_ratio,
    validate_run,
)
from repro.runtime.collectives import allreduce, barrier
from repro.runtime.ga import GlobalArray, SharedCounter, block_bounds
from repro.runtime.machine import LONESTAR
from repro.runtime.network import CommStats


class TestFlightRecorder:
    def test_record_accumulates(self):
        fr = FlightRecorder(3)
        fr.record(0, CH_GA, 100, 2, 0.5)
        fr.record(0, CH_GA, 50, 1, 0.25)
        fr.record(2, CH_FOCK_ACC, 8, 1, 0.1)
        assert fr.per_rank(CH_GA, "msgs").tolist() == [3, 0, 0]
        assert fr.per_rank(CH_GA, "bytes").tolist() == [150, 0, 0]
        assert fr.per_rank(CH_FOCK_ACC, "bytes").tolist() == [0, 0, 8]
        assert fr.totals("bytes").tolist() == [150, 0, 8]

    def test_ops_do_not_touch_msgs_or_bytes(self):
        fr = FlightRecorder(2)
        fr.record_op(1, CH_QUEUE, 5)
        assert fr.per_rank(CH_QUEUE, "ops").tolist() == [0, 5]
        assert fr.totals("msgs").tolist() == [0, 0]
        assert fr.totals("bytes").tolist() == [0, 0]

    def test_channels_canonical_order(self):
        fr = FlightRecorder(1)
        fr.record(0, CH_FOCK_ACC, 1, 1, 0.0)
        fr.record(0, CH_PREFETCH_GET, 1, 1, 0.0)
        fr.record(0, "custom_channel", 1, 1, 0.0)
        assert fr.channels() == [CH_PREFETCH_GET, CH_FOCK_ACC, "custom_channel"]
        assert list(CHANNELS).index(CH_PREFETCH_GET) < list(CHANNELS).index(
            CH_FOCK_ACC
        )

    def test_matrix_shape(self):
        fr = FlightRecorder(2)
        fr.record(0, CH_GA, 10, 1, 0.0)
        fr.record(1, CH_COUNTER, 0, 1, 0.0)
        chans, m = fr.matrix("bytes")
        assert m.shape == (2, 2)
        assert m[0, chans.index(CH_GA)] == 10

    def test_ring_buffer_overflow_counts_drops(self):
        fr = FlightRecorder(1, max_events=4)
        for i in range(7):
            fr.record(0, CH_GA, i, 1, 0.0, t=float(i))
        assert len(fr.events()) == 4
        assert fr.dropped_events == 3
        # counters see everything despite the drops
        assert int(fr.per_rank(CH_GA, "msgs")[0]) == 7

    def test_max_events_zero_disables_ring(self):
        fr = FlightRecorder(1, max_events=0)
        fr.record(0, CH_GA, 1, 1, 0.0)
        assert fr.events() == []
        assert int(fr.totals("msgs")[0]) == 1

    def test_check_against_names_drifting_rank(self):
        stats = CommStats(2, LONESTAR)
        stats.charge_comm(0, 100, channel=CH_GA)
        stats.flight.record(1, CH_GA, 7, 1, 0.0)  # untracked extra
        with pytest.raises(AssertionError, match="rank 1"):
            stats.flight.check_against(stats)

    def test_to_json_roundtrips(self):
        fr = FlightRecorder(2, max_events=8)
        fr.record(0, CH_STEAL_D, 64, 1, 0.5, t=1.0)
        doc = json.loads(json.dumps(fr.to_json()))
        assert doc["nproc"] == 2
        assert doc["channels"] == [CH_STEAL_D]
        assert doc["bytes"][0][0] == 64
        assert doc["events"][0]["channel"] == CH_STEAL_D

    def test_export_metrics(self):
        fr = FlightRecorder(2)
        fr.record(1, CH_PREFETCH_GET, 123, 2, 0.25)
        fr.record_op(0, CH_QUEUE, 3)
        reg = fr.export_metrics(MetricsRegistry())
        assert reg.get("repro_flight_bytes_total").value(
            proc=1, channel=CH_PREFETCH_GET
        ) == 123
        assert reg.get("repro_flight_ops_total").value(
            proc=0, channel=CH_QUEUE
        ) == 3
        text = reg.to_prometheus()
        assert 'repro_flight_msgs_total{proc="1",channel="prefetch_get"} 2' in text

    def test_bad_field_and_nproc(self):
        fr = FlightRecorder(1)
        with pytest.raises(ValueError):
            fr.per_rank(CH_GA, "nope")
        with pytest.raises(ValueError):
            FlightRecorder(0)


class TestRuntimeTagging:
    def test_charge_comm_default_channel_is_ga(self):
        stats = CommStats(2, LONESTAR)
        stats.charge_comm(0, 80)
        assert stats.flight.channels() == [CH_GA]
        stats.flight.check_against(stats)

    def test_charge_steal_counts_without_advancing_clock(self):
        stats = CommStats(2, LONESTAR)
        dt = stats.charge_steal(1, 1000)
        assert dt > 0
        assert float(stats.clock[1]) == 0.0
        assert int(stats.calls[1]) == 1
        assert int(stats.remote_bytes[1]) == 1000
        assert stats.flight.per_rank(CH_STEAL_D, "bytes").tolist() == [0, 1000]
        stats.flight.check_against(stats)

    def test_global_array_channel_threading(self):
        stats = CommStats(4, LONESTAR)
        ga = GlobalArray(stats, 8, 8, block_bounds(8, 2), block_bounds(8, 2))
        ga.get(0, 0, 8, 0, 8, channel=CH_PREFETCH_GET)  # spans all 4 owners
        assert int(stats.flight.per_rank(CH_PREFETCH_GET, "msgs")[0]) == 4
        ga.acc(1, 0, 0, np.ones((2, 2)), channel=CH_FOCK_ACC)
        assert CH_FOCK_ACC in stats.flight.channels()
        stats.flight.check_against(stats)

    def test_shared_counter_records_counter_channel(self):
        stats = CommStats(3, LONESTAR)
        ctr = SharedCounter(stats)
        for p in (0, 1, 2, 0):
            ctr.read_inc(p)
        msgs = stats.flight.per_rank(CH_COUNTER, "msgs")
        assert msgs.tolist() == [2, 1, 1]
        assert int(stats.flight.per_rank(CH_COUNTER, "bytes").sum()) == 0
        stats.flight.check_against(stats)

    def test_collectives_tagged_with_exact_sums(self):
        stats = CommStats(8, LONESTAR)
        barrier(stats)
        allreduce(stats, 800)
        assert CH_BARRIER in stats.flight.channels()
        # the pinned allreduce amounts (see test_collectives) land on the
        # allreduce channel untouched
        assert int(stats.flight.per_rank("allreduce", "bytes")[0]) == 2400
        assert int(stats.flight.per_rank("allreduce", "msgs")[0]) == 3
        stats.flight.check_against(stats)


class TestNumericBuildChannels:
    def test_gtfock_exact_decomposition_and_steal_channels(
        self, synthetic_engine, synthetic_density
    ):
        eng = SyntheticERIEngine(synthetic_engine.basis)
        h = np.zeros((eng.basis.nbf,) * 2)
        res = gtfock_build(eng, h, synthetic_density, 9, 1e-12)
        flight = res.stats.flight
        flight.check_against(res.stats)
        chans = flight.channels()
        assert CH_PREFETCH_GET in chans
        assert CH_FOCK_ACC in chans
        assert len(res.outcome.steals) > 0
        assert CH_STEAL_D in chans
        # steal protocol atomics live in ops, never in GA counters
        assert int(flight.per_rank(CH_STEAL_TASK, "ops").sum()) > 0
        assert int(flight.per_rank(CH_STEAL_TASK, "msgs").sum()) == 0
        # queue_ops bookkeeping matches the scheduler's own counters
        total_ops = int(
            flight.per_rank(CH_QUEUE, "ops").sum()
            + flight.per_rank(CH_STEAL_TASK, "ops").sum()
        )
        assert total_ops == int(res.outcome.queue_ops.sum())

    def test_gtfock_no_steal_run_has_no_steal_traffic(
        self, methane_engine, methane_matrices, methane_fock_reference
    ):
        _s, h, _x, d = methane_matrices
        res = gtfock_build(
            MDEngine(methane_engine.basis), h, d, 4, 1e-11,
            enable_stealing=False,
        )
        assert np.allclose(res.fock, methane_fock_reference, atol=1e-11)
        flight = res.stats.flight
        flight.check_against(res.stats)
        assert int(flight.per_rank(CH_STEAL_D, "bytes").sum()) == 0
        assert int(flight.per_rank(CH_STEAL_F, "bytes").sum()) == 0

    def test_gtfock_split_flush_is_numerically_invisible(
        self, methane_engine, methane_matrices, methane_fock_reference
    ):
        """The fock_acc/steal_f flush split must not change the result."""
        _s, h, _x, d = methane_matrices
        res = gtfock_build(MDEngine(methane_engine.basis), h, d, 6, 1e-11)
        assert np.allclose(res.fock, methane_fock_reference, atol=1e-11)
        res.stats.flight.check_against(res.stats)

    def test_nwchem_channels(self, methane_engine, methane_matrices):
        _s, h, _x, d = methane_matrices
        res = nwchem_build(MDEngine(methane_engine.basis), h, d, 3, 1e-11)
        flight = res.stats.flight
        flight.check_against(res.stats)
        chans = flight.channels()
        assert CH_TASK_GET in chans
        assert CH_FOCK_ACC in chans
        assert CH_COUNTER in chans
        # one counter hit per GetTask, every rank
        assert int(flight.per_rank(CH_COUNTER, "msgs").sum()) == (
            res.outcome.counter_accesses
        )


class TestSimulationChannels:
    @pytest.fixture(scope="class")
    def screen(self, synthetic_engine):
        from repro.fock.screening_map import ScreeningMap

        basis = synthetic_engine.basis
        return ScreeningMap(basis, synthetic_engine.schwarz(), 1e-12)

    def test_simulate_gtfock_by_channel(self, synthetic_engine, screen):
        res = simulate_gtfock(synthetic_engine.basis, screen, cores=48)
        assert set(res.comm_by_channel) >= {CH_PREFETCH_GET, CH_FOCK_ACC}
        assert sum(res.comm_by_channel.values()) == pytest.approx(
            res.comm_mb_per_proc * 1e6 * res.nproc, rel=1e-12
        )

    def test_simulate_nwchem_by_channel(self, synthetic_engine, screen):
        res = simulate_nwchem(synthetic_engine.basis, screen, cores=8)
        assert CH_TASK_GET in res.comm_by_channel
        assert CH_COUNTER in res.comm_by_channel


class TestValidation:
    def test_fold_ratio(self):
        assert fold_ratio(2.0, 1.0) == 2.0
        assert fold_ratio(1.0, 2.0) == 2.0
        assert fold_ratio(0.0, 0.0) == 1.0
        assert fold_ratio(1.0, 0.0) == float("inf")

    def test_deviation_statuses(self):
        d = Deviation("x", predicted=1.0, measured=1.5, warn_at=2.0, fail_at=4.0)
        assert d.status == PASS
        d = Deviation("x", predicted=1.0, measured=3.0, warn_at=2.0, fail_at=4.0)
        assert d.status == WARN
        d = Deviation("x", predicted=1.0, measured=9.0, warn_at=2.0, fail_at=4.0)
        assert d.status == FAIL

    def test_validate_gtfock_run(self, synthetic_engine, synthetic_density):
        from repro.model.perfmodel import PerfModel

        eng = SyntheticERIEngine(synthetic_engine.basis)
        h = np.zeros((eng.basis.nbf,) * 2)
        res = gtfock_build(eng, h, synthetic_density, 4, 1e-12)
        s = res.outcome.avg_steals_per_proc
        model = PerfModel.from_screening(res.screen, LONESTAR, s=s)
        v = validate_run(model, res.stats, s_measured=s)
        names = {d.name for d in v.deviations}
        assert {"v1_plus_v2", "volume_mb", "t_comm", "overhead_ratio"} <= names
        assert v.status in (PASS, WARN, FAIL)
        assert v.get("volume_mb").measured == pytest.approx(
            res.stats.volume_mb_per_process()
        )
        doc = json.loads(json.dumps(v.to_json()))
        assert doc["nproc"] == 4
        assert "deviations" in doc
        assert "volume_mb" in v.text()


class TestRunReport:
    @pytest.fixture(scope="class")
    def water_report(self):
        from repro.obs.report import run_report

        report, result = run_report("water", "sto-3g", nproc=4)
        return report, result

    def test_acceptance_water(self, water_report):
        """The ISSUE's acceptance shape on the cheap basis (6-31g in CI)."""
        report, result = water_report
        # per-rank counters sum exactly to the CommStats totals
        report.flight.check_against(result.stats)
        # Table VI volume deviation within the documented tolerance
        assert report.validation.get("volume_mb").status != FAIL
        assert len(report.steals) > 0

    def test_html_self_contained(self, water_report, tmp_path):
        from repro.obs.report import render_report

        report, _ = water_report
        html = render_report(report)
        assert "<svg" in html and "</html>" in html
        # no external assets: every src/href is inline, data:, or anchor
        for marker in ('src="http', "src='http", '<link', '<script src'):
            assert marker not in html
        assert "data:application/json;base64," in html
        for needle in (
            CH_PREFETCH_GET, "Steal-event timeline", "Load balance",
            "Model vs measured", "table view", "prefers-color-scheme",
        ):
            assert needle in html

    def test_write_report(self, water_report, tmp_path):
        from repro.obs.report import write_report

        report, _ = water_report
        out = tmp_path / "report.html"
        write_report(str(out), report)
        assert out.stat().st_size > 10_000
