"""Shared BENCH history recording: schema validation and UTC stamping."""

import json

import pytest

from repro.bench.record import SCHEMAS, append_history, validate_entry


def _guard_entry(**over):
    entry = {
        "benchmark": "scf_guard",
        "wall_off_s": 1.0,
        "wall_on_s": 1.02,
        "overhead": 0.02,
        "energy_matches": True,
    }
    entry.update(over)
    return entry


class TestValidateEntry:
    def test_valid_entry_passes(self):
        validate_entry(_guard_entry())

    def test_missing_benchmark_name(self):
        with pytest.raises(ValueError, match="benchmark"):
            validate_entry({"wall_s": 1.0})

    def test_missing_field_is_named(self):
        entry = _guard_entry()
        del entry["overhead"]
        with pytest.raises(ValueError, match="'overhead'"):
            validate_entry(entry)

    def test_mistyped_field_is_named(self):
        with pytest.raises(ValueError, match="'wall_on_s'"):
            validate_entry(_guard_entry(wall_on_s="fast"))

    def test_bool_is_not_a_float(self):
        with pytest.raises(ValueError, match="'overhead'"):
            validate_entry(_guard_entry(overhead=True))

    def test_int_is_an_acceptable_float(self):
        validate_entry(_guard_entry(overhead=0))

    def test_unknown_family_needs_only_a_name(self):
        validate_entry({"benchmark": "brand_new_family", "whatever": 1})

    def test_every_schema_family_requires_floats_not_bools(self):
        # guard against accidentally declaring a bool field as float
        for family, schema in SCHEMAS.items():
            for key, expected in schema.items():
                assert expected in (str, float, bool, dict), (family, key)


class TestAppendHistory:
    def test_creates_file_and_stamps_utc(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        written = append_history(_guard_entry(), path, description="test hist")
        assert written["timestamp"].endswith("+00:00")
        doc = json.loads(path.read_text())
        assert doc["description"] == "test hist"
        assert len(doc["history"]) == 1
        assert doc["history"][0]["timestamp"] == written["timestamp"]

    def test_appends_preserving_existing_entries(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        append_history(_guard_entry(), path)
        append_history(_guard_entry(overhead=0.03), path)
        doc = json.loads(path.read_text())
        assert [e["overhead"] for e in doc["history"]] == [0.02, 0.03]

    def test_invalid_entry_writes_nothing(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        with pytest.raises(ValueError):
            append_history({"benchmark": "scf_guard"}, path)
        assert not path.exists()

    def test_input_entry_is_not_mutated(self, tmp_path):
        entry = _guard_entry()
        append_history(entry, tmp_path / "BENCH_test.json")
        assert "timestamp" not in entry
