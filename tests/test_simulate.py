"""Tests for the timing-level simulation of both algorithms."""

import pytest

from repro.chem.basis.basisset import BasisSet
from repro.chem.builders import alkane
from repro.fock.cost import quartet_cost_matrix
from repro.fock.nwchem_cost import build_nwchem_task_arrays
from repro.fock.reorder import reorder_basis
from repro.fock.screening_map import ScreeningMap
from repro.fock.simulate import simulate_gtfock, simulate_nwchem
from repro.integrals.schwarz import schwarz_model
from repro.runtime.machine import LONESTAR


@pytest.fixture(scope="module")
def setup():
    basis = reorder_basis(BasisSet.build(alkane(12), "vdz-sim"))
    screen = ScreeningMap(basis, schwarz_model(basis), 1e-10)
    costs = quartet_cost_matrix(screen)
    return basis, screen, costs


class TestGTFockTiming:
    def test_compute_time_scales_inversely(self, setup):
        basis, screen, costs = setup
        t12 = simulate_gtfock(basis, screen, 12, costs=costs).t_comp_avg
        t96 = simulate_gtfock(basis, screen, 96, costs=costs).t_comp_avg
        assert t12 / t96 == pytest.approx(8.0, rel=0.15)

    def test_single_node_work_matches_total(self, setup):
        """T_comp at 12 cores == total ERIs * t_int / 12 (+ overheads)."""
        basis, screen, costs = setup
        r = simulate_gtfock(basis, screen, 12, costs=costs)
        expected = costs.total_eris * LONESTAR.t_int_gtfock / 12
        assert r.t_comp_avg == pytest.approx(expected, rel=0.02)

    def test_stealing_improves_balance(self, setup):
        basis, screen, costs = setup
        cores = 768
        with_steal = simulate_gtfock(basis, screen, cores, costs=costs)
        without = simulate_gtfock(
            basis, screen, cores, costs=costs, enable_stealing=False
        )
        assert with_steal.load_balance < without.load_balance
        assert with_steal.t_fock_max <= without.t_fock_max * 1.01

    def test_load_balance_near_one(self, setup):
        """Table VIII: the ratio stays close to 1 with stealing."""
        basis, screen, costs = setup
        for cores in (48, 384):
            r = simulate_gtfock(basis, screen, cores, costs=costs)
            assert r.load_balance < 1.25

    def test_comm_counters_populated(self, setup):
        basis, screen, costs = setup
        r = simulate_gtfock(basis, screen, 192, costs=costs)
        assert r.comm_mb_per_proc > 0
        assert r.ga_calls_per_proc >= 6  # at least prefetch + flush regions

    def test_invalid_cores(self, setup):
        basis, screen, costs = setup
        with pytest.raises(ValueError):
            simulate_gtfock(basis, screen, 0, costs=costs)


class TestNWChemTiming:
    def test_total_work_preserved(self, setup):
        """Task costs are normalized to the exact total ERI count."""
        basis, screen, costs = setup
        arrays = build_nwchem_task_arrays(
            screen, costs.total_eris, LONESTAR.t_int_nwchem, 0.0
        )
        expected = costs.total_eris * LONESTAR.t_int_nwchem
        assert arrays.cost.sum() == pytest.approx(expected, rel=1e-6)

    def test_compute_scales_inversely(self, setup):
        basis, screen, costs = setup
        t12 = simulate_nwchem(basis, screen, 12, costs=costs).t_comp_avg
        t96 = simulate_nwchem(basis, screen, 96, costs=costs).t_comp_avg
        assert t12 / t96 == pytest.approx(8.0, rel=0.2)

    def test_counter_accesses_exceed_tasks(self, setup):
        basis, screen, costs = setup
        r = simulate_nwchem(basis, screen, 48, costs=costs)
        assert r.counter_accesses >= r.ntasks

    def test_comm_volume_decreases_per_proc(self, setup):
        """Per-task fetches spread over more processes."""
        basis, screen, costs = setup
        v48 = simulate_nwchem(basis, screen, 48, costs=costs).comm_mb_per_proc
        v768 = simulate_nwchem(basis, screen, 768, costs=costs).comm_mb_per_proc
        assert v768 < v48


class TestPaperShapeTargets:
    """The qualitative relations of Sec IV, on the scaled alkane."""

    @pytest.fixture(scope="class")
    def sweep(self, setup):
        basis, screen, costs = setup
        cfg = LONESTAR.with_(t_int_nwchem=LONESTAR.t_int_gtfock * 0.8)
        out = {}
        for cores in (12, 3888):
            out[("gtfock", cores)] = simulate_gtfock(
                basis, screen, cores, config=cfg, costs=costs
            )
            out[("nwchem", cores)] = simulate_nwchem(
                basis, screen, cores, config=cfg, costs=costs
            )
        return out

    def test_nwchem_faster_at_small_scale(self, sweep):
        assert sweep[("nwchem", 12)].t_fock_max < sweep[("gtfock", 12)].t_fock_max

    def test_gtfock_lower_overhead_at_scale(self, sweep):
        g = sweep[("gtfock", 3888)]
        n = sweep[("nwchem", 3888)]
        assert g.t_overhead_avg < n.t_overhead_avg

    def test_gtfock_fewer_calls_everywhere(self, sweep):
        for cores in (12, 3888):
            assert (
                sweep[("gtfock", cores)].ga_calls_per_proc
                < sweep[("nwchem", cores)].ga_calls_per_proc
            )

    def test_gtfock_lower_volume_at_small_scale(self, sweep):
        assert (
            sweep[("gtfock", 12)].comm_mb_per_proc
            < sweep[("nwchem", 12)].comm_mb_per_proc
        )

    def test_gtfock_scales_better(self, sweep):
        g_speedup = sweep[("gtfock", 12)].t_fock_max / sweep[("gtfock", 3888)].t_fock_max
        n_speedup = sweep[("nwchem", 12)].t_fock_max / sweep[("nwchem", 3888)].t_fock_max
        assert g_speedup > n_speedup
