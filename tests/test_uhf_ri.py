"""Tests for UHF, RI-J density fitting, and 3-center integrals."""

import numpy as np
import pytest

from repro.chem.basis.basisset import BasisSet
from repro.chem.basis.shells import Shell
from repro.chem.builders import h2
from repro.chem.molecule import Molecule
from repro.integrals.engine import MDEngine
from repro.integrals.eri_3center import eri_2center_block, eri_3center_block
from repro.integrals.eri_md import eri_shell_quartet
from repro.integrals.oneelec import overlap
from repro.scf.fock import build_jk
from repro.scf.hf import RHF
from repro.scf.ri import RIJBuilder, even_tempered_auxiliary
from repro.scf.uhf import UHF


def h_atom():
    return Molecule.from_arrays(["H"], np.zeros((1, 3)), name="H")


class TestUHF:
    def test_h_atom_literature(self):
        """H atom with STO-3G: E = -0.466582 (exact for this basis)."""
        res = UHF(h_atom()).run()
        assert res.converged
        assert res.energy == pytest.approx(-0.466582, abs=1e-5)

    def test_closed_shell_equals_rhf(self):
        e_uhf = UHF(h2(0.7414)).run().energy
        e_rhf = RHF(h2(0.7414)).run().energy
        assert e_uhf == pytest.approx(e_rhf, abs=1e-8)

    def test_symmetry_breaking_below_rhf_at_dissociation(self):
        """Stretched H2: broken-symmetry UHF lies well below RHF."""
        e_uhf = UHF(h2(2.5), guess_mix=0.4).run().energy
        e_rhf = RHF(h2(2.5)).run().energy
        assert e_uhf < e_rhf - 0.05

    def test_spin_contamination_detected(self):
        """Broken-symmetry UHF has <S^2> above the singlet value 0."""
        mol = h2(2.5)
        uhf = UHF(mol, guess_mix=0.4)
        res = uhf.run()
        s = overlap(BasisSet.build(mol, "sto-3g"))
        s2 = res.s_squared(s, uhf.n_alpha, uhf.n_beta)
        assert s2 > 0.5

    def test_closed_shell_s_squared_zero(self):
        mol = h2(0.7414)
        uhf = UHF(mol)
        res = uhf.run()
        s = overlap(BasisSet.build(mol, "sto-3g"))
        assert res.s_squared(s, uhf.n_alpha, uhf.n_beta) == pytest.approx(
            0.0, abs=1e-6
        )

    def test_doublet_spin_density_integrates_to_one(self):
        res = UHF(h_atom()).run()
        assert np.trace(res.spin_density) == pytest.approx(1.0, abs=1e-8)

    def test_impossible_multiplicity_rejected(self):
        with pytest.raises(ValueError):
            UHF(h2(0.7), multiplicity=2)  # 2 electrons cannot be a doublet

    def test_triplet_h2_above_singlet_at_equilibrium(self):
        e_singlet = UHF(h2(0.7414), multiplicity=1).run().energy
        e_triplet = UHF(h2(0.7414), multiplicity=3).run().energy
        assert e_triplet > e_singlet + 0.1


def s_shell(alpha, center=(0, 0, 0)):
    return Shell(l=0, exps=np.array([alpha]), coefs=np.array([1.0]),
                 center=np.array(center, dtype=float), atom_index=0)


class TestThreeCenter:
    def test_against_4center_with_sharp_probe(self):
        """(ab|P) is the limit of (ab|PP') as the fourth index tends to a
        point probe... instead validate via the fitted identity: the
        2-center (P|Q) must equal the 3-center with an s-pair collapsed.

        Direct check: (ss|P) computed two ways -- the dedicated 3-center
        code vs the 4-center code with the auxiliary role played by a
        product whose second factor is an extremely diffuse, nearly
        constant Gaussian rescaled to unit value at the center.
        """
        a = s_shell(1.1)
        b = s_shell(0.7, (0.0, 0.0, 0.8))
        p = s_shell(0.9, (0.4, 0.2, -0.3))
        val3 = eri_3center_block(a, b, p)[0, 0, 0]
        # 4-center with an almost-flat partner: (ab|pq) -> N_q * (ab|p)
        # as q -> 0 (q's normalized Gaussian tends to N_q * 1)
        q_exp = 1e-8
        q_sh = s_shell(q_exp, (0.4, 0.2, -0.3))
        n_q = (2.0 * q_exp / np.pi) ** 0.75
        val4 = eri_shell_quartet(a, b, p, q_sh)[0, 0, 0, 0]
        assert val4 / n_q == pytest.approx(val3, rel=1e-5)

    def test_2center_consistent_with_3center(self):
        """(P|Q) equals (sP'|Q)-style consistency via the flat-probe trick."""
        p = s_shell(1.3)
        q = s_shell(0.6, (0.0, 0.0, 1.1))
        val2 = eri_2center_block(p, q)[0, 0]
        flat_exp = 1e-8
        flat = s_shell(flat_exp, (0.0, 0.0, 0.0))
        n_flat = (2.0 * flat_exp / np.pi) ** 0.75
        val3 = eri_3center_block(p, flat, q)[0, 0, 0]
        assert val3 / n_flat == pytest.approx(val2, rel=1e-5)

    def test_2center_symmetric_positive(self):
        shells = [s_shell(0.5), s_shell(1.5, (1, 0, 0)), s_shell(3.0, (0, 1, 0))]
        n = len(shells)
        v = np.zeros((n, n))
        for i in range(n):
            for j in range(n):
                v[i, j] = eri_2center_block(shells[i], shells[j])[0, 0]
        assert np.allclose(v, v.T, atol=1e-12)
        assert np.linalg.eigvalsh(v).min() > 0  # Coulomb metric is PD

    def test_3center_bra_symmetry(self):
        a = s_shell(1.1)
        b = s_shell(0.7, (0.0, 0.0, 0.8))
        p = s_shell(0.9, (0.4, 0.2, -0.3))
        x = eri_3center_block(a, b, p)
        y = eri_3center_block(b, a, p)
        assert np.allclose(x, y.transpose(1, 0, 2), atol=1e-13)


class TestRIJ:
    @pytest.fixture(scope="class")
    def h2_state(self):
        mol = h2(0.7414)
        basis = BasisSet.build(mol, "sto-3g")
        d = RHF(mol).run().density
        j_exact, _ = build_jk(MDEngine(basis), d, 0.0)
        return basis, d, j_exact

    def test_fitting_accuracy(self, h2_state):
        basis, d, j_exact = h2_state
        ri = RIJBuilder.build(basis)
        assert ri.fitting_error(d, j_exact) < 1e-4

    def test_richer_auxiliary_improves(self, h2_state):
        basis, d, j_exact = h2_state
        coarse = RIJBuilder.build(basis, even_tempered_auxiliary(basis, nper=6))
        rich = RIJBuilder.build(
            basis, even_tempered_auxiliary(basis, beta=1.6, nper=12, lmax=2)
        )
        assert rich.fitting_error(d, j_exact) < coarse.fitting_error(d, j_exact)

    def test_fitted_j_symmetric(self, h2_state):
        basis, d, _j = h2_state
        jfit = RIJBuilder.build(basis).coulomb(d)
        assert np.allclose(jfit, jfit.T, atol=1e-10)

    def test_auxiliary_generation_validates(self, h2_state):
        basis, _d, _j = h2_state
        with pytest.raises(ValueError):
            even_tempered_auxiliary(basis, beta=0.9)
