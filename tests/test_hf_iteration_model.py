"""Tests for the whole-iteration time model (Fock + density step)."""

import pytest

from repro.dist.hf_iteration import (
    HFIterationBreakdown,
    diagonalization_time_model,
    hf_iteration_breakdown,
)
from repro.fock.simulate import FockSimResult
from repro.runtime.machine import LONESTAR


def fake_fock(cores, t):
    return FockSimResult(
        algorithm="gtfock", molecule="X", cores=cores, nproc=cores // 12,
        t_fock_max=t, t_fock_avg=t, t_comp_avg=t, t_overhead_avg=0.0,
        load_balance=1.0, comm_mb_per_proc=0.0, ga_calls_per_proc=0.0,
    )


class TestDiagModel:
    def test_scales_down_with_p_but_sublinearly(self):
        t1 = diagonalization_time_model(2250, 1, LONESTAR)
        t64 = diagonalization_time_model(2250, 64, LONESTAR)
        assert t64 < t1
        assert t1 / t64 < 64  # efficiency decays: sublinear speedup

    def test_cubic_in_n(self):
        t1 = diagonalization_time_model(1000, 4, LONESTAR)
        t2 = diagonalization_time_model(2000, 4, LONESTAR)
        assert 4.0 < t2 / t1 < 10.0  # cubic compute + linear sync mix

    def test_validation(self):
        with pytest.raises(ValueError):
            diagonalization_time_model(0, 4, LONESTAR)


class TestBreakdown:
    def test_percent_in_paper_band_at_paper_scale(self):
        """C150H30-like numbers: purification is a small, growing share."""
        pcts = []
        # Fock times roughly like the paper's scaling for C150H30
        for cores, t_fock in ((12, 2000.0), (192, 130.0), (3888, 8.0)):
            b = hf_iteration_breakdown(fake_fock(cores, t_fock), 2250, LONESTAR)
            pcts.append(b.purification_percent)
        assert all(0.1 < p < 25.0 for p in pcts)
        assert pcts == sorted(pcts)  # share grows with core count

    def test_purification_beats_diagonalization_at_scale(self):
        b = hf_iteration_breakdown(fake_fock(3888, 8.0), 2250, LONESTAR)
        assert b.t_purification < b.t_diagonalization
        assert b.purify_speedup_over_diag > 1.0

    def test_iteration_sums(self):
        b = HFIterationBreakdown(12, 10.0, 1.0, 3.0)
        assert b.t_iteration_purify == pytest.approx(11.0)
        assert b.t_iteration_diag == pytest.approx(13.0)
        assert b.purification_percent == pytest.approx(100.0 / 11.0)
