"""Silent-data-corruption family: injection, detection, and recovery.

Every test follows the same shape as the other fault families
(``test_faults.py``, ``test_guard.py``, ``test_service.py``): plant a
seeded corruption, then prove the integrity layer *detects* it, the
recovery path *repairs* it bitwise, and a clean run raises *zero*
false alarms.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.chem.builders import water
from repro.integrals.engine import MDEngine
from repro.integrals.store import STORE_VERSION, ERIStore, StoreInvalidatedWarning
from repro.obs.metrics import MetricsRegistry, export_integrity
from repro.obs.verify import verify_tree
from repro.runtime.sdc import (
    IntegrityError,
    IntegrityMonitor,
    SDCFaultPlan,
    flip_bit_in_file,
    random_sdc_plan,
)
from repro.scf.checkpoint import (
    CheckpointCorruptionWarning,
    CheckpointIntegrityError,
    load_checkpoint,
    load_latest_intact,
    save_checkpoint,
)
from repro.scf.fock import build_jk
from repro.scf.hf import RHF

from repro.chem.basis.basisset import BasisSet


@pytest.fixture()
def sto3g_basis():
    return BasisSet.build(water(), "sto-3g")


def rand_density(rng, n):
    a = rng.standard_normal((n, n))
    return 0.5 * (a + a.T)


# -- fault plan mechanics ----------------------------------------------------


class TestSDCFaultPlan:
    def test_empty_plan_has_no_faults(self):
        assert not SDCFaultPlan(seed=0).has_faults
        assert SDCFaultPlan(seed=0, store_flips=1).has_faults

    def test_validation(self):
        with pytest.raises(ValueError):
            SDCFaultPlan(seed=0, checkpoint_flip_rate=1.5)
        with pytest.raises(ValueError):
            SDCFaultPlan(seed=0, store_flips=-1)
        with pytest.raises(ValueError):
            SDCFaultPlan(seed=0, fock_flip_iterations=(0,))

    def test_same_seed_same_plan(self):
        assert random_sdc_plan(7) == random_sdc_plan(7)
        assert random_sdc_plan(7) != random_sdc_plan(8)

    def test_matrix_flip_fires_once_per_iteration(self):
        state = SDCFaultPlan(seed=0, fock_flip_iterations=(2,)).activate()
        a = np.eye(4) + 0.1
        first = state.corrupt_matrix(a, 2, "fock")
        assert np.max(np.abs(first - a)) > 0
        assert state.matrices_corrupted == 1
        again = state.corrupt_matrix(a, 2, "fock")
        assert np.array_equal(again, a)  # same (iteration, target): no re-fire
        assert state.matrices_corrupted == 1

    def test_corruption_budget_caps_injections(self):
        plan = SDCFaultPlan(seed=0, payload_flip_rate=1.0, max_corruptions=3)
        state = plan.activate()
        for _ in range(10):
            state.corrupt_payload(np.ones(4))
        assert state.payloads_corrupted == 3


# -- checkpoint integrity ----------------------------------------------------


class TestCheckpointIntegrity:
    def _save(self, tmp_path, iteration, n=4, density=None):
        rng = np.random.default_rng(iteration)
        d = rand_density(rng, n) if density is None else density
        return save_checkpoint(
            tmp_path, iteration, d, -1.0 - iteration, [-1.0, -1.0 - iteration]
        )

    def test_round_trip_verifies(self, tmp_path):
        path = self._save(tmp_path, 3)
        ck = load_checkpoint(path, verify=True)
        assert ck.iteration == 3

    def test_bit_flip_is_detected(self, tmp_path):
        path = self._save(tmp_path, 3)
        rng = np.random.default_rng(0)
        flip_bit_in_file(path, rng)
        with pytest.raises(Exception):  # zipfile CRC or payload digest
            load_checkpoint(path, verify=True)

    def test_load_latest_intact_falls_back(self, tmp_path):
        self._save(tmp_path, 1)
        flipped = self._save(tmp_path, 2)
        flip_bit_in_file(flipped, np.random.default_rng(0))
        with pytest.warns(CheckpointCorruptionWarning):
            ck = load_latest_intact(tmp_path)
        assert ck is not None and ck.iteration == 1

    def test_nan_density_rejected(self, tmp_path):
        d = np.full((4, 4), np.nan)
        path = self._save(tmp_path, 5, density=d)
        # the digest is valid (it covers the NaNs), so this is the
        # semantic-validation layer firing, not the checksum layer
        with pytest.raises(CheckpointIntegrityError):
            load_checkpoint(path, verify=True)
        with pytest.warns(CheckpointCorruptionWarning):
            assert load_latest_intact(tmp_path) is None

    def test_mismatched_diis_shape_rejected(self, tmp_path):
        # hand-built snapshot without a digest: only the shape check
        # can reject it
        path = tmp_path / "scf_ckpt_0001.npz"
        np.savez(
            path,
            iteration=np.int64(1),
            density=np.eye(4),
            energy=np.float64(-1.0),
            energy_history=np.array([-1.0]),
            diis_focks=np.zeros((2, 3, 3)),  # wrong: should be (k, 4, 4)
            diis_errors=np.zeros((2, 3, 3)),
        )
        with pytest.raises(CheckpointIntegrityError):
            load_checkpoint(path, verify=True)

    def test_tampered_array_fails_digest(self, tmp_path):
        from repro.scf.checkpoint import payload_digest

        payload = {
            "iteration": np.int64(1),
            "density": np.eye(4),
            "energy": np.float64(-1.0),
        }
        digest = payload_digest(payload)
        payload["density"] = np.eye(4) * 2
        assert payload_digest(payload) != digest


# -- store integrity ---------------------------------------------------------


@pytest.fixture()
def filled_store(tmp_path, sto3g_basis):
    rng = np.random.default_rng(23)
    d = rand_density(rng, sto3g_basis.nbf)
    engine = MDEngine(sto3g_basis, store=tmp_path / "store")
    j, k = build_jk(engine, d, tau=1e-11)
    return tmp_path / "store", d, j, k


class TestStoreIntegrity:
    def test_finalize_records_crcs_and_digest(self, filled_store, sto3g_basis):
        store_dir, *_ = filled_store
        with np.load(store_dir / "index.npz") as idx:
            assert idx["crcs"].dtype == np.uint32
            assert len(idx["crcs"]) == len(idx["offsets"])
        manifest = json.loads((store_dir / "manifest.json").read_text())
        assert manifest["version"] == STORE_VERSION
        assert len(manifest["blocks_sha256"]) == 64

    def test_verified_read_rescues_corrupt_blocks(
        self, filled_store, sto3g_basis
    ):
        store_dir, d, j_ref, k_ref = filled_store
        plan = SDCFaultPlan(seed=5, store_flips=3)
        state = plan.activate()
        assert state.corrupt_store_dir(store_dir) == 3
        engine = MDEngine(sto3g_basis, store=store_dir)
        engine.integral_store.open_or_fill()
        engine.integral_store.verify_reads = True
        j, k = build_jk(engine, d, tau=1e-11)
        store = engine.integral_store
        assert store.crc_mismatches > 0
        assert engine.crc_rescues > 0
        # recomputed blocks are bitwise what the clean engine produces
        assert np.array_equal(j, j_ref)
        assert np.array_equal(k, k_ref)

    def test_unverified_read_accepts_corruption_silently(
        self, filled_store, sto3g_basis
    ):
        # the hazard the CRC framing closes: without verify_reads the
        # flipped block flows straight into J/K
        store_dir, d, j_ref, k_ref = filled_store
        SDCFaultPlan(seed=5, store_flips=3).activate().corrupt_store_dir(
            store_dir
        )
        engine = MDEngine(sto3g_basis, store=store_dir)
        engine.integral_store.open_or_fill()
        j, k = build_jk(engine, d, tau=1e-11)
        assert engine.integral_store.crc_mismatches == 0
        assert not (np.array_equal(j, j_ref) and np.array_equal(k, k_ref))

    def test_verify_stacked_flags_exactly_the_bad_rows(
        self, filled_store, sto3g_basis
    ):
        store_dir, *_ = filled_store
        store = ERIStore(store_dir, sto3g_basis).open_or_fill()
        assert store.ready
        offsets = store._offsets[:6].astype(np.int64)
        sizes = np.diff(np.append(store._offsets, store._flat.size))
        width = int(sizes[0])
        assert np.all(sizes[:6] == width)  # uniform leading class
        clean = store.read_stacked(offsets, width, (width,))
        tampered = clean.copy()
        tampered[2] *= 1.0000001
        good = store.verify_stacked(offsets, tampered)
        assert not good[2] and good.sum() == 5
        assert store.crc_checks == 6
        # scrub-on-first-read: intact rows are now marked and skipped,
        # but the mismatching row is re-checked on every read
        good = store.verify_stacked(offsets, tampered)
        assert not good[2] and good.sum() == 5
        assert store.crc_checks == 7
        good = store.verify_stacked(offsets, clean)
        assert good.all()
        assert store.crc_mismatches == 2

    def test_version_mismatch_invalidates_with_reason(
        self, filled_store, sto3g_basis
    ):
        store_dir, *_ = filled_store
        manifest = json.loads((store_dir / "manifest.json").read_text())
        manifest["version"] = STORE_VERSION - 1
        (store_dir / "manifest.json").write_text(json.dumps(manifest))
        with pytest.warns(StoreInvalidatedWarning, match="format version"):
            store = ERIStore(store_dir, sto3g_basis).open_or_fill()
        assert store.filling and not store.ready


# -- GA payload integrity ----------------------------------------------------


class TestGAPayloadIntegrity:
    def _ga(self, checksums, sdc=None, monitor=None):
        from repro.runtime.ga import GlobalArray, block_bounds
        from repro.runtime.machine import LONESTAR
        from repro.runtime.network import CommStats

        n = 8
        bounds = block_bounds(n, 2)
        stats = CommStats(4, LONESTAR)
        ga = GlobalArray(
            stats, n, n, bounds, bounds,
            checksums=checksums, sdc=sdc, monitor=monitor,
        )
        return ga, stats, n

    def _drive(self, ga, n, nops=24):
        rng = np.random.default_rng(11)
        expected = np.zeros((n, n))
        for k in range(nops):
            r0, c0 = int(rng.integers(n - 2)), int(rng.integers(n - 2))
            block = rng.standard_normal((2, 2))
            ga.acc(k % 4, r0, c0, block, tag=("t", k))
            expected[r0:r0 + 2, c0:c0 + 2] += block
        return expected

    def test_checksummed_acc_survives_payload_corruption(self):
        state = SDCFaultPlan(seed=1, payload_flip_rate=0.3).activate()
        monitor = IntegrityMonitor()
        ga, _stats, n = self._ga(True, sdc=state, monitor=monitor)
        expected = self._drive(ga, n)
        assert state.payloads_corrupted > 0
        assert ga.checksum_rejects == state.payloads_corrupted
        assert monitor.detections.get("ga_payload") == ga.checksum_rejects
        assert np.array_equal(ga.to_numpy(), expected)

    def test_unchecksummed_acc_is_silently_wrong(self):
        state = SDCFaultPlan(seed=1, payload_flip_rate=0.3).activate()
        ga, _stats, n = self._ga(False, sdc=state)
        expected = self._drive(ga, n)
        assert state.payloads_corrupted > 0
        assert ga.checksum_rejects == 0
        assert not np.array_equal(ga.to_numpy(), expected)

    def test_crc_trailer_is_charged_as_overhead(self):
        ga_off, stats_off, n = self._ga(False)
        self._drive(ga_off, n)
        ga_on, stats_on, _ = self._ga(True)
        self._drive(ga_on, n)
        assert stats_on.bytes.sum() > stats_off.bytes.sum()


# -- ABFT detectors ----------------------------------------------------------


class TestIntegrityMonitor:
    def _sd(self, n=5, nocc=2):
        rng = np.random.default_rng(3)
        s = np.eye(n)
        c = rng.standard_normal((n, nocc))
        c, _ = np.linalg.qr(c)
        d = c @ c.T  # idempotent, Tr(D S) = nocc
        return s, d

    def test_clean_matrices_pass(self):
        s, d = self._sd()
        mon = IntegrityMonitor(overlap=s, nocc=2)
        f = 0.5 * (d + d.T) - np.eye(5)
        assert mon.check_fock(f, 1)
        assert mon.check_density(d, 1)
        assert mon.detections_total == 0
        assert mon.checks_total > 0

    def test_exponent_flip_breaks_symmetry_detector(self):
        s, d = self._sd()
        mon = IntegrityMonitor(overlap=s, nocc=2)
        state = SDCFaultPlan(seed=2, fock_flip_iterations=(1,)).activate()
        bad = state.corrupt_matrix(d.copy(), 1, "fock")
        assert not mon.check_fock(bad, 1)
        assert mon.detections.get("fock_matrix") == 1

    def test_trace_detector_catches_scaled_density(self):
        s, d = self._sd()
        mon = IntegrityMonitor(overlap=s, nocc=2)
        assert not mon.check_density(1.5 * d, 1)  # symmetric, wrong trace
        assert mon.detections.get("density_matrix") == 1

    def test_nonfinite_always_detected(self):
        s, d = self._sd()
        mon = IntegrityMonitor(overlap=s, nocc=2)
        bad = d.copy()
        bad[0, 1] = np.inf
        assert not mon.check_density(bad, 1)

    def test_chunk_bound_detector(self):
        mon = IntegrityMonitor()
        blocks = np.full((3, 4), 0.5)
        assert mon.check_chunk_bound(blocks, bound=1.0)
        blocks[1, 2] = 1e9
        assert not mon.check_chunk_bound(blocks, bound=1.0)
        assert mon.detections.get("eri_chunk") == 1

    def test_metrics_export(self):
        s, d = self._sd()
        mon = IntegrityMonitor(overlap=s, nocc=2)
        mon.check_density(d, 1)
        mon.check_density(1.5 * d, 2)
        mon.record_recovery("recompute")
        reg = MetricsRegistry()
        export_integrity(mon.summary(), registry=reg)
        text = reg.to_prometheus()
        assert "repro_integrity_checks_total" in text
        assert "repro_integrity_corruptions_detected_total" in text
        assert "repro_integrity_recoveries_total" in text


# -- SCF recovery ladder -----------------------------------------------------


class TestSCFRecovery:
    def test_matrix_flips_recovered_bitwise(self, tmp_path):
        mol = water()
        clean = RHF(mol, basis_name="sto-3g").run()
        plan = SDCFaultPlan(
            seed=4, fock_flip_iterations=(2,), density_flip_iterations=(3,)
        )
        rhf = RHF(
            mol, basis_name="sto-3g", integrity=True, sdc_faults=plan,
            checkpoint_dir=str(tmp_path / "ckpt"),
        )
        res = rhf.run()
        assert res.converged
        s = res.integrity_summary
        assert s["detections"].get("fock_matrix", 0) >= 1
        assert s["detections"].get("density_matrix", 0) >= 1
        assert s["recoveries"].get("recompute", 0) >= 2
        # recompute is bitwise: the trajectory is the clean trajectory
        assert res.energy == clean.energy
        assert np.array_equal(res.fock, clean.fock)

    def test_clean_run_zero_false_positives(self):
        res = RHF(water(), basis_name="sto-3g", integrity=True).run()
        s = res.integrity_summary
        assert res.converged
        assert s["detections_total"] == 0
        assert s["recoveries_total"] == 0
        assert s["checks_total"] > 0

    def test_integrity_off_has_no_summary(self):
        res = RHF(water(), basis_name="sto-3g").run()
        assert res.integrity_summary is None


# -- service quarantine ------------------------------------------------------


class TestServiceQuarantine:
    def test_integrity_error_quarantines_not_retries(
        self, tmp_path, monkeypatch
    ):
        from repro.service import worker as worker_mod
        from repro.service.store import JobStore

        store = JobStore(tmp_path / "queue")
        job = store.submit({"kind": "scf", "molecule": "water"})

        def corrupt_run(store_, job_, owner_):
            raise IntegrityError("unrecoverable corruption (injected)")

        monkeypatch.setattr(worker_mod, "_run_scf_job", corrupt_run)
        claimed = store.claim("w1")
        assert claimed is not None
        outcome = worker_mod.run_claimed_job(store, claimed, "w1")
        assert outcome == "quarantined"
        assert store.get(job.id).state == "quarantined"
        assert store.get(job.id).attempts == 1  # no retry burn-down


# -- offline audit -----------------------------------------------------------


class TestVerifyTree:
    def test_clean_tree_is_clean(self, filled_store, tmp_path):
        rng = np.random.default_rng(0)
        save_checkpoint(
            tmp_path / "ckpt", 1, rand_density(rng, 4), -1.0, [-1.0]
        )
        report = verify_tree(tmp_path)
        assert report.clean
        assert report.stores_audited == 1
        assert report.blocks_checked > 0
        assert report.checkpoints_audited == 1

    def test_corrupted_tree_is_found(self, filled_store, tmp_path):
        store_dir, *_ = filled_store
        rng = np.random.default_rng(0)
        path = save_checkpoint(
            tmp_path / "ckpt", 1, rand_density(rng, 4), -1.0, [-1.0]
        )
        SDCFaultPlan(seed=6, store_flips=2).activate().corrupt_store_dir(
            store_dir
        )
        flip_bit_in_file(path, rng)
        report = verify_tree(tmp_path)
        assert not report.clean
        kinds = {f.kind for f in report.findings}
        assert kinds == {"store", "checkpoint"}
        # 2 block CRCs + whole-file digest + 1 checkpoint
        assert len(report.findings) >= 4
        payload = report.to_json()
        assert payload["clean"] is False
        assert len(payload["findings"]) == len(report.findings)

    def test_missing_root_is_a_finding(self, tmp_path):
        report = verify_tree(tmp_path / "nope")
        assert not report.clean

    def test_pre_v2_store_flagged_unverifiable(self, filled_store):
        store_dir, *_ = filled_store
        manifest = json.loads((store_dir / "manifest.json").read_text())
        manifest["version"] = 1
        (store_dir / "manifest.json").write_text(json.dumps(manifest))
        report = verify_tree(store_dir)
        assert not report.clean
        assert "predates integrity framing" in report.findings[0].problem


# -- the chaos gate ----------------------------------------------------------


class TestSDCChaosGate:
    def test_sdc_chaos_gate_passes(self, tmp_path):
        from repro.fock.chaos import run_sdc_chaos

        res = run_sdc_chaos(
            molecule="water", basis_name="sto-3g", seed=3,
            workdir=tmp_path / "work",
        )
        assert res.injections_total > 0
        assert res.silent_total == 0
        assert res.false_positives == 0
        assert res.energy_error <= 1e-12
        assert res.fock_error <= 1e-12
        assert res.ga_error == 0.0
        assert res.checkpoint_intact
        assert res.passed
        # the kept work tree is auditable offline, and the audit finds
        # the planted rot
        report = verify_tree(tmp_path / "work")
        assert not report.clean

    def test_flip_bit_in_file_changes_exactly_one_bit(self, tmp_path):
        path = tmp_path / "blob.bin"
        data = bytes(range(256))
        path.write_bytes(data)
        flip_bit_in_file(path, np.random.default_rng(9))
        after = path.read_bytes()
        assert len(after) == len(data)
        diff = [
            bin(a ^ b).count("1") for a, b in zip(data, after) if a != b
        ]
        assert diff == [1]
