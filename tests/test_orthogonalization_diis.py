"""Tests for orthogonalization, density formation, and DIIS."""

import numpy as np
import pytest

from repro.scf.diis import DIIS
from repro.scf.guess import core_guess, gwh_guess, zero_guess
from repro.scf.orthogonalization import (
    density_from_coefficients,
    density_from_fock,
    orthogonalizer,
)


def random_spd(n, seed=0, cond=10.0):
    rng = np.random.default_rng(seed)
    q, _ = np.linalg.qr(rng.normal(size=(n, n)))
    vals = np.linspace(1.0, cond, n)
    return (q * vals) @ q.T


class TestOrthogonalizer:
    def test_whitens_overlap(self):
        s = random_spd(8, seed=1)
        x = orthogonalizer(s)
        assert np.allclose(x.T @ s @ x, np.eye(8), atol=1e-10)

    def test_symmetric_for_identity(self):
        x = orthogonalizer(np.eye(5))
        assert np.allclose(x, np.eye(5))

    def test_canonical_drops_dependencies(self):
        s = random_spd(6, seed=2)
        # make it nearly singular
        s[:, -1] = s[:, 0] * (1 + 1e-12)
        s[-1, :] = s[:, -1]
        s = 0.5 * (s + s.T)
        x = orthogonalizer(s, threshold=1e-8)
        assert x.shape[1] < 6
        assert np.allclose(x.T @ s @ x, np.eye(x.shape[1]), atol=1e-8)

    def test_non_spd_rejected(self):
        with pytest.raises(ValueError):
            orthogonalizer(-np.eye(3))

    def test_asymmetric_rejected(self):
        s = np.eye(4)
        s[0, 1] = 0.5
        with pytest.raises(ValueError):
            orthogonalizer(s)


class TestDensityFormation:
    def test_density_rank(self):
        rng = np.random.default_rng(3)
        c = rng.normal(size=(7, 3))
        d = density_from_coefficients(c)
        assert np.linalg.matrix_rank(d) == 3

    def test_density_from_fock_idempotent_in_ortho_basis(self):
        f = random_spd(6, seed=4) - 2 * np.eye(6)
        x = np.eye(6)
        d, eps, c = density_from_fock(f, x, 2)
        assert np.allclose(d @ d, d, atol=1e-10)
        assert np.all(np.diff(eps) >= -1e-12)

    def test_aufbau(self):
        """Occupied orbitals are the lowest-eigenvalue ones."""
        f = np.diag([3.0, -1.0, 2.0, -5.0])
        d, _eps, _c = density_from_fock(f, np.eye(4), 2)
        # occupying eigvecs of eigenvalues -5 and -1: e_1 and e_3
        assert d[1, 1] == pytest.approx(1.0)
        assert d[3, 3] == pytest.approx(1.0)
        assert d[0, 0] == pytest.approx(0.0, abs=1e-12)

    def test_zero_nocc_rejected(self):
        with pytest.raises(ValueError):
            density_from_fock(np.eye(3), np.eye(3), 0)


class TestGuesses:
    def test_zero_guess(self):
        assert np.count_nonzero(zero_guess(5)) == 0

    def test_core_and_gwh_traces(self, water_matrices):
        s, h, x, _d = water_matrices
        for guess in (core_guess(h, x, 5), gwh_guess(h, s, x, 5)):
            assert np.trace(guess @ s) == pytest.approx(5.0, abs=1e-8)


class TestDIIS:
    def test_single_vector_passthrough(self):
        diis = DIIS()
        f = np.eye(3)
        diis.push(f, np.ones((3, 3)))
        assert np.allclose(diis.extrapolate(), f)

    def test_empty_raises(self):
        with pytest.raises(RuntimeError):
            DIIS().extrapolate()

    def test_window_limit(self):
        diis = DIIS(max_vectors=3)
        for i in range(10):
            diis.push(np.eye(2) * i, np.eye(2) * (10 - i))
        assert diis.size == 3

    def test_exact_cancellation(self):
        """Two errors e and -e: DIIS finds the zero-error combination."""
        diis = DIIS()
        e = np.array([[1.0, 0.0], [0.0, -1.0]])
        f1, f2 = np.diag([1.0, 2.0]), np.diag([3.0, 4.0])
        diis.push(f1, e)
        diis.push(f2, -e)
        out = diis.extrapolate()
        assert np.allclose(out, 0.5 * (f1 + f2), atol=1e-10)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            DIIS(max_vectors=1)

    def test_error_vector_antisymmetric_source(self, water_matrices):
        s, h, x, d = water_matrices
        err = DIIS.error_vector(h, d, s, x)
        assert np.allclose(err, -err.T, atol=1e-10)
