"""Tests for BasisSet construction, indexing, and permutation."""

import numpy as np
import pytest

from repro.chem.basis.basisset import BASIS_REGISTRY, BasisSet, element_shells
from repro.chem.builders import alkane, graphene_flake, methane, water


class TestElementShells:
    def test_sp_expansion(self):
        shells = element_shells("sto-3g", "C")
        ls = [l for l, _, _ in shells]
        assert ls == [0, 0, 1]  # 1s core + SP split into s and p

    def test_sp_shares_exponents(self):
        shells = element_shells("sto-3g", "O")
        assert shells[1][1] == shells[2][1]

    def test_unknown_basis(self):
        with pytest.raises(KeyError):
            element_shells("nope", "H")

    def test_unknown_element(self):
        with pytest.raises(KeyError):
            element_shells("vdz-sim", "Ar")


class TestBuild:
    def test_water_sto3g_counts(self):
        b = BasisSet.build(water(), "sto-3g")
        assert b.nshells == 5  # O: 1s + 2s + 2p; H: 1s each
        assert b.nbf == 7

    def test_vdz_sim_structure(self):
        b = BasisSet.build(methane(), "vdz-sim")
        # C: 3s2p1d = 6 shells/14 bf; 4 H: 2s1p = 3 shells/5 bf
        assert b.nshells == 6 + 4 * 3
        assert b.nbf == 14 + 4 * 5

    def test_paper_shell_counts(self):
        """Table II: C100H202 with cc-pVDZ structure has 1206 shells/2410 bf."""
        b = BasisSet.build(alkane(100), "vdz-sim")
        assert b.nshells == 1206
        assert b.nbf == 2410

    def test_paper_shell_counts_graphene(self):
        b = BasisSet.build(graphene_flake(4), "vdz-sim")
        assert b.nshells == 648
        assert b.nbf == 1464

    def test_registry_names(self):
        assert set(BASIS_REGISTRY) == {"sto-3g", "6-31g", "vdz-sim"}


class TestIndexing:
    @pytest.fixture(scope="class")
    def basis(self):
        return BasisSet.build(water(), "sto-3g")

    def test_offsets_contiguous(self, basis):
        assert basis.offsets[0] == 0
        assert basis.offsets[-1] == basis.nbf
        assert np.all(np.diff(basis.offsets) == basis.shell_sizes())

    def test_shell_slice(self, basis):
        for i in range(basis.nshells):
            s = basis.shell_slice(i)
            assert s.stop - s.start == basis.shells[i].nbf

    def test_atom_of_shell(self, basis):
        assert basis.atom_of_shell.tolist() == [0, 0, 0, 1, 2]

    def test_atom_shell_lists(self, basis):
        lists = basis.atom_shell_lists()
        assert lists == [[0, 1, 2], [3], [4]]

    def test_min_exponents_positive(self, basis):
        assert np.all(basis.min_exponents() > 0)


class TestPermutation:
    @pytest.fixture(scope="class")
    def basis(self):
        return BasisSet.build(water(), "sto-3g")

    def test_identity_permutation(self, basis):
        p = basis.permuted(np.arange(basis.nshells))
        assert [s.l for s in p.shells] == [s.l for s in basis.shells]

    def test_reverse_permutation(self, basis):
        order = np.arange(basis.nshells)[::-1]
        p = basis.permuted(order)
        assert p.shells[0] is basis.shells[-1]
        assert p.nbf == basis.nbf

    def test_invalid_permutation_raises(self, basis):
        with pytest.raises(ValueError):
            basis.permuted(np.zeros(basis.nshells, dtype=int))

    def test_function_permutation_identity(self, basis):
        assert np.array_equal(basis.function_permutation(), np.arange(basis.nbf))

    def test_function_permutation_maps_overlap(self, basis):
        """S computed in a permuted basis equals permuted reference S."""
        from repro.integrals.oneelec import overlap

        order = np.arange(basis.nshells)[::-1]
        pb = basis.permuted(order)
        s_ref = overlap(basis)
        s_perm = overlap(pb)
        fp = pb.function_permutation()
        assert np.allclose(s_perm, s_ref[np.ix_(fp, fp)], atol=1e-12)

    def test_double_permutation_composes(self, basis):
        ns = basis.nshells
        rng = np.random.default_rng(0)
        o1 = rng.permutation(ns)
        o2 = rng.permutation(ns)
        p2 = basis.permuted(o1).permuted(o2)
        assert np.array_equal(p2.order, o1[o2])
