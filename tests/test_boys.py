"""Tests for the Boys function: values, recursions, asymptotics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.integrals.boys import (
    boys,
    boys_array,
    boys_quadrature,
    boys_series,
    boys_single,
)


class TestKnownValues:
    def test_f0_at_zero(self):
        assert boys_single(0, 0.0) == pytest.approx(1.0)

    def test_fm_at_zero(self):
        out = boys(5, 0.0)
        for m in range(6):
            assert out[m] == pytest.approx(1.0 / (2 * m + 1))

    def test_f0_closed_form(self):
        # F_0(x) = sqrt(pi/(4x)) erf(sqrt(x))
        for x in (0.1, 1.0, 7.3, 25.0):
            expected = math.sqrt(math.pi / (4 * x)) * math.erf(math.sqrt(x))
            assert boys_single(0, x) == pytest.approx(expected, rel=1e-12)

    def test_large_x_asymptotic(self):
        x = 60.0
        expected = 0.5 * math.sqrt(math.pi / x)
        assert boys_single(0, x) == pytest.approx(expected, rel=1e-10)


class TestCrossValidation:
    @given(st.integers(0, 8), st.floats(0.0, 30.0))
    @settings(max_examples=60, deadline=None)
    def test_matches_series(self, m, x):
        assert boys_single(m, x) == pytest.approx(boys_series(m, x), rel=1e-10, abs=1e-14)

    @pytest.mark.parametrize("m", [0, 2, 5])
    @pytest.mark.parametrize("x", [0.3, 2.0, 11.0])
    def test_matches_quadrature(self, m, x):
        assert boys_single(m, x) == pytest.approx(
            boys_quadrature(m, x), rel=1e-6
        )


class TestRecursionConsistency:
    @given(st.floats(1e-6, 80.0), st.integers(1, 10))
    @settings(max_examples=60, deadline=None)
    def test_upward_identity(self, x, mmax):
        """F_{m+1} = ((2m+1) F_m - e^{-x}) / (2x)."""
        f = boys(mmax, x)
        for m in range(mmax):
            lhs = f[m + 1]
            rhs = ((2 * m + 1) * f[m] - math.exp(-x)) / (2 * x)
            assert lhs == pytest.approx(rhs, rel=1e-8, abs=1e-13)

    @given(st.floats(0.0, 100.0))
    @settings(max_examples=60, deadline=None)
    def test_monotone_decreasing_in_m(self, x):
        f = boys(6, x)
        assert np.all(np.diff(f) <= 1e-15)

    @given(st.integers(0, 6))
    @settings(max_examples=20, deadline=None)
    def test_decreasing_in_x(self, m):
        xs = np.linspace(0, 20, 40)
        vals = [boys_single(m, float(x)) for x in xs]
        assert all(a >= b - 1e-14 for a, b in zip(vals, vals[1:]))


class TestVectorized:
    def test_matches_scalar(self):
        xs = np.array([0.0, 0.5, 3.0, 20.0, 40.0, 100.0])
        arr = boys_array(4, xs)
        for i, x in enumerate(xs):
            assert np.allclose(arr[i], boys(4, float(x)), rtol=1e-12)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            boys_array(2, np.array([-1.0]))


class TestValidation:
    def test_negative_m_raises(self):
        with pytest.raises(ValueError):
            boys(-1, 1.0)

    def test_negative_x_raises(self):
        with pytest.raises(ValueError):
            boys(0, -0.5)
