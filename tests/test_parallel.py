"""Tests for the real multiprocessing Fock build."""

import numpy as np
import pytest

from repro.integrals.engine import MDEngine, SyntheticERIEngine
from repro.parallel.mp_fock import parallel_build_jk, parallel_fock_matrix
from repro.scf.fock import build_jk


class TestParallelJK:
    def test_single_worker_matches_reference(self, water_engine, water_matrices):
        _s, _h, _x, d = water_matrices
        j_ref, k_ref = build_jk(water_engine, d, 1e-11)
        j, k = parallel_build_jk(MDEngine(water_engine.basis), d, 1e-11, nworkers=1)
        assert np.allclose(j, j_ref, atol=1e-11)
        assert np.allclose(k, k_ref, atol=1e-11)

    @pytest.mark.parametrize("nworkers", [2, 4])
    def test_multi_worker_matches_reference(
        self, water_engine, water_matrices, nworkers
    ):
        _s, _h, _x, d = water_matrices
        j_ref, k_ref = build_jk(water_engine, d, 1e-11)
        j, k = parallel_build_jk(
            MDEngine(water_engine.basis), d, 1e-11, nworkers=nworkers
        )
        assert np.allclose(j, j_ref, atol=1e-11)
        assert np.allclose(k, k_ref, atol=1e-11)

    def test_fock_wrapper(self, water_engine, water_matrices, water_fock_reference):
        _s, h, _x, d = water_matrices
        f = parallel_fock_matrix(MDEngine(water_engine.basis), h, d, 1e-11,
                                 nworkers=2)
        assert np.allclose(f, water_fock_reference, atol=1e-11)

    def test_synthetic_engine_parallel(self, synthetic_engine, synthetic_density):
        eng = SyntheticERIEngine(synthetic_engine.basis)
        j_ref, k_ref = build_jk(eng, synthetic_density, 1e-12)
        j, k = parallel_build_jk(eng, synthetic_density, 1e-12, nworkers=3)
        assert np.allclose(j, j_ref, atol=1e-10)
        assert np.allclose(k, k_ref, atol=1e-10)
