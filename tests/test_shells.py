"""Tests for Gaussian shells and normalization."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem.basis.shells import (
    Shell,
    cartesian_components,
    component_scale,
    double_factorial,
    ncart,
    normalize_contraction,
    nsph,
    primitive_norm,
)


class TestCounts:
    @pytest.mark.parametrize("l,nc,ns", [(0, 1, 1), (1, 3, 3), (2, 6, 5), (3, 10, 7)])
    def test_ncart_nsph(self, l, nc, ns):
        assert ncart(l) == nc
        assert nsph(l) == ns

    def test_components_sum_to_l(self):
        for l in range(5):
            for c in cartesian_components(l):
                assert sum(c) == l
        assert len(cartesian_components(4)) == ncart(4)

    def test_component_order_p(self):
        assert cartesian_components(1) == [(1, 0, 0), (0, 1, 0), (0, 0, 1)]

    def test_component_order_d(self):
        assert cartesian_components(2)[0] == (2, 0, 0)
        assert cartesian_components(2)[-1] == (0, 0, 2)


class TestDoubleFactorial:
    def test_values(self):
        assert double_factorial(-1) == 1
        assert double_factorial(0) == 1
        assert double_factorial(5) == 15
        assert double_factorial(6) == 48
        assert double_factorial(7) == 105


class TestPrimitiveNorm:
    @given(st.floats(0.05, 50.0))
    @settings(max_examples=30, deadline=None)
    def test_s_normalization_integral(self, alpha):
        """N^2 * integral of exp(-2 a r^2) over R^3 == 1."""
        n = primitive_norm(alpha, 0, 0, 0)
        integral = (math.pi / (2 * alpha)) ** 1.5
        assert abs(n * n * integral - 1.0) < 1e-12

    def test_p_vs_s_ratio(self):
        a = 1.3
        # int x^2 exp(-2a r^2) = (1/(4a)) * int exp(-2a r^2)
        ratio = primitive_norm(a, 1, 0, 0) / primitive_norm(a, 0, 0, 0)
        assert abs(ratio - math.sqrt(4 * a)) < 1e-12

    def test_component_scale_d(self):
        # xx vs xy: N_xy / N_xx = sqrt(3)
        assert abs(
            component_scale(1, 1, 0) / component_scale(2, 0, 0) - math.sqrt(3.0)
        ) < 1e-12


class TestContractionNormalization:
    @given(
        st.integers(0, 2),
        st.lists(st.floats(0.1, 20.0), min_size=1, max_size=4, unique=True),
    )
    @settings(max_examples=40, deadline=None)
    def test_self_overlap_is_one(self, l, exps):
        exps = np.array(exps)
        coefs = np.ones_like(exps)
        c = normalize_contraction(l, exps, coefs)
        # recompute self overlap with normalized coefficients
        asum = exps[:, None] + exps[None, :]
        pair = (
            double_factorial(2 * l - 1)
            * math.pi**1.5
            / (2.0**l * asum ** (l + 1.5))
        )
        assert abs(c @ pair @ c - 1.0) < 1e-10

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            normalize_contraction(0, np.array([1.0, 2.0]), np.array([1.0]))

    def test_negative_exponent_raises(self):
        with pytest.raises(ValueError):
            normalize_contraction(0, np.array([-1.0]), np.array([1.0]))


class TestShell:
    def test_nbf_cartesian_vs_pure(self):
        kw = dict(exps=np.array([1.0]), coefs=np.array([1.0]), center=np.zeros(3), atom_index=0)
        assert Shell(l=2, pure=False, **kw).nbf == 6
        assert Shell(l=2, pure=True, **kw).nbf == 5

    def test_pure_f_unsupported(self):
        with pytest.raises(NotImplementedError):
            Shell(
                l=3,
                exps=np.array([1.0]),
                coefs=np.array([1.0]),
                center=np.zeros(3),
                atom_index=0,
                pure=True,
            )

    def test_negative_l_raises(self):
        with pytest.raises(ValueError):
            Shell(l=-1, exps=np.array([1.0]), coefs=np.array([1.0]),
                  center=np.zeros(3), atom_index=0)

    def test_at_relocates(self):
        sh = Shell(l=1, exps=np.array([0.5]), coefs=np.array([1.0]),
                   center=np.zeros(3), atom_index=0)
        sh2 = sh.at(np.ones(3), 5)
        assert sh2.atom_index == 5
        assert np.allclose(sh2.center, 1.0)
        assert np.allclose(sh2.norm_coefs, sh.norm_coefs)

    def test_letter(self):
        sh = Shell(l=2, exps=np.array([1.0]), coefs=np.array([1.0]),
                   center=np.zeros(3), atom_index=0)
        assert sh.letter == "d"
