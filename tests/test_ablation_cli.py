"""Tests for the ablation studies and the command-line interface."""

import numpy as np
import pytest

from repro.chem.basis.basisset import BasisSet
from repro.chem.builders import alkane
from repro.cli import main
from repro.fock.ablation import (
    granularity_ablation,
    reordering_ablation,
    stealing_ablation,
)
from repro.fock.reorder import reorder_basis
from repro.fock.screening_map import ScreeningMap
from repro.integrals.schwarz import schwarz_model


@pytest.fixture(scope="module")
def scrambled_basis():
    basis = BasisSet.build(alkane(10), "vdz-sim")
    rng = np.random.default_rng(2)
    return basis.permuted(rng.permutation(basis.nshells))


@pytest.fixture(scope="module")
def screen10():
    basis = reorder_basis(BasisSet.build(alkane(10), "vdz-sim"))
    return basis, ScreeningMap(basis, schwarz_model(basis), 1e-10)


class TestReorderingAblation:
    def test_orderings_reduce_footprint(self, scrambled_basis):
        rows = reordering_ablation(scrambled_basis, cores=192)
        by_label = {r.label: r.metrics for r in rows}
        assert set(by_label) == {"none", "natural", "hilbert"}
        assert (
            by_label["natural"]["avg_footprint_elements"]
            < by_label["none"]["avg_footprint_elements"]
        )
        assert (
            by_label["natural"]["comm_mb_per_proc"]
            < by_label["none"]["comm_mb_per_proc"]
        )


class TestStealingAblation:
    def test_stealing_beats_static(self, screen10):
        basis, screen = screen10
        rows = stealing_ablation(basis, screen, cores=768)
        by_label = {r.label: r.metrics for r in rows}
        static_l = by_label["no-stealing"]["load_balance"]
        for frac in (0.25, 0.5, 1.0):
            assert by_label[f"steal-{frac:g}"]["load_balance"] <= static_l


class TestGranularityAblation:
    def test_coarser_tasks_fewer_count(self, screen10):
        basis, screen = screen10
        rows = granularity_ablation(basis, screen, cores=768, row_groups=(1, 4))
        assert rows[0].metrics["ntasks"] > rows[1].metrics["ntasks"]

    def test_work_conserved(self, screen10):
        """Total makespan*p stays in the same ballpark across granularity."""
        basis, screen = screen10
        rows = granularity_ablation(basis, screen, cores=768, row_groups=(1, 16))
        m1, m16 = rows[0].metrics["makespan"], rows[1].metrics["makespan"]
        assert 0.5 < m1 / m16 < 2.0


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "C96H24" in out and "sto-3g" in out

    def test_scf_h2(self, capsys):
        assert main(["scf", "h2"]) == 0
        out = capsys.readouterr().out
        assert "-1.116" in out

    def test_model_command(self, capsys):
        assert main(["model"]) == 0
        out = capsys.readouterr().out
        assert "crossover" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["definitely-not-a-command"])
