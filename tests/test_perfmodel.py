"""Tests for the Sec III-G performance model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem.basis.basisset import BasisSet
from repro.chem.builders import alkane
from repro.fock.screening_map import ScreeningMap
from repro.integrals.schwarz import schwarz_model
from repro.model.perfmodel import PerfModel
from repro.runtime.machine import LONESTAR


@pytest.fixture(scope="module")
def model():
    return PerfModel(t_int=4.76e-6, nshells=648, A=2.26, B=300.0, q=250.0, s=3.8)


class TestBasics:
    def test_tcomp_eq6(self, model):
        p = 100
        expected = 4.76e-6 * 300.0**2 * 2.26**2 * 648**2 / (8 * p)
        assert model.t_comp(p) == pytest.approx(expected)

    def test_v1_eq7(self, model):
        assert model.v1(4) == pytest.approx(4 * 2.26**2 * 300 * 648**2 / 4)

    def test_v2_eq8(self, model):
        p = 16
        nb = 648 / 4
        assert model.v2(p) == pytest.approx(2 * (nb * 50 + 250) * 2.26**2)

    def test_volume_eq9(self, model):
        p = 9
        assert model.volume(p) == pytest.approx(
            (1 + 3.8) * (model.v1(p) + model.v2(p))
        )

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PerfModel(t_int=-1, nshells=10, A=1, B=5, q=1)
        with pytest.raises(ValueError):
            PerfModel(t_int=1e-6, nshells=10, A=1, B=5, q=9)


class TestClosedForm:
    @given(st.sampled_from([1, 4, 16, 144, 1024, 419904]))
    @settings(max_examples=10, deadline=None)
    def test_eq11_matches_definition(self, p):
        m = PerfModel(t_int=4.76e-6, nshells=648, A=2.26, B=300.0, q=250.0, s=3.8)
        assert m.overhead_ratio_closed_form(p) == pytest.approx(
            m.overhead_ratio(p), rel=1e-10
        )


class TestScalingLaws:
    def test_overhead_grows_with_p(self, model):
        ls = [model.overhead_ratio(p) for p in (4, 64, 1024, 16384)]
        assert ls == sorted(ls)

    def test_efficiency_decreases(self, model):
        es = [model.efficiency(p) for p in (4, 64, 1024)]
        assert es == sorted(es, reverse=True)

    def test_isoefficiency_sqrt_p(self, model):
        """Holding p/n^2 constant holds L constant (isoefficiency)."""
        l1 = model.overhead_ratio(model.nshells**2 // 100)
        scaled = PerfModel(
            t_int=model.t_int, nshells=model.nshells * 3, A=model.A,
            B=model.B, q=model.q, s=model.s,
        )
        l2 = scaled.overhead_ratio(scaled.nshells**2 // 100)
        assert l1 == pytest.approx(l2, rel=1e-10)

    def test_isoefficiency_solver_roundtrip(self, model):
        """Solving for nshells at a known model's own L recovers nshells."""
        p = 10_000
        ref = PerfModel(
            t_int=1e-8, nshells=500, A=model.A, B=model.B, q=model.q, s=model.s
        )
        target = ref.overhead_ratio(p)
        n_needed = ref.isoefficiency_shells(p, target)
        assert n_needed == pytest.approx(500.0, rel=1e-6)

    def test_isoefficiency_floor_detected(self, model):
        """L below the p-independent 4B volume floor is impossible."""
        floor = model.overhead_ratio(1) * 0  # compute actual floor:
        w = model.element_size
        floor = (
            8 * w * (1 + model.s) / (model.beta * model.t_int * model.B**2)
        ) * 4 * model.B
        with pytest.raises(ValueError):
            model.isoefficiency_shells(100, floor * 0.5)


class TestCrossoverAnalysis:
    def test_crossover_tint_consistent(self, model):
        p = 324
        t_cross = model.crossover_t_int(p)
        faster = PerfModel(
            t_int=t_cross, nshells=model.nshells, A=model.A, B=model.B,
            q=model.q, s=model.s,
        )
        assert faster.overhead_ratio(p) == pytest.approx(1.0, rel=1e-10)

    def test_paper_crossover_claim_direction(self):
        """Sec III-G: computation dominates by orders of magnitude.

        The paper concludes integrals must get ~50x faster before
        communication can dominate (Eq 12 at maximum parallelism); the
        printed constant is not recoverable from the garbled text, but
        the reproducible content is (a) L << 1 today and (b) a large
        required speedup that shrinks with B.
        """
        m = PerfModel(
            t_int=4.76e-6, nshells=648, A=2.26, B=400.0, q=370.0, s=3.8
        )
        assert m.max_parallelism_ratio() < 0.05  # compute-dominated
        speedup = 1.0 / m.max_parallelism_ratio()
        assert speedup > 20
        # denser molecules (larger B) are even more compute-dominated
        dense = PerfModel(
            t_int=4.76e-6, nshells=648, A=2.26, B=600.0, q=500.0, s=3.8
        )
        assert dense.max_parallelism_ratio() < m.max_parallelism_ratio()

    def test_from_screening(self):
        basis = BasisSet.build(alkane(10), "vdz-sim")
        screen = ScreeningMap(basis, schwarz_model(basis), 1e-10)
        m = PerfModel.from_screening(screen, LONESTAR, s=2.0)
        assert m.nshells == basis.nshells
        assert m.B == pytest.approx(screen.avg_phi)
        assert m.overhead_ratio(16) > 0
