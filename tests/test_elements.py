"""Tests for repro.chem.elements."""

import pytest

from repro.chem.elements import (
    ANGSTROM_PER_BOHR,
    BOHR_PER_ANGSTROM,
    atomic_number,
    element,
    symbol_of,
)


class TestElementLookup:
    def test_by_symbol(self):
        assert element("C").number == 6
        assert element("H").number == 1

    def test_case_insensitive(self):
        assert element("c").symbol == "C"
        assert element("he").symbol == "He"

    def test_by_number(self):
        assert element(8).symbol == "O"

    def test_unknown_symbol_raises(self):
        with pytest.raises(KeyError):
            element("Xx")

    def test_unknown_number_raises(self):
        with pytest.raises(KeyError):
            element(99)

    def test_roundtrip(self):
        for z in range(1, 19):
            assert atomic_number(symbol_of(z)) == z


class TestUnits:
    def test_bohr_angstrom_inverse(self):
        assert abs(BOHR_PER_ANGSTROM * ANGSTROM_PER_BOHR - 1.0) < 1e-14

    def test_bohr_magnitude(self):
        # 1 Angstrom ~ 1.889 bohr
        assert 1.88 < BOHR_PER_ANGSTROM < 1.90


class TestCovalentRadii:
    def test_positive(self):
        for z in range(1, 19):
            assert element(z).covalent_radius > 0

    def test_carbon_vs_hydrogen(self):
        assert element("C").covalent_radius > element("H").covalent_radius
