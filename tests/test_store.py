"""Tests for the memory-mapped stored-integral mode (conventional SCF).

A store must round-trip blocks bitwise across processes (simulated by
fresh engines attaching to the same directory), refuse to serve a
mismatched basis, record honest provenance, and give SCF iterations
>= 2 zero ERI recomputation -- verified by engine counters.
"""

from __future__ import annotations

import json
from datetime import datetime

import numpy as np
import pytest

from repro.chem.basis.basisset import BasisSet
from repro.chem.builders import water
from repro.integrals.engine import MDEngine
from repro.integrals.store import (
    STORE_VERSION,
    ERIStore,
    StoreInvalidatedWarning,
    basis_fingerprint,
)
from repro.scf.fock import build_jk
from repro.scf.hf import RHF


def rand_density(rng, n):
    d = rng.normal(size=(n, n))
    return (d + d.T) / 2.0


@pytest.fixture
def sto3g_basis():
    return BasisSet.build(water(), "sto-3g")


class TestStoreLifecycle:
    def test_fill_finalize_then_zero_recompute(self, tmp_path, sto3g_basis):
        rng = np.random.default_rng(3)
        d = rand_density(rng, sto3g_basis.nbf)
        engine = MDEngine(sto3g_basis, store=tmp_path / "store")
        assert engine.integral_store.filling
        j1, k1 = build_jk(engine, d)
        assert engine.integral_store.ready
        computed = engine.quartets_computed
        assert computed > 0
        j2, k2 = build_jk(engine, d)
        assert engine.quartets_computed == computed
        assert engine.quartets_served_from_store == computed
        assert np.array_equal(j1, j2)
        assert np.array_equal(k1, k2)

    def test_bitwise_round_trip_across_engines(self, tmp_path, sto3g_basis):
        """A fresh engine attaching to the same directory reads the
        identical bytes back (simulates a new process/session)."""
        rng = np.random.default_rng(7)
        d = rand_density(rng, sto3g_basis.nbf)
        writer = MDEngine(sto3g_basis, store=tmp_path / "store")
        j1, k1 = build_jk(writer, d)

        reader = MDEngine(sto3g_basis, store=tmp_path / "store")
        assert reader.integral_store.ready
        j2, k2 = build_jk(reader, d)
        assert reader.quartets_computed == 0
        assert reader.quartets_served_from_store == writer.quartets_computed
        assert np.array_equal(j1, j2)
        assert np.array_equal(k1, k2)

    def test_per_quartet_dispatch_reads_store(self, tmp_path, sto3g_basis):
        rng = np.random.default_rng(9)
        d = rand_density(rng, sto3g_basis.nbf)
        writer = MDEngine(sto3g_basis, store=tmp_path / "store")
        build_jk(writer, d)

        reader = MDEngine(sto3g_basis, store=tmp_path / "store")
        block_direct = MDEngine(sto3g_basis).quartet(1, 0, 0, 0)
        block_stored = reader.quartet(1, 0, 0, 0)
        assert reader.quartets_served_from_store == 1
        assert reader.quartets_computed == 0
        assert np.array_equal(block_direct, block_stored)


class TestInvalidation:
    def test_basis_change_invalidates_and_refills(self, tmp_path):
        rng = np.random.default_rng(11)
        small = BasisSet.build(water(), "sto-3g")
        d = rand_density(rng, small.nbf)
        build_jk(MDEngine(small, store=tmp_path / "store"), d)

        big = BasisSet.build(water(), "6-31g")
        with pytest.warns(StoreInvalidatedWarning):
            engine = MDEngine(big, store=tmp_path / "store")
        assert engine.integral_store.filling
        d2 = rand_density(rng, big.nbf)
        j_stored, k_stored = build_jk(engine, d2)
        assert engine.quartets_computed > 0
        manifest = json.loads((tmp_path / "store" / "manifest.json").read_text())
        assert manifest["basis_sha256"] == basis_fingerprint(big)
        j_ref, k_ref = build_jk(MDEngine(big), d2)
        assert np.array_equal(j_stored, j_ref)
        assert np.array_equal(k_stored, k_ref)

    def test_unreadable_manifest_invalidates(self, tmp_path, sto3g_basis):
        rng = np.random.default_rng(13)
        d = rand_density(rng, sto3g_basis.nbf)
        build_jk(MDEngine(sto3g_basis, store=tmp_path / "store"), d)
        (tmp_path / "store" / "manifest.json").write_text("{not json")
        with pytest.warns(StoreInvalidatedWarning):
            store = ERIStore(tmp_path / "store", sto3g_basis).open_or_fill()
        assert store.filling and not store.ready


class TestManifestProvenance:
    def test_manifest_fields(self, tmp_path, sto3g_basis):
        rng = np.random.default_rng(17)
        d = rand_density(rng, sto3g_basis.nbf)
        engine = MDEngine(sto3g_basis, store=tmp_path / "store")
        build_jk(engine, d, tau=1e-11)
        manifest = json.loads((tmp_path / "store" / "manifest.json").read_text())
        assert manifest["version"] == STORE_VERSION
        assert manifest["basis_sha256"] == basis_fingerprint(sto3g_basis)
        assert manifest["basis_name"] == "sto-3g"
        assert manifest["tau"] == 1e-11
        assert manifest["nbf"] == sto3g_basis.nbf
        assert manifest["nshells"] == sto3g_basis.nshells
        assert manifest["nblocks"] == engine.quartets_computed
        created = datetime.fromisoformat(manifest["created"])
        assert created.tzinfo is not None  # tz-aware UTC, never naive

    def test_stats_snapshot(self, tmp_path, sto3g_basis):
        rng = np.random.default_rng(19)
        d = rand_density(rng, sto3g_basis.nbf)
        engine = MDEngine(sto3g_basis, store=tmp_path / "store")
        build_jk(engine, d)
        stats = engine.integral_store.stats()
        assert stats["ready"] and not stats["filling"]
        assert stats["nblocks"] == engine.quartets_computed
        assert stats["nbytes"] > 0
        assert stats["pending_blocks"] == 0


class TestStoredSCF:
    def test_rhf_iterations_after_first_recompute_nothing(self, tmp_path):
        """The acceptance criterion: conventional SCF through
        ``RHF(integral_store=...)`` computes each screened quartet exactly
        once -- every iteration >= 2 is served entirely from the store."""
        scf = RHF(water(), integral_store=str(tmp_path / "store"))
        result = scf.run()
        assert result.converged
        assert result.iterations >= 2
        engine = scf.engine
        # each unique screened quartet computed exactly once, ever
        assert engine.quartets_computed == engine.integral_store.nblocks
        # every Fock build after the first (iterations 2..N plus the
        # final post-convergence build) is a full sweep served from disk
        assert engine.quartets_served_from_store == (
            result.iterations * engine.quartets_computed
        )

    def test_stored_scf_energy_matches_direct(self, tmp_path):
        direct = RHF(water()).run()
        stored = RHF(water(), integral_store=str(tmp_path / "store")).run()
        assert stored.energy == pytest.approx(direct.energy, abs=1e-10)

    def test_store_reused_across_scf_runs(self, tmp_path):
        first = RHF(water(), integral_store=str(tmp_path / "store"))
        first.run()
        second = RHF(water(), integral_store=str(tmp_path / "store"))
        result = second.run()
        assert result.converged
        assert second.engine.quartets_computed == 0
        assert second.engine.quartets_served_from_store > 0


class TestProcessSafety:
    """Cross-process hardening: atomic finalize, crash recovery, flock."""

    def _filled_store(self, tmp_path, basis, name="store"):
        store = ERIStore(tmp_path / name, basis).open_or_fill()
        store.record((0, 0, 0, 0), np.full((1, 1, 1, 1), 0.25))
        return store

    def test_crash_before_manifest_write_recovers(
        self, tmp_path, sto3g_basis, monkeypatch
    ):
        """A finalize killed after the data files but before the
        manifest leaves a store that a fresh open refills from scratch
        -- the manifest-last ordering makes the crash detectable."""
        import repro.integrals.store as store_mod

        store = self._filled_store(tmp_path, sto3g_basis)
        real_replace = store_mod.os.replace

        def crashing_replace(src, dst):
            if str(dst).endswith("manifest.json"):
                raise OSError("simulated crash mid-finalize")
            return real_replace(src, dst)

        monkeypatch.setattr(store_mod.os, "replace", crashing_replace)
        with pytest.raises(OSError, match="simulated crash"):
            store.finalize(tau=1e-10)
        monkeypatch.undo()
        # data files landed but no manifest: the store must NOT attach
        assert (tmp_path / "store" / "blocks.bin").exists()
        assert not (tmp_path / "store" / "manifest.json").exists()
        fresh = ERIStore(tmp_path / "store", sto3g_basis).open_or_fill()
        assert fresh.filling and not fresh.ready
        fresh.record((0, 0, 0, 0), np.full((1, 1, 1, 1), 0.25))
        fresh.finalize(tau=1e-10)
        assert fresh.ready
        block = fresh.get((0, 0, 0, 0))
        assert block is not None and block.ravel()[0] == 0.25

    def test_crash_before_index_write_recovers(
        self, tmp_path, sto3g_basis, monkeypatch
    ):
        import repro.integrals.store as store_mod

        store = self._filled_store(tmp_path, sto3g_basis)
        real_replace = store_mod.os.replace

        def crashing_replace(src, dst):
            if str(dst).endswith("index.npz"):
                raise OSError("simulated crash mid-finalize")
            return real_replace(src, dst)

        monkeypatch.setattr(store_mod.os, "replace", crashing_replace)
        with pytest.raises(OSError):
            store.finalize(tau=1e-10)
        monkeypatch.undo()
        fresh = ERIStore(tmp_path / "store", sto3g_basis).open_or_fill()
        assert fresh.filling and not fresh.ready

    def test_concurrent_finalize_attaches_not_clobbers(
        self, tmp_path, sto3g_basis
    ):
        """Two writers race to finalize the same directory: the loser
        attaches to the winner's store instead of overwriting it."""
        winner = self._filled_store(tmp_path, sto3g_basis)
        winner.finalize(tau=1e-10)
        created = winner.manifest["created"]

        loser = ERIStore(tmp_path / "store", sto3g_basis)
        # simulate "was already filling when the winner finalized"
        loser.filling = True
        loser.record((0, 0, 0, 0), np.full((1, 1, 1, 1), 99.0))
        loser.finalize(tau=1e-10)
        assert loser.ready
        # the winner's bytes survived; the loser's 99.0 was discarded
        assert loser.manifest["created"] == created
        assert loser.get((0, 0, 0, 0)).ravel()[0] == 0.25

    def test_lock_file_created_and_reentrant(self, tmp_path, sto3g_basis):
        store = self._filled_store(tmp_path, sto3g_basis)
        assert (tmp_path / "store" / ".lock").exists()
        with store._disk_lock():
            with store._disk_lock():  # reentrant: must not deadlock
                store.finalize(tau=1e-10)
        assert store.ready

    def test_two_processes_fill_same_store(self, tmp_path, sto3g_basis):
        """Real subprocesses racing open_or_fill/finalize on one
        directory both end up attached to a single consistent store."""
        import subprocess
        import sys

        script = (
            "import sys\n"
            "from repro.chem.builders import water\n"
            "from repro.scf.hf import RHF\n"
            "r = RHF(water(), integral_store=sys.argv[1]).run()\n"
            "print(repr(r.energy))\n"
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(tmp_path / "store")],
                stdout=subprocess.PIPE,
                text=True,
            )
            for _ in range(2)
        ]
        energies = []
        for p in procs:
            out, _ = p.communicate(timeout=120)
            assert p.returncode == 0
            energies.append(float(out.strip()))
        assert energies[0] == energies[1]
        # the surviving store is valid for a third reader
        reader = ERIStore(tmp_path / "store", sto3g_basis).open_or_fill()
        assert reader.ready and reader.nblocks > 0
