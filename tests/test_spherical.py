"""Tests for Cartesian -> spherical transformations."""

import numpy as np
import pytest

from repro.chem.basis.shells import Shell
from repro.integrals.oneelec import overlap_block
from repro.integrals.spherical import apply_transforms, shell_transform, transform_matrix


def d_shell(pure, alpha=0.8, center=(0, 0, 0)):
    return Shell(l=2, exps=np.array([alpha]), coefs=np.array([1.0]),
                 center=np.array(center, dtype=float), atom_index=0, pure=pure)


class TestTransformMatrix:
    def test_shapes(self):
        assert transform_matrix(0).shape == (1, 1)
        assert transform_matrix(1).shape == (3, 3)
        assert transform_matrix(2).shape == (5, 6)

    def test_f_unsupported(self):
        with pytest.raises(NotImplementedError):
            transform_matrix(3)

    def test_spherical_d_orthonormal(self):
        """Pure-d self overlap must be the identity."""
        sh = d_shell(pure=True)
        s = overlap_block(sh, sh)
        assert s.shape == (5, 5)
        assert np.allclose(s, np.eye(5), atol=1e-12)

    def test_cartesian_d_overlap_structure(self):
        """Cartesian d self-overlap: 1 on diagonal, 1/3 between xx/yy/zz."""
        sh = d_shell(pure=False)
        s = overlap_block(sh, sh)
        assert s.shape == (6, 6)
        assert np.allclose(np.diag(s), 1.0, atol=1e-12)
        # components: xx, xy, xz, yy, yz, zz -> (0,3), (0,5), (3,5) pairs
        for i, j in ((0, 3), (0, 5), (3, 5)):
            assert s[i, j] == pytest.approx(1.0 / 3.0, abs=1e-12)


class TestShellTransform:
    def test_identity_for_cartesian(self):
        t = shell_transform(d_shell(pure=False))
        assert np.allclose(t, np.eye(6))

    def test_rect_for_pure(self):
        assert shell_transform(d_shell(pure=True)).shape == (5, 6)


class TestApplyTransforms:
    def test_rank_mismatch_raises(self):
        sh = d_shell(pure=False)
        with pytest.raises(ValueError):
            apply_transforms(np.zeros((6, 6)), (sh, sh, sh))

    def test_two_axis(self):
        shp = d_shell(pure=True)
        shc = d_shell(pure=False, center=(0, 0, 1.0))
        block = np.arange(36, dtype=float).reshape(6, 6)
        out = apply_transforms(block, (shp, shc))
        assert out.shape == (5, 6)
        assert np.allclose(out, transform_matrix(2) @ block)

    def test_rotation_invariance_of_pure_norm(self):
        """The 5 pure-d functions stay orthonormal under center shifts."""
        sh = d_shell(pure=True, center=(1.0, -2.0, 0.5))
        s = overlap_block(sh, sh)
        assert np.allclose(s, np.eye(5), atol=1e-12)
