"""Tests for serial density purification (Sec IV-E)."""

import numpy as np
import pytest

from repro.scf.orthogonalization import density_from_fock
from repro.scf.purification import (
    canonical_step,
    initial_density,
    mcweeny_refine,
    mcweeny_step,
    purify,
)


def random_fock(n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    return 0.5 * (a + a.T)


class TestInitialDensity:
    def test_trace(self):
        f = random_fock(10, 1)
        for nocc in (1, 3, 7, 10):
            d0 = initial_density(f, nocc)
            assert np.trace(d0) == pytest.approx(nocc, abs=1e-10)

    def test_spectrum_in_unit_interval(self):
        f = random_fock(12, 2)
        vals = np.linalg.eigvalsh(initial_density(f, 5))
        assert vals.min() > -1e-12
        assert vals.max() < 1 + 1e-12

    def test_bad_nocc_rejected(self):
        with pytest.raises(ValueError):
            initial_density(random_fock(4), 5)


class TestSteps:
    def test_mcweeny_fixes_idempotent(self):
        d = np.diag([1.0, 1.0, 0.0])
        assert np.allclose(mcweeny_step(d), d)

    def test_mcweeny_contracts(self):
        d = np.diag([0.9, 0.8, 0.1])
        d2 = mcweeny_step(d)
        def err(m):
            return np.linalg.norm(m @ m - m)

        assert err(d2) < err(d)

    def test_canonical_preserves_trace(self):
        rng = np.random.default_rng(5)
        q, _ = np.linalg.qr(rng.normal(size=(8, 8)))
        d = (q * rng.uniform(0.05, 0.95, 8)) @ q.T
        d2 = canonical_step(d)
        assert np.trace(d2) == pytest.approx(np.trace(d), abs=1e-9)


class TestPurify:
    @pytest.mark.parametrize("nocc", [2, 5])
    def test_matches_diagonalization(self, nocc):
        """Purified density == aufbau projector when a gap exists."""
        f = random_fock(10, seed=7)
        res = purify(f, nocc, tol=1e-12, max_iter=200)
        assert res.converged
        d_ref, _e, _c = density_from_fock(f, np.eye(10), nocc)
        assert np.allclose(res.density, d_ref, atol=1e-8)

    def test_idempotency_and_trace(self):
        f = random_fock(14, seed=8)
        res = purify(f, 6)
        d = res.density
        assert np.allclose(d @ d, d, atol=1e-8)
        assert np.trace(d) == pytest.approx(6.0, abs=1e-8)

    def test_history_monotone_tail(self):
        f = random_fock(10, seed=9)
        res = purify(f, 4)
        tail = res.history[-4:]
        assert all(a >= b - 1e-14 for a, b in zip(tail, tail[1:]))

    def test_commutes_with_fock(self):
        """[F, D] = 0 for the converged purified density."""
        f = random_fock(9, seed=10)
        d = purify(f, 3).density
        assert np.allclose(f @ d, d @ f, atol=1e-7)

    def test_paper_iteration_count_scale(self):
        """Convergence in tens of iterations (paper: ~45 for C150H30)."""
        f = random_fock(30, seed=11)
        res = purify(f, 12, tol=1e-10)
        assert res.converged
        assert res.iterations < 100


class TestMcWeenyRefine:
    def test_refines_perturbed_projector(self):
        d_exact = np.diag([1.0] * 3 + [0.0] * 5)
        rng = np.random.default_rng(12)
        noise = rng.normal(size=(8, 8)) * 1e-3
        d = d_exact + 0.5 * (noise + noise.T)
        res = mcweeny_refine(d)
        assert res.converged
        assert np.allclose(res.density @ res.density, res.density, atol=1e-10)
