"""Tests for the simulated runtime: machine, accounting, GlobalArray, events."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.event import EventQueue
from repro.runtime.ga import GlobalArray, SharedCounter, block_bounds, grid_shape
from repro.runtime.machine import LONESTAR, MachineConfig
from repro.runtime.network import CommStats


class TestMachineConfig:
    def test_defaults_match_table1(self):
        assert LONESTAR.bandwidth == 5.0e9
        assert LONESTAR.cores_per_node == 12

    def test_transfer_time(self):
        cfg = MachineConfig(bandwidth=1e9, latency=1e-6)
        assert cfg.transfer_time(1e9, 1) == pytest.approx(1.0 + 1e-6)
        assert cfg.transfer_time(0, 3) == pytest.approx(3e-6)

    def test_with_override(self):
        cfg = LONESTAR.with_(bandwidth=1e9)
        assert cfg.bandwidth == 1e9
        assert LONESTAR.bandwidth == 5e9  # original untouched

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(bandwidth=-1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"bandwidth": 0.0},
            {"latency": -1e-6},
            {"latency": 0.0},
            {"t_int_gtfock": 0.0},
            {"t_int_nwchem": -4.2e-6},
            {"queue_service": 0.0},
            {"task_overhead": -1.0},
            {"element_size": 0},
            {"cores_per_node": 0},
        ],
    )
    def test_nonpositive_fields_rejected(self, kwargs):
        """Every rate/time field must be strictly positive: zero bandwidth
        divides by zero, zero t_int makes tasks free, negative latency
        moves clocks backwards."""
        with pytest.raises(ValueError):
            MachineConfig(**kwargs)

    def test_validation_error_names_the_field(self):
        with pytest.raises(ValueError, match="latency"):
            MachineConfig(latency=0.0)
        with pytest.raises(ValueError, match="cores_per_node"):
            MachineConfig(cores_per_node=-3)

    def test_with_override_revalidates(self):
        with pytest.raises(ValueError):
            LONESTAR.with_(bandwidth=0.0)


class TestGridShape:
    @given(st.integers(1, 500))
    @settings(max_examples=60, deadline=None)
    def test_factorization(self, p):
        r, c = grid_shape(p)
        assert r * c == p
        assert r <= c

    def test_square_numbers(self):
        assert grid_shape(16) == (4, 4)
        assert grid_shape(12) == (3, 4)

    def test_block_bounds(self):
        b = block_bounds(10, 3)
        assert b[0] == 0 and b[-1] == 10
        assert np.all(np.diff(b) > 0)

    def test_block_bounds_invalid(self):
        with pytest.raises(ValueError):
            block_bounds(2, 5)


class TestCommStats:
    def test_charge_comm_accumulates(self):
        st_ = CommStats(2, LONESTAR)
        st_.charge_comm(0, 1000, ncalls=2, remote=True)
        assert st_.calls[0] == 2
        assert st_.bytes[0] == 1000
        assert st_.clock[0] > 0
        assert st_.clock[1] == 0

    def test_local_cheaper_than_remote(self):
        a = CommStats(2, LONESTAR)
        b = CommStats(2, LONESTAR)
        a.charge_comm(0, 10_000, remote=True)
        b.charge_comm(0, 10_000, remote=False)
        assert b.clock[0] < a.clock[0]

    def test_barrier_synchronizes(self):
        st_ = CommStats(3, LONESTAR)
        st_.charge_compute(1, 5.0)
        t = st_.barrier()
        assert t == pytest.approx(5.0)
        assert np.all(st_.clock == 5.0)

    def test_bad_process_rejected(self):
        st_ = CommStats(2, LONESTAR)
        with pytest.raises(IndexError):
            st_.charge_comm(2, 10)

    def test_negative_compute_rejected(self):
        st_ = CommStats(1, LONESTAR)
        with pytest.raises(ValueError):
            st_.charge_compute(0, -1.0)


class TestGlobalArray:
    @pytest.fixture
    def ga(self):
        stats = CommStats(4, LONESTAR)
        return GlobalArray(stats, 10, 10, [0, 5, 10], [0, 5, 10])

    def test_owner_map(self, ga):
        assert ga.owner(0, 0) == 0
        assert ga.owner(0, 7) == 1
        assert ga.owner(7, 0) == 2
        assert ga.owner(9, 9) == 3

    def test_local_slice_partition(self, ga):
        seen = np.zeros((10, 10), dtype=int)
        for p in range(4):
            rs, cs = ga.local_slice(p)
            seen[rs, cs] += 1
        assert np.all(seen == 1)

    def test_get_put_roundtrip(self, ga):
        block = np.arange(6, dtype=float).reshape(2, 3)
        ga.put(0, 4, 3, block)
        out = ga.get(1, 4, 6, 3, 6)
        assert np.allclose(out, block)

    def test_acc_accumulates(self, ga):
        ga.acc(0, 2, 2, np.ones((2, 2)))
        ga.acc(3, 2, 2, np.ones((2, 2)))
        assert np.allclose(ga.get(0, 2, 4, 2, 4), 2.0)

    def test_calls_split_per_owner(self, ga):
        stats = ga.stats
        before = int(stats.calls[0])
        ga.get(0, 3, 8, 3, 8)  # spans all 4 owner blocks
        assert stats.calls[0] - before == 4

    def test_local_access_not_remote(self, ga):
        stats = ga.stats
        ga.get(0, 0, 2, 0, 2)  # proc 0 owns this
        assert stats.remote_calls[0] == 0
        assert stats.calls[0] == 1

    def test_out_of_range_rejected(self, ga):
        with pytest.raises(IndexError):
            ga.get(0, 0, 11, 0, 5)

    def test_load_to_numpy(self, ga):
        m = np.arange(100, dtype=float).reshape(10, 10)
        ga.load(m)
        assert np.allclose(ga.to_numpy(), m)

    def test_bad_bounds_rejected(self):
        stats = CommStats(1, LONESTAR)
        with pytest.raises(ValueError):
            GlobalArray(stats, 10, 10, [0, 10], [0, 5])


class TestSharedCounter:
    def test_monotone_values(self):
        stats = CommStats(3, LONESTAR)
        c = SharedCounter(stats)
        vals = [c.read_inc(p % 3) for p in range(9)]
        assert vals == list(range(9))

    def test_serialization_delays(self):
        """Simultaneous requests queue behind each other at the server."""
        stats = CommStats(4, LONESTAR)
        c = SharedCounter(stats)
        for p in range(4):
            c.read_inc(p)
        finish = np.sort(stats.clock)
        gaps = np.diff(finish)
        assert np.all(gaps >= stats.config.queue_service * 0.99)

    def test_access_count(self):
        stats = CommStats(1, LONESTAR)
        c = SharedCounter(stats)
        for _ in range(5):
            c.read_inc(0)
        assert c.accesses == 5


class TestEventQueue:
    def test_time_order(self):
        q = EventQueue()
        q.schedule(3.0, "a")
        q.schedule(1.0, "b")
        q.schedule(2.0, "c")
        assert [q.pop()[1] for _ in range(3)] == ["b", "c", "a"]
        assert q.pop() is None

    def test_reschedule_invalidates(self):
        q = EventQueue()
        q.schedule(1.0, "a")
        q.schedule(5.0, "a")  # supersedes
        t, k = q.pop()
        assert (t, k) == (5.0, "a")
        assert q.pop() is None

    def test_cancel(self):
        q = EventQueue()
        q.schedule(1.0, "x")
        q.cancel("x")
        assert q.pop() is None

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1.0, "x")

    def test_stable_tiebreak(self):
        q = EventQueue()
        q.schedule(1.0, "first")
        q.schedule(1.0, "second")
        assert q.pop()[1] == "first"
        assert q.pop()[1] == "second"

    def test_cancel_then_reschedule_revives(self):
        q = EventQueue()
        q.schedule(1.0, "a")
        q.cancel("a")
        q.schedule(2.0, "a")
        assert q.pop() == (2.0, "a")
        assert q.pop() is None

    def test_cancel_unknown_key_is_noop(self):
        q = EventQueue()
        q.cancel("never-scheduled")
        q.schedule(1.0, "a")
        assert q.pop() == (1.0, "a")

    def test_cancel_only_affects_its_key(self):
        q = EventQueue()
        q.schedule(1.0, "a")
        q.schedule(2.0, "b")
        q.cancel("a")
        assert q.pop() == (2.0, "b")
        assert q.pop() is None

    def test_reschedule_after_pop(self):
        q = EventQueue()
        q.schedule(1.0, "a")
        assert q.pop() == (1.0, "a")
        q.schedule(3.0, "a")
        assert q.pop() == (3.0, "a")

    def test_repeated_reschedule_keeps_last_only(self):
        q = EventQueue()
        for t in (5.0, 4.0, 3.0, 2.0):
            q.schedule(t, "a")
        assert q.pop() == (2.0, "a")
        assert q.pop() is None

    def test_len_counts_stale_entries(self):
        q = EventQueue()
        q.schedule(1.0, "a")
        q.schedule(2.0, "a")  # first entry is now stale but still heaped
        assert len(q) == 2
        assert q.pop() == (2.0, "a")
        assert len(q) == 0

    def test_cancel_inflight_among_many(self):
        q = EventQueue()
        for i in range(5):
            q.schedule(float(i), i)
        q.cancel(2)
        q.cancel(4)
        popped = []
        while (ev := q.pop()) is not None:
            popped.append(ev[1])
        assert popped == [0, 1, 3]
