"""Tests for the crash-tolerant SCF service (repro.service).

The contract under test, end to end:

* the durable :class:`JobStore` only ever moves jobs through guarded
  single-statement transitions, so a lease that was lost can never
  record a result (idempotent re-execution);
* a worker SIGKILLed mid-SCF-iteration loses its lease, the job is
  re-enqueued, and the resuming worker -- restarting from the latest
  intact checkpoint -- reproduces the uninterrupted run **bitwise**;
* runaway jobs are killed on a wall-clock budget and poison inputs are
  quarantined with their traceback instead of retried forever;
* SIGTERM teardown leaves no orphaned multiprocessing children and no
  stuck leases.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.chem.builders import water
from repro.integrals.class_batch import (
    JKInterrupted,
    clear_jk_interrupt,
    interrupt_jk_threads,
)
from repro.parallel.mp_fock import active_pool_count, shutdown_active_pools
from repro.scf.checkpoint import load_latest_intact, prune_checkpoints
from repro.scf.hf import RHF
from repro.service.store import (
    STATES,
    TERMINAL_STATES,
    JobStore,
    backoff_delay,
)
from repro.service.supervisor import serve
from repro.service.worker import degrade_spec, run_claimed_job, worker_main


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path / "queue")


class TestBackoff:
    def test_deterministic(self):
        assert backoff_delay(3, 7) == backoff_delay(3, 7)

    def test_grows_exponentially_until_cap(self):
        base = [backoff_delay(a, 1, jitter=0.0) for a in range(1, 6)]
        assert base == [0.5, 1.0, 2.0, 4.0, 8.0]
        assert backoff_delay(30, 1, jitter=0.0) == 60.0

    def test_jitter_bounded_and_desynchronized(self):
        delays = {backoff_delay(2, job_id) for job_id in range(20)}
        assert len(delays) > 1  # different jobs back off differently
        assert all(1.0 <= d <= 1.25 for d in delays)


class TestJobStoreTransitions:
    def test_submit_then_claim_fifo_within_priority(self, store):
        a = store.submit({"kind": "sleep"})
        b = store.submit({"kind": "sleep"})
        hi = store.submit({"kind": "sleep"}, priority=5)
        assert store.claim("w1").id == hi.id  # priority first
        assert store.claim("w1").id == a.id  # then FIFO
        assert store.claim("w1").id == b.id

    def test_claim_sets_lease(self, store):
        job = store.submit({"kind": "sleep"}, lease_s=30.0)
        leased = store.claim("w1")
        assert leased.state == "leased"
        assert leased.lease_owner == "w1"
        assert leased.lease_expires > time.time()
        assert store.claim("w2") is None  # nothing left

    def test_backoff_delays_reclaim(self, store):
        job = store.submit({"kind": "fail", "times": 9}, max_attempts=3)
        j = store.claim("w1")
        store.fail(j.id, "w1", "boom", retryable=True)
        assert store.get(job.id).state == "queued"
        assert store.claim("w1") is None  # still inside backoff
        assert store.claim("w1", now=time.time() + 120).id == job.id

    def test_heartbeat_renews_only_for_owner(self, store):
        job = store.submit({"kind": "sleep"}, lease_s=5.0)
        j = store.claim("w1")
        before = store.get(j.id).lease_expires
        time.sleep(0.02)
        assert store.heartbeat(j.id, "w1")
        assert store.get(j.id).lease_expires >= before
        assert not store.heartbeat(j.id, "intruder")

    def test_complete_is_owner_guarded_idempotent(self, store):
        """The no-double-record guarantee: once a lease is reassigned,
        the stale worker's complete() is a no-op."""
        job = store.submit({"kind": "sleep"})
        j = store.claim("w1")
        store.start(j.id, "w1")
        # lease expires; supervisor re-enqueues; another worker reruns
        store.expire_leases(now=time.time() + 1e6)
        j2 = store.claim("w2", now=time.time() + 2e6)
        store.start(j2.id, "w2")
        assert store.complete(job.id, "w2", {"energy": -1.0})
        # the zombie original worker finally finishes: discarded
        assert not store.complete(job.id, "w1", {"energy": -999.0})
        final = store.get(job.id)
        assert final.state == "done"
        assert final.result == {"energy": -1.0}
        done_events = [e for e in store.events_for(job.id) if e[0] == "done"]
        assert len(done_events) == 1

    def test_quarantine_after_max_attempts(self, store):
        job = store.submit({"kind": "fail", "times": 99}, max_attempts=2)
        for _ in range(2):
            j = store.claim("w1", now=time.time() + 1e6)
            store.fail(j.id, "w1", "transient", retryable=True)
        final = store.get(job.id)
        assert final.state == "quarantined"
        assert final.attempts == 2
        assert "transient" in final.error

    def test_nonretryable_quarantines_immediately(self, store):
        job = store.submit({"kind": "poison"}, max_attempts=5)
        j = store.claim("w1")
        store.fail(j.id, "w1", "ValueError: bad input", retryable=False)
        final = store.get(job.id)
        assert final.state == "quarantined"
        assert final.attempts == 1
        assert "ValueError" in final.error

    def test_expire_leases_requeues_dead_worker(self, store):
        job = store.submit({"kind": "sleep"}, lease_s=0.05)
        store.claim("w1")
        time.sleep(0.1)
        assert store.expire_leases() == [job.id]
        assert store.get(job.id).state == "queued"
        assert store.get(job.id).lease_owner is None

    def test_cancel(self, store):
        job = store.submit({"kind": "sleep"})
        assert store.cancel(job.id)
        assert store.get(job.id).state == "failed"
        assert store.get(job.id).error == "cancelled"
        assert not store.cancel(job.id)  # already terminal

    def test_drained_and_counts(self, store):
        a = store.submit({"kind": "sleep"})
        assert not store.drained()
        j = store.claim("w1")
        store.start(j.id, "w1")
        store.complete(j.id, "w1", {"ok": True})
        assert store.drained()
        assert store.counts()["done"] == 1
        assert set(STATES) >= set(store.counts())
        assert a.id  # silence unused warnings

    def test_survives_reopen(self, store, tmp_path):
        """Durability: a fresh JobStore over the same directory sees
        everything (the supervisor itself can crash and restart)."""
        job = store.submit({"kind": "sleep", "seconds": 0.1})
        reopened = JobStore(tmp_path / "queue")
        assert reopened.get(job.id).state == "queued"
        assert reopened.counts()["queued"] == 1


class TestWorkerPersonalities:
    def run_one(self, store, owner="w1"):
        job = store.claim(owner, now=time.time() + 1e6)
        assert job is not None
        return run_claimed_job(store, job, owner)

    def test_fail_retries_then_succeeds(self, store):
        job = store.submit({"kind": "fail", "times": 2}, max_attempts=5)
        assert self.run_one(store) == "queued"
        assert self.run_one(store) == "queued"
        assert self.run_one(store) == "done"
        final = store.get(job.id)
        assert final.result["attempts_needed"] == 3

    def test_poison_quarantined_with_traceback(self, store):
        job = store.submit({"kind": "poison"}, max_attempts=5)
        assert self.run_one(store) == "quarantined"
        final = store.get(job.id)
        assert final.attempts == 1  # never retried
        assert "ValueError" in final.error
        assert "Traceback" in final.error

    def test_oom_walks_degradation_ladder(self, store):
        job = store.submit(
            {"kind": "oom", "jk_threads": 4, "cache_mb": 64}, max_attempts=5
        )
        assert self.run_one(store) == "queued"
        assert store.get(job.id).spec["jk_threads"] == 1
        assert self.run_one(store) == "queued"
        assert store.get(job.id).spec["cache_mb"] is None
        assert self.run_one(store) == "done"
        events = store.event_counts()
        assert events.get("degraded") == 2

    def test_degrade_spec_ladder(self):
        spec = {"jk_threads": 4, "cache_mb": 64}
        spec, rung = degrade_spec(spec)
        assert spec["jk_threads"] == 1 and "jk_threads" in rung
        spec, rung = degrade_spec(spec)
        assert spec["cache_mb"] is None and "cache_mb" in rung
        assert degrade_spec(spec) == (None, "")

    def test_scf_job_records_energy(self, store):
        baseline = RHF(water()).run()
        job = store.submit({"kind": "scf", "molecule": "water",
                            "basis": "sto-3g"})
        assert self.run_one(store) == "done"
        final = store.get(job.id)
        assert final.result["converged"]
        assert final.result["energy"] == baseline.energy
        assert final.result["resumed_from_iteration"] == 0
        # per-job run ledger exists and is linked from the job row
        assert (Path(final.job_dir) / "run" / "manifest.json").exists()

    def test_worker_main_drains(self, store, tmp_path):
        for _ in range(3):
            store.submit({"kind": "sleep", "seconds": 0.0})
        rc = worker_main(tmp_path / "queue", "w1", poll_s=0.01,
                        exit_when_drained=True)
        assert rc == 0
        assert store.counts()["done"] == 3


class TestCrashResume:
    """Satellite 3: SIGKILL mid-iteration, resume bitwise-identical."""

    def test_inprocess_interrupt_resume_bitwise(self, tmp_path):
        """Checkpoint/restart alone (no service): interrupting after
        iteration 3 and restarting reproduces F and E bitwise."""
        baseline = RHF(water(), checkpoint_dir=str(tmp_path / "a")).run()

        class Crash(Exception):
            pass

        def crash_at_3(iteration, energy):
            if iteration >= 3:
                raise Crash

        interrupted = RHF(
            water(),
            checkpoint_dir=str(tmp_path / "b"),
            on_iteration=crash_at_3,
        )
        with pytest.raises(Crash):
            interrupted.run()
        assert load_latest_intact(tmp_path / "b").iteration == 3

        seen: list[int] = []
        resumed = RHF(
            water(),
            checkpoint_dir=str(tmp_path / "b"),
            restart=True,
            on_iteration=lambda it, e: seen.append(it),
        ).run()
        assert resumed.energy == baseline.energy  # bitwise
        assert np.array_equal(resumed.fock, baseline.fock)
        assert np.array_equal(resumed.density, baseline.density)
        assert resumed.iterations == baseline.iterations  # global numbering
        assert seen[0] == 4  # actually resumed: iterations 1-3 skipped

    def test_sigkill_worker_lease_expiry_resume(self, tmp_path):
        """The full service path: a real worker subprocess is SIGKILLed
        mid-SCF, the lease expires, the job is re-enqueued, and the
        resuming worker's energy matches the fault-free run bitwise."""
        baseline = RHF(water(), basis_name="6-31g").run()
        store = JobStore(tmp_path / "queue")
        job = store.submit(
            {"kind": "scf", "molecule": "water", "basis": "6-31g"},
            lease_s=2.0,
        )
        ckpt_dir = Path(job.job_dir) / "checkpoints"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service._worker_entry",
             str(tmp_path / "queue"), "doomed",
             json.dumps({"poll_s": 0.05})],
        )
        try:
            deadline = time.time() + 60
            while time.time() < deadline:
                ck = load_latest_intact(ckpt_dir)
                if ck is not None and ck.iteration >= 2:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("worker never reached iteration 2")
            proc.send_signal(signal.SIGKILL)
            proc.wait()
        finally:
            if proc.poll() is None:
                proc.kill()

        killed_at = load_latest_intact(ckpt_dir).iteration
        # supervisor path: the dead worker's lease expires -> requeue
        far = time.time() + 1e6
        assert store.expire_leases(now=far) == [job.id]
        events = [e[0] for e in store.events_for(job.id)]
        assert "lease_expired" in events
        # a fresh worker claims (past the retry backoff) and resumes
        # from the intact checkpoint
        j2 = store.claim("rescuer", now=far + 3600)
        assert j2.id == job.id
        assert run_claimed_job(store, j2, "rescuer") == "done"
        final = store.get(job.id)
        assert final.result["resumed_from_iteration"] == killed_at
        assert final.result["energy"] == baseline.energy  # bitwise
        done_events = [e for e in store.events_for(job.id) if e[0] == "done"]
        assert len(done_events) == 1  # executed-and-recorded exactly once


class TestTimeoutEnforcement:
    def test_hung_job_killed_and_quarantined(self, tmp_path):
        """A job that hangs (no heartbeat, never finishes) is killed on
        its wall-clock budget; with max_attempts=1 it quarantines."""
        store = JobStore(tmp_path / "queue")
        job = store.submit(
            {"kind": "sleep", "seconds": 60.0, "hang": True},
            timeout_s=1.0,
            lease_s=120.0,  # lease outlives the test: timeout must act
            max_attempts=1,
        )
        result = serve(
            tmp_path / "queue",
            workers=1,
            poll_s=0.1,
            drain=True,
            grace_s=0.5,
            wall_limit_s=30,
            install_signals=False,
        )
        assert result.timeouts_enforced >= 1
        final = store.get(job.id)
        assert final.state == "quarantined"
        assert final.state in TERMINAL_STATES


class TestSigtermTeardown:
    def test_sigterm_releases_lease_and_exits_143(self, tmp_path):
        """Satellite 2 end-to-end: SIGTERM on a worker mid-job closes
        pools, releases the lease (no waiting out the expiry), and
        exits 143."""
        store = JobStore(tmp_path / "queue")
        job = store.submit({"kind": "sleep", "seconds": 60.0},
                           lease_s=600.0)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service._worker_entry",
             str(tmp_path / "queue"), "w1", json.dumps({"poll_s": 0.05})],
        )
        try:
            deadline = time.time() + 30
            while time.time() < deadline:
                if store.get(job.id).state == "running":
                    break
                time.sleep(0.05)
            else:
                pytest.fail("worker never started the job")
            proc.terminate()
            rc = proc.wait(timeout=15)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert rc == 143
        final = store.get(job.id)
        assert final.state == "queued"  # released, not stuck leased
        assert final.lease_owner is None
        assert final.attempts == 0  # graceful release charges no attempt

    def test_shutdown_active_pools_terminates(self):
        import multiprocessing as mp

        from repro.parallel import mp_fock

        pool = mp.get_context("spawn").Pool(1)
        mp_fock._register_pool(pool)
        assert active_pool_count() == 1
        assert shutdown_active_pools() == 1
        assert active_pool_count() == 0
        assert shutdown_active_pools() == 0  # idempotent

    def test_jk_interrupt_flag_aborts_threaded_build(self):
        engine_density = RHF(water(), jk_threads=2)
        interrupt_jk_threads()
        try:
            with pytest.raises(JKInterrupted):
                engine_density.run()
        finally:
            clear_jk_interrupt()

    def test_prune_checkpoints_keeps_newest(self, tmp_path):
        rhf = RHF(water(), checkpoint_dir=str(tmp_path / "ck"))
        rhf.run()
        removed = prune_checkpoints(tmp_path / "ck", keep=2)
        assert removed >= 1
        remaining = sorted((tmp_path / "ck").glob("*.npz"))
        assert len(remaining) == 2
        assert load_latest_intact(tmp_path / "ck") is not None
        with pytest.raises(ValueError):
            prune_checkpoints(tmp_path / "ck", keep=0)


class TestServeEndToEnd:
    def test_pool_drains_mixed_workload(self, tmp_path):
        store = JobStore(tmp_path / "queue")
        for _ in range(3):
            store.submit({"kind": "sleep", "seconds": 0.05})
        store.submit({"kind": "fail", "times": 1}, max_attempts=3)
        store.submit({"kind": "poison"}, max_attempts=3)
        result = serve(
            tmp_path / "queue",
            workers=2,
            poll_s=0.1,
            drain=True,
            grace_s=0.5,
            wall_limit_s=60,
            install_signals=False,
        )
        assert result.drained
        counts = store.counts()
        assert counts.get("done") == 4
        assert counts.get("quarantined") == 1
        assert result.events.get("submitted") == 5
