"""Tests for repro.obs: tracing, metrics, and the pipeline instrumentation."""

import json

import numpy as np
import pytest

from repro.chem.basis.basisset import BasisSet
from repro.chem.builders import water
from repro.fock.gtfock import gtfock_build
from repro.fock.stealing import run_work_stealing
from repro.integrals.engine import MDEngine
from repro.integrals.oneelec import core_hamiltonian
from repro.obs import (
    HOST_PID,
    NULL_TRACER,
    SIM_PID,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullTracer,
    Tracer,
    export_commstats,
    get_metrics,
    get_tracer,
    set_metrics,
    set_tracer,
    tracing,
)
from repro.runtime.machine import LONESTAR
from repro.runtime.network import CommStats


def assert_properly_nested(spans):
    """Spans (ts, end) on one thread must nest, never partially overlap."""
    stack = []
    for ts, end in sorted(spans, key=lambda s: (s[0], -s[1])):
        while stack and ts >= stack[-1] - 1e-12:
            stack.pop()
        if stack:
            assert end <= stack[-1] + 1e-12, "partially overlapping spans"
        stack.append(end)


class TestTracer:
    def test_nested_host_spans(self):
        tr = Tracer("t")
        with tr.span("outer", cat="x"):
            with tr.span("inner", cat="x"):
                pass
            with tr.span("inner2", cat="x") as sp:
                sp["k"] = 1
        spans = tr.spans(pid=HOST_PID)
        assert [s.name for s in spans] == ["inner", "inner2", "outer"]
        assert spans[1].args == {"k": 1}
        outer = spans[2]
        for inner in spans[:2]:
            assert outer.ts <= inner.ts and inner.end <= outer.end
        assert_properly_nested([(s.ts, s.end) for s in spans])

    def test_span_records_even_on_exception(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("boom"):
                raise RuntimeError
        assert [s.name for s in tr.spans()] == ["boom"]

    def test_virtual_spans_and_instants(self):
        tr = Tracer()
        tr.virtual_span("work", proc=3, start=1.0, end=2.5, cat="task", n=7)
        tr.virtual_instant("steal", proc=3, t=2.5, victim=1)
        span = tr.spans(cat="task")[0]
        assert (span.pid, span.tid, span.ts, span.end) == (SIM_PID, 3, 1.0, 2.5)
        inst = tr.instants("steal")[0]
        assert inst.ts == 2.5 and inst.args["victim"] == 1

    def test_chrome_trace_structure(self):
        tr = Tracer("demo")
        with tr.span("a"):
            pass
        tr.virtual_span("w", proc=0, start=0.0, end=1.0)
        doc = tr.chrome_trace()
        json.dumps(doc)  # serializable
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["pid"] for e in meta} == {HOST_PID, SIM_PID}
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 2
        virt = next(e for e in xs if e["pid"] == SIM_PID)
        assert virt["ts"] == 0.0 and virt["dur"] == 1e6  # seconds -> us

    def test_write_chrome_and_jsonl(self, tmp_path):
        tr = Tracer()
        with tr.span("a", cat="c", n=np.int64(3)):  # numpy arg must serialize
            pass
        chrome = tmp_path / "t.json"
        jsonl = tmp_path / "t.jsonl"
        tr.write(str(chrome))
        tr.write(str(jsonl))
        assert "traceEvents" in json.loads(chrome.read_text())
        recs = [json.loads(line) for line in jsonl.read_text().splitlines()]
        assert recs[0]["name"] == "a" and recs[0]["clock"] == "host"

    def test_null_tracer_records_nothing(self):
        nt = NullTracer()
        with nt.span("x") as sp:
            sp["ignored"] = 1
        nt.instant("i")
        nt.virtual_span("v", 0, 0.0, 1.0)
        nt.virtual_instant("vi", 0, 0.0)
        assert nt.events == []
        assert not nt.enabled

    def test_active_tracer_management(self):
        assert get_tracer() is NULL_TRACER
        tr = Tracer()
        prev = set_tracer(tr)
        try:
            assert get_tracer() is tr
        finally:
            set_tracer(prev)
        assert get_tracer() is NULL_TRACER

    def test_tracing_context_manager(self):
        with tracing() as tr:
            assert get_tracer() is tr
            with get_tracer().span("inside"):
                pass
        assert get_tracer() is NULL_TRACER
        assert [s.name for s in tr.spans()] == ["inside"]


class TestMetrics:
    def test_counter(self):
        c = Counter("c_total", labelnames=("proc",))
        c.inc(proc=0)
        c.inc(5, proc=0)
        c.inc(2, proc=1)
        assert c.value(proc=0) == 6
        assert c.value(proc=1) == 2
        assert c.value(proc=9) == 0
        with pytest.raises(ValueError):
            c.inc(-1, proc=0)
        with pytest.raises(ValueError):
            c.inc(1)  # missing label

    def test_counter_preserves_ints(self):
        c = Counter("c_total")
        c.inc(2**60)
        c.inc(3)
        assert c.value() == 2**60 + 3
        assert isinstance(c.value(), int)

    def test_gauge(self):
        g = Gauge("g")
        g.set(1.5)
        g.inc()
        g.dec(0.5)
        assert g.value() == 2.0

    def test_histogram(self):
        h = Histogram("h_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["counts"] == [1, 2, 3]  # cumulative
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(55.55)
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(1.0, 0.5))

    def test_registry_get_or_create(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", labelnames=("p",))
        assert reg.counter("x_total", labelnames=("p",)) is a
        with pytest.raises(ValueError):
            reg.gauge("x_total")  # kind conflict
        with pytest.raises(ValueError):
            reg.counter("x_total", labelnames=("q",))  # label conflict
        with pytest.raises(ValueError):
            reg.counter("bad name")

    def test_prometheus_text(self):
        reg = MetricsRegistry()
        reg.counter("req_total", "requests", labelnames=("code",)).inc(3, code=200)
        reg.gauge("temp", "temperature").set(1.5)
        h = reg.histogram("lat_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        text = reg.to_prometheus()
        assert "# TYPE req_total counter" in text
        assert 'req_total{code="200"} 3' in text
        assert "temp 1.5" in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text

    def test_write_json_and_prom(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("n_total").inc(7)
        jpath = tmp_path / "m.json"
        ppath = tmp_path / "m.prom"
        reg.write(str(jpath))
        reg.write(str(ppath))
        doc = json.loads(jpath.read_text())
        assert doc["n_total"]["series"][0]["value"] == 7
        assert "n_total 7" in ppath.read_text()

    def test_global_registry_swap(self):
        fresh = MetricsRegistry()
        prev = set_metrics(fresh)
        try:
            assert get_metrics() is fresh
        finally:
            set_metrics(prev)
        assert get_metrics() is prev


class TestCommStatsBridge:
    def make_stats(self):
        stats = CommStats(4, LONESTAR)
        rng = np.random.default_rng(7)
        for p in range(4):
            stats.charge_comm(p, int(rng.integers(1, 10**7)), ncalls=int(rng.integers(1, 9)))
            stats.charge_comm(p, int(rng.integers(1, 10**5)), remote=False)
            stats.charge_compute(p, float(rng.random()))
        return stats

    def test_table6_table7_counters_bit_for_bit(self):
        stats = self.make_stats()
        reg = export_commstats(stats, MetricsRegistry())
        nbytes = reg.get("repro_comm_bytes_total")
        calls = reg.get("repro_comm_calls_total")
        total_bytes = sum(v for _, _, v in nbytes.samples())
        total_calls = sum(v for _, _, v in calls.samples())
        # exact integer totals -> the Table VI / VII averages reproduce
        # bit-for-bit
        assert total_bytes == int(stats.bytes.sum())
        assert total_calls == int(stats.calls.sum())
        assert total_bytes / stats.nproc / 1e6 == stats.volume_mb_per_process()
        assert total_calls / stats.nproc == stats.calls_per_process()
        assert (
            reg.get("repro_comm_volume_mb_per_process").value()
            == stats.volume_mb_per_process()
        )
        assert (
            reg.get("repro_comm_calls_per_process").value()
            == stats.calls_per_process()
        )

    def test_load_balance_exported(self):
        stats = self.make_stats()
        reg = export_commstats(stats, MetricsRegistry())
        assert reg.get("repro_comm_load_balance_ratio").value() == pytest.approx(
            stats.load_balance()
        )
        assert stats.summary()["load_balance"] == stats.load_balance()

    def test_per_proc_labels(self):
        stats = self.make_stats()
        reg = export_commstats(stats, MetricsRegistry())
        clock = reg.get("repro_comm_clock_seconds")
        for p in range(4):
            assert clock.value(proc=p) == float(stats.clock[p])


class TestSchedulerTracing:
    def test_task_spans_exact_times(self):
        tr = Tracer()
        queues = [[2.0, 1.0, 0.5], []]
        outcome = run_work_stealing(
            queues, cost_of=lambda c: c, grid=(1, 2),
            enable_stealing=False, tracer=tr,
        )
        tasks = [s for s in tr.spans(cat="task") if s.tid == 0]
        assert [(s.ts, s.end) for s in tasks] == [
            (0.0, 2.0), (2.0, 3.0), (3.0, 3.5)
        ]
        batches = tr.spans(cat="sched")
        assert batches[-1].end == outcome.finish_time[0]

    def test_steal_instants_recorded(self):
        tr = Tracer()
        queues = [[1.0] * 40, []]
        outcome = run_work_stealing(
            queues, cost_of=lambda c: c, grid=(1, 2), tracer=tr
        )
        steals = tr.instants("steal")
        assert len(steals) == len(outcome.steals)
        assert steals[0].args["victim"] == 0
        assert steals[0].args["ntasks"] >= 1
        assert steals[0].args["scans"] >= 1
        assert tr.instants("idle")  # every proc eventually idles

    def test_gtfock_build_virtual_clocks_agree(self):
        basis = BasisSet.build(water(), "sto-3g")
        engine = MDEngine(basis)
        h = core_hamiltonian(basis)
        d = np.eye(basis.nbf) * 0.3
        tr = Tracer()
        res = gtfock_build(engine, h, d, nproc=4, tracer=tr)
        virt = tr.spans(pid=SIM_PID)
        assert virt, "expected virtual spans"
        for p in range(4):
            ends = [s.end for s in virt if s.tid == p]
            # the last virtual event on each rank is exactly its clock
            assert max(ends) == float(res.stats.clock[p])
        names = {s.name for s in virt}
        assert {"prefetch", "batch", "task"} <= names
        host_names = {s.name for s in tr.spans(pid=HOST_PID)}
        assert {"gtfock_build", "setup", "prefetch", "schedule", "flush"} <= host_names
        # per-rank spans must nest cleanly (Perfetto renders rows per tid)
        for p in range(4):
            assert_properly_nested(
                [(s.ts, s.end) for s in virt if s.tid == p and s.name != "batch"]
            )

    def test_disabled_tracing_adds_no_events(self):
        queues = [[1.0, 1.0], [1.0]]
        run_work_stealing(queues, cost_of=lambda c: c, grid=(1, 2))
        assert NULL_TRACER.events == []


class TestScfTracing:
    def test_scf_iteration_spans_and_gauges(self):
        from repro.scf.hf import RHF

        fresh = MetricsRegistry()
        prev = set_metrics(fresh)
        try:
            with tracing() as tr:
                result = RHF(water(), basis_name="sto-3g").run()
        finally:
            set_metrics(prev)
        iters = [s for s in tr.spans() if s.name == "scf_iteration"]
        assert len(iters) == result.iterations
        inner = {s.name for s in tr.spans(cat="scf")}
        assert {"scf_setup", "fock_build", "diis", "diagonalize"} <= inner
        e = fresh.get("repro_scf_energy_hartree").value(molecule="H2O")
        assert e == pytest.approx(result.energy)
        assert fresh.get("repro_scf_converged").value(molecule="H2O") == 1
        assert (
            fresh.get("repro_scf_iterations_total").value(molecule="H2O")
            == result.iterations
        )


class TestCli:
    def test_scf_trace_and_metrics_flags(self, tmp_path):
        from repro.cli import main

        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.prom"
        rc = main(
            ["scf", "water", "--trace", str(trace), "--metrics", str(metrics)]
        )
        assert rc == 0
        doc = json.loads(trace.read_text())
        spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert any(e["name"] == "scf_iteration" for e in spans)
        by_thread = {}
        for e in spans:
            by_thread.setdefault((e["pid"], e["tid"]), []).append(
                (e["ts"], e["ts"] + e["dur"])
            )
        for ss in by_thread.values():
            assert_properly_nested(ss)
        text = metrics.read_text()
        assert "repro_scf_energy_hartree" in text
        # CLI restores the null tracer afterwards
        assert get_tracer() is NULL_TRACER

    def test_jsonl_trace(self, tmp_path):
        from repro.cli import main

        trace = tmp_path / "trace.jsonl"
        assert main(["scf", "h2", "--trace", str(trace)]) == 0
        recs = [json.loads(line) for line in trace.read_text().splitlines()]
        assert all("name" in r and "ts" in r for r in recs)
