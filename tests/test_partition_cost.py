"""Tests for the static 2-D partition and the vectorized task cost matrix."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem.basis.basisset import BasisSet
from repro.chem.builders import alkane, water
from repro.fock.cost import parity_allowed, quartet_cost_matrix
from repro.fock.partition import StaticPartition, TaskBlock
from repro.fock.screening_map import ScreeningMap
from repro.fock.symmetry import symmetry_check
from repro.fock.tasks import enumerate_task_quartets
from repro.integrals.schwarz import schwarz_model


class TestStaticPartition:
    @given(st.integers(1, 64), st.integers(8, 60))
    @settings(max_examples=50, deadline=None)
    def test_blocks_tile_task_grid(self, nproc, nshells):
        if nshells < nproc:
            return
        part = StaticPartition.build(nshells, nproc)
        covered = np.zeros((nshells, nshells), dtype=int)
        for p in range(part.nproc):
            blk = part.task_block(p)
            covered[blk.row_lo : blk.row_hi, blk.col_lo : blk.col_hi] += 1
        assert np.all(covered == 1)

    def test_owner_of_task_matches_blocks(self):
        part = StaticPartition.build(20, 6)
        for p in range(6):
            blk = part.task_block(p)
            for (m, n) in blk.tasks():
                assert part.owner_of_task(m, n) == p

    def test_too_many_procs_rejected(self):
        with pytest.raises(ValueError):
            StaticPartition.build(3, 16)

    def test_matrix_bounds_follow_shells(self):
        basis = BasisSet.build(water(), "sto-3g")
        part = StaticPartition.build(basis.nshells, 4)
        rb, cb = part.matrix_bounds(basis)
        assert rb[0] == 0 and rb[-1] == basis.nbf
        assert np.all(np.diff(rb) > 0)

    def test_task_block_tasks_count(self):
        blk = TaskBlock(2, 5, 1, 4)
        assert blk.ntasks == 9
        assert len(blk.tasks()) == 9


class TestParityAllowed:
    @given(st.integers(0, 40), st.integers(2, 50))
    @settings(max_examples=60, deadline=None)
    def test_matches_symmetry_check(self, m, ns):
        if m >= ns:
            return
        mask = parity_allowed(m, ns)
        for p in range(ns):
            assert mask[p] == symmetry_check(m, p)


@pytest.fixture(scope="module")
def small_screen():
    basis = BasisSet.build(alkane(5), "sto-3g")
    return ScreeningMap(basis, schwarz_model(basis), 1e-8)


class TestCostMatrix:
    def test_exact_diagonal_matches_enumeration(self, small_screen):
        """Vectorized counts == per-task enumeration, every task."""
        costs = quartet_cost_matrix(small_screen, exact_diagonal=True)
        sizes = small_screen.basis.shell_sizes().astype(float)
        ns = small_screen.nshells
        for m in range(0, ns, 3):
            for n in range(0, ns, 4):
                cnt = 0
                eri = 0.0
                for (mm, p, nn, q) in enumerate_task_quartets(small_screen, m, n):
                    cnt += 1
                    eri += sizes[mm] * sizes[p] * sizes[nn] * sizes[q]
                assert costs.quartets[m, n] == pytest.approx(cnt)
                assert costs.eris[m, n] == pytest.approx(eri)

    def test_total_matches_unique_count(self, small_screen):
        """Sum over all tasks == number of unique screened quartets."""
        from repro.scf.fock import canonical_shell_quartets

        costs = quartet_cost_matrix(small_screen, exact_diagonal=True)
        unique = sum(
            1 for _ in canonical_shell_quartets(small_screen.sigma, small_screen.tau)
        )
        assert costs.total_quartets == pytest.approx(unique)

    def test_gated_tasks_zero(self, small_screen):
        costs = quartet_cost_matrix(small_screen)
        ns = small_screen.nshells
        for m in range(ns):
            for n in range(ns):
                if not symmetry_check(m, n):
                    assert costs.quartets[m, n] == 0.0

    def test_approx_diagonal_close(self, small_screen):
        exact = quartet_cost_matrix(small_screen, exact_diagonal=True)
        approx = quartet_cost_matrix(small_screen, exact_diagonal=False)
        off = ~np.eye(small_screen.nshells, dtype=bool)
        assert np.allclose(exact.quartets[off], approx.quartets[off])
        # diagonal approximation within a factor ~2
        d_e = exact.quartets.diagonal().sum()
        d_a = approx.quartets.diagonal().sum()
        assert 0.5 * d_e <= d_a <= 2.0 * d_e + 1

    def test_block_sum(self, small_screen):
        costs = quartet_cost_matrix(small_screen)
        rows = np.arange(0, 4)
        cols = np.arange(2, 6)
        manual = costs.eris[np.ix_(rows, cols)].sum()
        assert costs.block_sum(rows, cols) == pytest.approx(manual)

    def test_screening_reduces_work(self, small_screen):
        """Tighter tau keeps more quartets."""
        loose = quartet_cost_matrix(small_screen)
        tight_screen = ScreeningMap(
            small_screen.basis, small_screen.sigma, 1e-3
        )
        tight = quartet_cost_matrix(tight_screen)
        assert tight.total_quartets < loose.total_quartets
