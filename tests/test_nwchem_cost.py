"""Tests for the vectorized NWChem task-cost estimation."""

import numpy as np
import pytest

from repro.chem.basis.basisset import BasisSet
from repro.chem.builders import alkane, water_cluster
from repro.fock.cost import quartet_cost_matrix
from repro.fock.nwchem_cost import build_nwchem_task_arrays
from repro.fock.screening_map import ScreeningMap
from repro.integrals.schwarz import schwarz_model


@pytest.fixture(scope="module")
def screen():
    basis = BasisSet.build(alkane(8), "vdz-sim")
    return ScreeningMap(basis, schwarz_model(basis), 1e-10)


class TestTaskArrays:
    def test_costs_normalized_to_exact_total(self, screen):
        total = quartet_cost_matrix(screen).total_eris
        arrays = build_nwchem_task_arrays(screen, total, 1e-6, 0.0)
        assert arrays.cost.sum() == pytest.approx(total * 1e-6, rel=1e-9)

    def test_task_overhead_added_per_task(self, screen):
        total = quartet_cost_matrix(screen).total_eris
        without = build_nwchem_task_arrays(screen, total, 1e-6, 0.0)
        with_oh = build_nwchem_task_arrays(screen, total, 1e-6, 1e-3)
        assert with_oh.cost.sum() == pytest.approx(
            without.cost.sum() + 1e-3 * without.ntasks, rel=1e-9
        )

    def test_comm_nonnegative_and_paired(self, screen):
        total = quartet_cost_matrix(screen).total_eris
        arrays = build_nwchem_task_arrays(screen, total, 1e-6, 0.0)
        assert np.all(arrays.comm_bytes >= 0)
        # 12 calls per surviving quartet: calls are multiples of 12
        assert np.all(arrays.comm_calls % 12 == 0)
        # tasks with zero calls move zero bytes
        assert np.all(arrays.comm_bytes[arrays.comm_calls == 0] == 0)

    def test_chunking_changes_task_count(self, screen):
        total = quartet_cost_matrix(screen).total_eris
        a1 = build_nwchem_task_arrays(screen, total, 1e-6, 0.0, chunk=1)
        a5 = build_nwchem_task_arrays(screen, total, 1e-6, 0.0, chunk=5)
        assert a1.ntasks > a5.ntasks
        assert a1.cost.sum() == pytest.approx(a5.cost.sum(), rel=1e-9)

    def test_bucket_count_stability(self, screen):
        """Totals are bucket-independent (normalization guarantees it) and
        the cost distribution only sharpens with more buckets."""
        total = quartet_cost_matrix(screen).total_eris
        a2 = build_nwchem_task_arrays(screen, total, 1e-6, 0.0, nbuckets=2)
        a8 = build_nwchem_task_arrays(screen, total, 1e-6, 0.0, nbuckets=8)
        assert a2.cost.sum() == pytest.approx(a8.cost.sum(), rel=1e-9)
        assert a2.ntasks == a8.ntasks

    def test_dense_3d_system(self):
        """A 3-D cluster (every pair significant) still enumerates fine."""
        basis = BasisSet.build(water_cluster(2, 2, 1), "vdz-sim")
        screen = ScreeningMap(basis, schwarz_model(basis), 1e-10)
        total = quartet_cost_matrix(screen).total_eris
        arrays = build_nwchem_task_arrays(screen, total, 1e-6, 0.0)
        assert arrays.ntasks > 0
        assert arrays.cost.sum() > 0
