"""Tests for prefetch footprints and both task decompositions."""

from collections import Counter

import numpy as np
import pytest

from repro.chem.basis.basisset import BasisSet
from repro.chem.builders import alkane, methane
from repro.fock.partition import StaticPartition, TaskBlock
from repro.fock.prefetch import (
    block_footprint,
    footprint_bounding_boxes,
    ga_calls_for_footprint,
    task_footprint_elements,
)
from repro.fock.screening_map import ScreeningMap
from repro.fock.symmetry import canonical_instance
from repro.fock.tasks import (
    atom_quartet_shell_quartets,
    atom_sigma,
    enumerate_task_quartets,
    nwchem_task_list,
)
from repro.integrals.schwarz import schwarz_matrix, schwarz_model
from repro.scf.fock import canonical_shell_quartets


@pytest.fixture(scope="module")
def screen():
    basis = BasisSet.build(alkane(10), "vdz-sim")
    return ScreeningMap(basis, schwarz_model(basis), 1e-10)


class TestFootprint:
    def test_covers_task_reads(self, screen):
        """Every D pair a task's quartets read lies inside the footprint
        (in at least one orientation -- D is symmetric)."""
        m, n = 7, 19
        fp = block_footprint(screen, TaskBlock(m, m + 1, n, n + 1))
        union = fp.row_pairs | fp.col_pairs | np.outer(fp.phi_rows, fp.phi_cols)
        for (mm, p, nn, q) in enumerate_task_quartets(screen, m, n):
            for (a, b) in (
                (mm, p), (nn, q), (p, q), (mm, nn), (mm, q), (p, nn),
            ):
                assert union[a, b] or union[b, a], f"pair {(a, b)} uncovered"

    def test_block_smaller_than_sum_of_tasks(self, screen):
        """The Figure-1 effect: union footprint << per-task sum."""
        blk = TaskBlock(5, 15, 10, 20)
        fp = block_footprint(screen, blk)
        per_task_sum = sum(
            task_footprint_elements(screen, m, n) for (m, n) in blk.tasks()
        )
        assert fp.elements < 0.25 * per_task_sum

    def test_elements_counts_union(self, screen):
        fp = block_footprint(screen, TaskBlock(0, 2, 0, 2))
        sizes = screen.basis.shell_sizes()
        union = fp.row_pairs | fp.col_pairs | np.outer(fp.phi_rows, fp.phi_cols)
        manual = int((sizes[:, None] * sizes[None, :])[union].sum())
        assert fp.elements == manual

    def test_bounding_boxes_cover_regions(self, screen):
        fp = block_footprint(screen, TaskBlock(3, 6, 8, 11))
        boxes = footprint_bounding_boxes(fp)
        assert 1 <= len(boxes) <= 3
        union = fp.row_pairs | fp.col_pairs | np.outer(fp.phi_rows, fp.phi_cols)
        covered = np.zeros_like(union)
        for r0, r1, c0, c1 in boxes:
            covered[r0:r1, c0:c1] = True
        assert np.all(covered[union])

    def test_ga_calls_scale_with_grid(self, screen):
        fp = block_footprint(screen, TaskBlock(0, 4, 0, 4))
        part1 = StaticPartition.build(screen.nshells, 1)
        part4 = StaticPartition.build(screen.nshells, 16)
        c1 = ga_calls_for_footprint(fp, part1.row_shell_bounds, part1.col_shell_bounds)
        c4 = ga_calls_for_footprint(fp, part4.row_shell_bounds, part4.col_shell_bounds)
        assert c1 <= c4
        assert c1 >= 1


@pytest.fixture(scope="module")
def methane_screen():
    basis = BasisSet.build(methane(), "sto-3g")
    return ScreeningMap(basis, schwarz_matrix(basis), 1e-11)


class TestTaskDecompositions:
    def test_gtfock_tasks_cover_all_orbits_once(self, methane_screen):
        ref = {
            canonical_instance(m, n, p, q)
            for (m, n, p, q) in canonical_shell_quartets(
                methane_screen.sigma, methane_screen.tau
            )
        }
        counts = Counter()
        ns = methane_screen.nshells
        for m in range(ns):
            for n in range(ns):
                for (mm, p, nn, q) in enumerate_task_quartets(methane_screen, m, n):
                    counts[canonical_instance(mm, p, nn, q)] += 1
        assert set(counts) == ref
        assert all(v == 1 for v in counts.values())

    def test_nwchem_tasks_cover_all_orbits_once(self, methane_screen):
        ref = {
            canonical_instance(m, n, p, q)
            for (m, n, p, q) in canonical_shell_quartets(
                methane_screen.sigma, methane_screen.tau
            )
        }
        basis = methane_screen.basis
        soa = basis.atom_shell_lists()
        counts = Counter()
        for t in nwchem_task_list(methane_screen):
            for l_at in t.l_range():
                for (m, n, p, q) in atom_quartet_shell_quartets(
                    methane_screen, soa, t.i_at, t.j_at, t.k_at, l_at
                ):
                    counts[canonical_instance(m, n, p, q)] += 1
        assert set(counts) == ref
        assert all(v == 1 for v in counts.values())

    def test_nwchem_chunking(self, methane_screen):
        for chunk in (1, 3, 5):
            tasks = nwchem_task_list(methane_screen, chunk=chunk)
            for t in tasks:
                assert t.l_hi - t.l_lo + 1 <= chunk

    def test_atom_sigma_reduction(self, methane_screen):
        a_sig = atom_sigma(methane_screen)
        basis = methane_screen.basis
        soa = basis.atom_shell_lists()
        # atom value is the max of the shell-pair block
        blk = methane_screen.sigma[np.ix_(soa[0], soa[1])]
        assert a_sig[0, 1] == pytest.approx(float(blk.max()))
        assert np.allclose(a_sig, a_sig.T)

    def test_gtfock_screening_tightens(self, methane_screen):
        """Stricter tau yields a subset of quartets per task."""
        loose = set(enumerate_task_quartets(methane_screen, 1, 1))
        tight_screen = ScreeningMap(methane_screen.basis, methane_screen.sigma, 1e-2)
        tight = set(enumerate_task_quartets(tight_screen, 1, 1))
        assert tight <= loose
