"""Property-based validation of the vectorized task cost matrix.

For random synthetic screening matrices, the fully vectorized
``quartet_cost_matrix`` (with exact diagonal handling) must agree with
brute-force enumeration of the task predicate -- over arbitrary value
distributions and drop tolerances, not just chemically shaped ones.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem.basis.basisset import BasisSet
from repro.chem.builders import alkane
from repro.fock.cost import quartet_cost_matrix
from repro.fock.screening_map import ScreeningMap
from repro.fock.symmetry import symmetry_check, task_computes


def random_screen(seed: int, tau_exp: int) -> ScreeningMap:
    """Random symmetric sigma over a small real basis (sizes matter)."""
    basis = BasisSet.build(alkane(2), "sto-3g")  # 12 shells, mixed sizes
    rng = np.random.default_rng(seed)
    ns = basis.nshells
    raw = 10.0 ** rng.uniform(-8, 0, size=(ns, ns))
    sigma = np.sqrt(raw * raw.T)  # symmetric, positive
    return ScreeningMap(basis, sigma, 10.0**tau_exp)


def brute_force(screen: ScreeningMap) -> tuple[np.ndarray, np.ndarray]:
    ns = screen.nshells
    sizes = screen.basis.shell_sizes().astype(float)
    sig = screen.significant
    quartets = np.zeros((ns, ns))
    eris = np.zeros((ns, ns))
    for m in range(ns):
        for n in range(ns):
            if not symmetry_check(m, n):
                continue
            for p in range(ns):
                if not sig[m, p]:
                    continue
                for q in range(ns):
                    if not sig[n, q]:
                        continue
                    if screen.sigma[m, p] * screen.sigma[n, q] <= screen.tau:
                        continue
                    if task_computes(m, n, p, q):
                        quartets[m, n] += 1
                        eris[m, n] += sizes[m] * sizes[p] * sizes[n] * sizes[q]
    return quartets, eris


@given(st.integers(0, 10**6), st.integers(-9, -2))
@settings(max_examples=12, deadline=None)
def test_cost_matrix_matches_brute_force(seed, tau_exp):
    screen = random_screen(seed, tau_exp)
    costs = quartet_cost_matrix(screen, exact_diagonal=True)
    bq, be = brute_force(screen)
    assert np.allclose(costs.quartets, bq)
    assert np.allclose(costs.eris, be)


def test_cost_matrix_uniform_sigma():
    """Degenerate case: all pair values equal."""
    basis = BasisSet.build(alkane(2), "sto-3g")
    ns = basis.nshells
    screen = ScreeningMap(basis, np.full((ns, ns), 0.5), 1e-6)
    costs = quartet_cost_matrix(screen, exact_diagonal=True)
    bq, _be = brute_force(screen)
    assert np.allclose(costs.quartets, bq)
    # and totals equal the unique-quartet count with no screening
    npair = ns * (ns + 1) // 2
    assert costs.total_quartets == npair * (npair + 1) // 2
