"""Tests for dipole integrals and SCF properties."""

import numpy as np
import pytest

from repro.chem.basis.basisset import BasisSet
from repro.chem.basis.shells import Shell
from repro.chem.builders import h2, methane, water
from repro.integrals.moments import dipole_block, dipole_integrals
from repro.integrals.oneelec import overlap
from repro.scf.hf import RHF
from repro.scf.properties import (
    dipole_moment,
    mulliken_charges,
    mulliken_populations,
    orbital_summary,
)


def s_shell(alpha, center):
    return Shell(l=0, exps=np.array([alpha]), coefs=np.array([1.0]),
                 center=np.array(center, dtype=float), atom_index=0)


class TestDipoleIntegrals:
    def test_s_gaussian_centered_at_origin(self):
        """<s| r |s> = center for a normalized Gaussian (here 0)."""
        sh = s_shell(0.9, (0, 0, 0))
        blocks = dipole_block(sh, sh, np.zeros(3))
        for k in range(3):
            assert blocks[k][0, 0] == pytest.approx(0.0, abs=1e-14)

    def test_s_gaussian_off_origin(self):
        """<s| r_k |s> equals the Gaussian center coordinate."""
        c = (0.3, -0.7, 1.1)
        sh = s_shell(1.4, c)
        blocks = dipole_block(sh, sh, np.zeros(3))
        for k in range(3):
            assert blocks[k][0, 0] == pytest.approx(c[k], rel=1e-12)

    def test_origin_shift_identity(self):
        """<a| r - O |b> = <a| r |b> - O <a|b>."""
        basis = BasisSet.build(water(), "sto-3g")
        s = overlap(basis)
        d0 = dipole_integrals(basis, np.zeros(3))
        origin = np.array([0.5, -1.0, 2.0])
        d1 = dipole_integrals(basis, origin)
        for k in range(3):
            assert np.allclose(d1[k], d0[k] - origin[k] * s, atol=1e-10)

    def test_symmetric(self):
        basis = BasisSet.build(water(), "sto-3g")
        d = dipole_integrals(basis)
        for k in range(3):
            assert np.allclose(d[k], d[k].T, atol=1e-12)


class TestDipoleMoment:
    def test_h2_zero_by_symmetry(self):
        mol = h2(0.7414)
        res = RHF(mol).run()
        basis = BasisSet.build(mol, "sto-3g")
        mu = dipole_moment(basis, res.density)
        assert mu.magnitude == pytest.approx(0.0, abs=1e-8)

    def test_water_nonzero_reasonable(self):
        mol = water()
        res = RHF(mol).run()
        basis = BasisSet.build(mol, "sto-3g")
        mu = dipole_moment(basis, res.density)
        # RHF/STO-3G water dipole ~ 1.7 debye
        assert 1.0 < mu.debye < 2.5

    def test_origin_independent_for_neutral(self):
        mol = water()
        res = RHF(mol).run()
        basis = BasisSet.build(mol, "sto-3g")
        m0 = dipole_moment(basis, res.density, np.zeros(3)).total
        m1 = dipole_moment(basis, res.density, np.array([1.0, 2.0, 3.0])).total
        assert np.allclose(m0, m1, atol=1e-8)


class TestMulliken:
    @pytest.fixture(scope="class")
    def water_state(self):
        mol = water()
        res = RHF(mol).run()
        basis = BasisSet.build(mol, "sto-3g")
        return basis, res.density, overlap(basis)

    def test_populations_sum_to_electrons(self, water_state):
        basis, d, s = water_state
        pops = mulliken_populations(basis, d, s)
        assert pops.sum() == pytest.approx(10.0, abs=1e-8)

    def test_charges_sum_to_molecular_charge(self, water_state):
        basis, d, s = water_state
        q = mulliken_charges(basis, d, s)
        assert q.sum() == pytest.approx(0.0, abs=1e-8)

    def test_oxygen_negative_hydrogens_positive(self, water_state):
        basis, d, s = water_state
        q = mulliken_charges(basis, d, s)
        assert q[0] < 0  # O
        assert q[1] > 0 and q[2] > 0  # H

    def test_methane_carbon_negative(self):
        mol = methane()
        res = RHF(mol).run()
        basis = BasisSet.build(mol, "sto-3g")
        q = mulliken_charges(basis, res.density, overlap(basis))
        assert q[0] < 0
        assert np.allclose(q[1:], q[1], atol=1e-6)  # equivalent hydrogens


class TestOrbitalSummary:
    def test_homo_lumo(self):
        eps = np.array([-2.0, -1.0, 0.5, 1.5])
        s = orbital_summary(eps, 2)
        assert s.homo == -1.0
        assert s.lumo == 0.5
        assert s.gap == 1.5

    def test_full_occupation_no_lumo(self):
        s = orbital_summary(np.array([-1.0, -0.5]), 2)
        assert s.lumo is None
        assert s.gap is None

    def test_invalid_nocc(self):
        with pytest.raises(ValueError):
            orbital_summary(np.array([-1.0]), 2)
