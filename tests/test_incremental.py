"""Tests for incremental (delta-density) Fock construction."""

import numpy as np

from repro.integrals.engine import MDEngine
from repro.scf.fock import fock_matrix
from repro.scf.incremental import IncrementalFockBuilder


class TestIncrementalFock:
    def test_first_call_matches_full_build(self, water_engine, water_matrices):
        _s, h, _x, d = water_matrices
        inc = IncrementalFockBuilder(MDEngine(water_engine.basis), tau=1e-11)
        f = inc.fock(h, d)
        assert np.allclose(f, fock_matrix(water_engine, h, d, 1e-11), atol=1e-12)

    def test_incremental_matches_full_along_scf_path(
        self, water_engine, water_matrices
    ):
        """Fock matrices along a mock density sequence stay accurate."""
        _s, h, _x, d = water_matrices
        rng = np.random.default_rng(4)
        eng = MDEngine(water_engine.basis)
        inc = IncrementalFockBuilder(eng, tau=1e-13, rebuild_every=100)
        cur = d.copy()
        for step in range(4):
            f_inc = inc.fock(h, cur)
            f_ref = fock_matrix(water_engine, h, cur, 1e-13)
            assert np.allclose(f_inc, f_ref, atol=1e-8), f"step {step}"
            bump = rng.normal(size=cur.shape) * (0.01 / (step + 1))
            cur = cur + 0.5 * (bump + bump.T)

    def test_small_delta_computes_fewer_quartets(
        self, water_engine, water_matrices
    ):
        _s, h, _x, d = water_matrices
        eng = MDEngine(water_engine.basis)
        inc = IncrementalFockBuilder(eng, tau=1e-8, rebuild_every=100)
        inc.fock(h, d)
        # near-converged step: tiny density change
        inc.fock(h, d + 1e-9 * np.eye(d.shape[0]))
        full_quartets, delta_quartets = inc.history
        assert delta_quartets < 0.2 * full_quartets

    def test_identical_density_free(self, water_engine, water_matrices):
        _s, h, _x, d = water_matrices
        eng = MDEngine(water_engine.basis)
        inc = IncrementalFockBuilder(eng, tau=1e-11, rebuild_every=100)
        f1 = inc.fock(h, d)
        f2 = inc.fock(h, d.copy())
        assert np.allclose(f1, f2, atol=1e-14)
        assert inc.history[1] == 0

    def test_rebuild_every_forces_full(self, water_engine, water_matrices):
        _s, h, _x, d = water_matrices
        eng = MDEngine(water_engine.basis)
        inc = IncrementalFockBuilder(eng, tau=1e-11, rebuild_every=2)
        inc.fock(h, d)  # full (count 0)
        inc.fock(h, d)  # incremental (count 1)
        inc.fock(h, d)  # full again (count 2 % 2 == 0)
        assert inc.history[2] == inc.history[0]

    def test_reset(self, water_engine, water_matrices):
        _s, h, _x, d = water_matrices
        eng = MDEngine(water_engine.basis)
        inc = IncrementalFockBuilder(eng, tau=1e-11)
        inc.fock(h, d)
        inc.reset()
        f = inc.fock(h, d)
        assert np.allclose(f, fock_matrix(water_engine, h, d, 1e-11), atol=1e-12)
