"""Tests for the cross-quartet class-batched ERI path.

The class-batched kernel, scatter, and threaded driver must reproduce
the per-quartet paths (PR-2 batched, seed MD, Obara-Saika) exactly to
summation order across mixed s/p/d bases, and its profiler attribution
must land one span per class chunk, not per quartet.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem.basis.basisset import BasisSet
from repro.chem.basis.shells import Shell
from repro.chem.builders import water
from repro.integrals.class_batch import (
    EIGHT_PERMUTATIONS,
    build_class_plan,
    compute_class_rows,
    distinct_perms,
    iter_canonical_quartets,
    jk_for_quartets,
    jk_from_plan,
)
from repro.integrals.engine import MDEngine, OSEngine
from repro.obs.profile import (
    PHASE_ERI,
    PHASE_JK,
    PhaseProfiler,
    set_profiler,
)
from repro.scf.fock import build_jk


def rand_shell(rng, l, pure=False):
    n = int(rng.integers(1, 4))
    return Shell(
        l=l,
        exps=rng.uniform(0.2, 3.0, n),
        coefs=rng.uniform(0.3, 1.0, n),
        center=rng.uniform(-1.5, 1.5, 3),
        atom_index=0,
        pure=pure,
    )


def rand_basis(rng, nshells=6, lmax=2):
    """A small random mixed s/p/d basis (some pure d shells)."""
    shells = []
    for _ in range(nshells):
        l = int(rng.integers(0, lmax + 1))
        pure = bool(l == 2 and rng.integers(0, 2))
        shells.append(rand_shell(rng, l, pure=pure))
    return BasisSet(molecule=water(), shells=shells, name="rand")


def rand_density(rng, n):
    d = rng.normal(size=(n, n))
    return (d + d.T) / 2.0


class TestClassJKAgreement:
    """The class-batched J/K build vs every per-quartet path."""

    def test_matches_batched_seed_and_os_on_water(self):
        basis = BasisSet.build(water(), "sto-3g")
        rng = np.random.default_rng(5)
        d = rand_density(rng, basis.nbf)
        j_cls, k_cls = build_jk(MDEngine(basis), d)
        j_bat, k_bat = build_jk(MDEngine(basis, class_batched=False), d)
        j_seed, k_seed = build_jk(MDEngine(basis, batched=False), d)
        j_os, k_os = build_jk(OSEngine(basis), d)
        for j, k in ((j_bat, k_bat), (j_seed, k_seed), (j_os, k_os)):
            assert np.allclose(j_cls, j, atol=1e-10, rtol=0)
            assert np.allclose(k_cls, k, atol=1e-10, rtol=0)

    @given(st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_matches_per_quartet_on_random_bases(self, seed):
        rng = np.random.default_rng(seed)
        basis = rand_basis(rng)
        d = rand_density(rng, basis.nbf)
        j_cls, k_cls = build_jk(MDEngine(basis), d, tau=0.0)
        j_ref, k_ref = build_jk(
            MDEngine(basis, class_batched=False), d, tau=0.0
        )
        assert np.allclose(j_cls, j_ref, atol=1e-10, rtol=0)
        assert np.allclose(k_cls, k_ref, atol=1e-10, rtol=0)

    def test_class_rows_match_engine_quartets(self):
        """compute_class_rows blocks == the per-quartet batched kernel."""
        basis = BasisSet.build(water(), "6-31g")
        engine = MDEngine(basis)
        ref = MDEngine(basis, class_batched=False)
        plan = engine.class_plan(1e-11)
        for batch in plan.batches[:4]:
            rows = np.arange(min(batch.nq, 8))
            blocks = compute_class_rows(batch, rows)
            for blk, (m, n, p, q) in zip(blocks, batch.quartets[rows]):
                expected = ref.quartet(int(m), int(n), int(p), int(q))
                assert np.allclose(blk, expected, atol=1e-12, rtol=0)

    def test_counts_computed_quartets_like_per_quartet_path(self):
        basis = BasisSet.build(water(), "sto-3g")
        rng = np.random.default_rng(2)
        d = rand_density(rng, basis.nbf)
        e_cls = MDEngine(basis)
        e_ref = MDEngine(basis, class_batched=False)
        build_jk(e_cls, d)
        build_jk(e_ref, d)
        assert e_cls.quartets_computed == e_ref.quartets_computed


class TestDistinctPerms:
    """Pattern-uniform permutation lists behind the batched scatter."""

    @given(st.lists(st.integers(0, 3), min_size=4, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_images_distinct_and_cover_orbit(self, vals):
        quartet = tuple(vals)
        perms = distinct_perms(quartet)
        images = [tuple(quartet[i] for i in perm) for perm in perms]
        assert len(images) == len(set(images))
        full_orbit = {
            tuple(quartet[i] for i in perm) for perm in EIGHT_PERMUTATIONS
        }
        assert set(images) == full_orbit

    def test_pattern_determines_perm_list(self):
        # quartets sharing an equality pattern share the distinct list
        assert distinct_perms((3, 1, 3, 1)) == distinct_perms((7, 2, 7, 2))
        assert distinct_perms((2, 2, 2, 2)) == distinct_perms((5, 5, 5, 5))
        assert len(distinct_perms((0, 0, 0, 0))) == 1
        assert len(distinct_perms((3, 2, 1, 0))) == 8


class TestThreadedContraction:
    def test_threaded_matches_serial(self):
        basis = BasisSet.build(water(), "6-31g")
        rng = np.random.default_rng(11)
        d = rand_density(rng, basis.nbf)
        engine = MDEngine(basis)
        plan = engine.class_plan(1e-11)
        j1, k1 = jk_from_plan(engine, d, plan, threads=1)
        j4, k4 = jk_from_plan(engine, d, plan, threads=4)
        assert np.allclose(j1, j4, atol=1e-12, rtol=0)
        assert np.allclose(k1, k4, atol=1e-12, rtol=0)

    def test_build_jk_threads_kwarg(self):
        basis = BasisSet.build(water(), "sto-3g")
        rng = np.random.default_rng(13)
        d = rand_density(rng, basis.nbf)
        j1, k1 = build_jk(MDEngine(basis), d)
        j2, k2 = build_jk(MDEngine(basis), d, threads=3)
        assert np.allclose(j1, j2, atol=1e-12, rtol=0)
        assert np.allclose(k1, k2, atol=1e-12, rtol=0)


class TestPlanCaching:
    def test_plan_memoized_per_tau(self, water_basis):
        engine = MDEngine(water_basis)
        p1 = engine.class_plan(1e-11)
        p2 = engine.class_plan(1e-11)
        assert p1 is p2
        assert engine.class_plan(1e-9) is not p1

    def test_plan_lru_bounded(self, water_basis):
        engine = MDEngine(water_basis)
        for i in range(12):
            engine.class_plan(10.0 ** (-i - 3))
        assert len(engine._class_plans) <= 8

    def test_force_reference_path_disables_class_batching(self, water_basis):
        engine = MDEngine(water_basis)
        engine.class_plan(1e-11)
        engine.force_reference_path()
        assert not engine.supports_class_batched
        assert len(engine._class_plans) == 0

    def test_plan_covers_all_screened_quartets(self, water_basis):
        engine = MDEngine(water_basis)
        tau = 1e-11
        plan = engine.class_plan(tau)
        expected = set(iter_canonical_quartets(engine.schwarz(), tau))
        planned = {
            tuple(int(v) for v in row)
            for batch in plan.batches
            for row in batch.quartets
        }
        assert planned == expected


class TestJKForQuartets:
    """The explicit-quartet-list entry used by the mp Fock workers."""

    def test_non_canonical_tuples_give_same_jk(self):
        basis = BasisSet.build(water(), "sto-3g")
        rng = np.random.default_rng(23)
        d = rand_density(rng, basis.nbf)
        engine = MDEngine(basis)
        canonical = list(iter_canonical_quartets(engine.schwarz(), 1e-11))
        # scramble each tuple to a random image of its symmetry orbit:
        # the distinct-image scatter must produce the identical J/K
        scrambled = []
        for quartet in canonical:
            perm = EIGHT_PERMUTATIONS[rng.integers(0, 8)]
            scrambled.append(tuple(quartet[i] for i in perm))
        j_ref, k_ref = jk_for_quartets(engine, d, canonical)
        j_scr, k_scr = jk_for_quartets(engine, d, scrambled)
        assert np.allclose(j_ref, j_scr, atol=1e-12, rtol=0)
        assert np.allclose(k_ref, k_scr, atol=1e-12, rtol=0)

    def test_partition_sums_to_whole(self):
        basis = BasisSet.build(water(), "sto-3g")
        rng = np.random.default_rng(29)
        d = rand_density(rng, basis.nbf)
        engine = MDEngine(basis)
        quartets = list(iter_canonical_quartets(engine.schwarz(), 1e-11))
        j_all, k_all = jk_for_quartets(engine, d, quartets)
        half = len(quartets) // 2
        j1, k1 = jk_for_quartets(engine, d, quartets[:half])
        j2, k2 = jk_for_quartets(engine, d, quartets[half:])
        assert np.allclose(j_all, j1 + j2, atol=1e-12, rtol=0)
        assert np.allclose(k_all, k1 + k2, atol=1e-12, rtol=0)


class TestProfilerAttribution:
    """Spans land per class chunk, not per quartet -- serial and threaded."""

    @pytest.mark.parametrize("threads", [1, 3])
    def test_eri_and_jk_phases_recorded_per_chunk(self, threads):
        basis = BasisSet.build(water(), "sto-3g")
        rng = np.random.default_rng(31)
        d = rand_density(rng, basis.nbf)
        engine = MDEngine(basis)
        plan = engine.class_plan(1e-11)
        nchunks = len(plan.chunks())
        prof = PhaseProfiler()
        set_profiler(prof)
        try:
            jk_from_plan(engine, d, plan, threads=threads)
        finally:
            set_profiler(None)
        assert prof.stats[PHASE_ERI].calls == nchunks
        assert prof.stats[PHASE_JK].calls == nchunks
        assert prof.stats[PHASE_ERI].calls < plan.nquartets
        assert prof.stats[PHASE_ERI].wall_s > 0.0
        assert prof.stats[PHASE_JK].wall_s > 0.0


class TestFiniteCheckRescue:
    def test_poisoned_chunk_is_rescued_per_quartet(self, monkeypatch):
        """A NaN row in a batched sweep falls back to the reference
        kernel for that quartet only, matching the clean build."""
        import repro.integrals.class_batch as cb

        basis = BasisSet.build(water(), "sto-3g")
        rng = np.random.default_rng(37)
        d = rand_density(rng, basis.nbf)
        j_ref, k_ref = build_jk(MDEngine(basis), d)

        real = cb.compute_class_rows
        poisoned = {"done": False}

        def poison(batch, rows):
            out = real(batch, rows)
            if not poisoned["done"]:
                out[0] = np.nan
                poisoned["done"] = True
            return out

        monkeypatch.setattr(cb, "compute_class_rows", poison)
        engine = MDEngine(basis)
        engine.finite_check = True
        j, k = build_jk(engine, d)
        assert poisoned["done"]
        assert engine.eri_rescues == 1
        assert np.allclose(j, j_ref, atol=1e-10, rtol=0)
        assert np.allclose(k, k_ref, atol=1e-10, rtol=0)


class TestCacheIntegration:
    def test_second_iteration_served_from_cache(self):
        basis = BasisSet.build(water(), "sto-3g")
        rng = np.random.default_rng(41)
        d = rand_density(rng, basis.nbf)
        engine = MDEngine(basis, cache_mb=64.0)
        j1, k1 = build_jk(engine, d)
        computed = engine.quartets_computed
        j2, k2 = build_jk(engine, d)
        assert engine.quartets_computed == computed
        assert engine.quartets_served_from_cache >= computed
        assert np.array_equal(j1, j2)
        assert np.array_equal(k1, k2)


class TestClassPlanStructure:
    def test_pattern_subgroups_are_uniform(self, water_basis):
        engine = MDEngine(water_basis)
        plan = engine.class_plan(1e-11)
        for batch in plan.batches:
            covered = 0
            for lo, hi, perms in batch.subgroups:
                assert hi > lo
                covered += hi - lo
                for row in batch.quartets[lo:hi]:
                    assert distinct_perms(tuple(int(v) for v in row)) == perms
            assert covered == batch.nq

    def test_throwaway_pair_cache(self, water_basis):
        quartets = [(0, 0, 0, 0), (1, 0, 0, 0), (1, 1, 1, 1)]
        plan = build_class_plan(water_basis, None, quartets)
        assert plan.nquartets == 3
