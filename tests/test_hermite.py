"""Direct tests of the McMurchie-Davidson Hermite machinery."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.integrals.boys import boys
from repro.integrals.hermite import e_coefficients, hermite_index, r_tensor


class TestECoefficients:
    @given(
        st.floats(0.1, 5.0), st.floats(0.1, 5.0), st.floats(-2.0, 2.0)
    )
    @settings(max_examples=50, deadline=None)
    def test_e000_is_gaussian_prefactor(self, a, b, ab):
        e = e_coefficients(0, 0, a, b, ab)
        mu = a * b / (a + b)
        assert e[0, 0, 0] == pytest.approx(math.exp(-mu * ab * ab), rel=1e-12)

    def test_same_center_odd_t_vanish_for_s_p(self):
        """At AB = 0, E_t^{ij} = 0 whenever i + j - t is odd."""
        e = e_coefficients(2, 2, 1.3, 0.7, 0.0)
        for i in range(3):
            for j in range(3):
                for t in range(i + j + 1):
                    if (i + j - t) % 2 == 1:
                        assert e[i, j, t] == pytest.approx(0.0, abs=1e-14)

    @given(st.floats(0.2, 4.0), st.floats(0.2, 4.0), st.floats(-1.5, 1.5))
    @settings(max_examples=40, deadline=None)
    def test_overlap_sum_rule(self, a, b, ab):
        """E_0^{11} reproduces the analytic <p|p> 1-D overlap.

        For 1-D Gaussians x^i e^{-a x^2}: S_ij = E_0^{ij} sqrt(pi/p).
        The p-p overlap has the closed form
        (PA*PB + 1/(2p)) * exp(-mu AB^2) * sqrt(pi/p).
        """
        p = a + b
        mu = a * b / p
        pa = -b / p * ab
        pb = a / p * ab
        e = e_coefficients(1, 1, a, b, ab)
        expected = (pa * pb + 0.5 / p) * math.exp(-mu * ab * ab)
        assert e[1, 1, 0] == pytest.approx(expected, rel=1e-10, abs=1e-14)

    def test_transposition_symmetry(self):
        """E_t^{ij}(a, b, AB) == E_t^{ji}(b, a, -AB)."""
        a, b, ab = 1.7, 0.4, 0.9
        e1 = e_coefficients(2, 2, a, b, ab)
        e2 = e_coefficients(2, 2, b, a, -ab)
        for i in range(3):
            for j in range(3):
                for t in range(i + j + 1):
                    assert e1[i, j, t] == pytest.approx(e2[j, i, t], rel=1e-10,
                                                        abs=1e-14)


class TestHermiteIndex:
    def test_count(self):
        # number of (t,u,v) with t+u+v <= L is C(L+3, 3)
        for L in range(5):
            expected = (L + 1) * (L + 2) * (L + 3) // 6
            assert len(hermite_index(L)) == expected

    def test_unique(self):
        idx = hermite_index(4)
        assert len(set(idx)) == len(idx)


class TestRTensor:
    def test_r000_is_boys(self):
        p = 1.9
        pq = np.array([0.4, -0.2, 0.8])
        r = r_tensor(3, p, pq)
        t = p * float(pq @ pq)
        assert r[0, 0, 0] == pytest.approx(boys(0, t)[0], rel=1e-12)

    def test_odd_components_vanish_at_origin(self):
        r = r_tensor(4, 1.2, np.zeros(3))
        for t in range(5):
            for u in range(5 - t):
                for v in range(5 - t - u):
                    if t % 2 or u % 2 or v % 2:
                        assert r[t, u, v] == pytest.approx(0.0, abs=1e-14)

    def test_axis_permutation_symmetry(self):
        """Swapping PQ components permutes the R tensor consistently."""
        p = 0.8
        pq = np.array([0.5, -1.1, 0.3])
        r1 = r_tensor(3, p, pq)
        r2 = r_tensor(3, p, pq[[1, 0, 2]])
        for t in range(4):
            for u in range(4 - t):
                for v in range(4 - t - u):
                    assert r1[t, u, v] == pytest.approx(r2[u, t, v], rel=1e-10,
                                                        abs=1e-14)

    def test_sign_flip(self):
        """R_{tuv}(-PQ) = (-1)^{t+u+v} R_{tuv}(PQ)."""
        p = 1.4
        pq = np.array([0.7, 0.2, -0.5])
        r1 = r_tensor(3, p, pq)
        r2 = r_tensor(3, p, -pq)
        for t in range(4):
            for u in range(4 - t):
                for v in range(4 - t - u):
                    sign = (-1.0) ** (t + u + v)
                    assert r2[t, u, v] == pytest.approx(sign * r1[t, u, v],
                                                        rel=1e-10, abs=1e-14)
