"""Tests for the geometry generators (graphene flakes, alkanes, demos)."""

import numpy as np
import pytest

from repro.chem.builders import (
    CC_AROMATIC,
    CC_SINGLE,
    CH_BOND,
    alkane,
    benzene,
    coronene,
    graphene_flake,
    h2,
    methane,
    paper_molecule,
    water,
    water_cluster,
)
from repro.chem.elements import BOHR_PER_ANGSTROM


class TestGrapheneFlake:
    @pytest.mark.parametrize("n,nc,nh", [(1, 6, 6), (2, 24, 12), (3, 54, 18), (4, 96, 24)])
    def test_formula_series(self, n, nc, nh):
        m = graphene_flake(n)
        assert sum(1 for s in m.symbols if s == "C") == nc
        assert sum(1 for s in m.symbols if s == "H") == nh

    def test_coronene_named(self):
        assert coronene().formula == "C24H12"

    def test_planar(self):
        z = graphene_flake(3).coords[:, 2]
        assert np.max(np.abs(z)) < 1e-10

    def test_min_distance_is_ch_bond(self):
        m = graphene_flake(2)
        d_min = m.min_interatomic_distance()
        assert abs(d_min - CH_BOND * BOHR_PER_ANGSTROM) < 1e-6

    def test_cc_bond_lengths(self):
        m = graphene_flake(2)
        carbons = m.coords[[i for i, s in enumerate(m.symbols) if s == "C"]]
        # every carbon has a neighbor at exactly the aromatic bond length
        target = CC_AROMATIC * BOHR_PER_ANGSTROM
        for i in range(len(carbons)):
            d = np.linalg.norm(carbons - carbons[i], axis=1)
            d = d[d > 1e-6]
            assert abs(d.min() - target) < 1e-6

    def test_invalid_order_raises(self):
        with pytest.raises(ValueError):
            graphene_flake(0)


class TestAlkane:
    @pytest.mark.parametrize("n", [2, 5, 10, 30])
    def test_formula(self, n):
        m = alkane(n)
        assert sum(1 for s in m.symbols if s == "C") == n
        assert sum(1 for s in m.symbols if s == "H") == 2 * n + 2

    def test_methane_special_case(self):
        assert alkane(1).formula == "CH4"

    def test_backbone_bond_length(self):
        m = alkane(10)
        carbons = m.coords[:10]
        target = CC_SINGLE * BOHR_PER_ANGSTROM
        for i in range(9):
            d = np.linalg.norm(carbons[i + 1] - carbons[i])
            assert abs(d - target) < 1e-6

    def test_ch_bond_lengths(self):
        m = alkane(6)
        carbons = m.coords[:6]
        hydrogens = m.coords[6:]
        target = CH_BOND * BOHR_PER_ANGSTROM
        for hpos in hydrogens:
            d = np.linalg.norm(carbons - hpos, axis=1).min()
            assert abs(d - target) < 1e-6

    def test_no_atom_clashes(self):
        assert alkane(20).min_interatomic_distance() > 1.5  # bohr

    def test_linear_extent_grows(self):
        def span(m):
            return np.ptp(m.coords[:, 0])

        assert span(alkane(20)) > span(alkane(10)) * 1.8

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            alkane(0)


class TestSmallMolecules:
    def test_h2_bond(self):
        m = h2(0.75)
        assert abs(m.min_interatomic_distance() - 0.75 * BOHR_PER_ANGSTROM) < 1e-10

    def test_water_angle(self):
        m = water()
        r = m.coords
        v1, v2 = r[1] - r[0], r[2] - r[0]
        cos = v1 @ v2 / (np.linalg.norm(v1) * np.linalg.norm(v2))
        assert abs(np.degrees(np.arccos(cos)) - 104.52) < 0.01

    def test_methane_tetrahedral(self):
        m = methane()
        r = m.coords
        for i in range(1, 5):
            assert abs(np.linalg.norm(r[i]) - CH_BOND * BOHR_PER_ANGSTROM) < 1e-6

    def test_benzene(self):
        assert benzene().formula == "C6H6"

    def test_water_cluster_count(self):
        m = water_cluster(2, 2, 1)
        assert m.natoms == 12
        assert m.formula == "H8O4"


class TestRegistry:
    def test_paper_molecules(self):
        assert paper_molecule("C96H24").formula == "C96H24"
        assert paper_molecule("C24H12").formula == "C24H12"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            paper_molecule("C999")
