"""Tests for Cauchy-Schwarz screening bounds."""

import numpy as np
import pytest

from repro.chem.basis.basisset import BasisSet
from repro.chem.builders import alkane
from repro.integrals.eri_md import eri_shell_quartet
from repro.integrals.schwarz import (
    pair_bound,
    schwarz_matrix,
    schwarz_model,
    screening_stats,
    unique_significant_quartet_count,
)


class TestExactBound:
    def test_is_true_upper_bound(self, water_basis):
        """|(MN|PQ)| <= sigma(MN) sigma(PQ) for every element."""
        sigma = schwarz_matrix(water_basis)
        ns = water_basis.nshells
        rng = np.random.default_rng(1)
        for _ in range(25):
            m, n, p, q = rng.integers(0, ns, 4)
            blk = eri_shell_quartet(
                water_basis.shells[m],
                water_basis.shells[n],
                water_basis.shells[p],
                water_basis.shells[q],
            )
            assert np.max(np.abs(blk)) <= sigma[m, n] * sigma[p, q] * (1 + 1e-10)

    def test_symmetric(self, water_basis):
        sigma = schwarz_matrix(water_basis)
        assert np.allclose(sigma, sigma.T)

    def test_nonnegative(self, water_basis):
        assert np.all(schwarz_matrix(water_basis) >= 0)

    def test_pair_bound_matches_matrix(self, water_basis):
        sigma = schwarz_matrix(water_basis)
        assert pair_bound(water_basis, 0, 3) == pytest.approx(sigma[0, 3])


class TestModelBound:
    @pytest.fixture(scope="class")
    def pair(self):
        basis = BasisSet.build(alkane(4), "sto-3g")
        return basis, schwarz_matrix(basis), schwarz_model(basis)

    def test_exact_on_diagonal(self, pair):
        _b, exact, model = pair
        assert np.allclose(np.diag(model), np.diag(exact), rtol=1e-10)

    def test_decays_with_distance(self, pair):
        basis, _e, model = pair
        centers = basis.centers
        d_near = np.linalg.norm(centers[0] - centers[1])
        far = int(np.argmax(np.linalg.norm(centers - centers[0], axis=1)))
        assert model[0, far] < model[0, 1]
        assert d_near < np.linalg.norm(centers[0] - centers[far])

    def test_rank_correlation_with_exact(self, pair):
        """Model ordering of pair magnitudes tracks the exact ordering."""
        _b, exact, model = pair
        iu = np.triu_indices_from(exact, k=1)
        e, m = np.log10(exact[iu] + 1e-300), np.log10(model[iu] + 1e-300)
        # Spearman-ish: correlation of ranks
        er = np.argsort(np.argsort(e))
        mr = np.argsort(np.argsort(m))
        corr = np.corrcoef(er, mr)[0, 1]
        assert corr > 0.85

    def test_symmetric(self, pair):
        _b, _e, model = pair
        assert np.allclose(model, model.T)


class TestStatsAndCounts:
    def test_screening_stats_keys(self, water_basis):
        sigma = schwarz_matrix(water_basis)
        st = screening_stats(sigma, 1e-10)
        assert st["nshells"] == water_basis.nshells
        assert 0 < st["fraction_significant"] <= 1

    def test_unique_count_no_screening(self):
        """tau=0 keeps all: count = npair(npair+1)/2 with npair=n(n+1)/2."""
        n = 6
        sigma = np.ones((n, n))
        npair = n * (n + 1) // 2
        expected = npair * (npair + 1) // 2
        assert unique_significant_quartet_count(sigma, 0.0) == expected

    def test_unique_count_full_screening(self):
        sigma = np.full((4, 4), 1e-8)
        assert unique_significant_quartet_count(sigma, 1.0) == 0

    def test_unique_count_matches_bruteforce(self, water_basis):
        sigma = schwarz_matrix(water_basis)
        tau = 1e-4  # aggressive so screening actually drops quartets
        ns = water_basis.nshells
        brute = 0
        for m in range(ns):
            for n in range(m + 1):
                for p in range(m + 1):
                    qmax = n if p == m else p
                    for q in range(qmax + 1):
                        if sigma[m, n] * sigma[p, q] >= tau:
                            brute += 1
        fast = unique_significant_quartet_count(sigma, tau)
        assert fast == brute

    def test_monotone_in_tau(self, water_basis):
        sigma = schwarz_matrix(water_basis)
        counts = [
            unique_significant_quartet_count(sigma, t)
            for t in (1e-12, 1e-8, 1e-4, 1e-1)
        ]
        assert counts == sorted(counts, reverse=True)
