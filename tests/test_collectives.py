"""Tests for collective-operation cost models."""

import numpy as np
import pytest

from repro.runtime.collectives import allreduce, barrier, broadcast, reduce_scatter
from repro.runtime.machine import LONESTAR
from repro.runtime.network import CommStats


class TestBarrier:
    def test_synchronizes_clocks(self):
        stats = CommStats(4, LONESTAR)
        stats.charge_compute(2, 7.0)
        t = barrier(stats)
        assert t >= 7.0
        assert np.all(stats.clock == t)

    def test_single_process_cheap(self):
        stats = CommStats(1, LONESTAR)
        t = barrier(stats)
        assert t == pytest.approx(0.0, abs=1e-9)


class TestAllreduce:
    def test_log_rounds_cost(self):
        stats = CommStats(8, LONESTAR)
        allreduce(stats, 800.0)
        # 3 rounds of 800 bytes each, per process
        assert np.all(stats.bytes == 2400)
        assert np.all(stats.calls == 3)

    def test_clocks_equal_after(self):
        stats = CommStats(5, LONESTAR)
        stats.charge_compute(0, 1.0)
        allreduce(stats, 8.0)
        assert np.all(stats.clock == stats.clock[0])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            allreduce(CommStats(2, LONESTAR), -1.0)


class TestBroadcast:
    def test_root_does_more_calls(self):
        stats = CommStats(8, LONESTAR)
        broadcast(stats, 1000.0, root=2)
        assert stats.calls[2] > stats.calls[0]

    def test_bad_root(self):
        with pytest.raises(IndexError):
            broadcast(CommStats(2, LONESTAR), 10.0, root=5)


class TestReduceScatter:
    def test_share_scales(self):
        stats = CommStats(4, LONESTAR)
        reduce_scatter(stats, 4000.0)
        assert np.all(stats.bytes == 3000)  # (p-1)/p of the total

    def test_monotone_in_p(self):
        t_small = reduce_scatter(CommStats(2, LONESTAR), 1e6)
        t_big = reduce_scatter(CommStats(32, LONESTAR), 1e6)
        assert t_big > t_small
