"""Property-based stateful testing of GlobalArray against a NumPy model.

Random sequences of one-sided get/put/acc against a plain ndarray model
must agree element-for-element, and the accounting invariants must hold
(bytes match request sizes, remote <= total).
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.runtime.ga import GlobalArray, block_bounds
from repro.runtime.machine import LONESTAR
from repro.runtime.network import CommStats

N = 12
GRID = 3
NPROC = GRID * GRID


class GlobalArrayMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.stats = CommStats(NPROC, LONESTAR)
        self.ga = GlobalArray(
            self.stats, N, N, block_bounds(N, GRID), block_bounds(N, GRID)
        )
        self.model = np.zeros((N, N))
        self.rng = np.random.default_rng(0)

    rect = st.tuples(
        st.integers(0, N - 1), st.integers(1, N),
        st.integers(0, N - 1), st.integers(1, N),
    )

    @rule(r=rect, proc=st.integers(0, NPROC - 1), seed=st.integers(0, 10**6))
    def put(self, r, proc, seed) -> None:
        r0, h, c0, w = r
        r1 = min(r0 + h, N)
        c1 = min(c0 + w, N)
        block = np.random.default_rng(seed).normal(size=(r1 - r0, c1 - c0))
        self.ga.put(proc, r0, c0, block)
        self.model[r0:r1, c0:c1] = block

    @rule(r=rect, proc=st.integers(0, NPROC - 1), seed=st.integers(0, 10**6))
    def acc(self, r, proc, seed) -> None:
        r0, h, c0, w = r
        r1 = min(r0 + h, N)
        c1 = min(c0 + w, N)
        block = np.random.default_rng(seed).normal(size=(r1 - r0, c1 - c0))
        self.ga.acc(proc, r0, c0, block)
        self.model[r0:r1, c0:c1] += block

    @rule(r=rect, proc=st.integers(0, NPROC - 1))
    def get_matches_model(self, r, proc) -> None:
        r0, h, c0, w = r
        r1 = min(r0 + h, N)
        c1 = min(c0 + w, N)
        out = self.ga.get(proc, r0, r1, c0, c1)
        assert np.allclose(out, self.model[r0:r1, c0:c1], atol=1e-12)

    @invariant()
    def full_contents_match(self) -> None:
        assert np.allclose(self.ga.to_numpy(), self.model, atol=1e-12)

    @invariant()
    def accounting_sane(self) -> None:
        assert np.all(self.stats.remote_bytes <= self.stats.bytes)
        assert np.all(self.stats.remote_calls <= self.stats.calls)
        assert np.all(self.stats.clock >= 0)


TestGlobalArrayStateful = GlobalArrayMachine.TestCase
TestGlobalArrayStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
