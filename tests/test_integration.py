"""End-to-end integration: full HF iterations through the distributed stack."""

import numpy as np
import pytest

from repro.chem.basis.basisset import BasisSet
from repro.chem.builders import h2, water
from repro.dist.purification_dist import purify_distributed
from repro.fock.gtfock import gtfock_build
from repro.fock.nwchem import nwchem_build
from repro.integrals.engine import MDEngine
from repro.integrals.oneelec import core_hamiltonian, overlap
from repro.runtime.machine import LONESTAR
from repro.scf.fock import hf_electronic_energy
from repro.scf.guess import core_guess
from repro.scf.hf import RHF
from repro.scf.orthogonalization import density_from_fock, orthogonalizer


def distributed_scf(mol, builder, nproc, iters=12):
    """A hand-rolled SCF loop whose Fock builds run distributed."""
    basis = BasisSet.build(mol, "sto-3g")
    s = overlap(basis)
    h = core_hamiltonian(basis)
    x = orthogonalizer(s)
    nocc = mol.nelectrons // 2
    d = core_guess(h, x, nocc)
    energy = None
    for _ in range(iters):
        res = builder(MDEngine(basis), h, d, nproc, 1e-11)
        energy = hf_electronic_energy(h, res.fock, d) + mol.nuclear_repulsion()
        d, _eps, _c = density_from_fock(res.fock, x, nocc)
    return energy


class TestDistributedSCF:
    def test_gtfock_scf_matches_serial(self):
        serial = RHF(h2(0.7414), use_diis=False, max_iter=12).run()
        dist = distributed_scf(h2(0.7414), gtfock_build, nproc=2)
        assert dist == pytest.approx(serial.energy, abs=1e-6)

    def test_nwchem_scf_matches_serial(self):
        serial = RHF(h2(0.7414), use_diis=False, max_iter=12).run()
        dist = distributed_scf(h2(0.7414), nwchem_build, nproc=2)
        assert dist == pytest.approx(serial.energy, abs=1e-6)

    def test_water_gtfock_scf(self):
        serial = RHF(water(), use_diis=False, max_iter=12).run()
        dist = distributed_scf(water(), gtfock_build, nproc=4)
        assert dist == pytest.approx(serial.energy, abs=1e-5)


class TestFockThenPurification:
    """Sec IV-E: the Fock build's distribution feeds SUMMA directly."""

    def test_distributed_purification_closes_the_loop(self, water_mol,
                                                      water_matrices,
                                                      water_fock_reference):
        s, _h, x, _d = water_matrices
        f_ortho = x.T @ water_fock_reference @ x
        nocc = water_mol.nelectrons // 2
        res = purify_distributed(f_ortho, nocc, nproc=4, config=LONESTAR)
        assert res.converged
        d_ref, _eps, _c = density_from_fock(water_fock_reference, x, nocc)
        d_ao = x @ res.density @ x.T
        assert np.allclose(d_ao, d_ref, atol=1e-7)


class TestEngineInterchangeability:
    def test_os_engine_in_rhf(self):
        """The OS engine drives a full SCF to the same energy."""
        from repro.integrals.engine import OSEngine
        from repro.chem.basis.basisset import BasisSet

        mol = h2(0.7414)
        basis = BasisSet.build(mol, "sto-3g")
        e_md = RHF(mol).run().energy
        e_os = RHF(mol, engine=OSEngine(basis)).run().energy
        assert e_os == pytest.approx(e_md, abs=1e-10)

    def test_631g_basis_lowers_energy(self):
        """Bigger basis, variationally lower energy (H2)."""
        e_sto = RHF(h2(0.7414), basis_name="sto-3g").run().energy
        e_631 = RHF(h2(0.7414), basis_name="6-31g").run().energy
        assert e_631 < e_sto

    def test_vdzsim_basis_runs_scf(self):
        """The structural basis is numerically usable too."""
        res = RHF(h2(0.7414), basis_name="vdz-sim", max_iter=50).run()
        assert res.converged
        assert res.energy < -1.0
