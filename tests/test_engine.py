"""Tests for the ERI engine abstraction (MD, OS, synthetic)."""

import numpy as np
import pytest

from repro.chem.basis.basisset import BasisSet
from repro.chem.builders import alkane, water
from repro.integrals.engine import MDEngine, OSEngine, SyntheticERIEngine


class TestRealEngines:
    def test_md_os_quartets_agree(self, water_basis):
        md = MDEngine(water_basis)
        os_ = OSEngine(water_basis)
        rng = np.random.default_rng(5)
        for _ in range(10):
            m, n, p, q = (int(i) for i in rng.integers(0, water_basis.nshells, 4))
            assert np.allclose(md.quartet(m, n, p, q), os_.quartet(m, n, p, q),
                               atol=1e-12)

    def test_quartet_counter(self, water_basis):
        eng = MDEngine(water_basis)
        eng.quartet(0, 0, 0, 0)
        eng.quartet(0, 1, 0, 1)
        assert eng.quartets_computed == 2

    def test_schwarz_cached(self, water_engine):
        s1 = water_engine.schwarz()
        s2 = water_engine.schwarz()
        assert s1 is s2

    def test_model_schwarz_option(self, water_basis):
        eng = MDEngine(water_basis, model_schwarz=True)
        s = eng.schwarz()
        assert s.shape == (water_basis.nshells,) * 2
        assert np.all(s >= 0)


class TestSyntheticEngine:
    @pytest.fixture(scope="class")
    def engine(self):
        return SyntheticERIEngine(BasisSet.build(alkane(2), "sto-3g"))

    def test_permutational_symmetries(self, engine):
        blk = engine.quartet(0, 3, 5, 7)
        assert np.allclose(blk, engine.quartet(3, 0, 5, 7).transpose(1, 0, 2, 3))
        assert np.allclose(blk, engine.quartet(0, 3, 7, 5).transpose(0, 1, 3, 2))
        assert np.allclose(blk, engine.quartet(5, 7, 0, 3).transpose(2, 3, 0, 1))

    def test_decays_with_distance(self, engine):
        b = engine.basis
        centers = b.centers
        far = int(np.argmax(np.linalg.norm(centers - centers[0], axis=1)))
        v_near = np.abs(engine.quartet(0, 1, 0, 1)).max()
        v_far = np.abs(engine.quartet(0, far, 0, far)).max()
        assert v_far < v_near

    def test_schwarz_is_true_bound(self, engine):
        sigma = engine.schwarz()
        ns = engine.basis.nshells
        rng = np.random.default_rng(2)
        for _ in range(30):
            m, n, p, q = (int(i) for i in rng.integers(0, ns, 4))
            blk = engine.quartet(m, n, p, q)
            assert np.max(np.abs(blk)) <= sigma[m, n] * sigma[p, q] * (1 + 1e-9)

    def test_closed_form_coulomb_matches_contraction(self, engine):
        """J from the closed form == J from explicit dense contraction."""
        n = engine.basis.nbf
        rng = np.random.default_rng(3)
        d = rng.normal(size=(n, n))
        d = d @ d.T / n
        # dense reference via small explicit loop over shell quartets
        j_ref = np.zeros((n, n))
        b = engine.basis
        for m in range(b.nshells):
            for nn in range(b.nshells):
                for p in range(b.nshells):
                    for q in range(b.nshells):
                        blk = engine.quartet(m, nn, p, q)
                        sm, sn, sp, sq = (b.shell_slice(s) for s in (m, nn, p, q))
                        j_ref[sm, sn] += np.einsum(
                            "abcd,cd->ab", blk, d[sp, sq]
                        )
        assert np.allclose(engine.coulomb_exact(d), j_ref, atol=1e-10)

    def test_closed_form_exchange_matches_contraction(self, engine):
        n = engine.basis.nbf
        rng = np.random.default_rng(4)
        d = rng.normal(size=(n, n))
        d = d @ d.T / n
        k_ref = np.zeros((n, n))
        b = engine.basis
        for m in range(b.nshells):
            for nn in range(b.nshells):
                for p in range(b.nshells):
                    for q in range(b.nshells):
                        blk = engine.quartet(m, nn, p, q)
                        sm, sn, sp, sq = (b.shell_slice(s) for s in (m, nn, p, q))
                        k_ref[sm, sp] += np.einsum(
                            "abcd,bd->ac", blk, d[sn, sq]
                        )
        assert np.allclose(engine.exchange_exact(d), k_ref, atol=1e-10)

    def test_deterministic(self):
        b = BasisSet.build(water(), "sto-3g")
        e1 = SyntheticERIEngine(b, seed=9)
        e2 = SyntheticERIEngine(b, seed=9)
        assert np.allclose(e1.quartet(0, 1, 2, 3), e2.quartet(0, 1, 2, 3))
