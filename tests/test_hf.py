"""Tests for the RHF driver: literature energies, convergence, variants."""

import numpy as np
import pytest

from repro.chem.builders import h2, water
from repro.chem.molecule import Molecule
from repro.scf.hf import RHF


@pytest.fixture(scope="module")
def water_scf():
    return RHF(water()).run()


class TestLiteratureEnergies:
    def test_h2_sto3g(self):
        """RHF/STO-3G H2 at 0.7414 A: -1.11668 hartree (textbook value)."""
        res = RHF(h2(0.7414)).run()
        assert res.converged
        assert res.energy == pytest.approx(-1.11668, abs=2e-4)

    def test_water_sto3g(self, water_scf):
        """RHF/STO-3G water: about -74.963 hartree at this geometry."""
        assert water_scf.converged
        assert water_scf.energy == pytest.approx(-74.9629, abs=2e-3)

    def test_h2_dissociation_curve_minimum(self):
        """The energy minimum sits near the equilibrium bond length."""
        energies = {
            r: RHF(h2(r)).run().energy for r in (0.55, 0.7414, 1.1)
        }
        assert energies[0.7414] < energies[0.55]
        assert energies[0.7414] < energies[1.1]


class TestConvergenceBehavior:
    def test_energy_history_converges(self, water_scf):
        hist = water_scf.energy_history
        assert abs(hist[-1] - water_scf.energy) < 1e-5
        # late-iteration changes are tiny
        assert abs(hist[-1] - hist[-2]) < 1e-6

    def test_density_idempotent(self, water_scf):
        """Converged D satisfies D S D = D (nocc-projector property)."""
        from repro.integrals.oneelec import overlap
        from repro.chem.basis.basisset import BasisSet

        s = overlap(BasisSet.build(water(), "sto-3g"))
        d = water_scf.density
        assert np.allclose(d @ s @ d, d, atol=1e-6)

    def test_density_trace_is_nocc(self, water_scf):
        from repro.integrals.oneelec import overlap
        from repro.chem.basis.basisset import BasisSet

        s = overlap(BasisSet.build(water(), "sto-3g"))
        assert np.trace(water_scf.density @ s) == pytest.approx(5.0, abs=1e-8)

    def test_without_diis_same_energy(self):
        e1 = RHF(h2(0.7414), use_diis=True).run().energy
        e2 = RHF(h2(0.7414), use_diis=False).run().energy
        assert e1 == pytest.approx(e2, abs=1e-7)

    def test_purification_density_method(self):
        e_diag = RHF(h2(0.7414)).run().energy
        e_pur = RHF(h2(0.7414), density_method="purify").run().energy
        assert e_pur == pytest.approx(e_diag, abs=1e-7)


class TestValidation:
    def test_odd_electrons_rejected(self):
        m = Molecule.from_arrays(["H"], np.zeros((1, 3)))
        with pytest.raises(ValueError):
            RHF(m)

    def test_cation_allowed(self):
        m = water()
        m.charge = 2  # 8 electrons, closed shell
        res = RHF(m, max_iter=50).run()
        assert res.energy > RHF(water()).run().energy  # cation is higher

    def test_bad_density_method(self):
        with pytest.raises(ValueError):
            RHF(water(), density_method="magic")

    def test_variational_bound(self, water_scf):
        """HF energy must be above the exact ground state (-76.4)."""
        assert -76.5 < water_scf.energy < -70.0
