"""Tests for execution-timeline recording and the discrete-event core."""

import pytest

from repro.fock.timeline import Span, Timeline, traced_work_stealing
from repro.runtime.event import EventQueue


class TestTimeline:
    def test_spans_recorded_for_all_tasks(self):
        queues = [[1.0, 2.0], [0.5], []]
        outcome, tl = traced_work_stealing(
            queues, cost_of=lambda c: c, grid=(1, 3)
        )
        work = [s for s in tl.spans if s.kind == "work"]
        assert len(work) == 3
        assert outcome.executed_tasks.sum() == 3

    def test_steal_events_marked(self):
        queues = [[1.0] * 50, []]
        _outcome, tl = traced_work_stealing(
            queues, cost_of=lambda c: c, grid=(1, 2)
        )
        assert any(s.kind == "steal" for s in tl.spans)

    def test_busy_fraction_balanced(self):
        queues = [[1.0] * 10, [1.0] * 10]
        _outcome, tl = traced_work_stealing(
            queues, cost_of=lambda c: c, grid=(1, 2)
        )
        assert tl.busy_fraction(0) == pytest.approx(1.0, abs=0.01)
        assert tl.busy_fraction(1) == pytest.approx(1.0, abs=0.01)

    def test_render_shapes(self):
        queues = [[1.0, 1.0], [2.0]]
        _outcome, tl = traced_work_stealing(
            queues, cost_of=lambda c: c, grid=(1, 2)
        )
        art = tl.render(width=40)
        lines = art.splitlines()
        assert len(lines) == 3  # 2 procs + axis
        assert "#" in lines[0]

    def test_empty(self):
        assert Timeline().render() == "(empty timeline)"
        assert Timeline().makespan == 0.0

    def test_span_duration(self):
        s = Span(0, 1.0, 3.5, "work")
        assert s.duration == pytest.approx(2.5)

    def test_makespan_matches_outcome(self):
        queues = [[3.0, 1.0], [0.5, 0.5]]
        outcome, tl = traced_work_stealing(
            queues, cost_of=lambda c: c, grid=(1, 2)
        )
        # spans now carry exact scheduler times: the last work span ends
        # at the slowest process's finish time
        assert tl.makespan == pytest.approx(outcome.makespan)

    def test_work_spans_carry_exact_start_times(self):
        queues = [[2.0, 1.0], []]
        _outcome, tl = traced_work_stealing(
            queues, cost_of=lambda c: c, grid=(1, 2), enable_stealing=False
        )
        assert [(s.start, s.end) for s in tl.for_proc(0)] == [
            (0.0, 2.0), (2.0, 3.0)
        ]


class TestRenderEdgeCases:
    def test_empty_timeline(self):
        tl = Timeline()
        assert tl.render() == "(empty timeline)"
        assert tl.makespan == 0.0
        assert tl.busy_fraction(0) == 1.0

    def test_zero_duration_spans_only(self):
        # steal marks with no work at all: makespan 0, nothing to draw
        tl = Timeline(spans=[Span(0, 0.0, 0.0, "steal", "from p1")])
        assert tl.render() == "(empty timeline)"

    def test_zero_duration_span_among_work(self):
        tl = Timeline(
            spans=[
                Span(0, 0.0, 4.0, "work"),
                Span(1, 2.0, 2.0, "steal", "from p0"),
                Span(1, 2.0, 4.0, "work"),
            ]
        )
        art = tl.render(width=20)
        lines = art.splitlines()
        assert len(lines) == 3  # 2 procs + axis
        assert "#" in lines[0]
        assert "#" in lines[1]

    def test_single_process(self):
        tl = Timeline(spans=[Span(0, 0.0, 1.0, "work")])
        art = tl.render(width=10)
        lines = art.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("p0")
        assert "." not in lines[0].split("|")[1]  # fully busy
        assert tl.busy_fraction(0) == pytest.approx(1.0)

    def test_steal_mark_does_not_overwrite_work(self):
        tl = Timeline(
            spans=[
                Span(0, 0.0, 10.0, "work"),
                Span(0, 5.0, 5.0, "steal", "from p1"),
            ]
        )
        row = tl.render(width=20).splitlines()[0]
        assert "$" not in row  # work wins over steal marks

    def test_render_intermediate_proc_without_spans(self):
        tl = Timeline(spans=[Span(2, 0.0, 1.0, "work")])
        lines = tl.render(width=12).splitlines()
        assert len(lines) == 4  # p0..p2 + axis
        assert set(lines[0].split("|")[1]) == {"."}

    def test_blocked_span_renders_tilde(self):
        tl = Timeline(
            spans=[
                Span(0, 0.0, 2.0, "work"),
                Span(0, 2.0, 4.0, "blocked", "await orphans"),
            ]
        )
        row = tl.render(width=20).splitlines()[0]
        assert "~" in row


class TestEventQueue:
    def test_equal_timestamps_pop_fifo(self):
        q = EventQueue()
        keys = ["c", "a", "b", "z", "m"]
        for k in keys:
            q.schedule(1.0, k)
        popped = []
        while (ev := q.pop()) is not None:
            popped.append(ev[1])
        # insertion order, NOT heap/lexicographic order
        assert popped == keys

    def test_pop_order_independent_of_interleaving(self):
        # scheduling distinct times out of order still resolves by time,
        # with FIFO only breaking exact ties
        q = EventQueue()
        q.schedule(3.0, "late")
        q.schedule(1.0, "tie1")
        q.schedule(2.0, "mid")
        q.schedule(1.0, "tie2")
        order = []
        while (ev := q.pop()) is not None:
            order.append(ev[1])
        assert order == ["tie1", "tie2", "mid", "late"]

    def test_reschedule_invalidates_previous(self):
        q = EventQueue()
        q.schedule(1.0, "p0")
        q.schedule(5.0, "p0")  # supersedes the 1.0 event
        assert q.pop() == (5.0, "p0")
        assert q.pop() is None

    def test_cancel_drops_pending_event(self):
        q = EventQueue()
        q.schedule(1.0, "p0")
        q.schedule(2.0, "p1")
        q.cancel("p0")
        assert q.pop() == (2.0, "p1")
        assert q.pop() is None

    def test_observer_sees_full_resolution_history(self):
        log = []
        q = EventQueue(observer=lambda act, t, key: log.append((act, t, key)))
        q.schedule(1.0, "a")
        q.schedule(1.0, "b")
        q.cancel("a")
        q.schedule(2.0, "a")
        while q.pop() is not None:
            pass
        assert log == [
            ("schedule", 1.0, "a"),
            ("schedule", 1.0, "b"),
            ("cancel", 0.0, "a"),
            ("schedule", 2.0, "a"),
            ("pop", 1.0, "b"),
            ("pop", 2.0, "a"),
        ]

    def test_observer_never_sees_stale_pops(self):
        pops = []
        q = EventQueue(
            observer=lambda act, t, key: act == "pop" and pops.append(key)
        )
        q.schedule(1.0, "p0")
        q.schedule(4.0, "p0")
        q.schedule(2.0, "p1")
        while q.pop() is not None:
            pass
        assert pops == ["p1", "p0"]  # the stale (1.0, p0) never surfaces

    def test_perturbation_may_only_delay(self):
        q = EventQueue(perturb=lambda t, key: t - 0.5)
        with pytest.raises(ValueError):
            q.schedule(1.0, "p0")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1.0, "p0")
