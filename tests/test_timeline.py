"""Tests for execution-timeline recording."""

import numpy as np
import pytest

from repro.fock.timeline import Span, Timeline, traced_work_stealing


class TestTimeline:
    def test_spans_recorded_for_all_tasks(self):
        queues = [[1.0, 2.0], [0.5], []]
        outcome, tl = traced_work_stealing(
            queues, cost_of=lambda c: c, grid=(1, 3)
        )
        work = [s for s in tl.spans if s.kind == "work"]
        assert len(work) == 3
        assert outcome.executed_tasks.sum() == 3

    def test_steal_events_marked(self):
        queues = [[1.0] * 50, []]
        _outcome, tl = traced_work_stealing(
            queues, cost_of=lambda c: c, grid=(1, 2)
        )
        assert any(s.kind == "steal" for s in tl.spans)

    def test_busy_fraction_balanced(self):
        queues = [[1.0] * 10, [1.0] * 10]
        _outcome, tl = traced_work_stealing(
            queues, cost_of=lambda c: c, grid=(1, 2)
        )
        assert tl.busy_fraction(0) == pytest.approx(1.0, abs=0.01)
        assert tl.busy_fraction(1) == pytest.approx(1.0, abs=0.01)

    def test_render_shapes(self):
        queues = [[1.0, 1.0], [2.0]]
        _outcome, tl = traced_work_stealing(
            queues, cost_of=lambda c: c, grid=(1, 2)
        )
        art = tl.render(width=40)
        lines = art.splitlines()
        assert len(lines) == 3  # 2 procs + axis
        assert "#" in lines[0]

    def test_empty(self):
        assert Timeline().render() == "(empty timeline)"
        assert Timeline().makespan == 0.0

    def test_span_duration(self):
        s = Span(0, 1.0, 3.5, "work")
        assert s.duration == pytest.approx(2.5)

    def test_makespan_matches_outcome(self):
        queues = [[3.0, 1.0], [0.5, 0.5]]
        outcome, tl = traced_work_stealing(
            queues, cost_of=lambda c: c, grid=(1, 2)
        )
        # replayed busy time cannot exceed the simulated makespan
        assert tl.makespan <= outcome.makespan + 1e-9
