"""Phase profiler: attribution, nesting, exception safety, hotspots."""

import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import (
    NULL_PROFILER,
    TRACE_MIRROR_MIN_WALL_S,
    PhaseProfiler,
    get_profiler,
    hotspot_text,
    profile_hotspots,
    profiling,
    set_profiler,
)
from repro.obs.trace import Tracer, set_tracer


class TestPhaseProfiler:
    def test_accumulates_calls_and_wall(self):
        prof = PhaseProfiler()
        for _ in range(3):
            with prof.phase("work"):
                time.sleep(0.001)
        (stat,) = prof.phases()
        assert stat.name == "work"
        assert stat.calls == 3
        assert stat.wall_s >= 0.003
        assert stat.max_wall_s <= stat.wall_s
        assert stat.cpu_s >= 0.0

    def test_nested_phases_are_inclusive(self):
        prof = PhaseProfiler()
        with prof.phase("outer"):
            with prof.phase("inner"):
                time.sleep(0.002)
        stats = {s.name: s for s in prof.phases()}
        assert stats["outer"].wall_s >= stats["inner"].wall_s

    def test_reentrant_same_name_nesting(self):
        prof = PhaseProfiler()
        with prof.phase("p"):
            with prof.phase("p"):
                pass
        assert prof.stats["p"].calls == 2

    def test_exception_still_recorded(self):
        prof = PhaseProfiler()
        with pytest.raises(ValueError):
            with prof.phase("doomed"):
                raise ValueError("boom")
        assert prof.stats["doomed"].calls == 1
        # the span is reusable again after the exception
        with prof.phase("doomed"):
            pass
        assert prof.stats["doomed"].calls == 2

    def test_exception_unwinds_nested_alloc_stack(self):
        prof = PhaseProfiler(alloc=True)
        try:
            with pytest.raises(RuntimeError):
                with prof.phase("outer"):
                    with prof.phase("inner"):
                        raise RuntimeError
            assert prof.stats["outer"].calls == 1
            assert prof.stats["inner"].calls == 1
            assert prof._stack == []
        finally:
            prof.close()

    def test_alloc_attribution(self):
        prof = PhaseProfiler(alloc=True)
        try:
            with prof.phase("alloc_heavy"):
                blob = [bytes(200_000) for _ in range(5)]
            assert prof.stats["alloc_heavy"].alloc_peak_bytes > 500_000
            del blob
        finally:
            prof.close()

    def test_phases_sorted_by_wall_desc(self):
        prof = PhaseProfiler()
        with prof.phase("slow"):
            time.sleep(0.004)
        with prof.phase("fast"):
            pass
        assert [s.name for s in prof.phases()] == ["slow", "fast"]

    def test_to_json_and_table(self):
        prof = PhaseProfiler()
        with prof.phase("x"):
            pass
        (row,) = prof.to_json()
        assert row["name"] == "x"
        assert row["calls"] == 1
        assert "x" in prof.table()
        assert "(no phases recorded)" in PhaseProfiler().table()

    def test_export_metrics(self):
        prof = PhaseProfiler()
        with prof.phase("m"):
            pass
        reg = MetricsRegistry()
        prof.export_metrics(reg)
        text = reg.to_prometheus()
        assert 'repro_phase_calls_total{phase="m"} 1' in text
        assert "repro_phase_wall_seconds_total" in text

    def test_tracer_mirror_respects_min_wall(self):
        tracer = Tracer("t")
        prev = set_tracer(tracer)
        try:
            prof = PhaseProfiler()
            with prof.phase("long_enough"):
                time.sleep(2 * TRACE_MIRROR_MIN_WALL_S)
            with prof.phase("blink"):
                pass
        finally:
            set_tracer(prev)
        names = [ev.name for ev in tracer.events]
        assert "long_enough" in names
        assert "blink" not in names


class TestSingleton:
    def test_default_is_null_and_free(self):
        assert get_profiler() is NULL_PROFILER
        assert not get_profiler().enabled
        with get_profiler().phase("anything"):
            pass
        assert get_profiler().stats == {}

    def test_set_and_restore(self):
        prof = PhaseProfiler()
        prev = set_profiler(prof)
        try:
            assert get_profiler() is prof
        finally:
            set_profiler(prev)
        assert get_profiler() is NULL_PROFILER

    def test_profiling_context(self):
        with profiling() as prof:
            assert get_profiler() is prof
            with get_profiler().phase("inside"):
                pass
        assert get_profiler() is NULL_PROFILER
        assert prof.stats["inside"].calls == 1


class TestHotspots:
    def test_profile_hotspots_returns_result_and_table(self):
        def work():
            return sum(i * i for i in range(50_000))

        result, hs = profile_hotspots(work, top=5)
        assert result == sum(i * i for i in range(50_000))
        assert len(hs.hotspots) <= 5
        assert hs.total_calls > 0
        assert hs.hotspots[0].cumtime >= hs.hotspots[-1].cumtime
        text = hotspot_text(hs)
        assert "cum [s]" in text
        json_doc = hs.to_json()
        assert json_doc["hotspots"][0]["cumtime"] == hs.hotspots[0].cumtime
