"""Shared fixtures: small molecules, bases, engines, and reference matrices.

Everything expensive (integral evaluation, reference Fock builds) is
session-scoped so the full suite stays fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chem.basis.basisset import BasisSet
from repro.chem.builders import h2, methane, water
from repro.integrals.engine import MDEngine, SyntheticERIEngine
from repro.integrals.oneelec import core_hamiltonian, overlap
from repro.scf.fock import fock_matrix
from repro.scf.guess import core_guess
from repro.scf.orthogonalization import orthogonalizer


@pytest.fixture(scope="session")
def water_mol():
    return water()


@pytest.fixture(scope="session")
def water_basis(water_mol):
    return BasisSet.build(water_mol, "sto-3g")


@pytest.fixture(scope="session")
def water_engine(water_basis):
    return MDEngine(water_basis)


@pytest.fixture(scope="session")
def water_matrices(water_mol, water_basis):
    """(S, Hcore, X, D_guess) for water/STO-3G."""
    s = overlap(water_basis)
    h = core_hamiltonian(water_basis)
    x = orthogonalizer(s)
    d = core_guess(h, x, water_mol.nelectrons // 2)
    return s, h, x, d


@pytest.fixture(scope="session")
def water_fock_reference(water_engine, water_matrices):
    _s, h, _x, d = water_matrices
    return fock_matrix(water_engine, h, d, 1e-11)


@pytest.fixture(scope="session")
def methane_mol():
    return methane()


@pytest.fixture(scope="session")
def methane_basis(methane_mol):
    return BasisSet.build(methane_mol, "sto-3g")


@pytest.fixture(scope="session")
def methane_engine(methane_basis):
    return MDEngine(methane_basis)


@pytest.fixture(scope="session")
def methane_matrices(methane_mol, methane_basis):
    s = overlap(methane_basis)
    h = core_hamiltonian(methane_basis)
    x = orthogonalizer(s)
    d = core_guess(h, x, methane_mol.nelectrons // 2)
    return s, h, x, d


@pytest.fixture(scope="session")
def methane_fock_reference(methane_engine, methane_matrices):
    _s, h, _x, d = methane_matrices
    return fock_matrix(methane_engine, h, d, 1e-11)


@pytest.fixture(scope="session")
def h2_mol():
    return h2(0.7414)


@pytest.fixture(scope="session")
def synthetic_engine():
    """Synthetic-ERI engine on propane (cheap quartets, closed-form J/K).

    19 shells -- enough for multi-process partitions -- with every
    quartet an O(1) slice instead of a real integral.
    """
    from repro.chem.builders import alkane

    basis = BasisSet.build(alkane(3), "sto-3g")
    return SyntheticERIEngine(basis)


@pytest.fixture(scope="session")
def synthetic_density(synthetic_engine):
    rng = np.random.default_rng(11)
    n = synthetic_engine.basis.nbf
    a = rng.normal(size=(n, n)) / n
    return a @ a.T
