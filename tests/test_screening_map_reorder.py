"""Tests for ScreeningMap and the spatial shell reordering."""

import numpy as np
import pytest

from repro.chem.basis.basisset import BasisSet
from repro.chem.builders import alkane, graphene_flake
from repro.fock.reorder import bandwidth_of, cell_reordering, reorder_basis
from repro.fock.screening_map import ScreeningMap
from repro.integrals.schwarz import schwarz_model


@pytest.fixture(scope="module")
def alkane_screen():
    basis = BasisSet.build(alkane(12), "vdz-sim")
    return ScreeningMap(basis, schwarz_model(basis), 1e-10)


class TestScreeningMap:
    def test_phi_contains_self(self, alkane_screen):
        for m in range(alkane_screen.nshells):
            assert m in alkane_screen.phi[m]

    def test_phi_symmetric(self, alkane_screen):
        sig = alkane_screen.significant
        assert np.array_equal(sig, sig.T)

    def test_quartet_survival_consistent(self, alkane_screen):
        s = alkane_screen
        m, p, n, q = 0, 1, 2, 3
        expected = s.sigma[m, p] * s.sigma[n, q] > s.tau
        assert s.quartet_survives(m, p, n, q) == expected

    def test_avg_phi_between_1_and_n(self, alkane_screen):
        assert 1.0 <= alkane_screen.avg_phi <= alkane_screen.nshells

    def test_q_at_most_B(self, alkane_screen):
        assert alkane_screen.avg_consecutive_overlap <= alkane_screen.avg_phi

    def test_screening_actually_drops_pairs(self, alkane_screen):
        """A 12-carbon chain is long enough for far pairs to screen out."""
        frac = alkane_screen.significant.mean()
        assert frac < 0.995

    def test_phi_union(self, alkane_screen):
        u = alkane_screen.phi_union(np.array([0, 1]))
        manual = np.zeros(alkane_screen.nshells, dtype=bool)
        manual[alkane_screen.phi[0]] = True
        manual[alkane_screen.phi[1]] = True
        assert np.array_equal(u, manual)

    def test_mismatched_sigma_rejected(self, alkane_screen):
        with pytest.raises(ValueError):
            ScreeningMap(alkane_screen.basis, np.ones((3, 3)), 1e-10)

    def test_bad_tau_rejected(self, alkane_screen):
        with pytest.raises(ValueError):
            ScreeningMap(alkane_screen.basis, alkane_screen.sigma, 0.0)

    def test_stats_keys(self, alkane_screen):
        st = alkane_screen.stats()
        assert {"A_avg_shell_size", "B_avg_phi", "q_avg_overlap"} <= set(st)


class TestReordering:
    @pytest.fixture(scope="class")
    def basis(self):
        # scramble an alkane's shells first so reordering has work to do
        basis = BasisSet.build(alkane(16), "vdz-sim")
        rng = np.random.default_rng(0)
        return basis.permuted(rng.permutation(basis.nshells))

    def test_is_permutation(self, basis):
        order = cell_reordering(basis)
        assert sorted(order.tolist()) == list(range(basis.nshells))

    def test_reduces_bandwidth(self, basis):
        """Reordering recovers near the natural chain order's bandwidth.

        The scrambled basis has large index bandwidth; the cell reorder
        must shrink it back to within ~15% of the unscrambled atom-order
        bandwidth (which is near-optimal for a linear alkane).
        """
        sig_before = ScreeningMap(basis, schwarz_model(basis), 1e-10).significant
        rb = reorder_basis(basis)
        sig_after = ScreeningMap(rb, schwarz_model(rb), 1e-10).significant
        natural = BasisSet.build(alkane(16), "vdz-sim")
        sig_nat = ScreeningMap(natural, schwarz_model(natural), 1e-10).significant
        assert bandwidth_of(sig_after) < bandwidth_of(sig_before)
        assert bandwidth_of(sig_after) <= 1.15 * bandwidth_of(sig_nat)

    def test_hilbert_also_reduces(self, basis):
        sig_before = ScreeningMap(basis, schwarz_model(basis), 1e-10).significant
        rb = reorder_basis(basis, ordering="hilbert")
        sig_after = ScreeningMap(rb, schwarz_model(rb), 1e-10).significant
        assert bandwidth_of(sig_after) < bandwidth_of(sig_before)

    def test_none_is_identity(self, basis):
        order = cell_reordering(basis, ordering="none")
        assert np.array_equal(order, np.arange(basis.nshells))

    def test_unknown_ordering_rejected(self, basis):
        with pytest.raises(ValueError):
            cell_reordering(basis, ordering="zigzag")

    def test_bad_cell_size_rejected(self, basis):
        with pytest.raises(ValueError):
            cell_reordering(basis, cell_size=0.0)

    def test_groups_atoms_spatially(self):
        """After reordering, consecutive shells are spatially close."""
        basis = BasisSet.build(graphene_flake(3), "vdz-sim")
        rng = np.random.default_rng(1)
        scrambled = basis.permuted(rng.permutation(basis.nshells))
        rb = reorder_basis(scrambled, cell_size=4.0)
        centers = rb.centers
        gaps = np.linalg.norm(np.diff(centers, axis=0), axis=1)
        scrambled_gaps = np.linalg.norm(
            np.diff(scrambled.centers, axis=0), axis=1
        )
        assert np.median(gaps) < 0.5 * np.median(scrambled_gaps)
