"""Tests for the MP2 module (and the incremental-RHF option)."""

import numpy as np
import pytest

from repro.chem.basis.basisset import BasisSet
from repro.chem.builders import h2, water
from repro.scf.hf import RHF
from repro.scf.mp2 import ao_to_mo, mp2_energy


@pytest.fixture(scope="module")
def h2_scf():
    mol = h2(0.7414)
    return mol, BasisSet.build(mol, "sto-3g"), RHF(mol).run()


class TestAOtoMO:
    def test_identity_transform(self, h2_scf):
        from repro.integrals.eri_md import eri_tensor

        _mol, basis, _scf = h2_scf
        eri = eri_tensor(basis)
        assert np.allclose(ao_to_mo(eri, np.eye(basis.nbf)), eri)

    def test_mo_basis_symmetries_preserved(self, h2_scf):
        from repro.integrals.eri_md import eri_tensor

        _mol, basis, scf = h2_scf
        mo = ao_to_mo(eri_tensor(basis), scf.coefficients)
        assert np.allclose(mo, mo.transpose(1, 0, 2, 3), atol=1e-10)
        assert np.allclose(mo, mo.transpose(2, 3, 0, 1), atol=1e-10)


class TestMP2:
    def test_h2_sto3g_literature(self, h2_scf):
        """MP2/STO-3G H2: correlation energy ~ -0.013 hartree."""
        mol, basis, scf = h2_scf
        res = mp2_energy(basis, scf, nocc=1)
        assert res.correlation_energy < 0
        assert res.correlation_energy == pytest.approx(-0.013, abs=3e-3)
        assert res.total_energy < scf.energy

    def test_water_correlation_negative(self):
        mol = water()
        scf = RHF(mol).run()
        basis = BasisSet.build(mol, "sto-3g")
        res = mp2_energy(basis, scf, nocc=5)
        assert -0.2 < res.correlation_energy < -0.01

    def test_spin_components_sum(self, h2_scf):
        _mol, basis, scf = h2_scf
        res = mp2_energy(basis, scf, nocc=1)
        assert res.correlation_energy == pytest.approx(
            res.same_spin + res.opposite_spin
        )

    def test_single_electron_pair_no_same_spin(self, h2_scf):
        """H2 has one occupied orbital: same-spin MP2 vanishes."""
        _mol, basis, scf = h2_scf
        res = mp2_energy(basis, scf, nocc=1)
        assert res.same_spin == pytest.approx(0.0, abs=1e-12)

    def test_frozen_core_smaller_correlation(self):
        mol = water()
        scf = RHF(mol).run()
        basis = BasisSet.build(mol, "sto-3g")
        full = mp2_energy(basis, scf, nocc=5)
        frozen = mp2_energy(basis, scf, nocc=5, frozen_core=1)
        assert abs(frozen.correlation_energy) < abs(full.correlation_energy)

    def test_bad_frozen_core(self, h2_scf):
        _mol, basis, scf = h2_scf
        with pytest.raises(ValueError):
            mp2_energy(basis, scf, nocc=1, frozen_core=1)


class TestIncrementalRHF:
    def test_same_energy_as_standard(self):
        e_std = RHF(h2(0.7414)).run().energy
        e_inc = RHF(h2(0.7414), incremental=True).run().energy
        assert e_inc == pytest.approx(e_std, abs=1e-8)

    def test_water_incremental(self):
        e_std = RHF(water()).run().energy
        e_inc = RHF(water(), incremental=True).run().energy
        assert e_inc == pytest.approx(e_std, abs=1e-6)
