"""Run ledger: manifest round-trip, streamed snapshots, loader errors."""

import json

import pytest

from repro.obs.manifest import (
    LedgerError,
    NullLedger,
    RunLedger,
    config_hash,
    find_runs,
    get_ledger,
    load_run,
    provenance,
    set_ledger,
    utc_now_iso,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import PhaseProfiler


def _make_run(tmp_path, name="run", close=True, **kw):
    ledger = RunLedger(
        tmp_path / name,
        command="scf",
        config={"molecule": "water", "basis": "6-31g"},
        molecule="water",
        basis="6-31g",
        **kw,
    )
    if close:
        ledger.close(0)
    return ledger


class TestManifest:
    def test_round_trip(self, tmp_path):
        ledger = _make_run(tmp_path, argv=["scf", "water"], seed=7, close=False)
        reg = MetricsRegistry()
        reg.counter("repro_iterations_total").inc(3)
        ledger.snapshot("scf_iteration", registry=reg, iteration=1, energy=-75.0)
        ledger.add_summary(energy=-75.0, converged=True)
        ledger.close(0)

        record = load_run(ledger.path)
        assert record.manifest["command"] == "scf"
        assert record.manifest["config"]["molecule"] == "water"
        assert record.manifest["seed"] == 7
        assert record.manifest["argv"] == ["scf", "water"]
        assert record.manifest["config_hash"] == config_hash(
            {"basis": "6-31g", "molecule": "water"}
        )
        prov = record.manifest["provenance"]
        for key in ("package", "python", "numpy", "git_sha", "cpu_count"):
            assert key in prov
        # one explicit snapshot plus the final one written by close()
        assert [s["label"] for s in record.snapshots] == [
            "scf_iteration", "final",
        ]
        snap = record.snapshots[0]
        assert snap["iteration"] == 1
        assert snap["metrics"]["repro_iterations_total"]["series"]
        assert record.summary["exit_code"] == 0
        assert record.summary["energy"] == -75.0
        assert record.summary["finished_utc"] >= record.manifest["started_utc"]

    def test_config_hash_is_key_order_independent(self):
        a = config_hash({"x": 1, "y": [2, 3]})
        b = config_hash({"y": [2, 3], "x": 1})
        assert a == b
        assert a.startswith("sha256:")
        assert a != config_hash({"x": 2, "y": [2, 3]})

    def test_close_is_idempotent(self, tmp_path):
        ledger = _make_run(tmp_path, close=False)
        ledger.close(0)
        ledger.close(1)  # ignored: the run already finished
        assert load_run(ledger.path).summary["exit_code"] == 0

    def test_attach_profile(self, tmp_path):
        ledger = _make_run(tmp_path, close=False)
        prof = PhaseProfiler()
        with prof.phase("fock_build"):
            pass
        ledger.attach_profile(prof)
        ledger.close(0)
        record = load_run(ledger.path)
        assert record.phases[0]["name"] == "fock_build"

    def test_provenance_fields(self):
        prov = provenance()
        assert prov["package"] == "repro"
        assert isinstance(prov["cpu_count"], int)
        assert "." in prov["python"]

    def test_utc_timestamps_are_tz_aware(self):
        stamp = utc_now_iso()
        assert stamp.endswith("+00:00") or stamp.endswith("Z")


class TestLoader:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(LedgerError, match="does not exist"):
            load_run(tmp_path / "nope")

    def test_missing_manifest_named(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(LedgerError, match="manifest.json"):
            load_run(tmp_path / "empty")

    def test_missing_summary_named_when_strict(self, tmp_path):
        ledger = _make_run(tmp_path, close=False)
        ledger._metrics_fh.close()  # simulate a crashed run
        with pytest.raises(LedgerError, match="summary.json"):
            load_run(ledger.path)
        record = load_run(ledger.path, strict=False)
        assert record.summary is None

    def test_missing_manifest_field_named(self, tmp_path):
        ledger = _make_run(tmp_path)
        path = ledger.path / "manifest.json"
        doc = json.loads(path.read_text())
        del doc["config_hash"]
        path.write_text(json.dumps(doc))
        with pytest.raises(LedgerError, match="config_hash"):
            load_run(ledger.path)

    def test_corrupt_metrics_line_named(self, tmp_path):
        ledger = _make_run(tmp_path)
        path = ledger.path / "metrics.jsonl"
        path.write_text(path.read_text() + "{not json\n")
        with pytest.raises(LedgerError, match="line"):
            load_run(ledger.path)

    def test_find_runs_sorted_and_tolerant(self, tmp_path):
        _make_run(tmp_path, name="a")
        _make_run(tmp_path, name="b")
        (tmp_path / "junk").mkdir()  # no manifest: skipped
        runs = find_runs(tmp_path)
        assert len(runs) == 2
        stamps = [r.manifest["started_utc"] for r in runs]
        assert stamps == sorted(stamps)


class TestSingleton:
    def test_default_is_null(self):
        ledger = get_ledger()
        assert isinstance(ledger, NullLedger)
        assert not ledger.enabled
        ledger.snapshot("anything", extra=1)  # no-op, no error
        ledger.add_summary(x=1)
        ledger.close(0)

    def test_set_and_restore(self, tmp_path):
        ledger = _make_run(tmp_path, close=False)
        prev = set_ledger(ledger)
        try:
            assert get_ledger() is ledger
        finally:
            set_ledger(prev)
            ledger.close(0)
        assert isinstance(get_ledger(), NullLedger)
