"""Tests for the sequential reference Fock build."""

import numpy as np
import pytest

from repro.integrals.eri_tensor_util import dense_fock_reference
from repro.scf.fock import (
    build_jk,
    canonical_shell_quartets,
    fock_matrix,
    hf_electronic_energy,
    orbit_images,
)


class TestOrbitImages:
    def test_generic_quartet_eight_images(self):
        block = np.zeros((1, 2, 3, 4))
        images = list(orbit_images((0, 1, 2, 3), block))
        assert len(images) == 8
        targets = {t for t, _ in images}
        assert len(targets) == 8

    def test_coincident_bra_four_images(self):
        block = np.zeros((2, 2, 1, 3))
        images = list(orbit_images((5, 5, 0, 1), block))
        assert len(images) == 4

    def test_fully_diagonal_one_image(self):
        block = np.zeros((2, 2, 2, 2))
        images = list(orbit_images((3, 3, 3, 3), block))
        assert len(images) == 1

    def test_blocks_are_transposed_consistently(self):
        rng = np.random.default_rng(0)
        block = rng.normal(size=(2, 3, 4, 5))
        for target, blk in orbit_images((0, 1, 2, 3), block):
            # shape must match the target's shell sizes
            sizes = {0: 2, 1: 3, 2: 4, 3: 5}
            assert blk.shape == tuple(sizes[t] for t in target)


class TestCanonicalEnumeration:
    def test_no_screening_count(self):
        n = 5
        sigma = np.ones((n, n))
        npair = n * (n + 1) // 2
        quartets = list(canonical_shell_quartets(sigma, 0.0))
        assert len(quartets) == npair * (npair + 1) // 2

    def test_all_canonical_ordering(self):
        sigma = np.ones((6, 6))
        for (m, n, p, q) in canonical_shell_quartets(sigma, 0.0):
            assert m >= n and p >= q
            assert (m, n) >= (p, q)

    def test_screening_drops(self):
        sigma = np.eye(4) + 1e-8
        few = list(canonical_shell_quartets(sigma, 1e-3))
        all_ = list(canonical_shell_quartets(sigma, 0.0))
        assert 0 < len(few) < len(all_)


class TestJKCorrectness:
    """Screened symmetry-exploiting build vs dense no-symmetry reference."""

    def test_jk_vs_dense_reference(self, water_engine, water_matrices):
        _s, _h, _x, d = water_matrices
        j, k = build_jk(water_engine, d, tau=0.0)
        j_ref, k_ref = dense_fock_reference(water_engine, d)
        assert np.allclose(j, j_ref, atol=1e-11)
        assert np.allclose(k, k_ref, atol=1e-11)

    def test_jk_symmetric(self, water_engine, water_matrices):
        _s, _h, _x, d = water_matrices
        j, k = build_jk(water_engine, d, tau=1e-11)
        assert np.allclose(j, j.T, atol=1e-12)
        assert np.allclose(k, k.T, atol=1e-12)

    def test_screening_converges_to_unscreened(self, water_engine, water_matrices):
        _s, _h, _x, d = water_matrices
        j0, k0 = build_jk(water_engine, d, tau=0.0)
        j1, k1 = build_jk(water_engine, d, tau=1e-11)
        assert np.allclose(j0, j1, atol=1e-9)
        assert np.allclose(k0, k1, atol=1e-9)

    def test_aggressive_screening_differs(self, water_engine, water_matrices):
        _s, _h, _x, d = water_matrices
        j0, _ = build_jk(water_engine, d, tau=0.0)
        j1, _ = build_jk(water_engine, d, tau=1e-1)
        assert not np.allclose(j0, j1, atol=1e-9)

    def test_asymmetric_density_rejected(self, water_engine):
        n = water_engine.basis.nbf
        d = np.arange(n * n, dtype=float).reshape(n, n)
        with pytest.raises(ValueError):
            build_jk(water_engine, d)

    def test_synthetic_engine_closed_form(self, synthetic_engine, synthetic_density):
        """Screened task build vs closed-form J/K on the synthetic engine."""
        j, k = build_jk(synthetic_engine, synthetic_density, tau=1e-14)
        assert np.allclose(j, synthetic_engine.coulomb_exact(synthetic_density),
                           atol=1e-8)
        assert np.allclose(k, synthetic_engine.exchange_exact(synthetic_density),
                           atol=1e-8)


class TestEnergy:
    def test_energy_expression(self, water_engine, water_matrices, water_fock_reference):
        _s, h, _x, d = water_matrices
        e = hf_electronic_energy(h, water_fock_reference, d)
        assert e < 0  # electronic energy of a bound molecule

    def test_fock_is_h_plus_2j_minus_k(self, water_engine, water_matrices):
        _s, h, _x, d = water_matrices
        j, k = build_jk(water_engine, d, 1e-11)
        f = fock_matrix(water_engine, h, d, 1e-11)
        assert np.allclose(f, h + 2 * j - k, atol=1e-12)
