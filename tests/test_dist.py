"""Tests for SUMMA and distributed purification."""

import numpy as np
import pytest

from repro.dist.purification_dist import (
    purification_time_model,
    purify_distributed,
)
from repro.dist.summa import distributed_trace, summa_multiply, summa_time_model
from repro.runtime.ga import GlobalArray, block_bounds
from repro.runtime.machine import LONESTAR
from repro.runtime.network import CommStats
from repro.scf.purification import purify


def make_ga(stats, m, grid):
    n = m.shape[0]
    rb = block_bounds(n, grid)
    ga = GlobalArray(stats, n, m.shape[1], rb, block_bounds(m.shape[1], grid))
    ga.load(m)
    return ga


class TestSUMMA:
    @pytest.mark.parametrize("grid", [1, 2, 3])
    def test_matches_numpy(self, grid):
        rng = np.random.default_rng(0)
        n = 12
        a = rng.normal(size=(n, n))
        b = rng.normal(size=(n, n))
        stats = CommStats(grid * grid, LONESTAR)
        ga_a, ga_b = make_ga(stats, a, grid), make_ga(stats, b, grid)
        c = summa_multiply(ga_a, ga_b, stats, LONESTAR)
        assert np.allclose(c.to_numpy(), a @ b, atol=1e-10)

    def test_charges_time(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(8, 8))
        stats = CommStats(4, LONESTAR)
        ga_a = make_ga(stats, a, 2)
        summa_multiply(ga_a, ga_a, stats, LONESTAR)
        assert np.all(stats.clock > 0)
        assert np.all(stats.comp_time > 0)

    def test_dimension_mismatch_rejected(self):
        stats = CommStats(1, LONESTAR)
        a = make_ga(stats, np.ones((4, 4)), 1)
        b = make_ga(stats, np.ones((5, 5)), 1)
        with pytest.raises(ValueError):
            summa_multiply(a, b, stats, LONESTAR)

    def test_trace(self):
        rng = np.random.default_rng(2)
        m = rng.normal(size=(10, 10))
        stats = CommStats(4, LONESTAR)
        ga = make_ga(stats, m, 2)
        assert distributed_trace(ga, stats, LONESTAR) == pytest.approx(np.trace(m))

    def test_time_model_scales(self):
        t1 = summa_time_model(1000, 1, LONESTAR)
        t16 = summa_time_model(1000, 16, LONESTAR)
        assert t16 < t1

    def test_time_model_validation(self):
        with pytest.raises(ValueError):
            summa_time_model(0, 4, LONESTAR)


class TestDistributedPurification:
    def test_matches_serial(self):
        rng = np.random.default_rng(3)
        f = rng.normal(size=(16, 16))
        f = 0.5 * (f + f.T)
        nocc = 6
        serial = purify(f, nocc, tol=1e-11, max_iter=200)
        dist = purify_distributed(f, nocc, nproc=4, config=LONESTAR, tol=1e-11,
                                  max_iter=200)
        assert serial.converged and dist.converged
        assert np.allclose(dist.density, serial.density, atol=1e-8)

    def test_trace_preserved(self):
        rng = np.random.default_rng(4)
        f = rng.normal(size=(12, 12))
        f = 0.5 * (f + f.T)
        res = purify_distributed(f, 5, nproc=9, config=LONESTAR)
        assert np.trace(res.density) == pytest.approx(5.0, abs=1e-7)

    def test_accounting_nonzero(self):
        rng = np.random.default_rng(5)
        f = rng.normal(size=(10, 10))
        f = 0.5 * (f + f.T)
        res = purify_distributed(f, 4, nproc=4, config=LONESTAR)
        assert res.time > 0
        assert res.stats.calls.sum() > 0

    def test_time_model_paper_range(self):
        """Table IX: purification is a small share at paper scale."""
        # C150H30: nbf = 2250; 1..324 nodes
        for nproc in (1, 16, 324):
            t = purification_time_model(2250, nproc, LONESTAR, iterations=45)
            assert 0 < t < 300
