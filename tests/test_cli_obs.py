"""End-to-end CLI observability: ``repro report`` and the obs flags.

``tests/test_obs.py::TestCli`` covers ``repro scf --trace/--metrics``;
here we cover the ``report`` subcommand and the experiment commands, and
validate the emitted artifacts structurally -- every Perfetto event
carries the required keys, the Prometheus text parses line by line, and
the HTML report is a single self-contained file.
"""

import json
import re

import pytest

from repro.cli import main

_PROM_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9.eE+-]+$"
)


def _check_prometheus(text: str) -> int:
    """Every non-comment line is a valid sample; return the count."""
    n = 0
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        assert _PROM_LINE.match(line), f"bad Prometheus line: {line!r}"
        n += 1
    return n


def _check_perfetto(path) -> list[dict]:
    doc = json.loads(path.read_text())
    events = doc["traceEvents"]
    assert events, "empty trace"
    for ev in events:
        assert ev["ph"] in ("X", "i", "C", "M")
        if ev["ph"] == "M":  # metadata (process/thread names): no ts/tid
            assert "name" in ev and "pid" in ev
            continue
        for key in ("name", "ph", "pid", "tid", "ts"):
            assert key in ev, f"event missing {key}: {ev}"
        if ev["ph"] == "X":
            assert ev["dur"] >= 0
    return events


class TestReportCommand:
    @pytest.fixture(scope="class")
    def report_run(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("report")
        out = tmp / "run-report.html"
        trace = tmp / "trace.json"
        metrics = tmp / "metrics.prom"
        rc = main([
            "report", "water", "--basis", "sto-3g", "--nproc", "4",
            "--out", str(out), "--check",
            "--trace", str(trace), "--metrics", str(metrics),
        ])
        return rc, out, trace, metrics

    def test_exit_code_and_html(self, report_run):
        rc, out, _, _ = report_run
        assert rc == 0
        html = out.read_text()
        assert html.lstrip().lower().startswith("<!doctype html>")
        # acceptance markers: heatmap, steal timeline, model table
        for needle in (
            "Communication volume by rank and channel",
            "Steal-event timeline",
            "Model vs measured",
            "prefetch_get",
        ):
            assert needle in html
        # self-contained: no external fetches of any kind
        assert "http" not in re.sub(
            r'href="https://ui\.perfetto\.dev[^"]*"', "", html
        ).replace("https://ui.perfetto.dev", "")

    def test_trace_is_valid_perfetto(self, report_run):
        _, _, trace, _ = report_run
        events = _check_perfetto(trace)
        names = {ev["name"] for ev in events}
        assert "gtfock_build" in names

    def test_metrics_include_flight_counters(self, report_run):
        _, _, _, metrics = report_run
        text = metrics.read_text()
        assert _check_prometheus(text) > 10
        assert "repro_flight_bytes_total" in text
        assert 'channel="prefetch_get"' in text
        assert "repro_comm_bytes_total" in text

    def test_unwritable_out_fails_fast(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["report", "--out", str(tmp_path / "no" / "dir.html")])


class TestExperimentObsFlags:
    def test_table6_trace_and_metrics(self, tmp_path, capsys):
        trace = tmp_path / "t6.json"
        metrics = tmp_path / "t6.json.prom"
        rc = main([
            "table6", "--trace", str(trace), "--metrics", str(metrics)
        ])
        assert rc == 0
        _check_perfetto(trace)
        _check_prometheus(metrics.read_text())
        out = capsys.readouterr().out
        # satellite: the steal share surfaces in Table VI output
        assert "of it steal MB" in out


class TestVersionAndInfo:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert "numpy" in out

    def test_info_command(self, capsys):
        rc = main(["info"])
        assert rc == 0
        out = capsys.readouterr().out
        for key in ("package", "git_sha", "python", "numpy", "cpu_count"):
            assert key in out


class TestRunLedgerCli:
    @pytest.fixture(scope="class")
    def ledger_run(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("ledger")
        rundir = tmp / "run"
        rc = main([
            "scf", "water", "--basis", "sto-3g",
            "--profile", "--run-dir", str(rundir),
        ])
        return rc, rundir

    def test_run_directory_is_complete(self, ledger_run):
        rc, rundir = ledger_run
        assert rc == 0
        for name in ("manifest.json", "metrics.jsonl", "summary.json"):
            assert (rundir / name).exists(), name
        manifest = json.loads((rundir / "manifest.json").read_text())
        assert manifest["command"] == "scf"
        assert manifest["config_hash"].startswith("sha256:")
        summary = json.loads((rundir / "summary.json").read_text())
        assert summary["exit_code"] == 0
        assert summary["converged"]
        assert summary["phases"], "profiled run must persist phase stats"

    def test_report_renders_from_rundir(self, ledger_run, tmp_path):
        _, rundir = ledger_run
        out = tmp_path / "ledger.html"
        rc = main(["report", str(rundir), "--out", str(out)])
        assert rc == 0
        html = out.read_text()
        assert html.lstrip().lower().startswith("<!doctype html>")
        for needle in (
            "Run ledger:", "Provenance", "SCF trajectory",
            "Phase profile", "fock_build",
        ):
            assert needle in html

    def test_report_missing_rundir_names_the_problem(self, tmp_path, capsys):
        rc = main(["report", str(tmp_path / "nope"), "--out",
                   str(tmp_path / "x.html")])
        assert rc == 2
        err = capsys.readouterr().err
        assert "repro report:" in err
        assert "does not exist" in err

    def test_report_missing_artifact_named(self, tmp_path, capsys):
        rundir = tmp_path / "partial"
        rundir.mkdir()
        (rundir / "manifest.json").write_text("{}")
        rc = main(["report", str(rundir), "--out", str(tmp_path / "x.html")])
        assert rc == 2
        err = capsys.readouterr().err
        # field-named error, not a traceback
        assert "manifest.json" in err or "schema" in err


class TestPerfCommands:
    def test_perf_check_passes_on_committed_histories(self, capsys):
        rc = main(["perf", "check"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "observatory:" in out

    def test_perf_check_fails_on_injected_regression(self, tmp_path, capsys):
        # copy the committed ERI history and append a synthetic 10x
        # slowdown in a quick (machine-independent) metric
        doc = json.loads(open("BENCH_eri.json").read())
        entry = dict(
            [e for e in doc["history"] if e["benchmark"] == "eri_kernels"][-1]
        )
        entry["class_batched_speedup"] = entry["class_batched_speedup"] / 10.0
        doc["history"].append(entry)
        bad = tmp_path / "BENCH_eri.json"
        bad.write_text(json.dumps(doc))
        rc = main(["perf", "check", "--history", str(bad), "--quick"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "fail" in out

    def test_perf_check_json_output(self, tmp_path):
        out = tmp_path / "check.json"
        rc = main(["perf", "check", "--json", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["status"] in ("pass", "warn")
        assert isinstance(doc["findings"], list)

    def test_perf_history_renders_trajectories(self, capsys):
        rc = main(["perf", "history"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "eri_kernels.batched_speedup" in out

    def test_perf_profile_quick(self, tmp_path, capsys):
        rundir = tmp_path / "prof"
        rc = main([
            "perf", "profile", "water", "--basis", "sto-3g",
            "--top", "5", "--run-dir", str(rundir),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "wall [s]" in out  # the phase table header
        assert "hotspots:" in out
        summary = json.loads((rundir / "summary.json").read_text())
        assert summary["phases"]
        assert summary["hotspots"]["hotspots"]
