"""Tests for the ERI engines: MD vs OS cross-validation, symmetries, values."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem.basis.basisset import BasisSet
from repro.chem.basis.shells import Shell
from repro.integrals.eri_md import eri_shell_quartet, eri_tensor
from repro.integrals.eri_os import eri_shell_quartet_os


def rand_shell(rng, l, pure=False):
    n = int(rng.integers(1, 3))
    return Shell(
        l=l,
        exps=rng.uniform(0.2, 3.0, n),
        coefs=rng.uniform(0.3, 1.0, n),
        center=rng.uniform(-1.5, 1.5, 3),
        atom_index=0,
        pure=pure,
    )


class TestKnownValues:
    def test_single_s_gaussian_self_repulsion(self):
        """(aa|aa) = sqrt(2a/pi) * ... : analytic for one normalized s.

        (ss|ss) with all four the same normalized primitive equals
        sqrt(2/pi) * sqrt(a) * 2/sqrt(2) ... verified against the closed
        form 2 sqrt(a / (2 pi)) * 2 / sqrt(2)?  Use the standard result
        (00|00) = sqrt(2 a / pi) * (2/sqrt(2)) / ... -- evaluated via the
        Boys-function formula directly instead.
        """
        a = 1.3
        sh = Shell(l=0, exps=np.array([a]), coefs=np.array([1.0]),
                   center=np.zeros(3), atom_index=0)
        val = eri_shell_quartet(sh, sh, sh, sh)[0, 0, 0, 0]
        # closed form: (2 pi^{5/2} / (p q sqrt(p+q))) * N^4 with p=q=2a,
        # N = (2a/pi)^{3/4}
        n4 = (2 * a / math.pi) ** 3
        expected = 2 * math.pi**2.5 / (4 * a * a * math.sqrt(4 * a)) * n4
        assert val == pytest.approx(expected, rel=1e-12)

    def test_h2_sto3g_literature(self, h2_mol):
        """Szabo-Ostlund H2/STO-3G two-electron integrals at R=1.4."""
        basis = BasisSet.build(h2_mol, "sto-3g")
        eri = eri_tensor(basis)
        # tolerances allow for the tiny geometry difference between
        # 0.7414 A and Szabo's R = 1.4 a0 exactly
        assert eri[0, 0, 0, 0] == pytest.approx(0.7746, abs=5e-4)
        assert eri[0, 0, 1, 1] == pytest.approx(0.5697, abs=5e-4)
        assert eri[1, 0, 0, 0] == pytest.approx(0.4441, abs=1e-3)
        assert eri[1, 0, 1, 0] == pytest.approx(0.2970, abs=1e-3)

    def test_distant_charge_distributions_coulomb_limit(self):
        """(aa|bb) -> 1/R as the two s distributions separate."""
        r = 30.0
        sha = Shell(l=0, exps=np.array([1.5]), coefs=np.array([1.0]),
                    center=np.zeros(3), atom_index=0)
        shb = Shell(l=0, exps=np.array([0.9]), coefs=np.array([1.0]),
                    center=np.array([0.0, 0.0, r]), atom_index=1)
        val = eri_shell_quartet(sha, sha, shb, shb)[0, 0, 0, 0]
        assert val == pytest.approx(1.0 / r, rel=1e-8)


class TestMDvsOS:
    """The two independent formulations must agree to machine precision."""

    @given(st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_random_quartets(self, seed):
        rng = np.random.default_rng(seed)
        ls = rng.integers(0, 3, 4)
        shs = [rand_shell(rng, int(l)) for l in ls]
        a = eri_shell_quartet(*shs)
        b = eri_shell_quartet_os(*shs)
        assert np.allclose(a, b, atol=1e-12, rtol=1e-10)

    def test_pure_d_quartet(self):
        rng = np.random.default_rng(42)
        shs = [
            rand_shell(rng, 2, pure=True),
            rand_shell(rng, 1),
            rand_shell(rng, 2, pure=True),
            rand_shell(rng, 0),
        ]
        a = eri_shell_quartet(*shs)
        b = eri_shell_quartet_os(*shs)
        assert a.shape == (5, 3, 5, 1)
        assert np.allclose(a, b, atol=1e-13)


class TestPermutationalSymmetry:
    """Eq (4): (ij|kl) = (ji|kl) = (ij|lk) = (kl|ij)."""

    @pytest.fixture(scope="class")
    def quartet(self):
        rng = np.random.default_rng(7)
        shs = [rand_shell(rng, l) for l in (1, 2, 0, 1)]
        return shs

    def test_bra_swap(self, quartet):
        a, b, c, d = quartet
        blk = eri_shell_quartet(a, b, c, d)
        swapped = eri_shell_quartet(b, a, c, d)
        assert np.allclose(blk, swapped.transpose(1, 0, 2, 3), atol=1e-13)

    def test_ket_swap(self, quartet):
        a, b, c, d = quartet
        blk = eri_shell_quartet(a, b, c, d)
        swapped = eri_shell_quartet(a, b, d, c)
        assert np.allclose(blk, swapped.transpose(0, 1, 3, 2), atol=1e-13)

    def test_bra_ket_exchange(self, quartet):
        a, b, c, d = quartet
        blk = eri_shell_quartet(a, b, c, d)
        swapped = eri_shell_quartet(c, d, a, b)
        assert np.allclose(blk, swapped.transpose(2, 3, 0, 1), atol=1e-13)

    def test_full_tensor_symmetries(self, water_basis):
        eri = eri_tensor(water_basis)
        assert np.allclose(eri, eri.transpose(1, 0, 2, 3), atol=1e-12)
        assert np.allclose(eri, eri.transpose(0, 1, 3, 2), atol=1e-12)
        assert np.allclose(eri, eri.transpose(2, 3, 0, 1), atol=1e-12)


class TestPositivity:
    """(ij|ij) >= 0: the ERI supermatrix is positive semidefinite."""

    @given(st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_diagonal_nonnegative(self, seed):
        rng = np.random.default_rng(seed)
        sha = rand_shell(rng, int(rng.integers(0, 3)))
        shb = rand_shell(rng, int(rng.integers(0, 3)))
        blk = eri_shell_quartet(sha, shb, sha, shb)
        na, nb = blk.shape[0], blk.shape[1]
        diag = np.einsum("ijij->ij", blk.reshape(na, nb, na, nb))
        assert np.all(diag > -1e-12)
