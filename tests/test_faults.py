"""Fault-injection runtime, fault-tolerant stealing, chaos invariant,
and SCF checkpoint/restart (see docs/ROBUSTNESS.md)."""

import numpy as np
import pytest

from repro.fock.chaos import run_chaos
from repro.fock.stealing import run_work_stealing
from repro.obs.flight import CH_RETRY, CHANNELS
from repro.runtime.event import EventQueue
from repro.runtime.faults import FaultError, FaultPlan, random_plan
from repro.runtime.ga import GlobalArray, block_bounds
from repro.runtime.machine import LONESTAR
from repro.runtime.network import CommStats


class TestFaultPlan:
    def test_no_faults_by_default(self):
        assert not FaultPlan().has_faults

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"op_fail_rate": 1.0},
            {"op_fail_rate": -0.1},
            {"ack_loss_rate": 1.5},
            {"delay_rate": -0.5},
            {"max_retries": 0},
            {"backoff_factor": 0.5},
            {"slowdown": {0: 0.5}},
            {"deaths": {1: -1.0}},
        ],
    )
    def test_invalid_plans_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_all_ranks_dead_rejected(self):
        plan = FaultPlan(deaths={0: 1.0, 1: 2.0})
        with pytest.raises(ValueError, match="alive"):
            plan.activate(2)

    def test_describe_mentions_faults(self):
        plan = FaultPlan(seed=3, deaths={1: 0.5}, op_fail_rate=0.1)
        text = plan.describe()
        assert "seed=3" in text and "r1" in text and "op_fail" in text

    def test_random_plan_deterministic(self):
        a = random_plan(11, 8, horizon=1.0)
        b = random_plan(11, 8, horizon=1.0)
        assert a == b
        assert a.deaths and all(0.1 <= t <= 0.7 for t in a.deaths.values())

    def test_random_plan_needs_survivor(self):
        with pytest.raises(ValueError):
            random_plan(0, 4, horizon=1.0, ndeaths=4)

    def test_activated_draws_deterministic(self):
        plan = FaultPlan(seed=5, op_fail_rate=0.3, delay_rate=0.3)
        a, b = plan.activate(2), plan.activate(2)
        seq_a = [(a.draw_failures(0), a.draw_delay(0)) for _ in range(50)]
        seq_b = [(b.draw_failures(0), b.draw_delay(0)) for _ in range(50)]
        assert seq_a == seq_b


class TestRetryCharging:
    def test_retry_channel_registered(self):
        assert CH_RETRY in CHANNELS

    def test_retries_preserve_exact_decomposition(self):
        """Retried payloads count in the Table VI/VII counters AND on the
        retry channel: the flight recorder's exact-decomposition
        invariant must hold under fault injection."""
        plan = FaultPlan(seed=1, op_fail_rate=0.3, delay_rate=0.2)
        stats = CommStats(2, LONESTAR, faults=plan.activate(2))
        for _ in range(60):
            stats.charge_comm(0, 800, ncalls=1, remote=True)
        assert stats.faults.retries[0] > 0
        stats.flight.check_against(stats)  # raises on any drift
        retry_bytes = stats.flight.per_rank(CH_RETRY, "bytes")
        assert retry_bytes[0] > 0

    def test_no_faults_means_no_retry_traffic(self):
        stats = CommStats(2, LONESTAR)
        stats.charge_comm(0, 800, ncalls=1, remote=True)
        assert stats.flight.per_rank(CH_RETRY, "bytes")[0] == 0

    def test_retries_exhausted_raises(self):
        plan = FaultPlan(seed=0, op_fail_rate=0.99, max_retries=8)
        stats = CommStats(1, LONESTAR, faults=plan.activate(1))
        with pytest.raises(FaultError, match="retries exhausted"):
            for _ in range(200):
                stats.charge_comm(0, 8, ncalls=1, remote=True)

    def test_nproc_mismatch_rejected(self):
        plan = FaultPlan(seed=0)
        with pytest.raises(ValueError):
            CommStats(4, LONESTAR, faults=plan.activate(2))


def _small_ga(stats: CommStats) -> GlobalArray:
    return GlobalArray(stats, 8, 8, block_bounds(8, 2), block_bounds(8, 1))


class TestExactlyOnceAccumulate:
    def _lossy_stats(self) -> CommStats:
        plan = FaultPlan(seed=2, op_fail_rate=0.6, ack_loss_rate=1.0)
        return CommStats(2, LONESTAR, faults=plan.activate(2))

    def test_untagged_acc_double_applies_under_ack_loss(self):
        """The hazard the tags exist to close: a failed attempt that
        applied its mutation before losing the ack gets blindly retried,
        so the target sees it twice."""
        stats = self._lossy_stats()
        ga = _small_ga(stats)
        block = np.ones((2, 2))
        n = 40
        for _ in range(n):
            ga.acc(1, 0, 0, block)
        lost = int(stats.faults.acks_lost.sum())
        assert lost > 0  # the seeded plan does lose acks
        # every lost ack applied one extra copy of the block
        np.testing.assert_array_equal(ga.data[0:2, 0:2], (n + lost) * block)

    def test_tagged_acc_is_exactly_once(self):
        stats = self._lossy_stats()
        ga = _small_ga(stats)
        block = np.ones((2, 2))
        n = 30
        for i in range(n):
            ga.acc(1, 0, 0, block, tag=("op", i))
        assert stats.faults.acks_lost.sum() > 0  # hazard did occur
        np.testing.assert_array_equal(ga.data[0:2, 0:2], n * block)

    def test_tag_replay_is_dropped(self):
        stats = CommStats(2, LONESTAR)
        ga = _small_ga(stats)
        block = np.full((2, 2), 3.0)
        ga.acc(1, 0, 0, block, tag="op-1")
        ga.acc(1, 0, 0, block, tag="op-1")  # blind retry of the same op
        np.testing.assert_array_equal(ga.data[0:2, 0:2], block)

    def test_epoch_commit_applies_once(self):
        stats = CommStats(2, LONESTAR)
        ga = _small_ga(stats)
        ga.begin_epoch("flush-0")
        ga.acc(1, 0, 0, np.ones((2, 2)), epoch="flush-0")
        ga.acc(1, 2, 0, np.ones((2, 2)), epoch="flush-0")
        assert ga.data.sum() == 0.0  # staged, not visible
        assert ga.commit_epoch("flush-0") == 2
        assert ga.data.sum() == 8.0

    def test_epoch_abort_discards(self):
        stats = CommStats(2, LONESTAR)
        ga = _small_ga(stats)
        ga.begin_epoch("flush-1")
        ga.acc(1, 0, 0, np.ones((2, 2)), epoch="flush-1")
        assert ga.abort_epoch("flush-1") == 1
        assert ga.data.sum() == 0.0

    def test_epoch_misuse_rejected(self):
        stats = CommStats(2, LONESTAR)
        ga = _small_ga(stats)
        with pytest.raises(KeyError, match="not open"):
            ga.acc(1, 0, 0, np.ones((2, 2)), epoch="nope")
        ga.begin_epoch("e")
        with pytest.raises(ValueError, match="already open"):
            ga.begin_epoch("e")


class TestEventPerturbation:
    def test_delays_only(self):
        q = EventQueue(perturb=lambda t, k: t - 1.0)
        with pytest.raises(ValueError, match="delays only"):
            q.schedule(5.0, 0)

    def test_control_events_not_perturbed(self):
        plan = FaultPlan(seed=0, delay_rate=1.0, delay_seconds=10.0)
        state = plan.activate(2)
        assert state.perturb_event(5.0, ("death", 1)) == 5.0
        assert state.perturb_event(5.0, 0) >= 5.0


class TestFaultTolerantStealing:
    def _grid_queues(self, nproc=4, per_rank=8):
        return [[(p, i) for i in range(per_rank)] for p in range(nproc)]

    def test_death_mid_run_recovers_all_tasks(self):
        executed = []
        queues = self._grid_queues()
        plan = FaultPlan(seed=0, deaths={0: 2.5})
        out = run_work_stealing(
            queues,
            lambda t: 1.0,
            (1, 4),
            on_task=lambda p, t: executed.append((p, t)),
            faults=plan.activate(4),
        )
        all_tasks = {t for q in self._grid_queues() for t in q}
        assert {t for _, t in executed} == all_tasks
        assert out.dead_ranks == [0]
        assert out.recoveries  # someone adopted the orphans
        # the dead rank executed nothing that survived
        survivors_executed = {t for p, t in executed if p != 0}
        assert survivors_executed >= {t for t in all_tasks if t[0] == 0}

    def test_death_after_completion_reexecutes_lost_results(self):
        """A rank dying after it drained its queue (but before any flush)
        still loses its unflushed results: survivors must re-execute
        them even though everyone was already idle."""
        executed = []
        queues = [[("a", i) for i in range(4)], [("b", 0)]]
        plan = FaultPlan(seed=0, deaths={0: 1000.0})
        out = run_work_stealing(
            queues,
            lambda t: 1.0,
            (1, 2),
            on_task=lambda p, t: executed.append((p, t)),
            faults=plan.activate(2),
            enable_stealing=False,  # rank 0 commits its whole queue itself
        )
        assert out.dead_ranks == [0]
        assert out.reexecuted_tasks == 4
        by_live = {t for p, t in executed if p == 1}
        assert {("a", i) for i in range(4)} <= by_live
        assert out.makespan >= 1000.0

    def test_straggler_slows_its_own_batches_only(self):
        plan = FaultPlan(seed=0, slowdown={0: 3.0})
        out = run_work_stealing(
            [[0] * 5, [1] * 5],
            lambda t: 1.0,
            (1, 2),
            faults=plan.activate(2),
            enable_stealing=False,
        )
        assert out.finish_time[0] == pytest.approx(15.0)
        assert out.finish_time[1] == pytest.approx(5.0)

    def test_seeded_rng_scan_is_reproducible(self):
        def run(seed):
            steals = run_work_stealing(
                [[i for i in range(40)], [], [], []],
                lambda t: 1.0,
                (2, 2),
                rng=np.random.default_rng(seed),
            ).steals
            return [(s.thief, s.victim, s.ntasks) for s in steals]

        assert run(9) == run(9)

    def test_executed_history_tracked_only_under_faults(self):
        queues = [[1, 2], [3]]
        plain = run_work_stealing(queues, lambda t: 1.0, (1, 2))
        assert plain.executed_history is None
        faulted = run_work_stealing(
            [[1, 2], [3]], lambda t: 1.0, (1, 2),
            faults=FaultPlan(seed=0).activate(2),
        )
        assert faulted.executed_history is not None


class TestChaosInvariant:
    """The tentpole acceptance test: for seeded fault plans including a
    rank death, the numeric build completes and F matches the fault-free
    build to <= 1e-12."""

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_fock_matches_fault_free(self, seed):
        res = run_chaos(
            "water", "sto-3g", nproc=4, seed=seed, ndeaths=1
        )
        assert res.plan.deaths  # the plan really kills a rank
        assert res.fock_error <= 1e-12
        assert res.energy_error <= 1e-10
        assert res.passed
        # recovery overhead is measurable, never silent
        res.faulty.stats.flight.check_against(res.faulty.stats)
        assert res.overhead["dead_ranks"] == sorted(res.plan.deaths)
        assert res.overhead["makespan_faulty"] >= res.overhead["makespan_clean"]

    def test_two_deaths_and_heavy_loss(self):
        plan = FaultPlan(
            seed=42, slowdown={0: 4.0}, deaths={1: 1e-4, 2: 2e-4},
            op_fail_rate=0.2, delay_rate=0.2,
        )
        res = run_chaos("water", "sto-3g", nproc=4, plan=plan)
        assert res.passed
        assert res.overhead["dead_ranks"] == [1, 2]
        assert res.overhead["retries_total"] > 0

    def test_chaos_run_deterministic(self):
        a = run_chaos("water", "sto-3g", nproc=4, seed=5)
        b = run_chaos("water", "sto-3g", nproc=4, seed=5)
        np.testing.assert_array_equal(a.faulty.fock, b.faulty.fock)
        assert a.overhead == b.overhead


class TestSimulateUnderFaults:
    def test_simulated_gtfock_survives_faults(self):
        from repro.chem.basis.basisset import BasisSet
        from repro.chem.builders import water
        from repro.fock.reorder import reorder_basis
        from repro.fock.screening_map import ScreeningMap
        from repro.fock.simulate import simulate_gtfock
        from repro.integrals.schwarz import schwarz_model

        basis = reorder_basis(BasisSet.build(water(), "sto-3g"))
        screen = ScreeningMap(basis, schwarz_model(basis), 1e-10)
        clean = simulate_gtfock(basis, screen, cores=48)
        plan = random_plan(3, 4, horizon=clean.t_fock_max)
        faulty = simulate_gtfock(basis, screen, cores=48, faults=plan)
        assert faulty.dead_ranks == sorted(plan.deaths)
        assert faulty.t_fock_max >= 0.0
        assert faulty.fault_overhead["plan"] == plan.describe()
        assert faulty.comm_by_channel.get("retry", 0) >= 0


class TestCheckpointRestart:
    def test_bitwise_resume(self, tmp_path):
        from repro.chem.builders import water
        from repro.scf.checkpoint import latest_checkpoint
        from repro.scf.hf import RHF

        mol = water()
        ref = RHF(mol, "sto-3g").run()
        ck = tmp_path / "ck"
        RHF(mol, "sto-3g", max_iter=3, checkpoint_dir=str(ck)).run()
        assert latest_checkpoint(ck) is not None
        resumed = RHF(
            mol, "sto-3g", checkpoint_dir=str(ck), restart=True
        ).run()
        assert resumed.converged
        assert resumed.iterations == ref.iterations
        assert resumed.energy == ref.energy  # bitwise, not approx
        assert resumed.energy_history == ref.energy_history

    def test_snapshot_roundtrip(self, tmp_path):
        from repro.scf.checkpoint import load_checkpoint, save_checkpoint
        from repro.scf.diis import DIIS

        rng = np.random.default_rng(0)
        d = rng.normal(size=(4, 4))
        diis = DIIS()
        diis.push(rng.normal(size=(4, 4)), rng.normal(size=(4, 4)))
        path = save_checkpoint(tmp_path, 7, d, -1.5, [-1.0, -1.5], diis)
        assert path.name == "scf_ckpt_0007.npz"
        assert not list(tmp_path.glob("*.tmp"))  # atomic write cleaned up
        ck = load_checkpoint(path)
        assert ck.iteration == 7
        assert ck.energy == -1.5
        np.testing.assert_array_equal(ck.density, d)
        assert len(ck.diis_focks) == 1
        restored = DIIS()
        restored.load_state(ck.diis_focks, ck.diis_errors)
        np.testing.assert_array_equal(
            restored.extrapolate(), diis.extrapolate()
        )

    def test_latest_checkpoint_empty(self, tmp_path):
        from repro.scf.checkpoint import latest_checkpoint

        assert latest_checkpoint(tmp_path) is None
        assert latest_checkpoint(tmp_path / "missing") is None

    def test_restart_requires_dir(self):
        from repro.chem.builders import water
        from repro.scf.hf import RHF

        with pytest.raises(ValueError, match="checkpoint_dir"):
            RHF(water(), "sto-3g", restart=True)


class TestChaosCLI:
    def test_chaos_subcommand(self, tmp_path):
        import json

        from repro.cli import main

        report = tmp_path / "chaos.html"
        summary = tmp_path / "chaos.json"
        rc = main(
            [
                "chaos", "water", "--basis", "sto-3g", "--nproc", "4",
                "--seed", "7", "--deaths", "1",
                "--report", str(report), "--json", str(summary),
            ]
        )
        assert rc == 0
        payload = json.loads(summary.read_text())
        assert payload["passed"] is True
        assert payload["fock_error"] <= 1e-12
        html = report.read_text()
        assert "Fault injection" in html and "retry" in html

    def test_export_faults_metrics(self):
        from repro.obs.metrics import MetricsRegistry, export_faults

        res = run_chaos("water", "sto-3g", nproc=4, seed=1)
        reg = MetricsRegistry()
        export_faults(res.faulty.faults, res.faulty.outcome, registry=reg)
        text = reg.to_prometheus()
        assert "repro_faults_retries_total" in text
        assert "repro_faults_dead_ranks" in text
