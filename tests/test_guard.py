"""Tests for the SCF convergence guard: classifier, ladder, rescues,
checkpoint persistence, orthogonalizer hardening, and the scf chaos gate."""

import numpy as np
import pytest

from repro.chem.builders import water
from repro.fock.chaos import run_scf_chaos
from repro.integrals.engine import MDEngine, NonFiniteERIError, OSEngine
from repro.integrals.oneelec import overlap
from repro.runtime.faults import SCFFaultPlan, random_scf_plan
from repro.scf.checkpoint import (
    CheckpointCorruptionWarning,
    checkpoint_path,
    load_checkpoint,
    load_latest_intact,
    save_checkpoint,
)
from repro.scf.guard import (
    DEFAULT_LADDER,
    DIVERGING,
    HEALTHY,
    NON_FINITE,
    OSCILLATING,
    STAGNATING,
    ConvergenceClassifier,
    GuardConfig,
    GuardError,
    GuardEvent,
    Rung,
    SCFGuard,
)
from repro.scf.hf import RHF
from repro.scf.orthogonalization import (
    LinearDependenceWarning,
    orthogonalizer_info,
)
from repro.scf.torture import near_singular_h4, stretched_water
from repro.scf.uhf import UHF


def classifier(**kw):
    return ConvergenceClassifier(GuardConfig(**kw), e_tol=1e-9, d_tol=1e-7)


class TestClassifier:
    def test_empty_and_short_history_healthy(self):
        c = classifier()
        assert c.classify([], []) == HEALTHY
        assert c.classify([-74.0], [0.5]) == HEALTHY

    def test_nan_energy_is_non_finite(self):
        c = classifier()
        assert c.classify([-74.0, float("nan")], [0.1, 0.1]) == NON_FINITE

    def test_inf_d_change_is_non_finite(self):
        c = classifier()
        assert c.classify([-74.0, -74.1], [0.1, float("inf")]) == NON_FINITE

    def test_period2_oscillation(self):
        # alternating energies with a large, non-shrinking density change
        e = [-74.0, -73.0, -74.0, -73.0, -74.0, -73.0]
        dd = [0.8] * 6
        assert classifier().classify(e, dd) == OSCILLATING

    def test_diverging_energy(self):
        e = [-74.0, -73.0, -70.0, -60.0, -40.0]
        dd = [0.5] * 5
        assert classifier().classify(e, dd) == DIVERGING

    def test_stagnating_window(self):
        e = [-74.0 - 1e-10 * i for i in range(8)]
        dd = [0.01000, 0.01001, 0.00999, 0.01000, 0.01001, 0.00999, 0.01000,
              0.01001]
        assert classifier().classify(e, dd) == STAGNATING

    def test_healthy_convergence(self):
        e = [-73.0, -74.0, -74.9, -74.96, -74.9630, -74.96302]
        dd = [0.5, 0.1, 0.02, 0.004, 8e-4, 1e-4]
        assert classifier().classify(e, dd) == HEALTHY

    def test_converged_scale_never_oscillating(self):
        # sign flips at the convergence threshold are noise, not pathology
        e = [-74.0 + ((-1) ** i) * 1e-6 for i in range(6)]
        dd = [1e-8] * 6
        assert classifier().classify(e, dd) == HEALTHY


class TestConfigAndEvents:
    def test_rung_rejects_unknown_action(self):
        with pytest.raises(ValueError, match="unknown remediation action"):
            Rung("reboot", {})

    def test_config_validation(self):
        with pytest.raises(ValueError, match="window"):
            GuardConfig(window=2)
        with pytest.raises(ValueError, match="patience"):
            GuardConfig(patience=0)
        with pytest.raises(ValueError, match="ladder"):
            GuardConfig(ladder=())

    def test_event_json_roundtrip(self):
        ev = GuardEvent(7, OSCILLATING, "damp", {"factor": 0.3})
        assert GuardEvent.from_json(ev.to_json()) == ev
        assert "it 7" in ev.describe()


class TestGuardStateMachine:
    def test_healthy_run_is_untouched(self):
        g = SCFGuard(GuardConfig())
        for i, (e, dd) in enumerate(
            zip([-73.0, -74.0, -74.9, -74.96], [0.5, 0.1, 0.02, 0.004]), 1
        ):
            assert g.observe(i, e, dd) == HEALTHY
        assert g.level == -1 and g.damping == 0.0 and not g.events

    def test_oscillation_escalates_ladder(self):
        g = SCFGuard(GuardConfig(patience=2))
        e, dd = [], []
        for i in range(1, 12):
            e.append(-74.0 if i % 2 else -73.0)
            dd.append(0.8)
            g.observe(i, e[-1], dd[-1])
        assert g.level >= 0
        assert g.damping > 0.0
        actions = {ev.action for ev in g.events}
        assert "damp" in actions

    def test_relax_halves_damping_after_healthy_streak(self):
        g = SCFGuard(GuardConfig(healthy_window=2))
        g.damping = 0.4
        g.observe(1, -74.0, 0.5)
        g.observe(2, -74.5, 0.3)
        assert g.damping == pytest.approx(0.2)
        assert any(ev.action == "relax" for ev in g.events)

    def test_nonfinite_jumps_to_fallback_rungs(self):
        g = SCFGuard(GuardConfig())
        assert not g.check_matrix("fock", np.array([[np.nan]]), 3)
        g.on_nonfinite(3, "fock")
        reset_rung = next(
            i for i, r in enumerate(DEFAULT_LADDER) if r.action == "diis_reset"
        )
        assert g.level == reset_rung
        assert g.consume_diis_reset()
        assert not g.consume_diis_reset()  # one-shot

    def test_nonfinite_exhaustion_aborts(self):
        g = SCFGuard(GuardConfig(max_nonfinite=1))
        bad = np.full((2, 2), np.nan)
        g.check_matrix("fock", bad, 1)
        g.check_matrix("fock", bad, 2)
        assert g.nonfinite_exhausted()
        err = g.fail(2, "test abort")
        assert isinstance(err, GuardError)
        assert err.events and err.events[-1].action == "abort"

    def test_state_roundtrip(self):
        g = SCFGuard(GuardConfig())
        for i in range(1, 10):
            g.observe(i, -74.0 if i % 2 else -73.0, 0.8)
        g.canonical_threshold = 1e-6
        g2 = SCFGuard.from_state_json(g.state_json())
        assert g2.level == g.level
        assert g2.damping == g.damping
        assert g2.canonical_threshold == 1e-6
        assert [e.to_json() for e in g2.events] == [
            e.to_json() for e in g.events
        ]


class TestGuardedSCF:
    def test_stretched_oscillator_fails_vanilla_converges_guarded(self):
        mol = stretched_water(2.5)
        vanilla = RHF(mol, use_diis=False, max_iter=60).run()
        assert not vanilla.converged
        guarded = RHF(mol, use_diis=False, max_iter=200, guard=True).run()
        assert guarded.converged
        assert np.isfinite(guarded.energy)
        actions = {ev.action for ev in guarded.guard_events}
        assert "damp" in actions
        assert guarded.guard_summary["final_state"] == HEALTHY

    def test_healthy_molecule_bitwise_unchanged_under_guard(self):
        plain = RHF(water()).run()
        guarded = RHF(water(), guard=True).run()
        assert guarded.energy == plain.energy
        assert guarded.iterations == plain.iterations
        assert not guarded.guard_events

    def test_nan_fock_injection_rescued(self):
        plan = SCFFaultPlan(seed=5, fock_nan_iterations=(2, 4))
        res = RHF(water(), guard=True, faults=plan).run()
        assert res.converged
        assert np.isfinite(res.energy)
        assert res.guard_summary["nonfinite"] >= 2
        assert any(ev.classification == NON_FINITE for ev in res.guard_events)

    def test_nan_quartet_injection_rescued_by_sentinel(self):
        plan = SCFFaultPlan(
            seed=11, quartet_nan_rate=0.02, quartet_inf_rate=0.02,
            max_corruptions=64,
        )
        clean = RHF(water()).run()
        rhf = RHF(water(), guard=True, faults=plan)
        res = rhf.run()
        assert res.converged
        assert res.energy == pytest.approx(clean.energy, abs=1e-9)
        assert rhf.engine.eri_rescues > 0

    def test_nonfinite_exhaustion_raises_guard_error(self):
        plan = SCFFaultPlan(seed=1, fock_nan_iterations=(1, 2, 3, 4, 5))
        rhf = RHF(
            water(),
            guard=GuardConfig(max_nonfinite=2),
            faults=plan,
        )
        with pytest.raises(GuardError) as exc_info:
            rhf.run()
        assert exc_info.value.events  # actionable trail

    def test_uhf_guard_smoke(self):
        res = UHF(water(), guard=True).run()
        assert res.converged
        assert res.guard_summary is not None


class TestCheckpointGuardPersistence:
    def test_guard_state_roundtrips_through_npz(self, tmp_path):
        g = SCFGuard(GuardConfig())
        for i in range(1, 8):
            g.observe(i, -74.0 if i % 2 else -73.0, 0.8)
        d = np.eye(3)
        save_checkpoint(tmp_path, 4, d, -74.0, [-73.0, -74.0], guard=g)
        ck = load_checkpoint(checkpoint_path(tmp_path, 4))
        assert ck.guard is not None
        g2 = SCFGuard(GuardConfig())
        g2.load_state(ck.guard)
        assert g2.level == g.level and g2.damping == g.damping

    def test_pre_guard_checkpoints_still_load(self, tmp_path):
        save_checkpoint(tmp_path, 1, np.eye(2), -1.0, [-1.0])
        ck = load_checkpoint(checkpoint_path(tmp_path, 1))
        assert ck.guard is None

    def test_corrupted_latest_falls_back_to_intact(self, tmp_path):
        save_checkpoint(tmp_path, 1, np.eye(2), -1.0, [-1.0])
        save_checkpoint(tmp_path, 2, 2 * np.eye(2), -2.0, [-1.0, -2.0])
        # truncate the newest snapshot mid-file
        newest = checkpoint_path(tmp_path, 2)
        newest.write_bytes(newest.read_bytes()[:40])
        with pytest.warns(CheckpointCorruptionWarning):
            ck = load_latest_intact(tmp_path)
        assert ck is not None and ck.iteration == 1

    def test_all_corrupt_returns_none(self, tmp_path):
        save_checkpoint(tmp_path, 1, np.eye(2), -1.0, [-1.0])
        checkpoint_path(tmp_path, 1).write_bytes(b"not a zipfile")
        with pytest.warns(CheckpointCorruptionWarning):
            assert load_latest_intact(tmp_path) is None

    def test_empty_dir_returns_none(self, tmp_path):
        assert load_latest_intact(tmp_path) is None

    def test_restart_skips_corrupted_checkpoint(self, tmp_path):
        mol = water()
        RHF(mol, checkpoint_dir=str(tmp_path)).run()
        # corrupt the newest snapshot; restart must fall back, not crash
        import repro.scf.checkpoint as ckpt

        newest = ckpt.checkpoint_paths(tmp_path)[0]
        newest.write_bytes(b"garbage")
        with pytest.warns(CheckpointCorruptionWarning):
            res = RHF(mol, checkpoint_dir=str(tmp_path), restart=True).run()
        assert res.converged


class TestOrthogonalizerHardening:
    def test_auto_switch_on_near_singular_overlap(self):
        from repro.chem.basis.basisset import BasisSet

        mol = near_singular_h4()
        s = overlap(BasisSet.build(mol, "sto-3g"))
        with pytest.warns(LinearDependenceWarning):
            x, info = orthogonalizer_info(s, threshold=1e-6)
        assert info.canonical
        assert info.condition > 1e6
        assert np.allclose(x.T @ s @ x, np.eye(x.shape[1]), atol=1e-8)

    def test_well_conditioned_stays_symmetric(self):
        from repro.chem.basis.basisset import BasisSet

        s = overlap(BasisSet.build(water(), "sto-3g"))
        x, info = orthogonalizer_info(s)
        assert not info.canonical
        assert info.n_dropped == 0

    def test_not_positive_definite_raises_field_named_error(self):
        s = -np.eye(3)
        with pytest.raises(ValueError, match="overlap.*not positive definite"):
            orthogonalizer_info(s)

    def test_rank_deficient_switches_and_drops(self):
        s = np.eye(3) * 1e-20
        s[0, 0] = 1.0
        with pytest.warns(LinearDependenceWarning):
            x, info = orthogonalizer_info(s, threshold=1e-6, cond_limit=1e8)
        assert info.canonical
        assert info.n_kept == 1
        assert info.n_dropped == 2

    def test_nan_overlap_raises_finite_error(self):
        s = np.eye(3)
        s[1, 1] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            orthogonalizer_info(s)


class TestERIFaultSeam:
    def test_sentinel_rescues_corrupted_batched_block(self, water_basis):
        engine = MDEngine(water_basis)
        engine.finite_check = True
        engine.scf_faults = SCFFaultPlan(
            seed=0, quartet_nan_rate=1.0
        ).activate()
        block = engine.quartet(0, 0, 0, 0)
        assert np.isfinite(block).all()
        assert engine.eri_rescues >= 1

    def test_engine_without_reference_path_raises(self, water_basis):
        engine = OSEngine(water_basis)
        assert not engine.supports_reference_path
        with pytest.raises(NonFiniteERIError, match="no rescue path"):
            engine._rescue_quartet(0, 0, 0, 0)

    def test_force_reference_path_disables_batched(self, water_basis):
        engine = MDEngine(water_basis)
        assert engine.supports_reference_path
        engine.force_reference_path()
        assert engine.pair_cache is None and not engine.batched

    def test_fault_plan_validation(self):
        with pytest.raises(ValueError, match="quartet_nan_rate"):
            SCFFaultPlan(quartet_nan_rate=1.5)
        with pytest.raises(ValueError, match="1-based"):
            SCFFaultPlan(fock_nan_iterations=(0,))
        plan = random_scf_plan(3)
        assert plan.has_faults
        assert plan.describe()

    def test_matrix_fault_fires_once_per_iteration(self):
        state = SCFFaultPlan(seed=0, fock_nan_iterations=(2,)).activate()
        a = np.ones((3, 3))
        first = state.corrupt_matrix(a, 2, "fock")
        assert np.isnan(first).any()
        again = state.corrupt_matrix(a, 2, "fock")
        assert np.isfinite(again).all()  # same (iteration, target): no re-fire
        assert np.isfinite(state.corrupt_matrix(a, 3, "fock")).all()


class TestSCFChaosGate:
    def test_scf_chaos_gate_passes(self):
        res = run_scf_chaos(seed=0, quartet_nan_rate=0.05)
        assert res.quartets_corrupted > 0
        assert res.eri_rescues >= res.quartets_corrupted
        assert res.fock_error <= 1e-12
        assert res.passed
