"""Tests for one-electron integrals: S, T, V against analytic references."""

import math

import numpy as np
import pytest

from repro.chem.basis.basisset import BasisSet
from repro.chem.basis.shells import Shell
from repro.integrals.oneelec import (
    core_hamiltonian,
    kinetic,
    kinetic_block,
    nuclear_attraction,
    nuclear_attraction_block,
    overlap,
    overlap_block,
)


def s_shell(alpha, center=(0, 0, 0)):
    return Shell(l=0, exps=np.array([alpha]), coefs=np.array([1.0]),
                 center=np.array(center, dtype=float), atom_index=0)


def p_shell(alpha, center=(0, 0, 0)):
    return Shell(l=1, exps=np.array([alpha]), coefs=np.array([1.0]),
                 center=np.array(center, dtype=float), atom_index=0)


class TestOverlapAnalytic:
    def test_normalized_diagonal(self):
        for make in (s_shell, p_shell):
            sh = make(0.8)
            blk = overlap_block(sh, sh)
            assert np.allclose(np.diag(blk), 1.0, atol=1e-12)

    def test_two_s_gaussians(self):
        """<a|b> = (4ab/(a+b)^2)^(3/4) exp(-ab/(a+b) R^2) for normalized s."""
        a, b, r = 0.7, 1.9, 1.3
        sha, shb = s_shell(a), s_shell(b, (0, 0, r))
        expected = (4 * a * b / (a + b) ** 2) ** 0.75 * math.exp(
            -a * b / (a + b) * r * r
        )
        assert overlap_block(sha, shb)[0, 0] == pytest.approx(expected, rel=1e-12)

    def test_p_orthogonal_to_s_same_center(self):
        blk = overlap_block(s_shell(1.0), p_shell(0.6))
        assert np.allclose(blk, 0.0, atol=1e-14)

    def test_full_matrix_symmetric(self, water_basis):
        s = overlap(water_basis)
        assert np.allclose(s, s.T, atol=1e-14)
        assert np.allclose(np.diag(s), 1.0, atol=1e-10)

    def test_positive_definite(self, water_basis):
        s = overlap(water_basis)
        assert np.linalg.eigvalsh(s).min() > 0


class TestKineticAnalytic:
    def test_single_s_gaussian(self):
        """<a|T|a> = 3a/2 for a normalized s Gaussian."""
        a = 1.7
        blk = kinetic_block(s_shell(a), s_shell(a))
        assert blk[0, 0] == pytest.approx(1.5 * a, rel=1e-12)

    def test_single_p_gaussian(self):
        """<p|T|p> = 5a/2 for a normalized p Gaussian."""
        a = 0.9
        blk = kinetic_block(p_shell(a), p_shell(a))
        assert np.allclose(np.diag(blk), 2.5 * a, atol=1e-12)

    def test_symmetric(self, water_basis):
        t = kinetic(water_basis)
        assert np.allclose(t, t.T, atol=1e-12)

    def test_positive_diagonal(self, water_basis):
        assert np.all(np.diag(kinetic(water_basis)) > 0)


class TestNuclearAnalytic:
    def test_s_gaussian_at_own_nucleus(self):
        """<a| -1/r |a> = -2 sqrt(2a/pi) for normalized s at the nucleus."""
        a = 1.1
        sh = s_shell(a)
        blk = nuclear_attraction_block(
            sh, sh, np.array([1.0]), np.zeros((1, 3))
        )
        expected = -2.0 * math.sqrt(2.0 * a / math.pi)
        assert blk[0, 0] == pytest.approx(expected, rel=1e-12)

    def test_far_nucleus_coulomb_limit(self):
        """A distant nucleus sees a point charge: V ~ -Z/R."""
        a, R = 2.0, 40.0
        sh = s_shell(a)
        blk = nuclear_attraction_block(
            sh, sh, np.array([3.0]), np.array([[0.0, 0.0, R]])
        )
        assert blk[0, 0] == pytest.approx(-3.0 / R, rel=1e-8)

    def test_negative_everywhere_diag(self, water_basis):
        v = nuclear_attraction(water_basis)
        assert np.all(np.diag(v) < 0)

    def test_symmetric(self, water_basis):
        v = nuclear_attraction(water_basis)
        assert np.allclose(v, v.T, atol=1e-12)


class TestLiteratureValues:
    def test_h2_sto3g(self, h2_mol):
        """Classic H2/STO-3G values at R = 1.4 a0 (Szabo & Ostlund)."""
        basis = BasisSet.build(h2_mol, "sto-3g")
        s = overlap(basis)
        t = kinetic(basis)
        assert s[0, 1] == pytest.approx(0.6593, abs=1e-3)
        assert t[0, 0] == pytest.approx(0.7600, abs=1e-3)

    def test_core_hamiltonian_is_sum(self, water_basis):
        h = core_hamiltonian(water_basis)
        assert np.allclose(h, kinetic(water_basis) + nuclear_attraction(water_basis))


class TestTranslationInvariance:
    def test_overlap_shift(self):
        sha, shb = s_shell(0.5), p_shell(1.2, (0.4, -0.3, 0.9))
        shift = np.array([1.0, 2.0, -0.5])
        blk1 = overlap_block(sha, shb)
        blk2 = overlap_block(
            sha.at(sha.center + shift, 0), shb.at(shb.center + shift, 0)
        )
        assert np.allclose(blk1, blk2, atol=1e-13)

    def test_kinetic_shift(self):
        sha, shb = p_shell(0.5), p_shell(1.2, (0.4, -0.3, 0.9))
        shift = np.array([-2.0, 0.7, 3.1])
        blk1 = kinetic_block(sha, shb)
        blk2 = kinetic_block(
            sha.at(sha.center + shift, 0), shb.at(shb.center + shift, 0)
        )
        assert np.allclose(blk1, blk2, atol=1e-13)
