"""Numeric-mode distributed Fock builds vs the sequential reference.

These are the reproduction's central correctness tests: the paper's
algorithm (and the NWChem baseline) executed on the simulated runtime
must produce the same Fock matrix as the sequential screened build, for
any process count, with and without stealing and reordering.
"""

import numpy as np
import pytest

from repro.fock.gtfock import PrefetchMiss, gtfock_build
from repro.fock.nwchem import nwchem_build
from repro.fock.reorder import reorder_basis
from repro.integrals.engine import MDEngine, SyntheticERIEngine
from repro.scf.fock import fock_matrix


class TestGTFockNumeric:
    @pytest.mark.parametrize("nproc", [1, 2, 4, 6, 9])
    def test_matches_reference(
        self, methane_engine, methane_matrices, methane_fock_reference, nproc
    ):
        _s, h, _x, d = methane_matrices
        res = gtfock_build(MDEngine(methane_engine.basis), h, d, nproc, 1e-11)
        assert np.allclose(res.fock, methane_fock_reference, atol=1e-11)

    def test_without_stealing_same_result(
        self, methane_engine, methane_matrices, methane_fock_reference
    ):
        _s, h, _x, d = methane_matrices
        res = gtfock_build(
            MDEngine(methane_engine.basis), h, d, 4, 1e-11, enable_stealing=False
        )
        assert np.allclose(res.fock, methane_fock_reference, atol=1e-11)

    def test_with_reordering(self, methane_mol, methane_engine):
        """Reordered-basis build maps back to the reference Fock."""
        from repro.integrals.oneelec import core_hamiltonian, overlap
        from repro.scf.guess import core_guess
        from repro.scf.orthogonalization import orthogonalizer

        rb = reorder_basis(methane_engine.basis, cell_size=2.0)
        h = core_hamiltonian(rb)
        s = overlap(rb)
        x = orthogonalizer(s)
        d = core_guess(h, x, methane_mol.nelectrons // 2)
        eng = MDEngine(rb)
        res = gtfock_build(eng, h, d, 4, 1e-11)
        assert np.allclose(res.fock, fock_matrix(eng, h, d, 1e-11), atol=1e-11)

    def test_synthetic_engine_larger_grid(self, synthetic_engine, synthetic_density):
        """Distributed == sequential on the 19-shell synthetic system."""
        eng = synthetic_engine
        h = np.zeros((eng.basis.nbf,) * 2)
        ref = fock_matrix(eng, h, synthetic_density, 1e-12)
        for nproc in (4, 9, 16):
            res = gtfock_build(
                SyntheticERIEngine(eng.basis), h, synthetic_density, nproc, 1e-12
            )
            assert np.allclose(res.fock, ref, atol=1e-10)

    def test_stealing_occurs_with_imbalance(self, synthetic_engine, synthetic_density):
        eng = SyntheticERIEngine(synthetic_engine.basis)
        h = np.zeros((eng.basis.nbf,) * 2)
        res = gtfock_build(eng, h, synthetic_density, 9, 1e-12)
        # synthetic alkane tasks are uneven enough that someone steals
        assert res.outcome.steals

    def test_comm_accounted(self, methane_engine, methane_matrices):
        _s, h, _x, d = methane_matrices
        res = gtfock_build(MDEngine(methane_engine.basis), h, d, 4, 1e-11)
        assert res.stats.calls_per_process() > 0
        assert res.stats.volume_mb_per_process() > 0

    def test_prefetch_miss_detection(self, methane_engine, methane_matrices):
        """Sabotaged footprints must be caught, proving reads are checked."""
        import repro.fock.gtfock as g

        _s, h, _x, d = methane_matrices
        original = g.block_footprint

        def sabotaged(screen, block):
            fp = original(screen, block)
            fp.phi_rows[:] = False  # drop the cross region
            fp.phi_cols[:] = False
            return fp

        g.block_footprint = sabotaged
        try:
            with pytest.raises(PrefetchMiss):
                gtfock_build(MDEngine(methane_engine.basis), h, d, 4, 1e-11)
        finally:
            g.block_footprint = original

    def test_shape_validation(self, methane_engine):
        with pytest.raises(ValueError):
            gtfock_build(
                MDEngine(methane_engine.basis),
                np.zeros((2, 2)),
                np.zeros((2, 2)),
                2,
            )


class TestNWChemNumeric:
    @pytest.mark.parametrize("nproc", [1, 3, 8])
    def test_matches_reference(
        self, methane_engine, methane_matrices, methane_fock_reference, nproc
    ):
        _s, h, _x, d = methane_matrices
        res = nwchem_build(MDEngine(methane_engine.basis), h, d, nproc, 1e-11)
        assert np.allclose(res.fock, methane_fock_reference, atol=1e-11)

    def test_chunk_size_invariant(self, methane_engine, methane_matrices,
                                  methane_fock_reference):
        _s, h, _x, d = methane_matrices
        for chunk in (1, 2, 5):
            res = nwchem_build(
                MDEngine(methane_engine.basis), h, d, 2, 1e-11, chunk=chunk
            )
            assert np.allclose(res.fock, methane_fock_reference, atol=1e-11)

    def test_counter_traffic_scales_with_tasks(self, methane_engine, methane_matrices):
        _s, h, _x, d = methane_matrices
        res1 = nwchem_build(MDEngine(methane_engine.basis), h, d, 2, 1e-11, chunk=5)
        res2 = nwchem_build(MDEngine(methane_engine.basis), h, d, 2, 1e-11, chunk=1)
        assert res2.outcome.counter_accesses > res1.outcome.counter_accesses

    def test_reordered_basis_rejected(self, methane_engine, methane_matrices):
        """Block-row-by-atom distribution requires atom order."""
        rb = reorder_basis(methane_engine.basis, cell_size=1.0)
        if np.all(np.diff(rb.atom_of_shell) >= 0):
            pytest.skip("reordering happened to preserve atom order")
        _s, h, _x, d = methane_matrices
        with pytest.raises(ValueError):
            nwchem_build(MDEngine(rb), h, d, 2, 1e-11)

    def test_gtfock_and_nwchem_agree(self, methane_engine, methane_matrices):
        _s, h, _x, d = methane_matrices
        a = gtfock_build(MDEngine(methane_engine.basis), h, d, 4, 1e-11)
        b = nwchem_build(MDEngine(methane_engine.basis), h, d, 4, 1e-11)
        assert np.allclose(a.fock, b.fock, atol=1e-11)
