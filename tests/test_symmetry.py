"""Tests for the parity SymmetryCheck and unique-quartet predicate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fock.symmetry import (
    canonical_instance,
    is_canonical_instance,
    orbit_tuples,
    symmetry_check,
    task_computes,
)


class TestSymmetryCheck:
    @given(st.integers(0, 200), st.integers(0, 200))
    @settings(max_examples=100, deadline=None)
    def test_tournament(self, m, n):
        """Exactly one orientation passes for m != n; diagonal passes."""
        if m == n:
            assert symmetry_check(m, n)
        else:
            assert symmetry_check(m, n) != symmetry_check(n, m)

    def test_parity_structure(self):
        assert symmetry_check(4, 2)  # larger first, even sum
        assert not symmetry_check(2, 4)
        assert symmetry_check(2, 5)  # smaller first, odd sum
        assert not symmetry_check(5, 2)


class TestOrbit:
    def test_generic_orbit_size(self):
        assert len(orbit_tuples(0, 1, 2, 3)) == 8

    def test_bra_diagonal_orbit(self):
        assert len(orbit_tuples(1, 1, 2, 3)) == 4

    def test_fully_diagonal(self):
        assert len(orbit_tuples(2, 2, 2, 2)) == 1

    @given(st.tuples(*[st.integers(0, 6)] * 4))
    @settings(max_examples=100, deadline=None)
    def test_canonical_is_in_orbit(self, t):
        m, p, n, q = t
        rep = canonical_instance(m, p, n, q)
        assert rep in orbit_tuples(m, p, n, q)

    @given(st.tuples(*[st.integers(0, 6)] * 4))
    @settings(max_examples=100, deadline=None)
    def test_canonical_invariant_over_orbit(self, t):
        m, p, n, q = t
        rep = canonical_instance(m, p, n, q)
        for (a, b, c, d) in orbit_tuples(m, p, n, q):
            assert canonical_instance(a, b, c, d) == rep

    def test_is_canonical_unique_in_orbit(self):
        orbit = orbit_tuples(0, 2, 1, 3)
        hits = [t for t in orbit if is_canonical_instance(*t)]
        assert len(hits) == 1


class TestTaskComputesCoverage:
    """The heart of the algorithm: every orbit computed exactly once."""

    @pytest.mark.parametrize("nshells", [3, 5, 6, 9])
    def test_exact_once_coverage(self, nshells):
        from collections import Counter

        counts = Counter()
        for m in range(nshells):
            for n in range(nshells):
                for p in range(nshells):
                    for q in range(nshells):
                        if task_computes(m, n, p, q):
                            counts[canonical_instance(m, p, n, q)] += 1
        # reference: all orbits
        orbits = {
            canonical_instance(a, b, c, d)
            for a in range(nshells)
            for b in range(nshells)
            for c in range(nshells)
            for d in range(nshells)
        }
        assert set(counts) == orbits
        assert all(v == 1 for v in counts.values())

    def test_task_gate(self):
        """Tasks failing SymmetryCheck(M, N) compute nothing."""
        m, n = 2, 4  # symmetry_check(2, 4) is False
        assert not symmetry_check(m, n)
        for p in range(6):
            for q in range(6):
                assert not task_computes(m, n, p, q)

    def test_diagonal_task_tiebreak(self):
        """Diagonal tasks keep only P <= Q among passing loop points."""
        m = 3
        passing = [
            (p, q)
            for p in range(8)
            for q in range(8)
            if task_computes(m, m, p, q)
        ]
        assert all(p <= q for p, q in passing)
        assert passing  # and there are some
