"""Regression observatory: robust baselines and the PASS/WARN/FAIL grader."""

import json

import pytest

from repro.obs.regress import (
    DEFAULT_SPECS,
    CheckReport,
    MetricSpec,
    extract,
    grade,
    grade_series,
    history_text,
    load_history,
    robust_baseline,
    series_for,
)
from repro.obs.validate import FAIL, PASS, WARN


def _spec(**kw):
    base = dict(benchmark="bench", key="t", direction="lower",
                kind="relative", warn=1.3, fail=2.0)
    base.update(kw)
    return MetricSpec(**base)


def _entries(values, key="t"):
    return [
        {"benchmark": "bench", "timestamp": f"2026-01-{i+1:02d}", key: v}
        for i, v in enumerate(values)
    ]


class TestExtraction:
    def test_dotted_path(self):
        entry = {"a": {"b": {"c": 2.5}}}
        assert extract(entry, "a.b.c") == 2.5

    def test_wildcard_averages_mapping(self):
        entry = {"molecules": {"x": {"ratio": 1.0}, "y": {"ratio": 3.0}}}
        assert extract(entry, "molecules.*.ratio") == 2.0

    def test_missing_returns_none(self):
        assert extract({"a": 1}, "b") is None
        assert extract({"a": {"b": 1}}, "a.c") is None

    def test_bool_coerces_to_float(self):
        assert extract({"ok": True}, "ok") == 1.0
        assert extract({"ok": False}, "ok") == 0.0


class TestRobustBaseline:
    def test_median_and_mad(self):
        med, sigma = robust_baseline([1.0, 1.0, 1.0, 100.0])
        assert med == 1.0
        assert sigma == 0.0  # MAD ignores the single outlier

    def test_single_point(self):
        med, sigma = robust_baseline([2.0])
        assert med == 2.0
        assert sigma == 0.0

    def test_noisy_series_has_positive_sigma(self):
        _, sigma = robust_baseline([1.0, 1.1, 0.9, 1.05, 0.95])
        assert sigma > 0


class TestGradeSeries:
    def test_flat_history_passes(self):
        f = grade_series(_spec(), [1.0, 1.01, 0.99, 1.0, 1.02], ["t"] * 5)
        assert f.status == PASS

    def test_flat_noisy_history_passes(self):
        values = [1.0, 1.3, 0.8, 1.1, 0.9, 1.25, 1.28]
        f = grade_series(_spec(), values, ["t"] * len(values))
        assert f.status == PASS

    def test_spike_fails(self):
        f = grade_series(_spec(), [1.0, 1.0, 1.01, 0.99, 2.5], ["t"] * 5)
        assert f.status == FAIL
        assert f.ratio >= 2.0

    def test_drift_warns(self):
        f = grade_series(_spec(), [1.0, 1.0, 1.0, 1.0, 1.45], ["t"] * 5)
        assert f.status == WARN

    def test_higher_is_better_direction(self):
        spec = _spec(direction="higher")
        f = grade_series(spec, [5.0, 5.0, 5.0, 2.0], ["t"] * 4)
        assert f.status == FAIL
        f = grade_series(spec, [5.0, 5.0, 5.0, 5.1], ["t"] * 4)
        assert f.status == PASS

    def test_no_baseline_yet_passes(self):
        f = grade_series(_spec(), [1.0], ["t"])
        assert f.status == PASS
        assert "no baseline" in f.note

    def test_absolute_bounds(self):
        spec = _spec(kind="absolute", warn=1e-11, fail=1e-10)
        assert grade_series(spec, [5e-12], ["t"]).status == PASS
        assert grade_series(spec, [5e-11], ["t"]).status == WARN
        assert grade_series(spec, [5e-9], ["t"]).status == FAIL

    def test_absolute_higher_direction(self):
        spec = _spec(kind="absolute", direction="higher", warn=0.9, fail=0.5)
        assert grade_series(spec, [0.95], ["t"]).status == PASS
        assert grade_series(spec, [0.7], ["t"]).status == WARN
        assert grade_series(spec, [0.3], ["t"]).status == FAIL

    def test_flag_kind(self):
        spec = _spec(kind="flag")
        assert grade_series(spec, [1.0], ["t"]).status == PASS
        assert grade_series(spec, [0.0], ["t"]).status == FAIL


def _history_file(tmp_path, values, name="BENCH_x.json"):
    path = tmp_path / name
    path.write_text(json.dumps({"description": "t", "history": _entries(values)}))
    return path


class TestGrade:
    def test_exit_codes(self, tmp_path):
        specs = (_spec(),)
        ok = grade([_history_file(tmp_path, [1.0, 1.0, 1.0])], specs=specs)
        assert ok.status == PASS
        assert ok.exit_code == 0
        bad = grade(
            [_history_file(tmp_path, [1.0, 1.0, 1.0, 9.0])], specs=specs
        )
        assert bad.status == FAIL
        assert bad.exit_code == 1

    def test_warn_does_not_fail_the_gate(self):
        report = CheckReport(findings=[
            grade_series(_spec(), [1.0, 1.0, 1.0, 1.45], ["t"] * 4)
        ])
        assert report.status == WARN
        assert report.exit_code == 0

    def test_quick_filters_specs(self, tmp_path):
        specs = (_spec(quick=False), _spec(key="u", quick=True))
        path = _history_file(tmp_path, [1.0, 1.0])
        report = grade([path], specs=specs, quick=True)
        graded_keys = {f.spec.key for f in report.findings}
        assert "t" not in graded_keys

    def test_missing_benchmark_is_skipped_not_failed(self):
        report = grade([], specs=(_spec(),))
        assert report.findings == []
        assert report.skipped
        assert report.exit_code == 0

    def test_window_limits_baseline(self, tmp_path):
        # old regression ages out of the window: the recent points rule
        values = [9.0] + [1.0] * 10
        report = grade(
            [_history_file(tmp_path, values)], specs=(_spec(),), window=4
        )
        assert report.findings[0].status == PASS

    def test_runs_join_the_gate(self, tmp_path):
        from repro.obs.manifest import RunLedger

        ledger = RunLedger(tmp_path / "runs" / "bad", command="scf")
        ledger.add_summary(converged=False)
        ledger.close(1)
        report = grade([], specs=(), runs=tmp_path / "runs")
        assert report.status == FAIL
        labels = {f.spec.label for f in report.findings}
        assert "run:bad.exit_code" in labels
        assert "run:bad.converged" in labels

    def test_text_renders_counts(self, tmp_path):
        report = grade([_history_file(tmp_path, [1.0, 1.0])], specs=(_spec(),))
        text = report.text()
        assert "bench.t" in text
        assert "pass" in text.lower()


class TestHistoryIO:
    def test_load_history(self, tmp_path):
        doc = {"description": "x", "history": _entries([1.0, 2.0])}
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps(doc))
        entries = load_history(path)
        assert [e["t"] for e in entries] == [1.0, 2.0]

    def test_load_history_missing_file(self, tmp_path):
        assert load_history(tmp_path / "absent.json") == []

    def test_series_for_filters_by_benchmark(self):
        entries = _entries([1.0, 2.0]) + [{"benchmark": "other", "t": 9.0}]
        values, stamps = series_for(entries, _spec())
        assert values == [1.0, 2.0]
        assert len(stamps) == 2

    def test_history_text(self, tmp_path):
        path = _history_file(tmp_path, [1.0, 1.1, 1.2])
        text = history_text([path], specs=(_spec(),))
        assert "bench.t" in text
        assert "1.2" in text


class TestDefaultSpecs:
    def test_default_specs_cover_committed_benchmarks(self):
        families = {s.benchmark for s in DEFAULT_SPECS}
        assert {
            "eri_kernels", "fock_table3", "fock_chaos",
            "scf_guard", "phase_profiler",
        } <= families

    def test_labels_are_unique(self):
        labels = [s.label for s in DEFAULT_SPECS]
        assert len(labels) == len(set(labels))


class TestGradeRuns:
    """Ledger-summary gates: critpath, warm-store recompute, J/K balance."""

    def _run_dir(self, tmp_path, name, **summary):
        from repro.obs.manifest import RunLedger

        ledger = RunLedger(
            tmp_path / name, command="scf",
            config={"molecule": "water"}, molecule="water",
        )
        ledger.add_summary(**summary)
        ledger.close(0)
        return ledger

    def _findings(self, tmp_path):
        from repro.obs.regress import _grade_runs

        return {f.spec.key: f for f in _grade_runs(tmp_path)}

    def test_critpath_decomposition_gate(self, tmp_path):
        self._run_dir(
            tmp_path, "good",
            critpath={"decomposition_ok": True, "max_residual": 0.0},
        )
        by_key = self._findings(tmp_path)
        assert by_key["critpath_decomposition_ok"].status == PASS

    def test_critpath_decomposition_failure_names_residual(self, tmp_path):
        self._run_dir(
            tmp_path, "bad",
            critpath={"decomposition_ok": False, "max_residual": 3e-4},
        )
        f = self._findings(tmp_path)["critpath_decomposition_ok"]
        assert f.status == FAIL
        assert "3e-04" in f.note or "0.0003" in f.note

    def test_warm_store_with_recomputes_fails(self, tmp_path):
        self._run_dir(
            tmp_path, "warm",
            eri_store={"computed": 12, "warm_start": True},
        )
        f = self._findings(tmp_path)["store_zero_recompute"]
        assert f.status == FAIL
        assert "12" in f.note

    def test_warm_store_fully_served_passes(self, tmp_path):
        self._run_dir(
            tmp_path, "warm",
            eri_store={"computed": 0, "from_store": 99, "warm_start": True},
        )
        assert self._findings(tmp_path)["store_zero_recompute"].status == PASS

    def test_cold_store_not_gated(self, tmp_path):
        self._run_dir(
            tmp_path, "cold",
            eri_store={"computed": 500, "warm_start": False},
        )
        assert "store_zero_recompute" not in self._findings(tmp_path)

    def test_jk_worker_balance_grades(self, tmp_path):
        self._run_dir(
            tmp_path, "balanced",
            jk_threads={"workers": 4, "balance": 1.1},
        )
        assert self._findings(tmp_path)["jk_worker_balance"].status == PASS

    def test_jk_worker_imbalance_warns_then_fails(self, tmp_path):
        self._run_dir(
            tmp_path, "skewed", jk_threads={"workers": 4, "balance": 2.0},
        )
        assert self._findings(tmp_path)["jk_worker_balance"].status == WARN
        self._run_dir(
            tmp_path, "broken", jk_threads={"workers": 4, "balance": 5.0},
        )
        from repro.obs.regress import _grade_runs

        balances = sorted(
            f.latest for f in _grade_runs(tmp_path)
            if f.spec.key == "jk_worker_balance"
        )
        assert balances == [2.0, 5.0]
        worst = [
            f for f in _grade_runs(tmp_path)
            if f.spec.key == "jk_worker_balance" and f.latest == 5.0
        ][0]
        assert worst.status == FAIL

    def test_serial_jk_not_gated(self, tmp_path):
        self._run_dir(
            tmp_path, "serial", jk_threads={"workers": 0, "balance": None},
        )
        assert "jk_worker_balance" not in self._findings(tmp_path)

    def test_critpath_family_in_default_specs(self):
        families = {s.benchmark for s in DEFAULT_SPECS}
        assert "fock_critpath" in families
