"""Tests for shell-pair data caching, the batched ERI kernel, and the
bounded LRU canonical-quartet cache."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem.basis.basisset import BasisSet
from repro.chem.basis.shells import Shell
from repro.chem.builders import water
from repro.integrals.engine import (
    MDEngine,
    OSEngine,
    QuartetCache,
    SyntheticERIEngine,
    canonical_quartet,
)
from repro.integrals.eri_md import eri_shell_quartet
from repro.integrals.eri_os import eri_shell_quartet_os
from repro.integrals.pairdata import (
    ShellPairData,
    build_pair_data,
    eri_shell_quartet_batched,
)
from repro.obs import MetricsRegistry, get_metrics, set_metrics


def rand_shell(rng, l, pure=False):
    n = int(rng.integers(1, 4))
    return Shell(
        l=l,
        exps=rng.uniform(0.2, 3.0, n),
        coefs=rng.uniform(0.3, 1.0, n),
        center=rng.uniform(-1.5, 1.5, 3),
        atom_index=0,
        pure=pure,
    )


class TestBatchedKernel:
    """The batched path must agree with the seed per-primitive path and
    with the independent Obara-Saika formulation."""

    @given(st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_batched_matches_seed_and_os(self, seed):
        rng = np.random.default_rng(seed)
        ls = rng.integers(0, 3, 4)  # random s/p/d quartets
        shs = [rand_shell(rng, int(l)) for l in ls]
        batched = eri_shell_quartet_batched(*shs)
        reference = eri_shell_quartet(*shs)
        os_ = eri_shell_quartet_os(*shs)
        assert np.allclose(batched, reference, atol=1e-10, rtol=1e-10)
        assert np.allclose(batched, os_, atol=1e-10, rtol=1e-10)

    def test_pure_d_shells(self):
        rng = np.random.default_rng(3)
        shs = [
            rand_shell(rng, 2, pure=True),
            rand_shell(rng, 1),
            rand_shell(rng, 2, pure=True),
            rand_shell(rng, 0),
        ]
        batched = eri_shell_quartet_batched(*shs)
        assert batched.shape == (5, 3, 5, 1)
        assert np.allclose(batched, eri_shell_quartet(*shs), atol=1e-12)

    def test_precomputed_pair_data_gives_same_block(self):
        rng = np.random.default_rng(9)
        shs = [rand_shell(rng, l) for l in (1, 0, 2, 1)]
        bra = build_pair_data(shs[0], shs[1])
        ket = build_pair_data(shs[2], shs[3])
        with_pairs = eri_shell_quartet_batched(*shs, bra=bra, ket=ket)
        without = eri_shell_quartet_batched(*shs)
        assert np.array_equal(with_pairs, without)


class TestShellPairData:
    def test_each_pair_built_once(self, water_basis):
        cache = ShellPairData(water_basis)
        a = cache.get(1, 0)
        b = cache.get(1, 0)
        assert a is b
        assert cache.pairs_built == 1
        cache.get(0, 1)  # opposite orientation is a distinct record
        assert cache.pairs_built == 2
        assert len(cache) == 2
        assert cache.nbytes > 0

    def test_md_engine_reuses_pair_cache(self, water_basis):
        eng = MDEngine(water_basis)
        ns = water_basis.nshells
        for m in range(ns):
            for n in range(m + 1):
                eng.quartet(m, n, m, n)
        # ns*(ns+1)/2 distinct ordered pairs, each expanded exactly once
        assert eng.pair_cache.pairs_built == ns * (ns + 1) // 2

    def test_unbatched_engine_matches_batched(self, water_basis):
        batched = MDEngine(water_basis)
        seed = MDEngine(water_basis, batched=False)
        assert seed.pair_cache is None
        rng = np.random.default_rng(4)
        for _ in range(8):
            m, n, p, q = (int(i) for i in rng.integers(0, water_basis.nshells, 4))
            assert np.allclose(
                batched.quartet(m, n, p, q), seed.quartet(m, n, p, q), atol=1e-12
            )


class TestCanonicalQuartet:
    @given(st.tuples(*(st.integers(0, 6),) * 4))
    @settings(max_examples=100, deadline=None)
    def test_key_is_canonical_and_perm_restores(self, quartet):
        m, n, p, q = quartet
        key, perm = canonical_quartet(m, n, p, q)
        assert key[0] >= key[1] and key[2] >= key[3]
        assert (key[0], key[1]) >= (key[2], key[3])
        assert tuple(key[i] for i in perm) == quartet
        # all 8 orbit members share one canonical key
        for image in ((n, m, p, q), (m, n, q, p), (p, q, m, n), (q, p, n, m)):
            assert canonical_quartet(*image)[0] == key

    def test_served_transposes_match_direct_computation(self, water_basis):
        cached = MDEngine(water_basis, cache_mb=8.0)
        direct = MDEngine(water_basis)
        m, n, p, q = 4, 1, 3, 0
        cached.quartet(*canonical_quartet(m, n, p, q)[0])  # prime the cache
        for image in (
            (m, n, p, q), (n, m, p, q), (m, n, q, p), (n, m, q, p),
            (p, q, m, n), (q, p, m, n), (p, q, n, m), (q, p, n, m),
        ):
            served = cached.quartet(*image)
            assert np.allclose(served, direct.quartet(*image), atol=1e-13)
        assert cached.quartets_computed == 1
        assert cached.quartets_served_from_cache == 8


class TestQuartetCacheLRU:
    def test_byte_bound_and_eviction_order(self):
        block = np.zeros((4, 4, 4, 4))  # 2048 bytes
        cache = QuartetCache(max_bytes=3 * block.nbytes)
        for i in range(3):
            cache.put((i, 0, 0, 0), block.copy())
        assert len(cache) == 3
        cache.get((0, 0, 0, 0))  # refresh entry 0: entry 1 becomes LRU
        cache.put((3, 0, 0, 0), block.copy())
        assert cache.get((1, 0, 0, 0)) is None  # evicted
        assert cache.get((0, 0, 0, 0)) is not None
        assert cache.evictions == 1
        assert cache.bytes_held <= cache.max_bytes

    def test_oversized_block_is_not_cached(self):
        cache = QuartetCache(max_bytes=100)
        cache.put((0, 0, 0, 0), np.zeros(1000))
        assert len(cache) == 0
        assert cache.bytes_held == 0

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            QuartetCache(max_bytes=0)

    def test_stats_and_clear(self):
        cache = QuartetCache(max_bytes=10_000)
        cache.put((0, 0, 0, 0), np.zeros(4))
        cache.get((0, 0, 0, 0))
        cache.get((1, 1, 1, 1))
        st_ = cache.stats()
        assert st_["hits"] == 1 and st_["misses"] == 1
        assert st_["hit_rate"] == 0.5
        assert st_["bytes_held"] == 32
        cache.clear()
        assert len(cache) == 0 and cache.bytes_held == 0


class TestCacheMetrics:
    def test_obs_counters_track_cache_traffic(self, water_basis):
        previous = set_metrics(MetricsRegistry())
        try:
            eng = MDEngine(water_basis, cache_mb=8.0)
            eng.quartet(2, 1, 1, 0)
            eng.quartet(2, 1, 1, 0)
            eng.quartet(1, 2, 0, 1)  # permutation image: same canonical block
            reg = get_metrics()
            assert reg.counter("repro_eri_cache_misses_total").value() == 1
            assert reg.counter("repro_eri_cache_hits_total").value() == 2
            assert (
                reg.gauge("repro_eri_cache_bytes").value()
                == eng.quartet_cache.bytes_held
            )
        finally:
            set_metrics(previous)


class TestEnginesThroughCacheLayer:
    """OSEngine / SyntheticERIEngine pass through the cache layer unchanged,
    and the computed/served split keeps call-count benchmarks exact."""

    def test_counters_without_cache_match_seed_semantics(self, water_basis):
        eng = OSEngine(water_basis)
        eng.quartet(0, 0, 0, 0)
        eng.quartet(0, 1, 0, 1)
        assert eng.quartets_computed == 2
        assert eng.quartets_served_from_cache == 0

    @pytest.mark.parametrize("factory", [
        OSEngine,
        lambda b: SyntheticERIEngine(b),
    ])
    def test_cached_engine_serves_identical_blocks(self, water_basis, factory):
        plain = factory(water_basis)
        cached = factory(water_basis)
        cached.enable_quartet_cache(8.0)
        rng = np.random.default_rng(6)
        quartets = [tuple(int(i) for i in rng.integers(0, water_basis.nshells, 4))
                    for _ in range(6)]
        for quartet in quartets + quartets:  # second sweep hits the cache
            assert np.allclose(
                cached.quartet(*quartet), plain.quartet(*quartet), atol=1e-13
            )
        assert cached.quartets_served_from_cache >= len(quartets)
        assert (
            cached.quartets_computed + cached.quartets_served_from_cache
            == 2 * len(quartets)
        )


class TestShellSlicesProperty:
    def test_matches_shell_slice_and_is_cached(self):
        basis = BasisSet.build(water(), "6-31g")
        slices = basis.shell_slices
        assert slices is basis.shell_slices  # computed once
        assert list(slices) == [
            basis.shell_slice(i) for i in range(basis.nshells)
        ]

    def test_permuted_basis_gets_fresh_slices(self, water_basis):
        order = np.arange(water_basis.nshells)[::-1]
        permuted = water_basis.permuted(order)
        assert list(permuted.shell_slices) == [
            permuted.shell_slice(i) for i in range(permuted.nshells)
        ]
