"""Tests for repro.chem.molecule."""

import math

import numpy as np
import pytest

from repro.chem.builders import water
from repro.chem.elements import BOHR_PER_ANGSTROM
from repro.chem.molecule import Molecule


class TestConstruction:
    def test_from_arrays_shapes(self):
        m = Molecule.from_arrays(["H", "H"], np.array([[0, 0, 0], [0, 0, 1.0]]))
        assert m.natoms == 2
        assert m.coords.shape == (2, 3)

    def test_from_arrays_converts_to_bohr(self):
        m = Molecule.from_arrays(["H", "H"], np.array([[0, 0, 0], [0, 0, 1.0]]))
        assert abs(m.coords[1, 2] - BOHR_PER_ANGSTROM) < 1e-12

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            Molecule.from_arrays(["H"], np.zeros((2, 3)))

    def test_unknown_element_raises(self):
        with pytest.raises(KeyError):
            Molecule.from_arrays(["Zz"], np.zeros((1, 3)))


class TestProperties:
    def test_nelectrons_neutral(self):
        assert water().nelectrons == 10

    def test_nelectrons_charged(self):
        m = water()
        m.charge = 1
        assert m.nelectrons == 9

    def test_formula_hill_order(self):
        m = Molecule.from_arrays(
            ["O", "C", "H", "H"], np.array([[0, 0, 0], [2, 0, 0], [4, 0, 0], [6, 0, 0]])
        )
        assert m.formula == "CH2O"

    def test_formula_water(self):
        assert water().formula == "H2O"

    def test_min_distance_single_atom(self):
        m = Molecule.from_arrays(["H"], np.zeros((1, 3)))
        assert m.min_interatomic_distance() == math.inf


class TestNuclearRepulsion:
    def test_two_protons(self):
        # two protons at 1 bohr: E = 1 hartree
        m = Molecule.from_arrays(
            ["H", "H"], np.array([[0, 0, 0], [0, 0, 1.0 / BOHR_PER_ANGSTROM]])
        )
        assert abs(m.nuclear_repulsion() - 1.0) < 1e-10

    def test_scales_with_charge(self):
        d = 1.0 / BOHR_PER_ANGSTROM
        m_hh = Molecule.from_arrays(["H", "H"], np.array([[0, 0, 0], [0, 0, d]]))
        m_he = Molecule.from_arrays(["He", "H"], np.array([[0, 0, 0], [0, 0, d]]))
        assert abs(m_he.nuclear_repulsion() - 2 * m_hh.nuclear_repulsion()) < 1e-10

    def test_coincident_nuclei_raise_at_construction(self):
        with pytest.raises(ValueError, match=r"atoms\[1\].*coincides with atoms\[0\]"):
            Molecule.from_arrays(["H", "H"], np.zeros((2, 3)))

    def test_nearly_coincident_nuclei_raise(self):
        coords = np.array([[0.0, 0.0, 0.0], [1e-8, 0.0, 0.0]])
        with pytest.raises(ValueError, match="coincidence tolerance"):
            Molecule.from_arrays(["O", "H"], coords)

    def test_close_but_distinct_nuclei_allowed(self):
        # 0.02 A is pathological but above the coincidence tolerance
        coords = np.array([[0.0, 0.0, 0.0], [0.02, 0.0, 0.0]])
        m = Molecule.from_arrays(["H", "H"], coords)
        assert m.nuclear_repulsion() > 0

    def test_water_value_positive(self):
        assert water().nuclear_repulsion() > 0


class TestXYZ:
    def test_roundtrip(self):
        m = water()
        m2 = Molecule.from_xyz(m.to_xyz())
        assert m2.symbols == m.symbols
        assert np.allclose(m2.coords, m.coords, atol=1e-6)

    def test_headerless(self):
        text = "O 0 0 0\nH 1 0 0\nH 0 1 0"
        m = Molecule.from_xyz(text)
        assert m.natoms == 3

    def test_comment_becomes_name(self):
        text = "2\nmy dimer\nH 0 0 0\nH 0 0 0.7"
        assert Molecule.from_xyz(text).name == "my dimer"

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Molecule.from_xyz("")

    def test_bad_atom_line_raises(self):
        with pytest.raises(ValueError):
            Molecule.from_xyz("1\nc\nH 0 0")
