"""Tests for the work-stealing and centralized scheduler simulations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fock.centralized import run_centralized
from repro.fock.stealing import run_work_stealing, victim_scan_order
from repro.runtime.faults import FaultPlan
from repro.runtime.machine import LONESTAR
from repro.runtime.network import CommStats


class TestVictimScanOrder:
    def test_excludes_self(self):
        order = victim_scan_order(3, 2, 3)
        assert 3 not in order
        assert sorted(order) == [0, 1, 2, 4, 5]

    def test_own_row_first(self):
        # proc 4 in a 2x3 grid is at (1, 1); row 1 = procs 3,4,5
        order = victim_scan_order(4, 2, 3)
        assert set(order[:2]) == {5, 3}


class TestWorkStealingConservation:
    @given(st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_every_task_executed_once(self, seed):
        rng = np.random.default_rng(seed)
        nproc = int(rng.integers(1, 9))
        prow, pcol = 1, nproc
        queues = [
            [(p, i) for i in range(int(rng.integers(0, 12)))] for p in range(nproc)
        ]
        executed = []
        out = run_work_stealing(
            queues,
            cost_of=lambda t: float(rng.uniform(0.1, 2.0)),
            grid=(prow, pcol),
            on_task=lambda p, t: executed.append(t),
        )
        all_tasks = [t for q in queues for t in q]
        assert sorted(executed) == sorted(all_tasks)
        assert out.executed_tasks.sum() == len(all_tasks)

    def test_stealing_rebalances_skewed_load(self):
        """One loaded process + idle thieves: near-perfect balance."""
        nproc = 4
        queues = [[i for i in range(400)]] + [[] for _ in range(nproc - 1)]
        with_steal = run_work_stealing(
            queues, lambda t: 1.0, (1, nproc), enable_stealing=True
        )
        without = run_work_stealing(
            [list(q) for q in queues], lambda t: 1.0, (1, nproc),
            enable_stealing=False,
        )
        assert with_steal.makespan < 0.5 * without.makespan
        assert without.makespan == pytest.approx(400.0)
        assert with_steal.steals

    def test_balanced_load_no_steals_needed(self):
        queues = [[0] * 10 for _ in range(4)]
        out = run_work_stealing(queues, lambda t: 1.0, (2, 2))
        assert out.makespan == pytest.approx(10.0)
        assert out.load_balance_ratio() == pytest.approx(1.0)

    def test_steal_cost_charged(self):
        charged = []

        def steal_cost(thief, victim):
            charged.append((thief, victim))
            return 0.5

        queues = [[i for i in range(100)], []]
        out = run_work_stealing(
            queues, lambda t: 1.0, (1, 2), steal_cost=steal_cost
        )
        assert charged
        assert out.steals

    def test_in_flight_task_not_stolen(self):
        """A victim mid-task keeps that task."""
        executed_by = {}
        queues = [[("v", 0), ("v", 1)], []]
        # task 0 runs [0, 10); thief arrives at t=0 -> may only steal task 1
        out = run_work_stealing(
            queues,
            lambda t: 10.0,
            (1, 2),
            on_task=lambda p, t: executed_by.setdefault(t, p),
        )
        assert executed_by[("v", 0)] == 0
        assert executed_by[("v", 1)] == 1
        assert out.makespan == pytest.approx(10.0)

    def test_start_clock_offsets_respected(self):
        stats = CommStats(2, LONESTAR)
        stats.clock[1] = 100.0
        out = run_work_stealing(
            [[0], [1]], lambda t: 1.0, (1, 2), stats=stats,
            enable_stealing=False,
        )
        assert out.finish_time[0] == pytest.approx(1.0)
        assert out.finish_time[1] == pytest.approx(101.0)

    def test_grid_mismatch_rejected(self):
        with pytest.raises(ValueError):
            run_work_stealing([[1]], lambda t: 1.0, (2, 2))


class TestStealBoundary:
    """The ``bisect_right`` split when a steal lands exactly on a task
    boundary of the victim's cumulative-cost array."""

    def test_steal_exactly_at_task_boundary(self):
        """Thief arrives exactly when the victim finishes its first task:
        that task is done, the second is in flight, only the third is
        stealable."""
        executed_by = {}
        queues = [[("v", 0), ("v", 1), ("v", 2)], [("t", 0)]]
        out = run_work_stealing(
            queues,
            lambda t: 10.0,
            (1, 2),
            on_task=lambda p, t: executed_by.setdefault(t, p),
            min_steal=1,
        )
        assert executed_by[("v", 0)] == 0
        assert executed_by[("v", 1)] == 0  # in flight at t=10: not stealable
        assert executed_by[("v", 2)] == 1  # the one stealable task
        assert len(out.steals) == 1
        assert out.steals[0].time == pytest.approx(10.0)
        assert out.makespan == pytest.approx(20.0)

    def test_queue_empties_exactly_at_steal_time(self):
        """Thief arrives exactly when the victim's queue drains: nothing
        is stealable and the scan must come back empty, not split a
        phantom task."""
        executed_by = {}
        queues = [[("v", 0), ("v", 1)], [("t", 0)]]

        def cost_of(task):
            return 20.0 if task[0] == "t" else 10.0

        out = run_work_stealing(
            queues,
            cost_of,
            (1, 2),
            on_task=lambda p, t: executed_by.setdefault(t, p),
        )
        assert not out.steals
        assert executed_by[("v", 0)] == 0
        assert executed_by[("v", 1)] == 0
        assert out.makespan == pytest.approx(20.0)

    def test_boundary_shifts_under_straggler_fault(self):
        """Same arrival instant, but a straggler victim has only finished
        part of its first task -- the split must use the *scaled*
        cumulative costs, freeing the later tasks for the thief."""
        executed_by = {}
        queues = [[("v", 0), ("v", 1), ("v", 2)], [("t", 0)]]
        plan = FaultPlan(seed=0, slowdown={0: 2.0})
        out = run_work_stealing(
            queues,
            lambda t: 10.0,
            (1, 2),
            on_task=lambda p, t: executed_by.setdefault(t, p),
            faults=plan.activate(2),
        )
        # victim runs at half speed: at t=10 task ("v",0) is still mid-
        # flight, so both later tasks are stealable (vs one in the
        # healthy case); with steal_fraction=0.5 the thief takes one
        assert executed_by[("v", 0)] == 0
        assert executed_by[("v", 1)] == 0
        assert executed_by[("v", 2)] == 1
        assert len(out.steals) == 1
        assert out.steals[0].ntasks == 1
        # the straggler's remaining work dominates the makespan
        assert out.makespan == pytest.approx(40.0)

    def test_boundary_exact_with_faults_attached_but_quiet(self):
        """A fault state with no active faults must not perturb the
        boundary arithmetic (same split as the fault-free run)."""
        executed_by = {}
        queues = [[("v", 0), ("v", 1), ("v", 2)], [("t", 0)]]
        out = run_work_stealing(
            queues,
            lambda t: 10.0,
            (1, 2),
            on_task=lambda p, t: executed_by.setdefault(t, p),
            faults=FaultPlan(seed=3).activate(2),
        )
        assert executed_by[("v", 2)] == 1
        assert executed_by[("v", 1)] == 0
        assert out.makespan == pytest.approx(20.0)


class TestCentralized:
    def test_all_tasks_executed_once(self):
        stats = CommStats(3, LONESTAR)
        seen = []
        out = run_centralized(
            list(range(50)), 3, stats, lambda t: 0.01,
            on_task=lambda p, t: seen.append(t),
        )
        assert sorted(seen) == list(range(50))
        assert out.executed_tasks.sum() == 50
        assert out.counter_accesses == 50 + 3  # one failed pull per process

    def test_single_process(self):
        stats = CommStats(1, LONESTAR)
        out = run_centralized(list(range(10)), 1, stats, lambda t: 1.0)
        assert out.executed_cost[0] == pytest.approx(10.0)

    def test_load_spread_roughly_even(self):
        stats = CommStats(4, LONESTAR)
        out = run_centralized(list(range(400)), 4, stats, lambda t: 0.001)
        assert out.executed_tasks.min() >= 80

    def test_comm_hook_called_per_task(self):
        stats = CommStats(2, LONESTAR)
        hits = []
        run_centralized(
            list(range(7)), 2, stats, lambda t: 0.0,
            comm_of=lambda p, t: hits.append(t),
        )
        assert sorted(hits) == list(range(7))

    def test_counter_serialization_dominates_tiny_tasks(self):
        """With zero-cost tasks, the makespan is the serialized counter."""
        stats = CommStats(8, LONESTAR)
        ntasks = 200
        out = run_centralized(list(range(ntasks)), 8, stats, lambda t: 0.0)
        min_serial = ntasks * LONESTAR.queue_service
        assert out.makespan >= min_serial * 0.9
