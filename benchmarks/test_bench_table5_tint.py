"""Table V: measured time per ERI for the two real integral engines."""

from repro.bench.experiments import table5_t_int


def test_bench_table5(benchmark, emit):
    report = benchmark.pedantic(
        table5_t_int, kwargs={"max_shell_pairs": 30}, rounds=1, iterations=1
    )
    emit(report)
    for mol, vals in report.data.items():
        assert vals["MD"] > 0 and vals["OS"] > 0
        # the two engines are within two orders of magnitude of each other
        ratio = vals["MD"] / vals["OS"]
        assert 0.01 < ratio < 100
