"""Table III: Fock construction time, GTFock vs NWChem, over core counts."""

from repro.bench.experiments import table3_times


def test_bench_table3(benchmark, emit):
    report = benchmark.pedantic(table3_times, rounds=1, iterations=1)
    emit(report)
    for mol, algs in report.data.items():
        cores = sorted(algs["gtfock"])
        # shape target: NWChem faster at the smallest core count ...
        assert algs["nwchem"][cores[0]] < algs["gtfock"][cores[0]]
        # ... and GTFock competitive-or-better at the largest
        ratio = algs["gtfock"][cores[-1]] / algs["nwchem"][cores[-1]]
        assert ratio < 1.4, f"{mol}: GTFock/NWChem at max cores = {ratio:.2f}"
        # both scale: max-core time well below min-core time
        for alg in ("gtfock", "nwchem"):
            assert algs[alg][cores[-1]] < algs[alg][cores[0]] / 50
