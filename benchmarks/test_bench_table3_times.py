"""Table III: Fock construction time, GTFock vs NWChem, over core counts.

Each full run appends one datapoint to ``BENCH_fock.json`` at the repo
root -- the Fock-simulation perf trajectory future PRs extend (wall time
of the sweep plus, per molecule, the simulated max-core Fock times and
the GTFock/NWChem ratio).  Run as a pytest benchmark or as a script;
``--quick`` skips the history file.
"""

from __future__ import annotations

import pathlib
import sys
import time

from repro.bench.experiments import table3_times
from repro.bench.record import append_history as _append_history

HISTORY_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_fock.json"


def run_table3_bench() -> tuple[dict, object]:
    """One measurement: the Table III sweep, timed, summarized."""
    t0 = time.perf_counter()
    report = table3_times()
    wall = time.perf_counter() - t0
    entry: dict = {
        "benchmark": "fock_table3",
        "wall_s": round(wall, 3),
        "molecules": {},
    }
    for mol, algs in report.data.items():
        cores = sorted(algs["gtfock"])
        hi = cores[-1]
        entry["molecules"][mol] = {
            "max_cores": hi,
            "t_gtfock_s": algs["gtfock"][hi],
            "t_nwchem_s": algs["nwchem"][hi],
            "ratio_gtfock_over_nwchem": round(
                algs["gtfock"][hi] / algs["nwchem"][hi], 4
            ),
        }
    return entry, report


def append_history(entry: dict, path: pathlib.Path = HISTORY_PATH) -> None:
    """Append one datapoint to the BENCH_fock.json trajectory."""
    _append_history(
        entry, path,
        description="Fock-simulation perf trajectory "
        "(see docs/PERFORMANCE.md)",
    )


def check_report(report) -> None:
    """The Table III shape targets (unchanged from the seed benchmark)."""
    for mol, algs in report.data.items():
        cores = sorted(algs["gtfock"])
        # shape target: NWChem faster at the smallest core count ...
        assert algs["nwchem"][cores[0]] < algs["gtfock"][cores[0]]
        # ... and GTFock competitive-or-better at the largest
        ratio = algs["gtfock"][cores[-1]] / algs["nwchem"][cores[-1]]
        assert ratio < 1.4, f"{mol}: GTFock/NWChem at max cores = {ratio:.2f}"
        # both scale: max-core time well below min-core time
        for alg in ("gtfock", "nwchem"):
            assert algs[alg][cores[-1]] < algs[alg][cores[0]] / 50


def test_bench_table3(benchmark, emit):
    entry, report = benchmark.pedantic(run_table3_bench, rounds=1, iterations=1)
    emit(report)
    check_report(report)
    append_history(entry)


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    entry, report = run_table3_bench()
    print(report.text)
    check_report(report)
    if not quick:
        append_history(entry)
        print(f"appended datapoint to {HISTORY_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
