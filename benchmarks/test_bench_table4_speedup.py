"""Table IV: speedup relative to the fastest 12-core time."""

from repro.bench.experiments import table4_speedup
from repro.bench.harness import CORE_COUNTS


def test_bench_table4(benchmark, emit):
    report = benchmark.pedantic(table4_speedup, rounds=1, iterations=1)
    emit(report)
    top = CORE_COUNTS[-1]
    for mol, sp in report.data.items():
        # paper: GTFock has better speedup at 3888 cores on every molecule
        assert sp["gtfock"][top] > sp["nwchem"][top], mol
        # speedups are substantial (hundreds at thousands of cores)
        assert sp["gtfock"][top] > 0.25 * (top / CORE_COUNTS[0])
