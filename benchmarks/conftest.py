"""Benchmark-suite configuration.

Each benchmark regenerates one table/figure of the paper's evaluation via
:mod:`repro.bench.experiments` and prints it (run with ``-s`` to see the
tables inline); the reports are also appended to
``benchmarks/out/reports.txt``.
"""

from __future__ import annotations

import json
import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session", autouse=True)
def provenance_artifact():
    """Stamp benchmarks/out/provenance.json once per suite run.

    BENCH_*.json entries carry no machine info; this sidecar records
    which interpreter/numpy/host produced the numbers appended by the
    session so regressions can be traced to toolchain changes.
    """
    from repro.obs.manifest import provenance, utc_now_iso

    OUT_DIR.mkdir(exist_ok=True)
    doc = {"written_utc": utc_now_iso(), **provenance()}
    (OUT_DIR / "provenance.json").write_text(json.dumps(doc, indent=2) + "\n")
    yield


@pytest.fixture(scope="session")
def report_sink():
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / "reports.txt"
    handle = open(path, "a")
    yield handle
    handle.close()


@pytest.fixture
def emit(report_sink, capsys):
    """Print a report and persist it."""

    def _emit(report) -> None:
        text = str(report)
        with capsys.disabled():
            print("\n" + text)
        report_sink.write(text + "\n\n")
        report_sink.flush()

    return _emit
