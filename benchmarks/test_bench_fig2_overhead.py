"""Figure 2: average computation time vs average parallel overhead."""

from repro.bench.experiments import figure2_overhead
from repro.bench.harness import CORE_COUNTS, all_setups


def test_bench_figure2(benchmark, emit):
    report = benchmark.pedantic(figure2_overhead, rounds=1, iterations=1)
    emit(report)
    top = CORE_COUNTS[-1]
    alkanes = {s.name for s in all_setups() if s.is_alkane}
    for mol, algs in report.data.items():
        g = algs["gtfock"][top]
        n = algs["nwchem"][top]
        # computation times comparable (NWChem modeled slightly faster)
        assert 0.5 < n["t_comp"] / g["t_comp"] < 1.2
        if mol in alkanes:
            # the paper's headline: order-of-magnitude lower overhead for
            # GTFock, most visible on the screened-out alkane cases
            assert n["t_ov"] > 3.0 * g["t_ov"], mol
