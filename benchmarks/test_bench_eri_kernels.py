"""ERI kernel microbenchmark: class-batched vs batched vs seed, store reuse.

Times the water Fock-build microbenchmark five ways:

* **seed**: the per-primitive Python-loop MD kernel
  (``MDEngine(batched=False)``), the original baseline;
* **batched**: the pair-cached, per-quartet batched-primitive kernel
  (``MDEngine(class_batched=False)``, :mod:`repro.integrals.pairdata`);
* **class**: the cross-quartet class-batched path
  (:mod:`repro.integrals.class_batch`) -- the default engine -- checked
  against the seed kernel to 1e-12 and gated at >= 10x over seed;
* **cached**: two successive direct-SCF-style builds through the
  bounded LRU canonical-quartet cache (second-iteration hit rate);
* **stored**: conventional-SCF mode through an on-disk
  :class:`~repro.integrals.store.ERIStore` -- iteration 1 fills the
  store, iteration 2 must recompute **zero** quartets.

A second measurement (``eri_kernels_large``) runs benzene/6-31G through
the class-batched and stored paths only (the seed kernel is impractical
at that size); numerics are spot-checked on a sampled quartet subset
against the PR-2 batched kernel.

Each full run appends one datapoint per benchmark to ``BENCH_eri.json``
at the repo root -- the perf trajectory future PRs extend and compare
against.

Run as a pytest benchmark (``pytest benchmarks/test_bench_eri_kernels.py``)
or as a script; ``--quick`` runs a small STO-3G smoke variant covering
the class-batched and stored paths (used by CI) and does not touch the
history file.
"""

from __future__ import annotations

import pathlib
import sys
import tempfile
import time

import numpy as np

from repro.bench.harness import format_table
from repro.bench.record import append_history as _append_history
from repro.chem.basis.basisset import BasisSet
from repro.chem.builders import benzene, water
from repro.integrals.class_batch import compute_class_rows
from repro.integrals.engine import MDEngine
from repro.scf.fock import build_jk

HISTORY_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_eri.json"

#: minimum acceptable batched-over-seed speedup in the full benchmark
#: (the PR-2 issue targets >= 3x; asserted with headroom for loaded machines)
FULL_SPEEDUP_FLOOR = 2.0

#: minimum acceptable class-batched-over-seed speedup in the full benchmark
#: (the PR-7 issue targets >= 10x on water/6-31G)
CLASS_SPEEDUP_FLOOR = 10.0


def _timed_build(engine, density, tau=1e-11):
    t0 = time.perf_counter()
    j, k = build_jk(engine, density, tau)
    return time.perf_counter() - t0, j, k


def _stored_iter2(basis, density, store_dir):
    """Fill an ERIStore in iteration 1; time iteration 2 served from it.

    Returns ``(t_iter2, recomputed_in_iter2, j, k)``.
    """
    engine = MDEngine(basis, store=store_dir)
    build_jk(engine, density)  # iteration 1: fills + finalizes the store
    computed0 = engine.quartets_computed
    t_iter2, j, k = _timed_build(engine, density)
    recomputed = engine.quartets_computed - computed0
    return t_iter2, recomputed, j, k


def run_eri_kernel_bench(basis_name: str = "6-31g") -> dict:
    """One full measurement: seed / batched / class / cached / stored."""
    mol = water()
    basis = BasisSet.build(mol, basis_name)
    rng = np.random.default_rng(17)
    d = rng.normal(size=(basis.nbf, basis.nbf))
    d = (d + d.T) / 2.0

    t_seed, j0, k0 = _timed_build(MDEngine(basis, batched=False), d)
    t_batched, j1, k1 = _timed_build(MDEngine(basis, class_batched=False), d)
    max_diff = float(
        max(np.max(np.abs(j0 - j1)), np.max(np.abs(k0 - k1)))
    )

    class_engine = MDEngine(basis)
    t_class, jc, kc = _timed_build(class_engine, d)
    class_diff = float(
        max(np.max(np.abs(j0 - jc)), np.max(np.abs(k0 - kc)))
    )

    cached = MDEngine(basis, cache_mb=64.0)
    t_iter1, _, _ = _timed_build(cached, d)
    hits0, misses0 = cached.quartet_cache.hits, cached.quartet_cache.misses
    t_iter2, j2, k2 = _timed_build(cached, d)
    hits = cached.quartet_cache.hits - hits0
    misses = cached.quartet_cache.misses - misses0
    cache_diff = float(
        max(np.max(np.abs(j0 - j2)), np.max(np.abs(k0 - k2)))
    )

    with tempfile.TemporaryDirectory(prefix="eri_store_") as store_dir:
        t_stored, recomputed, js, ks = _stored_iter2(basis, d, store_dir)
    stored_diff = float(
        max(np.max(np.abs(j0 - js)), np.max(np.abs(k0 - ks)))
    )

    return {
        "benchmark": "eri_kernels",
        "molecule": "H2O",
        "basis": basis_name,
        "nshells": basis.nshells,
        "nbf": basis.nbf,
        "quartets": class_engine.quartets_computed,
        "t_seed_s": round(t_seed, 4),
        "t_batched_s": round(t_batched, 4),
        "batched_speedup": round(t_seed / t_batched, 2),
        "max_abs_diff": max_diff,
        "t_class_s": round(t_class, 4),
        "class_batched_speedup": round(t_seed / t_class, 2),
        "class_max_abs_diff": class_diff,
        "cache_max_abs_diff": cache_diff,
        "t_cached_iter1_s": round(t_iter1, 4),
        "t_cached_iter2_s": round(t_iter2, 4),
        "cache_iter2_hits": hits,
        "cache_iter2_misses": misses,
        "cache_iter2_hit_rate": round(hits / max(1, hits + misses), 4),
        "cache_bytes_held": cached.quartet_cache.bytes_held,
        "stored_iter2_s": round(t_stored, 4),
        "store_iter2_recomputed": recomputed,
        "stored_max_abs_diff": stored_diff,
    }


def run_eri_large_bench(basis_name: str = "6-31g", nsample: int = 64) -> dict:
    """Benzene through the class-batched + stored paths (no seed timing).

    Numerics are verified on ``nsample`` randomly sampled surviving
    quartets against the per-quartet batched kernel.
    """
    mol = benzene()
    basis = BasisSet.build(mol, basis_name)
    rng = np.random.default_rng(23)
    d = rng.normal(size=(basis.nbf, basis.nbf))
    d = (d + d.T) / 2.0

    engine = MDEngine(basis)
    t_class, _, _ = _timed_build(engine, d)
    quartets = engine.quartets_computed

    # spot-check: sampled rows computed through the class-batched kernel
    # itself (compute_class_rows) vs the per-quartet batched kernel
    ref = MDEngine(basis, class_batched=False)
    plan = engine.class_plan(1e-11)
    batch_of = np.concatenate([
        np.full(b.nq, i, dtype=np.int64) for i, b in enumerate(plan.batches)
    ])
    row_of = np.concatenate([
        np.arange(b.nq, dtype=np.int64) for b in plan.batches
    ])
    pick = rng.choice(len(batch_of), size=min(nsample, len(batch_of)),
                      replace=False)
    sample_diff = 0.0
    for bi in np.unique(batch_of[pick]):
        batch = plan.batches[bi]
        rows = row_of[pick[batch_of[pick] == bi]]
        blocks = compute_class_rows(batch, rows)
        for blk, (m, n, p, q) in zip(blocks, batch.quartets[rows]):
            r = ref.quartet(int(m), int(n), int(p), int(q))
            sample_diff = max(sample_diff, float(np.max(np.abs(blk - r))))

    with tempfile.TemporaryDirectory(prefix="eri_store_") as store_dir:
        t_stored, recomputed, _, _ = _stored_iter2(basis, d, store_dir)

    return {
        "benchmark": "eri_kernels_large",
        "molecule": "C6H6",
        "basis": basis_name,
        "nshells": basis.nshells,
        "nbf": basis.nbf,
        "quartets": quartets,
        "t_class_s": round(t_class, 4),
        "stored_iter2_s": round(t_stored, 4),
        "store_iter2_recomputed": recomputed,
        "sample_max_abs_diff": sample_diff,
    }


def append_history(entry: dict, path: pathlib.Path = HISTORY_PATH) -> None:
    """Append one datapoint to the BENCH_eri.json trajectory."""
    _append_history(
        entry, path,
        description="ERI kernel perf trajectory (see docs/PERFORMANCE.md)",
    )


def render_report(result: dict) -> str:
    rows = [
        ["seed per-primitive", result["t_seed_s"], 1.0],
        ["batched + pair cache", result["t_batched_s"],
         result["batched_speedup"]],
        ["class-batched", result["t_class_s"],
         result["class_batched_speedup"]],
        ["quartet-cache iter 2", result["t_cached_iter2_s"],
         round(result["t_seed_s"] / max(result["t_cached_iter2_s"], 1e-12), 2)],
        ["stored iter 2", result["stored_iter2_s"],
         round(result["t_seed_s"] / max(result["stored_iter2_s"], 1e-12), 2)],
    ]
    table = format_table(
        ["kernel", "time [s]", "speedup"],
        rows,
        title=(
            f"ERI kernels: water/{result['basis']} J+K build "
            f"({result['quartets']} quartets, "
            f"class max |diff| {result['class_max_abs_diff']:.2e}, "
            f"iter-2 hit rate {result['cache_iter2_hit_rate']:.0%}, "
            f"stored iter-2 recomputed {result['store_iter2_recomputed']})"
        ),
    )
    return table


def render_large_report(result: dict) -> str:
    rows = [
        ["class-batched", result["t_class_s"]],
        ["stored iter 2", result["stored_iter2_s"]],
    ]
    return format_table(
        ["kernel", "time [s]"],
        rows,
        title=(
            f"ERI kernels (large): benzene/{result['basis']} J+K build "
            f"({result['quartets']} quartets, "
            f"sampled max |diff| {result['sample_max_abs_diff']:.2e}, "
            f"stored iter-2 recomputed {result['store_iter2_recomputed']})"
        ),
    )


def check_result(result: dict, quick: bool) -> None:
    """Regression gates: numerics exact, batched/class not slower than seed."""
    assert result["max_abs_diff"] < 1e-10, (
        f"batched kernel numerics drifted: {result['max_abs_diff']:.3e}"
    )
    assert result["class_max_abs_diff"] < 1e-12, (
        f"class-batched kernel numerics drifted: "
        f"{result['class_max_abs_diff']:.3e}"
    )
    assert result["cache_max_abs_diff"] < 1e-10, (
        f"cache-served blocks drifted: {result['cache_max_abs_diff']:.3e}"
    )
    assert result["stored_max_abs_diff"] < 1e-10, (
        f"store-served blocks drifted: {result['stored_max_abs_diff']:.3e}"
    )
    assert result["cache_iter2_hit_rate"] > 0.5, (
        f"second-iteration hit rate {result['cache_iter2_hit_rate']:.0%} <= 50%"
    )
    assert result["store_iter2_recomputed"] == 0, (
        f"stored mode recomputed {result['store_iter2_recomputed']} quartets "
        f"in iteration 2 (expected 0)"
    )
    floor = 1.0 if quick else FULL_SPEEDUP_FLOOR
    assert result["batched_speedup"] >= floor, (
        f"batched kernel is a speed regression: "
        f"{result['batched_speedup']:.2f}x < {floor}x over the seed path"
    )
    class_floor = 1.0 if quick else CLASS_SPEEDUP_FLOOR
    assert result["class_batched_speedup"] >= class_floor, (
        f"class-batched kernel below the speedup gate: "
        f"{result['class_batched_speedup']:.2f}x < {class_floor}x over seed"
    )


def check_large_result(result: dict) -> None:
    assert result["sample_max_abs_diff"] < 1e-10, (
        f"sampled class-batched blocks drifted: "
        f"{result['sample_max_abs_diff']:.3e}"
    )
    assert result["store_iter2_recomputed"] == 0, (
        f"stored mode recomputed {result['store_iter2_recomputed']} quartets "
        f"in iteration 2 (expected 0)"
    )


def test_eri_kernel_speedup(emit):
    result = run_eri_kernel_bench()
    emit(render_report(result))
    check_result(result, quick=False)
    append_history(result)


def test_eri_kernel_large(emit):
    result = run_eri_large_bench()
    emit(render_large_report(result))
    check_large_result(result)
    append_history(result)


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    result = run_eri_kernel_bench("sto-3g" if quick else "6-31g")
    print(render_report(result))
    check_result(result, quick=quick)
    if not quick:
        append_history(result)
        large = run_eri_large_bench()
        print(render_large_report(large))
        check_large_result(large)
        append_history(large)
        print(f"appended datapoints to {HISTORY_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
