"""ERI kernel microbenchmark: batched vs seed path, quartet-cache reuse.

Times the water Fock-build microbenchmark three ways:

* **seed**: the per-primitive Python-loop MD kernel
  (``MDEngine(batched=False)``), the baseline this PR replaces;
* **batched**: the pair-cached, batched-primitive kernel
  (:mod:`repro.integrals.pairdata`), checked to agree to 1e-10;
* **cached**: two successive direct-SCF-style builds through the
  bounded LRU canonical-quartet cache, measuring the second-iteration
  hit rate and wall-time drop.

Each full run appends one datapoint to ``BENCH_eri.json`` at the repo
root -- the perf trajectory future PRs extend and compare against.

Run as a pytest benchmark (``pytest benchmarks/test_bench_eri_kernels.py``)
or as a script; ``--quick`` runs a small STO-3G smoke variant that only
asserts the batched kernel is not a regression (used by CI) and does not
touch the history file.
"""

from __future__ import annotations

import pathlib
import sys
import time

import numpy as np

from repro.bench.harness import format_table
from repro.bench.record import append_history as _append_history
from repro.chem.basis.basisset import BasisSet
from repro.chem.builders import water
from repro.integrals.engine import MDEngine
from repro.scf.fock import build_jk

HISTORY_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_eri.json"

#: minimum acceptable batched-over-seed speedup in the full benchmark
#: (the issue targets >= 3x; asserted with headroom for loaded machines)
FULL_SPEEDUP_FLOOR = 2.0


def _timed_build(engine, density, tau=1e-11):
    t0 = time.perf_counter()
    j, k = build_jk(engine, density, tau)
    return time.perf_counter() - t0, j, k


def run_eri_kernel_bench(basis_name: str = "6-31g") -> dict:
    """One full measurement: seed vs batched vs cache-served Fock builds."""
    mol = water()
    basis = BasisSet.build(mol, basis_name)
    rng = np.random.default_rng(17)
    d = rng.normal(size=(basis.nbf, basis.nbf))
    d = (d + d.T) / 2.0

    t_seed, j0, k0 = _timed_build(MDEngine(basis, batched=False), d)
    t_batched, j1, k1 = _timed_build(MDEngine(basis), d)
    max_diff = float(
        max(np.max(np.abs(j0 - j1)), np.max(np.abs(k0 - k1)))
    )

    cached = MDEngine(basis, cache_mb=64.0)
    t_iter1, _, _ = _timed_build(cached, d)
    hits0, misses0 = cached.quartet_cache.hits, cached.quartet_cache.misses
    t_iter2, j2, k2 = _timed_build(cached, d)
    hits = cached.quartet_cache.hits - hits0
    misses = cached.quartet_cache.misses - misses0
    cache_diff = float(
        max(np.max(np.abs(j0 - j2)), np.max(np.abs(k0 - k2)))
    )

    return {
        "benchmark": "eri_kernels",
        "molecule": "H2O",
        "basis": basis_name,
        "nshells": basis.nshells,
        "nbf": basis.nbf,
        "quartets": cached.quartets_computed,
        "t_seed_s": round(t_seed, 4),
        "t_batched_s": round(t_batched, 4),
        "batched_speedup": round(t_seed / t_batched, 2),
        "max_abs_diff": max_diff,
        "cache_max_abs_diff": cache_diff,
        "t_cached_iter1_s": round(t_iter1, 4),
        "t_cached_iter2_s": round(t_iter2, 4),
        "cache_iter2_hits": hits,
        "cache_iter2_misses": misses,
        "cache_iter2_hit_rate": round(hits / max(1, hits + misses), 4),
        "cache_bytes_held": cached.quartet_cache.bytes_held,
    }


def append_history(entry: dict, path: pathlib.Path = HISTORY_PATH) -> None:
    """Append one datapoint to the BENCH_eri.json trajectory."""
    _append_history(
        entry, path,
        description="ERI kernel perf trajectory (see docs/PERFORMANCE.md)",
    )


def render_report(result: dict) -> str:
    rows = [
        ["seed per-primitive", result["t_seed_s"], 1.0],
        ["batched + pair cache", result["t_batched_s"],
         result["batched_speedup"]],
        ["quartet-cache iter 2", result["t_cached_iter2_s"],
         round(result["t_seed_s"] / max(result["t_cached_iter2_s"], 1e-12), 2)],
    ]
    table = format_table(
        ["kernel", "time [s]", "speedup"],
        rows,
        title=(
            f"ERI kernels: water/{result['basis']} J+K build "
            f"({result['quartets']} quartets, "
            f"max |diff| {result['max_abs_diff']:.2e}, "
            f"iter-2 hit rate {result['cache_iter2_hit_rate']:.0%})"
        ),
    )
    return table


def check_result(result: dict, quick: bool) -> None:
    """Regression gates: numerics exact, batched not slower than seed."""
    assert result["max_abs_diff"] < 1e-10, (
        f"batched kernel numerics drifted: {result['max_abs_diff']:.3e}"
    )
    assert result["cache_max_abs_diff"] < 1e-10, (
        f"cache-served blocks drifted: {result['cache_max_abs_diff']:.3e}"
    )
    assert result["cache_iter2_hit_rate"] > 0.5, (
        f"second-iteration hit rate {result['cache_iter2_hit_rate']:.0%} <= 50%"
    )
    floor = 1.0 if quick else FULL_SPEEDUP_FLOOR
    assert result["batched_speedup"] >= floor, (
        f"batched kernel is a speed regression: "
        f"{result['batched_speedup']:.2f}x < {floor}x over the seed path"
    )


def test_eri_kernel_speedup(emit):
    result = run_eri_kernel_bench()
    emit(render_report(result))
    check_result(result, quick=False)
    append_history(result)


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    result = run_eri_kernel_bench("sto-3g" if quick else "6-31g")
    print(render_report(result))
    check_result(result, quick=quick)
    if not quick:
        append_history(result)
        print(f"appended datapoint to {HISTORY_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
