"""Ablation benches: reordering, stealing, and task-granularity choices.

Not a paper table -- these quantify the contribution of each design
decision DESIGN.md calls out, including the paper's future-work item of
alternative reordering schemes (Hilbert curve).
"""

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.chem.builders import alkane
from repro.fock.ablation import (
    granularity_ablation,
    reordering_ablation,
    stealing_ablation,
)
from repro.fock.reorder import reorder_basis
from repro.fock.screening_map import ScreeningMap
from repro.integrals.schwarz import schwarz_model


def _scrambled(n=14):
    basis = BasisSet.build(alkane(n), "vdz-sim")
    rng = np.random.default_rng(0)
    return basis.permuted(rng.permutation(basis.nshells))


def test_bench_reordering_ablation(benchmark, emit):
    rows = benchmark.pedantic(
        reordering_ablation, args=(_scrambled(),), kwargs={"cores": 384},
        rounds=1, iterations=1,
    )
    emit("Ablation: shell ordering\n" + "\n".join(f"  {r}" for r in rows))
    by = {r.label: r.metrics for r in rows}
    assert by["natural"]["comm_mb_per_proc"] < by["none"]["comm_mb_per_proc"]
    assert by["hilbert"]["comm_mb_per_proc"] < by["none"]["comm_mb_per_proc"]


def test_bench_stealing_ablation(benchmark, emit):
    basis = reorder_basis(BasisSet.build(alkane(14), "vdz-sim"))
    screen = ScreeningMap(basis, schwarz_model(basis), 1e-10)
    rows = benchmark.pedantic(
        stealing_ablation, args=(basis, screen), kwargs={"cores": 1944},
        rounds=1, iterations=1,
    )
    emit("Ablation: work stealing\n" + "\n".join(f"  {r}" for r in rows))
    by = {r.label: r.metrics for r in rows}
    assert by["steal-0.5"]["load_balance"] < by["no-stealing"]["load_balance"]


def test_bench_granularity_ablation(benchmark, emit):
    basis = reorder_basis(BasisSet.build(alkane(14), "vdz-sim"))
    screen = ScreeningMap(basis, schwarz_model(basis), 1e-10)
    rows = benchmark.pedantic(
        granularity_ablation, args=(basis, screen), kwargs={"cores": 1944},
        rounds=1, iterations=1,
    )
    emit("Ablation: task granularity\n" + "\n".join(f"  {r}" for r in rows))
    # coarser tasks cannot balance better than fine tasks (with stealing)
    fine = rows[0].metrics["load_balance"]
    coarse = rows[-1].metrics["load_balance"]
    assert coarse >= fine - 1e-9
