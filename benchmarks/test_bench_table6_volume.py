"""Table VI: average Global Arrays communication volume per process."""

from repro.bench.experiments import table6_volume
from repro.bench.harness import CORE_COUNTS


def test_bench_table6(benchmark, emit):
    report = benchmark.pedantic(table6_volume, rounds=1, iterations=1)
    emit(report)
    small = CORE_COUNTS[0]
    for mol, algs in report.data.items():
        # paper: GTFock's prefetch-once volume is far below NWChem's
        # per-task re-fetching at small/medium core counts
        assert algs["gtfock"][small] < algs["nwchem"][small], mol
