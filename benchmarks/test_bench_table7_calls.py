"""Table VII: average number of one-sided communication calls per process."""

from repro.bench.experiments import table7_calls


def test_bench_table7(benchmark, emit):
    report = benchmark.pedantic(table7_calls, rounds=1, iterations=1)
    emit(report)
    for mol, algs in report.data.items():
        for cores in algs["gtfock"]:
            # paper: lower call counts for GTFock in every case
            assert algs["gtfock"][cores] < algs["nwchem"][cores], (mol, cores)
