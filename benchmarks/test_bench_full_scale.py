"""Full-size spot check: the paper's exact C96H24 at high core counts.

Skipped unless ``REPRO_FULL=1`` (minutes of runtime): simulates the real
648-shell graphene flake and asserts the crossover and overhead relations
at the paper's own molecule size, removing the scaled-suite artifacts
documented in EXPERIMENTS.md.
"""

import os

import pytest

from repro.bench.harness import format_table, molecule_setup
from repro.chem.builders import graphene_flake
from repro.fock.simulate import simulate_gtfock, simulate_nwchem

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_FULL", "0") != "1",
    reason="full-size run; set REPRO_FULL=1",
)


def test_bench_full_c96h24(benchmark, emit):
    setup = molecule_setup("C96H24-full", graphene_flake(4))

    def run():
        rows = []
        out = {}
        for cores in (768, 1944, 3888):
            g = simulate_gtfock(
                setup.basis, setup.screen, cores, config=setup.config,
                costs=setup.costs,
            )
            n = simulate_nwchem(
                setup.basis, setup.screen, cores, config=setup.config,
                costs=setup.costs,
            )
            out[cores] = (g, n)
            rows.append(
                [cores, g.t_fock_max, n.t_fock_max, g.t_overhead_avg,
                 n.t_overhead_avg, g.steals_avg, g.load_balance]
            )
        return rows, out

    rows, out = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["cores", "GT t", "NW t", "GT ov", "NW ov", "s", "l"],
            rows,
            title="Full-size C96H24 (648 shells)",
        )
    )
    g, n = out[3888]
    assert g.t_fock_max < n.t_fock_max  # crossover by 3888 cores
    assert g.t_overhead_avg < n.t_overhead_avg
    assert g.load_balance < 1.1
