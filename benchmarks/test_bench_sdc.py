"""Integrity-layer overhead: RHF water/6-31G, detectors on vs off.

The integrity layer buys its detection coverage with per-iteration ABFT
checks (symmetry residuals on F and D, the Tr(D*S) electron-count
check) plus scrub-on-first-read CRC verification of every stored ERI
block -- all of which ride the SCF hot path.  On a healthy run over a
warm store that cost must stay within the PR's 5% acceptance gate, and
the detectors must raise zero false alarms.  Each full run appends one
``fock_sdc`` datapoint to ``BENCH_fock.json``.  Run as a pytest
benchmark or as a script; ``--quick`` skips the history file.
"""

from __future__ import annotations

import sys
import tempfile
import time

from repro.chem.builders import water
from repro.scf.hf import RHF

from test_bench_table3_times import append_history

ROUNDS = 4
OVERHEAD_GATE = 0.05


def _time_scf(store_dir: str, integrity: bool) -> tuple[float, object]:
    t0 = time.perf_counter()
    res = RHF(
        water(), basis_name="6-31g", integral_store=store_dir,
        integrity=integrity,
    ).run()
    return time.perf_counter() - t0, res


def run_sdc_bench(rounds: int = ROUNDS) -> dict:
    """Best-of-N wall times for integrity off/on over one warm store.

    The store is filled once (untimed) so both configurations measure
    the stored-integral steady state -- the configuration the CRC
    framing actually taxes.  Min is the estimator, as in scf_guard:
    scheduler noise is one-sided.
    """
    with tempfile.TemporaryDirectory(prefix="repro-bench-sdc-") as work:
        store_dir = work + "/store"
        _time_scf(store_dir, integrity=False)  # fill + finalize, untimed
        off, on = [], []
        res_off = res_on = None
        for _ in range(rounds):
            t, res_off = _time_scf(store_dir, integrity=False)
            off.append(t)
            t, res_on = _time_scf(store_dir, integrity=True)
            on.append(t)
    t_off = min(off)
    t_on = min(on)
    summary = res_on.integrity_summary
    entry = {
        "benchmark": "fock_sdc",
        "molecule": "water",
        "basis": "6-31g",
        "rounds": rounds,
        "wall_off_s": round(t_off, 4),
        "wall_on_s": round(t_on, 4),
        "overhead": round(t_on / t_off - 1.0, 4),
        "iterations": res_on.iterations,
        "energy": round(res_on.energy, 10),
        "checks": summary["checks_total"],
        "false_positives": summary["detections_total"],
        "energy_matches": bool(res_on.energy == res_off.energy),
    }
    entry["passed"] = bool(
        entry["energy_matches"]
        and entry["false_positives"] == 0
        and entry["overhead"] <= OVERHEAD_GATE
    )
    return entry


def check_entry(entry: dict) -> None:
    """The acceptance gate: a healthy run is untouched and nearly free."""
    assert entry["false_positives"] == 0, (
        f"{entry['false_positives']} detector false positive(s) on a "
        "clean run"
    )
    assert entry["energy_matches"], "integrity layer changed the energy"
    assert entry["overhead"] <= OVERHEAD_GATE, (
        f"integrity overhead {entry['overhead']:.1%} exceeds "
        f"{OVERHEAD_GATE:.0%} gate "
        f"(off {entry['wall_off_s']}s, on {entry['wall_on_s']}s)"
    )
    assert entry["passed"]


def test_bench_sdc(benchmark, emit):
    entry = benchmark.pedantic(run_sdc_bench, rounds=1, iterations=1)
    emit(
        "fock_sdc: water/6-31g integrity overhead "
        f"{entry['overhead']:+.1%} (off {entry['wall_off_s']}s, "
        f"on {entry['wall_on_s']}s, {entry['checks']} checks)"
    )
    check_entry(entry)
    append_history(entry)


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    entry = run_sdc_bench(rounds=1 if quick else ROUNDS)
    print(
        "fock_sdc: water/6-31g integrity overhead "
        f"{entry['overhead']:+.1%} (off {entry['wall_off_s']}s, "
        f"on {entry['wall_on_s']}s, {entry['checks']} checks, "
        f"{entry['false_positives']} false positives)"
    )
    check_entry(entry)
    if not quick:
        append_history(entry)
        print("appended fock_sdc datapoint to BENCH_fock.json")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
