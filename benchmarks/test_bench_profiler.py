"""Profiler overhead: water/6-31G Fock builds with phase probes on vs off.

The phase probes sit on the hottest path in the repo -- two context-
manager entries per surviving ERI quartet (``eri_quartets`` and
``jk_contraction``) -- so this benchmark is the acceptance gate for the
observability work: profiling a healthy Fock build must cost <= 5% wall
time.

Methodology: whole-SCF A/B timing cannot resolve a 5% gate on shared
runners (run-to-run noise alone is ~6%), so the benchmark times single
warm-cache :func:`build_jk` calls with the profiler off and on,
*interleaved* round by round so both configurations see the same
machine drift, and takes the min of each (scheduler noise is one-sided).
Each full run appends one ``phase_profiler`` datapoint to
``BENCH_fock.json`` so ``repro perf check`` watches the probe cost over
time.  Run as a pytest benchmark or as a script; ``--quick`` uses fewer
rounds and skips the history file.
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.chem.builders import water
from repro.fock.reorder import reorder_basis
from repro.integrals.engine import MDEngine
from repro.integrals.oneelec import core_hamiltonian, overlap
from repro.obs.profile import PHASE_ERI, PhaseProfiler, set_profiler
from repro.scf.fock import build_jk
from repro.scf.guess import core_guess
from repro.scf.orthogonalization import orthogonalizer

from test_bench_table3_times import append_history

ROUNDS = 10
OVERHEAD_GATE = 0.05


def _timed_build(engine, density, profiler):
    prev = set_profiler(profiler)
    try:
        t0 = time.perf_counter()
        jk = build_jk(engine, density)
        return time.perf_counter() - t0, jk
    finally:
        set_profiler(prev)


def run_profiler_bench(rounds: int = ROUNDS) -> dict:
    """Interleaved min-of-N wall times for probes off/on on one engine."""
    mol = water()
    basis = reorder_basis(BasisSet.build(mol, "6-31g"))
    engine = MDEngine(basis)
    hcore = core_hamiltonian(basis)
    x = orthogonalizer(overlap(basis))
    density = core_guess(hcore, x, mol.nelectrons // 2)
    build_jk(engine, density)  # warm the quartet/Schwarz caches

    off, on = [], []
    jk_off = jk_on = None
    profiler = None
    for i in range(rounds):
        # alternate which configuration goes first so slow drift (cache
        # state, thermal, co-tenant load) cannot bias one side
        configs = ("off", "on") if i % 2 == 0 else ("on", "off")
        for config in configs:
            if config == "off":
                t, jk_off = _timed_build(engine, density, None)
                off.append(t)
            else:
                profiler = PhaseProfiler()
                t, jk_on = _timed_build(engine, density, profiler)
                on.append(t)
    t_off = min(off)
    t_on = min(on)
    quartets = next(
        (p.calls for p in profiler.phases() if p.name == PHASE_ERI), 0
    )
    fock_matches = bool(
        np.array_equal(jk_off[0], jk_on[0])
        and np.array_equal(jk_off[1], jk_on[1])
    )
    return {
        "benchmark": "phase_profiler",
        "molecule": "water",
        "basis": "6-31g",
        "rounds": rounds,
        "wall_off_s": round(t_off, 4),
        "wall_on_s": round(t_on, 4),
        "overhead": round(t_on / t_off - 1.0, 4),
        "quartets_profiled": int(quartets),
        "fock_matches": fock_matches,
    }


def check_entry(entry: dict) -> None:
    """The acceptance gate: probes are observation, not perturbation."""
    assert entry["fock_matches"], "profiler changed the Fock matrices"
    assert entry["quartets_profiled"] > 0, "probes never fired"
    assert entry["overhead"] <= OVERHEAD_GATE, (
        f"profiler overhead {entry['overhead']:.1%} exceeds "
        f"{OVERHEAD_GATE:.0%} gate "
        f"(off {entry['wall_off_s']}s, on {entry['wall_on_s']}s)"
    )


def _describe(entry: dict) -> str:
    return (
        "phase_profiler: water/6-31g warm build_jk overhead "
        f"{entry['overhead']:+.1%} (off {entry['wall_off_s']}s, "
        f"on {entry['wall_on_s']}s, "
        f"{entry['quartets_profiled']} quartets profiled)"
    )


def test_bench_profiler(benchmark, emit):
    entry = benchmark.pedantic(run_profiler_bench, rounds=1, iterations=1)
    emit(_describe(entry))
    check_entry(entry)
    append_history(entry)


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    entry = run_profiler_bench(rounds=3 if quick else ROUNDS)
    print(_describe(entry))
    check_entry(entry)
    if not quick:
        append_history(entry)
        print("appended phase_profiler datapoint to BENCH_fock.json")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
