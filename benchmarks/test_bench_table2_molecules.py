"""Table II: test molecules -- atoms, shells, functions, unique quartets."""

from repro.bench.experiments import table2_molecules


def test_bench_table2(benchmark, emit):
    report = benchmark.pedantic(table2_molecules, rounds=1, iterations=1)
    emit(report)
    for name, row in report.data.items():
        assert row["unique_shell_quartets"] > 0
        assert row["shells"] == 6 * _nc(name) + 3 * _nh(name)


def _nc(name: str) -> int:
    formula = name.split()[0]
    return int(formula[1 : formula.index("H")])


def _nh(name: str) -> int:
    formula = name.split()[0]
    return int(formula[formula.index("H") + 1 :])
