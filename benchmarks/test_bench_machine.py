"""Table I: machine parameters used by the simulated cluster."""

from repro.bench.paper_data import TABLE1_MACHINE
from repro.runtime.machine import LONESTAR


def test_bench_table1_machine(benchmark, emit):
    def build():
        return LONESTAR.transfer_time(1_000_000, 10)

    benchmark(build)
    lines = ["Table I: simulated machine (Lonestar)"]
    lines.append(f"  paper per-node parameters: {TABLE1_MACHINE}")
    lines.append(
        f"  model: bandwidth={LONESTAR.bandwidth:.1e} B/s, "
        f"latency={LONESTAR.latency:.1e} s, cores/node={LONESTAR.cores_per_node}, "
        f"t_int(GTFock)={LONESTAR.t_int_gtfock*1e6:.2f} us, "
        f"t_int(NWChem)={LONESTAR.t_int_nwchem*1e6:.2f} us"
    )
    emit("\n".join(lines))
