"""Chaos benchmark: fault-injected Fock build vs fault-free baseline.

Runs the ``repro chaos`` harness (one seeded random fault plan with a
rank death over the water/sto-3g numeric build) and measures what
recovery costs: the simulated-makespan slowdown, retries, re-executed
tasks, and wall time.  Each full run appends one ``fock_chaos``
datapoint to ``BENCH_fock.json`` so the fault-overhead trajectory is
tracked alongside the performance tables; ``--quick`` skips the
history file.  The chaos invariant (|dF| <= 1e-12 vs the fault-free
build) is asserted on every run -- a benchmark that silently produced
wrong numbers would be worse than useless.
"""

from __future__ import annotations

import sys
import time

from test_bench_table3_times import HISTORY_PATH, append_history

from repro.fock.chaos import run_chaos


def run_chaos_bench(seed: int = 7) -> tuple[dict, object]:
    """One measurement: a seeded chaos run, timed, summarized."""
    t0 = time.perf_counter()
    cres = run_chaos("water", "sto-3g", nproc=4, seed=seed, ndeaths=1)
    wall = time.perf_counter() - t0
    ov = cres.overhead
    entry = {
        "benchmark": "fock_chaos",
        "wall_s": round(wall, 3),
        "molecule": cres.molecule,
        "basis": cres.basis_name,
        "nproc": cres.nproc,
        "seed": seed,
        "plan": cres.plan.describe(),
        "fock_error": cres.fock_error,
        "passed": cres.passed,
        "makespan_clean_s": ov["makespan_clean"],
        "makespan_faulty_s": ov["makespan_faulty"],
        "fault_slowdown": round(ov["slowdown"], 4),
        "retries": ov["retries_total"],
        "reexecuted_tasks": ov["reexecuted_tasks"],
        "recoveries": ov["recoveries"],
        "retry_bytes": ov["retry_bytes"],
    }
    return entry, cres


def check_result(cres) -> None:
    assert cres.passed, (
        f"chaos invariant violated: |dF| = {cres.fock_error:.3e}"
    )
    assert cres.overhead["dead_ranks"], "plan must kill at least one rank"
    assert cres.overhead["makespan_faulty"] >= cres.overhead["makespan_clean"]


def test_bench_chaos(benchmark, emit):
    entry, cres = benchmark.pedantic(run_chaos_bench, rounds=1, iterations=1)
    emit("\n".join(cres.summary_lines()))
    check_result(cres)
    append_history(entry)


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    seed = 7
    for i, a in enumerate(argv):
        if a == "--seed" and i + 1 < len(argv):
            seed = int(argv[i + 1])
    entry, cres = run_chaos_bench(seed)
    for line in cres.summary_lines():
        print(line)
    check_result(cres)
    if not quick:
        append_history(entry)
        print(f"appended datapoint to {HISTORY_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
