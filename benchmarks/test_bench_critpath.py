"""Critical-path analyzer benchmark: decomposition + what-if fidelity.

Runs the analyzer end to end on a simulated GTFock build (water/STO-3G,
48 cores): exact per-rank time decomposition, critical-path extraction,
and the network-2x / steal-off what-if projections cross-checked against
re-simulation.  Each full run appends one datapoint to
``BENCH_fock.json`` at the repo root (wall time, explained ratio, idle
fraction, worst what-if error).  Run as a pytest benchmark or as a
script; ``--quick`` skips the history file.
"""

from __future__ import annotations

import pathlib
import sys
import time

from repro.bench.record import append_history as _append_history
from repro.chem import builders
from repro.chem.basis.basisset import BasisSet
from repro.fock.reorder import reorder_basis
from repro.fock.screening_map import ScreeningMap
from repro.fock.simulate import SimCapture, simulate_gtfock
from repro.integrals import schwarz_model
from repro.obs.critpath import analyze
from repro.obs.trace import Tracer

HISTORY_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_fock.json"


def run_critpath_bench(cores: int = 48) -> tuple[dict, object]:
    """One measurement: simulate, analyze, cross-check what-ifs."""
    t0 = time.perf_counter()
    mol = builders.water()
    basis = reorder_basis(BasisSet.build(mol, "sto-3g"))
    screen = ScreeningMap(basis, schwarz_model(basis), 1e-10)
    capture = SimCapture()
    simulate_gtfock(
        basis, screen, cores, tracer=Tracer("bench-critpath"),
        capture=capture, molecule_name=mol.name,
    )
    analysis = analyze(capture, resim=True, network_scale=2.0)
    wall = time.perf_counter() - t0
    summary = analysis.summary()
    entry = {
        "benchmark": "fock_critpath",
        "wall_s": round(wall, 3),
        "explained_ratio": round(summary["explained_ratio"], 6),
        "idle_fraction": round(summary["idle_fraction"], 6),
        "whatif_max_rel_err": round(summary["whatif_max_rel_err"], 6),
        "decomposition_ok": summary["decomposition_ok"],
    }
    return entry, analysis


def append_history(entry: dict, path: pathlib.Path = HISTORY_PATH) -> None:
    """Append one datapoint to the BENCH_fock.json trajectory."""
    _append_history(
        entry, path,
        description="Fock-simulation perf trajectory "
        "(see docs/PERFORMANCE.md)",
    )


def check_analysis(analysis) -> None:
    """The acceptance targets the analyzer must hold."""
    analysis.check()  # exact decomposition + no FAIL-graded what-if
    summary = analysis.summary()
    assert summary["explained_ratio"] > 0.95, (
        f"critical path explains only {summary['explained_ratio']:.1%}"
    )
    cross_checked = [w for w in analysis.whatifs if w.resim_makespan is not None]
    assert len(cross_checked) >= 2, "need >= 2 re-simulated what-ifs"
    for w in cross_checked:
        assert w.rel_err <= 0.15, (
            f"{w.name}: projection off by {w.rel_err:.1%} vs re-simulation"
        )


def test_bench_critpath(benchmark, emit):
    entry, analysis = benchmark.pedantic(
        run_critpath_bench, rounds=1, iterations=1
    )
    emit(analysis.text())
    check_analysis(analysis)
    append_history(entry)


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    entry, analysis = run_critpath_bench()
    print(analysis.text())
    check_analysis(analysis)
    if not quick:
        append_history(entry)
        print(f"appended datapoint to {HISTORY_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
