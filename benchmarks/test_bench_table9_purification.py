"""Table IX: purification's share of the HF iteration (C150H30 class)."""

from repro.bench.experiments import table9_purification


def test_bench_table9(benchmark, emit):
    report = benchmark.pedantic(table9_purification, rounds=1, iterations=1)
    emit(report)
    percents = [row["percent"] for row in report.data.values()]
    # paper: 1-15% of the iteration across core counts
    assert min(percents) < 20.0
    assert all(p < 60.0 for p in percents)
    # share grows with core count (purification scales worse than Fock)
    cores = sorted(report.data)
    assert report.data[cores[-1]]["percent"] >= report.data[cores[0]]["percent"]
