"""Table VIII: work-stealing load balance ratio l = T_max / T_avg."""

import pytest

from repro.bench.experiments import run_cell, table8_load_balance
from repro.bench.harness import CORE_COUNTS, all_setups


def test_bench_table8(benchmark, emit):
    report = benchmark.pedantic(table8_load_balance, rounds=1, iterations=1)
    emit(report)
    for mol, balances in report.data.items():
        for cores, bal in balances.items():
            # paper Table VIII: l stays near 1 (well balanced) everywhere
            assert 1.0 <= bal < 1.5, (mol, cores, bal)


def test_commstats_summary_surfaces_balance(emit):
    """The Table VIII metric is also reported by CommStats.summary().

    ``FockSimResult.load_balance`` (from scheduler finish times) and the
    runtime accounting layer's own ``load_balance`` (max/mean virtual
    clock) must agree -- they are two views of the same clocks.
    """
    setup = all_setups()[0]
    lines = [f"CommStats load balance, {setup.name}:"]
    for cores in CORE_COUNTS[:3]:
        r = run_cell(setup, "gtfock", cores)
        summary = r.comm_summary
        assert "load_balance" in summary
        assert "comm_fraction" in summary
        assert summary["load_balance"] == pytest.approx(r.load_balance)
        assert 1.0 <= summary["load_balance"] < 1.5
        lines.append(
            f"  {cores:5d} cores: l={summary['load_balance']:.4f} "
            f"comm_fraction={summary['comm_fraction']:.4f}"
        )
    emit("\n".join(lines))
