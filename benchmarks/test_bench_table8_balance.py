"""Table VIII: work-stealing load balance ratio l = T_max / T_avg."""

from repro.bench.experiments import table8_load_balance


def test_bench_table8(benchmark, emit):
    report = benchmark.pedantic(table8_load_balance, rounds=1, iterations=1)
    emit(report)
    for mol, balances in report.data.items():
        for cores, l in balances.items():
            # paper Table VIII: l stays near 1 (well balanced) everywhere
            assert 1.0 <= l < 1.5, (mol, cores, l)
