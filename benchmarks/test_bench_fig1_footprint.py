"""Figure 1: D-matrix footprint of one task vs a block of tasks."""

from repro.bench.experiments import figure1_footprint


def test_bench_figure1(benchmark, emit):
    report = benchmark.pedantic(figure1_footprint, rounds=1, iterations=1)
    emit(report)
    d = report.data
    # the whole point of the reordering: union footprint grows far
    # slower than per-task scaling (paper: ~80x instead of 2500x)
    assert d["ratio"] < 0.25 * d["naive_ratio"]
    assert d["single_task_elements"] > 0
