"""Guard overhead: RHF water/6-31G with the convergence guard on vs off.

On a healthy run the guard is pure bookkeeping -- classification over a
short history plus NaN/Inf sentinels on F and D -- so its wall-time
overhead must stay within the PR's 5% acceptance gate.  Each full run
appends one ``scf_guard`` datapoint to ``BENCH_fock.json`` (median wall
time of both configurations plus the overhead ratio).  Run as a pytest
benchmark or as a script; ``--quick`` skips the history file.
"""

from __future__ import annotations

import sys
import time

from repro.chem.builders import water
from repro.scf.hf import RHF

from test_bench_table3_times import append_history

ROUNDS = 4
OVERHEAD_GATE = 0.05


def _time_scf(guard: bool) -> tuple[float, object]:
    t0 = time.perf_counter()
    res = RHF(water(), basis_name="6-31g", guard=guard).run()
    return time.perf_counter() - t0, res


def run_guard_bench(rounds: int = ROUNDS) -> dict:
    """Best-of-N wall times for guard off/on plus the overhead ratio.

    Min (not median) is the estimator: scheduler noise on shared runners
    is one-sided, so the fastest round of each configuration is the best
    proxy for its true cost floor.
    """
    off, on = [], []
    res_off = res_on = None
    for _ in range(rounds):
        t, res_off = _time_scf(guard=False)
        off.append(t)
        t, res_on = _time_scf(guard=True)
        on.append(t)
    t_off = min(off)
    t_on = min(on)
    return {
        "benchmark": "scf_guard",
        "molecule": "water",
        "basis": "6-31g",
        "rounds": rounds,
        "wall_off_s": round(t_off, 4),
        "wall_on_s": round(t_on, 4),
        "overhead": round(t_on / t_off - 1.0, 4),
        "iterations": res_on.iterations,
        "energy": round(res_on.energy, 10),
        "guard_events": len(res_on.guard_events),
        "energy_matches": bool(res_on.energy == res_off.energy),
    }


def check_entry(entry: dict) -> None:
    """The acceptance gate: a healthy run is untouched and nearly free."""
    assert entry["guard_events"] == 0, "guard intervened on a healthy run"
    assert entry["energy_matches"], "guard changed the converged energy"
    assert entry["overhead"] <= OVERHEAD_GATE, (
        f"guard overhead {entry['overhead']:.1%} exceeds "
        f"{OVERHEAD_GATE:.0%} gate "
        f"(off {entry['wall_off_s']}s, on {entry['wall_on_s']}s)"
    )


def test_bench_scf_guard(benchmark, emit):
    entry = benchmark.pedantic(run_guard_bench, rounds=1, iterations=1)
    emit(
        "scf_guard: water/6-31g overhead "
        f"{entry['overhead']:+.1%} (off {entry['wall_off_s']}s, "
        f"on {entry['wall_on_s']}s, {entry['iterations']} iters)"
    )
    check_entry(entry)
    append_history(entry)


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    entry = run_guard_bench(rounds=1 if quick else ROUNDS)
    print(
        "scf_guard: water/6-31g overhead "
        f"{entry['overhead']:+.1%} (off {entry['wall_off_s']}s, "
        f"on {entry['wall_on_s']}s, {entry['iterations']} iters, "
        f"{entry['guard_events']} guard events)"
    )
    check_entry(entry)
    if not quick:
        append_history(entry)
        print("appended scf_guard datapoint to BENCH_fock.json")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
