"""Isoefficiency (Sec III-G): nshells = O(sqrt p) keeps efficiency flat.

Weak-scaling sweep over alkanes whose shell count grows like sqrt(cores),
measuring the simulated overhead fraction; contrasted with strong scaling
at fixed molecule size where the overhead fraction must grow.
"""

from repro.bench.harness import format_table, molecule_setup
from repro.chem.builders import alkane
from repro.fock.simulate import simulate_gtfock


def _overhead_fraction(setup, cores):
    sim = simulate_gtfock(
        setup.basis, setup.screen, cores, config=setup.config, costs=setup.costs
    )
    return sim.t_overhead_avg / sim.t_comp_avg, sim


def test_bench_isoefficiency(benchmark, emit):
    # nshells = 12 n_C + 6: 102, 198, 390 -- ratios ~1 : 1.9 : 3.8
    # cores scaled ~ (nshells ratio)^2: 192, 768, 3072
    weak_pairs = [(8, 192), (16, 768), (32, 3072)]

    def run():
        rows = []
        weak_fracs = []
        for n_c, cores in weak_pairs:
            setup = molecule_setup(f"iso-C{n_c}", alkane(n_c))
            frac, sim = _overhead_fraction(setup, cores)
            weak_fracs.append(frac)
            rows.append(
                ["weak", f"C{n_c}H{2*n_c+2}", setup.basis.nshells, cores,
                 sim.t_comp_avg, sim.t_overhead_avg, frac]
            )
        strong_fracs = []
        setup = molecule_setup("iso-C8", alkane(8))
        for cores in (192, 768, 3072):
            frac, sim = _overhead_fraction(setup, cores)
            strong_fracs.append(frac)
            rows.append(
                ["strong", "C8H18", setup.basis.nshells, cores,
                 sim.t_comp_avg, sim.t_overhead_avg, frac]
            )
        return rows, weak_fracs, strong_fracs

    rows, weak_fracs, strong_fracs = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    emit(
        format_table(
            ["mode", "molecule", "shells", "cores", "Tcomp", "Tov", "Tov/Tcomp"],
            rows,
            title="Isoefficiency: weak scaling (n ~ sqrt p) vs strong scaling",
        )
    )
    # strong scaling degrades much faster than weak scaling
    strong_growth = strong_fracs[-1] / max(strong_fracs[0], 1e-12)
    weak_growth = weak_fracs[-1] / max(weak_fracs[0], 1e-12)
    assert strong_growth > 2.0 * weak_growth
