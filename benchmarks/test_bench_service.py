"""Service chaos benchmark: crash-tolerant SCF job throughput.

Runs the seeded service-chaos harness (a durable queue of identical
water SCF jobs on a small worker pool, with SIGKILLs injected while
leases are held) and records what crash tolerance costs: end-to-end
jobs/min with recovery overhead included, plus the correctness gates
(all jobs done, zero double records, every energy bitwise-matching the
fault-free baseline).  Each full run appends one ``fock_service``
datapoint to ``BENCH_service.json``; ``--quick`` skips the history
file and shrinks the run for CI.

The chaos invariants are asserted on every run -- a throughput number
from a run that lost or double-recorded a job would be meaningless.
"""

from __future__ import annotations

import pathlib
import sys
import tempfile

from repro.bench.record import append_history
from repro.service.chaos import run_service_chaos

HISTORY_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_service.json"
)
DESCRIPTION = (
    "crash-tolerant SCF service trajectory: seeded worker-kill chaos "
    "runs (see docs/ROBUSTNESS.md#service-resilience)"
)


def run_service_bench(
    njobs: int = 8, workers: int = 3, kills: int = 2, seed: int = 0
) -> tuple[dict, object]:
    """One measurement: a seeded service-chaos run, summarized."""
    queue = tempfile.mkdtemp(prefix="repro-bench-service-")
    cres = run_service_chaos(
        queue, njobs=njobs, workers=workers, kills=kills, seed=seed,
        molecule="water", basis="6-31g",
    )
    entry = {
        "benchmark": "fock_service",
        "molecule": "water",
        "basis": "6-31g",
        "njobs": cres.njobs,
        "workers": cres.workers,
        "seed": cres.seed,
        "kills_done": cres.kills_done,
        "wall_s": round(cres.wall_s, 3),
        "jobs_per_min": round(cres.jobs_per_min, 2),
        "max_energy_error": cres.max_energy_error,
        "requeues": cres.requeues,
        "double_records": cres.double_records,
        "worker_restarts": cres.worker_restarts,
        "all_done": cres.all_done,
        "passed": cres.passed,
    }
    return entry, cres


def check_result(cres) -> None:
    assert cres.passed, (
        f"service chaos gate violated: done={cres.counts.get('done', 0)}"
        f"/{cres.njobs}, double_records={cres.double_records}, "
        f"max |dE|={cres.max_energy_error:.3e}"
    )
    assert cres.kills_done == cres.kills_planned, "kills missed the window"


def test_bench_service(benchmark, emit):
    entry, cres = benchmark.pedantic(run_service_bench, rounds=1,
                                     iterations=1)
    emit("\n".join(cres.summary_lines()))
    check_result(cres)
    append_history(entry, HISTORY_PATH, description=DESCRIPTION)


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    njobs, kills, seed = (4, 1, 0) if quick else (8, 2, 0)
    for i, a in enumerate(argv):
        if a == "--seed" and i + 1 < len(argv):
            seed = int(argv[i + 1])
    entry, cres = run_service_bench(njobs=njobs, kills=kills, seed=seed)
    for line in cres.summary_lines():
        print(line)
    check_result(cres)
    if not quick:
        append_history(entry, HISTORY_PATH, description=DESCRIPTION)
        print(f"appended datapoint to {HISTORY_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
