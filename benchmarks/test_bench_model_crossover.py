"""Sec III-G analysis: overhead ratio L(p), efficiency, crossover speedup."""

from repro.bench.experiments import model_analysis


def test_bench_model(benchmark, emit):
    report = benchmark.pedantic(model_analysis, rounds=1, iterations=1)
    emit(report)
    for mol, d in report.data.items():
        # the model agrees with the measurement: compute-dominated today
        assert d["L(p)"] < 1.0, mol
        assert d["efficiency"] > 0.5, mol
        # integrals must speed up a lot before communication dominates
        assert d["integral_speedup_to_crossover"] > 5.0, mol
