# Convenience targets for the repro package.

.PHONY: install test bench bench-full examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# the paper's exact molecule sizes (much slower)
bench-full:
	REPRO_FULL=1 pytest benchmarks/ --benchmark-only

examples:
	python examples/quickstart.py
	python examples/reordering_footprints.py
	python examples/work_stealing_demo.py
	python examples/purification_pipeline.py
	python examples/heterogeneous_systems.py
	python examples/beyond_rhf.py
	python examples/host_parallel_fock.py
	python examples/scaling_study.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache \
	  benchmarks/out .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
