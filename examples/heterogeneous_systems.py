#!/usr/bin/env python
"""Molecular structure vs parallel behaviour (Sec III-G's discussion).

The paper's model predicts that (a) densely packed 3-D systems have large
significant sets B, making computation dominate, while (b) sparse 1-D
chains screen away most quartets, so parallel overhead matters sooner;
and (c) heterogeneous/irregular systems increase the steal count s.

This demo quantifies all three across a 1-D alkane, a 2-D graphene
flake, and a 3-D water cluster of comparable shell counts.

Usage:  python examples/heterogeneous_systems.py
"""

from repro.bench.harness import format_table
from repro.chem import alkane, graphene_flake, water_cluster
from repro.chem.basis.basisset import BasisSet
from repro.fock.cost import quartet_cost_matrix
from repro.fock.reorder import reorder_basis
from repro.fock.screening_map import ScreeningMap
from repro.fock.simulate import simulate_gtfock
from repro.integrals.schwarz import schwarz_model
from repro.model.perfmodel import PerfModel
from repro.runtime.machine import LONESTAR


def main() -> None:
    systems = {
        "alkane C30H62 (1D)": alkane(30),
        "flake C24H12 (2D)": graphene_flake(2),
        "water 3x3x3 (3D)": water_cluster(3, 3, 3),
    }
    rows = []
    for label, mol in systems.items():
        basis = reorder_basis(BasisSet.build(mol, "vdz-sim"))
        screen = ScreeningMap(basis, schwarz_model(basis), 1e-10)
        costs = quartet_cost_matrix(screen)
        sim = simulate_gtfock(basis, screen, 1944, costs=costs)
        model = PerfModel.from_screening(screen, LONESTAR, s=sim.steals_avg)
        rows.append(
            [
                label,
                basis.nshells,
                screen.avg_phi,
                float(screen.significant.mean()),
                sim.steals_avg,
                sim.load_balance,
                model.overhead_ratio(max(1, 1944 // 12)),
            ]
        )
    print(
        format_table(
            ["system", "shells", "B=|Phi|", "sig frac", "s", "l", "L(p)"],
            rows,
            title="Structure -> screening -> parallel behaviour (1944 cores)",
        )
    )
    print(
        "\nDenser systems keep more quartets (higher significant fraction),"
        "\nso computation dominates (smaller L); sparse chains screen more"
        "\nand are the cases where scheduler/communication design decides"
        "\nscalability -- the paper's motivation for its test set."
    )


if __name__ == "__main__":
    main()
