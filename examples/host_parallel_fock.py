#!/usr/bin/env python
"""Real parallel speedup on this machine with multiprocessing.

The simulated runtime demonstrates the algorithm at cluster scale; this
example runs the same task decomposition with *actual* worker processes
computing real ERIs, and reports the measured speedup of the Fock build
on a small molecule (pass a bigger worker count on a bigger machine).

Usage:  python examples/host_parallel_fock.py [nworkers]
"""

import os
import sys
import time

import numpy as np

from repro.chem import methane
from repro.chem.basis.basisset import BasisSet
from repro.integrals.engine import MDEngine
from repro.integrals.oneelec import core_hamiltonian, overlap
from repro.parallel.mp_fock import parallel_fock_matrix
from repro.scf.guess import core_guess
from repro.scf.orthogonalization import orthogonalizer


def main() -> None:
    nworkers = int(sys.argv[1]) if len(sys.argv) > 1 else min(4, os.cpu_count() or 1)
    mol = methane()  # small enough for pure-Python ERIs in seconds
    basis = BasisSet.build(mol, "sto-3g")
    print(f"{mol.formula}: {basis.nshells} shells, {basis.nbf} functions")
    h = core_hamiltonian(basis)
    x = orthogonalizer(overlap(basis))
    d = core_guess(h, x, mol.nelectrons // 2)
    engine = MDEngine(basis)
    engine.schwarz()  # precompute once, outside the timings

    t0 = time.perf_counter()
    f1 = parallel_fock_matrix(engine, h, d, tau=1e-11, nworkers=1)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    fn = parallel_fock_matrix(engine, h, d, tau=1e-11, nworkers=nworkers)
    t_par = time.perf_counter() - t0

    print(f"1 worker : {t_serial:7.2f} s")
    print(f"{nworkers} workers: {t_par:7.2f} s  "
          f"(speedup {t_serial / t_par:.2f}x)")
    print(f"max |dF| = {np.max(np.abs(fn - f1)):.2e}")


if __name__ == "__main__":
    main()
