#!/usr/bin/env python
"""Shell reordering and prefetch footprints (the paper's Figure 1).

Shows how the spatial-cell shell reordering of Sec III-D shrinks the
union D-matrix footprint of a block of tasks: with shells numbered by
spatial cells, neighbouring tasks' significant sets overlap, so a 10x10
block of tasks needs only a few times one task's data instead of 100x.

Usage:  python examples/reordering_footprints.py
"""

import numpy as np

from repro.chem import alkane
from repro.chem.basis.basisset import BasisSet
from repro.fock.partition import TaskBlock
from repro.fock.prefetch import block_footprint
from repro.fock.reorder import bandwidth_of, reorder_basis
from repro.fock.screening_map import ScreeningMap
from repro.integrals.schwarz import schwarz_model


def footprint_ratio(screen: ScreeningMap, m: int, n: int, width: int) -> tuple:
    single = block_footprint(screen, TaskBlock(m, m + 1, n, n + 1)).elements
    block = block_footprint(
        screen, TaskBlock(m, m + width, n, n + width)
    ).elements
    return single, block, block / single


def main() -> None:
    base = BasisSet.build(alkane(24), "vdz-sim")
    rng = np.random.default_rng(0)
    scrambled = base.permuted(rng.permutation(base.nshells))
    reordered = reorder_basis(scrambled)

    for label, basis in (("scrambled", scrambled), ("reordered", reordered)):
        screen = ScreeningMap(basis, schwarz_model(basis), 1e-10)
        m = basis.nshells // 4
        n = basis.nshells // 2
        width = 10
        single, block, ratio = footprint_ratio(screen, m, n, width)
        print(f"{label:>10s}: significant-matrix bandwidth = "
              f"{bandwidth_of(screen.significant):7.1f}")
        print(
            f"            single task D footprint {single:8d} elements; "
            f"{width}x{width} task block {block:8d} elements "
            f"-> ratio {ratio:5.1f}x (naive would be {width * width}x)"
        )
    print(
        "\nPaper (C100H202): single task 1055 elements; 2500-task block "
        "only ~80x more.  The overlap of consecutive Phi sets is what "
        "makes the prefetch-once strategy cheap."
    )


if __name__ == "__main__":
    main()
