#!/usr/bin/env python
"""Work stealing in action: static imbalance vs dynamic rebalancing.

Graphene flakes have shells whose significant sets vary strongly between
flake center and edge, so the static 2-D task partition of Sec III-C is
imbalanced.  This demo simulates the same Fock build with the
work-stealing scheduler of Sec III-F enabled and disabled and compares
load-balance ratio, makespan, and steal statistics (Tables III/VIII).

Usage:  python examples/work_stealing_demo.py
"""

from repro.bench.harness import format_table, molecule_setup
from repro.chem import graphene_flake
from repro.fock import simulate_gtfock


def main() -> None:
    setup = molecule_setup("C54H18", graphene_flake(3))
    print(
        f"{setup.name}: {setup.basis.nshells} shells, "
        f"{setup.costs.total_eris:.2e} ERIs of work"
    )
    rows = []
    for cores in (48, 192, 768, 1944, 3888):
        on = simulate_gtfock(setup.basis, setup.screen, cores,
                             config=setup.config, costs=setup.costs)
        off = simulate_gtfock(setup.basis, setup.screen, cores,
                              config=setup.config, costs=setup.costs,
                              enable_stealing=False)
        rows.append(
            [
                cores,
                off.t_fock_max,
                on.t_fock_max,
                off.load_balance,
                on.load_balance,
                on.steals_avg,
            ]
        )
    print(
        format_table(
            ["cores", "t no-steal", "t steal", "l no-steal", "l steal",
             "victims/proc"],
            rows,
            title="\nwork stealing: same static partition, same tasks",
        )
    )
    print(
        "\nThe ratio l = T_max/T_avg collapses toward 1 with stealing "
        "(paper Table VIII), and the makespan follows."
    )


if __name__ == "__main__":
    main()
