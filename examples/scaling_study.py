#!/usr/bin/env python
"""Scaling study: GTFock vs NWChem over core counts (the paper's Table III).

Simulates Fock construction for a graphene flake and a linear alkane
(scaled-down versions of the paper's C96H24 and C100H202) from 12 to 3888
cores on the Lonestar-like machine model, printing time, speedup,
overhead, and communication per configuration.

Usage:  python examples/scaling_study.py [--full]
        --full uses the paper's exact molecule sizes (minutes of runtime).
"""

import os
import sys

if "--full" in sys.argv:
    os.environ["REPRO_FULL"] = "1"

from repro.bench.experiments import run_cell
from repro.bench.harness import CORE_COUNTS, all_setups, format_table


def main() -> None:
    for setup in all_setups():
        print(f"\n=== {setup.name} ===")
        print(
            f"shells={setup.basis.nshells} functions={setup.basis.nbf} "
            f"total ERIs={setup.costs.total_eris:.3e} "
            f"B={setup.screen.avg_phi:.1f} q={setup.screen.avg_consecutive_overlap:.1f}"
        )
        rows = []
        base = None
        for cores in CORE_COUNTS:
            g = run_cell(setup, "gtfock", cores)
            n = run_cell(setup, "nwchem", cores)
            if base is None:
                base = min(g.t_fock_max, n.t_fock_max)
            rows.append(
                [
                    cores,
                    g.t_fock_max,
                    n.t_fock_max,
                    base / g.t_fock_max,
                    base / n.t_fock_max,
                    g.t_overhead_avg,
                    n.t_overhead_avg,
                    g.load_balance,
                ]
            )
        print(
            format_table(
                ["cores", "GT t(s)", "NW t(s)", "GT spd", "NW spd",
                 "GT ov(s)", "NW ov(s)", "GT l"],
                rows,
            )
        )


if __name__ == "__main__":
    main()
