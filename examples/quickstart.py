#!/usr/bin/env python
"""Quickstart: Hartree-Fock on a small molecule, serial and distributed.

Runs RHF/STO-3G on water with the sequential reference, then repeats the
converged-density Fock construction with the paper's distributed GTFock
algorithm on a simulated 4-process machine and shows the two agree to
machine precision.

Usage:  python examples/quickstart.py
"""

import numpy as np

from repro.chem import water
from repro.chem.basis.basisset import BasisSet
from repro.fock import gtfock_build
from repro.integrals.engine import MDEngine
from repro.integrals.oneelec import core_hamiltonian
from repro.scf import RHF
from repro.scf.fock import fock_matrix


def main() -> None:
    mol = water()
    print(f"Molecule: {mol.formula} ({mol.natoms} atoms, {mol.nelectrons} electrons)")

    # 1. full self-consistent field calculation (Algorithm 1 of the paper)
    scf = RHF(mol, basis_name="sto-3g")
    result = scf.run()
    print(f"RHF/STO-3G energy : {result.energy:.6f} hartree")
    print(f"converged         : {result.converged} in {result.iterations} iterations")
    print(f"nuclear repulsion : {result.nuclear_repulsion:.6f} hartree")

    # 2. rebuild the final Fock matrix with the distributed algorithm
    basis = BasisSet.build(mol, "sto-3g")
    engine = MDEngine(basis)
    hcore = core_hamiltonian(basis)
    f_serial = fock_matrix(engine, hcore, result.density, tau=1e-11)
    dist = gtfock_build(MDEngine(basis), hcore, result.density, nproc=4, tau=1e-11)
    err = np.max(np.abs(dist.fock - f_serial))
    print(f"\nGTFock on 4 simulated processes vs sequential reference:")
    print(f"  max |dF|        : {err:.2e}")
    print(f"  steals          : {len(dist.outcome.steals)}")
    print(f"  comm volume     : {dist.stats.volume_mb_per_process():.3f} MB/process")
    print(f"  GA calls        : {dist.stats.calls_per_process():.0f}/process")
    assert err < 1e-10


if __name__ == "__main__":
    main()
