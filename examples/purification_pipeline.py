#!/usr/bin/env python
"""Diagonalization-free HF iteration: Fock build + SUMMA purification.

Reproduces the Sec IV-E pipeline end to end at laptop scale: a
distributed GTFock Fock build followed by distributed canonical
purification with SUMMA matrix multiplies, on the same 2-D blocked
layout -- then checks the density against diagonalization and prints the
Table IX-style timing split at paper scale from the cost model.

Usage:  python examples/purification_pipeline.py
"""

import numpy as np

from repro.chem import water
from repro.chem.basis.basisset import BasisSet
from repro.dist.purification_dist import purification_time_model, purify_distributed
from repro.fock import gtfock_build
from repro.integrals.engine import MDEngine
from repro.integrals.oneelec import core_hamiltonian, overlap
from repro.runtime.machine import LONESTAR
from repro.scf.guess import core_guess
from repro.scf.orthogonalization import density_from_fock, orthogonalizer


def main() -> None:
    mol = water()
    basis = BasisSet.build(mol, "sto-3g")
    nocc = mol.nelectrons // 2
    s = overlap(basis)
    h = core_hamiltonian(basis)
    x = orthogonalizer(s)
    d = core_guess(h, x, nocc)

    # distributed Fock build (Algorithm 4)
    build = gtfock_build(MDEngine(basis), h, d, nproc=4, tau=1e-11)
    print(f"Fock build on 4 simulated processes: "
          f"{build.stats.volume_mb_per_process():.3f} MB/proc moved")

    # distributed purification on the same 2-D layout (Sec IV-E)
    f_ortho = x.T @ build.fock @ x
    pur = purify_distributed(f_ortho, nocc, nproc=4, config=LONESTAR)
    d_pur = x @ pur.density @ x.T
    d_diag, _eps, _c = density_from_fock(build.fock, x, nocc)
    print(f"purification: {pur.iterations} iterations, converged={pur.converged}")
    print(f"max |D_purify - D_diagonalize| = {np.max(np.abs(d_pur - d_diag)):.2e}")

    # Table IX at paper scale from the cost model (C150H30: nbf = 2250)
    print("\nTable IX-style split for C150H30 (model, 45 purification iters):")
    for cores in (12, 192, 1944, 3888):
        nodes = max(1, cores // LONESTAR.cores_per_node)
        t_purf = purification_time_model(2250, nodes, LONESTAR, iterations=45)
        print(f"  {cores:5d} cores: T_purf = {t_purf:8.3f} s")


if __name__ == "__main__":
    main()
