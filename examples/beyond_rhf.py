#!/usr/bin/env python
"""Beyond closed-shell RHF: UHF, MP2, and density-fitted Coulomb.

The paper frames fast Fock builds as the foundation for everything above
them; this demo exercises the library's upper floors on H2:

* UHF symmetry breaking along the dissociation curve (RHF fails at
  stretched geometries; UHF with guess mixing finds the broken-symmetry
  solution);
* the MP2 correlation energy at equilibrium;
* RI density fitting of the Coulomb matrix, the software analogue of the
  "faster integrals" future the paper's Sec III-G analysis anticipates.

Usage:  python examples/beyond_rhf.py
"""


from repro.chem import h2
from repro.chem.basis.basisset import BasisSet
from repro.integrals.engine import MDEngine
from repro.scf import RHF, UHF, RIJBuilder, mp2_energy
from repro.scf.fock import build_jk


def main() -> None:
    print("H2 dissociation: RHF vs broken-symmetry UHF (hartree)")
    print(f"{'R (A)':>6s} {'RHF':>12s} {'UHF':>12s} {'UHF-RHF':>10s}")
    for r in (0.74, 1.2, 1.8, 2.5, 3.5):
        e_rhf = RHF(h2(r)).run().energy
        e_uhf = UHF(h2(r), guess_mix=0.4).run().energy
        print(f"{r:6.2f} {e_rhf:12.6f} {e_uhf:12.6f} {e_uhf - e_rhf:10.6f}")
    print("UHF detaches below RHF once the bond stretches -- the correct")
    print("dissociation limit (two H atoms: 2 x -0.4666 = -0.9332).\n")

    mol = h2(0.7414)
    basis = BasisSet.build(mol, "sto-3g")
    scf = RHF(mol).run()
    mp2 = mp2_energy(basis, scf, nocc=1)
    print(f"MP2 at equilibrium: E(RHF) = {scf.energy:.6f}, "
          f"E2 = {mp2.correlation_energy:.6f}, "
          f"total = {mp2.total_energy:.6f}")

    j_exact, _ = build_jk(MDEngine(basis), scf.density, 0.0)
    ri = RIJBuilder.build(basis)
    err = ri.fitting_error(scf.density, j_exact)
    print(f"\nRI-J with a {ri.aux.nbf}-function even-tempered auxiliary "
          f"basis: max |J_RI - J| = {err:.2e}")


if __name__ == "__main__":
    main()
