"""Command-line interface: ``python -m repro <command>``.

Commands
--------
scf MOLECULE [--basis NAME]     run RHF on a built-in molecule
                                (``--guard`` arms the convergence guard)
table{2..9} / fig1 / fig2       regenerate one evaluation artifact
model                           Sec III-G performance-model analysis
ablation {reorder,steal,grain}  design-choice ablations
report MOLECULE [--out PATH]    self-contained HTML run report; pass a
                                run *directory* instead of a molecule to
                                render a persisted run after the fact
analyze MOLECULE [--cores N]    critical-path analysis of a simulated
                                GTFock build: exact per-rank time
                                decomposition, blame table, what-if
                                projections (``--check`` gates the
                                invariants -- the CI gate)
chaos MOLECULE [--seed N]       fault-injected build, verified vs fault-free
                                (``--family scf`` = NaN/Inf ERI corruption;
                                ``--family service`` = seeded SIGKILLs of
                                real queue workers, jobs must still finish;
                                ``--family sdc`` = silent bit flips into
                                checkpoints, stored ERI blocks, accumulate
                                payloads, and in-flight matrices -- every
                                one must be detected and repaired)
verify DIR [--json PATH]        offline integrity audit: re-checksum every
                                store / checkpoint / run ledger under DIR;
                                exit 1 if anything fails verification
serve [--workers N] [--drain]   run the SCF-as-a-service worker pool over
                                a durable job queue (``--queue DIR``)
submit MOLECULE [--basis NAME]  enqueue an SCF job (returns its job id)
status [--json PATH]            job table + per-state counts of the queue
cancel JOB_ID                   cancel a queued/leased/running job
drain [--timeout S]             wait until the queue is empty; exit 0 only
                                if every job ended ``done``
torture [--quick]               SCF torture suite under the convergence guard
perf profile [MOLECULE]         profiled RHF: phase table + cProfile hotspots
perf check [--quick]            grade the BENCH_*.json perf trajectories
                                (exits nonzero on FAIL -- the CI gate)
perf history                    print the tracked-metric trajectories
info                            provenance: versions, git SHA, CPU count
list                            list built-in molecules and bases

Every command accepts ``--trace PATH`` (Chrome trace-event JSON --
open it at https://ui.perfetto.dev -- or raw span records with a
``.jsonl`` extension), ``--metrics PATH`` (JSON, or Prometheus text
exposition with a ``.prom`` extension), ``--profile`` (phase wall/CPU
attribution, table printed on exit), and ``--run-dir DIR`` (durable run
ledger: manifest.json + metrics.jsonl + summary.json, renderable later
with ``repro report DIR``).  See ``docs/OBSERVABILITY.md``.

Set ``REPRO_FULL=1`` to run evaluation commands at the paper's exact
molecule sizes.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.chem.basis.basisset import BASIS_REGISTRY, BasisSet
from repro.chem.builders import PAPER_MOLECULES, SCALED_MOLECULES, paper_molecule


def _build_molecule(name: str):
    """A built-in demo molecule or a paper molecule/stand-in by name."""
    from repro.chem import builders

    simple = {
        "water": builders.water,
        "h2": builders.h2,
        "methane": builders.methane,
        "benzene": builders.benzene,
    }
    if name in simple:
        return simple[name]()
    return paper_molecule(name)


def _run_scf(args: argparse.Namespace) -> int:
    from repro.scf import RHF, GuardConfig

    mol = _build_molecule(args.molecule)
    guard = None
    if args.guard:
        guard = GuardConfig(
            patience=args.guard_patience,
            window=args.guard_window,
            max_nonfinite=args.guard_max_nonfinite,
        )
    print(f"RHF/{args.basis} on {mol.formula} ({mol.nelectrons} electrons)")
    rhf = RHF(
        mol,
        basis_name=args.basis,
        use_diis=not args.no_diis,
        max_iter=args.max_iter,
        guard=guard,
        integral_store=args.store,
        jk_threads=args.jk_threads,
        integrity=args.integrity,
    )
    result = rhf.run()
    print(f"energy      = {result.energy:.8f} hartree")
    print(f"converged   = {result.converged} ({result.iterations} iterations)")
    store = rhf.engine.integral_store
    if store is not None:
        st = store.stats()
        print(
            f"store       = {st['nblocks']} blocks, "
            f"{st['nbytes'] / 2**20:.2f} MiB at {st['path']} "
            f"(served {rhf.engine.quartets_served_from_store}, "
            f"computed {rhf.engine.quartets_computed})"
        )
    if result.orbital_energies is not None:
        from repro.scf.properties import orbital_summary

        summary = orbital_summary(result.orbital_energies, mol.nelectrons // 2)
        print(f"HOMO        = {summary.homo:.6f}")
        if summary.lumo is not None:
            print(f"LUMO        = {summary.lumo:.6f}  (gap {summary.gap:.6f})")
    if result.guard_summary is not None:
        g = result.guard_summary
        print(
            f"guard       = {g['events']} events, rung {g['level']}, "
            f"final state {g['final_state']}"
        )
        for line in [ev.describe() for ev in result.guard_events]:
            print(f"  {line}")
    if result.integrity_summary is not None:
        s = result.integrity_summary
        print(
            f"integrity   = {s['checks_total']} checks, "
            f"{s['detections_total']} corruptions detected, "
            f"{s['recoveries_total']} recoveries"
        )
    return 0 if result.converged else 1


def _run_torture(args: argparse.Namespace) -> int:
    import json

    from repro.obs.report import render_torture_report
    from repro.scf.torture import run_torture, torture_json, torture_table

    outcomes = run_torture(quick=args.quick, vanilla=not args.no_vanilla)
    for line in torture_table(outcomes):
        print(line)
    records = torture_json(outcomes)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(render_torture_report(records))
        print(f"torture report written to {args.report}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(records, fh, indent=2, sort_keys=True)
        print(f"torture summary written to {args.json}")
    failed = [o for o in outcomes if not o.passed]
    if failed:
        print(
            "torture gate FAILED for: "
            + ", ".join(o.case.name for o in failed),
            file=sys.stderr,
        )
        return 1
    return 0


def _run_experiment(name: str) -> int:
    from repro.bench import experiments as e

    dispatch = {
        "table2": e.table2_molecules,
        "table3": e.table3_times,
        "table4": e.table4_speedup,
        "table5": e.table5_t_int,
        "table6": e.table6_volume,
        "table7": e.table7_calls,
        "table8": e.table8_load_balance,
        "table9": e.table9_purification,
        "fig1": e.figure1_footprint,
        "fig2": e.figure2_overhead,
        "model": e.model_analysis,
    }
    print(dispatch[name]().text)
    return 0


def _run_ablation(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.fock.ablation import (
        granularity_ablation,
        reordering_ablation,
        stealing_ablation,
    )
    from repro.fock.screening_map import ScreeningMap
    from repro.integrals.schwarz import schwarz_model

    mol = paper_molecule(args.molecule)
    basis = BasisSet.build(mol, "vdz-sim")
    if args.kind == "reorder":
        rng = np.random.default_rng(0)
        scrambled = basis.permuted(rng.permutation(basis.nshells))
        rows = reordering_ablation(scrambled)
    else:
        from repro.fock.reorder import reorder_basis

        rb = reorder_basis(basis)
        screen = ScreeningMap(rb, schwarz_model(rb), 1e-10)
        if args.kind == "steal":
            rows = stealing_ablation(rb, screen)
        else:
            rows = granularity_ablation(rb, screen)
    for row in rows:
        print(row)
    return 0


def _run_report(args: argparse.Namespace) -> int:
    from repro.obs.report import run_report, write_report

    if os.path.isdir(args.molecule) or os.sep in args.molecule:
        # a run directory, not a molecule: render the persisted ledger
        from repro.obs.manifest import LedgerError, load_run
        from repro.obs.report import render_ledger_report

        try:
            record = load_run(args.molecule)
        except LedgerError as exc:
            print(f"repro report: {exc}", file=sys.stderr)
            return 2
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(render_ledger_report(record))
        print(f"report for run {record.title} written to {args.out}")
        return 0

    report, _result = run_report(
        molecule=args.molecule,
        basis_name=args.basis,
        nproc=args.nproc,
        with_trace=not args.no_embedded_trace,
        scf_guard=args.scf_guard,
    )
    write_report(args.out, report)
    print(report.validation.text())
    print(f"report written to {args.out}")
    if args.check and not report.validation.passed:
        print(
            "model validation FAILED (a deviation exceeded its fail "
            "threshold; see docs/OBSERVABILITY.md)",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_analyze(args: argparse.Namespace) -> int:
    import json

    from repro.fock.reorder import reorder_basis
    from repro.fock.screening_map import ScreeningMap
    from repro.fock.simulate import SimCapture, simulate_gtfock
    from repro.integrals import schwarz_model
    from repro.obs import Tracer, get_tracer
    from repro.obs.critpath import analyze
    from repro.obs.manifest import get_ledger

    mol = _build_molecule(args.molecule)
    basis = reorder_basis(BasisSet.build(mol, args.basis))
    screen = ScreeningMap(basis, schwarz_model(basis), args.tau)
    # path extraction needs the run traced: use the ambient tracer when
    # --trace armed one, otherwise a local throwaway
    tracer = get_tracer()
    if not tracer.enabled:
        tracer = Tracer("analyze")
    capture = SimCapture()
    simulate_gtfock(
        basis, screen, args.cores, tracer=tracer, capture=capture
    )
    analysis = analyze(
        capture,
        resim=not args.no_resim,
        network_scale=args.network_scale,
    )
    print(analysis.text())
    analysis.export_metrics()
    get_ledger().add_summary(critpath=analysis.summary())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(analysis.to_json(), fh, indent=2)
        print(f"analysis JSON written to {args.json}", file=sys.stderr)
    if args.report:
        from repro.obs.report import render_critpath_report

        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(render_critpath_report(analysis))
        print(
            f"critical-path report written to {args.report}", file=sys.stderr
        )
    if args.check:
        try:
            analysis.check()
        except AssertionError as exc:
            print(f"analyze check FAILED: {exc}", file=sys.stderr)
            return 1
        print("analyze check: decomposition exact, what-ifs within tolerance")
    return 0


def _run_scf_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.fock.chaos import run_scf_chaos

    cres = run_scf_chaos(
        molecule=args.molecule,
        basis_name=args.basis,
        seed=args.seed,
        quartet_nan_rate=args.quartet_nan_rate,
        tolerance=args.tolerance,
    )
    print(f"scf chaos run: {cres.molecule}/{cres.basis_name}")
    for line in cres.summary_lines():
        print(f"  {line}")
    if args.json:
        payload = {
            "family": "scf",
            "molecule": cres.molecule,
            "basis": cres.basis_name,
            "seed": cres.plan.seed,
            "fock_error": cres.fock_error,
            "energy_error": cres.energy_error,
            "tolerance": cres.tolerance,
            "quartets_corrupted": cres.quartets_corrupted,
            "eri_rescues": cres.eri_rescues,
            "passed": cres.passed,
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"chaos summary written to {args.json}")
    if not cres.passed:
        print(
            f"scf chaos invariant FAILED: max |dF| {cres.fock_error:.3e} "
            f"(tolerance {cres.tolerance:.0e}), "
            f"{cres.quartets_corrupted} corrupted vs "
            f"{cres.eri_rescues} rescued",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_sdc_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.fock.chaos import run_sdc_chaos

    cres = run_sdc_chaos(
        molecule=args.molecule,
        basis_name=args.basis,
        seed=args.seed,
        tolerance=args.tolerance,
        workdir=args.workdir,
    )
    print(f"sdc chaos run: {cres.molecule}/{cres.basis_name}")
    for line in cres.summary_lines():
        print(f"  {line}")
    if args.workdir:
        print(f"  corrupted work tree kept at {args.workdir} "
              "(audit it with 'repro verify')")
    if args.json:
        payload = {
            "family": "sdc",
            "molecule": cres.molecule,
            "basis": cres.basis_name,
            "seed": cres.plan.seed,
            "fock_error": cres.fock_error,
            "energy_error": cres.energy_error,
            "tolerance": cres.tolerance,
            "injected": cres.injected,
            "detected": cres.detected,
            "silent": cres.silent,
            "false_positives": cres.false_positives,
            "ga_error": cres.ga_error,
            "checkpoint_intact": cres.checkpoint_intact,
            "overhead": cres.overhead,
            "passed": cres.passed,
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"chaos summary written to {args.json}")
    if not cres.passed:
        print(
            "sdc chaos invariant FAILED: "
            f"{cres.silent_total} silent corruption(s), "
            f"{cres.false_positives} false positive(s), "
            f"max |dE| {cres.energy_error:.3e} "
            f"(tolerance {cres.tolerance:.0e})",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_verify(args: argparse.Namespace) -> int:
    import json

    from repro.obs.verify import verify_tree

    report = verify_tree(args.directory)
    for line in report.summary_lines():
        print(line)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_json(), fh, indent=2, sort_keys=True)
        print(f"verify report written to {args.json}")
    return 0 if report.clean else 1


def _run_serve(args: argparse.Namespace) -> int:
    from repro.service import serve

    result = serve(
        args.queue,
        workers=args.workers,
        poll_s=args.poll,
        drain=args.drain,
        grace_s=args.grace,
        wall_limit_s=args.wall_limit,
        verbose=True,
    )
    for line in result.summary_lines():
        print(line)
    if args.drain and not result.drained:
        print("serve: queue not drained (wall limit hit?)", file=sys.stderr)
        return 1
    return 0


def _run_submit(args: argparse.Namespace) -> int:
    from repro.service import JobStore

    spec: dict = {"kind": "scf", "molecule": args.molecule, "basis": args.basis}
    if args.jk_threads is not None:
        spec["jk_threads"] = args.jk_threads
    if args.cache_mb is not None:
        spec["cache_mb"] = args.cache_mb
    if args.store:
        spec["store_dir"] = args.store
    if args.guard:
        spec["guard"] = True
    if args.integrity:
        spec["integrity"] = True
    if args.max_iter is not None:
        spec["max_iter"] = args.max_iter
    store = JobStore(args.queue)
    job = store.submit(
        spec,
        priority=args.priority,
        max_attempts=args.max_attempts,
        timeout_s=args.timeout,
        lease_s=args.lease,
    )
    print(f"submitted job {job.id}: {args.molecule}/{args.basis} "
          f"(priority {job.priority}, dir {job.job_dir})")
    return 0


def _run_status(args: argparse.Namespace) -> int:
    import json

    from repro.obs import get_metrics
    from repro.obs.metrics import export_service
    from repro.service import JobStore

    store = JobStore(args.queue)
    jobs = store.jobs()
    if jobs:
        print(f"{'id':>5} {'state':<12} {'att':>3} {'job':<22} "
              f"{'owner':<8} result/error")
        for job in jobs:
            what = job.spec.get("molecule", job.spec.get("kind", "?"))
            basis = job.spec.get("basis", "")
            label = f"{what}/{basis}" if basis else str(what)
            tail = ""
            if job.result is not None and "energy" in job.result:
                tail = f"E = {job.result['energy']:.10f}"
            elif job.result is not None:
                tail = "ok"
            elif job.error:
                tail = job.error.strip().splitlines()[-1][:50]
            print(f"{job.id:>5} {job.state:<12} {job.attempts:>3} "
                  f"{label:<22} {job.lease_owner or '-':<8} {tail}")
    counts = store.counts()
    print("counts:", ", ".join(f"{k} {v}" for k, v in counts.items() if v)
          or "empty queue")
    export_service(store.stats(), registry=get_metrics())
    if args.json:
        payload = {
            "counts": counts,
            "events": store.event_counts(),
            "jobs": [
                {
                    "id": j.id, "state": j.state, "attempts": j.attempts,
                    "spec": j.spec, "result": j.result, "error": j.error,
                    "job_dir": j.job_dir,
                }
                for j in jobs
            ],
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"status written to {args.json}")
    return 0


def _run_cancel(args: argparse.Namespace) -> int:
    from repro.service import JobStore

    store = JobStore(args.queue)
    try:
        job = store.get(args.job_id)
    except KeyError as exc:
        print(f"repro cancel: {exc.args[0]}", file=sys.stderr)
        return 2
    if store.cancel(args.job_id):
        print(f"cancelled job {args.job_id}")
        return 0
    print(
        f"repro cancel: job {args.job_id} already terminal ({job.state})",
        file=sys.stderr,
    )
    return 1


def _run_drain(args: argparse.Namespace) -> int:
    import time as _time

    from repro.service import JobStore

    store = JobStore(args.queue)
    deadline = _time.time() + args.timeout
    while not store.drained():
        if _time.time() > deadline:
            counts = store.counts()
            print(
                "drain: timed out with jobs still in flight: "
                + ", ".join(f"{k} {v}" for k, v in counts.items() if v),
                file=sys.stderr,
            )
            return 2
        _time.sleep(args.poll)
    counts = store.counts()
    print("drained:", ", ".join(f"{k} {v}" for k, v in counts.items() if v)
          or "empty queue")
    bad = counts["failed"] + counts["quarantined"]
    if bad:
        print(
            f"drain: {bad} job(s) ended failed/quarantined "
            "(see 'repro status')",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_service_chaos(args: argparse.Namespace) -> int:
    import json
    import tempfile

    from repro.service import run_service_chaos

    queue = args.queue or tempfile.mkdtemp(prefix="repro-service-chaos-")
    cres = run_service_chaos(
        queue,
        njobs=args.jobs,
        workers=args.workers,
        kills=args.kills,
        seed=args.seed,
        molecule=args.molecule,
        basis=args.service_basis,
        tolerance=args.tolerance,
        lease_s=args.lease,
    )
    print(
        f"service chaos run: {cres.njobs} jobs on {cres.workers} workers, "
        f"queue {queue}"
    )
    for line in cres.summary_lines():
        print(f"  {line}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(cres.to_json(), fh, indent=2, sort_keys=True)
        print(f"chaos summary written to {args.json}")
    if not cres.passed:
        print(
            "service chaos invariant FAILED: "
            f"{cres.counts.get('done', 0)}/{cres.njobs} done, "
            f"max |dE| {cres.max_energy_error:.3e} "
            f"(tolerance {cres.tolerance:.0e}), "
            f"{cres.double_records} double records",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.fock.chaos import run_chaos
    from repro.obs import get_metrics, get_tracer
    from repro.obs.metrics import export_faults
    from repro.obs.report import chaos_report, write_report
    from repro.obs.trace import Tracer

    if args.family == "scf":
        return _run_scf_chaos(args)
    if args.family == "service":
        return _run_service_chaos(args)
    if args.family == "sdc":
        return _run_sdc_chaos(args)

    # capture the faulted run for the report's embedded trace; reuse an
    # installed (--trace) tracer so both outputs describe the same run
    ambient = get_tracer()
    if ambient.enabled:
        tracer = ambient
    elif args.report:
        tracer = Tracer("repro-chaos")
    else:
        tracer = None
    cres = run_chaos(
        molecule=args.molecule,
        basis_name=args.basis,
        nproc=args.nproc,
        seed=args.seed,
        ndeaths=args.deaths,
        nstragglers=args.stragglers,
        op_fail_rate=args.op_fail_rate,
        delay_rate=args.delay_rate,
        tolerance=args.tolerance,
        tracer=tracer,
    )
    print(
        f"chaos run: {cres.molecule}/{cres.basis_name} on "
        f"{cres.nproc} simulated processes"
    )
    for line in cres.summary_lines():
        print(f"  {line}")
    if cres.faulty.faults is not None:
        export_faults(
            cres.faulty.faults, cres.faulty.outcome, registry=get_metrics()
        )
    if args.report:
        report = chaos_report(
            cres, trace=tracer.chrome_trace() if tracer is not None else None
        )
        write_report(args.report, report)
        print(f"chaos report written to {args.report}")
    if args.json:
        payload = {
            "molecule": cres.molecule,
            "basis": cres.basis_name,
            "nproc": cres.nproc,
            "seed": cres.plan.seed,
            "fock_error": cres.fock_error,
            "energy_error": cres.energy_error,
            "tolerance": cres.tolerance,
            "passed": cres.passed,
            "overhead": cres.overhead,
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"chaos summary written to {args.json}")
    if not cres.passed:
        print(
            f"chaos invariant FAILED: max |dF| {cres.fock_error:.3e} exceeds "
            f"{cres.tolerance:.0e}",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_info() -> int:
    from repro.obs.manifest import provenance

    pv = provenance()
    width = max(len(k) for k in pv)
    for key in (
        "package", "version", "git_sha", "python", "numpy", "scipy",
        "platform", "cpu_count",
    ):
        print(f"{key:<{width}} = {pv[key]}")
    return 0


#: default BENCH history files graded by ``repro perf check`` (cwd-relative:
#: run from the repo root, or point --history elsewhere)
_DEFAULT_HISTORIES = (
    "BENCH_eri.json", "BENCH_fock.json", "BENCH_service.json",
)


def _run_perf_profile(args: argparse.Namespace) -> int:
    from repro.obs.manifest import get_ledger
    from repro.obs.profile import (
        PhaseProfiler,
        hotspot_text,
        profile_hotspots,
        set_profiler,
    )
    from repro.scf import RHF

    mol = _build_molecule(args.molecule)
    print(
        f"profiled RHF/{args.basis} on {mol.formula} "
        f"(cProfile top {args.top}"
        + (", tracemalloc phase attribution" if args.alloc else "")
        + ")"
    )
    profiler = PhaseProfiler(alloc=args.alloc)
    prev = set_profiler(profiler)
    try:
        result, hotspots = profile_hotspots(
            lambda: RHF(
                mol, basis_name=args.basis, max_iter=args.max_iter
            ).run(),
            top=args.top,
        )
    finally:
        set_profiler(prev)
    print(f"energy      = {result.energy:.8f} hartree")
    print(f"converged   = {result.converged} ({result.iterations} iterations)")
    print()
    print(profiler.table())
    print()
    print(hotspot_text(hotspots))
    profiler.export_metrics()
    get_ledger().attach_profile(profiler, hotspots)
    profiler.close()
    return 0 if result.converged else 1


def _run_perf_check(args: argparse.Namespace) -> int:
    import json

    from repro.obs.regress import grade

    histories = args.history or list(_DEFAULT_HISTORIES)
    report = grade(
        histories, quick=args.quick, window=args.last, runs=args.runs
    )
    print(report.text())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_json(), fh, indent=2, sort_keys=True)
        print(f"check summary written to {args.json}")
    if not report.passed:
        print(
            "perf check FAILED: a tracked metric regressed beyond its "
            "fail threshold (see docs/PERFORMANCE.md)",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_perf_history(args: argparse.Namespace) -> int:
    from repro.obs.regress import history_text

    histories = args.history or list(_DEFAULT_HISTORIES)
    print(history_text(histories, last=args.points))
    return 0


def _run_perf(args: argparse.Namespace) -> int:
    if args.perf_command == "profile":
        return _run_perf_profile(args)
    if args.perf_command == "check":
        return _run_perf_check(args)
    return _run_perf_history(args)


def _run_list() -> int:
    print("paper molecules :", ", ".join(sorted(PAPER_MOLECULES)))
    print("scaled stand-ins:", ", ".join(sorted(SCALED_MOLECULES)))
    print("demo molecules  : water, h2, methane, benzene")
    print("basis sets      :", ", ".join(sorted(BASIS_REGISTRY)))
    return 0


def _obs_flags() -> argparse.ArgumentParser:
    """Shared observability flags for every subcommand."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a trace: Chrome trace-event JSON (Perfetto-loadable),"
        " or raw span records if PATH ends in .jsonl",
    )
    parent.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write collected metrics: JSON, or Prometheus text"
        " exposition if PATH ends in .prom",
    )
    parent.add_argument(
        "--profile",
        action="store_true",
        help="attribute wall/CPU time to named pipeline phases; the phase"
        " table is printed on exit (and lands in the run ledger)",
    )
    parent.add_argument(
        "--run-dir",
        metavar="DIR",
        default=None,
        help="write a durable run directory (manifest.json, metrics.jsonl,"
        " summary.json); render it later with 'repro report DIR'",
    )
    return parent


class _VersionAction(argparse.Action):
    """``--version``: the provenance block's one-line form (lazy imports)."""

    def __call__(self, parser, namespace, values, option_string=None):
        from repro.obs.manifest import provenance

        pv = provenance()
        print(
            f"repro {pv['version']} (git {pv['git_sha'][:12]}, "
            f"python {pv['python']}, numpy {pv['numpy']}, "
            f"scipy {pv['scipy']})"
        )
        parser.exit(0)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "--version", action=_VersionAction, nargs=0,
        help="print version, git SHA, and library versions, then exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    obs_flags = _obs_flags()

    p_scf = sub.add_parser(
        "scf", help="run RHF on a built-in molecule", parents=[obs_flags]
    )
    p_scf.add_argument("molecule")
    p_scf.add_argument("--basis", default="sto-3g")
    p_scf.add_argument("--max-iter", type=int, default=100)
    p_scf.add_argument(
        "--no-diis", action="store_true", help="disable DIIS acceleration"
    )
    p_scf.add_argument(
        "--store", metavar="DIR", default=None,
        help="directory for the memory-mapped stored-integral layer "
        "(conventional SCF: iterations after the first recompute zero "
        "ERIs; see docs/PERFORMANCE.md)",
    )
    p_scf.add_argument(
        "--jk-threads", type=int, default=None, metavar="N",
        help="worker threads for the class-batched J/K contraction "
        "(default: REPRO_JK_THREADS or serial)",
    )
    p_scf.add_argument(
        "--guard", action="store_true",
        help="arm the convergence guard (watchdog + remediation ladder; "
        "see docs/ROBUSTNESS.md)",
    )
    p_scf.add_argument(
        "--guard-patience", type=int, default=2, metavar="N",
        help="bad classifications before escalating one ladder rung",
    )
    p_scf.add_argument(
        "--guard-window", type=int, default=6, metavar="N",
        help="history length the classifier looks back over",
    )
    p_scf.add_argument(
        "--guard-max-nonfinite", type=int, default=3, metavar="N",
        help="non-finite events tolerated before aborting with GuardError",
    )
    p_scf.add_argument(
        "--integrity", action="store_true",
        help="arm the data-integrity layer: ABFT checks on F/D each "
        "iteration, CRC-verified stored-integral reads, verified "
        "recovery (see docs/ROBUSTNESS.md)",
    )

    for name in (
        "table2", "table3", "table4", "table5", "table6", "table7",
        "table8", "table9", "fig1", "fig2", "model",
    ):
        sub.add_parser(name, help=f"regenerate {name}", parents=[obs_flags])

    p_abl = sub.add_parser(
        "ablation", help="design-choice ablations", parents=[obs_flags]
    )
    p_abl.add_argument("kind", choices=["reorder", "steal", "grain"])
    p_abl.add_argument("--molecule", default="C24H12")

    p_rep = sub.add_parser(
        "report",
        help="run a numeric Fock build and write an HTML run report",
        parents=[obs_flags],
    )
    p_rep.add_argument("molecule", nargs="?", default="water")
    p_rep.add_argument("--basis", default="6-31g")
    p_rep.add_argument("--nproc", type=int, default=4)
    p_rep.add_argument("--out", default="run-report.html", metavar="PATH")
    p_rep.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero if any model-vs-measured deviation FAILs",
    )
    p_rep.add_argument(
        "--no-embedded-trace",
        action="store_true",
        help="skip embedding the Perfetto trace in the report",
    )
    p_rep.add_argument(
        "--scf-guard",
        action="store_true",
        help="run a guarded RHF of the same system first and include "
        "its convergence-guard section in the report",
    )

    p_an = sub.add_parser(
        "analyze",
        help="critical-path analysis + what-if projections of a simulated "
        "GTFock build (see docs/OBSERVABILITY.md)",
        parents=[obs_flags],
    )
    p_an.add_argument("molecule", nargs="?", default="water")
    p_an.add_argument("--basis", default="sto-3g")
    p_an.add_argument(
        "--cores", type=int, default=48,
        help="total simulated cores (ranks = cores // cores_per_node)",
    )
    p_an.add_argument(
        "--tau", type=float, default=1e-10, help="screening threshold"
    )
    p_an.add_argument(
        "--network-scale", type=float, default=2.0, metavar="F",
        help="slowdown factor of the network what-if (latency xF, "
        "bandwidth /F)",
    )
    p_an.add_argument(
        "--no-resim", action="store_true",
        help="skip the what-if re-simulation cross-checks (faster; "
        "verdicts stay PROJECTED)",
    )
    p_an.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the full analysis as JSON",
    )
    p_an.add_argument(
        "--report", default=None, metavar="PATH",
        help="also write the critical-path HTML report",
    )
    p_an.add_argument(
        "--check", action="store_true",
        help="exit nonzero if the exact-decomposition invariant drifts "
        "or any cross-checked what-if FAILs",
    )

    p_chaos = sub.add_parser(
        "chaos",
        help="run a fault-injected numeric build and verify it against "
        "the fault-free run (see docs/ROBUSTNESS.md)",
        parents=[obs_flags],
    )
    p_chaos.add_argument("molecule", nargs="?", default="water")
    p_chaos.add_argument("--basis", default="sto-3g")
    p_chaos.add_argument("--nproc", type=int, default=4)
    p_chaos.add_argument(
        "--family", choices=["runtime", "scf", "service", "sdc"],
        default="runtime",
        help="runtime = rank deaths / lossy ops on the simulated machine; "
        "scf = seeded NaN/Inf corruption of batched ERI blocks, rescued "
        "by the convergence guard's sentinel; service = seeded SIGKILLs "
        "of real queue workers -- every job must still reach done with "
        "its fault-free energy; sdc = silent bit flips into checkpoint "
        "files, stored ERI blocks, accumulate payloads, and in-flight "
        "F/D matrices -- every one must be detected and repaired, and "
        "the run must still land on the clean energy",
    )
    p_chaos.add_argument(
        "--workdir", default=None, metavar="DIR",
        help="(sdc family) work tree for stores/checkpoints; kept after "
        "the run so 'repro verify' can audit the planted corruption "
        "(default: a tempdir, removed on exit)",
    )
    p_chaos.add_argument(
        "--jobs", type=int, default=8,
        help="(service family) jobs to submit",
    )
    p_chaos.add_argument(
        "--workers", type=int, default=3,
        help="(service family) worker processes in the pool",
    )
    p_chaos.add_argument(
        "--kills", type=int, default=2,
        help="(service family) seeded worker SIGKILLs to inject",
    )
    p_chaos.add_argument(
        "--queue", default=None, metavar="DIR",
        help="(service family) queue directory (default: a fresh tempdir)",
    )
    p_chaos.add_argument(
        "--lease", type=float, default=2.0, metavar="S",
        help="(service family) job lease duration in seconds",
    )
    p_chaos.add_argument(
        "--service-basis", default="6-31g", metavar="NAME",
        help="(service family) basis for the submitted jobs (6-31g "
        "default: jobs must outlive the kill window to be interesting)",
    )
    p_chaos.add_argument(
        "--quartet-nan-rate", type=float, default=0.05,
        help="(scf family) per-quartet corruption probability",
    )
    p_chaos.add_argument(
        "--seed", type=int, default=0,
        help="seed of the random fault plan (same seed -> same run)",
    )
    p_chaos.add_argument(
        "--deaths", type=int, default=1, help="ranks to kill mid-run"
    )
    p_chaos.add_argument(
        "--stragglers", type=int, default=1, help="slowed-down ranks"
    )
    p_chaos.add_argument("--op-fail-rate", type=float, default=0.05)
    p_chaos.add_argument("--delay-rate", type=float, default=0.05)
    p_chaos.add_argument(
        "--tolerance", type=float, default=1e-12,
        help="max allowed |dF| vs the fault-free build",
    )
    p_chaos.add_argument(
        "--report", default=None, metavar="PATH",
        help="also write the chaos HTML run report",
    )
    p_chaos.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write a JSON summary (errors + recovery overhead)",
    )

    # -- SCF-as-a-service (docs/ROBUSTNESS.md "Service resilience") ------
    def _queue_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--queue", default="repro-queue", metavar="DIR",
            help="queue directory (holds queue.db + per-job artifact dirs)",
        )

    p_serve = sub.add_parser(
        "serve",
        help="run the durable-queue worker pool (leases, retries, "
        "timeouts; see docs/ROBUSTNESS.md)",
        parents=[obs_flags],
    )
    _queue_flag(p_serve)
    p_serve.add_argument(
        "--workers", type=int, default=3, metavar="N",
        help="worker processes in the pool",
    )
    p_serve.add_argument(
        "--drain", action="store_true",
        help="exit once every job is terminal (instead of serving forever)",
    )
    p_serve.add_argument(
        "--poll", type=float, default=0.25, metavar="S",
        help="supervisor tick / worker idle-claim interval",
    )
    p_serve.add_argument(
        "--grace", type=float, default=2.0, metavar="S",
        help="SIGTERM-to-SIGKILL grace window for timed-out workers",
    )
    p_serve.add_argument(
        "--wall-limit", type=float, default=None, metavar="S",
        help="hard bound on the serve loop (CI safety net)",
    )

    p_sub = sub.add_parser(
        "submit", help="enqueue an SCF job on the durable queue",
        parents=[obs_flags],
    )
    p_sub.add_argument("molecule")
    p_sub.add_argument("--basis", default="sto-3g")
    _queue_flag(p_sub)
    p_sub.add_argument("--priority", type=int, default=0)
    p_sub.add_argument(
        "--max-attempts", type=int, default=5, metavar="N",
        help="attempts before the job is quarantined",
    )
    p_sub.add_argument(
        "--timeout", type=float, default=600.0, metavar="S",
        help="per-job wall-clock budget (exceeding it kills the worker)",
    )
    p_sub.add_argument(
        "--lease", type=float, default=30.0, metavar="S",
        help="lease duration; renewed by heartbeat every SCF iteration",
    )
    p_sub.add_argument("--max-iter", type=int, default=None)
    p_sub.add_argument(
        "--jk-threads", type=int, default=None, metavar="N",
        help="threaded J/K contraction width (dropped to 1 on "
        "MemoryError retries)",
    )
    p_sub.add_argument(
        "--cache-mb", type=float, default=None, metavar="MB",
        help="ERI quartet cache budget (released on MemoryError retries)",
    )
    p_sub.add_argument(
        "--store", default=None, metavar="DIR",
        help="shared stored-integral directory (cross-process file "
        "locking keeps concurrent fills safe)",
    )
    p_sub.add_argument(
        "--guard", action="store_true", help="arm the convergence guard"
    )
    p_sub.add_argument(
        "--integrity", action="store_true",
        help="arm the data-integrity layer (unrecoverable corruption "
        "quarantines the job instead of retrying it)",
    )

    p_stat = sub.add_parser(
        "status", help="job table + per-state counts of the durable queue",
        parents=[obs_flags],
    )
    _queue_flag(p_stat)
    p_stat.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the full job table as JSON",
    )

    p_cancel = sub.add_parser(
        "cancel", help="cancel a queued/leased/running job",
        parents=[obs_flags],
    )
    p_cancel.add_argument("job_id", type=int)
    _queue_flag(p_cancel)

    p_drain = sub.add_parser(
        "drain",
        help="wait until the queue is empty; exit 0 only if every job "
        "ended done",
        parents=[obs_flags],
    )
    _queue_flag(p_drain)
    p_drain.add_argument(
        "--timeout", type=float, default=600.0, metavar="S",
        help="give up (exit 2) after this long",
    )
    p_drain.add_argument(
        "--poll", type=float, default=0.5, metavar="S",
        help="poll interval",
    )

    p_verify = sub.add_parser(
        "verify",
        help="offline integrity audit of every store / checkpoint / run "
        "ledger under a directory (see docs/ROBUSTNESS.md)",
        parents=[obs_flags],
    )
    p_verify.add_argument("directory", metavar="DIR")
    p_verify.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the audit report as JSON",
    )

    p_tort = sub.add_parser(
        "torture",
        help="run the SCF torture suite under the convergence guard "
        "(see docs/ROBUSTNESS.md)",
        parents=[obs_flags],
    )
    p_tort.add_argument(
        "--quick", action="store_true", help="CI subset of the suite"
    )
    p_tort.add_argument(
        "--no-vanilla", action="store_true",
        help="skip the guard-off contrast runs",
    )
    p_tort.add_argument(
        "--report", default=None, metavar="PATH",
        help="also write the torture HTML report",
    )
    p_tort.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the outcome records as JSON",
    )

    p_perf = sub.add_parser(
        "perf",
        help="phase/hotspot profiling and the perf-regression observatory "
        "(see docs/PERFORMANCE.md)",
    )
    perf_sub = p_perf.add_subparsers(dest="perf_command", required=True)
    pp_prof = perf_sub.add_parser(
        "profile",
        help="run a profiled RHF: phase wall/CPU table + cProfile hotspots",
        parents=[obs_flags],
    )
    pp_prof.add_argument("molecule", nargs="?", default="water")
    pp_prof.add_argument("--basis", default="6-31g")
    pp_prof.add_argument("--max-iter", type=int, default=100)
    pp_prof.add_argument(
        "--top", type=int, default=15, metavar="N",
        help="hotspot rows to keep (by cumulative time)",
    )
    pp_prof.add_argument(
        "--alloc", action="store_true",
        help="attribute tracemalloc peak allocations to phases (slow)",
    )
    pp_check = perf_sub.add_parser(
        "check",
        help="grade the BENCH_*.json trajectories; exit 1 on FAIL",
        parents=[obs_flags],
    )
    pp_check.add_argument(
        "--history", action="append", metavar="PATH",
        help="BENCH history file (repeatable; default: BENCH_eri.json "
        "and BENCH_fock.json in the current directory)",
    )
    pp_check.add_argument(
        "--quick", action="store_true",
        help="grade only machine-independent metrics (ratios, error "
        "bounds) -- for CI hardware that never wrote the history",
    )
    pp_check.add_argument(
        "--last", type=int, default=8, metavar="K",
        help="baseline window: median over the last K prior points",
    )
    pp_check.add_argument(
        "--runs", default=None, metavar="DIR",
        help="also grade completed run-ledger directories under DIR",
    )
    pp_check.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the findings as JSON",
    )
    pp_hist = perf_sub.add_parser(
        "history",
        help="print the tracked-metric trajectories",
        parents=[obs_flags],
    )
    pp_hist.add_argument(
        "--history", action="append", metavar="PATH",
        help="BENCH history file (repeatable)",
    )
    pp_hist.add_argument(
        "--points", type=int, default=6, metavar="N",
        help="trajectory points to show per metric",
    )

    sub.add_parser(
        "info",
        help="print the provenance block (versions, git SHA, CPU count)",
        parents=[obs_flags],
    )
    sub.add_parser(
        "list", help="list built-in molecules and bases", parents=[obs_flags]
    )

    args = parser.parse_args(argv)

    # fail fast on unwritable output paths -- a long run must not end
    # in a traceback with its trace/metrics lost
    out_path = getattr(args, "out", None)
    for path in (
        args.trace,
        args.metrics,
        out_path,
        getattr(args, "report", None),
        getattr(args, "json", None),
    ):
        if path:
            parent = os.path.dirname(path) or "."
            if not os.path.isdir(parent):
                parser.error(f"cannot write {path}: directory {parent!r} does not exist")
            if not os.access(parent, os.W_OK):
                parser.error(f"cannot write {path}: directory {parent!r} is not writable")

    from repro.obs import MetricsRegistry, Tracer, set_metrics, set_tracer

    tracer = Tracer("repro") if args.trace else None
    prev_tracer = set_tracer(tracer) if tracer is not None else None
    prev_metrics = set_metrics(MetricsRegistry()) if args.metrics else None
    profiler = None
    prev_profiler = None
    if getattr(args, "profile", False):
        from repro.obs.profile import PhaseProfiler, set_profiler

        profiler = PhaseProfiler()
        prev_profiler = set_profiler(profiler)
    ledger = None
    prev_ledger = None
    run_dir = getattr(args, "run_dir", None)
    if run_dir:
        from repro.obs.manifest import RunLedger, set_ledger

        config = {
            k: v for k, v in vars(args).items()
            if k not in ("command", "trace", "metrics", "run_dir")
            and v is not None
        }
        ledger = RunLedger(
            run_dir,
            command=args.command,
            config=config,
            molecule=getattr(args, "molecule", None),
            basis=getattr(args, "basis", None),
            seed=getattr(args, "seed", None),
            argv=list(argv) if argv is not None else None,
        )
        prev_ledger = set_ledger(ledger)
    rc = 1  # an escaping exception seals the ledger as a failed run
    try:
        if args.command == "scf":
            rc = _run_scf(args)
        elif args.command == "ablation":
            rc = _run_ablation(args)
        elif args.command == "report":
            rc = _run_report(args)
        elif args.command == "analyze":
            rc = _run_analyze(args)
        elif args.command == "chaos":
            rc = _run_chaos(args)
        elif args.command == "serve":
            rc = _run_serve(args)
        elif args.command == "submit":
            rc = _run_submit(args)
        elif args.command == "status":
            rc = _run_status(args)
        elif args.command == "cancel":
            rc = _run_cancel(args)
        elif args.command == "drain":
            rc = _run_drain(args)
        elif args.command == "verify":
            rc = _run_verify(args)
        elif args.command == "torture":
            rc = _run_torture(args)
        elif args.command == "perf":
            rc = _run_perf(args)
        elif args.command == "info":
            rc = _run_info()
        elif args.command == "list":
            rc = _run_list()
        else:
            rc = _run_experiment(args.command)
        return rc
    finally:
        if profiler is not None:
            from repro.obs.profile import set_profiler

            set_profiler(prev_profiler)
            profiler.export_metrics()
            if profiler.stats:
                print("phase profile:", file=sys.stderr)
                print(profiler.table(), file=sys.stderr)
            profiler.close()
        if ledger is not None:
            from repro.obs.manifest import set_ledger

            # attach before close: the summary carries the phase table
            if profiler is not None and profiler.stats:
                ledger.attach_profile(profiler)
            ledger.close(rc)
            set_ledger(prev_ledger)
            print(f"run ledger written to {run_dir}", file=sys.stderr)
        if tracer is not None:
            set_tracer(prev_tracer)
            tracer.write(args.trace)
            print(f"trace written to {args.trace}", file=sys.stderr)
        if prev_metrics is not None:
            from repro.obs import get_metrics

            get_metrics().write(args.metrics)
            set_metrics(prev_metrics)
            print(f"metrics written to {args.metrics}", file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
