"""Small shared utilities: validation helpers and timing."""

from repro.util.validation import (
    check_positive,
    check_square,
    check_symmetric,
    require,
)
from repro.util.timing import Timer, wall_time

__all__ = [
    "check_positive",
    "check_square",
    "check_symmetric",
    "require",
    "Timer",
    "wall_time",
]
