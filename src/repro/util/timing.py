"""Wall-clock timing helpers for the benchmark harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


def wall_time() -> float:
    """Monotonic wall-clock time in seconds."""
    return time.perf_counter()


@dataclass
class Timer:
    """Accumulating stopwatch.

    Example
    -------
    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float | None = field(default=None, repr=False)

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError("Timer already running")
        self._start = wall_time()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer not running")
        dt = wall_time() - self._start
        self.elapsed += dt
        self._start = None
        return dt

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
