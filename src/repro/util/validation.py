"""Argument validation helpers used across the library.

These raise early, descriptive errors instead of letting bad inputs surface
as cryptic NumPy broadcasting failures deep inside the integral or
simulation code.
"""

from __future__ import annotations

import numpy as np


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_positive(value: float, name: str) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_finite(a: np.ndarray, name: str = "array") -> None:
    """Require every element of ``a`` to be finite (no NaN/Inf)."""
    if a.size and not np.isfinite(a).all():
        bad = int(a.size - np.isfinite(a).sum())
        raise ValueError(
            f"{name} contains {bad} non-finite element(s) (NaN or Inf)"
        )


def check_square(a: np.ndarray, name: str = "matrix") -> None:
    """Require ``a`` to be a square 2-D array."""
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"{name} must be square 2-D, got shape {a.shape}")


def check_symmetric(a: np.ndarray, name: str = "matrix", tol: float = 1e-10) -> None:
    """Require ``a`` to be symmetric to within ``tol`` (max abs deviation)."""
    check_square(a, name)
    dev = float(np.max(np.abs(a - a.T))) if a.size else 0.0
    if dev > tol:
        raise ValueError(f"{name} is not symmetric: max|A-A^T| = {dev:.3e} > {tol:.3e}")
