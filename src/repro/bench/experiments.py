"""Per-table/figure experiment drivers (the reproduction's evaluation).

Each function regenerates one artifact of the paper's Section IV and
returns both structured data and a formatted text report.  The
``benchmarks/`` suite wraps these in pytest-benchmark targets; the
``examples/`` scripts call them directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.harness import (
    CORE_COUNTS,
    MoleculeSetup,
    all_setups,
    format_table,
)
from repro.bench.paper_data import FIGURE1, MEASURED_CONSTANTS, TABLE2_MOLECULES
from repro.fock.partition import TaskBlock
from repro.fock.prefetch import block_footprint
from repro.fock.simulate import FockSimResult, simulate_gtfock, simulate_nwchem
from repro.integrals.schwarz import unique_significant_quartet_count
from repro.model.perfmodel import PerfModel


@dataclass
class ExperimentReport:
    """Structured result + rendered text for one table/figure."""

    experiment: str
    data: dict
    text: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.text


# -- simulation cache: every (setup, algorithm, cores) cell is run once ------

_SIM_CACHE: dict[tuple[str, str, int], FockSimResult] = {}


def run_cell(setup: MoleculeSetup, algorithm: str, cores: int) -> FockSimResult:
    key = (setup.name, algorithm, cores)
    if key not in _SIM_CACHE:
        fn = simulate_gtfock if algorithm == "gtfock" else simulate_nwchem
        _SIM_CACHE[key] = fn(
            setup.basis,
            setup.screen,
            cores,
            config=setup.config,
            costs=setup.costs,
            molecule_name=setup.name,
        )
    return _SIM_CACHE[key]


def sweep(setup: MoleculeSetup, cores: tuple[int, ...] = CORE_COUNTS) -> dict:
    """Both algorithms over the core sweep for one molecule."""
    return {
        alg: {c: run_cell(setup, alg, c) for c in cores}
        for alg in ("gtfock", "nwchem")
    }


# ---------------------------------------------------------------------------
# Table II -- test molecules
# ---------------------------------------------------------------------------


def table2_molecules() -> ExperimentReport:
    rows = []
    data = {}
    for setup in all_setups():
        b = setup.basis
        uq = unique_significant_quartet_count(setup.screen.sigma, setup.screen.tau)
        rows.append(
            [setup.name, b.molecule.natoms, b.nshells, b.nbf, uq]
        )
        data[setup.name] = {
            "atoms": b.molecule.natoms,
            "shells": b.nshells,
            "functions": b.nbf,
            "unique_shell_quartets": uq,
        }
    text = format_table(
        ["Molecule", "Atoms", "Shells", "Functions", "UniqueShellQuartets"],
        rows,
        title="Table II: test molecules (vdz-sim, tau=1e-10)"
        + f"\npaper (cc-pVDZ): {TABLE2_MOLECULES}",
    )
    return ExperimentReport("table2", data, text)


# ---------------------------------------------------------------------------
# Tables III & IV -- Fock construction times and speedups
# ---------------------------------------------------------------------------


def table3_times(cores: tuple[int, ...] = CORE_COUNTS) -> ExperimentReport:
    data: dict = {}
    rows = []
    for setup in all_setups():
        res = sweep(setup, cores)
        data[setup.name] = {
            alg: {c: r.t_fock_max for c, r in res[alg].items()} for alg in res
        }
        for c in cores:
            rows.append(
                [
                    setup.name,
                    c,
                    res["gtfock"][c].t_fock_max,
                    res["nwchem"][c].t_fock_max,
                ]
            )
    text = format_table(
        ["Molecule", "Cores", "GTFock(s)", "NWChem(s)"],
        rows,
        title="Table III: Fock matrix construction time",
    )
    return ExperimentReport("table3", data, text)


def table4_speedup(cores: tuple[int, ...] = CORE_COUNTS) -> ExperimentReport:
    base = cores[0]
    data: dict = {}
    rows = []
    for setup in all_setups():
        res = sweep(setup, cores)
        times = {
            alg: {c: r.t_fock_max for c, r in res[alg].items()} for alg in res
        }
        # the paper computes both speedups against the fastest base-core
        # time (NWChem's)
        t0 = min(times["gtfock"][base], times["nwchem"][base])
        sp = {
            alg: {c: t0 / t for c, t in times[alg].items()} for alg in times
        }
        data[setup.name] = sp
        for c in cores:
            rows.append([setup.name, c, sp["gtfock"][c], sp["nwchem"][c]])
    text = format_table(
        ["Molecule", "Cores", "GTFock", "NWChem"],
        rows,
        title=f"Table IV: speedup vs fastest {base}-core time",
        floatfmt="{:.1f}",
    )
    return ExperimentReport("table4", data, text)


# ---------------------------------------------------------------------------
# Table V -- measured per-ERI times of the two real engines
# ---------------------------------------------------------------------------


def table5_t_int(max_shell_pairs: int = 60) -> ExperimentReport:
    """Measure microseconds/ERI of the MD and OS engines on real molecules.

    The paper compares the ERD package (GTFock) against NWChem's
    integrals on C24H12 and C10H22; we compare our two independent
    engines on the same molecules (STO-3G so the measurement completes in
    seconds).  Absolute values are Python-scale; the *ratio* and the
    molecule dependence are the reproducible content.
    """
    import time

    from repro.chem.basis.basisset import BasisSet
    from repro.chem.builders import alkane, graphene_flake
    from repro.integrals.engine import MDEngine, OSEngine

    data: dict = {}
    rows = []
    rng = np.random.default_rng(3)
    for name, mol in (("C24H12", graphene_flake(2)), ("C10H22", alkane(10))):
        basis = BasisSet.build(mol, "sto-3g")
        per_engine = {}
        quartets = [
            tuple(rng.integers(0, basis.nshells, 4)) for _ in range(max_shell_pairs)
        ]
        for label, engine in (("MD", MDEngine(basis)), ("OS", OSEngine(basis))):
            n_eri = 0
            t0 = time.perf_counter()
            for (m, n, p, q) in quartets:
                blk = engine.quartet(int(m), int(n), int(p), int(q))
                n_eri += blk.size
            dt = time.perf_counter() - t0
            per_engine[label] = dt / n_eri * 1e6  # us per ERI
        data[name] = per_engine
        rows.append([name, per_engine["MD"], per_engine["OS"]])
    text = format_table(
        ["Molecule", "MD us/ERI", "OS us/ERI"],
        rows,
        title="Table V: average time per ERI (our engines; paper: ERD 4.76us)",
    )
    return ExperimentReport("table5", data, text)


# ---------------------------------------------------------------------------
# Tables VI & VII -- communication volume and GA calls
# ---------------------------------------------------------------------------


def table6_volume(cores: tuple[int, ...] = CORE_COUNTS) -> ExperimentReport:
    data: dict = {}
    rows = []
    for setup in all_setups():
        res = sweep(setup, cores)
        data[setup.name] = {
            alg: {c: r.comm_mb_per_proc for c, r in res[alg].items()} for alg in res
        }
        data[setup.name]["gtfock_steal_mb"] = {
            c: _steal_mb(res["gtfock"][c]) for c in cores
        }
        data[setup.name]["gtfock_idle_frac"] = {
            c: res["gtfock"][c].idle_fraction for c in cores
        }
        for c in cores:
            rows.append(
                [
                    setup.name,
                    c,
                    res["gtfock"][c].comm_mb_per_proc,
                    _steal_mb(res["gtfock"][c]),
                    res["nwchem"][c].comm_mb_per_proc,
                    f"{res['gtfock'][c].idle_fraction:.3f}",
                ]
            )
    text = format_table(
        ["Molecule", "Cores", "GTFock MB/proc", "  of it steal MB",
         "NWChem MB/proc", "GTFock idle frac"],
        rows,
        title="Table VI: average communication volume per process",
        floatfmt="{:.1f}",
    )
    return ExperimentReport("table6", data, text)


def _steal_mb(r) -> float:
    """Average per-process MB on the steal channels (flight recorder)."""
    nbytes = sum(
        v
        for ch, v in r.comm_by_channel.items()
        if ch in ("steal_d", "steal_f")
    )
    return nbytes / 1e6 / max(r.nproc, 1)


def table7_calls(cores: tuple[int, ...] = CORE_COUNTS) -> ExperimentReport:
    data: dict = {}
    rows = []
    for setup in all_setups():
        res = sweep(setup, cores)
        data[setup.name] = {
            alg: {c: r.ga_calls_per_proc for c, r in res[alg].items()} for alg in res
        }
        for c in cores:
            rows.append(
                [
                    setup.name,
                    c,
                    res["gtfock"][c].ga_calls_per_proc,
                    res["nwchem"][c].ga_calls_per_proc,
                ]
            )
    text = format_table(
        ["Molecule", "Cores", "GTFock calls", "NWChem calls"],
        rows,
        title="Table VII: average one-sided calls per process",
        floatfmt="{:.0f}",
    )
    return ExperimentReport("table7", data, text)


# ---------------------------------------------------------------------------
# Table VIII -- load balance
# ---------------------------------------------------------------------------


def table8_load_balance(cores: tuple[int, ...] = CORE_COUNTS) -> ExperimentReport:
    data: dict = {}
    rows = []
    for setup in all_setups():
        balances = {c: run_cell(setup, "gtfock", c).load_balance for c in cores}
        data[setup.name] = balances
        for c in cores:
            rows.append([setup.name, c, balances[c]])
    text = format_table(
        ["Molecule", "Cores", "l = Tmax/Tavg"],
        rows,
        title="Table VIII: GTFock load balance ratio (1.0 = perfect)",
    )
    return ExperimentReport("table8", data, text)


# ---------------------------------------------------------------------------
# Table IX -- purification share of the HF iteration
# ---------------------------------------------------------------------------


def table9_purification(cores: tuple[int, ...] = CORE_COUNTS) -> ExperimentReport:
    """T_fock vs T_purification for the C150H30-class molecule.

    Extended with the dense-diagonalization alternative the paper
    replaces, via :mod:`repro.dist.hf_iteration`.
    """
    from repro.dist.hf_iteration import hf_iteration_breakdown

    setup = next(s for s in all_setups() if "150" in s.name or "54" in s.name)
    iters = MEASURED_CONSTANTS["purification_iterations_C150H30"]
    data: dict = {}
    rows = []
    for c in cores:
        r = run_cell(setup, "gtfock", c)
        b = hf_iteration_breakdown(
            r, setup.basis.nbf, setup.config, purification_iterations=iters
        )
        data[c] = {
            "t_fock": b.t_fock,
            "t_purf": b.t_purification,
            "t_diag": b.t_diagonalization,
            "percent": b.purification_percent,
        }
        rows.append(
            [c, b.t_fock, b.t_purification, b.purification_percent,
             b.t_diagonalization]
        )
    text = format_table(
        ["Cores", "T_fock(s)", "T_purf(s)", "%", "T_diag(s)"],
        rows,
        title=f"Table IX: purification share, {setup.name} ({iters} iterations)",
    )
    return ExperimentReport("table9", data, text)


# ---------------------------------------------------------------------------
# Figure 1 -- task vs task-block D footprints
# ---------------------------------------------------------------------------


def figure1_footprint() -> ExperimentReport:
    """Footprint of one task vs a block of tasks (reordered alkane).

    The paper: task (300,:|600,:) of C100H202 needs 1055 elements of D;
    the 2500-task block (300:350,:|600:650,:) needs only ~80x more.
    We evaluate the same construction at matching relative positions.
    """
    setup = next(s for s in all_setups() if "100" in s.name or "20H42" in s.name)
    ns = setup.basis.nshells
    m = int(ns * 300 / 1206)
    n = int(ns * 600 / 1206)
    width = max(2, int(ns * 50 / 1206))
    single = block_footprint(setup.screen, TaskBlock(m, m + 1, n, n + 1))
    block = block_footprint(
        setup.screen,
        TaskBlock(m, min(m + width, ns), n, min(n + width, ns)),
    )
    ntasks = width * width
    ratio = block.elements / max(single.elements, 1)
    data = {
        "single_task_elements": single.elements,
        "block_elements": block.elements,
        "block_tasks": ntasks,
        "ratio": ratio,
        "naive_ratio": ntasks,
        "paper": FIGURE1,
    }
    text = (
        "Figure 1: D footprint, single task vs task block "
        f"({setup.name}, reordered)\n"
        f"  single task ({m},:|{n},:)              : {single.elements} elements\n"
        f"  {width}x{width} block = {ntasks} tasks : {block.elements} elements\n"
        f"  ratio {ratio:.1f}x  (naive per-task scaling would be {ntasks}x; "
        f"paper reports ~{FIGURE1['block_over_single_ratio']:.0f}x for 2500 tasks)"
    )
    return ExperimentReport("figure1", data, text)


# ---------------------------------------------------------------------------
# Figure 2 -- computation vs parallel overhead
# ---------------------------------------------------------------------------


def figure2_overhead(cores: tuple[int, ...] = CORE_COUNTS) -> ExperimentReport:
    data: dict = {}
    rows = []
    for setup in all_setups():
        res = sweep(setup, cores)
        data[setup.name] = {
            alg: {
                c: {"t_comp": r.t_comp_avg, "t_ov": r.t_overhead_avg}
                for c, r in res[alg].items()
            }
            for alg in res
        }
        for c in cores:
            g, n = res["gtfock"][c], res["nwchem"][c]
            ratio = n.t_overhead_avg / g.t_overhead_avg if g.t_overhead_avg > 0 else float("inf")
            rows.append(
                [setup.name, c, g.t_comp_avg, g.t_overhead_avg, n.t_comp_avg, n.t_overhead_avg, ratio]
            )
    text = format_table(
        ["Molecule", "Cores", "GT Tcomp", "GT Tov", "NW Tcomp", "NW Tov", "Tov NW/GT"],
        rows,
        title="Figure 2: average computation vs parallel overhead time",
    )
    return ExperimentReport("figure2", data, text)


# ---------------------------------------------------------------------------
# Sec III-G -- performance-model analysis (Eq 11/12, isoefficiency, 50x)
# ---------------------------------------------------------------------------


def model_analysis(p_eval: int = 3888) -> ExperimentReport:
    data: dict = {}
    rows = []
    for setup in all_setups():
        s_meas = run_cell(setup, "gtfock", p_eval).steals_avg
        model = PerfModel.from_screening(setup.screen, setup.config, s=s_meas)
        nproc = max(1, p_eval // setup.config.cores_per_node)
        l_p = model.overhead_ratio(nproc)
        speedup = model.integral_speedup_to_crossover(nproc)
        data[setup.name] = {
            "s_measured": s_meas,
            "L(p)": l_p,
            "efficiency": model.efficiency(nproc),
            "L(n^2)": model.max_parallelism_ratio(),
            "integral_speedup_to_crossover": speedup,
        }
        rows.append([setup.name, s_meas, l_p, model.efficiency(nproc), speedup])
    text = format_table(
        ["Molecule", "s", "L(p)", "E(p)", "crossover speedup"],
        rows,
        title=(
            f"Sec III-G model at {p_eval} cores "
            "(paper: C96H24 needs ~50x faster integrals before comm dominates)"
        ),
    )
    return ExperimentReport("model", data, text)
