"""Shared infrastructure for the benchmark suite.

Builds and caches the per-molecule simulation state (basis, reordering,
screening, cost matrices) so that the per-table benchmarks in
``benchmarks/`` don't recompute it, and provides plain-text table
formatting for their reports.

Molecule scale: the default suite runs structurally faithful scaled-down
versions of the paper's molecules (same graphene-flake / alkane families)
so the whole suite completes in minutes of Python.  Set ``REPRO_FULL=1``
to run the paper's exact molecules (C96H24, C150H30, C100H202, C144H290).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field


from repro.chem.basis.basisset import BasisSet
from repro.chem.builders import alkane, graphene_flake
from repro.chem.molecule import Molecule
from repro.fock.cost import TaskCosts, quartet_cost_matrix
from repro.fock.reorder import reorder_basis
from repro.fock.screening_map import ScreeningMap
from repro.integrals.schwarz import schwarz_model
from repro.obs import get_tracer
from repro.obs.profile import PHASE_SCHWARZ, get_profiler
from repro.runtime.machine import LONESTAR, MachineConfig

#: The paper's screening tolerance (Sec IV-A).
PAPER_TAU = 1e-10

#: Core counts swept by the evaluation (the paper uses 12..3888).
CORE_COUNTS = (12, 48, 192, 768, 1944, 3888)


def full_scale() -> bool:
    """True when REPRO_FULL=1 requests the paper's exact molecule sizes."""
    return os.environ.get("REPRO_FULL", "0") == "1"


def benchmark_molecules() -> dict[str, Molecule]:
    """The four test systems (scaled by default, paper-size with REPRO_FULL).

    Keys carry both the benchmark molecule and the paper molecule it
    stands in for, e.g. ``"C24H12 (for C96H24)"`` in scaled mode.
    """
    if full_scale():
        return {
            "C96H24": graphene_flake(4),
            "C150H30": graphene_flake(5),
            "C100H202": alkane(100),
            "C144H290": alkane(144),
        }
    return {
        "C24H12 (for C96H24)": graphene_flake(2),
        "C54H18 (for C150H30)": graphene_flake(3),
        "C20H42 (for C100H202)": alkane(20),
        "C30H62 (for C144H290)": alkane(30),
    }


@dataclass
class MoleculeSetup:
    """Everything the timing simulations need for one molecule."""

    name: str
    molecule: Molecule
    basis: BasisSet  # reordered (Sec III-D applied)
    screen: ScreeningMap
    costs: TaskCosts
    config: MachineConfig = field(default_factory=lambda: LONESTAR)

    @property
    def is_alkane(self) -> bool:
        return _alkane_like(self.molecule)


def _alkane_like(mol: Molecule) -> bool:
    # CnH(2n+2) signature
    nc = sum(1 for s in mol.symbols if s == "C")
    nh = sum(1 for s in mol.symbols if s == "H")
    return nh == 2 * nc + 2


_SETUP_CACHE: dict[tuple[str, str, str, float, bool], MoleculeSetup] = {}


def molecule_setup(
    name: str,
    molecule: Molecule,
    basis_name: str = "vdz-sim",
    tau: float = PAPER_TAU,
    reorder: bool = True,
) -> MoleculeSetup:
    """Build (and cache) screening + cost state for a molecule.

    The cache key includes the geometry hash, not just the formula:
    two geometry-distinct molecules with the same formula (conformers,
    scaled stand-ins) must not share screening/cost state.
    """
    key = (molecule.formula, molecule.geometry_hash(), basis_name, tau, reorder)
    cached = _SETUP_CACHE.get(key)
    if cached is not None:
        return cached
    tracer = get_tracer()
    with tracer.span(
        "molecule_setup", cat="bench", molecule=name or molecule.formula,
        basis=basis_name,
    ):
        with tracer.span("basis_build", cat="bench"):
            basis = BasisSet.build(molecule, basis_name)
        if reorder:
            with tracer.span("reorder", cat="bench"):
                basis = reorder_basis(basis)
        with tracer.span("screening", cat="bench"), \
                get_profiler().phase(PHASE_SCHWARZ):
            screen = ScreeningMap(basis, schwarz_model(basis), tau)
        with tracer.span("cost_matrix", cat="bench"):
            costs = quartet_cost_matrix(screen)
    # NWChem's primitive prescreening advantage is larger for alkanes
    # (Table V discussion); reflect it in the per-molecule machine config.
    t_ratio = 0.85 if _alkane_like(molecule) else 0.92
    config = LONESTAR.with_(t_int_nwchem=LONESTAR.t_int_gtfock * t_ratio)
    setup = MoleculeSetup(
        name=name,
        molecule=molecule,
        basis=basis,
        screen=screen,
        costs=costs,
        config=config,
    )
    _SETUP_CACHE[key] = setup
    return setup


def all_setups() -> list[MoleculeSetup]:
    return [molecule_setup(n, m) for n, m in benchmark_molecules().items()]


# ---------------------------------------------------------------------------
# plain-text table rendering
# ---------------------------------------------------------------------------


def format_table(
    headers: list[str], rows: list[list], title: str = "", floatfmt: str = "{:.3f}"
) -> str:
    """Render a simple aligned text table."""
    cells = [[_fmt(c, floatfmt) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    out = []
    if title:
        out.append(title)
    out.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    out.append("  ".join("-" * w for w in widths))
    for r in cells:
        out.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(out)


def _fmt(v, floatfmt: str) -> str:
    if isinstance(v, float):
        if v != 0 and (abs(v) >= 1e5 or abs(v) < 1e-3):
            return f"{v:.3e}"
        return floatfmt.format(v)
    return str(v)


def geometric_speedups(times: dict[int, float], base_cores: int) -> dict[int, float]:
    """Speedups relative to the time at ``base_cores`` (Table IV style)."""
    if base_cores not in times:
        raise KeyError(f"no timing at base core count {base_cores}")
    t0 = times[base_cores]
    return {c: t0 / t for c, t in times.items()}
