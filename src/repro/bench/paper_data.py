"""Reference values reported by the paper, for side-by-side comparison.

The available text of the paper has garbled numeric tables (OCR), so this
module records (a) the hard numbers that survive in prose, and (b) the
*shape targets* -- the qualitative relations the reproduction must show.
EXPERIMENTS.md tracks paper-vs-measured against these.
"""

from __future__ import annotations

#: Table I -- machine parameters of Lonestar (per node).
TABLE1_MACHINE = {
    "cpu": "Intel X5680",
    "freq_ghz": 3.33,
    "sockets/cores/threads": "2/12/12",
    "gflops_dp": 160,
    "memory_gb": 24,
    "interconnect_bandwidth_gb_s": 5,
    "max_cores": 4104,
}

#: Table II -- the paper's test molecules with cc-pVDZ (tau = 1e-10).
#: Shell/function counts are exact consequences of the basis structure;
#: C100H202's are confirmed verbatim in the paper's Figure-1 discussion.
TABLE2_MOLECULES = {
    "C96H24": {"atoms": 120, "shells": 648, "functions": 1464, "family": "graphene"},
    "C150H30": {"atoms": 180, "shells": 990, "functions": 2250, "family": "graphene"},
    "C100H202": {"atoms": 302, "shells": 1206, "functions": 2410, "family": "alkane"},
    "C144H290": {"atoms": 434, "shells": 1734, "functions": 3466, "family": "alkane"},
}

#: Table V -- average per-ERI time (seconds) on one node-class machine.
TABLE5_T_INT = {
    "gtfock_C24H12": 4.76e-6,  # quoted in the Sec III-G analysis
}

#: Figure 1 -- D-footprint of one task vs a 50x50 task block (C100H202).
FIGURE1 = {
    "single_task_nnz": 1055,  # elements needed by (300,: | 600,:)
    "block_tasks": 2500,  # the 50x50 block (300:350,: | 600:650,:)
    "block_over_single_ratio": 80.0,  # "only about 80 times greater"
}

#: Sec III-G / IV constants.
MEASURED_CONSTANTS = {
    "steal_victims_s_C96H24_3888": 3.8,
    "integral_speedup_to_crossover_C96H24": 50.0,
    "gtfock_queue_atomic_ops_per_node": 349,
    "purification_iterations_C150H30": 45,
    "purification_percent_range": (1.0, 15.0),  # % of HF iteration time
}

#: The qualitative relations the reproduction must exhibit.
SHAPE_TARGETS = [
    "NWChem is faster at small core counts (better single-node t_int).",
    "GTFock is faster at large core counts (Table III crossover).",
    "GTFock speedup at max cores exceeds NWChem's for every molecule (Table IV).",
    "GTFock parallel overhead is about an order of magnitude below NWChem's "
    "(Figure 2), most pronounced for the screened-out alkane cases.",
    "NWChem overhead becomes comparable to its compute time near p ~ 3000 "
    "for the sparse cases (Figure 2 a, c, d).",
    "GTFock communication volume and GA call counts are lower than NWChem's "
    "for all cases (Tables VI, VII).",
    "Work stealing keeps the load-balance ratio l close to 1 (Table VIII).",
    "Purification costs 1-15% of the HF iteration (Table IX).",
    "A 50x50 task block's D footprint is ~80x one task's, not 2500x (Figure 1).",
]
