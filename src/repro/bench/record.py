"""Shared BENCH_*.json trajectory recording with schema validation.

Every perf benchmark appends one datapoint to an append-only history
file at the repo root (``BENCH_eri.json``, ``BENCH_fock.json``); the
regression observatory (:mod:`repro.obs.regress`) reads them back.
The append logic used to be copy-pasted across ``benchmarks/test_bench_
*.py`` with naive local timestamps -- this module is the one shared
implementation:

* :func:`append_history` validates the entry against the per-benchmark
  :data:`SCHEMAS` (required keys, expected types) before anything is
  written, so a malformed datapoint fails the benchmark instead of
  silently poisoning the trajectory the observatory grades;
* all new timestamps are timezone-aware UTC ISO-8601 (existing naive
  local entries remain readable -- the observatory only sorts/displays
  them).
"""

from __future__ import annotations

import json
import pathlib

from repro.obs.manifest import utc_now_iso

#: required keys and types per benchmark family.  ``float`` accepts any
#: non-bool number; benchmarks not listed here only need a ``benchmark``
#: name (new families can start recording before they grow a schema).
SCHEMAS: dict[str, dict[str, type]] = {
    "eri_kernels": {
        "molecule": str,
        "basis": str,
        "t_seed_s": float,
        "t_batched_s": float,
        "batched_speedup": float,
        "max_abs_diff": float,
        "t_cached_iter2_s": float,
        "cache_iter2_hit_rate": float,
        # class-batched cross-quartet path (PR 7)
        "t_class_s": float,
        "class_batched_speedup": float,
        "class_max_abs_diff": float,
        # stored-integral (conventional SCF) mode
        "stored_iter2_s": float,
        "store_iter2_recomputed": float,
    },
    # larger systems where timing the seed kernel is impractical: the
    # class-batched path is the only timed kernel, and numerics are
    # verified on a sampled quartet subset against the PR-2 batched kernel
    "eri_kernels_large": {
        "molecule": str,
        "basis": str,
        "quartets": float,
        "t_class_s": float,
        "stored_iter2_s": float,
        "sample_max_abs_diff": float,
    },
    "fock_table3": {
        "wall_s": float,
        "molecules": dict,
    },
    "fock_chaos": {
        "wall_s": float,
        "fock_error": float,
        "fault_slowdown": float,
        "passed": bool,
    },
    # crash-tolerant SCF service: one seeded chaos run (worker kills
    # mid-iteration) per datapoint -- throughput plus the correctness
    # gates (BENCH_service.json)
    "fock_service": {
        "njobs": float,
        "workers": float,
        "kills_done": float,
        "wall_s": float,
        "jobs_per_min": float,
        "max_energy_error": float,
        "requeues": float,
        "double_records": float,
        "all_done": bool,
        "passed": bool,
    },
    "scf_guard": {
        "wall_off_s": float,
        "wall_on_s": float,
        "overhead": float,
        "energy_matches": bool,
    },
    "fock_sdc": {
        "wall_off_s": float,
        "wall_on_s": float,
        "overhead": float,
        "false_positives": float,
        "energy_matches": bool,
        "passed": bool,
    },
    "phase_profiler": {
        "wall_off_s": float,
        "wall_on_s": float,
        "overhead": float,
    },
}


def _type_ok(value, expected: type) -> bool:
    if expected is float:
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected is bool:
        return isinstance(value, bool)
    return isinstance(value, expected)


def validate_entry(entry: dict) -> None:
    """Raise ``ValueError`` naming the first missing/mistyped field."""
    if not isinstance(entry, dict):
        raise ValueError("benchmark entry must be a dict")
    name = entry.get("benchmark")
    if not isinstance(name, str) or not name:
        raise ValueError(
            "benchmark entry: missing required field 'benchmark' (str)"
        )
    schema = SCHEMAS.get(name, {})
    for key, expected in schema.items():
        if key not in entry:
            raise ValueError(
                f"benchmark entry {name!r}: missing required field {key!r}"
            )
        if not _type_ok(entry[key], expected):
            raise ValueError(
                f"benchmark entry {name!r}: field {key!r} should be "
                f"{expected.__name__}, got "
                f"{type(entry[key]).__name__} ({entry[key]!r})"
            )


def append_history(
    entry: dict,
    path: pathlib.Path,
    description: str = "perf trajectory (see docs/PERFORMANCE.md)",
) -> dict:
    """Validate ``entry``, stamp it with UTC time, and append it to ``path``.

    Returns the stamped entry actually written.
    """
    validate_entry(entry)
    entry = dict(entry, timestamp=utc_now_iso())
    if path.exists():
        doc = json.loads(path.read_text())
    else:
        doc = {"description": description, "history": []}
    doc["history"].append(entry)
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return entry
