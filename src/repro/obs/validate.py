"""Model-vs-measured validation of a Fock-build run (Sec III-G check).

The paper's performance model (Eqs 6-11) predicts, per process, the
prefetch volume ``v1 + v2``, the total communication volume
``V = (1+s)(v1+v2)``, the communication time, and the overhead ratio
``L = T_comm / T_comp``.  The flight recorder measures all four.  This
module compares them and produces a structured deviation report with
``pass`` / ``warn`` / ``fail`` statuses, so a run report (or CI) can gate
on "the measurement still matches the model".

A deviation is the ratio ``measured / predicted`` folded to ``>= 1``
(``max(r, 1/r)``); thresholds bound that fold.  The defaults are
calibrated for the *small* molecules the test suite can afford (water,
6-31G): the model is asymptotic in molecule size, so constant factors --
block granularity, the bounding-box prefetch, diagonal-task symmetry --
leave O(1) deviations that shrink as molecules grow.  The documented
tolerances (``docs/OBSERVABILITY.md``) keep those O(1) factors green and
catch anything structurally wrong (a lost channel, a double charge, a
broken footprint) which shows up as an order of magnitude.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.obs.flight import CH_PREFETCH_GET, CH_STEAL_D

if TYPE_CHECKING:  # deferred: avoid import cycles with the runtime
    from repro.model.perfmodel import PerfModel
    from repro.runtime.network import CommStats

PASS = "pass"
WARN = "warn"
FAIL = "fail"

#: fold tolerances (measured/predicted folded to >= 1): warn above the
#: first, fail above the second.  Volume metrics are tight (the model's
#: O(1) granularity factors measure <= ~7x on the test molecules);
#: time metrics are wide because Eq (10) is bandwidth-only while
#: latency dominates runs this small (measured folds up to ~170x on
#: water/STO-3G) -- their FAIL bands catch only structural breakage.
DEFAULT_THRESHOLDS: dict[str, tuple[float, float]] = {
    "v1_plus_v2": (7.5, 15.0),
    "volume_mb": (7.5, 15.0),
    "t_comm": (10.0, 100.0),
    "overhead_ratio": (15.0, 400.0),
    "steal_volume": (10.0, 40.0),
}


def fold_ratio(measured: float, predicted: float) -> float:
    """``max(r, 1/r)`` of measured/predicted; inf when only one is ~0."""
    if predicted <= 0.0 and measured <= 0.0:
        return 1.0
    if predicted <= 0.0 or measured <= 0.0:
        return math.inf
    r = measured / predicted
    return max(r, 1.0 / r)


@dataclass
class Deviation:
    """One model-vs-measured comparison."""

    name: str
    predicted: float
    measured: float
    warn_at: float
    fail_at: float
    unit: str = ""

    @property
    def ratio(self) -> float:
        """measured / predicted (0 when the prediction is zero)."""
        return self.measured / self.predicted if self.predicted else 0.0

    @property
    def fold(self) -> float:
        return fold_ratio(self.measured, self.predicted)

    @property
    def status(self) -> str:
        f = self.fold
        if f <= self.warn_at:
            return PASS
        if f <= self.fail_at:
            return WARN
        return FAIL

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "predicted": self.predicted,
            "measured": self.measured,
            "ratio": self.ratio,
            "fold": self.fold,
            "status": self.status,
            "warn_at": self.warn_at,
            "fail_at": self.fail_at,
            "unit": self.unit,
        }


@dataclass
class ModelValidation:
    """The full deviation report of one run."""

    nproc: int
    s_measured: float
    s_model: float
    deviations: list[Deviation] = field(default_factory=list)

    @property
    def status(self) -> str:
        """Worst status across all deviations."""
        order = {PASS: 0, WARN: 1, FAIL: 2}
        worst = PASS
        for d in self.deviations:
            if order[d.status] > order[worst]:
                worst = d.status
        return worst

    @property
    def passed(self) -> bool:
        return self.status != FAIL

    def get(self, name: str) -> Deviation:
        for d in self.deviations:
            if d.name == name:
                return d
        raise KeyError(name)

    def to_json(self) -> dict:
        return {
            "nproc": self.nproc,
            "s_measured": self.s_measured,
            "s_model": self.s_model,
            "status": self.status,
            "deviations": [d.to_json() for d in self.deviations],
        }

    def text(self) -> str:
        """Fixed-width console rendering of the deviation table."""
        lines = [
            f"model validation over p={self.nproc} "
            f"(s measured {self.s_measured:.2f}, model {self.s_model:.2f})",
            f"{'metric':<16} {'predicted':>12} {'measured':>12} "
            f"{'ratio':>8} {'status':>6}",
        ]
        for d in self.deviations:
            lines.append(
                f"{d.name:<16} {d.predicted:>12.4g} {d.measured:>12.4g} "
                f"{d.ratio:>8.3f} {d.status:>6}"
            )
        return "\n".join(lines)


def validate_run(
    model: "PerfModel",
    stats: "CommStats",
    s_measured: float = 0.0,
    thresholds: dict[str, tuple[float, float]] | None = None,
) -> ModelValidation:
    """Compare a run's flight-recorder measurements against the model.

    Parameters
    ----------
    model:
        The Sec III-G model for the run's problem instance.  Build it
        with ``s`` set to the *measured* average steal count so the
        volume prediction is apples-to-apples (the paper does the same:
        its s = 3.8 is a measurement).
    stats:
        The run's accounting; per-channel measurements come from
        ``stats.flight``.
    s_measured:
        Average distinct victims per process
        (``StealingOutcome.avg_steals_per_proc``).
    """
    th = dict(DEFAULT_THRESHOLDS)
    if thresholds:
        th.update(thresholds)
    p = stats.nproc
    flight = stats.flight
    es = model.element_size

    # v1+v2: the one-time prefetch of the union D footprint, in elements
    prefetch_elems = float(flight.per_rank(CH_PREFETCH_GET, "bytes").mean()) / es
    # total volume: everything the run moved, per process (Table VI view)
    measured_mb = float(stats.bytes.mean()) / 1e6
    measured_t_comm = float(stats.comm_time.mean())
    comp = float(stats.comp_time.mean())
    measured_l = measured_t_comm / comp if comp > 0 else math.inf

    preds = model.predictions(p)
    dev = [
        Deviation(
            "v1_plus_v2",
            preds["v1_elements"] + preds["v2_elements"],
            prefetch_elems,
            *th["v1_plus_v2"],
            unit="elements",
        ),
        Deviation(
            "volume_mb", preds["volume_mb"], measured_mb, *th["volume_mb"],
            unit="MB/proc",
        ),
        Deviation(
            "t_comm", preds["t_comm"], measured_t_comm, *th["t_comm"],
            unit="s",
        ),
        Deviation(
            "overhead_ratio", preds["overhead_ratio"], measured_l,
            *th["overhead_ratio"],
        ),
    ]
    steal_bytes = flight.per_rank(CH_STEAL_D, "bytes")
    if np.any(steal_bytes):
        # Eq (9)'s steal term: s * (v1+v2) elements per process
        dev.append(
            Deviation(
                "steal_volume",
                model.s * (preds["v1_elements"] + preds["v2_elements"]),
                float(steal_bytes.mean()) / es,
                *th["steal_volume"],
                unit="elements",
            )
        )
    return ModelValidation(
        nproc=p, s_measured=s_measured, s_model=model.s, deviations=dev
    )
