"""Performance-regression observatory over the BENCH_*.json trajectories.

The benchmark suite appends one entry per run to ``BENCH_eri.json`` and
``BENCH_fock.json`` (see :mod:`repro.bench.record`), but until now
nothing ever read them back -- a 2x ERI slowdown would land in the
history and sit there politely.  This module closes the loop:

* a :class:`MetricSpec` table declares every tracked metric -- where it
  lives (benchmark + dotted key), which direction is good, and whether
  it is graded **relative** to its own history, against an **absolute**
  bound, or as a boolean **flag**;
* relative grading uses a robust baseline: the median of the previous
  ``K`` points, with scatter estimated as ``sigma = 1.4826 * MAD`` (the
  normal-consistent median absolute deviation).  The latest point fails
  only when it is *both* beyond the calibrated ratio threshold *and*
  several sigma outside the historical scatter, so a noisy-but-flat
  series stays green while a genuine spike or drift trips;
* statuses reuse the ``pass``/``warn``/``fail`` vocabulary of
  :mod:`repro.obs.validate`, and :func:`grade` returns a
  :class:`CheckReport` whose worst status drives the ``repro perf
  check`` exit code (FAIL -> nonzero, so CI can gate on it).

``--quick`` restricts grading to machine-independent metrics (speedup
ratios, hit rates, overhead fractions, accuracy bounds) -- absolute
wall times are meaningless when CI hardware differs from the machine
that wrote the history.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.validate import FAIL, PASS, WARN

#: normal-consistency factor: sigma = MAD_SCALE * MAD for Gaussian data
MAD_SCALE = 1.4826

#: default baseline window (previous points, latest excluded)
DEFAULT_WINDOW = 8


@dataclass(frozen=True)
class MetricSpec:
    """One tracked metric: location, goodness direction, and thresholds.

    ``kind``:
      * ``"relative"`` -- grade the latest point against the robust
        baseline of its own history; ``warn``/``fail`` are fold ratios.
      * ``"absolute"`` -- grade the latest value against hard bounds;
        ``warn``/``fail`` are values in the metric's own unit.
      * ``"flag"`` -- the value must be truthy; anything else FAILs.

    ``direction`` is ``"lower"`` (smaller is better: times, errors,
    overheads) or ``"higher"`` (speedups, hit rates).  ``quick`` marks
    machine-independent metrics safe to grade on foreign hardware.
    """

    benchmark: str
    key: str
    direction: str = "lower"
    kind: str = "relative"
    warn: float = 1.3
    fail: float = 2.0
    quick: bool = False
    unit: str = ""

    @property
    def label(self) -> str:
        return f"{self.benchmark}.{self.key}"


#: every metric the observatory watches.  Dotted keys descend into the
#: entry; a ``*`` segment averages across the values of a mapping (the
#: per-molecule tables of fock_table3).
DEFAULT_SPECS: tuple[MetricSpec, ...] = (
    # -- ERI kernel trajectory (BENCH_eri.json) --------------------------
    MetricSpec("eri_kernels", "batched_speedup", "higher", "relative",
               warn=1.3, fail=2.0, quick=True, unit="x"),
    MetricSpec("eri_kernels", "max_abs_diff", "lower", "absolute",
               warn=1e-11, fail=1e-10, quick=True, unit="Eh"),
    MetricSpec("eri_kernels", "cache_iter2_hit_rate", "higher", "absolute",
               warn=0.90, fail=0.50, quick=True),
    MetricSpec("eri_kernels", "t_batched_s", "lower", "relative",
               warn=1.3, fail=2.0, unit="s"),
    MetricSpec("eri_kernels", "t_cached_iter2_s", "lower", "relative",
               warn=1.5, fail=3.0, unit="s"),
    # class-batched cross-quartet path + stored-integral mode (PR 7)
    MetricSpec("eri_kernels", "class_batched_speedup", "higher", "relative",
               warn=1.3, fail=2.0, quick=True, unit="x"),
    MetricSpec("eri_kernels", "class_max_abs_diff", "lower", "absolute",
               warn=1e-13, fail=1e-12, quick=True, unit="Eh"),
    MetricSpec("eri_kernels", "stored_iter2_s", "lower", "relative",
               warn=1.5, fail=3.0, unit="s"),
    MetricSpec("eri_kernels_large", "t_class_s", "lower", "relative",
               warn=1.5, fail=3.0, unit="s"),
    MetricSpec("eri_kernels_large", "sample_max_abs_diff", "lower",
               "absolute", warn=1e-11, fail=1e-10, unit="Eh"),
    # -- Fock simulation trajectory (BENCH_fock.json) --------------------
    MetricSpec("fock_table3", "molecules.*.ratio_gtfock_over_nwchem",
               "lower", "absolute", warn=1.0, fail=1.5, quick=True,
               unit="ratio"),
    MetricSpec("fock_table3", "wall_s", "lower", "relative",
               warn=1.5, fail=3.0, unit="s"),
    MetricSpec("fock_chaos", "passed", kind="flag", quick=True),
    MetricSpec("fock_chaos", "fock_error", "lower", "absolute",
               warn=1e-11, fail=1e-10, quick=True, unit="Eh"),
    MetricSpec("fock_chaos", "fault_slowdown", "lower", "relative",
               warn=1.5, fail=3.0, quick=True, unit="x"),
    # critical-path analyzer (BENCH_fock.json, benchmark fock_critpath):
    # the observatory grades *explanatory* metrics, not just wall times
    MetricSpec("fock_critpath", "explained_ratio", "higher", "absolute",
               warn=0.95, fail=0.80, quick=True, unit="frac"),
    MetricSpec("fock_critpath", "idle_fraction", "lower", "absolute",
               warn=0.30, fail=0.60, quick=True, unit="frac"),
    MetricSpec("fock_critpath", "whatif_max_rel_err", "lower", "absolute",
               warn=0.15, fail=0.30, quick=True, unit="frac"),
    MetricSpec("fock_critpath", "decomposition_ok", kind="flag", quick=True),
    MetricSpec("fock_critpath", "wall_s", "lower", "relative",
               warn=1.5, fail=3.0, unit="s"),
    # -- SCF service chaos trajectory (BENCH_service.json) ---------------
    MetricSpec("fock_service", "passed", kind="flag", quick=True),
    MetricSpec("fock_service", "all_done", kind="flag", quick=True),
    MetricSpec("fock_service", "max_energy_error", "lower", "absolute",
               warn=1e-13, fail=1e-12, quick=True, unit="Eh"),
    MetricSpec("fock_service", "double_records", "lower", "absolute",
               warn=0.0, fail=0.0, quick=True),
    MetricSpec("fock_service", "jobs_per_min", "higher", "relative",
               warn=1.5, fail=3.0, unit="jobs/min"),
    MetricSpec("fock_service", "wall_s", "lower", "relative",
               warn=1.5, fail=3.0, unit="s"),
    MetricSpec("scf_guard", "energy_matches", kind="flag", quick=True),
    MetricSpec("scf_guard", "overhead", "lower", "absolute",
               warn=0.05, fail=0.10, quick=True, unit="frac"),
    MetricSpec("fock_sdc", "passed", kind="flag", quick=True),
    MetricSpec("fock_sdc", "energy_matches", kind="flag", quick=True),
    MetricSpec("fock_sdc", "false_positives", "lower", "absolute",
               warn=0.5, fail=0.5, quick=True),
    MetricSpec("fock_sdc", "overhead", "lower", "absolute",
               warn=0.05, fail=0.10, quick=True, unit="frac"),
    MetricSpec("phase_profiler", "overhead", "lower", "absolute",
               warn=0.05, fail=0.10, quick=True, unit="frac"),
    MetricSpec("phase_profiler", "wall_on_s", "lower", "relative",
               warn=1.5, fail=3.0, unit="s"),
)


def _median(values: list[float]) -> float:
    xs = sorted(values)
    n = len(xs)
    mid = n // 2
    return xs[mid] if n % 2 else 0.5 * (xs[mid - 1] + xs[mid])


def robust_baseline(values: list[float]) -> tuple[float, float]:
    """``(median, sigma)`` with ``sigma = 1.4826 * MAD`` (0 for n<2)."""
    med = _median(values)
    if len(values) < 2:
        return med, 0.0
    mad = _median([abs(v - med) for v in values])
    return med, MAD_SCALE * mad


def extract(entry: dict, key: str) -> float | None:
    """Resolve a dotted key in ``entry``; ``*`` averages a mapping level."""
    node = entry
    parts = key.split(".")
    for i, part in enumerate(parts):
        if part == "*":
            if not isinstance(node, dict) or not node:
                return None
            rest = ".".join(parts[i + 1:])
            vals = [extract(child, rest) if rest else child
                    for child in node.values()]
            vals = [v for v in vals if isinstance(v, (int, float))]
            return float(sum(vals) / len(vals)) if vals else None
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    if isinstance(node, bool):
        return 1.0 if node else 0.0
    if isinstance(node, (int, float)):
        return float(node)
    return None


@dataclass
class Finding:
    """The grade of one metric's latest point."""

    spec: MetricSpec
    latest: float
    baseline: float | None
    sigma: float
    status: str
    note: str = ""
    n_points: int = 0
    series: list[float] = field(default_factory=list)
    timestamp: str = ""

    @property
    def ratio(self) -> float | None:
        """Latest-vs-baseline fold in the bad direction (None if no base)."""
        if self.baseline is None or self.kind != "relative":
            return None
        if self.baseline == 0 or self.latest == 0:
            return None
        if self.spec.direction == "higher":
            return self.baseline / self.latest
        return self.latest / self.baseline

    @property
    def kind(self) -> str:
        return self.spec.kind

    def to_json(self) -> dict:
        return {
            "metric": self.spec.label,
            "kind": self.spec.kind,
            "direction": self.spec.direction,
            "latest": self.latest,
            "baseline": self.baseline,
            "sigma": self.sigma,
            "ratio": self.ratio,
            "status": self.status,
            "note": self.note,
            "n_points": self.n_points,
            "timestamp": self.timestamp,
        }


def grade_series(
    spec: MetricSpec, values: list[float], timestamps: list[str] | None = None
) -> Finding:
    """Grade the last point of ``values`` against its history / bounds."""
    latest = values[-1]
    ts = (timestamps or [""] * len(values))[-1]
    common = dict(n_points=len(values), series=list(values), timestamp=ts)

    if spec.kind == "flag":
        ok = bool(latest)
        return Finding(
            spec, latest, None, 0.0, PASS if ok else FAIL,
            note="" if ok else "flag is false", **common,
        )

    if spec.kind == "absolute":
        if spec.direction == "lower":
            bad_warn, bad_fail = latest > spec.warn, latest > spec.fail
        else:
            bad_warn, bad_fail = latest < spec.warn, latest < spec.fail
        status = FAIL if bad_fail else WARN if bad_warn else PASS
        note = "" if status == PASS else (
            f"bound {spec.fail:g}" if bad_fail else f"bound {spec.warn:g}"
        )
        return Finding(spec, latest, None, 0.0, status, note=note, **common)

    # relative: robust baseline over the points before the latest
    prior = values[:-1]
    if not prior:
        return Finding(
            spec, latest, None, 0.0, PASS, note="no baseline yet", **common
        )
    baseline, sigma = robust_baseline(prior)
    if baseline <= 0:
        return Finding(
            spec, latest, baseline, sigma, PASS,
            note="degenerate baseline", **common,
        )
    if spec.direction == "higher":
        ratio = baseline / latest if latest > 0 else float("inf")
        beyond_warn = latest < baseline - 2.0 * sigma
        beyond_fail = latest < baseline - 4.0 * sigma
    else:
        ratio = latest / baseline
        beyond_warn = latest > baseline + 2.0 * sigma
        beyond_fail = latest > baseline + 4.0 * sigma
    # a regression must clear BOTH the calibrated fold threshold and the
    # historical scatter band -- noise alone never trips the gate
    if ratio >= spec.fail and beyond_fail:
        status = FAIL
    elif ratio >= spec.warn and beyond_warn:
        status = WARN
    else:
        status = PASS
    note = "" if status == PASS else f"{ratio:.2f}x vs median of {len(prior)}"
    return Finding(spec, latest, baseline, sigma, status, note=note, **common)


@dataclass
class CheckReport:
    """All findings of one ``repro perf check`` invocation."""

    findings: list[Finding] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)

    @property
    def status(self) -> str:
        order = {PASS: 0, WARN: 1, FAIL: 2}
        worst = PASS
        for f in self.findings:
            if order[f.status] > order[worst]:
                worst = f.status
        return worst

    @property
    def passed(self) -> bool:
        return self.status != FAIL

    @property
    def exit_code(self) -> int:
        return 0 if self.passed else 1

    def to_json(self) -> dict:
        return {
            "status": self.status,
            "findings": [f.to_json() for f in self.findings],
            "skipped": list(self.skipped),
        }

    def text(self) -> str:
        """Fixed-width console table (mirrors ModelValidation.text)."""
        lines = [
            f"{'metric':<44} {'latest':>12} {'baseline':>12} "
            f"{'ratio':>7} {'n':>3} {'status':>6}",
        ]
        for f in self.findings:
            base = f"{f.baseline:.4g}" if f.baseline is not None else (
                f"<{f.spec.warn:g}" if f.spec.kind == "absolute"
                and f.spec.direction == "lower"
                else f">{f.spec.warn:g}" if f.spec.kind == "absolute"
                else "-"
            )
            ratio = f"{f.ratio:.3f}" if f.ratio is not None else "-"
            lines.append(
                f"{f.spec.label:<44} {f.latest:>12.4g} {base:>12} "
                f"{ratio:>7} {f.n_points:>3} {f.status:>6}"
            )
        for label in self.skipped:
            lines.append(f"{label:<44} {'-':>12} {'-':>12} {'-':>7} "
                         f"{'-':>3} {'n/a':>6}")
        counts = {PASS: 0, WARN: 0, FAIL: 0}
        for f in self.findings:
            counts[f.status] += 1
        lines.append(
            f"observatory: {counts[PASS]} pass, {counts[WARN]} warn, "
            f"{counts[FAIL]} fail -> {self.status.upper()}"
        )
        return "\n".join(lines)


def load_history(path: str | Path) -> list[dict]:
    """Entries of one BENCH_*.json file ([] when the file is absent)."""
    p = Path(path)
    if not p.exists():
        return []
    doc = json.loads(p.read_text(encoding="utf-8"))
    hist = doc.get("history", []) if isinstance(doc, dict) else doc
    return [e for e in hist if isinstance(e, dict)]


def series_for(
    entries: list[dict], spec: MetricSpec
) -> tuple[list[float], list[str]]:
    """``(values, timestamps)`` of one spec across a history file."""
    values: list[float] = []
    stamps: list[str] = []
    for entry in entries:
        if entry.get("benchmark") != spec.benchmark:
            continue
        v = extract(entry, spec.key)
        if v is None:
            continue
        values.append(v)
        stamps.append(str(entry.get("timestamp", "")))
    return values, stamps


def grade(
    histories: list[str | Path],
    specs: tuple[MetricSpec, ...] = DEFAULT_SPECS,
    quick: bool = False,
    window: int = DEFAULT_WINDOW,
    runs: str | Path | None = None,
) -> CheckReport:
    """Grade every tracked metric over the given BENCH history files.

    ``window`` bounds the baseline to the last K prior points so ancient
    history cannot mask a slow recent drift.  With ``runs`` set, ledger
    summaries under that root join the check: a completed run must have
    exited 0 and (when it recorded one) a truthy ``converged`` field.
    """
    entries: list[dict] = []
    for path in histories:
        entries.extend(load_history(path))
    report = CheckReport()
    for spec in specs:
        if quick and not spec.quick:
            continue
        values, stamps = series_for(entries, spec)
        if not values:
            report.skipped.append(spec.label)
            continue
        tail = values[-(window + 1):]
        report.findings.append(
            grade_series(spec, tail, stamps[-(window + 1):])
        )
    if runs is not None:
        report.findings.extend(_grade_runs(runs))
    return report


def _grade_runs(root: str | Path) -> list[Finding]:
    """Flag findings from persisted run-ledger summaries under ``root``."""
    from repro.obs.manifest import find_runs

    findings = []
    for rec in find_runs(root):
        if rec.summary is None:
            continue  # still in flight (or crashed); not this gate's job
        name = rec.path.name
        rc = rec.summary.get("exit_code", 0)
        spec = MetricSpec(f"run:{name}", "exit_code", kind="flag",
                          quick=True)
        findings.append(Finding(
            spec, float(rc == 0), None, 0.0, PASS if rc == 0 else FAIL,
            note="" if rc == 0 else f"exit code {rc}", n_points=1,
            timestamp=str(rec.summary.get("finished_utc", "")),
        ))
        if "converged" in rec.summary:
            conv = bool(rec.summary["converged"])
            cspec = MetricSpec(f"run:{name}", "converged", kind="flag",
                               quick=True)
            findings.append(Finding(
                cspec, float(conv), None, 0.0, PASS if conv else FAIL,
                note="" if conv else "SCF did not converge", n_points=1,
                timestamp=str(rec.summary.get("finished_utc", "")),
            ))
        stamp = str(rec.summary.get("finished_utc", ""))
        cp = rec.summary.get("critpath")
        if isinstance(cp, dict) and "decomposition_ok" in cp:
            ok = bool(cp["decomposition_ok"])
            dspec = MetricSpec(f"run:{name}", "critpath_decomposition_ok",
                               kind="flag", quick=True)
            findings.append(Finding(
                dspec, float(ok), None, 0.0, PASS if ok else FAIL,
                note="" if ok else (
                    f"max residual {cp.get('max_residual', '?')} s"
                ),
                n_points=1, timestamp=stamp,
            ))
        store = rec.summary.get("eri_store")
        if isinstance(store, dict) and store.get("warm_start"):
            # a warm-started store must serve everything: a single
            # recomputed quartet means the store's coverage regressed
            computed = int(store.get("computed", 0))
            sspec = MetricSpec(f"run:{name}", "store_zero_recompute",
                               kind="flag", quick=True)
            findings.append(Finding(
                sspec, float(computed == 0), None, 0.0,
                PASS if computed == 0 else FAIL,
                note="" if computed == 0 else (
                    f"{computed} quartets recomputed despite a warm store"
                ),
                n_points=1, timestamp=stamp,
            ))
        jk = rec.summary.get("jk_threads")
        if (
            isinstance(jk, dict)
            and jk.get("balance") is not None
            and int(jk.get("workers", 0)) > 1
        ):
            bal = float(jk["balance"])
            jspec = MetricSpec(f"run:{name}", "jk_worker_balance", "lower",
                               "absolute", warn=1.5, fail=3.0, quick=True,
                               unit="x")
            status = PASS if bal <= 1.5 else (WARN if bal <= 3.0 else FAIL)
            findings.append(Finding(
                jspec, bal, None, 0.0, status,
                note=f"slowest/mean J/K worker wall = {bal:.2f}x",
                n_points=1, timestamp=stamp,
            ))
    return findings


def history_text(
    histories: list[str | Path],
    specs: tuple[MetricSpec, ...] = DEFAULT_SPECS,
    last: int = 6,
) -> str:
    """Trajectory table for ``repro perf history``: last N points per metric."""
    entries: list[dict] = []
    for path in histories:
        entries.extend(load_history(path))
    lines = [f"{'metric':<44} {'n':>3}  trajectory (oldest -> newest)"]
    for spec in specs:
        values, _ = series_for(entries, spec)
        if not values:
            continue
        shown = values[-last:]
        ell = ".. " if len(values) > last else ""
        traj = " ".join(f"{v:.4g}" for v in shown)
        lines.append(f"{spec.label:<44} {len(values):>3}  {ell}{traj}")
    if len(lines) == 1:
        lines.append("(no benchmark history found)")
    return "\n".join(lines)
