"""Per-rank, per-channel flight recorder for the simulated runtime.

The paper's evidence is *per-process* accounting: communication volumes
(Table VI), one-sided call counts (Table VII), load balance (Table VIII),
and the Sec III-G model that predicts them.  :class:`CommStats` keeps the
global totals; this module splits every charge by **channel** -- the
semantic kind of traffic -- so a run can answer "which rank, which
channel, how far off the model?".

Channel taxonomy (see ``docs/OBSERVABILITY.md``):

=============== ============================================================
channel         traffic
=============== ============================================================
``prefetch_get`` GTFock's one-time D-footprint fetch (Algorithm 4, line 3)
``task_get``     NWChem's per-task D atom-block fetches (Algorithm 2)
``fock_acc``     accumulation of local J/K contributions into distributed F
``steal_d``      the victim's D-buffer copy paid on a first steal (Eq 9's s)
``steal_f``      a thief's F flush outside its own static-partition footprint
``steal_task``   queue atomics of the steal protocol (ops, no payload bytes)
``queue``        local task-queue atomics outside a steal
``counter``      ``NGA_Read_inc`` hits on the centralized scheduler counter
``retry``        fault-injected transient-op retries: re-sent payloads plus
                 exponential-backoff and injected-delay time (chaos runs)
``barrier`` / ``allreduce`` / ``broadcast`` / ``reduce_scatter``  collectives
``ga``           untagged :class:`GlobalArray` traffic (default channel)
=============== ============================================================

Two invariants make the recorder trustworthy (tested in
``tests/test_flight.py`` and revalidated by every run report):

* **exact decomposition** -- per rank, ``msgs`` and ``bytes`` summed over
  channels equal ``CommStats.calls`` / ``CommStats.bytes`` exactly: every
  counted call is tagged once, no call is tagged twice;
* **ops are separate** -- scheduler atomics that the paper does *not*
  count as one-sided GA calls (queue probes, steal transactions) live in
  the ``ops`` field and never contaminate the Table VI/VII counters.

The recorder also keeps a bounded ring buffer of the most recent events
(the "flight recorder" proper) for timeline views; overflow drops the
oldest events and counts them in :attr:`FlightRecorder.dropped_events`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

#: GTFock prefetch of the D footprint.
CH_PREFETCH_GET = "prefetch_get"
#: NWChem per-task D fetches (no prefetch is possible, Sec II-F).
CH_TASK_GET = "task_get"
#: Accumulate local J/K contributions into the distributed F.
CH_FOCK_ACC = "fock_acc"
#: Task descriptors moved by the steal protocol (queue atomics).
CH_STEAL_TASK = "steal_task"
#: Victim D-buffer copy on a first steal from a victim.
CH_STEAL_D = "steal_d"
#: Thief F traffic outside its own static-partition footprint.
CH_STEAL_F = "steal_f"
#: Local queue atomics outside the steal protocol.
CH_QUEUE = "queue"
#: Centralized-scheduler shared-counter accesses.
CH_COUNTER = "counter"
#: Fault-injected transient-op retries (re-sent bytes, backoff + delay time).
CH_RETRY = "retry"
CH_BARRIER = "barrier"
CH_ALLREDUCE = "allreduce"
CH_BROADCAST = "broadcast"
CH_REDUCE_SCATTER = "reduce_scatter"
#: Default for untagged GlobalArray access.
CH_GA = "ga"

#: Canonical report ordering of every known channel.
CHANNELS = (
    CH_PREFETCH_GET,
    CH_TASK_GET,
    CH_FOCK_ACC,
    CH_STEAL_D,
    CH_STEAL_F,
    CH_STEAL_TASK,
    CH_QUEUE,
    CH_COUNTER,
    CH_RETRY,
    CH_BARRIER,
    CH_ALLREDUCE,
    CH_BROADCAST,
    CH_REDUCE_SCATTER,
    CH_GA,
)

_FIELDS = ("msgs", "bytes", "time", "ops")


@dataclass
class FlightEvent:
    """One entry of the bounded event ring."""

    t: float
    rank: int
    channel: str
    nbytes: int
    ncalls: int
    dt: float

    def to_json(self) -> dict:
        return {
            "t": self.t,
            "rank": self.rank,
            "channel": self.channel,
            "bytes": self.nbytes,
            "calls": self.ncalls,
            "dt": self.dt,
        }


class _ChannelCounters:
    """Per-rank counters of one channel."""

    __slots__ = ("msgs", "bytes", "time", "ops")

    def __init__(self, nproc: int):
        self.msgs = np.zeros(nproc, dtype=np.int64)
        self.bytes = np.zeros(nproc, dtype=np.int64)
        self.time = np.zeros(nproc)
        self.ops = np.zeros(nproc, dtype=np.int64)


class FlightRecorder:
    """Per-rank, per-channel message/byte/time accounting + event ring.

    Parameters
    ----------
    nproc:
        Number of simulated ranks.
    max_events:
        Ring-buffer capacity; 0 disables event capture entirely (the
        per-channel counter matrix is always maintained).
    """

    def __init__(self, nproc: int, max_events: int = 4096):
        if nproc < 1:
            raise ValueError(f"need at least one rank, got {nproc}")
        self.nproc = nproc
        self.max_events = int(max_events)
        self._channels: dict[str, _ChannelCounters] = {}
        self._ring: deque[FlightEvent] = deque(maxlen=max(self.max_events, 0))
        self.dropped_events = 0

    # -- recording -----------------------------------------------------------

    def _counters(self, channel: str) -> _ChannelCounters:
        c = self._channels.get(channel)
        if c is None:
            c = _ChannelCounters(self.nproc)
            self._channels[channel] = c
        return c

    def record(
        self,
        rank: int,
        channel: str,
        nbytes: int,
        ncalls: int,
        dt: float,
        t: float = 0.0,
    ) -> None:
        """Account a counted communication operation (a GA call)."""
        c = self._counters(channel)
        c.msgs[rank] += ncalls
        c.bytes[rank] += int(nbytes)
        c.time[rank] += dt
        if self.max_events > 0:
            if len(self._ring) == self.max_events:
                self.dropped_events += 1
            self._ring.append(
                FlightEvent(float(t), rank, channel, int(nbytes), int(ncalls), dt)
            )

    def record_op(self, rank: int, channel: str, nops: int = 1) -> None:
        """Account scheduler atomics that are *not* one-sided GA calls."""
        self._counters(channel).ops[rank] += nops

    # -- queries -------------------------------------------------------------

    def channels(self) -> list[str]:
        """Channels seen so far, in canonical report order."""
        seen = set(self._channels)
        ordered = [ch for ch in CHANNELS if ch in seen]
        ordered += sorted(seen - set(CHANNELS))
        return ordered

    def events(self) -> list[FlightEvent]:
        return list(self._ring)

    def per_rank(self, channel: str, field: str = "bytes") -> np.ndarray:
        """Per-rank values of one channel (zeros if never recorded)."""
        if field not in _FIELDS:
            raise ValueError(f"unknown field {field!r}; one of {_FIELDS}")
        c = self._channels.get(channel)
        if c is None:
            dtype = float if field == "time" else np.int64
            return np.zeros(self.nproc, dtype=dtype)
        return getattr(c, field).copy()

    def matrix(self, field: str = "bytes") -> tuple[list[str], np.ndarray]:
        """``(channels, values)`` with ``values[rank, channel]``."""
        chans = self.channels()
        if not chans:
            return [], np.zeros((self.nproc, 0))
        out = np.stack([self.per_rank(ch, field) for ch in chans], axis=1)
        return chans, out

    def totals(self, field: str = "bytes") -> np.ndarray:
        """Per-rank totals over all channels."""
        _, m = self.matrix(field)
        if m.size == 0:
            dtype = float if field == "time" else np.int64
            return np.zeros(self.nproc, dtype=dtype)
        return m.sum(axis=1)

    def channel_totals(self, field: str = "bytes") -> dict[str, float]:
        """All-rank total per channel."""
        return {
            ch: (
                float(self.per_rank(ch, field).sum())
                if field == "time"
                else int(self.per_rank(ch, field).sum())
            )
            for ch in self.channels()
        }

    # -- consistency ---------------------------------------------------------

    def check_against(self, stats) -> None:
        """Assert the exact-decomposition invariant against a CommStats.

        Raises ``AssertionError`` naming the first rank/field that drifts;
        run reports call this so a broken tagging never ships silently.
        """
        msgs = self.totals("msgs")
        nbytes = self.totals("bytes")
        if not np.array_equal(msgs, stats.calls):
            bad = int(np.flatnonzero(msgs != stats.calls)[0])
            raise AssertionError(
                f"flight msgs != CommStats.calls at rank {bad}: "
                f"{int(msgs[bad])} != {int(stats.calls[bad])}"
            )
        if not np.array_equal(nbytes, stats.bytes):
            bad = int(np.flatnonzero(nbytes != stats.bytes)[0])
            raise AssertionError(
                f"flight bytes != CommStats.bytes at rank {bad}: "
                f"{int(nbytes[bad])} != {int(stats.bytes[bad])}"
            )

    # -- export --------------------------------------------------------------

    def to_json(self) -> dict:
        chans, m_bytes = self.matrix("bytes")
        _, m_msgs = self.matrix("msgs")
        _, m_time = self.matrix("time")
        _, m_ops = self.matrix("ops")
        return {
            "nproc": self.nproc,
            "channels": chans,
            "bytes": m_bytes.tolist(),
            "msgs": m_msgs.tolist(),
            "time": m_time.tolist(),
            "ops": m_ops.tolist(),
            "events": [ev.to_json() for ev in self.events()],
            "dropped_events": self.dropped_events,
        }

    def export_metrics(self, registry=None, prefix: str = "repro_flight"):
        """Export the channel matrix as labelled counters/gauges."""
        from repro.obs.metrics import get_metrics

        reg = registry if registry is not None else get_metrics()
        specs = (
            ("msgs_total", "msgs", "tagged one-sided calls", True),
            ("bytes_total", "bytes", "tagged bytes moved", True),
            ("ops_total", "ops", "scheduler atomics (not GA calls)", True),
            ("time_seconds", "time", "simulated seconds attributed", False),
        )
        for suffix, field, help_, is_counter in specs:
            name = f"{prefix}_{suffix}"
            if is_counter:
                metric = reg.counter(name, help_, labelnames=("proc", "channel"))
                for ch in self.channels():
                    vals = self.per_rank(ch, field)
                    for p in range(self.nproc):
                        if vals[p]:
                            metric.inc(int(vals[p]), proc=p, channel=ch)
            else:
                metric = reg.gauge(name, help_, labelnames=("proc", "channel"))
                for ch in self.channels():
                    vals = self.per_rank(ch, field)
                    for p in range(self.nproc):
                        if vals[p]:
                            metric.set(float(vals[p]), proc=p, channel=ch)
        return reg
