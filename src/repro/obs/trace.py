"""Dual-clock tracing with Perfetto (Chrome trace-event) export.

The reproduction runs on two clocks at once: the *host* wall clock
(real Python execution: SCF iterations, numeric ERI batches, benchmark
setup) and the *virtual* per-process clock that :class:`~repro.runtime.
network.CommStats` advances for the simulated Global-Arrays machine.
:class:`Tracer` records both kinds of span in one event stream:

* host spans are nested context managers stamped with
  ``time.perf_counter()`` relative to the tracer's epoch;
* virtual spans carry explicit start/end times in simulated seconds and
  are attached to one trace "thread" per simulated process, so a
  Perfetto timeline shows every rank as its own row.

Exports: ``write_chrome(path)`` produces Chrome trace-event JSON that
Perfetto (https://ui.perfetto.dev) opens directly; ``write_jsonl(path)``
streams the raw span records one JSON object per line.  ``write(path)``
dispatches on the ``.jsonl`` extension.

Instrumentation throughout the package calls :func:`get_tracer`, which
returns the module-level :data:`NULL_TRACER` unless a real tracer has
been installed with :func:`set_tracer` (or the ``tracing`` context
manager) -- the null tracer makes every probe a no-op, so tracing costs
essentially nothing when disabled.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

#: trace-event pid used for host (wall-clock) spans
HOST_PID = 1
#: trace-event pid used for simulated ranks (virtual clock)
SIM_PID = 2


def _coerce(obj: Any) -> Any:
    """JSON fallback for numpy scalars and other oddballs."""
    item = getattr(obj, "item", None)
    if callable(item):
        return item()
    return str(obj)


@dataclass
class TraceEvent:
    """One recorded event, times in **seconds** on its clock.

    ``phase`` follows the Chrome trace-event vocabulary: ``"X"`` for a
    complete span (``ts`` + ``dur``), ``"i"`` for an instant.
    """

    phase: str
    name: str
    cat: str
    pid: int
    tid: int
    ts: float
    dur: float = 0.0
    args: dict = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.ts + self.dur

    def to_chrome(self) -> dict:
        ev = {
            "name": self.name,
            "cat": self.cat,
            "ph": self.phase,
            "pid": self.pid,
            "tid": self.tid,
            "ts": self.ts * 1e6,  # Chrome trace events use microseconds
        }
        if self.phase == "X":
            ev["dur"] = self.dur * 1e6
        if self.phase == "i":
            ev["s"] = "t"  # instant scope: thread
        if self.args:
            ev["args"] = self.args
        return ev

    def to_record(self) -> dict:
        rec = {
            "type": "span" if self.phase == "X" else "instant",
            "clock": "virtual" if self.pid == SIM_PID else "host",
            "name": self.name,
            "cat": self.cat,
            "tid": self.tid,
            "ts": self.ts,
        }
        if self.phase == "X":
            rec["dur"] = self.dur
        if self.args:
            rec["args"] = self.args
        return rec


class Tracer:
    """Collects host and virtual spans; thread-safe for host probes."""

    enabled = True

    def __init__(self, name: str = "repro"):
        self.name = name
        self.events: list[TraceEvent] = []
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()
        self._host_tids: dict[int, int] = {}

    # -- clocks --------------------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def _host_tid(self) -> int:
        ident = threading.get_ident()
        tid = self._host_tids.get(ident)
        if tid is None:
            tid = len(self._host_tids)
            self._host_tids[ident] = tid
        return tid

    def _append(self, ev: TraceEvent) -> None:
        with self._lock:
            self.events.append(ev)

    # -- host (wall-clock) probes -------------------------------------------

    @contextmanager
    def span(self, name: str, cat: str = "host", **args) -> Iterator[dict]:
        """Record a nested wall-clock span around the ``with`` body.

        Yields the span's ``args`` dict so the body can attach results::

            with tracer.span("fock_build") as sp:
                f = build(...)
                sp["nnz"] = int(np.count_nonzero(f))
        """
        t0 = self._now()
        try:
            yield args
        finally:
            self._append(
                TraceEvent(
                    "X", name, cat, HOST_PID, self._host_tid(), t0,
                    self._now() - t0, args,
                )
            )

    def instant(self, name: str, cat: str = "host", **args) -> None:
        """Record a zero-duration wall-clock marker."""
        self._append(
            TraceEvent("i", name, cat, HOST_PID, self._host_tid(),
                       self._now(), 0.0, args)
        )

    def host_span_at(
        self, name: str, start: float, end: float, cat: str = "host", **args
    ) -> None:
        """Record a completed host span from ``time.perf_counter()`` stamps.

        For instrumentation that measures its own timing (the phase
        profiler) and only reports the span after the fact; ``start`` and
        ``end`` are absolute ``perf_counter`` values.
        """
        self._append(
            TraceEvent(
                "X", name, cat, HOST_PID, self._host_tid(),
                start - self._epoch, max(end - start, 0.0), args,
            )
        )

    # -- virtual (simulated-clock) probes -----------------------------------

    def virtual_span(
        self, name: str, proc: int, start: float, end: float,
        cat: str = "sim", **args,
    ) -> None:
        """Record a span on simulated rank ``proc``; times in virtual seconds."""
        self._append(
            TraceEvent("X", name, cat, SIM_PID, proc, start,
                       max(end - start, 0.0), args)
        )

    def virtual_instant(
        self, name: str, proc: int, t: float, cat: str = "sim", **args
    ) -> None:
        """Record an instant on simulated rank ``proc`` at virtual time ``t``."""
        self._append(TraceEvent("i", name, cat, SIM_PID, proc, t, 0.0, args))

    # -- queries -------------------------------------------------------------

    def spans(self, cat: str | None = None, pid: int | None = None) -> list[TraceEvent]:
        return [
            ev for ev in self.events
            if ev.phase == "X"
            and (cat is None or ev.cat == cat)
            and (pid is None or ev.pid == pid)
        ]

    def instants(self, name: str | None = None) -> list[TraceEvent]:
        return [
            ev for ev in self.events
            if ev.phase == "i" and (name is None or ev.name == name)
        ]

    # -- export --------------------------------------------------------------

    def chrome_trace(self) -> dict:
        """The full Chrome trace-event document (Perfetto-loadable)."""
        meta: list[dict] = [
            {"name": "process_name", "ph": "M", "pid": HOST_PID,
             "args": {"name": f"{self.name} host (wall clock)"}},
            {"name": "process_name", "ph": "M", "pid": SIM_PID,
             "args": {"name": f"{self.name} simulated ranks (virtual clock)"}},
        ]
        sim_tids = sorted({ev.tid for ev in self.events if ev.pid == SIM_PID})
        for tid in sim_tids:
            meta.append(
                {"name": "thread_name", "ph": "M", "pid": SIM_PID, "tid": tid,
                 "args": {"name": f"rank {tid}"}}
            )
        for _, tid in sorted(self._host_tids.items(), key=lambda kv: kv[1]):
            meta.append(
                {"name": "thread_name", "ph": "M", "pid": HOST_PID, "tid": tid,
                 "args": {"name": f"thread {tid}"}}
            )
        return {
            "traceEvents": meta + [ev.to_chrome() for ev in self.events],
            "displayTimeUnit": "ms",
        }

    def write_chrome(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh, default=_coerce)

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as fh:
            for ev in self.events:
                fh.write(json.dumps(ev.to_record(), default=_coerce) + "\n")

    def write(self, path: str) -> None:
        """Write ``.jsonl`` span records or (default) Chrome trace JSON."""
        if str(path).endswith(".jsonl"):
            self.write_jsonl(path)
        else:
            self.write_chrome(path)


class _NullArgs:
    """Write-only sink yielded by the null tracer's spans."""

    __slots__ = ()

    def __setitem__(self, key, value) -> None:
        pass

    def update(self, *a, **kw) -> None:
        pass


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> _NullArgs:
        return _NULL_ARGS

    def __exit__(self, *exc) -> bool:
        return False


_NULL_ARGS = _NullArgs()
_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """Free-of-charge tracer: every probe is a no-op."""

    enabled = False

    def span(self, name: str, cat: str = "host", **args):  # type: ignore[override]
        return _NULL_SPAN

    def instant(self, name: str, cat: str = "host", **args) -> None:
        pass

    def host_span_at(self, name, start, end, cat="host", **args) -> None:
        pass

    def virtual_span(self, name, proc, start, end, cat="sim", **args) -> None:
        pass

    def virtual_instant(self, name, proc, t, cat="sim", **args) -> None:
        pass


#: the shared disabled tracer; ``get_tracer()`` returns it by default
NULL_TRACER = NullTracer()

_active: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The process-wide active tracer (the no-op tracer unless enabled)."""
    return _active


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` (None restores the null tracer); returns the old one."""
    global _active
    previous = _active
    _active = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Activate a tracer for the duration of a ``with`` block."""
    tracer = tracer if tracer is not None else Tracer()
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
