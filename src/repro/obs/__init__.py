"""Unified observability: dual-clock tracing and labelled metrics.

``repro.obs`` is the substrate the evaluation stands on -- the paper's
Tables VI-VIII and Figure 2 are all observability artifacts.  Two parts:

* :mod:`repro.obs.trace` -- :class:`Tracer` with nested host (wall-clock)
  spans and explicit-time virtual spans for simulated ranks, exported as
  Chrome trace-event JSON (open in Perfetto) or JSONL;
* :mod:`repro.obs.metrics` -- :class:`MetricsRegistry` of labelled
  Counters/Gauges/Histograms with JSON + Prometheus exposition, and the
  :func:`export_commstats` bridge from the runtime's accounting;
* :mod:`repro.obs.flight` -- the per-rank, per-channel
  :class:`FlightRecorder` every :class:`CommStats` charge flows through;
* :mod:`repro.obs.validate` / :mod:`repro.obs.report` -- Sec III-G
  model-vs-measured validation and the self-contained HTML run report
  (``repro report``);
* :mod:`repro.obs.profile` -- :class:`PhaseProfiler` attributing wall /
  CPU / peak-allocation cost to named pipeline phases, plus the opt-in
  cProfile hotspot capture (``repro perf profile``);
* :mod:`repro.obs.manifest` -- the :class:`RunLedger` writing durable
  run directories (``manifest.json`` / ``metrics.jsonl`` /
  ``summary.json``) and the loader behind ``repro report <rundir>``;
* :mod:`repro.obs.regress` -- the regression observatory grading the
  BENCH_*.json perf trajectories (``repro perf check``).

Both default to process-wide singletons (:func:`get_tracer` /
:func:`get_metrics`); the default tracer is a no-op so instrumented code
pays nothing until ``--trace`` (or :func:`set_tracer`) turns it on.

See ``docs/OBSERVABILITY.md`` for the span schema and metric names.
"""

from repro.obs.flight import (
    CHANNELS,
    FlightEvent,
    FlightRecorder,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    export_commstats,
    get_metrics,
    set_metrics,
)
from repro.obs.manifest import (
    LedgerError,
    NullLedger,
    RunLedger,
    RunRecord,
    get_ledger,
    load_run,
    provenance,
    set_ledger,
)
from repro.obs.profile import (
    NullProfiler,
    PhaseProfiler,
    get_profiler,
    profiling,
    set_profiler,
)
from repro.obs.trace import (
    HOST_PID,
    NULL_TRACER,
    SIM_PID,
    NullTracer,
    TraceEvent,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "CHANNELS",
    "FlightEvent",
    "FlightRecorder",
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "export_commstats",
    "get_metrics",
    "set_metrics",
    "LedgerError",
    "NullLedger",
    "RunLedger",
    "RunRecord",
    "get_ledger",
    "load_run",
    "provenance",
    "set_ledger",
    "NullProfiler",
    "PhaseProfiler",
    "get_profiler",
    "profiling",
    "set_profiler",
    "HOST_PID",
    "NULL_TRACER",
    "SIM_PID",
    "NullTracer",
    "TraceEvent",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "tracing",
]
