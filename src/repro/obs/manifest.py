"""Run ledger: durable per-run artifact directories.

Every interesting run should survive its process.  A :class:`RunLedger`
owns one **run directory** in the curv-embedding artifact layout
(SNIPPETS.md Snippet 1):

* ``manifest.json`` -- written at *start*: the command, its config and a
  stable hash of it, molecule/basis/seed identification, and the full
  :func:`provenance` block (package version, git SHA, numpy/scipy/python
  versions, CPU count, platform), stamped with a timezone-aware UTC
  start time.  A crash after this point still leaves a findable record.
* ``metrics.jsonl`` -- *streamed* snapshots of the process-wide metrics
  registry, one JSON object per line: the SCF driver snapshots after
  every iteration, the Fock/report drivers after every build, and
  :meth:`RunLedger.close` always appends a ``final`` snapshot.
* ``summary.json`` -- written at *close*: exit code, wall time, phase
  profile, hotspot table, and any result fields the command attached.

The ledger is a process-wide singleton behind :func:`get_ledger` /
:func:`set_ledger` (same pattern as the tracer, metrics registry, and
phase profiler); the default :data:`NULL_LEDGER` makes every probe a
no-op.  The CLI arms it with ``--run-dir PATH`` on every subcommand.

:func:`load_run` reads a persisted run directory back -- it is what lets
``repro report <rundir>`` render a report *after the fact* and what the
regression observatory feeds on -- and raises :class:`LedgerError` with
a **field-named** message (never a traceback soup) on anything missing
or malformed.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

MANIFEST_NAME = "manifest.json"
METRICS_NAME = "metrics.jsonl"
SUMMARY_NAME = "summary.json"

#: manifest fields load_run refuses to go on without
REQUIRED_MANIFEST_FIELDS = (
    "schema", "command", "config", "config_hash", "provenance",
    "started_utc",
)
#: summary fields load_run refuses to go on without
REQUIRED_SUMMARY_FIELDS = ("finished_utc", "exit_code")

LEDGER_SCHEMA = 1


class LedgerError(ValueError):
    """A run directory is missing or structurally broken (field-named)."""


def utc_now_iso() -> str:
    """Timezone-aware UTC timestamp, ISO-8601 with offset."""
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def config_hash(config: dict) -> str:
    """Stable content hash of a config mapping (key order independent)."""
    blob = json.dumps(config, sort_keys=True, separators=(",", ":"),
                      default=str)
    return "sha256:" + hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _git_sha() -> str:
    """HEAD of the repository containing this package (or "unknown")."""
    here = os.path.dirname(os.path.abspath(__file__))
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=here, capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def _dist_version(name: str) -> str:
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version(name)
    except Exception:
        return "unknown"


def provenance() -> dict:
    """The provenance block embedded in every manifest.

    The same block backs ``repro info`` and ``repro --version``, so what
    a human sees and what a manifest records cannot drift.
    """
    import platform

    import numpy

    try:
        import scipy

        scipy_version = scipy.__version__
    except Exception:  # pragma: no cover - scipy is a hard dependency
        scipy_version = "unavailable"
    return {
        "package": "repro",
        "version": _dist_version("repro"),
        "git_sha": _git_sha(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "scipy": scipy_version,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
    }


class RunLedger:
    """Writes one run directory (manifest / metrics stream / summary)."""

    enabled = True

    def __init__(
        self,
        directory: str | os.PathLike,
        command: str,
        config: dict | None = None,
        molecule: str | None = None,
        basis: str | None = None,
        seed: int | None = None,
        argv: list[str] | None = None,
        extra: dict | None = None,
    ):
        self.path = Path(directory)
        self.path.mkdir(parents=True, exist_ok=True)
        self._t0 = time.perf_counter()
        self._seq = 0
        self._closed = False
        self.summary_extra: dict[str, Any] = {}
        self.phases: list[dict] | None = None
        self.hotspots: dict | None = None
        cfg = dict(config or {})
        self.manifest = {
            "schema": LEDGER_SCHEMA,
            "command": command,
            "argv": list(argv) if argv is not None else list(sys.argv[1:]),
            "config": cfg,
            "config_hash": config_hash(cfg),
            "molecule": molecule,
            "basis": basis,
            "seed": seed,
            "provenance": provenance(),
            "started_utc": utc_now_iso(),
        }
        if extra:
            # caller-owned identification (e.g. the service's job id /
            # attempt / worker) -- must not shadow the schema fields
            for key, value in extra.items():
                self.manifest.setdefault(key, value)
        with open(self.path / MANIFEST_NAME, "w", encoding="utf-8") as fh:
            json.dump(self.manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        self._metrics_fh = open(
            self.path / METRICS_NAME, "w", encoding="utf-8"
        )

    # -- streaming -------------------------------------------------------

    def snapshot(self, label: str, registry=None, **extra) -> None:
        """Append one metrics-registry snapshot line to ``metrics.jsonl``."""
        if self._closed:
            return
        from repro.obs.metrics import get_metrics

        reg = registry if registry is not None else get_metrics()
        record = {
            "seq": self._seq,
            "ts_utc": utc_now_iso(),
            "wall_s": round(time.perf_counter() - self._t0, 6),
            "label": label,
        }
        if extra:
            record.update(extra)
        record["metrics"] = reg.to_json()
        self._metrics_fh.write(json.dumps(record, default=str) + "\n")
        self._metrics_fh.flush()
        self._seq += 1

    def add_summary(self, **fields) -> None:
        """Attach result fields to the eventual ``summary.json``."""
        self.summary_extra.update(fields)

    def attach_profile(self, profiler=None, hotspots=None) -> None:
        """Record a phase profile and/or hotspot table in the summary."""
        if profiler is not None and profiler.enabled:
            self.phases = profiler.to_json()
        if hotspots is not None:
            self.hotspots = hotspots.to_json()

    # -- finalization ------------------------------------------------------

    def close(self, exit_code: int = 0) -> None:
        """Write ``summary.json`` and seal the run directory (idempotent)."""
        if self._closed:
            return
        self.snapshot("final")
        self._closed = True
        self._metrics_fh.close()
        summary = {
            "finished_utc": utc_now_iso(),
            "exit_code": int(exit_code),
            "wall_s": round(time.perf_counter() - self._t0, 4),
            "snapshots": self._seq,
        }
        if self.phases is not None:
            summary["phases"] = self.phases
        if self.hotspots is not None:
            summary["hotspots"] = self.hotspots
        summary.update(self.summary_extra)
        with open(self.path / SUMMARY_NAME, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True, default=str)
            fh.write("\n")


class NullLedger(RunLedger):
    """Free-of-charge ledger: every probe is a no-op."""

    enabled = False

    def __init__(self):
        self._closed = True
        self.summary_extra = {}
        self.phases = None
        self.hotspots = None

    def snapshot(self, label: str, registry=None, **extra) -> None:
        pass

    def add_summary(self, **fields) -> None:
        pass

    def attach_profile(self, profiler=None, hotspots=None) -> None:
        pass

    def close(self, exit_code: int = 0) -> None:
        pass


#: the shared disabled ledger; ``get_ledger()`` returns it by default
NULL_LEDGER = NullLedger()

_active: RunLedger = NULL_LEDGER


def get_ledger() -> RunLedger:
    """The process-wide active run ledger (the no-op one unless armed)."""
    return _active


def set_ledger(ledger: RunLedger | None) -> RunLedger:
    """Install ``ledger`` (None restores the null one); returns the old."""
    global _active
    previous = _active
    _active = ledger if ledger is not None else NULL_LEDGER
    return previous


# ---------------------------------------------------------------------------
# loading persisted runs back
# ---------------------------------------------------------------------------


@dataclass
class RunRecord:
    """One persisted run directory, loaded and validated."""

    path: Path
    manifest: dict
    snapshots: list[dict] = field(default_factory=list)
    summary: dict | None = None

    @property
    def title(self) -> str:
        mol = self.manifest.get("molecule") or ""
        basis = self.manifest.get("basis") or ""
        parts = [p for p in (self.manifest.get("command"), mol, basis) if p]
        return "-".join(parts) or self.path.name

    @property
    def phases(self) -> list[dict]:
        return list((self.summary or {}).get("phases") or [])

    @property
    def hotspots(self) -> dict | None:
        return (self.summary or {}).get("hotspots")


def _read_json(path: Path, artifact: str) -> Any:
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise LedgerError(
            f"run directory {path.parent} is missing the required "
            f"artifact {artifact!r}"
        ) from None
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise LedgerError(f"{artifact} is not valid JSON: {exc}") from None


def load_run(directory: str | os.PathLike, strict: bool = True) -> RunRecord:
    """Load a run directory written by :class:`RunLedger`.

    With ``strict=True`` (default) an incomplete run -- no
    ``summary.json``, i.e. the process died before :meth:`RunLedger.close`
    -- is an error; ``strict=False`` returns the partial record with
    ``summary=None`` so crashed runs remain inspectable.
    """
    path = Path(directory)
    if not path.is_dir():
        raise LedgerError(f"run directory {path} does not exist")
    manifest = _read_json(path / MANIFEST_NAME, MANIFEST_NAME)
    if not isinstance(manifest, dict):
        raise LedgerError(f"{MANIFEST_NAME}: expected a JSON object")
    for fld in REQUIRED_MANIFEST_FIELDS:
        if fld not in manifest:
            raise LedgerError(
                f"{MANIFEST_NAME}: missing required field {fld!r}"
            )
    snapshots: list[dict] = []
    metrics_path = path / METRICS_NAME
    if metrics_path.exists():
        for lineno, line in enumerate(
            metrics_path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if not line.strip():
                continue
            try:
                snapshots.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise LedgerError(
                    f"{METRICS_NAME}: line {lineno} is not valid JSON: {exc}"
                ) from None
    elif strict:
        raise LedgerError(
            f"run directory {path} is missing the required artifact "
            f"{METRICS_NAME!r}"
        )
    summary = None
    if (path / SUMMARY_NAME).exists():
        summary = _read_json(path / SUMMARY_NAME, SUMMARY_NAME)
        for fld in REQUIRED_SUMMARY_FIELDS:
            if fld not in summary:
                raise LedgerError(
                    f"{SUMMARY_NAME}: missing required field {fld!r}"
                )
    elif strict:
        raise LedgerError(
            f"run directory {path} has no {SUMMARY_NAME} -- the run never "
            "completed (pass strict=False to inspect the partial record)"
        )
    return RunRecord(
        path=path, manifest=manifest, snapshots=snapshots, summary=summary
    )


def find_runs(root: str | os.PathLike) -> list[RunRecord]:
    """All loadable run directories directly under ``root``, oldest first.

    Unloadable subdirectories are skipped (a half-written run must not
    take the observatory down); completed runs sort by start time.
    """
    rootp = Path(root)
    records = []
    if not rootp.is_dir():
        return records
    for sub in sorted(rootp.iterdir()):
        if not (sub / MANIFEST_NAME).exists():
            continue
        try:
            records.append(load_run(sub, strict=False))
        except LedgerError:
            continue
    records.sort(key=lambda r: str(r.manifest.get("started_utc", "")))
    return records
