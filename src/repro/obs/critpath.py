"""Critical-path analyzer and what-if projector for simulated Fock builds.

Consumes the raw per-run accounting a simulation deposits into a
``SimCapture`` (see :mod:`repro.fock.simulate`; this module deliberately
duck-types the capture so :mod:`repro.obs` never imports
:mod:`repro.fock`) and answers the three questions the totals-only
observability stack cannot:

1. **Where did each rank's time go?**  An exact per-rank decomposition
   into compute / comm-by-channel / steal-copy / idle-blocked segments
   that sums to the rank's end time -- an invariant in the style of
   :meth:`~repro.obs.flight.FlightRecorder.check_against`, enforced to
   1e-9 on fault-free runs (fault injection legitimately introduces
   message-delay slack, which is reported, not hidden).

2. **Which chain of segments bounds the makespan?**  The critical path
   is walked backwards from the slowest rank; a ``blocked`` segment (a
   done rank parked until a death wakes it to adopt orphans -- the only
   cross-rank start dependency the scheduler has) hops the walk to the
   dead rank's chain.  The ranked blame table aggregates path seconds by
   segment kind.

3. **What would a knob change buy?**  Differential what-if projections
   replay the *recorded* per-rank structure under perturbed parameters
   (network alpha-beta scaled, stealing disabled, perfect static
   balance, prefetch coalesced into one GA call) and, where the capture
   carries a ``resimulate`` closure, cross-check the projection against
   an actual re-simulation with a graded PASS / WARN / FAIL verdict.

Terminology: a rank's *end* is its own finish (post-flush); the
*makespan* is the slowest end; *idle* is the endgame wait between the
two and is never on the critical path (the bounding rank has none).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.obs.flight import CH_PREFETCH_GET, CHANNELS
from repro.obs.trace import SIM_PID

if TYPE_CHECKING:
    from repro.fock.simulate import SimCapture

#: decomposition tolerance: per-rank segments must sum to the rank's end
#: time within this on fault-free runs
DECOMP_TOL = 1e-9
#: timestamp matching tolerance when joining tracer spans to event times
_T_EPS = 1e-9

#: what-if verdict thresholds: projection vs re-simulation relative error
WHATIF_PASS = 0.15
WHATIF_WARN = 0.30


# ---------------------------------------------------------------------------
# per-rank exact decomposition


@dataclass
class RankBreakdown:
    """One rank's time, decomposed; ``residual`` is what the model missed."""

    proc: int
    #: pure task-execution seconds (straggler factors included)
    compute: float
    #: comm seconds per flight-recorder channel (prefetch, flush, steal...)
    comm: dict[str, float]
    #: done-and-parked wait before being woken to adopt orphans
    blocked: float
    #: endgame wait behind the slowest rank (makespan - own end)
    idle: float
    #: this rank's own finish time (post-flush)
    end: float
    #: end - (compute + comm + blocked): nonzero only under fault
    #: injection, where delayed completion events insert real waits the
    #: accounting cannot attribute to any channel
    residual: float

    @property
    def comm_total(self) -> float:
        return sum(self.comm.values())

    def to_json(self) -> dict:
        return {
            "proc": self.proc,
            "compute": self.compute,
            "comm": dict(self.comm),
            "comm_total": self.comm_total,
            "blocked": self.blocked,
            "idle": self.idle,
            "end": self.end,
            "residual": self.residual,
        }


@dataclass
class Decomposition:
    """Per-rank exact decomposition of a simulated run."""

    ranks: list[RankBreakdown]
    makespan: float
    #: True when the run had fault injection (residuals are expected)
    faulty: bool

    @property
    def max_residual(self) -> float:
        return max((abs(r.residual) for r in self.ranks), default=0.0)

    @property
    def idle_fraction(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return float(np.mean([r.idle for r in self.ranks])) / self.makespan

    @property
    def ok(self) -> bool:
        """The exact-decomposition invariant: no unexplained residual."""
        return self.faulty or self.max_residual <= DECOMP_TOL

    def check(self) -> None:
        """Assert the invariant, naming the first drifting rank."""
        if self.faulty:
            return  # message-delay slack is legitimate under faults
        for r in self.ranks:
            if abs(r.residual) > DECOMP_TOL:
                raise AssertionError(
                    f"decomposition drift on rank {r.proc}: "
                    f"compute {r.compute:.9g} + comm {r.comm_total:.9g} "
                    f"+ blocked {r.blocked:.9g} != end {r.end:.9g} "
                    f"(residual {r.residual:.3e} > {DECOMP_TOL:g})"
                )

    def to_json(self) -> dict:
        return {
            "makespan": self.makespan,
            "faulty": self.faulty,
            "ok": self.ok,
            "max_residual": self.max_residual,
            "idle_fraction": self.idle_fraction,
            "ranks": [r.to_json() for r in self.ranks],
        }


def decompose(capture: "SimCapture") -> Decomposition:
    """Exact per-rank time decomposition of a captured run.

    Every second of a rank's end time is attributed: compute comes from
    the scheduler's executed-cost accounting, comm from the flight
    recorder's per-channel time matrix (whose own invariant against
    ``CommStats`` is checked elsewhere), blocked waits from the
    scheduler's orphan-adoption records.  Whatever remains is the
    residual -- zero to 1e-9 on fault-free runs.
    """
    stats = capture.stats
    outcome = capture.outcome
    if stats is None or outcome is None or capture.finish is None:
        raise ValueError("capture is not populated; pass it to a simulation")
    nproc = capture.nproc
    end = np.asarray(capture.finish, dtype=float)
    makespan = float(end.max())
    blocked = (
        outcome.blocked_time
        if outcome.blocked_time is not None
        else np.zeros(nproc)
    )
    per_channel = {
        ch: stats.flight.per_rank(ch, "time") for ch in CHANNELS
    }
    ranks = []
    for p in range(nproc):
        comm = {
            ch: float(t[p]) for ch, t in per_channel.items() if t[p] > 0.0
        }
        compute = float(outcome.executed_cost[p])
        residual = end[p] - compute - sum(comm.values()) - float(blocked[p])
        ranks.append(
            RankBreakdown(
                proc=p,
                compute=compute,
                comm=comm,
                blocked=float(blocked[p]),
                idle=makespan - float(end[p]),
                end=float(end[p]),
                residual=float(residual),
            )
        )
    faulty = bool(outcome.dead_ranks) or bool(
        getattr(capture.stats, "faults", None)
    )
    return Decomposition(ranks=ranks, makespan=makespan, faulty=faulty)


# ---------------------------------------------------------------------------
# critical-path extraction


@dataclass(frozen=True)
class PathSegment:
    """One interval on a rank's chain (possibly on the critical path)."""

    proc: int
    start: float
    end: float
    #: "prefetch" | "compute" | "steal" | "blocked" | "flush" | "slack"
    kind: str
    detail: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_json(self) -> dict:
        return {
            "proc": self.proc,
            "start": self.start,
            "end": self.end,
            "kind": self.kind,
            "detail": self.detail,
            "duration": self.duration,
        }


#: tracer span name -> path segment kind
_SPAN_KINDS = {
    "prefetch": "prefetch",
    "flush": "flush",
    "steal_copy": "steal",
    "batch": "compute",
    "blocked": "blocked",
}


def rank_chains(capture: "SimCapture") -> list[list[PathSegment]]:
    """Chronological segment chain per rank, gaps filled with ``slack``.

    Built from the run's virtual tracer spans; requires the capture's
    tracer to have been enabled during the run (``repro analyze`` and
    the HTML report install one).  Each rank's chain covers
    ``[0, end(p)]`` completely.
    """
    tracer = capture.tracer
    if tracer is None or not getattr(tracer, "enabled", False):
        raise ValueError(
            "critical-path extraction needs the run traced: pass an "
            "enabled Tracer to the simulation that filled the capture"
        )
    end = np.asarray(capture.finish, dtype=float)
    raw: list[list[PathSegment]] = [[] for _ in range(capture.nproc)]
    for ev in tracer.spans(pid=SIM_PID):
        kind = _SPAN_KINDS.get(ev.name)
        if kind is None:
            continue  # per-task spans duplicate their batch span
        detail = ""
        if ev.name == "steal_copy":
            detail = f"D copy from p{ev.args.get('victim', '?')}"
        elif ev.name == "batch":
            detail = f"{ev.args.get('ntasks', '?')} tasks"
        raw[ev.tid].append(PathSegment(ev.tid, ev.ts, ev.end, kind, detail))
    chains: list[list[PathSegment]] = []
    for p in range(capture.nproc):
        segs = sorted(raw[p], key=lambda s: (s.start, s.end))
        chain: list[PathSegment] = []
        cursor = 0.0
        for s in segs:
            if s.start > cursor + _T_EPS:
                chain.append(PathSegment(p, cursor, s.start, "slack"))
            chain.append(s)
            cursor = max(cursor, s.end)
        if end[p] > cursor + _T_EPS:
            chain.append(PathSegment(p, cursor, float(end[p]), "slack"))
        chains.append(chain)
    return chains


@dataclass
class CriticalPath:
    """The chain of segments bounding the makespan."""

    segments: list[PathSegment]
    makespan: float
    #: (waiting_rank, dead_rank, time) for every cross-rank hop taken
    hops: list[tuple[int, int, float]] = field(default_factory=list)

    @property
    def length(self) -> float:
        """Seconds of the makespan the path explains."""
        return sum(s.duration for s in self.segments)

    @property
    def explained_ratio(self) -> float:
        return self.length / self.makespan if self.makespan > 0 else 1.0

    def blame(self) -> list[tuple[str, float, int]]:
        """``(kind, seconds, count)`` ranked by seconds, descending."""
        agg: dict[str, tuple[float, int]] = {}
        for s in self.segments:
            t, n = agg.get(s.kind, (0.0, 0))
            agg[s.kind] = (t + s.duration, n + 1)
        return sorted(
            ((k, t, n) for k, (t, n) in agg.items()),
            key=lambda x: -x[1],
        )

    def to_json(self) -> dict:
        return {
            "makespan": self.makespan,
            "length": self.length,
            "explained_ratio": self.explained_ratio,
            "hops": [list(h) for h in self.hops],
            "blame": [
                {"kind": k, "seconds": t, "count": n}
                for k, t, n in self.blame()
            ],
            "segments": [s.to_json() for s in self.segments],
        }


def extract_path(
    capture: "SimCapture", chains: list[list[PathSegment]] | None = None
) -> CriticalPath:
    """Walk the critical path backwards from the slowest rank.

    Within a rank the chain is sequential, so every segment before the
    cursor is on the path.  The only cross-rank start dependency the
    scheduler has is orphan adoption: a ``blocked`` segment ends exactly
    at a rank death, so the walk hops to the dead rank's chain there and
    continues before the death.  Fault-free runs never hop: the path is
    the bounding rank's whole chain and ``explained_ratio == 1``.
    """
    if chains is None:
        chains = rank_chains(capture)
    end = np.asarray(capture.finish, dtype=float)
    makespan = float(end.max())
    bounding = int(end.argmax())
    deaths = (
        capture.tracer.instants(name="death")
        if capture.tracer is not None
        else []
    )
    path: list[PathSegment] = []
    hops: list[tuple[int, int, float]] = []
    rank, cursor = bounding, makespan
    visited: set[tuple[int, float]] = set()
    while True:
        segs = [s for s in chains[rank] if s.end <= cursor + _T_EPS]
        hop_from: PathSegment | None = None
        for s in reversed(segs):
            path.append(s)
            if s.kind == "blocked":
                hop_from = s
                break
        if hop_from is None:
            break
        dead = next(
            (
                ev
                for ev in deaths
                if abs(ev.ts - hop_from.end) <= _T_EPS
            ),
            None,
        )
        if dead is None or (dead.tid, hop_from.end) in visited:
            break  # cause not traced (or cyclic); stop cleanly
        visited.add((dead.tid, hop_from.end))
        hops.append((rank, dead.tid, hop_from.end))
        rank, cursor = dead.tid, float(dead.ts)
    path.reverse()
    return CriticalPath(segments=path, makespan=makespan, hops=hops)


# ---------------------------------------------------------------------------
# differential what-if projection


@dataclass
class WhatIf:
    """One projected perturbation of the recorded run."""

    name: str
    description: str
    #: makespan projected from the recorded per-rank structure
    projected_makespan: float
    #: baseline makespan / projected makespan
    speedup: float
    #: makespan of an actual re-simulation under the perturbation
    resim_makespan: float | None = None
    #: |projection - resim| / resim
    rel_err: float | None = None
    #: "PASS" | "WARN" | "FAIL" when cross-checked, "PROJECTED" otherwise
    verdict: str = "PROJECTED"

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "projected_makespan": self.projected_makespan,
            "speedup": self.speedup,
            "resim_makespan": self.resim_makespan,
            "rel_err": self.rel_err,
            "verdict": self.verdict,
        }


def _graded(w: WhatIf, resim: float) -> WhatIf:
    w.resim_makespan = resim
    w.rel_err = (
        abs(w.projected_makespan - resim) / resim if resim > 0 else 0.0
    )
    if w.rel_err <= WHATIF_PASS:
        w.verdict = "PASS"
    elif w.rel_err <= WHATIF_WARN:
        w.verdict = "WARN"
    else:
        w.verdict = "FAIL"
    return w


def project_whatifs(
    capture: "SimCapture",
    decomp: Decomposition,
    resim: bool = True,
    network_scale: float = 2.0,
) -> list[WhatIf]:
    """Differential what-if projections, cross-checked where possible.

    The projections replay the *recorded* per-rank totals under
    perturbed parameters; they deliberately do not re-schedule, which is
    exactly what makes them cheap -- and what the re-simulation
    cross-check guards.  Scenarios whose perturbation cannot be
    re-simulated (perfect balance, coalesced prefetch) stay
    ``PROJECTED``.
    """
    out: list[WhatIf] = []
    base = decomp.makespan
    end = np.asarray(capture.finish, dtype=float)
    comm_total = np.array([r.comm_total for r in decomp.ranks])
    config = capture.config
    outcome = capture.outcome
    can_resim = resim and capture.resimulate is not None

    # -- network alpha-beta scaled by `network_scale` (slower) --------------
    f = float(network_scale)
    proj = float(np.max(end + (f - 1.0) * comm_total))
    w = WhatIf(
        name=f"network_{f:g}x",
        description=(
            f"network {f:g}x slower (latency x{f:g}, bandwidth /{f:g}): "
            "every recorded comm second scales linearly in alpha-beta"
        ),
        projected_makespan=proj,
        speedup=base / proj if proj > 0 else 1.0,
    )
    if can_resim:
        w = _graded(
            w,
            capture.resimulate(
                latency=config.latency * f, bandwidth=config.bandwidth / f
            ),
        )
    out.append(w)

    # -- stealing disabled ---------------------------------------------------
    if outcome.initial_cost is not None:
        pf = np.asarray(capture.prefetch_time, dtype=float)
        fl = np.asarray(capture.flush_time, dtype=float)
        proj = float(np.max(pf + np.asarray(outcome.initial_cost) + fl))
        w = WhatIf(
            name="no_stealing",
            description=(
                "work stealing disabled: each rank computes exactly its "
                "initial static-partition queue, then flushes"
            ),
            projected_makespan=proj,
            speedup=base / proj if proj > 0 else 1.0,
        )
        if can_resim:
            w = _graded(w, capture.resimulate(enable_stealing=False))
        out.append(w)

        # -- perfect static balance (projection only) -----------------------
        mean_cost = float(np.mean(outcome.initial_cost))
        proj = float(np.max(pf + mean_cost + fl))
        out.append(
            WhatIf(
                name="perfect_balance",
                description=(
                    "oracle static partition: total compute spread evenly, "
                    "no steal traffic (lower bound on balance gains)"
                ),
                projected_makespan=proj,
                speedup=base / proj if proj > 0 else 1.0,
            )
        )

    # -- prefetch coalesced into one GA call (projection only) ---------------
    pf = np.asarray(capture.prefetch_time, dtype=float)
    pf_bytes = capture.stats.flight.per_rank(CH_PREFETCH_GET, "bytes")
    new_pf = np.where(
        pf > 0, config.latency + pf_bytes / config.bandwidth, 0.0
    )
    proj = float(np.max(end - pf + new_pf))
    out.append(
        WhatIf(
            name="prefetch_coalesced",
            description=(
                "prefetch granularity: the whole D footprint fetched in a "
                "single GA call instead of one per bounding box"
            ),
            projected_makespan=proj,
            speedup=base / proj if proj > 0 else 1.0,
        )
    )
    return out


# ---------------------------------------------------------------------------
# the analysis bundle


@dataclass
class CritPathAnalysis:
    """Everything the analyzer produced for one captured run."""

    algorithm: str
    molecule: str
    cores: int
    nproc: int
    decomposition: Decomposition
    chains: list[list[PathSegment]] | None
    path: CriticalPath | None
    whatifs: list[WhatIf]

    def check(self) -> None:
        """Raise AssertionError on any invariant violation or FAIL verdict."""
        self.decomposition.check()
        for w in self.whatifs:
            if w.verdict == "FAIL":
                raise AssertionError(
                    f"what-if {w.name!r} projection drifted "
                    f"{w.rel_err:.1%} from its re-simulation "
                    f"(> {WHATIF_WARN:.0%})"
                )

    def summary(self) -> dict:
        """Compact dict for the run ledger / regression observatory."""
        return {
            "makespan": self.decomposition.makespan,
            "idle_fraction": self.decomposition.idle_fraction,
            "max_residual": self.decomposition.max_residual,
            "decomposition_ok": self.decomposition.ok,
            "explained_ratio": (
                self.path.explained_ratio if self.path is not None else None
            ),
            "whatif_max_rel_err": max(
                (w.rel_err for w in self.whatifs if w.rel_err is not None),
                default=None,
            ),
            "whatifs": {
                w.name: {
                    "speedup": w.speedup,
                    "rel_err": w.rel_err,
                    "verdict": w.verdict,
                }
                for w in self.whatifs
            },
        }

    def to_json(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "molecule": self.molecule,
            "cores": self.cores,
            "nproc": self.nproc,
            "decomposition": self.decomposition.to_json(),
            "path": self.path.to_json() if self.path is not None else None,
            "whatifs": [w.to_json() for w in self.whatifs],
            "chains": (
                [[s.to_json() for s in chain] for chain in self.chains]
                if self.chains is not None
                else None
            ),
        }

    def export_metrics(self, registry=None) -> None:
        """Export ``repro_critpath_*`` gauges to the metrics registry."""
        from repro.obs.metrics import get_metrics

        reg = registry if registry is not None else get_metrics()
        d = self.decomposition
        reg.gauge(
            "repro_critpath_makespan_seconds",
            "Makespan of the analyzed simulated Fock build",
        ).set(d.makespan)
        reg.gauge(
            "repro_critpath_idle_fraction",
            "Average endgame idle fraction across ranks",
        ).set(d.idle_fraction)
        reg.gauge(
            "repro_critpath_max_residual_seconds",
            "Largest per-rank decomposition residual (0 means exact)",
        ).set(d.max_residual)
        if self.path is not None:
            reg.gauge(
                "repro_critpath_explained_ratio",
                "Fraction of the makespan covered by the critical path",
            ).set(self.path.explained_ratio)
            blame = reg.gauge(
                "repro_critpath_blame_seconds",
                "Critical-path seconds attributed to each segment kind",
                labelnames=("kind",),
            )
            for kind, seconds, _count in self.path.blame():
                blame.set(seconds, kind=kind)
        speedup = reg.gauge(
            "repro_critpath_whatif_speedup",
            "Projected makespan speedup under each what-if scenario",
            labelnames=("scenario",),
        )
        relerr = reg.gauge(
            "repro_critpath_whatif_rel_err",
            "Projection vs re-simulation relative error per scenario",
            labelnames=("scenario",),
        )
        for w in self.whatifs:
            speedup.set(w.speedup, scenario=w.name)
            if w.rel_err is not None:
                relerr.set(w.rel_err, scenario=w.name)

    # -- terminal rendering --------------------------------------------------

    def text(self) -> str:
        """Terminal report: decomposition, blame table, what-if table."""
        d = self.decomposition
        lines = [
            f"critical-path analysis: {self.algorithm} "
            f"{self.molecule or '?'} @ {self.cores} cores "
            f"({self.nproc} ranks)",
            f"makespan {d.makespan * 1e3:.3f} ms   "
            f"idle fraction {d.idle_fraction:.1%}   "
            f"max residual {d.max_residual:.2e}s "
            f"[{'ok' if d.ok else 'DRIFT'}]",
            "",
            "per-rank decomposition (ms):",
            f"  {'rank':>4}  {'compute':>9}  {'comm':>9}  {'blocked':>9}"
            f"  {'idle':>9}  {'end':>9}",
        ]
        shown = sorted(d.ranks, key=lambda r: -r.end)[:16]
        for r in sorted(shown, key=lambda r: r.proc):
            lines.append(
                f"  {r.proc:>4}  {r.compute * 1e3:>9.3f}"
                f"  {r.comm_total * 1e3:>9.3f}"
                f"  {r.blocked * 1e3:>9.3f}  {r.idle * 1e3:>9.3f}"
                f"  {r.end * 1e3:>9.3f}"
            )
        if len(d.ranks) > len(shown):
            lines.append(
                f"  ... ({len(d.ranks) - len(shown)} faster ranks elided)"
            )
        if self.path is not None:
            lines += [
                "",
                f"critical path: {len(self.path.segments)} segments, "
                f"{len(self.path.hops)} cross-rank hops, "
                f"explains {self.path.explained_ratio:.1%} of the makespan",
                "blame table (path seconds by kind):",
            ]
            for kind, seconds, count in self.path.blame():
                share = seconds / d.makespan if d.makespan > 0 else 0.0
                lines.append(
                    f"  {kind:<10} {seconds * 1e3:>9.3f} ms  {share:>6.1%}"
                    f"  ({count} segments)"
                )
        if self.whatifs:
            lines += ["", "what-if projections:"]
            for w in self.whatifs:
                check = (
                    f"resim {w.resim_makespan * 1e3:.3f} ms, "
                    f"err {w.rel_err:.1%}"
                    if w.rel_err is not None
                    else "projection only"
                )
                lines.append(
                    f"  {w.name:<20} {w.speedup:>6.2f}x "
                    f"-> {w.projected_makespan * 1e3:.3f} ms "
                    f"[{w.verdict}] ({check})"
                )
        return "\n".join(lines)


def analyze(
    capture: "SimCapture",
    resim: bool = True,
    network_scale: float = 2.0,
    path: bool = True,
) -> CritPathAnalysis:
    """Run the full analyzer over a populated :class:`SimCapture`.

    ``resim`` toggles the what-if re-simulation cross-checks (each one
    re-runs the whole timing simulation; disable for cheap reports).
    ``path`` can be disabled when the run was not traced.
    """
    decomp = decompose(capture)
    chains = None
    cp = None
    tracer = capture.tracer
    if path and tracer is not None and getattr(tracer, "enabled", False):
        chains = rank_chains(capture)
        cp = extract_path(capture, chains)
    whatifs = project_whatifs(
        capture, decomp, resim=resim, network_scale=network_scale
    )
    return CritPathAnalysis(
        algorithm=capture.algorithm,
        molecule=capture.molecule,
        cores=capture.cores,
        nproc=capture.nproc,
        decomposition=decomp,
        chains=chains,
        path=cp,
        whatifs=whatifs,
    )
