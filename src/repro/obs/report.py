"""Self-contained HTML run reports for a Fock-build run.

One run -> one HTML file, no external assets: inline CSS, inline SVG
charts, and the Perfetto trace embedded as a base64 ``data:`` download
link.  The report shows

* a rank x channel communication-volume heatmap (flight recorder),
* the steal-event timeline over the virtual clock,
* per-rank load-balance bars (compute vs communication time),
* the model-vs-measured deviation table (Sec III-G validation) with
  pass / warn / fail badges.

Charts follow the repo's data-viz conventions: a single blue sequential
ramp for magnitude, two fixed categorical slots for the compute/comm
series, reserved status colors that never appear without an icon +
label, ink/surface tokens as CSS custom properties with a dark mode
selected per-token (``prefers-color-scheme`` plus a ``data-theme``
override), native tooltips on every mark, and a table view beside every
chart so no value is readable only through color.

:func:`run_report` is the driver: it executes a numeric
:func:`~repro.fock.gtfock.gtfock_build` under a tracer, checks the
flight recorder's exact-decomposition invariant, validates the run
against the performance model, and renders the page.
"""

from __future__ import annotations

import base64
import html
import json
import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.obs.flight import FlightRecorder
from repro.obs.profile import get_profiler
from repro.obs.validate import FAIL, PASS, WARN, ModelValidation

# -- palette (see docs: reference data-viz palette) --------------------------

#: sequential blue ramp, steps 100..700 (magnitude encoding, both modes)
SEQ_RAMP = (
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
    "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281",
    "#0d366b",
)

_CSS = """
:root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --grid: #e1e0d9;
  --baseline: #c3c2b7;
  --border: rgba(11, 11, 11, 0.10);
  --series-1: #2a78d6;
  --series-2: #eb6834;
  --status-good: #0ca30c;
  --status-warning: #fab219;
  --status-critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --grid: #2c2c2a;
    --baseline: #383835;
    --border: rgba(255, 255, 255, 0.10);
    --series-1: #3987e5;
    --series-2: #d95926;
  }
}
:root[data-theme="dark"] {
  color-scheme: dark;
  --surface-1: #1a1a19;
  --page: #0d0d0d;
  --text-primary: #ffffff;
  --text-secondary: #c3c2b7;
  --text-muted: #898781;
  --grid: #2c2c2a;
  --baseline: #383835;
  --border: rgba(255, 255, 255, 0.10);
  --series-1: #3987e5;
  --series-2: #d95926;
}
* { box-sizing: border-box; }
body {
  margin: 0;
  background: var(--page);
  color: var(--text-primary);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 960px; margin: 0 auto; padding: 24px 20px 64px; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 32px 0 8px; }
.subtitle { color: var(--text-secondary); margin: 0 0 20px; }
section {
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 8px;
  padding: 16px;
  margin: 16px 0;
}
section > h2 { margin-top: 0; }
.caption { color: var(--text-secondary); font-size: 13px; margin: 4px 0 12px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 16px 0; }
.tile {
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 8px;
  padding: 10px 14px;
  min-width: 116px;
}
.tile .v { font-size: 22px; }
.tile .l { color: var(--text-muted); font-size: 12px; }
svg { display: block; max-width: 100%; }
svg text { font: 12px system-ui, -apple-system, "Segoe UI", sans-serif; }
.axis-label { fill: var(--text-muted); }
.cell-hover:hover, .mark:hover { stroke: var(--text-primary); stroke-width: 1.5; }
.legend { display: flex; gap: 16px; align-items: center; margin: 0 0 8px; }
.legend .sw {
  display: inline-block; width: 12px; height: 12px; border-radius: 3px;
  vertical-align: -1px; margin-right: 6px;
}
.legend span { color: var(--text-secondary); font-size: 13px; }
table { border-collapse: collapse; width: 100%; font-variant-numeric: tabular-nums; }
th, td { text-align: right; padding: 5px 10px; border-bottom: 1px solid var(--grid); }
th { color: var(--text-muted); font-weight: 500; font-size: 12px; }
th:first-child, td:first-child { text-align: left; }
details { margin-top: 10px; }
summary { cursor: pointer; color: var(--text-secondary); font-size: 13px; }
.badge {
  display: inline-flex; align-items: center; gap: 5px;
  font-size: 12px; color: var(--text-primary);
  border: 1px solid var(--border); border-radius: 999px; padding: 1px 9px;
}
.badge .ic { font-weight: 700; }
.badge-pass .ic { color: var(--status-good); }
.badge-warn .ic { color: var(--status-warning); }
.badge-fail .ic { color: var(--status-critical); }
a { color: var(--series-1); }
footer { color: var(--text-muted); font-size: 12px; margin-top: 24px; }
"""

_BADGES = {
    PASS: ("badge-pass", "✓", "pass"),
    WARN: ("badge-warn", "!", "warn"),
    FAIL: ("badge-fail", "✕", "fail"),
}


def _badge(status: str) -> str:
    cls, icon, label = _BADGES[status]
    return (
        f'<span class="badge {cls}"><span class="ic">{icon}</span>'
        f"{label}</span>"
    )


def _esc(s: Any) -> str:
    return html.escape(str(s), quote=True)


def _fmt_bytes(n: float) -> str:
    n = float(n)
    for unit in ("B", "kB", "MB", "GB"):
        if abs(n) < 1000.0 or unit == "GB":
            return f"{n:.0f} {unit}" if unit == "B" else f"{n:.2f} {unit}"
        n /= 1000.0
    return f"{n:.2f} GB"


def _fmt_g(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1000 or abs(v) < 0.01:
        return f"{v:.3g}"
    return f"{v:.3f}".rstrip("0").rstrip(".")


def _seq_color(value: float, vmax: float) -> str:
    """Map a magnitude to the sequential ramp (sqrt scale for spread)."""
    if vmax <= 0 or value <= 0:
        return "none"
    frac = math.sqrt(min(value / vmax, 1.0))
    return SEQ_RAMP[min(int(frac * len(SEQ_RAMP)), len(SEQ_RAMP) - 1)]


# -- charts ------------------------------------------------------------------


def heatmap_svg(chans: list[str], values: np.ndarray) -> str:
    """Rank x channel bytes heatmap (rows = ranks, sequential blue)."""
    nproc, nchan = values.shape
    cw, ch_px, left, top = 74, 26, 52, 64
    width = left + nchan * cw + 8
    height = top + nproc * ch_px + 8
    vmax = float(values.max()) if values.size else 0.0
    out = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" '
        f'aria-label="bytes moved per rank and channel">'
    ]
    for j, chan in enumerate(chans):
        x = left + j * cw + cw / 2
        out.append(
            f'<text class="axis-label" x="{x}" y="{top - 10}" '
            f'text-anchor="middle" transform="rotate(-28 {x} {top - 10})">'
            f"{_esc(chan)}</text>"
        )
    for i in range(nproc):
        y = top + i * ch_px + ch_px / 2 + 4
        out.append(
            f'<text class="axis-label" x="{left - 8}" y="{y}" '
            f'text-anchor="end">r{i}</text>'
        )
        for j, chan in enumerate(chans):
            v = float(values[i, j])
            fill = _seq_color(v, vmax)
            attrs = (
                f'fill="{fill}"'
                if fill != "none"
                else 'fill="var(--surface-1)" stroke="var(--grid)"'
            )
            # 2px gap between cells via inset geometry
            out.append(
                f'<rect class="cell-hover" x="{left + j * cw + 1}" '
                f'y="{top + i * ch_px + 1}" width="{cw - 2}" '
                f'height="{ch_px - 2}" rx="3" {attrs}>'
                f"<title>rank {i} · {_esc(chan)}: {_fmt_bytes(v)}"
                f"</title></rect>"
            )
    out.append("</svg>")
    return "".join(out)


def steal_timeline_svg(
    steals: list[Any],
    finish: np.ndarray,
    nproc: int,
    path: list[dict] | None = None,
) -> str:
    """Steal events over the virtual clock, one row per rank.

    ``path`` (critical-path segments as dicts with ``proc`` / ``start``
    / ``end`` / ``kind``) overlays the chain that bounds the makespan on
    the busy tracks.
    """
    left, top, right, row_h = 44, 16, 12, 26
    plot_w = 640
    width = left + plot_w + right
    height = top + nproc * row_h + 34
    tmax = float(finish.max()) if finish.size else 0.0
    tmax = max(tmax, max((s.time for s in steals), default=0.0), 1e-30)

    def x_of(t: float) -> float:
        return left + (t / tmax) * plot_w

    def y_of(rank: int) -> float:
        return top + rank * row_h + row_h / 2

    out = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" aria-label="steal-event timeline">'
    ]
    for p in range(nproc):
        y = y_of(p)
        out.append(
            f'<line x1="{left}" y1="{y}" x2="{left + plot_w}" y2="{y}" '
            f'stroke="var(--grid)"/>'
        )
        out.append(
            f'<text class="axis-label" x="{left - 8}" y="{y + 4}" '
            f'text-anchor="end">r{p}</text>'
        )
        # busy bar: rank is executing until its finish time
        fx = x_of(float(finish[p]))
        out.append(
            f'<line x1="{left}" y1="{y}" x2="{fx:.1f}" y2="{y}" '
            f'stroke="var(--baseline)" stroke-width="3" '
            f'stroke-linecap="round"><title>rank {p} busy until '
            f"{finish[p]:.3g} s</title></line>"
        )
    axis_y = top + nproc * row_h + 8
    out.append(
        f'<line x1="{left}" y1="{axis_y}" x2="{left + plot_w}" '
        f'y2="{axis_y}" stroke="var(--baseline)"/>'
    )
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        x = left + frac * plot_w
        out.append(
            f'<text class="axis-label" x="{x}" y="{axis_y + 16}" '
            f'text-anchor="middle">{tmax * frac:.3g}</text>'
        )
    out.append(
        f'<text class="axis-label" x="{left + plot_w}" y="{axis_y - 6}" '
        f'text-anchor="end">virtual seconds</text>'
    )
    for s in steals:
        x = x_of(s.time)
        y_t, y_v = y_of(s.thief), y_of(s.victim)
        tip = (
            f"<title>t={s.time:.3g} s: r{s.thief} stole {s.ntasks} tasks "
            f"from r{s.victim}</title>"
        )
        out.append(
            f'<line x1="{x:.1f}" y1="{y_t}" x2="{x:.1f}" y2="{y_v}" '
            f'stroke="var(--series-1)" stroke-dasharray="3 3" opacity="0.6"/>'
        )
        out.append(
            f'<circle class="mark" cx="{x:.1f}" cy="{y_v}" r="4" '
            f'fill="var(--surface-1)" stroke="var(--series-1)" '
            f'stroke-width="2">{tip}</circle>'
        )
        out.append(
            f'<circle class="mark" cx="{x:.1f}" cy="{y_t}" r="5" '
            f'fill="var(--series-1)">{tip}</circle>'
        )
    for seg in path or []:
        y = y_of(int(seg["proc"]))
        x0, x1 = x_of(float(seg["start"])), x_of(float(seg["end"]))
        color = CRITPATH_COLORS.get(seg.get("kind", ""), "var(--series-2)")
        out.append(
            f'<line x1="{x0:.1f}" y1="{y}" x2="{max(x1, x0 + 0.8):.1f}" '
            f'y2="{y}" stroke="{color}" stroke-width="6" opacity="0.85" '
            f'stroke-linecap="butt"><title>critical path: '
            f'{_esc(seg.get("kind", "?"))} on rank {seg["proc"]}, '
            f'{float(seg["end"]) - float(seg["start"]):.3g} s</title></line>'
        )
    out.append("</svg>")
    return "".join(out)


def load_balance_svg(comp: np.ndarray, comm: np.ndarray) -> str:
    """Per-rank stacked compute + communication time bars, one y axis."""
    nproc = len(comp)
    left, top, bottom = 56, 14, 26
    bar_w = max(18, min(48, 560 // max(nproc, 1)))
    gap = 10
    plot_h = 180
    width = left + nproc * (bar_w + gap) + 16
    height = top + plot_h + bottom
    total = comp + comm
    vmax = float(total.max()) if nproc else 0.0
    vmax = vmax if vmax > 0 else 1.0

    def h_of(v: float) -> float:
        return (v / vmax) * plot_h

    out = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" '
        f'aria-label="per-rank compute and communication time">'
    ]
    for frac in (0.0, 0.5, 1.0):
        y = top + plot_h - frac * plot_h
        out.append(
            f'<line x1="{left}" y1="{y:.1f}" x2="{width - 10}" '
            f'y2="{y:.1f}" stroke="var(--grid)"/>'
        )
        out.append(
            f'<text class="axis-label" x="{left - 8}" y="{y + 4:.1f}" '
            f'text-anchor="end">{vmax * frac:.3g}</text>'
        )
    worst = int(np.argmax(total)) if nproc else 0
    for p in range(nproc):
        x = left + p * (bar_w + gap) + gap / 2
        hc = h_of(float(comp[p]))
        hm = h_of(float(comm[p]))
        y0 = top + plot_h
        out.append(
            f'<rect class="mark" x="{x:.1f}" y="{y0 - hc:.1f}" '
            f'width="{bar_w}" height="{max(hc, 0.5):.1f}" rx="2" '
            f'fill="var(--series-1)"><title>rank {p} compute: '
            f"{comp[p]:.3g} s</title></rect>"
        )
        # 2px surface gap between stacked segments
        out.append(
            f'<rect class="mark" x="{x:.1f}" y="{y0 - hc - 2 - hm:.1f}" '
            f'width="{bar_w}" height="{max(hm, 0.5):.1f}" rx="2" '
            f'fill="var(--series-2)"><title>rank {p} communication: '
            f"{comm[p]:.3g} s</title></rect>"
        )
        out.append(
            f'<text class="axis-label" x="{x + bar_w / 2:.1f}" '
            f'y="{top + plot_h + 16}" text-anchor="middle">r{p}</text>'
        )
        if p == worst:  # selective direct label on the tallest bar only
            out.append(
                f'<text x="{x + bar_w / 2:.1f}" '
                f'y="{y0 - hc - hm - 8:.1f}" text-anchor="middle" '
                f'fill="var(--text-secondary)">{total[p]:.3g}s</text>'
            )
    out.append(
        f'<line x1="{left}" y1="{top + plot_h}" x2="{width - 10}" '
        f'y2="{top + plot_h}" stroke="var(--baseline)"/>'
    )
    out.append("</svg>")
    return "".join(out)


# -- tables ------------------------------------------------------------------


def _matrix_table(chans: list[str], values: np.ndarray, fmt) -> str:
    head = "".join(f"<th>{_esc(c)}</th>" for c in chans)
    rows = []
    for i in range(values.shape[0]):
        cells = "".join(f"<td>{fmt(values[i, j])}</td>" for j in range(len(chans)))
        rows.append(f"<tr><td>r{i}</td>{cells}</tr>")
    return (
        f"<table><thead><tr><th>rank</th>{head}</tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def validation_table_html(v: ModelValidation) -> str:
    rows = []
    for d in v.deviations:
        rows.append(
            "<tr>"
            f"<td>{_esc(d.name)}</td>"
            f"<td>{_fmt_g(d.predicted)}</td>"
            f"<td>{_fmt_g(d.measured)}</td>"
            f"<td>{d.ratio:.3f}</td>"
            f"<td>&le; {_fmt_g(d.warn_at)} / {_fmt_g(d.fail_at)}</td>"
            f"<td>{_badge(d.status)}</td>"
            "</tr>"
        )
    return (
        "<table><thead><tr><th>metric</th><th>model</th><th>measured</th>"
        "<th>measured/model</th><th>tolerance (fold)</th><th>status</th>"
        f"</tr></thead><tbody>{''.join(rows)}</tbody></table>"
    )


# -- phase profile & hotspots ------------------------------------------------


def phase_bars_svg(phases: list[dict]) -> str:
    """Horizontal wall/CPU bars per profiled phase (sorted by wall)."""
    if not phases:
        return ""
    left, right, row_h, bar_h = 150, 70, 34, 9
    plot_w = 520
    width = left + plot_w + right
    height = 18 + len(phases) * row_h + 8
    vmax = max(max(p["wall_s"] for p in phases), 1e-12)
    out = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" '
        f'aria-label="wall and CPU time per phase">'
    ]
    for i, p in enumerate(phases):
        y = 18 + i * row_h
        name = p["name"]
        wall, cpu = float(p["wall_s"]), float(p["cpu_s"])
        w_wall = (wall / vmax) * plot_w
        w_cpu = (cpu / vmax) * plot_w
        out.append(
            f'<text class="axis-label" x="{left - 8}" y="{y + 12}" '
            f'text-anchor="end">{_esc(name)}</text>'
        )
        out.append(
            f'<rect class="mark" x="{left}" y="{y}" '
            f'width="{max(w_wall, 0.5):.1f}" height="{bar_h}" rx="2" '
            f'fill="var(--series-1)"><title>{_esc(name)} wall: '
            f"{wall:.4f} s over {p['calls']} calls</title></rect>"
        )
        out.append(
            f'<rect class="mark" x="{left}" y="{y + bar_h + 2}" '
            f'width="{max(w_cpu, 0.5):.1f}" height="{bar_h}" rx="2" '
            f'fill="var(--series-2)"><title>{_esc(name)} CPU: '
            f"{cpu:.4f} s</title></rect>"
        )
        out.append(
            f'<text class="axis-label" '
            f'x="{left + max(w_wall, w_cpu) + 6:.1f}" y="{y + 14}">'
            f"{wall:.3g}s</text>"
        )
    out.append("</svg>")
    return "".join(out)


def phase_table_html(phases: list[dict]) -> str:
    rows = []
    for p in phases:
        alloc = p.get("alloc_peak_bytes", 0)
        rows.append(
            "<tr>"
            f"<td>{_esc(p['name'])}</td>"
            f"<td>{p['calls']}</td>"
            f"<td>{p['wall_s']:.4f}</td>"
            f"<td>{p['cpu_s']:.4f}</td>"
            f"<td>{p['max_wall_s']:.4f}</td>"
            f"<td>{_fmt_bytes(alloc) if alloc else '&mdash;'}</td>"
            "</tr>"
        )
    return (
        "<table><thead><tr><th>phase</th><th>calls</th><th>wall (s)</th>"
        "<th>CPU (s)</th><th>max (s)</th><th>peak alloc</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def hotspot_table_html(hotspots: dict) -> str:
    """The cProfile top-N table (``HotspotProfile.to_json()`` shape)."""
    rows = []
    for h in hotspots.get("hotspots", []):
        where = h["func"] if h["file"] in ("~", "") else (
            f"{h['file']}:{h['line']}:{h['func']}"
        )
        rows.append(
            "<tr>"
            f"<td><code>{_esc(where)}</code></td>"
            f"<td>{h['ncalls']}</td>"
            f"<td>{h['tottime']:.4f}</td>"
            f"<td>{h['cumtime']:.4f}</td>"
            "</tr>"
        )
    head = (
        f"{hotspots.get('total_calls', 0)} calls, "
        f"{hotspots.get('total_time', 0.0):.3f} s under cProfile"
    )
    return (
        f'<p class="caption">{_esc(head)} (sorted by cumulative '
        "time).</p>"
        "<table><thead><tr><th>location</th><th>calls</th>"
        "<th>self (s)</th><th>cumulative (s)</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def phase_section_html(
    phases: list[dict], hotspots: dict | None = None
) -> str:
    """The "Phase profile" report section (bars + table + hotspots)."""
    if not phases and not hotspots:
        return ""
    parts = [
        "<h2>Phase profile</h2>",
        '<p class="caption">Inclusive wall and CPU time attributed to the '
        "named pipeline phases (taxonomy: docs/OBSERVABILITY.md). Nested "
        "phases count toward their parents.</p>",
    ]
    if phases:
        parts.append(
            '<div class="legend">'
            '<span><i class="sw" style="background: var(--series-1)"></i>'
            "wall</span>"
            '<span><i class="sw" style="background: var(--series-2)"></i>'
            "CPU</span></div>"
        )
        parts.append(phase_bars_svg(phases))
        parts.append(
            "<details><summary>table view</summary>"
            + phase_table_html(phases)
            + "</details>"
        )
    if hotspots:
        parts.append("<h2>Hotspots</h2>")
        parts.append(hotspot_table_html(hotspots))
    return "".join(parts)


# -- critical path -----------------------------------------------------------

#: segment-kind palette shared by the waterfall and the timeline overlay
CRITPATH_COLORS = {
    "compute": "var(--series-1)",
    "prefetch": "#86b6ef",
    "flush": "var(--series-2)",
    "steal": "#8d5fd3",
    "blocked": "var(--status-warning)",
    "slack": "var(--baseline)",
}


def critpath_waterfall_svg(
    chains: list[list[dict]], makespan: float, path: list[dict] | None
) -> str:
    """Per-rank segment waterfall with the critical path outlined."""
    nproc = len(chains)
    left, top, right, row_h, bar_h = 44, 16, 12, 24, 14
    plot_w = 640
    width = left + plot_w + right
    height = top + nproc * row_h + 34
    tmax = max(makespan, 1e-30)
    on_path = {
        (int(s["proc"]), float(s["start"]), float(s["end"]))
        for s in path or []
    }
    out = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" aria-label="per-rank waterfall">'
    ]
    for p, chain in enumerate(chains):
        y = top + p * row_h + (row_h - bar_h) / 2
        out.append(
            f'<text class="axis-label" x="{left - 8}" y="{y + bar_h - 3}" '
            f'text-anchor="end">r{p}</text>'
        )
        for seg in chain:
            s0, s1 = float(seg["start"]), float(seg["end"])
            x = left + s0 / tmax * plot_w
            w = max((s1 - s0) / tmax * plot_w, 0.6)
            kind = seg.get("kind", "?")
            color = CRITPATH_COLORS.get(kind, "var(--baseline)")
            hot = (p, s0, s1) in on_path
            stroke = (
                ' stroke="var(--text-primary)" stroke-width="1.3"'
                if hot
                else ""
            )
            tip = (
                f"<title>rank {p}: {_esc(kind)} "
                f"{_esc(seg.get('detail', ''))} [{s0:.3g}, {s1:.3g}] s"
                f"{' -- on the critical path' if hot else ''}</title>"
            )
            out.append(
                f'<rect class="cell-hover" x="{x:.1f}" y="{y:.1f}" '
                f'width="{w:.2f}" height="{bar_h}" fill="{color}"'
                f"{stroke}>{tip}</rect>"
            )
    axis_y = top + nproc * row_h + 8
    out.append(
        f'<line x1="{left}" y1="{axis_y}" x2="{left + plot_w}" '
        f'y2="{axis_y}" stroke="var(--baseline)"/>'
    )
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        x = left + frac * plot_w
        out.append(
            f'<text class="axis-label" x="{x}" y="{axis_y + 16}" '
            f'text-anchor="middle">{tmax * frac:.3g}</text>'
        )
    out.append(
        f'<text class="axis-label" x="{left + plot_w}" y="{axis_y - 6}" '
        f'text-anchor="end">virtual seconds</text>'
    )
    out.append("</svg>")
    return "".join(out)


def _critpath_legend() -> str:
    return '<div class="legend">' + "".join(
        f'<span><i class="sw" style="background: {color}"></i>{kind}</span>'
        for kind, color in CRITPATH_COLORS.items()
    ) + "</div>"


def critpath_section_html(cp: dict) -> str:
    """The "Critical path" section body; ``cp`` is
    :meth:`repro.obs.critpath.CritPathAnalysis.to_json`."""
    d = cp["decomposition"]
    path = cp.get("path")
    ok_badge = _badge(PASS if d.get("ok") else FAIL)
    tiles = [
        (f"{d['makespan']:.3g} s", "makespan"),
        (f"{d['idle_fraction']:.1%}", "avg idle fraction"),
        (f"{d['max_residual']:.1e} s", "max residual"),
    ]
    if path is not None:
        tiles += [
            (f"{path['explained_ratio']:.1%}", "path explains"),
            (str(len(path["hops"])), "cross-rank hops"),
        ]
    tiles_html = "".join(
        f'<div class="tile"><div class="v">{_esc(v)}</div>'
        f'<div class="l">{_esc(label)}</div></div>'
        for v, label in tiles
    )
    parts = [
        "<h2>Critical path</h2>",
        '<p class="caption">Exact per-rank time decomposition '
        "(compute / comm / blocked / idle sums to the makespan per rank; "
        f"see docs/OBSERVABILITY.md#critical-path) {ok_badge}</p>",
        f'<div class="tiles">{tiles_html}</div>',
    ]
    chains = cp.get("chains")
    if chains:
        parts.append(_critpath_legend())
        parts.append(
            critpath_waterfall_svg(
                chains,
                float(d["makespan"]),
                path.get("segments") if path else None,
            )
        )
        parts.append(
            '<p class="caption">Outlined segments form the chain that '
            "bounds the makespan.</p>"
        )
    if path is not None:
        blame_rows = "".join(
            f"<tr><td>{_esc(b['kind'])}</td>"
            f"<td>{b['seconds']:.6g}</td>"
            f"<td>{b['seconds'] / d['makespan']:.1%}</td>"
            f"<td>{b['count']}</td></tr>"
            for b in path["blame"]
        )
        parts.append(
            "<h2>Blame table</h2>"
            '<p class="caption">Critical-path seconds by segment kind '
            "&mdash; shrinking the top row is the only way to shrink the "
            "makespan.</p>"
            "<table><thead><tr><th>kind</th><th>seconds</th>"
            "<th>share of makespan</th><th>segments</th></tr></thead>"
            f"<tbody>{blame_rows}</tbody></table>"
        )
    whatifs = cp.get("whatifs") or []
    if whatifs:
        def _w_badge(v: str) -> str:
            if v == "PASS":
                return _badge(PASS)
            if v == "WARN":
                return _badge(WARN)
            if v == "FAIL":
                return _badge(FAIL)
            return '<span class="badge">projected</span>'

        rows = ""
        for w in whatifs:
            resim = (
                f"{w['resim_makespan']:.6g}"
                if w.get("resim_makespan") is not None
                else "&mdash;"
            )
            err = (
                f"{w['rel_err']:.1%}"
                if w.get("rel_err") is not None
                else "&mdash;"
            )
            rows += (
                f"<tr><td>{_esc(w['name'])}"
                f'<div class="caption">{_esc(w["description"])}</div></td>'
                f"<td>{w['speedup']:.2f}&times;</td>"
                f"<td>{w['projected_makespan']:.6g}</td>"
                f"<td>{resim}</td><td>{err}</td>"
                f"<td>{_w_badge(w['verdict'])}</td></tr>"
            )
        parts.append(
            "<h2>What-if projections</h2>"
            '<p class="caption">Differential replay of the recorded '
            "per-rank structure under perturbed parameters; cross-checked "
            "scenarios carry the projection-vs-resimulation error "
            "(&le;15% pass, &le;30% warn).</p>"
            "<table><thead><tr><th>scenario</th><th>speedup</th>"
            "<th>projected (s)</th><th>re-simulated (s)</th>"
            "<th>error</th><th></th></tr></thead>"
            f"<tbody>{rows}</tbody></table>"
        )
    ranks = d.get("ranks") or []
    if ranks:
        rank_rows = "".join(
            f"<tr><td>r{r['proc']}</td><td>{r['compute']:.6g}</td>"
            f"<td>{r['comm_total']:.6g}</td><td>{r['blocked']:.6g}</td>"
            f"<td>{r['idle']:.6g}</td><td>{r['end']:.6g}</td>"
            f"<td>{r['residual']:.2e}</td></tr>"
            for r in ranks
        )
        parts.append(
            "<details><summary>per-rank decomposition</summary>"
            "<table><thead><tr><th>rank</th><th>compute (s)</th>"
            "<th>comm (s)</th><th>blocked (s)</th><th>idle (s)</th>"
            "<th>end (s)</th><th>residual</th></tr></thead>"
            f"<tbody>{rank_rows}</tbody></table></details>"
        )
    return "".join(parts)


def render_critpath_report(analysis: Any) -> str:
    """Standalone HTML page for one
    :class:`~repro.obs.critpath.CritPathAnalysis` (``repro analyze
    --report``)."""
    cp = analysis.to_json() if hasattr(analysis, "to_json") else analysis
    title = (
        f"critpath-{cp.get('molecule') or 'run'}-{cp.get('cores', 0)}c"
    )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{_esc(title)}</title>
<style>{_CSS}</style>
</head>
<body>
<main>
<h1>Critical-path analysis: {_esc(str(cp.get('molecule') or '?'))}</h1>
<p class="subtitle">{_esc(str(cp.get('algorithm', 'gtfock')))} @
{cp.get('cores', 0)} simulated cores ({cp.get('nproc', 0)} ranks)</p>
<section>
{critpath_section_html(cp)}
</section>
<footer>self-contained report &mdash; no external assets; generated by
the repro critical-path analyzer (see docs/OBSERVABILITY.md)</footer>
</main>
</body>
</html>
"""


# -- the report --------------------------------------------------------------


@dataclass
class RunReport:
    """Everything one report page needs, decoupled from how it was run."""

    title: str
    molecule: str
    basis_name: str
    nproc: int
    nbf: int
    nshells: int
    flight: FlightRecorder
    comp_time: np.ndarray
    comm_time: np.ndarray
    finish_time: np.ndarray
    steals: list[Any]
    validation: ModelValidation
    summary: dict
    trace: dict | None = None
    notes: list[str] = field(default_factory=list)
    #: fault-injection/recovery summary (chaos runs only); see
    #: ``docs/ROBUSTNESS.md`` for the fields
    recovery: dict | None = None
    #: SCF convergence-guard summary (guarded SCF runs only):
    #: :meth:`repro.scf.guard.SCFGuard.summary` plus a ``trail`` list
    scf_guard: dict | None = None
    #: data-integrity summary (``integrity=`` runs only):
    #: :meth:`repro.runtime.sdc.IntegrityMonitor.summary`
    integrity: dict | None = None
    #: phase-profiler stats (``PhaseProfiler.to_json()``) when a profiler
    #: was installed (``--profile``); None otherwise
    phases: list[dict] | None = None
    #: cProfile top-N (``HotspotProfile.to_json()``); None unless captured
    hotspots: dict | None = None
    #: critical-path analysis (``CritPathAnalysis.to_json()``) when the
    #: build filled a :class:`~repro.fock.simulate.SimCapture`
    critpath: dict | None = None

    @property
    def load_balance(self) -> float:
        return float(self.summary.get("load_balance", 1.0))


def render_report(r: RunReport) -> str:
    """Render one :class:`RunReport` as a self-contained HTML page."""
    chans, m_bytes = r.flight.matrix("bytes")
    _, m_msgs = r.flight.matrix("msgs")
    tiles = (
        (r.molecule, "molecule"),
        (r.basis_name, "basis"),
        (str(r.nproc), "processes"),
        (f"{r.nbf} / {r.nshells}", "functions / shells"),
        (str(len(r.steals)), "steals"),
        (f"{r.summary.get('makespan', 0.0):.3g} s", "makespan"),
        (f"{r.load_balance:.3f}", "load balance"),
        (f"{r.summary.get('avg_volume_mb', 0.0):.3f}", "MB / process"),
    )
    tiles_html = "".join(
        f'<div class="tile"><div class="v">{_esc(v)}</div>'
        f'<div class="l">{_esc(label)}</div></div>'
        for v, label in tiles
    )

    trace_html = ""
    if r.trace is not None:
        payload = base64.b64encode(
            json.dumps(r.trace).encode("utf-8")
        ).decode("ascii")
        trace_html = (
            "<section><h2>Trace</h2>"
            '<p class="caption">Chrome trace-event JSON of this run '
            "(host spans + per-rank virtual clocks). Download and open at "
            '<a href="https://ui.perfetto.dev">ui.perfetto.dev</a>.</p>'
            f'<a download="{_esc(r.title)}.trace.json" '
            f'href="data:application/json;base64,{payload}">'
            "download Perfetto trace"
            f" ({_fmt_bytes(len(payload) * 3 // 4)})</a></section>"
        )

    notes_html = ""
    if r.notes:
        items = "".join(f"<li>{_esc(n)}</li>" for n in r.notes)
        notes_html = f'<ul class="caption">{items}</ul>'
    dropped = r.flight.dropped_events
    dropped_html = (
        f'<p class="caption">{dropped} events dropped from the ring '
        "buffer (oldest first); counters are unaffected.</p>"
        if dropped
        else ""
    )

    recovery_html = ""
    if r.recovery is not None:
        rec = r.recovery
        inv_badge = _badge(PASS if rec.get("passed", False) else FAIL)
        rec_tiles = (
            (f"{rec.get('fock_error', 0.0):.2e}", "max |dF| vs fault-free"),
            (str(rec.get("dead_ranks", [])), "dead ranks"),
            (str(rec.get("reexecuted_tasks", 0)), "re-executed tasks"),
            (str(rec.get("recoveries", 0)), "orphan adoptions"),
            (str(rec.get("retries_total", 0)), "op retries"),
            (str(rec.get("acks_lost_total", 0)), "acks lost"),
            (_fmt_bytes(rec.get("retry_bytes", 0)), "retry bytes"),
            (f"x{rec.get('slowdown', 1.0):.2f}", "makespan vs fault-free"),
        )
        rec_tiles_html = "".join(
            f'<div class="tile"><div class="v">{_esc(v)}</div>'
            f'<div class="l">{_esc(label)}</div></div>'
            for v, label in rec_tiles
        )
        recovery_html = (
            "<section><h2>Fault injection &amp; recovery</h2>"
            f'<p class="caption">Plan: <code>{_esc(rec.get("plan", ""))}'
            "</code> &mdash; chaos invariant (faulted Fock matrix equals "
            f"the fault-free one to &le; {rec.get('tolerance', 1e-12):.0e}) "
            f"{inv_badge}</p>"
            f'<div class="tiles">{rec_tiles_html}</div>'
            '<p class="caption">Recovery overhead is visible above: the '
            "<code>retry</code> heatmap column carries every re-sent "
            "payload and injected delay, and re-executed tasks inflate "
            "the survivors' compute bars. See docs/ROBUSTNESS.md for the "
            "taxonomy and protocol.</p></section>"
        )

    guard_html = ""
    if r.scf_guard is not None:
        guard_html = (
            "<section>" + scf_guard_section_html(r.scf_guard) + "</section>"
        )

    integrity_html = ""
    if r.integrity is not None:
        integrity_html = (
            "<section>" + integrity_section_html(r.integrity) + "</section>"
        )

    phases_html = ""
    if r.phases or r.hotspots:
        phases_html = (
            "<section>"
            + phase_section_html(r.phases or [], r.hotspots)
            + "</section>"
        )

    critpath_html = ""
    path_segments = None
    if r.critpath is not None:
        critpath_html = (
            "<section>" + critpath_section_html(r.critpath) + "</section>"
        )
        path_segments = (r.critpath.get("path") or {}).get("segments")

    ops_chans = [c for c in chans if np.any(r.flight.per_rank(c, "ops"))]
    ops_html = ""
    if ops_chans:
        m_ops = np.stack(
            [r.flight.per_rank(c, "ops") for c in ops_chans], axis=1
        )
        ops_html = (
            "<h2>Scheduler atomics</h2>"
            '<p class="caption">Queue/steal-protocol operations per rank '
            "(not one-sided GA calls; kept out of the Table VI/VII "
            "counters).</p>"
            + _matrix_table(ops_chans, m_ops, lambda v: f"{int(v)}")
        )

    doc = f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{_esc(r.title)}</title>
<style>{_CSS}</style>
</head>
<body>
<main>
<h1>Fock-build run report: {_esc(r.title)}</h1>
<p class="subtitle">{_esc(r.molecule)} / {_esc(r.basis_name)} on
{r.nproc} simulated processes &mdash; model validation
{_badge(r.validation.status)}</p>
<div class="tiles">{tiles_html}</div>

<section>
<h2>Communication volume by rank and channel</h2>
<p class="caption">Bytes moved per rank on each flight-recorder channel
(sequential scale, hover any cell for the value). Per-rank channel sums
equal the run's Table VI counters exactly.</p>
{heatmap_svg(chans, m_bytes)}
<details><summary>table view (bytes and calls)</summary>
{_matrix_table(chans, m_bytes, lambda v: _fmt_bytes(v))}
<p class="caption">one-sided calls:</p>
{_matrix_table(chans, m_msgs, lambda v: f"{int(v)}")}
</details>
{dropped_html}
</section>

<section>
<h2>Steal-event timeline</h2>
<p class="caption">Each steal connects its victim (open marker) to the
thief (filled marker) at the virtual time it happened; the gray track
shows how long each rank stayed busy{
    "; the thick overlay is the critical path" if path_segments else ""}.</p>
{steal_timeline_svg(r.steals, r.finish_time, r.nproc, path=path_segments)}
<details><summary>table view</summary>
<table><thead><tr><th>t (s)</th><th>thief</th><th>victim</th>
<th>tasks</th></tr></thead><tbody>
{''.join(f"<tr><td>{s.time:.6g}</td><td>r{s.thief}</td><td>r{s.victim}</td><td>{s.ntasks}</td></tr>" for s in r.steals)}
</tbody></table></details>
</section>

<section>
<h2>Load balance</h2>
<div class="legend">
<span><i class="sw" style="background: var(--series-1)"></i>compute</span>
<span><i class="sw" style="background: var(--series-2)"></i>communication</span>
</div>
{load_balance_svg(r.comp_time, r.comm_time)}
<p class="caption">l = max/mean clock = {r.load_balance:.3f}
(Table VIII metric).</p>
<details><summary>table view</summary>
<table><thead><tr><th>rank</th><th>compute (s)</th><th>comm (s)</th>
<th>finish (s)</th></tr></thead><tbody>
{''.join(f"<tr><td>r{p}</td><td>{r.comp_time[p]:.6g}</td><td>{r.comm_time[p]:.6g}</td><td>{r.finish_time[p]:.6g}</td></tr>" for p in range(r.nproc))}
</tbody></table></details>
</section>

<section>
<h2>Model vs measured (Sec III-G)</h2>
<p class="caption">Performance-model predictions against flight-recorder
measurements; a metric warns/fails when measured/model (folded to
&ge;&nbsp;1) exceeds its documented tolerance. Measured s =
{r.validation.s_measured:.2f} victims/process.</p>
{validation_table_html(r.validation)}
{notes_html}
</section>

{critpath_html}

{recovery_html}

{guard_html}

{integrity_html}

{phases_html}

{ops_html and f'<section>{ops_html}</section>'}

{trace_html}

<footer>self-contained report &mdash; no external assets; generated by
the repro flight recorder (see docs/OBSERVABILITY.md)</footer>
</main>
</body>
</html>
"""
    return doc


# -- SCF convergence guard -----------------------------------------------------


def scf_guard_section_html(g: dict) -> str:
    """The convergence-guard section body (tiles + event trail).

    ``g`` is :meth:`repro.scf.guard.SCFGuard.summary` plus an optional
    ``trail`` (list of :meth:`GuardEvent.describe` lines).
    """
    healthy = g.get("final_state", "healthy") == "healthy"
    state_badge = _badge(PASS if healthy else WARN)
    tiles = (
        (str(g.get("events", 0)), "guard events"),
        (str(g.get("level", -1)), "ladder rung reached"),
        (_fmt_g(float(g.get("damping", 0.0))), "final damping"),
        (f"{float(g.get('level_shift', 0.0)):.3g} Ha", "final level shift"),
        (str(g.get("nonfinite", 0)), "non-finite events"),
        ("yes" if g.get("reference_eri") else "no", "reference ERI fallback"),
    )
    tiles_html = "".join(
        f'<div class="tile"><div class="v">{_esc(v)}</div>'
        f'<div class="l">{_esc(label)}</div></div>'
        for v, label in tiles
    )
    by_state = g.get("by_state", {}) or {}
    by_action = g.get("by_action", {}) or {}
    counts_rows = "".join(
        f"<tr><td>{_esc(k)}</td><td>{v}</td><td>classification</td></tr>"
        for k, v in sorted(by_state.items())
    ) + "".join(
        f"<tr><td>{_esc(k)}</td><td>{v}</td><td>remediation</td></tr>"
        for k, v in sorted(by_action.items())
    )
    counts_html = (
        "<table><thead><tr><th>event</th><th>count</th><th>kind</th></tr>"
        f"</thead><tbody>{counts_rows}</tbody></table>"
        if counts_rows
        else '<p class="caption">no bad classifications: the iteration '
        "was never touched.</p>"
    )
    trail = g.get("trail", []) or []
    trail_html = ""
    if trail:
        items = "".join(f"<li><code>{_esc(line)}</code></li>" for line in trail)
        trail_html = (
            "<details><summary>event trail "
            f"({len(trail)} events)</summary><ul>{items}</ul></details>"
        )
    return (
        "<h2>SCF convergence guard</h2>"
        f'<p class="caption">Watchdog classification of the final iteration: '
        f"<strong>{_esc(g.get('final_state', 'healthy'))}</strong> "
        f"{state_badge} &mdash; metric names are listed in "
        "docs/OBSERVABILITY.md (<code>repro_scf_guard_*</code>); the "
        "remediation ladder is documented in docs/ROBUSTNESS.md.</p>"
        f'<div class="tiles">{tiles_html}</div>'
        f"{counts_html}{trail_html}"
    )


def integrity_section_html(d: dict) -> str:
    """The data-integrity section body (tiles + per-kind count table).

    ``d`` is :meth:`repro.runtime.sdc.IntegrityMonitor.summary`, with
    an optional ``injections`` sub-dict (chaos runs only).
    """
    detections = int(d.get("detections_total", 0))
    state_badge = _badge(PASS if detections == 0 else WARN)
    tiles = (
        (str(d.get("checks_total", 0)), "integrity checks run"),
        (str(detections), "corruptions detected"),
        (str(d.get("recoveries_total", 0)), "recoveries taken"),
        (
            str((d.get("injections") or {}).get("injections_total", 0)),
            "injections (chaos)",
        ),
    )
    tiles_html = "".join(
        f'<div class="tile"><div class="v">{_esc(v)}</div>'
        f'<div class="l">{_esc(label)}</div></div>'
        for v, label in tiles
    )
    rows = "".join(
        f"<tr><td>{_esc(k)}</td><td>{v}</td><td>detector runs</td></tr>"
        for k, v in sorted((d.get("checks") or {}).items())
    ) + "".join(
        f"<tr><td>{_esc(k)}</td><td>{v}</td><td>detection</td></tr>"
        for k, v in sorted((d.get("detections") or {}).items())
    ) + "".join(
        f"<tr><td>{_esc(k)}</td><td>{v}</td><td>recovery</td></tr>"
        for k, v in sorted((d.get("recoveries") or {}).items())
    )
    counts_html = (
        "<table><thead><tr><th>name</th><th>count</th><th>kind</th></tr>"
        f"</thead><tbody>{rows}</tbody></table>"
        if rows
        else '<p class="caption">no detectors ran.</p>'
    )
    return (
        "<h2>Data integrity</h2>"
        '<p class="caption">Checksums (store CRC-32, checkpoint digests, '
        "GA payload trailers) and ABFT-style algebraic detectors "
        "(symmetry residuals, the Tr(D&middot;S)&nbsp;=&nbsp;n"
        "<sub>occ</sub> invariant) over this run: "
        f"<strong>{detections}</strong> corruption(s) detected "
        f"{state_badge} &mdash; metric names are "
        "<code>repro_integrity_*</code> (docs/OBSERVABILITY.md); threat "
        "model and recovery ladder in docs/ROBUSTNESS.md.</p>"
        f'<div class="tiles">{tiles_html}</div>'
        f"{counts_html}"
    )


def render_torture_report(records: list[Any], title: str = "scf-torture") -> str:
    """Self-contained HTML page for an SCF torture-suite run.

    ``records`` is :func:`repro.scf.torture.torture_json` output: one
    dict per case with ``case`` / ``status`` / ``passed`` / ``trail``.
    """
    npassed = sum(1 for rec in records if rec.get("passed"))
    nconv = sum(1 for rec in records if rec.get("converged"))
    all_pass = npassed == len(records)
    tiles = (
        (str(len(records)), "torture cases"),
        (f"{npassed}/{len(records)}", "passed the guard gate"),
        (str(nconv), "converged under guard"),
        (
            str(sum(len(rec.get("trail", [])) for rec in records)),
            "guard events",
        ),
    )
    tiles_html = "".join(
        f'<div class="tile"><div class="v">{_esc(v)}</div>'
        f'<div class="l">{_esc(label)}</div></div>'
        for v, label in tiles
    )
    rows = []
    for rec in records:
        vanilla = rec.get("vanilla_converged")
        vanilla_s = "&mdash;" if vanilla is None else ("ok" if vanilla else "FAIL")
        energy = rec.get("energy")
        energy_s = f"{energy:.6f}" if energy is not None else "&mdash;"
        rows.append(
            "<tr>"
            f"<td>{_esc(rec.get('case', ''))}</td>"
            f"<td>{vanilla_s}</td>"
            f"<td>{_esc(rec.get('status', ''))}</td>"
            f"<td>{rec.get('iterations', 0)}</td>"
            f"<td>{energy_s}</td>"
            f"<td>{len(rec.get('trail', []))}</td>"
            f"<td>{_badge(PASS if rec.get('passed') else FAIL)}</td>"
            "</tr>"
        )
    details = []
    for rec in records:
        lines = rec.get("trail", [])
        guard = rec.get("guard") or {}
        body = (
            "".join(f"<li><code>{_esc(ln)}</code></li>" for ln in lines)
            or "<li>no guard events (healthy run)</li>"
        )
        detail_caption = _esc(rec.get("description", ""))
        if rec.get("aborted"):
            detail_caption += (
                f" &mdash; aborted: <code>{_esc(rec.get('abort_reason', ''))}"
                "</code>"
            )
        details.append(
            f"<details><summary>{_esc(rec.get('case', ''))} "
            f"({len(lines)} events, rung {guard.get('level', '&mdash;')})"
            f"</summary><p class=\"caption\">{detail_caption}</p>"
            f"<ul>{body}</ul></details>"
        )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{_esc(title)}</title>
<style>{_CSS}</style>
</head>
<body>
<main>
<h1>SCF torture suite: {_esc(title)}</h1>
<p class="subtitle">convergence-guard acceptance gate: every case
converges or terminates with a classified GuardEvent trail
{_badge(PASS if all_pass else FAIL)}</p>
<div class="tiles">{tiles_html}</div>
<section>
<h2>Cases</h2>
<p class="caption">"vanilla" is the same driver configuration without
the guard; "events" counts typed GuardEvents (classifications and
remediations). Ladder and classifier rules: docs/ROBUSTNESS.md.</p>
<table><thead><tr><th>case</th><th>vanilla</th><th>guarded</th>
<th>iters</th><th>energy (Ha)</th><th>events</th><th>gate</th>
</tr></thead><tbody>{''.join(rows)}</tbody></table>
</section>
<section>
<h2>Event trails</h2>
{''.join(details)}
</section>
<footer>self-contained report &mdash; no external assets; generated by
the repro SCF convergence guard (see docs/ROBUSTNESS.md)</footer>
</main>
</body>
</html>
"""


# -- run driver --------------------------------------------------------------


def run_report(
    molecule: str = "water",
    basis_name: str = "6-31g",
    nproc: int = 4,
    tau: float = 1e-11,
    config=None,
    with_trace: bool = True,
    scf_guard: bool = False,
) -> tuple[RunReport, Any]:
    """Run a numeric GTFock build and assemble its :class:`RunReport`.

    With ``scf_guard=True`` a guarded RHF run of the same system is
    executed first and its convergence-guard summary (plus the event
    trail) lands in the report's "Convergence guard" section.

    Returns ``(report, build_result)``; render with
    :func:`render_report` or persist via :func:`write_report`.
    """
    # heavy imports stay local: repro.obs must import before the runtime
    from repro.chem import builders
    from repro.chem.basis.basisset import BasisSet
    from repro.chem.builders import paper_molecule
    from repro.fock.gtfock import gtfock_build
    from repro.fock.reorder import reorder_basis
    from repro.integrals.engine import MDEngine
    from repro.integrals.oneelec import core_hamiltonian, overlap
    from repro.model.perfmodel import PerfModel
    from repro.obs.metrics import export_commstats
    from repro.obs.trace import Tracer, get_tracer
    from repro.obs.validate import validate_run
    from repro.runtime.machine import LONESTAR
    from repro.scf.guess import core_guess
    from repro.scf.orthogonalization import orthogonalizer

    if config is None:
        config = LONESTAR
    simple = {
        "water": builders.water,
        "h2": builders.h2,
        "methane": builders.methane,
        "benzene": builders.benzene,
    }
    mol = simple[molecule]() if molecule in simple else paper_molecule(molecule)
    basis = reorder_basis(BasisSet.build(mol, basis_name))
    engine = MDEngine(basis)
    hcore = core_hamiltonian(basis)
    x = orthogonalizer(overlap(basis))
    density = core_guess(hcore, x, mol.nelectrons // 2)

    guard_summary = None
    if scf_guard:
        from repro.scf.hf import RHF

        scf_result = RHF(mol, basis_name=basis_name, guard=True).run()
        guard_summary = dict(scf_result.guard_summary or {})
        guard_summary["trail"] = [
            ev.describe() for ev in scf_result.guard_events
        ]
        guard_summary["converged"] = bool(scf_result.converged)
        guard_summary["iterations"] = scf_result.iterations

    # reuse an installed (e.g. --trace) tracer so its output and the
    # embedded trace are the same run; otherwise record one locally
    ambient = get_tracer()
    if ambient.enabled:
        tracer = ambient
    elif with_trace:
        tracer = Tracer("repro-report")
    else:
        tracer = None
    from repro.fock.simulate import SimCapture
    from repro.obs.critpath import analyze

    capture = SimCapture()
    result = gtfock_build(
        engine, hcore, density, nproc, tau=tau, config=config, tracer=tracer,
        capture=capture,
    )
    stats = result.stats
    # the invariant the whole report stands on: per-rank channel sums
    # must equal the global counters exactly
    stats.flight.check_against(stats)
    export_commstats(stats)
    stats.flight.export_metrics()

    # critical-path analysis of the same build (projection-only what-ifs:
    # re-simulating a numeric build would recompute real ERIs)
    analysis = analyze(capture, resim=False)
    analysis.export_metrics()

    s_measured = result.outcome.avg_steals_per_proc
    model = PerfModel.from_screening(result.screen, config, s=s_measured)
    validation = validate_run(model, stats, s_measured=s_measured)

    # a --profile profiler installed around this call shows up as the
    # report's "Phase profile" section
    profiler = get_profiler()
    phases = profiler.to_json() if profiler.enabled and profiler.stats else None

    title = f"{mol.name or mol.formula}-{basis_name}-p{nproc}"
    report = RunReport(
        title=title,
        molecule=mol.name or mol.formula,
        basis_name=basis_name,
        nproc=nproc,
        nbf=basis.nbf,
        nshells=basis.nshells,
        flight=stats.flight,
        comp_time=stats.comp_time.copy(),
        comm_time=stats.comm_time.copy(),
        finish_time=result.outcome.finish_time.copy(),
        steals=result.outcome.steals,
        validation=validation,
        summary=stats.summary(),
        trace=tracer.chrome_trace() if tracer is not None else None,
        notes=[
            "model tolerances are calibrated for small test molecules; "
            "see docs/OBSERVABILITY.md for the threshold table",
        ],
        scf_guard=guard_summary,
        phases=phases,
        critpath=analysis.to_json(),
    )
    return report, result


def chaos_report(cres: Any, trace: dict | None = None) -> RunReport:
    """Assemble a :class:`RunReport` for a chaos run's *faulted* build.

    ``cres`` is a :class:`~repro.fock.chaos.ChaosResult`; the report is
    the ordinary run report of the faulted build plus the fault-
    injection/recovery section (``recovery``).
    """
    from repro.model.perfmodel import PerfModel
    from repro.obs.validate import validate_run

    result = cres.faulty
    stats = result.stats
    stats.flight.check_against(stats)
    s_measured = result.outcome.avg_steals_per_proc
    model = PerfModel.from_screening(result.screen, stats.config, s=s_measured)
    validation = validate_run(model, stats, s_measured=s_measured)
    basis = result.screen.basis
    recovery = dict(cres.overhead)
    recovery.update(
        passed=cres.passed,
        fock_error=cres.fock_error,
        energy_error=cres.energy_error,
        tolerance=cres.tolerance,
        plan=cres.plan.describe(),
    )
    return RunReport(
        title=(
            f"{cres.molecule}-{cres.basis_name}-p{cres.nproc}"
            f"-chaos-seed{cres.plan.seed}"
        ),
        molecule=cres.molecule,
        basis_name=cres.basis_name,
        nproc=cres.nproc,
        nbf=basis.nbf,
        nshells=basis.nshells,
        flight=stats.flight,
        comp_time=stats.comp_time.copy(),
        comm_time=stats.comm_time.copy(),
        finish_time=result.outcome.finish_time.copy(),
        steals=result.outcome.steals,
        validation=validation,
        summary=stats.summary(),
        trace=trace,
        notes=[
            "this run executed under fault injection: model-vs-measured "
            "deviations include recovery overhead by design",
        ],
        recovery=recovery,
    )


def write_report(path: str, report: RunReport) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_report(report))


# -- run-ledger report -------------------------------------------------------


def _scf_trajectory_html(snapshots: list[dict]) -> str:
    """Convergence table from the ledger's ``scf_iteration`` snapshots."""
    iters = [s for s in snapshots if s.get("label") == "scf_iteration"]
    if not iters:
        return ""
    rows = []
    prev_e = None
    for s in iters:
        e = s.get("energy")
        de = "&mdash;"
        if e is not None and prev_e is not None:
            de = f"{e - prev_e:+.3e}"
        prev_e = e
        d_change = s.get("d_change")
        e_cell = f"{e:.10f}" if e is not None else "&mdash;"
        d_cell = f"{d_change:.3e}" if d_change is not None else "&mdash;"
        rows.append(
            "<tr>"
            f"<td>{s.get('iteration', '&mdash;')}</td>"
            f"<td>{e_cell}</td>"
            f"<td>{de}</td>"
            f"<td>{d_cell}</td>"
            f"<td>{s.get('wall_s', 0.0):.3f}</td>"
            "</tr>"
        )
    return (
        "<h2>SCF trajectory</h2>"
        '<p class="caption">One ledger snapshot per SCF iteration '
        "(streamed to <code>metrics.jsonl</code> as the run executed).</p>"
        "<table><thead><tr><th>iter</th><th>energy (Ha)</th>"
        "<th>&Delta;E</th><th>max |&Delta;D|</th><th>wall (s)</th>"
        f"</tr></thead><tbody>{''.join(rows)}</tbody></table>"
    )


def render_ledger_report(record: Any) -> str:
    """Render a persisted run directory (:class:`RunRecord`) as HTML.

    After-the-fact counterpart of :func:`render_report`: everything on
    the page comes from the ledger artifacts (``manifest.json`` /
    ``metrics.jsonl`` / ``summary.json``), so ``repro report <rundir>``
    works long after the process that wrote them exited.
    """
    manifest = record.manifest
    summary = record.summary or {}
    prov = manifest.get("provenance", {})
    exit_code = summary.get("exit_code")
    ok = exit_code == 0

    tiles = [
        (str(manifest.get("command", "?")), "command"),
        (str(summary.get("molecule", manifest.get("molecule") or "&mdash;")),
         "molecule"),
        (str(summary.get("basis", manifest.get("basis") or "&mdash;")),
         "basis"),
        (f"{summary.get('wall_s', 0.0):.3g} s", "wall time"),
        (str(len(record.snapshots)), "snapshots"),
    ]
    if "energy" in summary:
        tiles.append((f"{summary['energy']:.8f}", "energy (Ha)"))
    if "iterations" in summary:
        tiles.append((str(summary["iterations"]), "SCF iterations"))
    tiles_html = "".join(
        f'<div class="tile"><div class="v">{_esc(v)}</div>'
        f'<div class="l">{_esc(label)}</div></div>'
        for v, label in tiles
    )

    prov_rows = "".join(
        f"<tr><td>{_esc(k)}</td><td><code>{_esc(v)}</code></td></tr>"
        for k, v in prov.items()
    )
    config = manifest.get("config", {})
    config_rows = "".join(
        f"<tr><td>{_esc(k)}</td><td><code>{_esc(v)}</code></td></tr>"
        for k, v in sorted(config.items())
    )
    phases = record.phases or []
    hotspots = record.hotspots
    profile_html = ""
    if phases or hotspots:
        profile_html = (
            "<section>" + phase_section_html(phases, hotspots) + "</section>"
        )
    integrity_html = ""
    if isinstance(summary.get("integrity"), dict):
        integrity_html = (
            "<section>"
            + integrity_section_html(summary["integrity"])
            + "</section>"
        )
    traj_html = _scf_trajectory_html(record.snapshots)
    if traj_html:
        traj_html = f"<section>{traj_html}</section>"

    exit_badge = (
        _badge(PASS if ok else FAIL)
        if exit_code is not None
        else '<span class="badge">&#9202; no summary (run interrupted?)</span>'
    )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{_esc(record.title)}</title>
<style>{_CSS}</style>
</head>
<body>
<main>
<h1>Run ledger: {_esc(record.title)}</h1>
<p class="subtitle">started {_esc(manifest.get('started_utc', '?'))},
finished {_esc(summary.get('finished_utc', '&mdash;'))} &mdash;
exit code {exit_code if exit_code is not None else '&mdash;'}
{exit_badge}</p>
<div class="tiles">{tiles_html}</div>

<section>
<h2>Provenance</h2>
<p class="caption">Recorded in <code>manifest.json</code> when the run
started; config hash <code>{_esc(manifest.get('config_hash', '?'))}</code>
is the SHA-256 of the canonicalized config below.</p>
<table><thead><tr><th>field</th><th>value</th></tr></thead>
<tbody>{prov_rows}</tbody></table>
<details><summary>resolved config ({len(config)} keys)</summary>
<table><thead><tr><th>key</th><th>value</th></tr></thead>
<tbody>{config_rows}</tbody></table></details>
</section>

{traj_html}

{integrity_html}

{profile_html}

<footer>self-contained report rendered from the run ledger at
<code>{_esc(record.path)}</code> (see docs/OBSERVABILITY.md)</footer>
</main>
</body>
</html>
"""
