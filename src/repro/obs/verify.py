"""Offline integrity audit: ``repro verify <dir>``.

Walks a directory tree and verifies every integrity-framed artifact the
stack writes, *without* touching any of it:

* **integral stores** (``manifest.json`` + ``index.npz`` +
  ``blocks.bin``) -- manifest parses, the index is loadable, the data
  file has exactly ``nelements`` float64s, every block's bytes match
  its finalize-time CRC-32, and the whole file matches the manifest's
  ``blocks_sha256``.  Pre-v2 stores carry no checksums and are flagged
  as unverifiable (attach-time version gating refills them anyway);
* **SCF checkpoints** (``scf_ckpt_NNNN.npz``) -- each snapshot loads,
  passes its payload digest, and carries finite, shape-consistent
  arrays (:func:`repro.scf.checkpoint.load_checkpoint` with
  ``verify=True``);
* **run-ledger directories** (:mod:`repro.obs.manifest`) -- the
  manifest carries its required fields, ``metrics.jsonl`` is
  line-by-line valid JSON, and ``summary.json`` (when present) parses.

The audit is the recovery ladder's last rung made inspectable: after a
chaos run (or a real incident) it answers "which artifacts in this
tree can still be trusted?" -- and the CI ``sdc-chaos`` job runs it
over the gate's corrupted work tree to prove every planted corruption
is findable offline, not only in the hot path.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.obs.manifest import MANIFEST_NAME, REQUIRED_MANIFEST_FIELDS, load_run
from repro.scf.checkpoint import checkpoint_paths, load_checkpoint

_STORE_VERIFIED_MIN_VERSION = 2


@dataclass
class Finding:
    """One artifact that failed (or could not complete) verification."""

    path: str
    kind: str  # "store" | "checkpoint" | "ledger"
    problem: str

    def to_dict(self) -> dict:
        return {"path": self.path, "kind": self.kind, "problem": self.problem}


@dataclass
class VerifyReport:
    """Outcome of one offline audit."""

    root: str
    stores_audited: int = 0
    checkpoints_audited: int = 0
    runs_audited: int = 0
    blocks_checked: int = 0
    findings: list[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def add(self, path, kind: str, problem: str) -> None:
        self.findings.append(Finding(str(path), kind, problem))

    def summary_lines(self) -> list[str]:
        lines = [
            f"audited {self.stores_audited} store(s) "
            f"({self.blocks_checked} blocks), "
            f"{self.checkpoints_audited} checkpoint(s), "
            f"{self.runs_audited} run ledger(s) under {self.root}",
        ]
        for f in self.findings:
            lines.append(f"CORRUPT [{f.kind}] {f.path}: {f.problem}")
        lines.append(
            "verdict: "
            + ("CLEAN" if self.clean else f"{len(self.findings)} finding(s)")
        )
        return lines

    def to_json(self) -> dict:
        return {
            "root": self.root,
            "stores_audited": self.stores_audited,
            "checkpoints_audited": self.checkpoints_audited,
            "runs_audited": self.runs_audited,
            "blocks_checked": self.blocks_checked,
            "clean": self.clean,
            "findings": [f.to_dict() for f in self.findings],
        }


def audit_store(path: str | Path, report: VerifyReport) -> None:
    """Verify one on-disk integral store bottom-up (no attach needed)."""
    path = Path(path)
    report.stores_audited += 1
    try:
        manifest = json.loads((path / "manifest.json").read_text())
    except (OSError, json.JSONDecodeError) as exc:
        report.add(path, "store", f"unreadable manifest: {exc}")
        return
    version = manifest.get("version")
    if not isinstance(version, int) or version < _STORE_VERIFIED_MIN_VERSION:
        report.add(
            path, "store",
            f"format version {version!r} predates integrity framing "
            "(no per-block checksums; refill to verify)",
        )
        return
    try:
        with np.load(path / "index.npz") as idx:
            offsets = idx["offsets"]
            sizes = idx["sizes"]
            crcs = idx["crcs"]
    except Exception as exc:
        report.add(path, "store", f"unreadable index.npz: {exc}")
        return
    try:
        flat = np.fromfile(path / "blocks.bin", dtype=np.float64)
    except OSError as exc:
        report.add(path, "store", f"unreadable blocks.bin: {exc}")
        return
    nelements = int(manifest.get("nelements", -1))
    if flat.size != nelements:
        report.add(
            path, "store",
            f"blocks.bin holds {flat.size} elements, manifest says "
            f"{nelements}",
        )
        return
    digest = hashlib.sha256(flat.tobytes()).hexdigest()
    if digest != manifest.get("blocks_sha256"):
        report.add(path, "store", "blocks.bin sha256 != manifest digest")
    for i in range(len(offsets)):
        block = flat[int(offsets[i]):int(offsets[i]) + int(sizes[i])]
        report.blocks_checked += 1
        if zlib.crc32(block.tobytes()) != int(crcs[i]):
            report.add(path, "store", f"block {i} failed its CRC-32")


def audit_checkpoints(path: str | Path, report: VerifyReport) -> int:
    """Verify every SCF snapshot in a directory; returns how many failed."""
    failed = 0
    for ckpt in checkpoint_paths(path):
        report.checkpoints_audited += 1
        try:
            load_checkpoint(ckpt, verify=True)
        except Exception as exc:
            failed += 1
            report.add(
                ckpt, "checkpoint", f"{type(exc).__name__}: {exc}"
            )
    return failed


def audit_ledger(path: str | Path, report: VerifyReport) -> None:
    """Verify one run-ledger directory parses and is field-complete."""
    report.runs_audited += 1
    try:
        load_run(path, strict=False)
    except Exception as exc:
        report.add(path, "ledger", str(exc))


def _is_store_dir(path: Path) -> bool:
    return (
        (path / "manifest.json").exists()
        and (path / "index.npz").exists()
        and (path / "blocks.bin").exists()
    )


def _is_ledger_dir(path: Path) -> bool:
    if not (path / MANIFEST_NAME).exists() or _is_store_dir(path):
        return False
    try:
        manifest = json.loads((path / MANIFEST_NAME).read_text())
    except (OSError, json.JSONDecodeError):
        return True  # claims to be a ledger dir but doesn't parse: audit it
    return isinstance(manifest, dict) and any(
        fld in manifest for fld in REQUIRED_MANIFEST_FIELDS
    )


def verify_tree(root: str | Path) -> VerifyReport:
    """Audit every store / checkpoint set / run ledger under ``root``."""
    root = Path(root)
    report = VerifyReport(root=str(root))
    if not root.exists():
        report.add(root, "ledger", "directory does not exist")
        return report
    dirs = [root] + sorted(
        p for p in root.rglob("*") if p.is_dir()
    )
    for directory in dirs:
        if _is_store_dir(directory):
            audit_store(directory, report)
        elif _is_ledger_dir(directory):
            audit_ledger(directory, report)
        if checkpoint_paths(directory):
            audit_checkpoints(directory, report)
    return report
