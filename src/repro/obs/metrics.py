"""Labelled Counter/Gauge/Histogram metrics with JSON and Prometheus export.

A small, dependency-free metrics layer shaped like the Prometheus client
model: a :class:`MetricsRegistry` owns named metrics, each metric owns
one time series per label combination, and the registry renders either a
JSON document (structured consumption, tests) or Prometheus text
exposition format (scrapable).

The :func:`export_commstats` bridge turns the per-process communication
accounting of :class:`~repro.runtime.network.CommStats` -- the source of
the paper's Tables VI/VII/VIII -- into metrics verbatim: integer byte and
call counters are exported without any float round-trip, so the table
values recomputed from the export match the originals bit-for-bit.

A module-level registry (:func:`get_metrics`) backs the package-wide
instrumentation; recording into an unwatched registry is a couple of
dict operations, cheap enough to leave always on.
"""

from __future__ import annotations

import json
import re
from typing import TYPE_CHECKING, Iterator, Sequence

if TYPE_CHECKING:  # deferred: repro.runtime.network imports repro.obs.flight
    from repro.runtime.network import CommStats

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _label_key(
    metric: "Metric", labels: dict[str, object]
) -> tuple[str, ...]:
    if set(labels) != set(metric.labelnames):
        raise ValueError(
            f"metric {metric.name!r} takes labels {sorted(metric.labelnames)}, "
            f"got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in metric.labelnames)


def _render_labels(labelnames: Sequence[str], key: tuple[str, ...]) -> str:
    if not labelnames:
        return ""
    inner = ",".join(f'{n}="{v}"' for n, v in zip(labelnames, key))
    return "{" + inner + "}"


class Metric:
    """Base: a named family of series keyed by label values."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._series: dict[tuple[str, ...], object] = {}

    def samples(self) -> list[tuple[str, dict[str, str], object]]:
        """Flat ``(sample_name, labels, value)`` triples for exposition."""
        return [
            (self.name, dict(zip(self.labelnames, key)), value)
            for key, value in sorted(self._series.items())
        ]

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "series": [
                {"labels": labels, "value": value}
                for _, labels, value in self.samples()
            ],
        }


class Counter(Metric):
    """Monotone accumulator; preserves int-ness of integer increments."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(self, labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels) -> float:
        return self._series.get(_label_key(self, labels), 0)


class Gauge(Metric):
    """Set-to-current-value metric."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self._series[_label_key(self, labels)] = value

    def inc(self, amount: float = 1, **labels) -> None:
        key = _label_key(self, labels)
        self._series[key] = self._series.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        return self._series.get(_label_key(self, labels), 0)


class Histogram(Metric):
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    DEFAULT_BUCKETS = (
        1e-4, 1e-3, 1e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 60.0,
    )

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ):
        super().__init__(name, help, labelnames)
        bounds = tuple(buckets) if buckets is not None else self.DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be strictly increasing")
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        key = _label_key(self, labels)
        state = self._series.get(key)
        if state is None:
            state = {"counts": [0] * len(self.buckets), "sum": 0.0, "count": 0}
            self._series[key] = state
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                state["counts"][i] += 1
        state["sum"] += value
        state["count"] += 1

    def snapshot(self, **labels) -> dict:
        state = self._series.get(_label_key(self, labels))
        if state is None:
            return {"counts": [0] * len(self.buckets), "sum": 0.0, "count": 0}
        return {"counts": list(state["counts"]), "sum": state["sum"],
                "count": state["count"]}

    def to_json(self) -> dict:
        doc = super().to_json()
        doc["buckets"] = list(self.buckets)
        return doc


class MetricsRegistry:
    """Named metrics with get-or-create constructors and two exporters."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> Metric:
        return self._metrics[name]

    def _get_or_create(self, cls, name: str, help: str, labelnames, **kw):
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind} with labels {existing.labelnames}"
                )
            return existing
        metric = cls(name, help, labelnames, **kw)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self, name: str, help: str = "", labelnames: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames, buckets=buckets)

    # -- exporters -----------------------------------------------------------

    def to_json(self) -> dict:
        return {name: m.to_json() for name, m in sorted(self._metrics.items())}

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for name, metric in sorted(self._metrics.items()):
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                for key, state in sorted(metric._series.items()):
                    # bucket counts are cumulative by construction (observe
                    # increments every bucket whose bound covers the value)
                    for bound, n in zip(metric.buckets, state["counts"]):
                        le = _render_labels(
                            metric.labelnames + ("le",), key + (_fmt_float(bound),)
                        )
                        lines.append(f"{name}_bucket{le} {n}")
                    le = _render_labels(metric.labelnames + ("le",), key + ("+Inf",))
                    lines.append(f"{name}_bucket{le} {state['count']}")
                    lbl = _render_labels(metric.labelnames, key)
                    lines.append(f"{name}_sum{lbl} {_fmt_float(state['sum'])}")
                    lines.append(f"{name}_count{lbl} {state['count']}")
            else:
                for key, value in sorted(metric._series.items()):
                    lbl = _render_labels(metric.labelnames, key)
                    lines.append(f"{name}{lbl} {_fmt_float(value)}")
        return "\n".join(lines) + "\n"

    def write(self, path: str) -> None:
        """Write ``.prom`` text exposition or (default) JSON."""
        if str(path).endswith(".prom"):
            with open(path, "w") as fh:
                fh.write(self.to_prometheus())
        else:
            with open(path, "w") as fh:
                json.dump(self.to_json(), fh, indent=2, default=str)


def _fmt_float(value) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


# ---------------------------------------------------------------------------
# CommStats bridge (Tables VI / VII / VIII counters as metrics)
# ---------------------------------------------------------------------------


def export_commstats(
    stats: "CommStats",
    registry: MetricsRegistry | None = None,
    prefix: str = "repro_comm",
) -> MetricsRegistry:
    """Export every :class:`CommStats` counter into ``registry``.

    Per-process integer counters (bytes, calls, and their remote splits)
    are exported as exact ints labelled by ``proc``; the virtual clocks
    become gauges; the paper's aggregate metrics (Table VI volume,
    Table VII calls, Table VIII load balance) are exported as gauges
    computed by ``CommStats`` itself, so the two views cannot drift.
    """
    reg = registry if registry is not None else get_metrics()
    per_proc = (
        ("bytes_total", "bytes moved (incl. local)", stats.bytes, True),
        ("calls_total", "one-sided GA calls", stats.calls, True),
        ("remote_bytes_total", "bytes moved off-node", stats.remote_bytes, True),
        ("remote_calls_total", "one-sided GA calls off-node", stats.remote_calls, True),
        ("clock_seconds", "virtual per-process clock", stats.clock, False),
        ("comm_time_seconds", "clock share spent communicating", stats.comm_time, False),
        ("comp_time_seconds", "clock share spent computing", stats.comp_time, False),
    )
    for suffix, help_, values, is_counter in per_proc:
        name = f"{prefix}_{suffix}"
        if is_counter:
            metric = reg.counter(name, help_, labelnames=("proc",))
            for p in range(stats.nproc):
                metric.inc(int(values[p]), proc=p)
        else:
            metric = reg.gauge(name, help_, labelnames=("proc",))
            for p in range(stats.nproc):
                metric.set(float(values[p]), proc=p)
    summary = stats.summary()
    aggregates = (
        ("volume_mb_per_process", "Table VI: avg MB moved per process",
         summary["avg_volume_mb"]),
        ("calls_per_process", "Table VII: avg GA calls per process",
         summary["avg_calls"]),
        ("load_balance_ratio", "Table VIII: max/mean virtual clock",
         summary["load_balance"]),
        ("makespan_seconds", "slowest virtual clock", summary["makespan"]),
    )
    for suffix, help_, value in aggregates:
        reg.gauge(f"{prefix}_{suffix}", help_).set(value)
    reg.gauge(f"{prefix}_processes", "simulated process count").set(stats.nproc)
    return reg


def export_faults(
    state,
    outcome=None,
    registry: MetricsRegistry | None = None,
    prefix: str = "repro_faults",
) -> MetricsRegistry:
    """Export a run's fault-injection/recovery counters.

    ``state`` is a :class:`~repro.runtime.faults.FaultState`; ``outcome``
    (optional) a :class:`~repro.fock.stealing.StealingOutcome` whose
    death/re-execution counters are included when given.
    """
    reg = registry if registry is not None else get_metrics()
    retries = reg.counter(
        f"{prefix}_retries_total", "transient-failure retries charged",
        labelnames=("proc",),
    )
    acks = reg.counter(
        f"{prefix}_acks_lost_total", "applied-but-unacknowledged accumulates",
        labelnames=("proc",),
    )
    delay = reg.gauge(
        f"{prefix}_delay_seconds", "injected message-delay virtual time",
        labelnames=("proc",),
    )
    for p in range(state.nproc):
        retries.inc(int(state.retries[p]), proc=p)
        acks.inc(int(state.acks_lost[p]), proc=p)
        delay.set(float(state.delay_time[p]), proc=p)
    reg.gauge(
        f"{prefix}_planned_deaths", "rank deaths in the fault plan"
    ).set(len(state.plan.deaths))
    if outcome is not None:
        reg.gauge(
            f"{prefix}_dead_ranks", "ranks that died during the run"
        ).set(len(outcome.dead_ranks))
        reg.gauge(
            f"{prefix}_reexecuted_tasks",
            "tasks lost to rank death and re-executed by survivors",
        ).set(int(outcome.reexecuted_tasks))
        reg.gauge(
            f"{prefix}_recoveries", "orphan-adoption events by survivors"
        ).set(len(outcome.recoveries))
    return reg


def export_service(
    stats: dict,
    registry: MetricsRegistry | None = None,
    prefix: str = "repro_service",
    **supervisor_counters: int,
) -> MetricsRegistry:
    """Export job-queue state as service gauges.

    ``stats`` is :meth:`repro.service.store.JobStore.stats` (per-state
    job counts + transition-event counts); keyword counters are the
    supervisor's own tallies (``restarts=``, ``timeouts=``,
    ``leases_expired=``).
    """
    reg = registry if registry is not None else get_metrics()
    jobs = reg.gauge(
        f"{prefix}_jobs", "jobs currently in each queue state",
        labelnames=("state",),
    )
    for state, n in stats.get("counts", {}).items():
        jobs.set(int(n), state=state)
    events = reg.counter(
        f"{prefix}_events_total", "job state-transition events recorded",
        labelnames=("event",),
    )
    for event, n in stats.get("events", {}).items():
        events.inc(int(n), event=event)
    for name, help_ in (
        ("restarts", "worker processes respawned by the supervisor"),
        ("timeouts", "wall-clock timeouts enforced (SIGTERM/SIGKILL)"),
        ("leases_expired", "dead leases re-enqueued by the supervisor"),
    ):
        if name in supervisor_counters:
            reg.gauge(f"{prefix}_{name}", help_).set(
                int(supervisor_counters[name])
            )
    return reg


def export_integrity(
    summary: dict,
    registry: MetricsRegistry | None = None,
    prefix: str = "repro_integrity",
) -> MetricsRegistry:
    """Export a run's data-integrity counters.

    ``summary`` is :meth:`repro.runtime.sdc.IntegrityMonitor.summary`:
    detector executions by detector name, corruptions detected by kind
    (store block, checkpoint, GA payload, F/D matrix), and recoveries
    taken by action (recompute, rollback, retransmit).  A healthy run
    exports non-zero checks and all-zero detections -- the observable
    proof that the detectors ran and found nothing.
    """
    reg = registry if registry is not None else get_metrics()
    checks = reg.counter(
        f"{prefix}_checks_total", "integrity detector executions",
        labelnames=("detector",),
    )
    for detector, n in summary.get("checks", {}).items():
        checks.inc(int(n), detector=detector)
    detections = reg.counter(
        f"{prefix}_corruptions_detected_total",
        "corruptions caught by an integrity layer",
        labelnames=("kind",),
    )
    for kind, n in summary.get("detections", {}).items():
        detections.inc(int(n), kind=kind)
    recoveries = reg.counter(
        f"{prefix}_recoveries_total",
        "recovery-ladder rungs taken after a detection",
        labelnames=("action",),
    )
    for action, n in summary.get("recoveries", {}).items():
        recoveries.inc(int(n), action=action)
    return reg


_registry = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide metrics registry backing package instrumentation."""
    return _registry


def set_metrics(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install a fresh registry (None resets); returns the old one."""
    global _registry
    previous = _registry
    _registry = registry if registry is not None else MetricsRegistry()
    return previous
