"""Phase profiler: wall + CPU + allocation attribution for named phases.

The ROADMAP's "next 10x on the ERI/Fock hot path" starts from the same
place every serious restructure does (the Xeon Phi HF work restructured
its loops *from hotspot profiles*): knowing where the Python wall-clock,
CPU time, and allocations actually go.  :class:`PhaseProfiler` wraps the
pipeline's named phases --

``pairdata_build``, ``schwarz_screening``, ``eri_quartets``,
``jk_contraction``, ``diagonalize``/``purify``, ``diis``,
``fock_build``, ``sim_event_loop``

-- and accumulates, per phase: call count, inclusive wall seconds
(``time.perf_counter``), inclusive CPU seconds (``time.process_time``),
and (opt-in, ``alloc=True``) the peak ``tracemalloc`` allocation
observed while the phase was innermost.  Each phase occurrence is also
emitted as a host span (``cat="phase"``) into the active
:class:`~repro.obs.trace.Tracer`, so Perfetto shows the phases next to
the existing span schema.

Like the tracer and the metrics registry, the profiler is a process-wide
singleton behind :func:`get_profiler` / :func:`set_profiler`; the
default :data:`NULL_PROFILER` makes every probe a no-op, so leaving the
instrumentation in the hot path costs essentially nothing when disabled
(and <= 5% when enabled without ``alloc``, gated by
``benchmarks/test_bench_profiler.py``).

The opt-in **hotspot table** (:func:`profile_hotspots`) runs a callable
under :mod:`cProfile` and extracts the top-N functions by cumulative
time -- rendered as text by :func:`hotspot_text` (``repro perf
profile``) and as HTML in the run-ledger report.
"""

from __future__ import annotations

import cProfile
import pstats
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

#: the canonical phase taxonomy (documented in docs/OBSERVABILITY.md);
#: free-form names are allowed, these are the ones the pipeline emits
PHASE_PAIRDATA = "pairdata_build"
PHASE_SCHWARZ = "schwarz_screening"
PHASE_CLASS_PLAN = "class_plan"
PHASE_ERI = "eri_quartets"
PHASE_JK = "jk_contraction"
PHASE_DIAG = "diagonalize"
PHASE_PURIFY = "purify"
PHASE_DIIS = "diis"
PHASE_FOCK = "fock_build"
PHASE_SIM_LOOP = "sim_event_loop"

#: phase occurrences shorter than this are aggregated but not mirrored
#: as tracer spans -- the per-quartet ERI/JK phases (thousands per Fock
#: build) would otherwise flood the Perfetto timeline
TRACE_MIRROR_MIN_WALL_S = 1e-4


@dataclass
class PhaseStat:
    """Accumulated cost of one named phase (inclusive of nested phases)."""

    name: str
    calls: int = 0
    wall_s: float = 0.0
    cpu_s: float = 0.0
    max_wall_s: float = 0.0
    #: peak tracemalloc bytes observed while this phase was innermost
    #: (0 unless the profiler was built with ``alloc=True``)
    alloc_peak_bytes: int = 0

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "calls": self.calls,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "max_wall_s": self.max_wall_s,
            "alloc_peak_bytes": self.alloc_peak_bytes,
        }


class _PhaseSpan:
    """Reusable context manager recording occurrences of one phase.

    The profiler hands out one span per phase name and reuses it across
    occurrences (the ERI/JK probes fire tens of thousands of times per
    Fock build; allocating a fresh context manager each time is pure GC
    pressure).  ``busy`` guards reentrant same-name nesting: a busy span
    falls back to a fresh throwaway instance.
    """

    __slots__ = ("prof", "name", "t0", "c0", "peak", "busy", "stat")

    def __init__(self, prof: "PhaseProfiler", name: str):
        self.prof = prof
        self.name = name
        self.peak = 0
        self.busy = False
        self.stat: PhaseStat | None = None

    def __enter__(self) -> "_PhaseSpan":
        self.busy = True
        prof = self.prof
        if prof.alloc:
            prof._enter_alloc(self)
        self.t0 = time.perf_counter()
        self.c0 = time.process_time()
        return self

    def __exit__(self, *exc) -> bool:
        # record unconditionally: a phase that raises still happened and
        # its cost is still attributable (exception safety is tested)
        wall = time.perf_counter() - self.t0
        cpu = time.process_time() - self.c0
        prof = self.prof
        stat = self.stat
        if stat is None:
            stat = prof.stats.get(self.name)
            if stat is None:
                stat = prof.stats[self.name] = PhaseStat(self.name)
            self.stat = stat
        stat.calls += 1
        stat.wall_s += wall
        if cpu > 0.0:
            stat.cpu_s += cpu
        if wall > stat.max_wall_s:
            stat.max_wall_s = wall
        if prof.alloc:
            prof._exit_alloc(self, stat)
        # mirror the phase as a host span on the active tracer (no-op on
        # the null tracer; micro-phases stay aggregate-only)
        if wall >= TRACE_MIRROR_MIN_WALL_S:
            prof._mirror(self.name, wall)
        self.busy = False
        return False


class PhaseProfiler:
    """Collects per-phase wall/CPU/allocation statistics.

    Parameters
    ----------
    alloc:
        Attribute ``tracemalloc`` peak allocations to phases.  Starts
        tracemalloc if it is not already tracing (and stops it again in
        :meth:`close` if this profiler started it).  Allocation tracing
        slows Python allocation-heavy code down substantially -- it is
        off by default and excluded from the <= 5% overhead gate.
    """

    enabled = True

    def __init__(self, alloc: bool = False):
        self.stats: dict[str, PhaseStat] = {}
        self.alloc = alloc
        self._spans: dict[str, _PhaseSpan] = {}
        self._stack: list[_PhaseSpan] = []
        self._owns_tracemalloc = False
        if alloc and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_tracemalloc = True

    # -- recording -----------------------------------------------------------

    def phase(self, name: str) -> _PhaseSpan:
        """Context manager timing one occurrence of phase ``name``."""
        span = self._spans.get(name)
        if span is None:
            span = self._spans[name] = _PhaseSpan(self, name)
        elif span.busy:  # reentrant same-name nesting: throwaway instance
            return _PhaseSpan(self, name)
        return span

    def add_sample(
        self, name: str, wall_s: float, cpu_s: float, calls: int = 1
    ) -> None:
        """Fold externally measured time into phase ``name``.

        Worker threads of the class-batched J/K path time their own
        chunks (``time.perf_counter`` / ``time.thread_time``) and the
        coordinating thread folds the results in here -- the reusable
        :class:`_PhaseSpan` machinery is deliberately not thread-safe,
        so cross-thread attribution goes through this aggregate-only
        door (no tracer mirroring, no allocation attribution).
        """
        stat = self.stats.get(name)
        if stat is None:
            stat = self.stats[name] = PhaseStat(name)
        stat.calls += int(calls)
        stat.wall_s += float(wall_s)
        if cpu_s > 0.0:
            stat.cpu_s += float(cpu_s)

    def _enter_alloc(self, span: _PhaseSpan) -> None:
        # bank the running peak on the phase being interrupted, then
        # reset so the nested phase sees only its own allocations
        if self._stack:
            outer = self._stack[-1]
            outer.peak = max(outer.peak, tracemalloc.get_traced_memory()[1])
        tracemalloc.reset_peak()
        span.peak = 0
        self._stack.append(span)

    def _exit_alloc(self, span: _PhaseSpan, stat: PhaseStat) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # exception unwound past nested spans
            while self._stack and self._stack[-1] is not span:
                self._stack.pop()
            self._stack.pop()
        peak = max(span.peak, tracemalloc.get_traced_memory()[1])
        stat.alloc_peak_bytes = max(stat.alloc_peak_bytes, int(peak))
        tracemalloc.reset_peak()

    def _mirror(self, name: str, wall: float) -> None:
        from repro.obs.trace import get_tracer

        tracer = get_tracer()
        if tracer.enabled:
            end = time.perf_counter()
            tracer.host_span_at(name, end - wall, end, cat="phase")

    def close(self) -> None:
        """Release resources (stops tracemalloc if this profiler started it)."""
        if self._owns_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._owns_tracemalloc = False

    # -- views ---------------------------------------------------------------

    def phases(self) -> list[PhaseStat]:
        """Stats sorted by total wall time, descending."""
        return sorted(self.stats.values(), key=lambda s: -s.wall_s)

    def to_json(self) -> list[dict]:
        return [s.to_json() for s in self.phases()]

    def table(self) -> str:
        """Fixed-width console rendering of the phase table."""
        lines = [
            f"{'phase':<18} {'calls':>7} {'wall [s]':>10} {'cpu [s]':>10} "
            f"{'max [s]':>10} {'peak alloc':>11}",
        ]
        for s in self.phases():
            alloc = _fmt_bytes(s.alloc_peak_bytes) if s.alloc_peak_bytes else "-"
            lines.append(
                f"{s.name:<18} {s.calls:>7} {s.wall_s:>10.4f} "
                f"{s.cpu_s:>10.4f} {s.max_wall_s:>10.4f} {alloc:>11}"
            )
        if len(lines) == 1:
            lines.append("(no phases recorded)")
        return "\n".join(lines)

    def export_metrics(self, registry=None) -> None:
        """Dump the accumulated stats as ``repro_phase_*`` metrics."""
        from repro.obs.metrics import get_metrics

        reg = registry if registry is not None else get_metrics()
        wall = reg.counter(
            "repro_phase_wall_seconds_total",
            "inclusive wall time per profiled phase", labelnames=("phase",),
        )
        cpu = reg.counter(
            "repro_phase_cpu_seconds_total",
            "inclusive CPU time per profiled phase", labelnames=("phase",),
        )
        calls = reg.counter(
            "repro_phase_calls_total",
            "occurrences per profiled phase", labelnames=("phase",),
        )
        peak = reg.gauge(
            "repro_phase_alloc_peak_bytes",
            "peak tracemalloc bytes while the phase was innermost",
            labelnames=("phase",),
        )
        for s in self.stats.values():
            wall.inc(s.wall_s, phase=s.name)
            cpu.inc(s.cpu_s, phase=s.name)
            calls.inc(s.calls, phase=s.name)
            if s.alloc_peak_bytes:
                peak.set(s.alloc_peak_bytes, phase=s.name)


class _NullPhaseSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullPhaseSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_PHASE_SPAN = _NullPhaseSpan()


class NullProfiler(PhaseProfiler):
    """Free-of-charge profiler: every probe is a no-op."""

    enabled = False

    def __init__(self):  # noqa: D401 - no tracemalloc, no state
        self.stats = {}
        self.alloc = False
        self._spans = {}
        self._stack = []
        self._owns_tracemalloc = False

    def phase(self, name: str):  # type: ignore[override]
        return _NULL_PHASE_SPAN

    def add_sample(
        self, name: str, wall_s: float, cpu_s: float, calls: int = 1
    ) -> None:
        pass

    def export_metrics(self, registry=None) -> None:
        pass


#: the shared disabled profiler; ``get_profiler()`` returns it by default
NULL_PROFILER = NullProfiler()

_active: PhaseProfiler = NULL_PROFILER


def get_profiler() -> PhaseProfiler:
    """The process-wide active phase profiler (no-op unless enabled)."""
    return _active


def set_profiler(profiler: PhaseProfiler | None) -> PhaseProfiler:
    """Install ``profiler`` (None restores the null one); returns the old."""
    global _active
    previous = _active
    _active = profiler if profiler is not None else NULL_PROFILER
    return previous


@contextmanager
def profiling(profiler: PhaseProfiler | None = None) -> Iterator[PhaseProfiler]:
    """Activate a phase profiler for the duration of a ``with`` block."""
    profiler = profiler if profiler is not None else PhaseProfiler()
    previous = set_profiler(profiler)
    try:
        yield profiler
    finally:
        set_profiler(previous)


# ---------------------------------------------------------------------------
# cProfile hotspot capture (opt-in: real profiling overhead)
# ---------------------------------------------------------------------------


@dataclass
class Hotspot:
    """One row of the top-N cumulative-time table."""

    func: str
    file: str
    line: int
    ncalls: int
    tottime: float
    cumtime: float

    @property
    def where(self) -> str:
        if self.file in ("~", ""):
            return self.func  # built-ins carry no file
        return f"{self.file}:{self.line}:{self.func}"

    def to_json(self) -> dict:
        return {
            "func": self.func,
            "file": self.file,
            "line": self.line,
            "ncalls": self.ncalls,
            "tottime": self.tottime,
            "cumtime": self.cumtime,
        }


@dataclass
class HotspotProfile:
    """Result of one :func:`profile_hotspots` capture."""

    hotspots: list[Hotspot] = field(default_factory=list)
    total_calls: int = 0
    total_time: float = 0.0

    def to_json(self) -> dict:
        return {
            "total_calls": self.total_calls,
            "total_time": self.total_time,
            "hotspots": [h.to_json() for h in self.hotspots],
        }


def _shorten(path: str) -> str:
    """Trim a source path to its package-relative tail."""
    for marker in ("/site-packages/", "/src/"):
        if marker in path:
            return path.split(marker, 1)[1]
    parts = path.rsplit("/", 3)
    return "/".join(parts[-2:]) if len(parts) > 2 else path


def extract_hotspots(prof: cProfile.Profile, top: int = 15) -> HotspotProfile:
    """Top-``top`` functions by cumulative time from a cProfile run."""
    st = pstats.Stats(prof)
    rows = []
    for (file, line, func), (cc, nc, tt, ct, _callers) in st.stats.items():
        rows.append(Hotspot(
            func=func, file=_shorten(file), line=line,
            ncalls=int(nc), tottime=float(tt), cumtime=float(ct),
        ))
    rows.sort(key=lambda h: -h.cumtime)
    return HotspotProfile(
        hotspots=rows[:top],
        total_calls=int(st.total_calls),
        total_time=float(st.total_tt),
    )


def profile_hotspots(
    fn: Callable[[], Any], top: int = 15
) -> tuple[Any, HotspotProfile]:
    """Run ``fn`` under cProfile; return ``(fn(), top-N hotspot table)``."""
    prof = cProfile.Profile()
    result = prof.runcall(fn)
    return result, extract_hotspots(prof, top)


def hotspot_text(profile: HotspotProfile) -> str:
    """Fixed-width console rendering of the hotspot table."""
    lines = [
        f"hotspots: {profile.total_calls} calls, "
        f"{profile.total_time:.3f} s total (cProfile, by cumulative time)",
        f"{'cum [s]':>9} {'tot [s]':>9} {'calls':>9}  location",
    ]
    for h in profile.hotspots:
        lines.append(
            f"{h.cumtime:>9.4f} {h.tottime:>9.4f} {h.ncalls:>9}  {h.where}"
        )
    return "\n".join(lines)


def _fmt_bytes(n: float) -> str:
    n = float(n)
    for unit in ("B", "kB", "MB", "GB"):
        if abs(n) < 1000.0 or unit == "GB":
            return f"{n:.0f} {unit}" if unit == "B" else f"{n:.2f} {unit}"
        n /= 1000.0
    return f"{n:.2f} GB"
