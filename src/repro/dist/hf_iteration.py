"""Whole-HF-iteration time model: Fock build + the density step.

Table IX frames the paper's purification choice: at paper scale the
Fock build dominates the iteration, but its *share* shrinks as the
density step scales worse -- and a dense diagonalization scales far
worse than SUMMA purification, because parallel eigensolvers sustain a
small fraction of the DGEMM rate and serialize on ~n panel stages of
collectives.  This module extends Table IX with that dense-eigensolver
alternative so the crossover the paper argues for is explicit.

All inputs are a simulated Fock result (:class:`FockSimResult`) plus
the machine model; nothing here runs numerics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.fock.simulate import FockSimResult
from repro.runtime.machine import MachineConfig

from repro.dist.purification_dist import purification_time_model

#: Flops of a dense symmetric eigendecomposition with all eigenvectors,
#: as a multiple of n^3 (tridiagonalization + implicit QR + back
#: transformation).
EIG_FLOPS_PER_N3 = 9.0

#: Sustained seconds/flop of the parallel eigensolver -- an order of
#: magnitude off the DGEMM rate: the tridiagonal reduction is
#: memory-bound level-2 work (cf. ``DGEMM_SECONDS_PER_FLOP``).
EIG_SECONDS_PER_FLOP = 4.0e-10


def diagonalization_time_model(
    nbf: int, nproc: int, config: MachineConfig
) -> float:
    """Modeled wall time of one dense eigensolve on ``nproc`` processes.

    Compute parallelizes as ``9 n^3 / p`` at the eigensolver's sustained
    rate; on top of it the reduction runs ~n panel stages whose
    log-depth collectives do not overlap with compute (plus a log-factor
    of contention), which is what erodes its scaling relative to
    purification's two clean SUMMA multiplies per step.
    """
    if nbf < 1:
        raise ValueError(f"nbf must be >= 1, got {nbf}")
    if nproc < 1:
        raise ValueError(f"nproc must be >= 1, got {nproc}")
    t = EIG_FLOPS_PER_N3 * nbf**3 * EIG_SECONDS_PER_FLOP / nproc
    if nproc > 1:
        lg = math.log2(nproc)
        t += config.latency * nbf * lg * lg
    return t


@dataclass(frozen=True)
class HFIterationBreakdown:
    """Time split of one HF iteration under both density-step choices."""

    cores: int
    t_fock: float
    t_purification: float
    t_diagonalization: float

    @property
    def t_iteration_purify(self) -> float:
        """Fock build + purification (the paper's pipeline)."""
        return self.t_fock + self.t_purification

    @property
    def t_iteration_diag(self) -> float:
        """Fock build + dense diagonalization (the replaced alternative)."""
        return self.t_fock + self.t_diagonalization

    @property
    def purification_percent(self) -> float:
        """Purification's share of its iteration (Table IX's `%` column)."""
        return 100.0 * self.t_purification / self.t_iteration_purify

    @property
    def purify_speedup_over_diag(self) -> float:
        """How much faster the density step is with purification."""
        return self.t_diagonalization / self.t_purification


def hf_iteration_breakdown(
    fock: FockSimResult,
    nbf: int,
    config: MachineConfig,
    purification_iterations: int = 45,
) -> HFIterationBreakdown:
    """Table IX row for one simulated Fock build.

    The density-step models run on the Fock build's process count (one
    GTFock process per node), on the same 2-D blocked distribution the
    build leaves F and D in.
    """
    nproc = max(1, fock.nproc)
    return HFIterationBreakdown(
        cores=fock.cores,
        t_fock=fock.t_fock_max,
        t_purification=purification_time_model(
            nbf, nproc, config, iterations=purification_iterations
        ),
        t_diagonalization=diagonalization_time_model(nbf, nproc, config),
    )
