"""Distributed canonical purification (Sec IV-E, Table IX).

Runs the Palser-Manolopoulos iteration of
:mod:`repro.scf.purification` -- the serial reference -- on 2-D blocked
:class:`~repro.runtime.ga.GlobalArray` matrices: the two cubic-step
matrix multiplies are SUMMA multiplies, the traces steering the
polynomial choice are distributed traces, and the per-block linear
combination plus the symmetrizing transpose-average are charged to each
owner's virtual clock.  The density it converges to is the serial one
(same math, same trajectory), so ``purify_distributed`` is verified
against :func:`repro.scf.purification.purify` element by element.

:func:`purification_time_model` is the matching cost model at paper
scale, built from :func:`~repro.dist.summa.summa_time_model`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.obs.flight import CH_ALLREDUCE, CH_GA
from repro.runtime.ga import GlobalArray, block_bounds, grid_shape
from repro.runtime.machine import LONESTAR, MachineConfig
from repro.runtime.network import CommStats
from repro.scf.purification import initial_density
from repro.util.validation import check_symmetric

from repro.dist.summa import (
    DGEMM_SECONDS_PER_FLOP,
    distributed_trace,
    summa_multiply,
    summa_time_model,
)


@dataclass
class DistributedPurificationResult:
    """Converged density plus the run's full communication accounting."""

    #: purified density in the orthogonal basis (trace = nocc)
    density: np.ndarray
    iterations: int
    converged: bool
    #: per-iteration idempotency error ||D^2 - D||_F
    history: list[float] = field(default_factory=list)
    #: makespan: the slowest simulated process clock (seconds)
    time: float = 0.0
    stats: CommStats | None = None


def _distributed_fro_norm(
    a: GlobalArray, b: GlobalArray, stats: CommStats, config: MachineConfig
) -> float:
    """||A - B||_F via local partial sums and a scalar allreduce."""
    hops = max(1, math.ceil(math.log2(max(a.nproc, 2))))
    acc = 0.0
    for proc in range(a.nproc):
        rs, cs = a.local_slice(proc)
        diff = a.data[rs, cs] - b.data[rs, cs]
        acc += float(np.sum(diff * diff))
        stats.charge_compute(proc, 2.0 * diff.size * DGEMM_SECONDS_PER_FLOP)
        stats.charge_comm(
            proc,
            config.element_size,
            ncalls=hops,
            remote=a.nproc > 1,
            channel=CH_ALLREDUCE,
        )
    return math.sqrt(acc)


def _combine_and_symmetrize(
    d: GlobalArray,
    d2: GlobalArray,
    d3: GlobalArray,
    coeffs: tuple[float, float, float],
    stats: CommStats,
) -> GlobalArray:
    """``0.5 (M + M^T)`` for ``M = c1 D + c2 D^2 + c3 D^3``, blockwise.

    The linear combination is owner-local; the symmetrization is the one
    genuinely communicating step -- block (i, j) needs block (j, i), a
    one-sided get from the transpose owner.
    """
    c1, c2, c3 = coeffs
    out = GlobalArray(stats, d.rows, d.cols, d.row_bounds, d.col_bounds)
    combined = c1 * d.data + c2 * d2.data + c3 * d3.data
    for proc in range(out.nproc):
        rs, cs = out.local_slice(proc)
        local = combined[rs, cs]
        stats.charge_compute(
            proc, 5.0 * local.size * DGEMM_SECONDS_PER_FLOP
        )
        # fetch the mirror block of the combination; since the staging
        # array is shared here, charge the access as if remote-owned
        mirror = combined[cs, rs]
        stats.charge_comm(
            proc,
            mirror.size * stats.config.element_size,
            ncalls=1,
            remote=out.owner(cs.start, rs.start) != proc,
            channel=CH_GA,
        )
        out.put(proc, rs.start, cs.start, 0.5 * (local + mirror.T))
    return out


def purify_distributed(
    f_ortho: np.ndarray,
    nocc: int,
    nproc: int,
    config: MachineConfig = LONESTAR,
    tol: float = 1e-10,
    max_iter: int = 100,
) -> DistributedPurificationResult:
    """Canonical purification of D from F (orthogonal basis), distributed.

    Mirrors :func:`repro.scf.purification.purify` step for step on a
    near-square ``nproc`` process grid; returns the gathered density
    plus the :class:`CommStats` accounting of every SUMMA panel fetch,
    trace allreduce, and symmetrizing transpose.
    """
    check_symmetric(f_ortho, "fock", tol=1e-8)
    n = f_ortho.shape[0]
    prow, pcol = grid_shape(nproc)
    stats = CommStats(nproc, config)
    d = GlobalArray(stats, n, n, block_bounds(n, prow), block_bounds(n, pcol))
    d.load(initial_density(f_ortho, nocc))

    history: list[float] = []
    for it in range(1, max_iter + 1):
        d2 = summa_multiply(d, d, stats, config)
        err = _distributed_fro_norm(d2, d, stats, config)
        history.append(err)
        if err < tol:
            stats.barrier()
            return DistributedPurificationResult(
                d.to_numpy(), it - 1, True, history,
                float(stats.clock.max()), stats,
            )
        d3 = summa_multiply(d2, d, stats, config)
        tr_d = distributed_trace(d, stats, config)
        tr_d2 = distributed_trace(d2, stats, config)
        tr_d3 = distributed_trace(d3, stats, config)
        den = tr_d - tr_d2
        c = (tr_d2 - tr_d3) / den if abs(den) > 1e-300 else 0.5
        if c >= 0.5:
            coeffs = (0.0, (1.0 + c) / c, -1.0 / c)
        else:
            coeffs = (
                (1.0 - 2.0 * c) / (1.0 - c),
                (1.0 + c) / (1.0 - c),
                -1.0 / (1.0 - c),
            )
        d = _combine_and_symmetrize(d, d2, d3, coeffs, stats)

    d2 = summa_multiply(d, d, stats, config)
    err = _distributed_fro_norm(d2, d, stats, config)
    history.append(err)
    stats.barrier()
    return DistributedPurificationResult(
        d.to_numpy(), max_iter, err < tol, history,
        float(stats.clock.max()), stats,
    )


def purification_time_model(
    nbf: int,
    nproc: int,
    config: MachineConfig,
    iterations: int = 45,
) -> float:
    """Modeled wall time of ``iterations`` purification steps.

    Each canonical step costs two SUMMA multiplies (D^2 and D^3) plus
    four log-depth scalar reductions (three steering traces and the
    convergence norm); see Table IX for the share this takes of the HF
    iteration at paper scale.
    """
    if nbf < 1:
        raise ValueError(f"nbf must be >= 1, got {nbf}")
    if nproc < 1:
        raise ValueError(f"nproc must be >= 1, got {nproc}")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    per_iter = 2.0 * summa_time_model(nbf, nproc, config)
    if nproc > 1:
        per_iter += 4.0 * math.log2(nproc) * config.latency
    return iterations * per_iter
