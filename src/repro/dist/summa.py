"""SUMMA matrix multiplication on the simulated Global Arrays runtime.

The paper replaces diagonalization with canonical purification precisely
because purification is built from matrix multiplies and traces, and
SUMMA [van de Geijn & Watts 1997] runs those on *exactly* the 2-D
blocked distribution the Fock build already uses (Sec IV-E, Table IX) --
no redistribution between the Fock step and the density step.

Two faces, mirroring the rest of the repo:

* :func:`summa_multiply` / :func:`distributed_trace` -- **numeric**
  execution on :class:`~repro.runtime.ga.GlobalArray`: every panel
  fetch is a one-sided GA access charged per owner to the caller's
  virtual clock, every local GEMM is charged as compute, and the result
  equals the NumPy product.
* :func:`summa_time_model` -- the **cost model** used at paper scale
  (C150H30: nbf = 2250, up to 324 nodes), where running the numeric
  path would be pointless: per-process flops at the sustained DGEMM
  rate plus the alpha-beta cost of the panel broadcasts.
"""

from __future__ import annotations

import math

import numpy as np

from repro.obs.flight import CH_ALLREDUCE, CH_BROADCAST
from repro.runtime.ga import GlobalArray
from repro.runtime.machine import MachineConfig
from repro.runtime.network import CommStats

#: Sustained seconds/flop of the node-local DGEMM (one GTFock process =
#: one 12-core node running threaded BLAS; ~50 Gflop/s sustained, a
#: realistic fraction of Lonestar's ~134 Gflop/s node peak).
DGEMM_SECONDS_PER_FLOP = 2.0e-11


def summa_multiply(
    a: GlobalArray,
    b: GlobalArray,
    stats: CommStats,
    config: MachineConfig,
) -> GlobalArray:
    """C = A @ B with SUMMA on the simulated runtime.

    The result is distributed on ``a``'s row partition x ``b``'s column
    partition.  Each process sweeps the k-dimension in panels (``a``'s
    column partition); per stage it fetches its slice of the A-panel and
    B-panel -- the simulated counterpart of the SUMMA row/column
    broadcasts, charged per owning process -- and accumulates one local
    GEMM, charged at the sustained DGEMM rate.
    """
    if a.cols != b.rows:
        raise ValueError(
            f"inner dimensions differ: A is {a.rows}x{a.cols}, "
            f"B is {b.rows}x{b.cols}"
        )
    c = GlobalArray(stats, a.rows, b.cols, a.row_bounds, b.col_bounds)
    if c.nproc > stats.nproc:
        raise ValueError(
            f"result grid needs {c.nproc} processes, run has {stats.nproc}"
        )
    panels = a.col_bounds
    for proc in range(c.nproc):
        rs, cs = c.local_slice(proc)
        block = np.zeros((rs.stop - rs.start, cs.stop - cs.start))
        for s in range(len(panels) - 1):
            k0, k1 = int(panels[s]), int(panels[s + 1])
            a_panel = a.get(
                proc, rs.start, rs.stop, k0, k1, channel=CH_BROADCAST
            )
            b_panel = b.get(
                proc, k0, k1, cs.start, cs.stop, channel=CH_BROADCAST
            )
            block += a_panel @ b_panel
            flops = 2.0 * block.shape[0] * (k1 - k0) * block.shape[1]
            stats.charge_compute(proc, flops * DGEMM_SECONDS_PER_FLOP)
        c.put(proc, rs.start, cs.start, block)
    return c


def distributed_trace(
    ga: GlobalArray, stats: CommStats, config: MachineConfig
) -> float:
    """tr(A) of a distributed square matrix, with allreduce accounting.

    Every diagonal element lives in exactly one owner block, so each
    process sums its local diagonal run (free of communication) and the
    scalar contributions meet in a log-depth allreduce.
    """
    if ga.rows != ga.cols:
        raise ValueError(f"trace needs a square matrix, got {ga.rows}x{ga.cols}")
    hops = max(1, math.ceil(math.log2(max(ga.nproc, 2))))
    total = 0.0
    for proc in range(ga.nproc):
        rs, cs = ga.local_slice(proc)
        lo, hi = max(rs.start, cs.start), min(rs.stop, cs.stop)
        if hi > lo:
            total += float(np.trace(ga.data[lo:hi, lo:hi]))
            stats.charge_compute(
                proc, (hi - lo) * DGEMM_SECONDS_PER_FLOP
            )
        stats.charge_comm(
            proc,
            config.element_size,
            ncalls=hops,
            remote=ga.nproc > 1,
            channel=CH_ALLREDUCE,
        )
    return total


def summa_time_model(n: int, nproc: int, config: MachineConfig) -> float:
    """Modeled wall time of one n x n SUMMA multiply on ``nproc`` processes.

    Per-process compute is ``2 n^3 / p`` flops at the sustained DGEMM
    rate; communication is the standard SUMMA volume -- over all stages
    each process receives one full block-row of A and block-column of B,
    ``2 n^2 / sqrt(p)`` elements in ``2 sqrt(p)`` panel broadcasts --
    priced with the machine's alpha-beta cost.
    """
    if n < 1:
        raise ValueError(f"matrix dimension must be >= 1, got {n}")
    if nproc < 1:
        raise ValueError(f"nproc must be >= 1, got {nproc}")
    t = 2.0 * n**3 / nproc * DGEMM_SECONDS_PER_FLOP
    if nproc > 1:
        sp = math.sqrt(nproc)
        nbytes = 2.0 * n * n * config.element_size / sp
        t += config.transfer_time(nbytes, ncalls=2 * math.ceil(sp))
    return t
