"""Distributed linear algebra on the simulated runtime (Sec IV-E).

SUMMA matrix multiplication and canonical purification on the same 2-D
blocked :class:`~repro.runtime.ga.GlobalArray` layout the Fock build
uses, plus the whole-HF-iteration time model (Table IX) including the
dense-diagonalization alternative purification replaces.
"""

from repro.dist.hf_iteration import (
    HFIterationBreakdown,
    diagonalization_time_model,
    hf_iteration_breakdown,
)
from repro.dist.purification_dist import (
    DistributedPurificationResult,
    purification_time_model,
    purify_distributed,
)
from repro.dist.summa import (
    distributed_trace,
    summa_multiply,
    summa_time_model,
)

__all__ = [
    "DistributedPurificationResult",
    "HFIterationBreakdown",
    "diagonalization_time_model",
    "distributed_trace",
    "hf_iteration_breakdown",
    "purification_time_model",
    "purify_distributed",
    "summa_multiply",
    "summa_time_model",
]
