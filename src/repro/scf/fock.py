"""Sequential reference Fock construction.

This is the single-process "ground truth" every distributed builder in
:mod:`repro.fock` is validated against: it enumerates *canonical* shell
quartets (8-fold-unique, Cauchy-Schwarz screened), scatters each computed
block to all of its permutation images, and assembles

``F = H^core + 2J - K``          (Eq 3 of the paper).

The scatter helper :func:`orbit_images` is shared with the distributed
builders so numeric equality is a test of *task coverage and data
movement*, not of contraction formulas.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.integrals.class_batch import (
    EIGHT_PERMUTATIONS,
    iter_canonical_quartets,
    jk_from_plan,
)
from repro.integrals.engine import ERIEngine
from repro.obs.profile import PHASE_ERI, PHASE_JK, get_profiler
from repro.util.validation import check_symmetric

__all__ = [
    "EIGHT_PERMUTATIONS",
    "orbit_images",
    "canonical_shell_quartets",
    "scatter_quartet",
    "build_jk",
    "fock_matrix",
    "hf_electronic_energy",
]


def orbit_images(
    quartet: tuple[int, int, int, int], block: np.ndarray
) -> Iterator[tuple[tuple[int, int, int, int], np.ndarray]]:
    """Distinct shell-tuple images of a quartet with matching block transposes.

    Yields each *distinct* (a, b, c, d) shell tuple in the permutational
    orbit of ``quartet``, paired with the correspondingly transposed
    integral block.  Deduplication by shell tuple is what makes
    coincident-index quartets (e.g. (MM|PQ)) contribute exactly once.
    """
    seen: set[tuple[int, int, int, int]] = set()
    for perm in EIGHT_PERMUTATIONS:
        target = (
            quartet[perm[0]],
            quartet[perm[1]],
            quartet[perm[2]],
            quartet[perm[3]],
        )
        if target in seen:
            continue
        seen.add(target)
        yield target, np.transpose(block, perm)


def canonical_shell_quartets(
    sigma: np.ndarray, tau: float
) -> Iterator[tuple[int, int, int, int]]:
    """Canonical (M>=N, pair(MN) >= pair(PQ)) screened shell quartets.

    ``sigma`` is the shell-pair Schwarz matrix; a quartet survives iff
    ``sigma[M,N] * sigma[P,Q] > tau``.  (The implementation lives in
    :func:`repro.integrals.class_batch.iter_canonical_quartets`, shared
    with the class planner; this alias keeps the historical API.)
    """
    return iter_canonical_quartets(sigma, tau)


def scatter_quartet(
    j: np.ndarray,
    k: np.ndarray,
    density: np.ndarray,
    basis: BasisSet,
    quartet: tuple[int, int, int, int],
    block: np.ndarray,
) -> None:
    """Accumulate one computed quartet into J and K (full-matrix buffers).

    For every distinct image (a,b|c,d) of the quartet::

        J[a,b] += sum_cd (ab|cd) D[c,d]
        K[a,c] += sum_bd (ab|cd) D[b,d]
    """
    slices = basis.shell_slices
    for (a, b, c, d), blk in orbit_images(quartet, block):
        sa, sb, sc, sd = slices[a], slices[b], slices[c], slices[d]
        j[sa, sb] += np.einsum("abcd,cd->ab", blk, density[sc, sd])
        k[sa, sc] += np.einsum("abcd,bd->ac", blk, density[sb, sd])


def build_jk(
    engine: ERIEngine,
    density: np.ndarray,
    tau: float = 1e-11,
    threads: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Coulomb and exchange matrices over the screened canonical quartets.

    Engines that support it take the cross-quartet *class-batched* path
    (:mod:`repro.integrals.class_batch`): one vectorized kernel sweep and
    one batched density contraction per angular-momentum class, optionally
    threaded.  Everything else -- and any engine carrying seeded ``scf``
    fault injection, whose corruption stream is defined by per-quartet
    call order -- walks the original per-quartet loop, which produces
    identical J/K up to floating-point summation order.

    Parameters
    ----------
    engine:
        ERI engine (provides quartets and the Schwarz matrix).
    density:
        Symmetric density matrix D, shape (nbf, nbf).
    tau:
        Cauchy-Schwarz drop tolerance (the paper uses 1e-10).
    threads:
        Worker threads for the class-batched contraction (``None`` reads
        ``REPRO_JK_THREADS``, default 1; ignored on the per-quartet path).
    """
    basis = engine.basis
    check_symmetric(density, "density", tol=1e-8)
    if (
        getattr(engine, "supports_class_batched", False)
        and getattr(engine, "scf_faults", None) is None
    ):
        return jk_from_plan(
            engine, density, engine.class_plan(tau), tau=tau, threads=threads
        )
    n = basis.nbf
    j = np.zeros((n, n))
    k = np.zeros((n, n))
    sigma = engine.schwarz()
    # spans are hoisted out of the loop: this is the repo's hottest path
    # and the probes are gated at <= 5% overhead when profiling is on
    prof = get_profiler()
    eri_span = prof.phase(PHASE_ERI)
    jk_span = prof.phase(PHASE_JK)
    for quartet in canonical_shell_quartets(sigma, tau):
        with eri_span:
            block = engine.quartet(*quartet)
        with jk_span:
            scatter_quartet(j, k, density, basis, quartet, block)
    store = getattr(engine, "integral_store", None)
    if store is not None and store.filling and store.pending_blocks:
        store.finalize(tau)
    return j, k


def fock_matrix(
    engine: ERIEngine,
    hcore: np.ndarray,
    density: np.ndarray,
    tau: float = 1e-11,
    threads: int | None = None,
) -> np.ndarray:
    """Closed-shell Fock matrix F = H^core + 2J - K (Eq 3)."""
    j, k = build_jk(engine, density, tau, threads=threads)
    return hcore + 2.0 * j - k


def hf_electronic_energy(
    hcore: np.ndarray, fock: np.ndarray, density: np.ndarray
) -> float:
    """Closed-shell electronic energy  E = sum_ij D_ij (H_ij + F_ij)."""
    return float(np.sum(density * (hcore + fock)))
