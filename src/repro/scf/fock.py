"""Sequential reference Fock construction.

This is the single-process "ground truth" every distributed builder in
:mod:`repro.fock` is validated against: it enumerates *canonical* shell
quartets (8-fold-unique, Cauchy-Schwarz screened), scatters each computed
block to all of its permutation images, and assembles

``F = H^core + 2J - K``          (Eq 3 of the paper).

The scatter helper :func:`orbit_images` is shared with the distributed
builders so numeric equality is a test of *task coverage and data
movement*, not of contraction formulas.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.integrals.engine import ERIEngine
from repro.obs.profile import PHASE_ERI, PHASE_JK, get_profiler
from repro.util.validation import check_symmetric

#: The 8 axis permutations of an (ab|cd) block, as (shell-index permutation).
EIGHT_PERMUTATIONS: tuple[tuple[int, int, int, int], ...] = (
    (0, 1, 2, 3),
    (1, 0, 2, 3),
    (0, 1, 3, 2),
    (1, 0, 3, 2),
    (2, 3, 0, 1),
    (3, 2, 0, 1),
    (2, 3, 1, 0),
    (3, 2, 1, 0),
)


def orbit_images(
    quartet: tuple[int, int, int, int], block: np.ndarray
) -> Iterator[tuple[tuple[int, int, int, int], np.ndarray]]:
    """Distinct shell-tuple images of a quartet with matching block transposes.

    Yields each *distinct* (a, b, c, d) shell tuple in the permutational
    orbit of ``quartet``, paired with the correspondingly transposed
    integral block.  Deduplication by shell tuple is what makes
    coincident-index quartets (e.g. (MM|PQ)) contribute exactly once.
    """
    seen: set[tuple[int, int, int, int]] = set()
    for perm in EIGHT_PERMUTATIONS:
        target = (
            quartet[perm[0]],
            quartet[perm[1]],
            quartet[perm[2]],
            quartet[perm[3]],
        )
        if target in seen:
            continue
        seen.add(target)
        yield target, np.transpose(block, perm)


def canonical_shell_quartets(
    sigma: np.ndarray, tau: float
) -> Iterator[tuple[int, int, int, int]]:
    """Canonical (M>=N, pair(MN) >= pair(PQ)) screened shell quartets.

    ``sigma`` is the shell-pair Schwarz matrix; a quartet survives iff
    ``sigma[M,N] * sigma[P,Q] > tau``.
    """
    ns = sigma.shape[0]
    for m in range(ns):
        for n in range(m + 1):
            smn = sigma[m, n]
            if smn <= 0.0:
                continue
            for p in range(m + 1):
                qmax = n if p == m else p
                for q in range(qmax + 1):
                    if smn * sigma[p, q] > tau:
                        yield (m, n, p, q)


def scatter_quartet(
    j: np.ndarray,
    k: np.ndarray,
    density: np.ndarray,
    basis: BasisSet,
    quartet: tuple[int, int, int, int],
    block: np.ndarray,
) -> None:
    """Accumulate one computed quartet into J and K (full-matrix buffers).

    For every distinct image (a,b|c,d) of the quartet::

        J[a,b] += sum_cd (ab|cd) D[c,d]
        K[a,c] += sum_bd (ab|cd) D[b,d]
    """
    slices = basis.shell_slices
    for (a, b, c, d), blk in orbit_images(quartet, block):
        sa, sb, sc, sd = slices[a], slices[b], slices[c], slices[d]
        j[sa, sb] += np.einsum("abcd,cd->ab", blk, density[sc, sd])
        k[sa, sc] += np.einsum("abcd,bd->ac", blk, density[sb, sd])


def build_jk(
    engine: ERIEngine,
    density: np.ndarray,
    tau: float = 1e-11,
) -> tuple[np.ndarray, np.ndarray]:
    """Coulomb and exchange matrices by canonical quartet enumeration.

    Parameters
    ----------
    engine:
        ERI engine (provides quartets and the Schwarz matrix).
    density:
        Symmetric density matrix D, shape (nbf, nbf).
    tau:
        Cauchy-Schwarz drop tolerance (the paper uses 1e-10).
    """
    basis = engine.basis
    check_symmetric(density, "density", tol=1e-8)
    n = basis.nbf
    j = np.zeros((n, n))
    k = np.zeros((n, n))
    sigma = engine.schwarz()
    # spans are hoisted out of the loop: this is the repo's hottest path
    # and the probes are gated at <= 5% overhead when profiling is on
    prof = get_profiler()
    eri_span = prof.phase(PHASE_ERI)
    jk_span = prof.phase(PHASE_JK)
    for quartet in canonical_shell_quartets(sigma, tau):
        with eri_span:
            block = engine.quartet(*quartet)
        with jk_span:
            scatter_quartet(j, k, density, basis, quartet, block)
    return j, k


def fock_matrix(
    engine: ERIEngine,
    hcore: np.ndarray,
    density: np.ndarray,
    tau: float = 1e-11,
) -> np.ndarray:
    """Closed-shell Fock matrix F = H^core + 2J - K (Eq 3)."""
    j, k = build_jk(engine, density, tau)
    return hcore + 2.0 * j - k


def hf_electronic_energy(
    hcore: np.ndarray, fock: np.ndarray, density: np.ndarray
) -> float:
    """Closed-shell electronic energy  E = sum_ij D_ij (H_ij + F_ij)."""
    return float(np.sum(density * (hcore + fock)))
