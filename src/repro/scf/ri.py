"""Density-fitted (RI) Coulomb builds.

Resolution-of-the-identity: expand the density in an auxiliary basis
``{P}`` and contract 3-center instead of 4-center integrals::

    c_P   = sum_Q [V^{-1}]_PQ (Q|rs) D_rs,   V_PQ = (P|Q)
    J_mn ~= sum_P (mn|P) c_P

The paper's conclusion anticipates much faster integral technology
(GPUs) shifting the balance toward communication; RI is the classic
software route to the same end -- :func:`repro.model.perfmodel` can be
fed an RI-effective t_int to study that regime (see
``benchmarks/test_bench_model_crossover.py``).

Auxiliary bases here are even-tempered expansions generated per element
from the orbital basis exponents -- adequate for the mHa-level fitting
accuracy the tests assert, and entirely self-contained.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.chem.basis.shells import Shell
from repro.integrals.eri_3center import eri_2center_block, eri_3center_block
from repro.util.validation import check_symmetric


def even_tempered_auxiliary(
    basis: BasisSet, beta: float = 2.2, nper: int = 8, lmax: int = 1
) -> BasisSet:
    """Generate an even-tempered auxiliary basis for an orbital basis.

    Per atom: uncontracted shells with exponents
    ``alpha_min * beta^k`` spanning [2*alpha_min, 2*alpha_max] of the
    atom's orbital exponents (densities are products of two orbitals, so
    the auxiliary range doubles the orbital range), for l = 0..lmax.
    """
    if beta <= 1.0:
        raise ValueError("even-tempered ratio beta must exceed 1")
    shells: list[Shell] = []
    mol = basis.molecule
    per_atom: dict[int, tuple[float, float]] = {}
    for sh in basis.shells:
        lo, hi = per_atom.get(sh.atom_index, (np.inf, 0.0))
        per_atom[sh.atom_index] = (
            min(lo, float(sh.exps.min())),
            max(hi, float(sh.exps.max())),
        )
    for iat, atom in enumerate(mol.atoms):
        lo, hi = per_atom[iat]
        amin, amax = 2.0 * lo, 2.0 * hi
        n = max(
            nper,
            int(np.ceil(np.log(amax / amin) / np.log(beta))) + 1,
        )
        exps = amin * beta ** np.arange(n)
        for l in range(lmax + 1):
            for a in exps:
                if l > 0 and a > 100.0:
                    continue  # tight high-l fitting functions are useless
                shells.append(
                    Shell(
                        l=l,
                        exps=np.array([a]),
                        coefs=np.array([1.0]),
                        center=np.array(atom.position),
                        atom_index=iat,
                    )
                )
    return BasisSet(molecule=mol, shells=shells, name=f"{basis.name}-etb")


@dataclass
class RIJBuilder:
    """Precomputed density-fitting machinery for a basis/auxiliary pair."""

    basis: BasisSet
    aux: BasisSet
    #: (nbf, nbf, naux) three-center tensor
    b3: np.ndarray
    #: Cholesky-style solve against the (P|Q) metric
    metric: np.ndarray

    @classmethod
    def build(cls, basis: BasisSet, aux: BasisSet | None = None) -> "RIJBuilder":
        if aux is None:
            aux = even_tempered_auxiliary(basis)
        n, na = basis.nbf, aux.nbf
        b3 = np.empty((n, n, na))
        for i in range(basis.nshells):
            si = basis.shell_slice(i)
            for j in range(i + 1):
                sj = basis.shell_slice(j)
                for p in range(aux.nshells):
                    sp = aux.shell_slice(p)
                    blk = eri_3center_block(
                        basis.shells[i], basis.shells[j], aux.shells[p]
                    )
                    b3[si, sj, sp] = blk
                    if i != j:
                        b3[sj, si, sp] = blk.transpose(1, 0, 2)
        v = np.empty((na, na))
        for p in range(aux.nshells):
            sp = aux.shell_slice(p)
            for q in range(p + 1):
                sq = aux.shell_slice(q)
                blk = eri_2center_block(aux.shells[p], aux.shells[q])
                v[sp, sq] = blk
                if p != q:
                    v[sq, sp] = blk.T
        return cls(basis=basis, aux=aux, b3=b3, metric=v)

    def coulomb(self, density: np.ndarray) -> np.ndarray:
        """Fitted Coulomb matrix ``J[D]``."""
        check_symmetric(density, "density", tol=1e-8)
        gamma = np.einsum("mnP,mn->P", self.b3, density, optimize=True)
        # solve V c = gamma with a pseudo-inverse fallback for
        # near-singular even-tempered metrics
        try:
            coef = np.linalg.solve(self.metric, gamma)
        except np.linalg.LinAlgError:
            coef = np.linalg.lstsq(self.metric, gamma, rcond=1e-12)[0]
        return np.einsum("mnP,P->mn", self.b3, coef, optimize=True)

    def fitting_error(self, density: np.ndarray, j_exact: np.ndarray) -> float:
        """max |J_RI - J_exact| for diagnostics."""
        return float(np.max(np.abs(self.coulomb(density) - j_exact)))
