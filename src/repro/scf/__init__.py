"""Sequential self-consistent-field stack: reference Fock build, RHF, DIIS,
purification, and the convergence guard."""

from repro.scf.checkpoint import (
    Checkpoint,
    CheckpointCorruptionWarning,
    load_checkpoint,
    load_latest_intact,
    save_checkpoint,
)
from repro.scf.diis import DIIS
from repro.scf.guard import (
    DEFAULT_LADDER,
    STATES,
    ConvergenceClassifier,
    GuardConfig,
    GuardError,
    GuardEvent,
    Rung,
    SCFGuard,
)
from repro.scf.fock import (
    build_jk,
    canonical_shell_quartets,
    fock_matrix,
    hf_electronic_energy,
    orbit_images,
    scatter_quartet,
)
from repro.scf.guess import core_guess, gwh_guess, zero_guess
from repro.scf.hf import RHF, SCFResult
from repro.scf.incremental import IncrementalFockBuilder
from repro.scf.mp2 import MP2Result, ao_to_mo, mp2_energy
from repro.scf.properties import (
    DipoleMoment,
    OrbitalSummary,
    dipole_moment,
    mulliken_charges,
    mulliken_populations,
    orbital_summary,
)
from repro.scf.orthogonalization import (
    LinearDependenceWarning,
    OrthoInfo,
    density_from_coefficients,
    density_from_fock,
    orthogonalizer,
    orthogonalizer_info,
)
from repro.scf.ri import RIJBuilder, even_tempered_auxiliary
from repro.scf.uhf import UHF, UHFResult
from repro.scf.purification import (
    PurificationResult,
    canonical_step,
    initial_density,
    mcweeny_refine,
    mcweeny_step,
    purify,
)

__all__ = [
    "Checkpoint",
    "CheckpointCorruptionWarning",
    "load_checkpoint",
    "load_latest_intact",
    "save_checkpoint",
    "DEFAULT_LADDER",
    "STATES",
    "ConvergenceClassifier",
    "GuardConfig",
    "GuardError",
    "GuardEvent",
    "Rung",
    "SCFGuard",
    "LinearDependenceWarning",
    "OrthoInfo",
    "orthogonalizer_info",
    "DIIS",
    "build_jk",
    "canonical_shell_quartets",
    "fock_matrix",
    "hf_electronic_energy",
    "orbit_images",
    "scatter_quartet",
    "core_guess",
    "gwh_guess",
    "zero_guess",
    "RHF",
    "SCFResult",
    "IncrementalFockBuilder",
    "MP2Result",
    "ao_to_mo",
    "mp2_energy",
    "RIJBuilder",
    "even_tempered_auxiliary",
    "UHF",
    "UHFResult",
    "DipoleMoment",
    "OrbitalSummary",
    "dipole_moment",
    "mulliken_charges",
    "mulliken_populations",
    "orbital_summary",
    "density_from_coefficients",
    "density_from_fock",
    "orthogonalizer",
    "PurificationResult",
    "canonical_step",
    "initial_density",
    "mcweeny_refine",
    "mcweeny_step",
    "purify",
]
