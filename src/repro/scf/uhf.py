"""Unrestricted Hartree-Fock for open-shell molecules.

The paper treats closed shells only (Sec II-A); UHF is the natural
extension a usable package needs for radicals and triplets.  Spin-alpha
and spin-beta orbitals get separate Fock matrices

``F_s = Hcore + J(D_a + D_b) - K(D_s)``,   s in {alpha, beta},

built from the same screened symmetry-exploiting J/K machinery as RHF
(one J/K evaluation per spin density).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.chem.molecule import Molecule
from repro.integrals.engine import ERIEngine, MDEngine
from repro.integrals.oneelec import core_hamiltonian, overlap
from repro.scf.diis import DIIS
from repro.scf.fock import build_jk
from repro.scf.guard import GuardConfig, GuardEvent, SCFGuard
from repro.scf.orthogonalization import density_from_fock, orthogonalizer


@dataclass
class UHFResult:
    energy: float
    electronic_energy: float
    nuclear_repulsion: float
    converged: bool
    iterations: int
    fock_alpha: np.ndarray
    fock_beta: np.ndarray
    density_alpha: np.ndarray
    density_beta: np.ndarray
    orbital_energies_alpha: np.ndarray | None
    orbital_energies_beta: np.ndarray | None
    energy_history: list[float] = field(default_factory=list)
    #: typed convergence-guard event trail (empty when the guard is off)
    guard_events: list[GuardEvent] = field(default_factory=list)
    #: :meth:`repro.scf.guard.SCFGuard.summary` (None when the guard is off)
    guard_summary: dict | None = None

    @property
    def spin_density(self) -> np.ndarray:
        return self.density_alpha - self.density_beta

    def s_squared(self, s: np.ndarray, n_alpha: int, n_beta: int) -> float:
        """<S^2> expectation (exact value: Sz(Sz+1) for pure states)."""
        sz = 0.5 * (n_alpha - n_beta)
        overlap_ab = s @ self.density_beta @ s @ self.density_alpha
        return sz * (sz + 1.0) + n_beta - float(np.trace(overlap_ab))


@dataclass
class UHF:
    """Unrestricted Hartree-Fock driver.

    ``multiplicity`` is 2S+1; the alpha/beta electron split follows from
    it and the total electron count.
    """

    molecule: Molecule
    basis_name: str = "sto-3g"
    multiplicity: int | None = None
    engine: ERIEngine | None = None
    tau: float = 1e-11
    use_diis: bool = True
    max_iter: int = 200
    e_tol: float = 1e-9
    d_tol: float = 1e-7
    #: symmetry-breaking mix of the beta HOMO/LUMO at the guess (radians);
    #: nonzero values let UHF escape spin-restricted saddle points
    guess_mix: float = 0.0
    #: convergence watchdog (:mod:`repro.scf.guard`); ``True`` = defaults
    guard: GuardConfig | bool | None = None

    def __post_init__(self) -> None:
        nel = self.molecule.nelectrons
        if self.multiplicity is None:
            self.multiplicity = 1 if nel % 2 == 0 else 2
        nunpaired = self.multiplicity - 1
        if nunpaired < 0 or (nel - nunpaired) % 2 != 0 or nunpaired > nel:
            raise ValueError(
                f"multiplicity {self.multiplicity} impossible for {nel} electrons"
            )
        self.n_alpha = (nel + nunpaired) // 2
        self.n_beta = (nel - nunpaired) // 2
        self.basis = (
            self.engine.basis
            if self.engine is not None
            else BasisSet.build(self.molecule, self.basis_name)
        )
        if self.engine is None:
            self.engine = MDEngine(self.basis)
        if self.n_alpha > self.basis.nbf:
            raise ValueError("more alpha electrons than basis functions")
        if self.guard is True:
            self.guard = GuardConfig()
        elif self.guard is False:
            self.guard = None

    def run(self) -> UHFResult:
        guard: SCFGuard | None = None
        if self.guard is not None:
            guard = SCFGuard(
                self.guard, e_tol=self.e_tol, d_tol=self.d_tol,
                molecule=self.molecule.name or self.molecule.formula,
            )
            self.engine.finite_check = self.guard.eri_sentinel
        s = overlap(self.basis)
        h = core_hamiltonian(self.basis)
        x = orthogonalizer(s)
        enuc = self.molecule.nuclear_repulsion()

        d_a, _e, c0 = density_from_fock(h, x, max(self.n_alpha, 1))
        if self.n_beta > 0:
            d_b, _eb, _cb = density_from_fock(h, x, self.n_beta)
        else:
            d_b = np.zeros_like(d_a)
        if self.guess_mix != 0.0 and self.n_beta > 0 and c0.shape[1] > self.n_beta:
            c = c0.copy()
            homo, lumo = self.n_beta - 1, self.n_beta
            t = self.guess_mix
            mixed = np.cos(t) * c[:, homo] + np.sin(t) * c[:, lumo]
            c[:, homo] = mixed
            d_b = c[:, : self.n_beta] @ c[:, : self.n_beta].T

        diis_a = DIIS() if self.use_diis else None
        diis_b = DIIS() if self.use_diis else None
        history: list[float] = []
        e_old = np.inf
        converged = False
        eps_a = eps_b = None
        f_a = f_b = h
        it = 0
        for it in range(1, self.max_iter + 1):
            d_total = d_a + d_b
            j_tot, _ = build_jk(self.engine, d_total, self.tau)
            _, k_a = build_jk(self.engine, d_a, self.tau)
            f_a = h + j_tot - k_a
            if self.n_beta > 0:
                _, k_b = build_jk(self.engine, d_b, self.tau)
                f_b = h + j_tot - k_b
            else:
                f_b = h + j_tot
            if guard is not None:
                bad = not guard.check_matrix("fock_alpha", f_a, it)
                bad = not guard.check_matrix("fock_beta", f_b, it) or bad
                if bad:
                    guard.on_nonfinite(it, "fock")
                    if guard.nonfinite_exhausted():
                        raise guard.fail(it, "Fock matrix is non-finite")
                    if guard.consume_diis_reset() and diis_a is not None:
                        diis_a.reset()
                        diis_b.reset()
                    thr = guard.consume_canonical_orth()
                    if thr is not None:
                        x = orthogonalizer(s, threshold=thr, canonical=True)
                    if (
                        guard.consume_reference_eri()
                        and self.engine.supports_reference_path
                    ):
                        self.engine.force_reference_path()
                    # rebuild both spins on the degraded configuration
                    j_tot, _ = build_jk(self.engine, d_total, self.tau)
                    _, k_a = build_jk(self.engine, d_a, self.tau)
                    f_a = h + j_tot - k_a
                    if self.n_beta > 0:
                        _, k_b = build_jk(self.engine, d_b, self.tau)
                        f_b = h + j_tot - k_b
                    else:
                        f_b = h + j_tot
                    if not (
                        np.isfinite(f_a).all() and np.isfinite(f_b).all()
                    ):
                        raise guard.fail(
                            it, "Fock matrix is non-finite after rebuild"
                        )
            e_elec = 0.5 * float(
                np.sum(d_total * h) + np.sum(d_a * f_a) + np.sum(d_b * f_b)
            )
            history.append(e_elec + enuc)

            f_a_eff, f_b_eff = f_a, f_b
            if diis_a is not None:
                if guard is not None and guard.consume_diis_reset():
                    diis_a.reset()
                    diis_b.reset()
                err_a = DIIS.error_vector(f_a, d_a, s, x)
                diis_a.push(f_a, err_a)
                f_a_eff = diis_a.extrapolate()
                if self.n_beta > 0:
                    err_b = DIIS.error_vector(f_b, d_b, s, x)
                    diis_b.push(f_b, err_b)
                    f_b_eff = diis_b.extrapolate()

            shift = guard.level_shift if guard is not None else 0.0
            if shift:
                d_a_new, eps_a, _ca = density_from_fock(
                    f_a_eff, x, self.n_alpha,
                    level_shift=shift, overlap=s, density=d_a,
                )
            else:
                d_a_new, eps_a, _ca = density_from_fock(f_a_eff, x, self.n_alpha)
            if self.n_beta > 0:
                if shift:
                    d_b_new, eps_b, _cb = density_from_fock(
                        f_b_eff, x, self.n_beta,
                        level_shift=shift, overlap=s, density=d_b,
                    )
                else:
                    d_b_new, eps_b, _cb = density_from_fock(
                        f_b_eff, x, self.n_beta
                    )
            else:
                d_b_new = np.zeros_like(d_a_new)
            if guard is not None:
                d_a_new = guard.damp(d_a_new, d_a)
                d_b_new = guard.damp(d_b_new, d_b)
            change = max(
                float(np.max(np.abs(d_a_new - d_a))),
                float(np.max(np.abs(d_b_new - d_b))),
            )
            e_change = abs(history[-1] - e_old)
            e_old = history[-1]
            d_a, d_b = d_a_new, d_b_new
            if guard is not None:
                guard.observe(it, history[-1], change)
                thr = guard.consume_canonical_orth()
                if thr is not None:
                    x = orthogonalizer(s, threshold=thr, canonical=True)
                if (
                    guard.consume_reference_eri()
                    and self.engine.supports_reference_path
                ):
                    self.engine.force_reference_path()
            if change < self.d_tol and e_change < self.e_tol:
                converged = True
                break

        return UHFResult(
            energy=history[-1],
            electronic_energy=history[-1] - enuc,
            nuclear_repulsion=enuc,
            converged=converged,
            iterations=it,
            fock_alpha=f_a,
            fock_beta=f_b,
            density_alpha=d_a,
            density_beta=d_b,
            orbital_energies_alpha=eps_a,
            orbital_energies_beta=eps_b,
            energy_history=history,
            guard_events=list(guard.events) if guard is not None else [],
            guard_summary=guard.summary() if guard is not None else None,
        )
