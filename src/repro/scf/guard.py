"""SCF convergence guard: watchdog, staged remediation, graceful degradation.

PR 4 made the *distributed* layer fault tolerant; this module does the
same for the *numerical* layer.  Production SCF codes treat convergence
failure as a first-class recoverable fault: an iteration is never just
"another loop trip", it is classified, and a bad classification triggers
a staged response instead of silently burning ``max_iter`` or returning
NaN energies.

Three pieces:

* :class:`ConvergenceClassifier` -- labels each iteration from the
  energy / density-change history plus NaN/Inf sentinels as one of
  ``healthy`` / ``stagnating`` / ``oscillating`` / ``diverging`` /
  ``non_finite``;
* the **remediation ladder** -- a declarative sequence of
  :class:`Rung` steps the guard escalates through on bad
  classifications: density damping -> level shifting -> DIIS reset ->
  canonical orthogonalization with a tightened linear-dependence
  threshold -> fallback from the batched ERI kernel to the reference
  path.  Remediation is never free and never silent: every activation
  is a typed :class:`GuardEvent`, an obs metric
  (``repro_scf_guard_*``), and a tracer instant;
* :class:`SCFGuard` -- the per-run state machine the SCF drivers
  (:class:`~repro.scf.hf.RHF`, :class:`~repro.scf.uhf.UHF`) consult
  once per iteration.  Healthy runs are untouched bit for bit: the
  guard only observes until a bad classification appears, and relaxes
  (decays damping / level shift) after a healthy streak so terminal
  convergence is to the true fixed point.

The guard state round-trips through the PR-4 checkpoint format
(:meth:`SCFGuard.state_dict` / :meth:`SCFGuard.load_state`), so a
restarted run resumes with the same remediation -- including the sticky
rungs (canonical orthogonalization, reference ERI path) that must be
re-applied to the rebuilt ``X`` and engine.

See ``docs/ROBUSTNESS.md`` ("Numerical robustness") for the classifier
rules, the ladder, and the metric names.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.obs import get_metrics, get_tracer
from repro.util.validation import check_positive, require

# -- classifier states -------------------------------------------------------

HEALTHY = "healthy"
STAGNATING = "stagnating"
OSCILLATING = "oscillating"
DIVERGING = "diverging"
NON_FINITE = "non_finite"

#: every state the classifier can emit, worst last
STATES = (HEALTHY, STAGNATING, OSCILLATING, DIVERGING, NON_FINITE)


class GuardError(RuntimeError):
    """SCF aborted by the guard after remediation was exhausted.

    Carries the full typed event trail so the failure is actionable:
    ``exc.events[-1]`` says what the last classification and remediation
    attempt were.
    """

    def __init__(self, message: str, events: list["GuardEvent"]):
        super().__init__(message)
        self.events = events


@dataclass(frozen=True)
class GuardEvent:
    """One guard decision: a classification, remediation, or rescue."""

    iteration: int
    classification: str
    #: ``observe`` (classification only), a ladder action (``damp``,
    #: ``level_shift``, ``diis_reset``, ``canonical_orth``,
    #: ``reference_eri``), ``discard_iterate``, ``relax``, or ``abort``
    action: str
    detail: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "iteration": self.iteration,
            "classification": self.classification,
            "action": self.action,
            "detail": self.detail,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "GuardEvent":
        return cls(
            iteration=int(doc["iteration"]),
            classification=str(doc["classification"]),
            action=str(doc["action"]),
            detail=dict(doc.get("detail", {})),
        )

    def describe(self) -> str:
        extra = ""
        if self.detail:
            extra = " " + " ".join(
                f"{k}={v:.3g}" if isinstance(v, float) else f"{k}={v}"
                for k, v in sorted(self.detail.items())
            )
        return (
            f"it {self.iteration}: {self.classification} -> {self.action}{extra}"
        )


# -- the remediation ladder --------------------------------------------------


@dataclass(frozen=True)
class Rung:
    """One declarative remediation step.

    ``action`` names what the driver must do; ``params`` parameterize it
    (damping factor, level shift in hartree, tightened eigenvalue
    threshold).  Rungs are cumulative: escalating to ``level_shift``
    keeps the damping set by the rung below it.
    """

    action: str
    params: dict = field(default_factory=dict)

    _ACTIONS = ("damp", "level_shift", "diis_reset", "canonical_orth", "reference_eri")

    def __post_init__(self) -> None:
        require(
            self.action in self._ACTIONS,
            f"unknown remediation action {self.action!r} (choose from {self._ACTIONS})",
        )


#: the default ladder, exactly the staged order of docs/ROBUSTNESS.md:
#: mild damping, stronger damping, level shift, DIIS reset, canonical
#: orthogonalization with a tightened threshold, reference ERI path
DEFAULT_LADDER: tuple[Rung, ...] = (
    Rung("damp", {"factor": 0.3}),
    Rung("damp", {"factor": 0.6}),
    Rung("level_shift", {"shift": 0.25}),
    Rung("level_shift", {"shift": 1.0}),
    Rung("diis_reset", {}),
    Rung("canonical_orth", {"threshold": 1e-6}),
    Rung("reference_eri", {}),
)


@dataclass(frozen=True)
class GuardConfig:
    """Tunables of the watchdog and ladder (all validated on build).

    Parameters
    ----------
    window:
        History length (iterations) the classifier looks back over.
    min_history:
        Iterations before anything but ``non_finite`` can be flagged.
    patience:
        Consecutive bad classifications before escalating one rung.
    healthy_window:
        Consecutive healthy iterations before the guard relaxes (halves
        damping; level shift and sticky rungs are kept -- they do not
        move the SCF fixed point).
    max_nonfinite:
        Non-finite events tolerated before the run is aborted with a
        :class:`GuardError` (carrying the event trail).
    divergence_rise:
        Energy rise (hartree) over the window that flags ``diverging``.
    oscillation_tol:
        Energy-difference magnitude below which sign flips are noise.
    stagnation_factor:
        The window counts as flat (``stagnating``) when its smallest
        density change exceeds this fraction of its largest.
    eri_sentinel:
        Arm the per-quartet NaN/Inf sentinel on the ERI engine
        (non-finite batched blocks are recomputed on the reference
        kernel; see ``ERIEngine.finite_check``).
    ladder:
        The remediation rungs, mildest first.
    """

    window: int = 6
    min_history: int = 3
    patience: int = 2
    healthy_window: int = 4
    max_nonfinite: int = 3
    divergence_rise: float = 0.5
    oscillation_tol: float = 1e-7
    stagnation_factor: float = 0.95
    eri_sentinel: bool = True
    ladder: tuple[Rung, ...] = DEFAULT_LADDER

    def __post_init__(self) -> None:
        for name in ("window", "min_history", "patience", "healthy_window",
                     "max_nonfinite"):
            check_positive(getattr(self, name), name)
        check_positive(self.divergence_rise, "divergence_rise")
        check_positive(self.oscillation_tol, "oscillation_tol")
        require(
            0.0 < self.stagnation_factor < 1.0,
            f"stagnation_factor must be in (0, 1), got {self.stagnation_factor!r}",
        )
        require(len(self.ladder) > 0, "ladder must have at least one rung")
        require(
            self.window >= 3,
            f"window must be >= 3 to detect oscillation, got {self.window}",
        )


# -- classification ----------------------------------------------------------


class ConvergenceClassifier:
    """Stateless iteration classifier over (energy, density-change) history."""

    def __init__(self, config: GuardConfig, e_tol: float, d_tol: float):
        self.config = config
        self.e_tol = e_tol
        self.d_tol = d_tol

    def classify(
        self, energies: Sequence[float], d_changes: Sequence[float]
    ) -> str:
        """Label the latest iteration given the trailing history."""
        c = self.config
        if not energies:
            return HEALTHY
        if not np.isfinite(energies[-1]) or (
            d_changes and not np.isfinite(d_changes[-1])
        ):
            return NON_FINITE
        if len(energies) < c.min_history:
            return HEALTHY
        e = np.asarray(energies[-c.window:], dtype=float)
        dd = np.asarray(d_changes[-c.window:], dtype=float)
        if not (np.isfinite(e).all() and np.isfinite(dd).all()):
            return NON_FINITE
        diffs = np.diff(e)
        converged_scale = dd[-1] <= self.d_tol
        # diverging: the energy is climbing, and has climbed far
        if (
            diffs.size >= 2
            and np.all(diffs[-2:] > 0)
            and float(e[-1] - e.min()) > c.divergence_rise
        ):
            return DIVERGING
        # oscillating: repeated sign flips of significant energy steps
        sig = diffs[np.abs(diffs) > max(c.oscillation_tol, 10.0 * self.e_tol)]
        if sig.size >= 3 and not converged_scale:
            flips = int(np.sum(np.sign(sig[1:]) != np.sign(sig[:-1])))
            if flips >= 2:
                return OSCILLATING
        # stagnating: a full window of density changes that refuse to drop
        if (
            dd.size >= c.window
            and not converged_scale
            and float(dd.min()) > c.stagnation_factor * float(dd.max())
        ):
            return STAGNATING
        return HEALTHY


# -- the guard state machine -------------------------------------------------


class SCFGuard:
    """Per-run convergence watchdog + remediation ladder executor.

    The SCF driver calls, per iteration:

    1. :meth:`check_matrix` on F (and optionally D) -- NaN/Inf sentinel;
    2. :meth:`observe` with the iteration's energy and density change --
       classifies and possibly escalates;
    3. :meth:`damp` when forming the next density, and reads
       :attr:`level_shift` when diagonalizing;
    4. the one-shot action consumers
       (:meth:`consume_diis_reset` / :meth:`consume_canonical_orth` /
       :meth:`consume_reference_eri`) to execute escalations.

    Attributes
    ----------
    level:
        Index of the highest rung activated so far (-1 = none).
    damping:
        Current density-mixing fraction of the *old* density (0 = off).
    level_shift:
        Current virtual-orbital shift (hartree, 0 = off).
    events:
        The typed :class:`GuardEvent` trail, chronological.
    """

    def __init__(
        self,
        config: GuardConfig | None = None,
        e_tol: float = 1e-9,
        d_tol: float = 1e-7,
        molecule: str = "",
    ):
        self.config = config if config is not None else GuardConfig()
        self.classifier = ConvergenceClassifier(self.config, e_tol, d_tol)
        self.molecule = molecule
        self.level = -1
        self.damping = 0.0
        self.level_shift = 0.0
        self.bad_streak = 0
        self.healthy_streak = 0
        self.nonfinite_count = 0
        self.events: list[GuardEvent] = []
        #: per-iteration record for reports: (it, energy, d_change, state)
        self.iterations: list[dict] = []
        self._energies: list[float] = []
        self._d_changes: list[float] = []
        self._pending_diis_reset = False
        self._pending_canonical: float | None = None
        self._pending_reference = False
        #: sticky flags (survive checkpoint/restart)
        self.canonical_threshold: float | None = None
        self.reference_eri = False

    # -- event plumbing ------------------------------------------------------

    def _emit(
        self, iteration: int, classification: str, action: str, **detail: Any
    ) -> GuardEvent:
        ev = GuardEvent(iteration, classification, action, dict(detail))
        self.events.append(ev)
        metrics = get_metrics()
        if action == "observe":
            metrics.counter(
                "repro_scf_guard_classifications_total",
                "guard iteration classifications", labelnames=("state",),
            ).inc(state=classification)
        else:
            metrics.counter(
                "repro_scf_guard_remediations_total",
                "guard remediation actions", labelnames=("action",),
            ).inc(action=action)
        metrics.gauge(
            "repro_scf_guard_level", "active remediation-ladder rung (-1 = none)"
        ).set(self.level)
        metrics.gauge(
            "repro_scf_guard_damping", "active density-damping fraction"
        ).set(self.damping)
        metrics.gauge(
            "repro_scf_guard_level_shift", "active level shift (hartree)"
        ).set(self.level_shift)
        get_tracer().instant(
            "guard_event", cat="scf", molecule=self.molecule,
            iteration=iteration, classification=classification, action=action,
        )
        return ev

    # -- sentinels -----------------------------------------------------------

    def check_matrix(self, name: str, a: np.ndarray, iteration: int) -> bool:
        """NaN/Inf sentinel on an SCF matrix; records the event when bad."""
        if np.isfinite(a).all():
            return True
        self.nonfinite_count += 1
        get_metrics().counter(
            "repro_scf_guard_nonfinite_total",
            "non-finite sentinel trips", labelnames=("where",),
        ).inc(where=name)
        self._emit(iteration, NON_FINITE, "observe", where=name)
        return False

    def fail(self, iteration: int, reason: str) -> GuardError:
        """Abort the run: record the terminal event, build the error."""
        self._emit(iteration, NON_FINITE, "abort", reason=reason)
        return GuardError(
            f"SCF aborted at iteration {iteration}: {reason} "
            f"(after {self.nonfinite_count} non-finite events and "
            f"{len(self.events)} guard events; see GuardError.events)",
            self.events,
        )

    def nonfinite_exhausted(self) -> bool:
        return self.nonfinite_count > self.config.max_nonfinite

    def on_nonfinite(self, iteration: int, where: str) -> None:
        """Escalate straight to graceful degradation after a sentinel trip.

        A non-finite matrix means arithmetic is broken, not merely slow:
        the guard jumps past the convergence rungs to the fallback rungs
        (DIIS reset onward, ending at the reference ERI path).
        """
        ladder = self.config.ladder
        jump_to = next(
            (i for i, r in enumerate(ladder) if r.action == "diis_reset"),
            len(ladder) - 1,
        )
        if self.level < jump_to:
            for lvl in range(self.level + 1, jump_to + 1):
                self._activate(lvl, iteration, NON_FINITE)
        else:
            self._escalate(iteration, NON_FINITE)
        self.bad_streak = 0
        self.healthy_streak = 0

    # -- observation + escalation -------------------------------------------

    def observe(self, iteration: int, energy: float, d_change: float) -> str:
        """Classify this iteration; escalate / relax as the ladder dictates."""
        self._energies.append(float(energy))
        self._d_changes.append(float(d_change))
        state = self.classifier.classify(self._energies, self._d_changes)
        self.iterations.append(
            {
                "iteration": iteration,
                "energy": float(energy),
                "d_change": float(d_change),
                "state": state,
                "level": self.level,
                "damping": self.damping,
                "level_shift": self.level_shift,
            }
        )
        if state == NON_FINITE:
            self.nonfinite_count += 1
            self._emit(iteration, state, "observe")
            self.on_nonfinite(iteration, "iterate")
            return state
        if state == HEALTHY:
            self.bad_streak = 0
            self.healthy_streak += 1
            if self.healthy_streak >= self.config.healthy_window:
                self._relax(iteration)
            return state
        self.healthy_streak = 0
        self.bad_streak += 1
        self._emit(iteration, state, "observe", d_change=float(d_change))
        if self.bad_streak >= self.config.patience:
            self._escalate(iteration, state)
            self.bad_streak = 0
        return state

    def _escalate(self, iteration: int, classification: str) -> None:
        if self.level + 1 >= len(self.config.ladder):
            return  # ladder exhausted; keep the strongest remediation active
        self._activate(self.level + 1, iteration, classification)

    def _activate(self, level: int, iteration: int, classification: str) -> None:
        rung = self.config.ladder[level]
        self.level = level
        if rung.action == "damp":
            self.damping = float(rung.params.get("factor", 0.5))
        elif rung.action == "level_shift":
            self.level_shift = float(rung.params.get("shift", 0.25))
        elif rung.action == "diis_reset":
            self._pending_diis_reset = True
        elif rung.action == "canonical_orth":
            self._pending_canonical = float(rung.params.get("threshold", 1e-6))
            self.canonical_threshold = self._pending_canonical
        elif rung.action == "reference_eri":
            self._pending_reference = True
            self.reference_eri = True
        self._emit(
            iteration, classification, rung.action, level=level, **rung.params
        )

    def _relax(self, iteration: int) -> None:
        """Decay damping after a healthy streak (fixed point is unshifted)."""
        if self.damping <= 0.0:
            self.healthy_streak = 0
            return
        new = 0.0 if self.damping < 0.05 else self.damping * 0.5
        self._emit(
            iteration, HEALTHY, "relax",
            damping=new, previous=self.damping,
        )
        self.damping = new
        self.healthy_streak = 0

    # -- remediation application --------------------------------------------

    def damp(self, d_new: np.ndarray, d_old: np.ndarray) -> np.ndarray:
        """Mix the previous density in (no-op while damping is 0)."""
        if self.damping <= 0.0:
            return d_new
        a = self.damping
        return (1.0 - a) * d_new + a * d_old

    def discard_iterate(self, iteration: int, where: str) -> None:
        """Record that a non-finite iterate was dropped (D kept as-is)."""
        self._emit(iteration, NON_FINITE, "discard_iterate", where=where)

    def consume_diis_reset(self) -> bool:
        """True exactly once after a ``diis_reset`` rung activates."""
        pending, self._pending_diis_reset = self._pending_diis_reset, False
        return pending

    def consume_canonical_orth(self) -> float | None:
        """Tightened threshold exactly once after ``canonical_orth`` fires."""
        pending, self._pending_canonical = self._pending_canonical, None
        return pending

    def consume_reference_eri(self) -> bool:
        """True exactly once after the ``reference_eri`` rung activates."""
        pending, self._pending_reference = self._pending_reference, False
        return pending

    # -- persistence (PR-4 checkpoint format) --------------------------------

    def state_dict(self) -> dict:
        """JSON-serializable remediation state for checkpointing."""
        return {
            "level": self.level,
            "damping": self.damping,
            "level_shift": self.level_shift,
            "bad_streak": self.bad_streak,
            "healthy_streak": self.healthy_streak,
            "nonfinite_count": self.nonfinite_count,
            "canonical_threshold": self.canonical_threshold,
            "reference_eri": self.reference_eri,
            "events": [ev.to_json() for ev in self.events],
            "energies": self._energies,
            "d_changes": self._d_changes,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (restart path).

        The driver must still re-apply the sticky rungs to the rebuilt
        objects: :attr:`canonical_threshold` to the orthogonalizer and
        :attr:`reference_eri` to the engine.
        """
        self.level = int(state.get("level", -1))
        self.damping = float(state.get("damping", 0.0))
        self.level_shift = float(state.get("level_shift", 0.0))
        self.bad_streak = int(state.get("bad_streak", 0))
        self.healthy_streak = int(state.get("healthy_streak", 0))
        self.nonfinite_count = int(state.get("nonfinite_count", 0))
        ct = state.get("canonical_threshold")
        self.canonical_threshold = float(ct) if ct is not None else None
        self.reference_eri = bool(state.get("reference_eri", False))
        self.events = [GuardEvent.from_json(d) for d in state.get("events", [])]
        self._energies = [float(e) for e in state.get("energies", [])]
        self._d_changes = [float(d) for d in state.get("d_changes", [])]

    def state_json(self) -> str:
        return json.dumps(self.state_dict())

    @classmethod
    def from_state_json(
        cls,
        text: str,
        config: GuardConfig | None = None,
        e_tol: float = 1e-9,
        d_tol: float = 1e-7,
        molecule: str = "",
    ) -> "SCFGuard":
        guard = cls(config, e_tol=e_tol, d_tol=d_tol, molecule=molecule)
        guard.load_state(json.loads(text))
        return guard

    # -- reporting -----------------------------------------------------------

    def summary(self) -> dict:
        """Compact run summary for results, reports, and the torture CLI."""
        by_state: dict[str, int] = {}
        by_action: dict[str, int] = {}
        for ev in self.events:
            if ev.action == "observe":
                by_state[ev.classification] = by_state.get(ev.classification, 0) + 1
            else:
                by_action[ev.action] = by_action.get(ev.action, 0) + 1
        last_state = self.iterations[-1]["state"] if self.iterations else HEALTHY
        return {
            "events": len(self.events),
            "level": self.level,
            "damping": self.damping,
            "level_shift": self.level_shift,
            "nonfinite": self.nonfinite_count,
            "canonical_threshold": self.canonical_threshold,
            "reference_eri": self.reference_eri,
            "by_state": by_state,
            "by_action": by_action,
            "final_state": last_state,
        }

    def trail(self) -> list[str]:
        """Human-readable event trail (one line per event)."""
        return [ev.describe() for ev in self.events]
