"""DIIS (Pulay) convergence acceleration for the SCF iteration.

Not described in the paper (its focus is a single Fock build), but any
production SCF driver needs it: plain fixed-point SCF oscillates for many
molecules.  Uses the commutator error ``e = FDS - SDF`` expressed in the
orthogonal basis.
"""

from __future__ import annotations

from collections import deque

import numpy as np


class DIIS:
    """Direct Inversion in the Iterative Subspace.

    Keeps a sliding window of (Fock, error) pairs and extrapolates the
    next Fock matrix as the error-minimizing linear combination.
    """

    def __init__(self, max_vectors: int = 8):
        if max_vectors < 2:
            raise ValueError("DIIS needs at least 2 stored vectors")
        self.max_vectors = max_vectors
        self._focks: deque[np.ndarray] = deque(maxlen=max_vectors)
        self._errors: deque[np.ndarray] = deque(maxlen=max_vectors)

    @staticmethod
    def error_vector(
        fock: np.ndarray, density: np.ndarray, s: np.ndarray, x: np.ndarray
    ) -> np.ndarray:
        """Orthogonalized SCF error ``X^T (FDS - SDF) X``."""
        fds = fock @ density @ s
        return x.T @ (fds - fds.T) @ x

    @property
    def size(self) -> int:
        return len(self._focks)

    def push(self, fock: np.ndarray, error: np.ndarray) -> None:
        self._focks.append(fock.copy())
        self._errors.append(error.copy())

    def reset(self) -> None:
        """Drop the stored window (convergence-guard ``diis_reset`` rung).

        After an oscillating stretch, the window is full of Fock
        matrices from both lobes of the oscillation and extrapolation
        keeps reproducing it; starting the subspace fresh from the next
        iterate breaks the cycle.
        """
        self._focks.clear()
        self._errors.clear()

    def state_arrays(self) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """The stored (Fock, error) windows, oldest first (checkpointing)."""
        return list(self._focks), list(self._errors)

    def load_state(
        self, focks: list[np.ndarray], errors: list[np.ndarray]
    ) -> None:
        """Restore a window saved by :meth:`state_arrays`.

        Restoring then extrapolating reproduces the pre-checkpoint
        trajectory bitwise -- the restart guarantee of
        ``docs/ROBUSTNESS.md``.
        """
        if len(focks) != len(errors):
            raise ValueError(
                f"{len(focks)} Fock matrices vs {len(errors)} error vectors"
            )
        self._focks.clear()
        self._errors.clear()
        for f, e in zip(focks, errors):
            self.push(f, e)

    def extrapolate(self) -> np.ndarray:
        """Return the DIIS-extrapolated Fock matrix.

        Falls back to the latest Fock matrix if the DIIS system is
        singular (e.g. duplicated error vectors).
        """
        m = self.size
        if m == 0:
            raise RuntimeError("DIIS has no stored vectors")
        if m == 1:
            return self._focks[0].copy()
        b = np.empty((m + 1, m + 1))
        b[-1, :] = -1.0
        b[:, -1] = -1.0
        b[-1, -1] = 0.0
        for i in range(m):
            for jj in range(i, m):
                v = float(np.sum(self._errors[i] * self._errors[jj]))
                b[i, jj] = b[jj, i] = v
        rhs = np.zeros(m + 1)
        rhs[-1] = -1.0
        try:
            coef = np.linalg.solve(b, rhs)[:m]
        except np.linalg.LinAlgError:
            return self._focks[-1].copy()
        out = np.zeros_like(self._focks[0])
        for c, f in zip(coef, self._focks):
            out += c * f
        return out
