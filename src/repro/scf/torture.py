"""SCF torture suite: pathological cases the convergence guard must survive.

Each :class:`TortureCase` is a geometry / driver configuration known to
break vanilla SCF -- period-2 density oscillators (stretched water
without DIIS), slow near-dissociation convergence that exhausts a
realistic iteration budget, a near-singular overlap matrix, and seeded
NaN/Inf fault injection (:class:`~repro.runtime.faults.SCFFaultPlan`).

The pass criterion is the PR's acceptance gate: under the guard, every
case either **converges** or **terminates with a classified, actionable
GuardEvent trail** -- a finite final energy and a typed event history,
never a NaN energy and never silent ``max_iter`` exhaustion.

Run via ``repro torture`` (``--quick`` for the CI subset) or
:func:`run_torture` directly; ``tests/test_guard.py`` pins the rescue
cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.chem.molecule import Molecule
from repro.runtime.faults import SCFFaultPlan
from repro.scf.guard import GuardConfig, GuardError
from repro.scf.hf import RHF


def stretched_water(factor: float) -> Molecule:
    """Water with both OH bonds scaled by ``factor`` (Angstrom geometry).

    Around 2x the equilibrium bond length, plain fixed-point SCF turns
    into a perfect period-2 density oscillator; with DIIS, convergence
    survives longer but slows enough to exhaust realistic iteration
    budgets near 3x.
    """
    base = np.array(
        [[0.0, 0.0, 0.1173], [0.0, 0.7572, -0.4692], [0.0, -0.7572, -0.4692]]
    )
    o = base[0]
    coords = base.copy()
    for i in (1, 2):
        coords[i] = o + factor * (base[i] - o)
    return Molecule.from_arrays(
        ["O", "H", "H"], coords, name=f"water_x{factor:g}"
    )


def near_singular_h4() -> Molecule:
    """An H4 chain with one near-coincident pair (1e-4 Angstrom).

    The overlap matrix is numerically near-singular (condition well
    above 1e8), which must trip the orthogonalizer's automatic switch to
    canonical orthogonalization instead of amplifying noise through
    ``S^{-1/2}``.
    """
    coords = np.array(
        [[0.0, 0.0, 0.0], [1e-4, 0.0, 0.0], [0.0, 0.0, 0.9], [0.0, 0.0, 1.8]]
    )
    return Molecule.from_arrays(["H", "H", "H", "H"], coords, name="h4_near_singular")


@dataclass(frozen=True)
class TortureCase:
    """One pathological SCF configuration plus its iteration budget."""

    name: str
    description: str
    make_molecule: Callable[[], Molecule]
    basis_name: str = "sto-3g"
    use_diis: bool = True
    max_iter: int = 100
    faults: SCFFaultPlan | None = None
    #: included in ``--quick`` (CI) runs
    quick: bool = True


TORTURE_CASES: tuple[TortureCase, ...] = (
    TortureCase(
        name="oscillator_x2.0",
        description="stretched water (2.0x OH), no DIIS: period-2 oscillator",
        make_molecule=lambda: stretched_water(2.0),
        use_diis=False,
        max_iter=300,
    ),
    TortureCase(
        name="oscillator_x2.5",
        description="stretched water (2.5x OH), no DIIS: period-2 oscillator",
        make_molecule=lambda: stretched_water(2.5),
        use_diis=False,
        max_iter=200,
        quick=False,
    ),
    TortureCase(
        name="stretched_diis_x3.0",
        description="near-dissociated water (3.0x OH), DIIS stalls past budget",
        make_molecule=lambda: stretched_water(3.0),
        use_diis=True,
        max_iter=100,
    ),
    TortureCase(
        name="near_singular_overlap",
        description="H4 with a 1e-4 A pair: overlap condition > 1e8",
        make_molecule=near_singular_h4,
        use_diis=True,
        max_iter=100,
    ),
    TortureCase(
        name="nan_quartets",
        description="seeded NaN/Inf corruption of batched ERI blocks",
        make_molecule=lambda: stretched_water(1.0),
        use_diis=True,
        max_iter=60,
        faults=SCFFaultPlan(
            seed=11,
            quartet_nan_rate=0.02,
            quartet_inf_rate=0.02,
            max_corruptions=64,
        ),
    ),
    TortureCase(
        name="nan_fock",
        description="NaN injected into the Fock matrix at iterations 2 and 4",
        make_molecule=lambda: stretched_water(1.0),
        use_diis=True,
        max_iter=60,
        faults=SCFFaultPlan(seed=5, fock_nan_iterations=(2, 4)),
    ),
)


@dataclass
class TortureOutcome:
    """What one torture case did under (and without) the guard."""

    case: TortureCase
    converged: bool
    energy: float
    iterations: int
    aborted: bool
    abort_reason: str
    guard_summary: dict | None
    trail: list[str] = field(default_factory=list)
    #: the same case without the guard (None when not run)
    vanilla_converged: bool | None = None

    @property
    def classified(self) -> bool:
        """A non-empty typed event trail explains the outcome."""
        return bool(self.trail) or self.aborted

    @property
    def passed(self) -> bool:
        """The acceptance gate: converge, or fail *with an explanation*."""
        if self.converged:
            return bool(np.isfinite(self.energy))
        return self.classified and bool(
            self.aborted or np.isfinite(self.energy)
        )

    @property
    def status(self) -> str:
        if self.converged:
            return "converged"
        if self.aborted:
            return "aborted(classified)"
        return "classified" if self.classified else "UNEXPLAINED"


def run_case(
    case: TortureCase,
    guard: GuardConfig | bool = True,
    vanilla: bool = True,
) -> TortureOutcome:
    """Run one case under the guard (and optionally without, for contrast)."""
    vanilla_converged = None
    if vanilla:
        res_v = RHF(
            case.make_molecule(),
            basis_name=case.basis_name,
            use_diis=case.use_diis,
            max_iter=case.max_iter,
        ).run()
        vanilla_converged = bool(
            res_v.converged and np.isfinite(res_v.energy)
        )
    rhf = RHF(
        case.make_molecule(),
        basis_name=case.basis_name,
        use_diis=case.use_diis,
        max_iter=case.max_iter,
        guard=guard,
        faults=case.faults,
    )
    try:
        res = rhf.run()
    except GuardError as exc:
        return TortureOutcome(
            case=case,
            converged=False,
            energy=float("nan"),
            iterations=0,
            aborted=True,
            abort_reason=str(exc),
            guard_summary=None,
            trail=[ev.describe() for ev in exc.events],
            vanilla_converged=vanilla_converged,
        )
    return TortureOutcome(
        case=case,
        converged=bool(res.converged),
        energy=float(res.energy),
        iterations=res.iterations,
        aborted=False,
        abort_reason="",
        guard_summary=res.guard_summary,
        trail=[ev.describe() for ev in res.guard_events],
        vanilla_converged=vanilla_converged,
    )


def run_torture(
    quick: bool = False,
    guard: GuardConfig | bool = True,
    vanilla: bool = True,
    cases: tuple[TortureCase, ...] | None = None,
) -> list[TortureOutcome]:
    """Run the suite (the ``--quick`` subset in CI) and return outcomes."""
    selected = cases if cases is not None else TORTURE_CASES
    if quick:
        selected = tuple(c for c in selected if c.quick)
    return [run_case(c, guard=guard, vanilla=vanilla) for c in selected]


def torture_table(outcomes: list[TortureOutcome]) -> list[str]:
    """Fixed-width summary table, one line per case."""
    lines = [
        f"{'case':<24} {'vanilla':<8} {'guarded':<20} {'iters':>5} "
        f"{'energy (Ha)':>14}  events",
        "-" * 86,
    ]
    for o in outcomes:
        vanilla = (
            "-" if o.vanilla_converged is None
            else ("ok" if o.vanilla_converged else "FAIL")
        )
        energy = f"{o.energy:.6f}" if np.isfinite(o.energy) else "nan"
        nevents = len(o.trail)
        lines.append(
            f"{o.case.name:<24} {vanilla:<8} {o.status:<20} "
            f"{o.iterations:>5} {energy:>14}  {nevents}"
        )
    npassed = sum(1 for o in outcomes if o.passed)
    lines.append("-" * 86)
    lines.append(f"{npassed}/{len(outcomes)} cases passed the guard gate")
    return lines


def torture_json(outcomes: list[TortureOutcome]) -> list[dict]:
    """JSON-friendly outcome records (the ``repro torture --json`` payload)."""
    return [
        {
            "case": o.case.name,
            "description": o.case.description,
            "vanilla_converged": o.vanilla_converged,
            "converged": o.converged,
            "status": o.status,
            "passed": o.passed,
            "energy": o.energy if np.isfinite(o.energy) else None,
            "iterations": o.iterations,
            "aborted": o.aborted,
            "abort_reason": o.abort_reason,
            "guard": o.guard_summary,
            "trail": o.trail,
        }
        for o in outcomes
    ]
