"""Restricted Hartree-Fock driver (Algorithm 1 of the paper).

Iterates Fock construction and density formation to self-consistency.
The density step can use either matrix diagonalization (line 8 of
Algorithm 1) or canonical purification (Sec IV-E), and any
:class:`~repro.integrals.engine.ERIEngine` supplies the two-electron
integrals, so the same driver runs on real or synthetic integrals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.chem.molecule import Molecule
from repro.integrals.engine import ERIEngine, MDEngine
from repro.integrals.oneelec import core_hamiltonian, overlap
from repro.obs import get_metrics, get_tracer
from repro.obs.manifest import get_ledger
from repro.obs.profile import (
    PHASE_DIAG,
    PHASE_DIIS,
    PHASE_FOCK,
    PHASE_PURIFY,
    get_profiler,
)
from repro.runtime.faults import SCFFaultPlan
from repro.runtime.sdc import IntegrityError, IntegrityMonitor, SDCFaultPlan
from repro.scf.checkpoint import load_latest_intact, save_checkpoint
from repro.scf.diis import DIIS
from repro.scf.fock import fock_matrix, hf_electronic_energy
from repro.scf.guard import GuardConfig, GuardEvent, SCFGuard
from repro.scf.guess import core_guess
from repro.scf.orthogonalization import density_from_fock, orthogonalizer
from repro.scf.purification import purify


@dataclass
class SCFResult:
    """Converged (or final) state of an RHF run."""

    energy: float
    electronic_energy: float
    nuclear_repulsion: float
    converged: bool
    iterations: int
    fock: np.ndarray
    density: np.ndarray
    coefficients: np.ndarray | None
    orbital_energies: np.ndarray | None
    energy_history: list[float] = field(default_factory=list)
    #: typed convergence-guard event trail (empty when the guard is off)
    guard_events: list[GuardEvent] = field(default_factory=list)
    #: :meth:`repro.scf.guard.SCFGuard.summary` (None when the guard is off)
    guard_summary: dict | None = None
    #: :meth:`repro.runtime.sdc.IntegrityMonitor.summary` (None when the
    #: ``integrity`` knob is off)
    integrity_summary: dict | None = None

    @property
    def homo_lumo_gap(self) -> float | None:
        if self.orbital_energies is None:
            return None
        nocc = int(round(np.trace(self.density @ np.eye(self.density.shape[0]))))
        eps = self.orbital_energies
        if nocc <= 0 or nocc >= eps.size:
            return None
        return float(eps[nocc] - eps[nocc - 1])


@dataclass
class RHF:
    """Restricted closed-shell Hartree-Fock.

    Parameters
    ----------
    molecule:
        Closed-shell molecule (even electron count).
    basis_name:
        Basis registry key (default ``sto-3g``).
    engine:
        Optional pre-built ERI engine; defaults to
        :class:`~repro.integrals.engine.MDEngine`.
    tau:
        Cauchy-Schwarz drop tolerance used in every Fock build.
    use_diis:
        Pulay convergence acceleration (recommended).
    density_method:
        ``"diagonalize"`` (Algorithm 1, line 8) or ``"purify"``
        (Sec IV-E's diagonalization-free path).
    incremental:
        Build the two-electron part from density differences
        (:class:`~repro.scf.incremental.IncrementalFockBuilder`): late
        iterations screen away almost all quartets.
    cache_mb:
        When set, enable the engine's bounded LRU canonical-quartet
        cache with this memory budget (MiB): ERIs are density
        independent, so every direct-SCF iteration after the first
        serves its quartets from the cache instead of recomputing them.
    integral_store:
        When set, a directory for the memory-mapped stored-integral
        layer (:class:`~repro.integrals.store.ERIStore`): conventional
        SCF.  The first Fock build computes and records the screened
        non-zero quartets; every later iteration reads them back with
        zero ERI recomputation.  A store left by a previous run of the
        *same* basis is reused directly; any mismatch invalidates it
        (with a warning) and it is refilled.
    jk_threads:
        Worker threads for the class-batched J/K contraction (default
        ``None`` = the ``REPRO_JK_THREADS`` environment variable, else
        serial).
    checkpoint_dir:
        When set, snapshot the restartable state (density, energy
        history, DIIS window) to ``checkpoint_dir/scf_ckpt_NNNN.npz``
        after every iteration (see :mod:`repro.scf.checkpoint`).
    restart:
        Resume from the latest *intact* snapshot in ``checkpoint_dir``
        (if one exists; corrupted snapshots are skipped with a
        :class:`~repro.scf.checkpoint.CheckpointCorruptionWarning`); the
        resumed run reproduces the uninterrupted trajectory bitwise.
        Overrides ``guess``.  With a guard, the persisted remediation
        state (damping, level shift, sticky fallbacks) is restored too.
    guard:
        Convergence watchdog + staged remediation
        (:mod:`repro.scf.guard`).  ``True`` enables the default
        :class:`~repro.scf.guard.GuardConfig`; pass a config to tune the
        classifier and ladder; ``None``/``False`` (default) leaves the
        iteration untouched bit for bit.
    faults:
        Optional :class:`~repro.runtime.faults.SCFFaultPlan` injecting
        seeded NaN/Inf corruption into the batched ERI path and SCF
        matrices (the ``repro chaos --family scf`` harness and the
        torture suite); usually combined with ``guard``.
    integrity:
        End-to-end data-integrity layer (default off, zero hot-path
        cost).  Arms CRC verification of every integral-store read
        (mismatched blocks are recomputed), payload-digest + NaN/shape
        validation of restart checkpoints, and cheap ABFT-style
        algebraic detectors after every Fock build and density step
        (symmetry residuals, the Tr(D S) = n_occ invariant).  Detected
        corruption climbs a recovery ladder -- recompute the offending
        object, roll back the density to the last verified checkpoint
        -- and raises :class:`~repro.runtime.sdc.IntegrityError` only
        when no rung repairs it (the service layer quarantines such
        jobs).  The full detect/recover accounting lands on
        ``SCFResult.integrity_summary`` and the ``repro_integrity_*``
        metrics.  See ``docs/ROBUSTNESS.md`` ("Silent data corruption").
    sdc_faults:
        Optional :class:`~repro.runtime.sdc.SDCFaultPlan` injecting
        seeded *silent* corruption (bit flips in checkpoint files
        post-write and exponent flips in F/D between iterations) for
        the ``repro chaos --family sdc`` harness; combine with
        ``integrity=True`` or the corruption goes undetected -- which
        is exactly the hazard the gate demonstrates.
    on_iteration:
        Optional callback ``(iteration, energy)`` invoked after every
        completed iteration, *after* its checkpoint (if any) is durably
        on disk.  The service worker uses it as the lease heartbeat
        (:mod:`repro.service.worker`): a hung iteration stops
        heartbeating and the job's lease expires.  Exceptions raised by
        the callback abort the run and propagate to the caller.
    """

    molecule: Molecule
    basis_name: str = "sto-3g"
    engine: ERIEngine | None = None
    tau: float = 1e-11
    use_diis: bool = True
    density_method: str = "diagonalize"
    incremental: bool = False
    cache_mb: float | None = None
    integral_store: str | None = None
    jk_threads: int | None = None
    max_iter: int = 100
    e_tol: float = 1e-9
    d_tol: float = 1e-7
    checkpoint_dir: str | None = None
    restart: bool = False
    guard: GuardConfig | bool | None = None
    faults: SCFFaultPlan | None = None
    integrity: bool = False
    sdc_faults: SDCFaultPlan | None = None
    on_iteration: Callable[[int, float], None] | None = None

    def __post_init__(self) -> None:
        if self.molecule.nelectrons % 2 != 0:
            raise ValueError(
                f"RHF requires an even electron count, got {self.molecule.nelectrons}"
            )
        if self.density_method not in ("diagonalize", "purify"):
            raise ValueError(f"unknown density_method {self.density_method!r}")
        if self.restart and self.checkpoint_dir is None:
            raise ValueError("restart=True requires checkpoint_dir")
        if self.guard is True:
            self.guard = GuardConfig()
        elif self.guard is False:
            self.guard = None
        self.basis = (
            self.engine.basis
            if self.engine is not None
            else BasisSet.build(self.molecule, self.basis_name)
        )
        if self.engine is None:
            self.engine = MDEngine(self.basis)
        if self.cache_mb is not None and self.engine.quartet_cache is None:
            self.engine.enable_quartet_cache(self.cache_mb)
        if self.integral_store is not None and self.engine.integral_store is None:
            self.engine.attach_store(self.integral_store)
        store = self.engine.integral_store
        self._store_warm_at_start = bool(store is not None and store.ready)
        self.nocc = self.molecule.nelectrons // 2
        if self.nocc > self.basis.nbf:
            raise ValueError(
                f"{self.nocc} occupied orbitals exceed {self.basis.nbf} basis functions"
            )

    def run(self, guess: np.ndarray | None = None) -> SCFResult:
        """Run the SCF iteration to convergence (Algorithm 1).

        Each iteration is a nested wall-clock span (``fock_build`` /
        ``diis`` / ``diagonalize`` or ``purify``) on the active tracer,
        and the convergence trajectory (energy, energy/density change,
        iteration count) is recorded as gauges labelled by molecule.
        """
        tracer = get_tracer()
        metrics = get_metrics()
        prof = get_profiler()
        ledger = get_ledger()
        mol_label = self.molecule.name or self.molecule.formula
        g_energy = metrics.gauge(
            "repro_scf_energy_hartree", "current total SCF energy",
            labelnames=("molecule",),
        )
        g_de = metrics.gauge(
            "repro_scf_energy_change", "last |dE| between iterations",
            labelnames=("molecule",),
        )
        g_dd = metrics.gauge(
            "repro_scf_density_change", "last max|dD| between iterations",
            labelnames=("molecule",),
        )
        c_iters = metrics.counter(
            "repro_scf_iterations_total", "SCF iterations executed",
            labelnames=("molecule",),
        )
        guard: SCFGuard | None = None
        if self.guard is not None:
            guard = SCFGuard(
                self.guard, e_tol=self.e_tol, d_tol=self.d_tol,
                molecule=mol_label,
            )
            self.engine.finite_check = self.guard.eri_sentinel
        fault_state = None
        if self.faults is not None and self.faults.has_faults:
            fault_state = self.faults.activate()
        self.engine.scf_faults = fault_state
        sdc_state = None
        if self.sdc_faults is not None and self.sdc_faults.has_faults:
            sdc_state = self.sdc_faults.activate()
        self.sdc_state = sdc_state
        if self.integrity and self.engine.integral_store is not None:
            self.engine.integral_store.verify_reads = True

        with tracer.span("scf_setup", cat="scf", molecule=mol_label):
            s = overlap(self.basis)
            h = core_hamiltonian(self.basis)
            x = orthogonalizer(s)
            enuc = self.molecule.nuclear_repulsion()
            d = guess if guess is not None else core_guess(h, x, self.nocc)

        monitor = None
        if self.integrity:
            monitor = IntegrityMonitor(overlap=s, nocc=self.nocc)
        self.integrity_monitor = monitor

        diis = DIIS() if self.use_diis else None
        inc_builder = None
        inc_cls = None
        if self.incremental:
            from repro.scf.incremental import IncrementalFockBuilder

            inc_cls = IncrementalFockBuilder
            inc_builder = inc_cls(self.engine, tau=self.tau)
        history: list[float] = []
        e_old = np.inf
        f = h
        coeffs: np.ndarray | None = None
        eps: np.ndarray | None = None
        converged = False
        start_it = 1
        if self.restart:
            ck = load_latest_intact(self.checkpoint_dir)
            if ck is not None:
                d = ck.density
                e_old = ck.energy
                history = list(ck.energy_history)
                if diis is not None:
                    diis.load_state(ck.diis_focks, ck.diis_errors)
                start_it = ck.iteration + 1
                if guard is not None and ck.guard is not None:
                    guard.load_state(ck.guard)
                    # re-apply the sticky rungs to the rebuilt objects
                    if guard.canonical_threshold is not None:
                        x = orthogonalizer(
                            s, threshold=guard.canonical_threshold,
                            canonical=True,
                        )
                    if guard.reference_eri and self.engine.supports_reference_path:
                        self.engine.force_reference_path()
                tracer.instant(
                    "scf_restart", cat="scf", molecule=mol_label,
                    iteration=ck.iteration,
                )

        def build_fock(density: np.ndarray) -> np.ndarray:
            if inc_builder is not None:
                return inc_builder.fock(h, density)
            return fock_matrix(
                self.engine, h, density, self.tau, threads=self.jk_threads
            )

        it = start_it - 1
        for it in range(start_it, self.max_iter + 1):
            with tracer.span(
                "scf_iteration", cat="scf", molecule=mol_label, iteration=it
            ) as sp:
                with tracer.span("fock_build", cat="scf"), \
                        prof.phase(PHASE_FOCK):
                    f = build_fock(d)
                if fault_state is not None:
                    f = fault_state.corrupt_matrix(f, it, "fock")
                if sdc_state is not None:
                    f = sdc_state.corrupt_matrix(f, it, "fock")
                if guard is not None and not guard.check_matrix("fock", f, it):
                    # arithmetic is broken, not merely slow: jump to the
                    # fallback rungs, apply them, rebuild this Fock once
                    guard.on_nonfinite(it, "fock")
                    if guard.nonfinite_exhausted():
                        raise guard.fail(it, "Fock matrix is non-finite")
                    if guard.consume_diis_reset() and diis is not None:
                        diis.reset()
                    thr = guard.consume_canonical_orth()
                    if thr is not None:
                        x = orthogonalizer(s, threshold=thr, canonical=True)
                    if (
                        guard.consume_reference_eri()
                        and self.engine.supports_reference_path
                    ):
                        self.engine.force_reference_path()
                    if inc_builder is not None:
                        # the accumulated Fock may carry the corruption
                        inc_builder = inc_cls(self.engine, tau=self.tau)
                    with tracer.span("fock_rebuild", cat="scf"):
                        f = build_fock(d)
                    if not np.isfinite(f).all():
                        raise guard.fail(
                            it, "Fock matrix is non-finite after rebuild"
                        )
                if monitor is not None and not monitor.check_fock(f, it):
                    # recovery rung 1: ERIs are density independent, so
                    # one rebuild from the same density reproduces the
                    # uncorrupted Fock bitwise
                    monitor.record_recovery("recompute")
                    with tracer.span("fock_rebuild", cat="scf"):
                        f = build_fock(d)
                    if not monitor.check_fock(f, it):
                        raise IntegrityError(
                            f"Fock matrix failed integrity checks after "
                            f"rebuild at iteration {it}"
                        )
                e_elec = hf_electronic_energy(h, f, d)
                history.append(e_elec + enuc)
                if diis is not None:
                    if guard is not None and guard.consume_diis_reset():
                        diis.reset()
                    with tracer.span("diis", cat="scf"), \
                            prof.phase(PHASE_DIIS):
                        err = DIIS.error_vector(f, d, s, x)
                        diis.push(f, err)
                        f_eff = diis.extrapolate()
                else:
                    f_eff = f
                shift = guard.level_shift if guard is not None else 0.0
                density_phase = (
                    PHASE_DIAG if self.density_method == "diagonalize"
                    else PHASE_PURIFY
                )
                def density_step():
                    with tracer.span(self.density_method, cat="scf"), \
                            prof.phase(density_phase):
                        if self.density_method == "diagonalize":
                            if shift:
                                return density_from_fock(
                                    f_eff, x, self.nocc,
                                    level_shift=shift, overlap=s, density=d,
                                )
                            return density_from_fock(f_eff, x, self.nocc)
                        f_or = x.T @ f_eff @ x
                        if shift:
                            p = x.T @ s @ d @ s @ x
                            f_or = f_or + shift * (
                                np.eye(f_or.shape[0]) - 0.5 * (p + p.T)
                            )
                        res = purify(f_or, self.nocc)
                        return x @ res.density @ x.T, eps, coeffs

                d_new, eps, coeffs = density_step()
                if fault_state is not None:
                    d_new = fault_state.corrupt_matrix(d_new, it, "density")
                if sdc_state is not None:
                    d_new = sdc_state.corrupt_matrix(d_new, it, "density")
                discarded = False
                if guard is not None and not guard.check_matrix(
                    "density", d_new, it
                ):
                    guard.on_nonfinite(it, "density")
                    if guard.nonfinite_exhausted():
                        raise guard.fail(it, "density matrix is non-finite")
                    guard.discard_iterate(it, "density")
                    d_new = d  # keep the last good density
                    discarded = True
                if monitor is not None and not monitor.check_density(
                    d_new, it
                ):
                    # recovery rung 1: redo the density step from the
                    # same effective Fock (bitwise-identical when the
                    # corruption was a one-shot memory flip)
                    monitor.record_recovery("recompute")
                    d_new, eps, coeffs = density_step()
                    if not monitor.check_density(d_new, it):
                        # rung 2: roll back to the last snapshot that
                        # still passes both digest and ABFT validation
                        ck = (
                            load_latest_intact(self.checkpoint_dir)
                            if self.checkpoint_dir is not None
                            else None
                        )
                        if ck is not None and monitor.check_density(
                            ck.density, it
                        ):
                            monitor.record_recovery("rollback")
                            d_new = ck.density
                        else:
                            raise IntegrityError(
                                f"density matrix failed integrity checks "
                                f"after recompute at iteration {it} and no "
                                f"verified checkpoint is available"
                            )
                if guard is not None:
                    d_new = guard.damp(d_new, d)
                d_change = float(np.max(np.abs(d_new - d)))
                e_change = abs(e_elec + enuc - e_old)
                e_old = e_elec + enuc
                d = d_new
                sp["energy"] = e_elec + enuc
                sp["d_change"] = d_change
                c_iters.inc(molecule=mol_label)
                g_energy.set(e_elec + enuc, molecule=mol_label)
                g_dd.set(d_change, molecule=mol_label)
                if np.isfinite(e_change):
                    g_de.set(float(e_change), molecule=mol_label)
                ledger.snapshot(
                    "scf_iteration", iteration=it,
                    energy=e_elec + enuc, d_change=d_change,
                )
                if guard is not None and not discarded:
                    guard.observe(it, e_elec + enuc, d_change)
                    thr = guard.consume_canonical_orth()
                    if thr is not None:
                        x = orthogonalizer(s, threshold=thr, canonical=True)
                    if (
                        guard.consume_reference_eri()
                        and self.engine.supports_reference_path
                    ):
                        self.engine.force_reference_path()
                        if inc_builder is not None:
                            inc_builder = inc_cls(self.engine, tau=self.tau)
                if (
                    not discarded
                    and d_change < self.d_tol
                    and e_change < self.e_tol
                ):
                    converged = True
            if self.checkpoint_dir is not None:
                ckpt_path = save_checkpoint(
                    self.checkpoint_dir, it, d, e_old, history, diis,
                    guard=guard,
                )
                if sdc_state is not None:
                    # the sdc family's bad-disk model: the snapshot may
                    # rot *after* the atomic rename said it was durable
                    sdc_state.corrupt_file(ckpt_path)
            if self.on_iteration is not None:
                # after the checkpoint is durable: a lease heartbeat here
                # never vouches for progress that could still be lost
                self.on_iteration(it, e_old)
            if converged:
                break

        # final energy with the converged density
        with tracer.span("final_fock_build", cat="scf", molecule=mol_label), \
                prof.phase(PHASE_FOCK):
            f = fock_matrix(
                self.engine, h, d, self.tau, threads=self.jk_threads
            )
        e_elec = hf_electronic_energy(h, f, d)
        eng = self.engine
        eri_store = {
            "served": int(
                eng.quartets_served_from_cache + eng.quartets_served_from_store
            ),
            "computed": int(eng.quartets_computed),
            "from_cache": int(eng.quartets_served_from_cache),
            "from_store": int(eng.quartets_served_from_store),
            "warm_start": getattr(self, "_store_warm_at_start", False),
        }
        worker_stats = getattr(eng, "last_jk_worker_stats", None) or []
        balance = None
        if len(worker_stats) > 1:
            walls = [s["eri_wall"] + s["jk_wall"] for s in worker_stats]
            mean = sum(walls) / len(walls)
            if mean > 0:
                balance = max(walls) / mean
        jk_threads = {"workers": len(worker_stats), "balance": balance}
        integrity_summary = None
        if monitor is not None:
            store = eng.integral_store
            if store is not None:
                # fold the store's CRC accounting into the run-wide
                # integrity story: every mismatched block was recomputed
                monitor.record_check("store_crc", store.crc_checks)
                monitor.record_detection("store_block", store.crc_mismatches)
                monitor.record_recovery("eri_recompute", store.crc_mismatches)
            integrity_summary = monitor.summary()
            if sdc_state is not None:
                integrity_summary["injections"] = sdc_state.summary()
            from repro.obs.metrics import export_integrity

            export_integrity(integrity_summary, registry=metrics)
        extra = (
            {} if integrity_summary is None
            else {"integrity": integrity_summary}
        )
        ledger.add_summary(
            molecule=mol_label, basis=self.basis_name,
            energy=e_elec + enuc, converged=converged, iterations=it,
            eri_store=eri_store, jk_threads=jk_threads, **extra,
        )
        metrics.gauge(
            "repro_scf_converged", "1 if the last SCF run converged",
            labelnames=("molecule",),
        ).set(int(converged), molecule=mol_label)
        return SCFResult(
            energy=e_elec + enuc,
            electronic_energy=e_elec,
            nuclear_repulsion=enuc,
            converged=converged,
            iterations=it,
            fock=f,
            density=d,
            coefficients=coeffs,
            orbital_energies=eps,
            energy_history=history,
            guard_events=list(guard.events) if guard is not None else [],
            guard_summary=guard.summary() if guard is not None else None,
            integrity_summary=integrity_summary,
        )
