"""Restricted Hartree-Fock driver (Algorithm 1 of the paper).

Iterates Fock construction and density formation to self-consistency.
The density step can use either matrix diagonalization (line 8 of
Algorithm 1) or canonical purification (Sec IV-E), and any
:class:`~repro.integrals.engine.ERIEngine` supplies the two-electron
integrals, so the same driver runs on real or synthetic integrals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.chem.molecule import Molecule
from repro.integrals.engine import ERIEngine, MDEngine
from repro.integrals.oneelec import core_hamiltonian, overlap
from repro.obs import get_metrics, get_tracer
from repro.scf.checkpoint import latest_checkpoint, load_checkpoint, save_checkpoint
from repro.scf.diis import DIIS
from repro.scf.fock import fock_matrix, hf_electronic_energy
from repro.scf.guess import core_guess
from repro.scf.orthogonalization import density_from_fock, orthogonalizer
from repro.scf.purification import purify


@dataclass
class SCFResult:
    """Converged (or final) state of an RHF run."""

    energy: float
    electronic_energy: float
    nuclear_repulsion: float
    converged: bool
    iterations: int
    fock: np.ndarray
    density: np.ndarray
    coefficients: np.ndarray | None
    orbital_energies: np.ndarray | None
    energy_history: list[float] = field(default_factory=list)

    @property
    def homo_lumo_gap(self) -> float | None:
        if self.orbital_energies is None:
            return None
        nocc = int(round(np.trace(self.density @ np.eye(self.density.shape[0]))))
        eps = self.orbital_energies
        if nocc <= 0 or nocc >= eps.size:
            return None
        return float(eps[nocc] - eps[nocc - 1])


@dataclass
class RHF:
    """Restricted closed-shell Hartree-Fock.

    Parameters
    ----------
    molecule:
        Closed-shell molecule (even electron count).
    basis_name:
        Basis registry key (default ``sto-3g``).
    engine:
        Optional pre-built ERI engine; defaults to
        :class:`~repro.integrals.engine.MDEngine`.
    tau:
        Cauchy-Schwarz drop tolerance used in every Fock build.
    use_diis:
        Pulay convergence acceleration (recommended).
    density_method:
        ``"diagonalize"`` (Algorithm 1, line 8) or ``"purify"``
        (Sec IV-E's diagonalization-free path).
    incremental:
        Build the two-electron part from density differences
        (:class:`~repro.scf.incremental.IncrementalFockBuilder`): late
        iterations screen away almost all quartets.
    cache_mb:
        When set, enable the engine's bounded LRU canonical-quartet
        cache with this memory budget (MiB): ERIs are density
        independent, so every direct-SCF iteration after the first
        serves its quartets from the cache instead of recomputing them.
    checkpoint_dir:
        When set, snapshot the restartable state (density, energy
        history, DIIS window) to ``checkpoint_dir/scf_ckpt_NNNN.npz``
        after every iteration (see :mod:`repro.scf.checkpoint`).
    restart:
        Resume from the latest snapshot in ``checkpoint_dir`` (if one
        exists); the resumed run reproduces the uninterrupted
        trajectory bitwise.  Overrides ``guess``.
    """

    molecule: Molecule
    basis_name: str = "sto-3g"
    engine: ERIEngine | None = None
    tau: float = 1e-11
    use_diis: bool = True
    density_method: str = "diagonalize"
    incremental: bool = False
    cache_mb: float | None = None
    max_iter: int = 100
    e_tol: float = 1e-9
    d_tol: float = 1e-7
    checkpoint_dir: str | None = None
    restart: bool = False

    def __post_init__(self) -> None:
        if self.molecule.nelectrons % 2 != 0:
            raise ValueError(
                f"RHF requires an even electron count, got {self.molecule.nelectrons}"
            )
        if self.density_method not in ("diagonalize", "purify"):
            raise ValueError(f"unknown density_method {self.density_method!r}")
        if self.restart and self.checkpoint_dir is None:
            raise ValueError("restart=True requires checkpoint_dir")
        self.basis = (
            self.engine.basis
            if self.engine is not None
            else BasisSet.build(self.molecule, self.basis_name)
        )
        if self.engine is None:
            self.engine = MDEngine(self.basis)
        if self.cache_mb is not None and self.engine.quartet_cache is None:
            self.engine.enable_quartet_cache(self.cache_mb)
        self.nocc = self.molecule.nelectrons // 2
        if self.nocc > self.basis.nbf:
            raise ValueError(
                f"{self.nocc} occupied orbitals exceed {self.basis.nbf} basis functions"
            )

    def run(self, guess: np.ndarray | None = None) -> SCFResult:
        """Run the SCF iteration to convergence (Algorithm 1).

        Each iteration is a nested wall-clock span (``fock_build`` /
        ``diis`` / ``diagonalize`` or ``purify``) on the active tracer,
        and the convergence trajectory (energy, energy/density change,
        iteration count) is recorded as gauges labelled by molecule.
        """
        tracer = get_tracer()
        metrics = get_metrics()
        mol_label = self.molecule.name or self.molecule.formula
        g_energy = metrics.gauge(
            "repro_scf_energy_hartree", "current total SCF energy",
            labelnames=("molecule",),
        )
        g_de = metrics.gauge(
            "repro_scf_energy_change", "last |dE| between iterations",
            labelnames=("molecule",),
        )
        g_dd = metrics.gauge(
            "repro_scf_density_change", "last max|dD| between iterations",
            labelnames=("molecule",),
        )
        c_iters = metrics.counter(
            "repro_scf_iterations_total", "SCF iterations executed",
            labelnames=("molecule",),
        )
        with tracer.span("scf_setup", cat="scf", molecule=mol_label):
            s = overlap(self.basis)
            h = core_hamiltonian(self.basis)
            x = orthogonalizer(s)
            enuc = self.molecule.nuclear_repulsion()
            d = guess if guess is not None else core_guess(h, x, self.nocc)

        diis = DIIS() if self.use_diis else None
        inc_builder = None
        if self.incremental:
            from repro.scf.incremental import IncrementalFockBuilder

            inc_builder = IncrementalFockBuilder(self.engine, tau=self.tau)
        history: list[float] = []
        e_old = np.inf
        f = h
        coeffs: np.ndarray | None = None
        eps: np.ndarray | None = None
        converged = False
        start_it = 1
        if self.restart:
            ck_path = latest_checkpoint(self.checkpoint_dir)
            if ck_path is not None:
                ck = load_checkpoint(ck_path)
                d = ck.density
                e_old = ck.energy
                history = list(ck.energy_history)
                if diis is not None:
                    diis.load_state(ck.diis_focks, ck.diis_errors)
                start_it = ck.iteration + 1
                tracer.instant(
                    "scf_restart", cat="scf", molecule=mol_label,
                    iteration=ck.iteration,
                )
        it = start_it - 1
        for it in range(start_it, self.max_iter + 1):
            with tracer.span(
                "scf_iteration", cat="scf", molecule=mol_label, iteration=it
            ) as sp:
                with tracer.span("fock_build", cat="scf"):
                    if inc_builder is not None:
                        f = inc_builder.fock(h, d)
                    else:
                        f = fock_matrix(self.engine, h, d, self.tau)
                e_elec = hf_electronic_energy(h, f, d)
                history.append(e_elec + enuc)
                if diis is not None:
                    with tracer.span("diis", cat="scf"):
                        err = DIIS.error_vector(f, d, s, x)
                        diis.push(f, err)
                        f_eff = diis.extrapolate()
                else:
                    f_eff = f
                with tracer.span(self.density_method, cat="scf"):
                    if self.density_method == "diagonalize":
                        d_new, eps, coeffs = density_from_fock(
                            f_eff, x, self.nocc
                        )
                    else:
                        res = purify(x.T @ f_eff @ x, self.nocc)
                        d_new = x @ res.density @ x.T
                d_change = float(np.max(np.abs(d_new - d)))
                e_change = abs(e_elec + enuc - e_old)
                e_old = e_elec + enuc
                d = d_new
                sp["energy"] = e_elec + enuc
                sp["d_change"] = d_change
                c_iters.inc(molecule=mol_label)
                g_energy.set(e_elec + enuc, molecule=mol_label)
                g_dd.set(d_change, molecule=mol_label)
                if np.isfinite(e_change):
                    g_de.set(float(e_change), molecule=mol_label)
                if d_change < self.d_tol and e_change < self.e_tol:
                    converged = True
            if self.checkpoint_dir is not None:
                save_checkpoint(
                    self.checkpoint_dir, it, d, e_old, history, diis
                )
            if converged:
                break

        # final energy with the converged density
        with tracer.span("final_fock_build", cat="scf", molecule=mol_label):
            f = fock_matrix(self.engine, h, d, self.tau)
        e_elec = hf_electronic_energy(h, f, d)
        metrics.gauge(
            "repro_scf_converged", "1 if the last SCF run converged",
            labelnames=("molecule",),
        ).set(int(converged), molecule=mol_label)
        return SCFResult(
            energy=e_elec + enuc,
            electronic_energy=e_elec,
            nuclear_repulsion=enuc,
            converged=converged,
            iterations=it,
            fock=f,
            density=d,
            coefficients=coeffs,
            orbital_energies=eps,
            energy_history=history,
        )
