"""SCF checkpoint/restart: persist the iteration state, resume bitwise.

An SCF run's full restartable state is small -- the current density, the
last total energy, the energy history, and the DIIS window -- so every
iteration can afford one ``.npz`` snapshot.  A run that dies (or is
killed by the chaos harness) resumes from the latest snapshot and
reproduces the uninterrupted trajectory *bitwise*: everything float64,
no re-derivation.

Format (``scf_ckpt_NNNN.npz``, one file per iteration):

* ``iteration`` -- the 1-based iteration the snapshot was taken after;
* ``density`` -- post-iteration density matrix;
* ``energy`` -- total energy of that iteration (becomes ``e_old``);
* ``energy_history`` -- total energies of iterations ``1..iteration``;
* ``diis_focks`` / ``diis_errors`` -- the DIIS window, oldest first,
  stacked on axis 0 (empty arrays when DIIS is off or empty);
* ``guard_json`` -- the convergence-guard remediation state
  (:meth:`repro.scf.guard.SCFGuard.state_dict` as JSON), so a restarted
  run resumes with the same damping / level shift / sticky fallbacks.
  Absent in pre-guard snapshots; loading those yields ``guard=None``.

* ``payload_sha256`` -- SHA-256 digest over every other entry's bytes,
  written at save time and verified on load.  Absent in pre-integrity
  snapshots; those load without digest verification.

Writes are atomic (tmp file + ``os.replace``), so a rank dying mid-write
never corrupts the latest complete snapshot.  Reads are defensive
against *silent* damage as well as loud damage: a snapshot that is
unreadable, fails its payload digest, carries NaN/Inf, or has
mismatched array shapes (a bit-flipped file can still parse!) is
skipped with a :class:`CheckpointCorruptionWarning` and the restart
falls back to the most recent *intact* iteration
(:func:`load_latest_intact`).  ``np.savez`` stores entries uncompressed
inside a ZIP container whose per-entry CRC-32 is checked by
``zipfile`` on read, so most bit flips already raise there; the digest
catches flips the container tolerates (headers, padding), and the
NaN/Inf + shape validation catches semantic damage.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import warnings
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

_CKPT_RE = re.compile(r"^scf_ckpt_(\d{4,})\.npz$")
_DIGEST_KEY = "payload_sha256"


class CheckpointCorruptionWarning(UserWarning):
    """A snapshot on disk could not be read and was skipped."""


class CheckpointIntegrityError(ValueError):
    """A snapshot parsed but failed integrity validation.

    Raised when the payload digest does not match the stored
    ``payload_sha256``, when an array carries NaN/Inf, or when shapes
    are inconsistent.  :func:`load_latest_intact` treats it like any
    other corruption: warn and fall back to an older snapshot.
    """


def payload_digest(payload: dict) -> str:
    """SHA-256 over every payload entry's bytes, in sorted key order."""
    h = hashlib.sha256()
    for key in sorted(payload):
        if key == _DIGEST_KEY:
            continue
        val = payload[key]
        h.update(key.encode())
        if np.asarray(val).dtype.kind == "U":
            h.update(str(val).encode())
        else:
            h.update(np.ascontiguousarray(val).tobytes())
    return h.hexdigest()


@dataclass
class Checkpoint:
    """One restored SCF snapshot."""

    iteration: int
    density: np.ndarray
    energy: float
    energy_history: list[float] = field(default_factory=list)
    diis_focks: list[np.ndarray] = field(default_factory=list)
    diis_errors: list[np.ndarray] = field(default_factory=list)
    #: convergence-guard remediation state (None in pre-guard snapshots)
    guard: dict | None = None


def checkpoint_path(directory: str | Path, iteration: int) -> Path:
    return Path(directory) / f"scf_ckpt_{iteration:04d}.npz"


def save_checkpoint(
    directory: str | Path,
    iteration: int,
    density: np.ndarray,
    energy: float,
    energy_history: list[float],
    diis=None,
    guard=None,
) -> Path:
    """Atomically write iteration state; returns the snapshot path.

    ``guard`` (optional) is an :class:`~repro.scf.guard.SCFGuard` whose
    remediation state is persisted alongside the numerical state.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if diis is not None:
        focks, errors = diis.state_arrays()
    else:
        focks, errors = [], []
    n = density.shape[0]
    payload = {
        "iteration": np.int64(iteration),
        "density": np.asarray(density, dtype=np.float64),
        "energy": np.float64(energy),
        "energy_history": np.asarray(energy_history, dtype=np.float64),
        "diis_focks": (
            np.stack(focks) if focks else np.zeros((0, n, n))
        ),
        "diis_errors": (
            np.stack(errors) if errors else np.zeros((0, n, n))
        ),
    }
    if guard is not None:
        payload["guard_json"] = np.str_(guard.state_json())
    payload[_DIGEST_KEY] = np.str_(payload_digest(payload))
    path = checkpoint_path(directory, iteration)
    tmp = path.with_suffix(".npz.tmp")
    with open(tmp, "wb") as fh:
        np.savez(fh, **payload)
    os.replace(tmp, path)
    return path


def load_checkpoint(path: str | Path, verify: bool = True) -> Checkpoint:
    """Load one snapshot, verifying integrity unless ``verify=False``.

    Verification re-derives the payload digest and compares it against
    the stored ``payload_sha256`` (when present -- pre-integrity
    snapshots have none), then validates the arrays themselves: all
    entries finite, ``density`` square, DIIS stacks ``(k, n, n)`` with
    ``n`` matching the density.  Failure raises
    :class:`CheckpointIntegrityError`.
    """
    with np.load(path) as z:
        arrays = {name: z[name] for name in z.files}
    if verify:
        if _DIGEST_KEY in arrays:
            stored = str(arrays[_DIGEST_KEY])
            if payload_digest(arrays) != stored:
                raise CheckpointIntegrityError(
                    f"payload digest mismatch in {path}"
                )
        _validate_arrays(arrays, path)
    guard = None
    if "guard_json" in arrays:
        guard = json.loads(str(arrays["guard_json"]))
    return Checkpoint(
        iteration=int(arrays["iteration"]),
        density=arrays["density"],
        energy=float(arrays["energy"]),
        energy_history=[float(e) for e in arrays["energy_history"]],
        diis_focks=list(arrays["diis_focks"]),
        diis_errors=list(arrays["diis_errors"]),
        guard=guard,
    )


def _validate_arrays(arrays: dict, path) -> None:
    """Semantic validation: finite values, consistent shapes."""
    density = arrays["density"]
    if density.ndim != 2 or density.shape[0] != density.shape[1]:
        raise CheckpointIntegrityError(
            f"density shape {density.shape} is not square in {path}"
        )
    n = density.shape[0]
    for name in ("density", "energy", "energy_history"):
        if not np.isfinite(arrays[name]).all():
            raise CheckpointIntegrityError(
                f"non-finite values in '{name}' of {path}"
            )
    for name in ("diis_focks", "diis_errors"):
        stack = arrays[name]
        if stack.ndim != 3 or (
            stack.shape[0] and stack.shape[1:] != (n, n)
        ):
            raise CheckpointIntegrityError(
                f"'{name}' shape {stack.shape} inconsistent with "
                f"density n={n} in {path}"
            )
        if not np.isfinite(stack).all():
            raise CheckpointIntegrityError(
                f"non-finite values in '{name}' of {path}"
            )


def latest_checkpoint(directory: str | Path) -> Path | None:
    """Highest-iteration snapshot in ``directory``, or None."""
    paths = checkpoint_paths(directory)
    return paths[0] if paths else None


def checkpoint_paths(directory: str | Path) -> list[Path]:
    """Every snapshot in ``directory``, newest (highest iteration) first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found: list[tuple[int, Path]] = []
    for entry in directory.iterdir():
        m = _CKPT_RE.match(entry.name)
        if m:
            found.append((int(m.group(1)), entry))
    return [p for _, p in sorted(found, reverse=True)]


def prune_checkpoints(directory: str | Path, keep: int = 3) -> int:
    """Delete all but the newest ``keep`` snapshots; returns the count.

    Long-running service jobs checkpoint every iteration; pruning after
    each successful run (and on worker shutdown) bounds per-job disk to
    ``keep`` snapshots while preserving the corruption-fallback margin
    of :func:`load_latest_intact` (``keep >= 2`` recommended: a torn
    newest file still leaves an intact predecessor).
    """
    if keep < 1:
        raise ValueError(f"keep must be >= 1, got {keep}")
    removed = 0
    for path in checkpoint_paths(directory)[keep:]:
        try:
            path.unlink()
            removed += 1
        except OSError:  # already gone (concurrent prune) or read-only
            pass
    return removed


def load_latest_intact(directory: str | Path) -> Checkpoint | None:
    """The most recent snapshot that loads *and* passes integrity checks.

    A snapshot that is truncated (crash mid-``os.replace`` on exotic
    filesystems, full disk), fails its payload digest or the ZIP
    container's CRC (bit rot), carries NaN/Inf, or has mismatched
    shapes must not kill -- or silently poison -- the restart: it is
    skipped with a :class:`CheckpointCorruptionWarning` and the next
    older snapshot is tried.  Returns None when no intact snapshot
    exists.
    """
    for path in checkpoint_paths(directory):
        try:
            return load_checkpoint(path, verify=True)
        except Exception as exc:  # zipfile/OS/Value/Integrity errors
            warnings.warn(
                f"skipping corrupted checkpoint {path}: "
                f"{type(exc).__name__}: {exc}",
                CheckpointCorruptionWarning,
                stacklevel=2,
            )
    return None
