"""SCF checkpoint/restart: persist the iteration state, resume bitwise.

An SCF run's full restartable state is small -- the current density, the
last total energy, the energy history, and the DIIS window -- so every
iteration can afford one ``.npz`` snapshot.  A run that dies (or is
killed by the chaos harness) resumes from the latest snapshot and
reproduces the uninterrupted trajectory *bitwise*: everything float64,
no re-derivation.

Format (``scf_ckpt_NNNN.npz``, one file per iteration):

* ``iteration`` -- the 1-based iteration the snapshot was taken after;
* ``density`` -- post-iteration density matrix;
* ``energy`` -- total energy of that iteration (becomes ``e_old``);
* ``energy_history`` -- total energies of iterations ``1..iteration``;
* ``diis_focks`` / ``diis_errors`` -- the DIIS window, oldest first,
  stacked on axis 0 (empty arrays when DIIS is off or empty).

Writes are atomic (tmp file + ``os.replace``), so a rank dying mid-write
never corrupts the latest complete snapshot.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

_CKPT_RE = re.compile(r"^scf_ckpt_(\d{4,})\.npz$")


@dataclass
class Checkpoint:
    """One restored SCF snapshot."""

    iteration: int
    density: np.ndarray
    energy: float
    energy_history: list[float] = field(default_factory=list)
    diis_focks: list[np.ndarray] = field(default_factory=list)
    diis_errors: list[np.ndarray] = field(default_factory=list)


def checkpoint_path(directory: str | Path, iteration: int) -> Path:
    return Path(directory) / f"scf_ckpt_{iteration:04d}.npz"


def save_checkpoint(
    directory: str | Path,
    iteration: int,
    density: np.ndarray,
    energy: float,
    energy_history: list[float],
    diis=None,
) -> Path:
    """Atomically write iteration state; returns the snapshot path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if diis is not None:
        focks, errors = diis.state_arrays()
    else:
        focks, errors = [], []
    n = density.shape[0]
    payload = {
        "iteration": np.int64(iteration),
        "density": np.asarray(density, dtype=np.float64),
        "energy": np.float64(energy),
        "energy_history": np.asarray(energy_history, dtype=np.float64),
        "diis_focks": (
            np.stack(focks) if focks else np.zeros((0, n, n))
        ),
        "diis_errors": (
            np.stack(errors) if errors else np.zeros((0, n, n))
        ),
    }
    path = checkpoint_path(directory, iteration)
    tmp = path.with_suffix(".npz.tmp")
    with open(tmp, "wb") as fh:
        np.savez(fh, **payload)
    os.replace(tmp, path)
    return path


def load_checkpoint(path: str | Path) -> Checkpoint:
    with np.load(path) as z:
        return Checkpoint(
            iteration=int(z["iteration"]),
            density=z["density"],
            energy=float(z["energy"]),
            energy_history=[float(e) for e in z["energy_history"]],
            diis_focks=list(z["diis_focks"]),
            diis_errors=list(z["diis_errors"]),
        )


def latest_checkpoint(directory: str | Path) -> Path | None:
    """Highest-iteration snapshot in ``directory``, or None."""
    directory = Path(directory)
    if not directory.is_dir():
        return None
    best: tuple[int, Path] | None = None
    for entry in directory.iterdir():
        m = _CKPT_RE.match(entry.name)
        if m:
            it = int(m.group(1))
            if best is None or it > best[0]:
                best = (it, entry)
    return best[1] if best is not None else None
