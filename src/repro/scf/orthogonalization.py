"""Basis orthogonalization: X = U s^{-1/2} U^T (lines 3-4 of Algorithm 1).

Symmetric (Loewdin) orthogonalization by default, with canonical
orthogonalization as a fallback when the overlap matrix is nearly
singular (linearly dependent basis sets).
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_symmetric


def orthogonalizer(
    s: np.ndarray, threshold: float = 1e-8, canonical: bool = False
) -> np.ndarray:
    """Transformation X with ``X^T S X = I``.

    Parameters
    ----------
    s:
        Overlap matrix.
    threshold:
        Eigenvalues below ``threshold * max_eig`` are dropped (canonical)
        or rejected (symmetric).
    canonical:
        Force canonical orthogonalization (columns may be fewer than nbf).
    """
    check_symmetric(s, "overlap", tol=1e-8)
    vals, vecs = np.linalg.eigh(0.5 * (s + s.T))
    vmax = float(vals.max())
    if vmax <= 0:
        raise ValueError("overlap matrix is not positive definite")
    keep = vals > threshold * vmax
    if canonical or not keep.all():
        if not keep.any():
            raise ValueError("overlap matrix has no usable eigenvalues")
        return vecs[:, keep] / np.sqrt(vals[keep])
    return (vecs / np.sqrt(vals)) @ vecs.T


def density_from_coefficients(c_occ: np.ndarray) -> np.ndarray:
    """Closed-shell density D = C_occ C_occ^T (line 10 of Algorithm 1).

    Note: we adopt the convention ``D = C_occ C_occ^T`` (without the
    factor 2); the factor appears in ``F = H + 2J - K`` and in the energy
    expression instead, matching Eq (3) of the paper.
    """
    return c_occ @ c_occ.T


def density_from_fock(
    fock: np.ndarray, x: np.ndarray, nocc: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Diagonalize F in the orthogonal basis and form the new density.

    Returns (density, orbital_energies, coefficients) -- lines 7-10 of
    Algorithm 1.
    """
    if nocc <= 0:
        raise ValueError(f"need at least one occupied orbital, got nocc={nocc}")
    f_ortho = x.T @ fock @ x
    eps, c_prime = np.linalg.eigh(0.5 * (f_ortho + f_ortho.T))
    c = x @ c_prime
    c_occ = c[:, :nocc]
    return density_from_coefficients(c_occ), eps, c
