"""Basis orthogonalization: X = U s^{-1/2} U^T (lines 3-4 of Algorithm 1).

Symmetric (Loewdin) orthogonalization by default, with canonical
orthogonalization as a fallback when the overlap matrix is nearly
singular (linearly dependent basis sets).  The switch is never silent:
it raises a :class:`LinearDependenceWarning`, sets the
``repro_scf_overlap_condition`` gauge and
``repro_scf_canonical_orth_total`` counter, and is reported in
:class:`OrthoInfo` so the SCF guard can record it.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.obs import get_metrics
from repro.util.validation import check_finite, check_symmetric


class LinearDependenceWarning(UserWarning):
    """The overlap matrix was ill-conditioned enough to drop directions."""


@dataclass(frozen=True)
class OrthoInfo:
    """What the orthogonalizer actually did (for guards and reports)."""

    condition: float
    n_kept: int
    n_dropped: int
    canonical: bool
    threshold: float


def orthogonalizer_info(
    s: np.ndarray,
    threshold: float = 1e-8,
    canonical: bool = False,
    cond_limit: float = 1e8,
) -> tuple[np.ndarray, OrthoInfo]:
    """Transformation X with ``X^T S X = I``, plus what was done to get it.

    Parameters
    ----------
    s:
        Overlap matrix.
    threshold:
        Eigenvalues below ``threshold * max_eig`` are dropped (canonical
        path only keeps the rest).
    canonical:
        Force canonical orthogonalization (columns may be fewer than nbf).
    cond_limit:
        Auto-switch to canonical orthogonalization (with a
        :class:`LinearDependenceWarning`) once ``cond(S)`` exceeds this,
        even if no eigenvalue falls below the drop threshold: a nearly
        singular ``S^{-1/2}`` amplifies Fock-matrix noise by the full
        condition number.
    """
    check_symmetric(s, "overlap", tol=1e-8)
    check_finite(s, "overlap")
    vals, vecs = np.linalg.eigh(0.5 * (s + s.T))
    vmax = float(vals.max())
    if vmax <= 0:
        raise ValueError(
            f"overlap matrix is not positive definite (max eigenvalue {vmax:.3e})"
        )
    vmin = float(vals.min())
    condition = vmax / vmin if vmin > 0 else float("inf")
    get_metrics().gauge(
        "repro_scf_overlap_condition", "condition number of the overlap matrix"
    ).set(condition)
    keep = vals > threshold * vmax
    auto_switch = not canonical and (not keep.all() or condition > cond_limit)
    if canonical or auto_switch:
        if not keep.any():
            raise ValueError(
                f"overlap: every eigenvalue is below threshold * max_eig "
                f"({threshold:.1e} * {vmax:.3e}) -- the basis is numerically "
                f"rank-deficient; check the geometry for coincident atoms"
            )
        n_kept = int(keep.sum())
        if auto_switch:
            warnings.warn(
                f"overlap matrix is near-singular (condition {condition:.3e}, "
                f"{s.shape[0] - n_kept} eigenvalue(s) below "
                f"{threshold:.1e} * max): switching to canonical "
                f"orthogonalization with {n_kept} of {s.shape[0]} functions",
                LinearDependenceWarning,
                stacklevel=2,
            )
            get_metrics().counter(
                "repro_scf_canonical_orth_total",
                "automatic switches to canonical orthogonalization",
            ).inc()
        x = vecs[:, keep] / np.sqrt(vals[keep])
        return x, OrthoInfo(
            condition=condition,
            n_kept=n_kept,
            n_dropped=s.shape[0] - n_kept,
            canonical=True,
            threshold=threshold,
        )
    x = (vecs / np.sqrt(vals)) @ vecs.T
    return x, OrthoInfo(
        condition=condition,
        n_kept=s.shape[0],
        n_dropped=0,
        canonical=False,
        threshold=threshold,
    )


def orthogonalizer(
    s: np.ndarray,
    threshold: float = 1e-8,
    canonical: bool = False,
    cond_limit: float = 1e8,
) -> np.ndarray:
    """:func:`orthogonalizer_info` without the info (the common call)."""
    return orthogonalizer_info(
        s, threshold=threshold, canonical=canonical, cond_limit=cond_limit
    )[0]


def density_from_coefficients(c_occ: np.ndarray) -> np.ndarray:
    """Closed-shell density D = C_occ C_occ^T (line 10 of Algorithm 1).

    Note: we adopt the convention ``D = C_occ C_occ^T`` (without the
    factor 2); the factor appears in ``F = H + 2J - K`` and in the energy
    expression instead, matching Eq (3) of the paper.
    """
    return c_occ @ c_occ.T


def density_from_fock(
    fock: np.ndarray,
    x: np.ndarray,
    nocc: int,
    level_shift: float = 0.0,
    overlap: np.ndarray | None = None,
    density: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Diagonalize F in the orthogonal basis and form the new density.

    Returns (density, orbital_energies, coefficients) -- lines 7-10 of
    Algorithm 1.

    With ``level_shift > 0`` (a guard remediation), the virtual space is
    raised by ``level_shift`` hartree before diagonalization:
    ``F' = F_ortho + shift * (I - P)`` with ``P = X^T S D S X`` the
    occupied projector of the *current* density.  At convergence P
    commutes with F, so the converged density is unchanged -- the shift
    only damps occupied-virtual rotations along the way.
    """
    if nocc <= 0:
        raise ValueError(f"need at least one occupied orbital, got nocc={nocc}")
    f_ortho = x.T @ fock @ x
    if level_shift != 0.0:
        if overlap is None or density is None:
            raise ValueError(
                "level_shift requires the overlap matrix and current density"
            )
        p = x.T @ overlap @ density @ overlap @ x
        f_ortho = f_ortho + level_shift * (
            np.eye(f_ortho.shape[0]) - 0.5 * (p + p.T)
        )
    eps, c_prime = np.linalg.eigh(0.5 * (f_ortho + f_ortho.T))
    c = x @ c_prime
    c_occ = c[:, :nocc]
    return density_from_coefficients(c_occ), eps, c
