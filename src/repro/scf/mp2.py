"""MP2 correlation energy on top of a converged RHF solution.

The paper motivates fast HF as "the starting point for accurate
electronic correlation methods"; this module closes that loop at
validation scale: a dense AO->MO transformation of the ERI tensor and the
closed-shell MP2 sum

``E2 = sum_{iajb} (ia|jb) [2 (ia|jb) - (ib|ja)] / (e_i + e_j - e_a - e_b)``.

O(nbf^5) transform and O(nbf^4) memory -- intended for the small-molecule
regime where the real integral engines operate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.integrals.eri_md import eri_tensor
from repro.scf.hf import SCFResult


@dataclass(frozen=True)
class MP2Result:
    """Correlation energy decomposition."""

    correlation_energy: float
    same_spin: float
    opposite_spin: float
    reference_energy: float

    @property
    def total_energy(self) -> float:
        return self.reference_energy + self.correlation_energy


def ao_to_mo(eri_ao: np.ndarray, coefficients: np.ndarray) -> np.ndarray:
    """Four-index transform ``(pq|rs) -> (ij|kl)`` in four O(n^5) steps."""
    c = coefficients
    out = np.einsum("pqrs,pi->iqrs", eri_ao, c, optimize=True)
    out = np.einsum("iqrs,qj->ijrs", out, c, optimize=True)
    out = np.einsum("ijrs,rk->ijks", out, c, optimize=True)
    return np.einsum("ijks,sl->ijkl", out, c, optimize=True)


def mp2_energy(
    basis: BasisSet,
    scf: SCFResult,
    nocc: int,
    frozen_core: int = 0,
) -> MP2Result:
    """Closed-shell MP2 from an :class:`~repro.scf.hf.SCFResult`.

    Parameters
    ----------
    basis:
        The basis the SCF ran in.
    scf:
        Converged RHF result with coefficients and orbital energies.
    nocc:
        Number of doubly occupied orbitals.
    frozen_core:
        Lowest orbitals excluded from the correlation treatment.
    """
    if scf.coefficients is None or scf.orbital_energies is None:
        raise ValueError("SCF result lacks coefficients/orbital energies")
    if not 0 <= frozen_core < nocc:
        raise ValueError(f"frozen_core={frozen_core} incompatible with nocc={nocc}")
    c = scf.coefficients
    eps = scf.orbital_energies
    nmo = c.shape[1]
    if nocc >= nmo:
        raise ValueError("no virtual orbitals available for MP2")

    eri_mo = ao_to_mo(eri_tensor(basis), c)
    occ = range(frozen_core, nocc)
    virt = range(nocc, nmo)
    e_os = 0.0
    e_ss = 0.0
    for i in occ:
        for j in occ:
            for a in virt:
                for b in virt:
                    iajb = eri_mo[i, a, j, b]
                    ibja = eri_mo[i, b, j, a]
                    denom = eps[i] + eps[j] - eps[a] - eps[b]
                    e_os += iajb * iajb / denom
                    e_ss += iajb * (iajb - ibja) / denom
    return MP2Result(
        correlation_energy=e_os + e_ss,
        same_spin=e_ss,
        opposite_spin=e_os,
        reference_energy=scf.energy,
    )
