"""Molecular properties from a converged SCF density.

Not part of the paper's contribution, but part of any usable HF package:
dipole moments (electronic + nuclear), Mulliken population analysis, and
orbital-level summaries.  All take the closed-shell convention
``D = C_occ C_occ^T`` used throughout this library (total electron
density is ``2 D``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.integrals.moments import dipole_integrals
from repro.util.validation import check_symmetric


@dataclass(frozen=True)
class DipoleMoment:
    """Dipole moment in atomic units (1 a.u. = 2.5417 debye)."""

    electronic: np.ndarray
    nuclear: np.ndarray

    @property
    def total(self) -> np.ndarray:
        return self.nuclear + self.electronic

    @property
    def magnitude(self) -> float:
        return float(np.linalg.norm(self.total))

    @property
    def debye(self) -> float:
        return self.magnitude * 2.541746


def dipole_moment(
    basis: BasisSet, density: np.ndarray, origin: np.ndarray | None = None
) -> DipoleMoment:
    """Molecular dipole ``mu = sum_A Z_A R_A - 2 tr(D r)``."""
    check_symmetric(density, "density", tol=1e-8)
    if origin is None:
        origin = np.zeros(3)
    ints = dipole_integrals(basis, origin)
    electronic = -2.0 * np.array(
        [float(np.sum(density * ints[k])) for k in range(3)]
    )
    mol = basis.molecule
    z = mol.numbers.astype(float)
    nuclear = (z[:, None] * (mol.coords - origin)).sum(axis=0)
    return DipoleMoment(electronic=electronic, nuclear=nuclear)


def mulliken_populations(
    basis: BasisSet, density: np.ndarray, overlap: np.ndarray
) -> np.ndarray:
    """Per-atom Mulliken electron populations ``q_A = 2 sum_{i in A} (DS)_ii``."""
    check_symmetric(density, "density", tol=1e-8)
    ds_diag = np.einsum("ij,ji->i", density, overlap)
    pops = np.zeros(basis.molecule.natoms)
    for s in range(basis.nshells):
        atom = int(basis.atom_of_shell[s])
        sl = basis.shell_slice(s)
        pops[atom] += 2.0 * float(ds_diag[sl.start : sl.stop].sum())
    return pops


def mulliken_charges(
    basis: BasisSet, density: np.ndarray, overlap: np.ndarray
) -> np.ndarray:
    """Mulliken partial charges ``Z_A - q_A``."""
    pops = mulliken_populations(basis, density, overlap)
    return basis.molecule.numbers.astype(float) - pops


@dataclass(frozen=True)
class OrbitalSummary:
    """HOMO/LUMO summary of an orbital-energy spectrum."""

    homo: float
    lumo: float | None

    @property
    def gap(self) -> float | None:
        return None if self.lumo is None else self.lumo - self.homo


def orbital_summary(orbital_energies: np.ndarray, nocc: int) -> OrbitalSummary:
    """HOMO/LUMO energies from sorted orbital energies."""
    eps = np.asarray(orbital_energies, dtype=float)
    if not 0 < nocc <= eps.size:
        raise ValueError(f"nocc={nocc} out of range for {eps.size} orbitals")
    homo = float(eps[nocc - 1])
    lumo = float(eps[nocc]) if nocc < eps.size else None
    return OrbitalSummary(homo=homo, lumo=lumo)
