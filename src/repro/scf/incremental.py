"""Incremental (delta-density) Fock construction.

A standard direct-SCF optimization that composes naturally with
Cauchy-Schwarz screening: build the two-electron part from the density
*change* ``dD = D_k - D_{k-1}`` instead of D.  Near convergence
``max|dD|`` is tiny, so the effective screening threshold
``tau / max|dD|`` drops almost every quartet, making late SCF iterations
nearly free.  Periodic full rebuilds bound the accumulated numerical
error.

This is one of the "avenues open for future research" class of
improvements the paper's framework admits; it reuses the exact same
screened J/K builder.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.integrals.engine import ERIEngine
from repro.scf.fock import build_jk


@dataclass
class IncrementalFockBuilder:
    """Stateful Fock constructor using density differences.

    Parameters
    ----------
    engine:
        ERI engine shared across iterations.
    tau:
        Base screening threshold for full builds.  Incremental builds
        screen quartets against the *contribution* bound
        ``sigma_bra sigma_ket max|dD|``, i.e. pass ``tau / max|dD|`` to
        the quartet enumeration.
    rebuild_every:
        Force a full (non-incremental) rebuild every N calls to bound
        error accumulation.
    """

    engine: ERIEngine
    tau: float = 1e-11
    rebuild_every: int = 8
    _g: np.ndarray | None = field(default=None, repr=False)
    _d_last: np.ndarray | None = field(default=None, repr=False)
    _count: int = 0
    #: statistics: quartets computed per call (for tests/reports)
    history: list[int] = field(default_factory=list)

    def reset(self) -> None:
        self._g = None
        self._d_last = None
        self._count = 0

    def fock(self, hcore: np.ndarray, density: np.ndarray) -> np.ndarray:
        """F = Hcore + G(D), with G updated incrementally when possible."""
        full = (
            self._g is None
            or self._d_last is None
            or self._count % self.rebuild_every == 0
        )
        before = self.engine.quartets_computed
        if full:
            j, k = build_jk(self.engine, density, self.tau)
            self._g = 2.0 * j - k
        else:
            delta = density - self._d_last
            dmax = float(np.max(np.abs(delta)))
            if dmax > 0.0:
                # quartet survives iff sigma*sigma * dmax > tau
                eff_tau = self.tau / dmax
                j, k = build_jk(self.engine, delta, eff_tau)
                self._g = self._g + 2.0 * j - k
        self.history.append(self.engine.quartets_computed - before)
        self._d_last = density.copy()
        self._count += 1
        return hcore + self._g
