"""Density-matrix purification (the diagonalization-free path of Sec IV-E).

The paper computes the density matrix from the Fock matrix with
*canonical purification* [Palser & Manolopoulos 1998] instead of
diagonalization, because each iteration is just two matrix multiplies and
traces -- operations that parallelize with SUMMA on exactly the 2D-blocked
distribution the Fock build already uses (Table IX).

This module is the *serial* reference; :mod:`repro.dist.purification_dist`
runs the same iteration on distributed matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.validation import check_square, check_symmetric


@dataclass
class PurificationResult:
    """Converged purified density (orthogonal basis) plus iteration trace."""

    density: np.ndarray
    iterations: int
    converged: bool
    #: per-iteration idempotency error ||D^2 - D||_F
    history: list[float] = field(default_factory=list)


def initial_density(f_ortho: np.ndarray, nocc: int) -> np.ndarray:
    """Palser-Manolopoulos initial guess: linear map of F into [0, 1].

    Produces a trial density with exact trace ``nocc`` and spectrum inside
    [0, 1], using only the extremal Gershgorin bounds of F.
    """
    check_square(f_ortho, "fock")
    n = f_ortho.shape[0]
    if not 0 < nocc <= n:
        raise ValueError(f"nocc must be in (0, {n}], got {nocc}")
    mu = float(np.trace(f_ortho)) / n
    # Gershgorin bounds on the spectrum of F
    radii = np.sum(np.abs(f_ortho), axis=1) - np.abs(np.diag(f_ortho))
    fmin = float(np.min(np.diag(f_ortho) - radii))
    fmax = float(np.max(np.diag(f_ortho) + radii))
    theta = nocc / n
    lam = min(
        nocc / max(fmax - mu, 1e-300),
        (n - nocc) / max(mu - fmin, 1e-300),
    )
    return (lam / n) * (mu * np.eye(n) - f_ortho) + theta * np.eye(n)


def mcweeny_step(d: np.ndarray) -> np.ndarray:
    """One McWeeny iteration  D <- 3 D^2 - 2 D^3."""
    d2 = d @ d
    return 3.0 * d2 - 2.0 * (d2 @ d)


def canonical_step(d: np.ndarray) -> np.ndarray:
    """One trace-conserving (canonical) purification step.

    Chooses between the two cubic polynomials of Palser-Manolopoulos so
    that ``tr(D)`` is preserved exactly while idempotency improves.
    """
    d2 = d @ d
    d3 = d2 @ d
    num = float(np.trace(d2) - np.trace(d3))
    den = float(np.trace(d) - np.trace(d2))
    c = num / den if abs(den) > 1e-300 else 0.5
    if c >= 0.5:
        return ((1.0 + c) * d2 - d3) / c
    return ((1.0 - 2.0 * c) * d + (1.0 + c) * d2 - d3) / (1.0 - c)


def purify(
    f_ortho: np.ndarray,
    nocc: int,
    tol: float = 1e-10,
    max_iter: int = 100,
) -> PurificationResult:
    """Canonical purification of the density from an orthogonal-basis Fock.

    Returns the idempotent density D' (orthogonal basis, trace = nocc);
    transform back with ``D = X D' X^T``.
    """
    check_symmetric(f_ortho, "fock", tol=1e-8)
    d = initial_density(f_ortho, nocc)
    history: list[float] = []
    for it in range(1, max_iter + 1):
        err = float(np.linalg.norm(d @ d - d, "fro"))
        history.append(err)
        if err < tol:
            return PurificationResult(d, it - 1, True, history)
        d = canonical_step(d)
        d = 0.5 * (d + d.T)
    err = float(np.linalg.norm(d @ d - d, "fro"))
    history.append(err)
    return PurificationResult(d, max_iter, err < tol, history)


def mcweeny_refine(
    d: np.ndarray, tol: float = 1e-12, max_iter: int = 50
) -> PurificationResult:
    """McWeeny refinement of an almost-idempotent density."""
    check_square(d, "density")
    history: list[float] = []
    cur = d.copy()
    for it in range(1, max_iter + 1):
        err = float(np.linalg.norm(cur @ cur - cur, "fro"))
        history.append(err)
        if err < tol:
            return PurificationResult(cur, it - 1, True, history)
        cur = mcweeny_step(cur)
    err = float(np.linalg.norm(cur @ cur - cur, "fro"))
    history.append(err)
    return PurificationResult(cur, max_iter, err < tol, history)
