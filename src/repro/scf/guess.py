"""Initial density guesses for the SCF iteration (line 1 of Algorithm 1)."""

from __future__ import annotations

import numpy as np

from repro.scf.orthogonalization import density_from_fock


def core_guess(hcore: np.ndarray, x: np.ndarray, nocc: int) -> np.ndarray:
    """Density from diagonalizing the core Hamiltonian (the classic guess)."""
    d, _eps, _c = density_from_fock(hcore, x, nocc)
    return d


def gwh_guess(
    hcore: np.ndarray, s: np.ndarray, x: np.ndarray, nocc: int, kappa: float = 1.75
) -> np.ndarray:
    """Generalized Wolfsberg-Helmholz guess.

    ``H_ij = kappa/2 * S_ij * (H_ii + H_jj)`` off-diagonal; often better
    than the bare core guess for molecules with several heavy atoms.
    """
    diag = np.diag(hcore)
    h = 0.5 * kappa * s * (diag[:, None] + diag[None, :])
    np.fill_diagonal(h, diag)
    d, _eps, _c = density_from_fock(h, x, nocc)
    return d


def zero_guess(nbf: int) -> np.ndarray:
    """All-zero density: the first Fock matrix is then exactly H^core."""
    return np.zeros((nbf, nbf))
