"""Geometry generators for the paper's molecule families and small demo systems.

The IPDPS 2014 paper evaluates on two families:

* hexagonal graphene-like flakes ``C6n^2 H6n`` (n=2 is coronene C24H12,
  n=4 is C96H24, n=5 is C150H30) -- "2D" test systems;
* linear zigzag alkanes ``CnH2n+2`` (C10H22, C100H202, C144H290) -- "1D"
  chain systems whose screening drops most shell quartets.

Both generators produce standard covalent geometries (C-C aromatic 1.42 A,
C-C alkane 1.54 A, C-H 1.09 A, tetrahedral angles), which is what drives
the Cauchy-Schwarz screening structure the paper's algorithm exploits.
"""

from __future__ import annotations

import math

import numpy as np

from repro.chem.molecule import Molecule

#: Aromatic C-C bond length (Angstrom), graphene/benzene.
CC_AROMATIC = 1.42
#: Alkane C-C single-bond length (Angstrom).
CC_SINGLE = 1.54
#: C-H bond length (Angstrom).
CH_BOND = 1.09
#: Tetrahedral angle in radians.
TETRAHEDRAL = math.acos(-1.0 / 3.0)


# ---------------------------------------------------------------------------
# graphene flakes
# ---------------------------------------------------------------------------


def graphene_flake(n: int, name: str | None = None) -> Molecule:
    """Hexagonal graphene flake ``C6n^2 H6n`` (circumcoronene series).

    ``n=2`` gives coronene C24H12; ``n=4`` gives C96H24; ``n=5`` gives
    C150H30 -- the paper's 2D test molecules.  The flake is the union of
    the centred-hexagonal arrangement of ``3n^2 - 3n + 1`` benzene rings,
    with every edge carbon (2 carbon neighbours) terminated by one H.

    Parameters
    ----------
    n:
        Flake order, ``n >= 1``.
    """
    if n < 1:
        raise ValueError(f"flake order must be >= 1, got {n}")
    d = CC_AROMATIC
    # hexagon-centre lattice vectors (centre-to-centre distance sqrt(3) d)
    u = np.array([math.sqrt(3.0) * d, 0.0])
    v = np.array([math.sqrt(3.0) * d / 2.0, 1.5 * d])
    centers = [
        q * u + r * v
        for q in range(-(n - 1), n)
        for r in range(-(n - 1), n)
        if max(abs(q), abs(r), abs(q + r)) <= n - 1
    ]
    # hexagon vertices at angles 30 + 60k degrees, distance d from centre
    vert_offsets = np.array(
        [
            [d * math.cos(math.radians(30 + 60 * k)), d * math.sin(math.radians(30 + 60 * k))]
            for k in range(6)
        ]
    )
    seen: dict[tuple[int, int], np.ndarray] = {}
    for c in centers:
        for off in vert_offsets:
            p = c + off
            key = (round(p[0] * 1000), round(p[1] * 1000))
            if key not in seen:
                seen[key] = p
    carbons = np.array(list(seen.values()))
    expected = 6 * n * n
    if len(carbons) != expected:
        raise AssertionError(
            f"flake construction produced {len(carbons)} carbons, expected {expected}"
        )

    # hydrogens: every carbon with exactly 2 carbon neighbours gets one H
    # pointing away from the bisector of its two bonds.
    symbols: list[str] = ["C"] * len(carbons)
    coords: list[np.ndarray] = [np.array([p[0], p[1], 0.0]) for p in carbons]
    cutoff = 1.2 * d
    for i, p in enumerate(carbons):
        delta = carbons - p
        dist = np.hypot(delta[:, 0], delta[:, 1])
        nbr = np.where((dist > 1e-6) & (dist < cutoff))[0]
        if len(nbr) == 2:
            bisector = (carbons[nbr[0]] - p) + (carbons[nbr[1]] - p)
            direction = -bisector / np.linalg.norm(bisector)
            h = p + CH_BOND * direction
            symbols.append("H")
            coords.append(np.array([h[0], h[1], 0.0]))
        elif len(nbr) not in (2, 3):
            raise AssertionError(f"carbon {i} has {len(nbr)} neighbours")
    nh = sum(1 for s in symbols if s == "H")
    if nh != 6 * n:
        raise AssertionError(f"flake has {nh} hydrogens, expected {6 * n}")
    mol = Molecule.from_arrays(symbols, np.array(coords), name=name or f"C{expected}H{6*n}")
    return mol


def coronene() -> Molecule:
    """Coronene C24H12 (= ``graphene_flake(2)``), used in Table V."""
    return graphene_flake(2, name="C24H12")


# ---------------------------------------------------------------------------
# alkanes
# ---------------------------------------------------------------------------


def alkane(n: int, name: str | None = None) -> Molecule:
    """Linear zigzag alkane ``CnH2n+2``.

    ``n=10`` gives C10H22 (Table V); ``n=100`` gives C100H202 and
    ``n=144`` gives C144H290 -- the paper's 1D test molecules.

    The carbon backbone zigzags in the xz-plane with tetrahedral angles;
    each CH2 carries two out-of-plane hydrogens and each terminal CH3
    three tetrahedrally arranged hydrogens.
    """
    if n < 1:
        raise ValueError(f"alkane length must be >= 1, got {n}")
    if n == 1:
        return methane()

    half = TETRAHEDRAL / 2.0
    dx = CC_SINGLE * math.sin(half)
    dz = CC_SINGLE * math.cos(half)
    carbons = np.array([[i * dx, 0.0, (i % 2) * dz] for i in range(n)])

    symbols: list[str] = ["C"] * n
    coords: list[np.ndarray] = [c for c in carbons]

    alpha = TETRAHEDRAL / 2.0  # half the H-C-H angle
    for i in range(n):
        c = carbons[i]
        if 0 < i < n - 1:
            b1 = _unit(carbons[i - 1] - c)
            b2 = _unit(carbons[i + 1] - c)
            u = _unit(b1 + b2)
            w = _unit(np.cross(b1, b2))
            for sgn in (+1.0, -1.0):
                hdir = _unit(-u * math.cos(alpha) + sgn * w * math.sin(alpha))
                symbols.append("H")
                coords.append(c + CH_BOND * hdir)
        else:
            nbr = carbons[1] if i == 0 else carbons[n - 2]
            b = _unit(nbr - c)
            e1 = _perpendicular(b)
            e2 = np.cross(b, e1)
            ct, st = math.cos(TETRAHEDRAL), math.sin(TETRAHEDRAL)
            for k in range(3):
                phi = 2.0 * math.pi * k / 3.0 + (0.0 if i == 0 else math.pi / 3.0)
                hdir = b * ct + st * (e1 * math.cos(phi) + e2 * math.sin(phi))
                symbols.append("H")
                coords.append(c + CH_BOND * hdir)
    nh = len(symbols) - n
    if nh != 2 * n + 2:
        raise AssertionError(f"alkane has {nh} hydrogens, expected {2 * n + 2}")
    return Molecule.from_arrays(symbols, np.array(coords), name=name or f"C{n}H{2*n+2}")


# ---------------------------------------------------------------------------
# small demo molecules
# ---------------------------------------------------------------------------


def h2(bond_angstrom: float = 0.7414) -> Molecule:
    """Hydrogen molecule at the given bond length (default: experimental)."""
    return Molecule.from_arrays(
        ["H", "H"], np.array([[0.0, 0.0, 0.0], [0.0, 0.0, bond_angstrom]]), name="H2"
    )


def water() -> Molecule:
    """A single water molecule (experimental-ish geometry)."""
    r = 0.9572
    theta = math.radians(104.52)
    return Molecule.from_arrays(
        ["O", "H", "H"],
        np.array(
            [
                [0.0, 0.0, 0.0],
                [r, 0.0, 0.0],
                [r * math.cos(theta), r * math.sin(theta), 0.0],
            ]
        ),
        name="H2O",
    )


def methane() -> Molecule:
    """Methane CH4, tetrahedral."""
    a = CH_BOND / math.sqrt(3.0)
    return Molecule.from_arrays(
        ["C", "H", "H", "H", "H"],
        np.array(
            [
                [0.0, 0.0, 0.0],
                [a, a, a],
                [a, -a, -a],
                [-a, a, -a],
                [-a, -a, a],
            ]
        ),
        name="CH4",
    )


def benzene() -> Molecule:
    """Benzene C6H6 (planar hexagon)."""
    symbols: list[str] = []
    coords: list[list[float]] = []
    for k in range(6):
        ang = math.pi * k / 3.0
        symbols.append("C")
        coords.append([CC_AROMATIC * math.cos(ang), CC_AROMATIC * math.sin(ang), 0.0])
    rc = CC_AROMATIC + CH_BOND
    for k in range(6):
        ang = math.pi * k / 3.0
        symbols.append("H")
        coords.append([rc * math.cos(ang), rc * math.sin(ang), 0.0])
    return Molecule.from_arrays(symbols, np.array(coords), name="C6H6")


def water_cluster(nx: int, ny: int, nz: int, spacing: float = 2.8) -> Molecule:
    """A rectangular grid of water molecules (heterogeneous 3D demo system).

    Used by examples to show how densely packed 3D systems increase the
    average significant-set size B (Sec III-G of the paper).
    """
    base = water()
    symbols: list[str] = []
    coords: list[np.ndarray] = []
    for ix in range(nx):
        for iy in range(ny):
            for iz in range(nz):
                shift = np.array([ix, iy, iz], dtype=float) * spacing
                for s, xyz in zip(base.symbols, base.coords_angstrom):
                    symbols.append(s)
                    coords.append(xyz + shift)
    return Molecule.from_arrays(
        symbols, np.array(coords), name=f"(H2O)_{nx*ny*nz}"
    )


# ---------------------------------------------------------------------------
# paper test-set registry
# ---------------------------------------------------------------------------

#: The paper's Table II molecules, by name.
PAPER_MOLECULES = {
    "C96H24": lambda: graphene_flake(4),
    "C150H30": lambda: graphene_flake(5),
    "C100H202": lambda: alkane(100),
    "C144H290": lambda: alkane(144),
}

#: Scaled-down stand-ins with the same 2D/1D structure, for fast benchmarks.
SCALED_MOLECULES = {
    "C24H12": lambda: graphene_flake(2),
    "C54H18": lambda: graphene_flake(3),
    "C20H42": lambda: alkane(20),
    "C30H62": lambda: alkane(30),
}


def paper_molecule(name: str) -> Molecule:
    """Construct one of the paper's molecules (or scaled stand-ins) by name."""
    registry = {**PAPER_MOLECULES, **SCALED_MOLECULES}
    if name not in registry:
        raise KeyError(f"unknown molecule {name!r}; known: {sorted(registry)}")
    return registry[name]()


def _unit(v: np.ndarray) -> np.ndarray:
    nrm = float(np.linalg.norm(v))
    if nrm < 1e-12:
        raise ValueError("cannot normalize zero vector")
    return v / nrm


def _perpendicular(v: np.ndarray) -> np.ndarray:
    """Any unit vector perpendicular to ``v``."""
    candidate = np.array([0.0, 1.0, 0.0]) if abs(v[1]) < 0.9 else np.array([1.0, 0.0, 0.0])
    w = np.cross(v, candidate)
    return _unit(w)
