"""Molecular basis sets: the ordered list of shells for a molecule.

A :class:`BasisSet` fixes the shell indexing the whole library works in:
Fock/density matrices are blocked by shells, tasks are indexed by shell
pairs, and the reordering scheme of Sec III-D is expressed as a
permutation of this list.  Basis functions within a shell are numbered
consecutively, and consecutive shells occupy consecutive function ranges
(the paper's indexing convention, Sec II-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chem.basis.data_631g import G631_DATA
from repro.chem.basis.data_sto3g import STO3G_DATA
from repro.chem.basis.data_vdzsim import VDZSIM_DATA
from repro.chem.basis.shells import Shell
from repro.chem.molecule import Molecule

_L_OF_LETTER = {"S": 0, "P": 1, "D": 2, "F": 3}

#: name -> (raw element data, use pure/spherical d shells)
BASIS_REGISTRY: dict[str, tuple[dict, bool]] = {
    "sto-3g": (STO3G_DATA, False),
    "6-31g": (G631_DATA, False),
    "vdz-sim": (VDZSIM_DATA, True),
}


def element_shells(basis_name: str, symbol: str) -> list[tuple[int, list, list]]:
    """Expand an element's raw basis entries into (l, exps, coefs) triples.

    Pople ``SP`` entries expand into separate s and p shells sharing
    exponents, matching how every integral code treats them.
    """
    key = basis_name.lower()
    if key not in BASIS_REGISTRY:
        raise KeyError(f"unknown basis {basis_name!r}; known: {sorted(BASIS_REGISTRY)}")
    data, _pure = BASIS_REGISTRY[key]
    if symbol not in data:
        raise KeyError(f"basis {basis_name!r} has no data for element {symbol!r}")
    out: list[tuple[int, list, list]] = []
    for entry in data[symbol]:
        kind = entry[0]
        if kind == "SP":
            _, exps, cs, cp = entry
            out.append((0, list(exps), list(cs)))
            out.append((1, list(exps), list(cp)))
        else:
            _, exps, coefs = entry
            out.append((_L_OF_LETTER[kind], list(exps), list(coefs)))
    return out


@dataclass
class BasisSet:
    """The full ordered shell list for a molecule.

    Build with :meth:`BasisSet.build`; reorder with :meth:`permuted`.
    """

    molecule: Molecule
    shells: list[Shell]
    name: str = ""
    #: permutation applied relative to the atom-order shell list (identity
    #: for freshly built sets); ``order[new_index] = original_index``.
    order: np.ndarray | None = None
    offsets: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        sizes = np.array([sh.nbf for sh in self.shells], dtype=int)
        self.offsets = np.concatenate([[0], np.cumsum(sizes)])
        self._shell_slices: tuple[slice, ...] | None = None

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, molecule: Molecule, name: str = "sto-3g") -> "BasisSet":
        """Construct the basis for ``molecule`` in atom order."""
        key = name.lower()
        if key not in BASIS_REGISTRY:
            raise KeyError(f"unknown basis {name!r}; known: {sorted(BASIS_REGISTRY)}")
        _data, pure_d = BASIS_REGISTRY[key]
        shells: list[Shell] = []
        for iat, atom in enumerate(molecule.atoms):
            for l, exps, coefs in element_shells(key, atom.symbol):
                shells.append(
                    Shell(
                        l=l,
                        exps=np.array(exps),
                        coefs=np.array(coefs),
                        center=np.array(atom.position),
                        atom_index=iat,
                        pure=pure_d and l >= 2,
                    )
                )
        return cls(molecule=molecule, shells=shells, name=key)

    # -- shape/index helpers --------------------------------------------------

    @property
    def nshells(self) -> int:
        return len(self.shells)

    @property
    def nbf(self) -> int:
        """Total number of basis functions."""
        return int(self.offsets[-1])

    def shell_slice(self, i: int) -> slice:
        """Function-index slice of shell ``i``."""
        return slice(int(self.offsets[i]), int(self.offsets[i + 1]))

    @property
    def shell_slices(self) -> tuple[slice, ...]:
        """All function-index slices, cached (hot-path scatter lookups)."""
        if self._shell_slices is None:
            self._shell_slices = tuple(
                self.shell_slice(i) for i in range(self.nshells)
            )
        return self._shell_slices

    def shell_sizes(self) -> np.ndarray:
        """Functions per shell, shape (nshells,)."""
        return np.diff(self.offsets)

    @property
    def centers(self) -> np.ndarray:
        """Shell centers in bohr, shape (nshells, 3)."""
        return np.array([sh.center for sh in self.shells])

    @property
    def atom_of_shell(self) -> np.ndarray:
        return np.array([sh.atom_index for sh in self.shells], dtype=int)

    def shells_on_atom(self, iat: int) -> list[int]:
        """Shell indices centered on atom ``iat`` (in current order)."""
        return [i for i, sh in enumerate(self.shells) if sh.atom_index == iat]

    def atom_shell_lists(self) -> list[list[int]]:
        """Per-atom shell index lists (used by atom-quartet task schemes)."""
        out: list[list[int]] = [[] for _ in range(self.molecule.natoms)]
        for i, sh in enumerate(self.shells):
            out[sh.atom_index].append(i)
        return out

    def min_exponents(self) -> np.ndarray:
        """Most diffuse exponent per shell (drives screening extent)."""
        return np.array([sh.min_exponent() for sh in self.shells])

    # -- reordering ------------------------------------------------------------

    def permuted(self, order: np.ndarray) -> "BasisSet":
        """Return a new BasisSet whose shell ``i`` is this set's ``order[i]``.

        ``order`` must be a permutation of ``range(nshells)``.  Function
        numbering is rebuilt so consecutive shells stay contiguous (the
        reordering scheme of Sec III-D).
        """
        order = np.asarray(order, dtype=int)
        if sorted(order.tolist()) != list(range(self.nshells)):
            raise ValueError("order is not a permutation of the shell indices")
        base = self.order if self.order is not None else np.arange(self.nshells)
        new = BasisSet(
            molecule=self.molecule,
            shells=[self.shells[int(i)] for i in order],
            name=self.name,
            order=base[order],
        )
        return new

    def function_permutation(self) -> np.ndarray:
        """Map from this set's function indices to atom-order function indices.

        Entry ``k`` is the index, in the unpermuted (atom-order) basis, of
        this basis's function ``k``.  Identity when ``order is None``.
        Useful to compare matrices computed in reordered vs. original bases.
        """
        if self.order is None:
            return np.arange(self.nbf)
        original = BasisSet.build(self.molecule, self.name)
        perm = np.empty(self.nbf, dtype=int)
        for new_i, orig_i in enumerate(self.order):
            src = original.shell_slice(int(orig_i))
            dst = self.shell_slice(new_i)
            perm[dst] = np.arange(src.start, src.stop)
        return perm

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BasisSet({self.name!r}, nshells={self.nshells}, nbf={self.nbf}, "
            f"molecule={self.molecule.name or self.molecule.formula})"
        )
