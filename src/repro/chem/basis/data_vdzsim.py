"""``vdz-sim``: a cc-pVDZ-*structured* basis for parallel-behaviour studies.

The paper's scalability experiments use the Dunning cc-pVDZ basis.  What
the parallel algorithm actually "sees" of a basis set is:

* the *shell structure* per element (how many shells of which angular
  momentum -> task counts, block sizes, function counts), and
* the *diffuseness* of the outermost primitives (-> Cauchy-Schwarz
  screening decay, i.e. the significant sets Phi(M)).

``vdz-sim`` reproduces both for H and C exactly in cc-pVDZ's image:
H = (2s,1p) -> 3 shells / 5 spherical functions; C = (3s,2p,1d) -> 6
shells / 14 spherical functions.  With these, the paper's Table II counts
are matched exactly (e.g. C100H202 -> 1206 shells, 2410 functions).

Exponents follow the published cc-pVDZ values; contraction coefficients of
the deep core contractions are representative (smooth, normalized)
rather than literature-exact, which is irrelevant for screening structure
and clearly documented in DESIGN.md.  For numerically validated chemistry
use ``sto-3g``.
"""

# fmt: off
VDZSIM_DATA = {
    "H": [
        # (4s) -> [2s]: one 3-term contraction + one diffuse uncontracted s
        ("S", [13.0100, 1.9620, 0.4446],
              [0.019685, 0.137977, 0.478148]),
        ("S", [0.1220], [1.0]),
        ("P", [0.7270], [1.0]),
    ],
    "C": [
        # (9s4p1d) -> [3s2p1d]
        ("S", [6665.0, 1000.0, 228.0, 64.71, 21.06, 7.495, 2.797],
              [0.000692, 0.005329, 0.027077, 0.101718, 0.274740, 0.448564, 0.285074]),
        ("S", [0.5215], [1.0]),
        ("S", [0.1596], [1.0]),
        ("P", [9.439, 2.002, 0.5456],
              [0.038109, 0.209480, 0.508557]),
        ("P", [0.1517], [1.0]),
        ("D", [0.5500], [1.0]),
    ],
    "O": [
        ("S", [11720.0, 1759.0, 400.8, 113.7, 37.03, 13.27, 5.025],
              [0.000710, 0.005470, 0.027837, 0.104800, 0.283062, 0.448719, 0.270952]),
        ("S", [1.0130], [1.0]),
        ("S", [0.3023], [1.0]),
        ("P", [17.70, 3.854, 1.046],
              [0.043018, 0.228913, 0.508728]),
        ("P", [0.2753], [1.0]),
        ("D", [1.1850], [1.0]),
    ],
    "N": [
        ("S", [9046.0, 1357.0, 309.3, 87.73, 28.56, 10.21, 3.838],
              [0.000700, 0.005389, 0.027406, 0.103207, 0.278723, 0.448540, 0.278238]),
        ("S", [0.7466], [1.0]),
        ("S", [0.2248], [1.0]),
        ("P", [13.55, 2.917, 0.7973],
              [0.039919, 0.217169, 0.510319]),
        ("P", [0.2185], [1.0]),
        ("D", [0.8170], [1.0]),
    ],
}
# fmt: on
