"""Gaussian basis sets: shells, normalization, and per-molecule basis lists."""

from repro.chem.basis.basisset import BASIS_REGISTRY, BasisSet, element_shells
from repro.chem.basis.shells import (
    Shell,
    cartesian_components,
    component_scale,
    double_factorial,
    ncart,
    normalize_contraction,
    nsph,
    primitive_norm,
)

__all__ = [
    "BASIS_REGISTRY",
    "BasisSet",
    "element_shells",
    "Shell",
    "cartesian_components",
    "component_scale",
    "double_factorial",
    "ncart",
    "normalize_contraction",
    "nsph",
    "primitive_norm",
]
