"""Contracted Gaussian shells and their normalization.

A *shell* is a set of contracted Gaussian basis functions sharing one
angular momentum ``l`` and one center (Sec II-A of the paper).  Shells are
the minimal batching unit of electron-repulsion-integral (ERI)
computation: integrals are always produced one *shell quartet* at a time.

Conventions
-----------
* Cartesian components of a shell are ordered lexicographically with
  ``lx`` descending: s -> (000); p -> x, y, z; d -> xx, xy, xz, yy, yz, zz.
* Each Cartesian component is individually normalized.  Shells with
  ``pure=True`` (allowed for ``l == 2``) are expressed in the real solid
  harmonic basis via :mod:`repro.integrals.spherical`.
* Contraction coefficients are stored raw (as published) and folded with
  primitive and contraction normalization into :attr:`Shell.norm_coefs`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

ANGULAR_LETTERS = "spdfgh"


def ncart(l: int) -> int:
    """Number of Cartesian components of angular momentum ``l``."""
    return (l + 1) * (l + 2) // 2


def nsph(l: int) -> int:
    """Number of real solid-harmonic components of angular momentum ``l``."""
    return 2 * l + 1


def cartesian_components(l: int) -> list[tuple[int, int, int]]:
    """All (lx, ly, lz) with lx+ly+lz = l, in library order."""
    comps = []
    for lx in range(l, -1, -1):
        for ly in range(l - lx, -1, -1):
            comps.append((lx, ly, l - lx - ly))
    return comps


def double_factorial(n: int) -> int:
    """(n)!! with the convention (-1)!! = 0!! = 1."""
    if n <= 0:
        return 1
    out = 1
    while n > 1:
        out *= n
        n -= 2
    return out


def primitive_norm(alpha: float, lx: int, ly: int, lz: int) -> float:
    """Normalization constant of the primitive ``x^lx y^ly z^lz exp(-a r^2)``."""
    l = lx + ly + lz
    num = (2.0 * alpha / math.pi) ** 1.5 * (4.0 * alpha) ** l
    den = (
        double_factorial(2 * lx - 1)
        * double_factorial(2 * ly - 1)
        * double_factorial(2 * lz - 1)
    )
    return math.sqrt(num / den)


def component_scale(lx: int, ly: int, lz: int) -> float:
    """Ratio N(lx,ly,lz) / N(l,0,0) for equal exponent.

    The contraction is normalized with respect to the (l,0,0) component;
    integral routines multiply each component by this exponent-independent
    factor to obtain individually normalized Cartesian functions.
    """
    l = lx + ly + lz
    return math.sqrt(
        double_factorial(2 * l - 1)
        / (
            double_factorial(2 * lx - 1)
            * double_factorial(2 * ly - 1)
            * double_factorial(2 * lz - 1)
        )
    )


def normalize_contraction(l: int, exps: np.ndarray, coefs: np.ndarray) -> np.ndarray:
    """Fold primitive and contraction normalization into coefficients.

    Returns coefficients ``c_i`` such that the contracted (l,0,0)
    Cartesian function ``sum_i c_i x^l exp(-a_i r^2)`` has unit self
    overlap.
    """
    exps = np.asarray(exps, dtype=float)
    coefs = np.asarray(coefs, dtype=float)
    if exps.shape != coefs.shape or exps.ndim != 1 or exps.size == 0:
        raise ValueError("exps and coefs must be equal-length 1-D arrays")
    if np.any(exps <= 0):
        raise ValueError("Gaussian exponents must be positive")
    prim = np.array([primitive_norm(a, l, 0, 0) for a in exps])
    c = coefs * prim
    # self-overlap of the contracted (l,0,0) function
    asum = exps[:, None] + exps[None, :]
    pair = (
        double_factorial(2 * l - 1)
        * math.pi**1.5
        / (2.0**l * asum ** (l + 1.5))
    )
    s = float(c @ pair @ c)
    if s <= 0:
        raise ValueError("contraction has non-positive self overlap")
    return c / math.sqrt(s)


@dataclass(frozen=True)
class Shell:
    """One contracted Gaussian shell on an atomic center.

    Attributes
    ----------
    l:
        Angular momentum (0=s, 1=p, 2=d, ...).
    exps, coefs:
        Primitive exponents and raw contraction coefficients.
    center:
        Cartesian center in bohr (length-3).
    atom_index:
        Index of the owning atom within the molecule.
    pure:
        Use real solid harmonics (5 functions for d) instead of the 6
        Cartesian components.  Only supported for ``l <= 2``.
    """

    l: int
    exps: np.ndarray
    coefs: np.ndarray
    center: np.ndarray
    atom_index: int
    pure: bool = False
    norm_coefs: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.l < 0:
            raise ValueError(f"angular momentum must be >= 0, got {self.l}")
        if self.pure and self.l > 2:
            raise NotImplementedError("pure (spherical) shells supported up to l=2")
        exps = np.asarray(self.exps, dtype=float)
        coefs = np.asarray(self.coefs, dtype=float)
        center = np.asarray(self.center, dtype=float).reshape(3)
        object.__setattr__(self, "exps", exps)
        object.__setattr__(self, "coefs", coefs)
        object.__setattr__(self, "center", center)
        object.__setattr__(
            self, "norm_coefs", normalize_contraction(self.l, exps, coefs)
        )

    @property
    def nprim(self) -> int:
        return int(self.exps.size)

    @property
    def ncart(self) -> int:
        return ncart(self.l)

    @property
    def nbf(self) -> int:
        """Number of basis functions this shell contributes."""
        return nsph(self.l) if self.pure else ncart(self.l)

    @property
    def letter(self) -> str:
        return ANGULAR_LETTERS[self.l]

    def at(self, center: np.ndarray, atom_index: int) -> "Shell":
        """Copy of this shell placed on a different center/atom."""
        return Shell(
            l=self.l,
            exps=self.exps,
            coefs=self.coefs,
            center=np.asarray(center, dtype=float),
            atom_index=atom_index,
            pure=self.pure,
        )

    def min_exponent(self) -> float:
        """Most diffuse primitive exponent (controls the shell's extent)."""
        return float(self.exps.min())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Shell({self.letter}, nprim={self.nprim}, atom={self.atom_index}, "
            f"pure={self.pure})"
        )
