"""Chemistry substrate: molecules, geometry builders, and basis sets."""

from repro.chem.basis import BasisSet, Shell
from repro.chem.builders import (
    PAPER_MOLECULES,
    SCALED_MOLECULES,
    alkane,
    benzene,
    coronene,
    graphene_flake,
    h2,
    methane,
    paper_molecule,
    water,
    water_cluster,
)
from repro.chem.elements import Element, atomic_number, element, symbol_of
from repro.chem.molecule import Atom, Molecule

__all__ = [
    "BasisSet",
    "Shell",
    "PAPER_MOLECULES",
    "SCALED_MOLECULES",
    "alkane",
    "benzene",
    "coronene",
    "graphene_flake",
    "h2",
    "methane",
    "paper_molecule",
    "water",
    "water_cluster",
    "Element",
    "atomic_number",
    "element",
    "symbol_of",
    "Atom",
    "Molecule",
]
