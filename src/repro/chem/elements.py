"""Periodic-table data for the elements this library works with.

Only light elements are needed for the paper's test systems (graphene-like
flakes and alkanes: C, H), but the common first rows are included so that
examples (water, methane, small organics) work naturally.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bohr radius in Angstrom; geometries are built in Angstrom and converted.
BOHR_PER_ANGSTROM = 1.0 / 0.52917721092
ANGSTROM_PER_BOHR = 0.52917721092


@dataclass(frozen=True)
class Element:
    """Static per-element data.

    Attributes
    ----------
    symbol:
        Chemical symbol, e.g. ``"C"``.
    number:
        Atomic number Z.
    covalent_radius:
        Covalent radius in Angstrom (used by geometry sanity checks).
    """

    symbol: str
    number: int
    covalent_radius: float


_ELEMENT_TABLE: tuple[Element, ...] = (
    Element("H", 1, 0.31),
    Element("He", 2, 0.28),
    Element("Li", 3, 1.28),
    Element("Be", 4, 0.96),
    Element("B", 5, 0.84),
    Element("C", 6, 0.76),
    Element("N", 7, 0.71),
    Element("O", 8, 0.66),
    Element("F", 9, 0.57),
    Element("Ne", 10, 0.58),
    Element("Na", 11, 1.66),
    Element("Mg", 12, 1.41),
    Element("Al", 13, 1.21),
    Element("Si", 14, 1.11),
    Element("P", 15, 1.07),
    Element("S", 16, 1.05),
    Element("Cl", 17, 1.02),
    Element("Ar", 18, 1.06),
)

ELEMENTS_BY_SYMBOL: dict[str, Element] = {e.symbol: e for e in _ELEMENT_TABLE}
ELEMENTS_BY_NUMBER: dict[int, Element] = {e.number: e for e in _ELEMENT_TABLE}


def element(key: str | int) -> Element:
    """Look up an element by symbol (case-insensitive) or atomic number.

    Raises
    ------
    KeyError
        If the element is not in the supported table (H..Ar).
    """
    if isinstance(key, str):
        sym = key.strip().capitalize()
        if sym not in ELEMENTS_BY_SYMBOL:
            raise KeyError(f"unknown element symbol {key!r}")
        return ELEMENTS_BY_SYMBOL[sym]
    if key not in ELEMENTS_BY_NUMBER:
        raise KeyError(f"unknown atomic number {key!r}")
    return ELEMENTS_BY_NUMBER[key]


def atomic_number(symbol: str) -> int:
    """Atomic number Z for a chemical symbol."""
    return element(symbol).number


def symbol_of(number: int) -> str:
    """Chemical symbol for an atomic number."""
    return element(number).symbol
