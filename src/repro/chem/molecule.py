"""Molecule container and XYZ-format I/O.

Coordinates are stored internally in **bohr** (atomic units), which is what
the integral code consumes.  The XYZ format and the geometry builders use
Angstrom, the conventional unit for molecular geometries, and convert on
the way in/out.
"""

from __future__ import annotations

import hashlib
import io
from dataclasses import dataclass, field

import numpy as np

from repro.chem.elements import (
    ANGSTROM_PER_BOHR,
    BOHR_PER_ANGSTROM,
    atomic_number,
    element,
    symbol_of,
)


@dataclass(frozen=True)
class Atom:
    """A single atom: element symbol + position in bohr."""

    symbol: str
    position: tuple[float, float, float]

    @property
    def number(self) -> int:
        return atomic_number(self.symbol)


@dataclass
class Molecule:
    """An ordered collection of atoms with an overall charge.

    Parameters
    ----------
    atoms:
        Sequence of :class:`Atom` (positions in bohr).
    charge:
        Total molecular charge; the electron count is
        ``sum(Z) - charge``.
    name:
        Optional human-readable label used in reports.
    """

    atoms: list[Atom] = field(default_factory=list)
    charge: int = 0
    name: str = ""

    #: pairwise distance (bohr) below which two atoms count as coincident
    COINCIDENCE_TOL = 1e-6

    def __post_init__(self) -> None:
        # coincident atoms make the overlap matrix exactly singular and
        # the nuclear repulsion infinite; reject them at construction
        # with a field-named error instead of failing deep in the SCF
        r = self.coords
        for i in range(len(self.atoms) - 1):
            d = np.linalg.norm(r[i + 1:] - r[i], axis=1)
            j = int(np.argmin(d)) + i + 1 if d.size else -1
            if d.size and float(d.min()) < self.COINCIDENCE_TOL:
                raise ValueError(
                    f"atoms[{j}] ({self.atoms[j].symbol}) coincides with "
                    f"atoms[{i}] ({self.atoms[i].symbol}): distance "
                    f"{float(d.min()):.3e} bohr is below the "
                    f"{self.COINCIDENCE_TOL:.0e} bohr coincidence tolerance"
                )

    # -- construction ------------------------------------------------------

    @classmethod
    def from_arrays(
        cls,
        symbols: list[str],
        coords_angstrom: np.ndarray,
        charge: int = 0,
        name: str = "",
    ) -> "Molecule":
        """Build from parallel arrays of symbols and Angstrom coordinates."""
        coords = np.asarray(coords_angstrom, dtype=float)
        if coords.shape != (len(symbols), 3):
            raise ValueError(
                f"coords shape {coords.shape} does not match {len(symbols)} symbols"
            )
        atoms = [
            Atom(element(s).symbol, tuple(float(x) for x in xyz * BOHR_PER_ANGSTROM))
            for s, xyz in zip(symbols, coords)
        ]
        return cls(atoms=atoms, charge=charge, name=name)

    @classmethod
    def from_xyz(cls, text: str, charge: int = 0, name: str = "") -> "Molecule":
        """Parse standard XYZ format (count line, comment line, atom lines)."""
        lines = [ln for ln in text.splitlines() if ln.strip()]
        if not lines:
            raise ValueError("empty XYZ input")
        try:
            n = int(lines[0].split()[0])
            body = lines[2 : 2 + n]
            if len(body) != n:
                raise ValueError
        except ValueError:
            # tolerate headerless XYZ bodies (symbol x y z per line)
            body = lines
        symbols: list[str] = []
        coords: list[list[float]] = []
        for ln in body:
            parts = ln.split()
            if len(parts) < 4:
                raise ValueError(f"bad XYZ atom line: {ln!r}")
            symbols.append(parts[0])
            coords.append([float(parts[1]), float(parts[2]), float(parts[3])])
        if not name and len(lines) > 1 and not _looks_like_atom_line(lines[1]):
            name = lines[1].strip()
        return cls.from_arrays(symbols, np.array(coords), charge=charge, name=name)

    # -- basic properties ---------------------------------------------------

    @property
    def natoms(self) -> int:
        return len(self.atoms)

    @property
    def symbols(self) -> list[str]:
        return [a.symbol for a in self.atoms]

    @property
    def numbers(self) -> np.ndarray:
        """Atomic numbers as an int array."""
        return np.array([a.number for a in self.atoms], dtype=int)

    @property
    def coords(self) -> np.ndarray:
        """Positions in bohr, shape (natoms, 3)."""
        return np.array([a.position for a in self.atoms], dtype=float)

    @property
    def coords_angstrom(self) -> np.ndarray:
        return self.coords * ANGSTROM_PER_BOHR

    @property
    def nelectrons(self) -> int:
        return int(self.numbers.sum()) - self.charge

    @property
    def formula(self) -> str:
        """Hill-convention molecular formula, e.g. ``C6H6``."""
        counts: dict[str, int] = {}
        for s in self.symbols:
            counts[s] = counts.get(s, 0) + 1
        parts: list[str] = []
        for s in ("C", "H"):
            if s in counts:
                n = counts.pop(s)
                parts.append(s + (str(n) if n > 1 else ""))
        for s in sorted(counts):
            n = counts[s]
            parts.append(s + (str(n) if n > 1 else ""))
        return "".join(parts)

    def geometry_hash(self) -> str:
        """Digest of symbols + exact coordinates + charge.

        Distinguishes geometry-distinct conformers that share a formula
        (the formula alone is *not* an identity -- see the benchmark
        harness's setup cache).
        """
        h = hashlib.sha256(str(self.charge).encode())
        h.update(" ".join(self.symbols).encode())
        h.update(np.ascontiguousarray(self.coords, dtype=np.float64).tobytes())
        return h.hexdigest()[:16]

    # -- energies / geometry -------------------------------------------------

    def nuclear_repulsion(self) -> float:
        """Classical Coulomb repulsion of the point nuclei, in hartree."""
        z = self.numbers.astype(float)
        r = self.coords
        e = 0.0
        for i in range(self.natoms):
            d = np.linalg.norm(r[i + 1 :] - r[i], axis=1)
            if np.any(d < 1e-8):
                raise ValueError("coincident nuclei")
            e += float(np.sum(z[i] * z[i + 1 :] / d))
        return e

    def min_interatomic_distance(self) -> float:
        """Smallest pairwise nuclear distance in bohr (inf for 1 atom)."""
        if self.natoms < 2:
            return float("inf")
        r = self.coords
        best = float("inf")
        for i in range(self.natoms - 1):
            d = np.linalg.norm(r[i + 1 :] - r[i], axis=1)
            best = min(best, float(d.min()))
        return best

    # -- output --------------------------------------------------------------

    def to_xyz(self, comment: str | None = None) -> str:
        """Serialize to standard XYZ text (Angstrom)."""
        buf = io.StringIO()
        buf.write(f"{self.natoms}\n")
        buf.write((comment if comment is not None else self.name) + "\n")
        for a, xyz in zip(self.atoms, self.coords_angstrom):
            buf.write(f"{a.symbol:<2s} {xyz[0]:15.8f} {xyz[1]:15.8f} {xyz[2]:15.8f}\n")
        return buf.getvalue()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or self.formula
        return f"Molecule({label}, natoms={self.natoms}, charge={self.charge})"


def _looks_like_atom_line(line: str) -> bool:
    parts = line.split()
    if len(parts) < 4:
        return False
    try:
        [float(p) for p in parts[1:4]]
    except ValueError:
        return False
    try:
        symbol_of(atomic_number(parts[0]))
    except KeyError:
        return False
    return True
