"""ERI engine abstraction consumed by all Fock builders.

An engine supplies two things:

* ``quartet(M, N, P, Q)`` -- the ERI block for four shell indices;
* ``schwarz()`` -- the shell-pair screening matrix sigma.

Engines provided:

* :class:`MDEngine` / :class:`OSEngine` -- real integrals
  (McMurchie-Davidson / Obara-Saika).
* :class:`SyntheticERIEngine` -- deterministic separable fake integrals
  with the full 8-fold permutational symmetry and distance-based decay.
  They admit *closed-form* J/K contractions, so distributed Fock builds
  on medium-size systems can be validated exactly without O(n^4) work.

Every engine can additionally carry a bounded LRU cache of *canonical*
quartet blocks (:class:`QuartetCache`): ERIs are density-independent, so
direct-SCF iterations after the first can be served transposed views of
already-computed blocks instead of recomputing them.  The cache sits in
the shared :meth:`ERIEngine.quartet` dispatch, so every engine passes
through it unchanged; ``quartets_computed`` keeps counting only *real*
computations (Table VII call-count benchmarks stay exact) while cache
service is tallied separately in ``quartets_served_from_cache``.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.integrals.class_batch import (
    EIGHT_PERMUTATIONS as _EIGHT_PERMUTATIONS,
)
from repro.integrals.class_batch import (
    ClassPlan,
    build_class_plan,
    iter_canonical_quartets,
)
from repro.integrals.eri_md import eri_shell_quartet
from repro.integrals.eri_os import eri_shell_quartet_os
from repro.integrals.pairdata import ShellPairData, eri_shell_quartet_batched
from repro.integrals.schwarz import schwarz_matrix, schwarz_model
from repro.integrals.store import ERIStore
from repro.obs import get_metrics

_IDENTITY = (0, 1, 2, 3)

#: bound on memoized class plans per engine (IncrementalFockBuilder
#: cycles through a handful of effective thresholds per SCF run)
_MAX_CLASS_PLANS = 8


class NonFiniteERIError(RuntimeError):
    """An ERI block came back NaN/Inf and no rescue path could fix it."""

    def __init__(self, quartet: tuple[int, int, int, int], detail: str = ""):
        self.quartet = quartet
        msg = f"ERI quartet {quartet} is non-finite"
        super().__init__(msg + (f": {detail}" if detail else ""))


def canonical_quartet(
    m: int, n: int, p: int, q: int
) -> tuple[tuple[int, int, int, int], tuple[int, int, int, int]]:
    """The 8-fold-canonical form of a quartet and the restoring transpose.

    Returns ``(key, perm)`` with ``key`` the canonical (bra-sorted,
    ket-sorted, bra >= ket) index tuple and ``perm`` the axis permutation
    such that ``np.transpose(block(key), perm)`` is the requested
    ``block(m, n, p, q)`` (Eq 4's permutational symmetry).
    """
    bra = (m, n) if m >= n else (n, m)
    ket = (p, q) if p >= q else (q, p)
    key = bra + ket if bra >= ket else ket + bra
    for perm in _EIGHT_PERMUTATIONS:
        if (key[perm[0]], key[perm[1]], key[perm[2]], key[perm[3]]) == (m, n, p, q):
            return key, perm
    raise AssertionError("unreachable: canonical orbit must contain the quartet")


class QuartetCache:
    """Bounded LRU cache of canonical ERI quartet blocks.

    Eviction is by total held bytes (``max_bytes``), least recently used
    first.  Blocks are stored for the canonical index tuple only; all 8
    permutation images are served as transposed *views* of the one stored
    array, so callers must treat returned blocks as read-only (every Fock
    builder in this library does).

    Hit/miss/eviction counts and held bytes are mirrored to the
    process-wide :mod:`repro.obs` metrics registry
    (``repro_eri_cache_{hits,misses,evictions}_total`` and the
    ``repro_eri_cache_bytes`` gauge).
    """

    def __init__(self, max_bytes: int):
        if max_bytes <= 0:
            raise ValueError(f"cache bound must be positive, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self._blocks: OrderedDict[tuple[int, int, int, int], np.ndarray] = (
            OrderedDict()
        )
        self.bytes_held = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def get(self, key: tuple[int, int, int, int]) -> np.ndarray | None:
        """The cached canonical block, or None (counts a hit/miss)."""
        block = self._blocks.get(key)
        if block is None:
            self.misses += 1
            get_metrics().counter(
                "repro_eri_cache_misses_total", "quartet cache misses"
            ).inc()
            return None
        self._blocks.move_to_end(key)
        self.hits += 1
        get_metrics().counter(
            "repro_eri_cache_hits_total", "quartet cache hits"
        ).inc()
        return block

    def put(self, key: tuple[int, int, int, int], block: np.ndarray) -> None:
        """Insert a canonical block, evicting LRU entries past the bound."""
        if block.nbytes > self.max_bytes:
            return  # single block exceeds the whole budget: never cacheable
        self._blocks[key] = block
        self._blocks.move_to_end(key)
        self.bytes_held += block.nbytes
        metrics = get_metrics()
        while self.bytes_held > self.max_bytes:
            _, old = self._blocks.popitem(last=False)
            self.bytes_held -= old.nbytes
            self.evictions += 1
            metrics.counter(
                "repro_eri_cache_evictions_total", "quartet cache evictions"
            ).inc()
        metrics.gauge(
            "repro_eri_cache_bytes", "bytes held by the quartet cache"
        ).set(self.bytes_held)

    def clear(self) -> None:
        self._blocks.clear()
        self.bytes_held = 0

    def stats(self) -> dict:
        """Snapshot for reports/tests."""
        total = self.hits + self.misses
        return {
            "entries": len(self._blocks),
            "bytes_held": self.bytes_held,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hits / total if total else 0.0,
        }


class ERIEngine(abc.ABC):
    """Interface between integral generation and Fock construction."""

    def __init__(
        self,
        basis: BasisSet,
        cache_mb: float | None = None,
        store: str | Path | ERIStore | None = None,
    ):
        self.basis = basis
        self._schwarz: np.ndarray | None = None
        #: number of quartet blocks actually computed (used by
        #: benchmarks/tests; cache service is counted separately)
        self.quartets_computed = 0
        #: number of quartet() calls answered from the LRU cache
        self.quartets_served_from_cache = 0
        #: number of quartet blocks read back from the integral store
        self.quartets_served_from_store = 0
        self.quartet_cache: QuartetCache | None = None
        #: opt-in memory-mapped stored-integral layer (conventional SCF)
        self.integral_store: ERIStore | None = None
        #: NaN/Inf sentinel on computed blocks (armed by the SCF guard);
        #: off by default so the hot path carries zero extra cost
        self.finite_check = False
        #: blocks rescued by the per-quartet reference-kernel fallback
        self.eri_rescues = 0
        #: store blocks that failed their CRC and were recomputed
        #: (class-batched path; the per-quartet path recomputes via
        #: ``store.get`` returning None, tallied in the store's own
        #: ``crc_mismatches``)
        self.crc_rescues = 0
        #: seeded numerical-corruption hook (the ``scf`` fault family);
        #: see :class:`repro.runtime.faults.SCFFaultState`
        self.scf_faults = None
        #: memoized class-batched execution plans, keyed by tau
        self._class_plans: OrderedDict[float, ClassPlan] = OrderedDict()
        if cache_mb is not None:
            self.enable_quartet_cache(cache_mb)
        if store is not None:
            self.attach_store(store)

    @abc.abstractmethod
    def _quartet(self, m: int, n: int, p: int, q: int) -> np.ndarray: ...

    @abc.abstractmethod
    def _build_schwarz(self) -> np.ndarray: ...

    def enable_quartet_cache(self, max_mb: float = 32.0) -> QuartetCache:
        """Attach a bounded LRU canonical-quartet cache (``max_mb`` MiB)."""
        self.quartet_cache = QuartetCache(int(max_mb * 2**20))
        return self.quartet_cache

    def disable_quartet_cache(self) -> None:
        self.quartet_cache = None

    def attach_store(self, store: str | Path | ERIStore) -> ERIStore:
        """Layer a memory-mapped integral store under the LRU cache.

        Accepts a directory path (an :class:`ERIStore` is created and
        opened there) or an already-constructed store.  An existing
        on-disk store is reused only if its manifest fingerprint matches
        this engine's basis; otherwise it is invalidated (with a
        warning) and refilled from the next Fock build.
        """
        if not isinstance(store, ERIStore):
            store = ERIStore(store, self.basis)
        self.integral_store = store.open_or_fill()
        return self.integral_store

    def detach_store(self) -> None:
        self.integral_store = None

    @property
    def supports_class_batched(self) -> bool:
        """Whether the cross-quartet class-batched J/K path applies."""
        return False

    def class_plan(self, tau: float) -> ClassPlan:
        """The class-batched execution plan for threshold ``tau``, memoized.

        Plans depend only on the basis and the Schwarz-screened quartet
        set, so one plan serves every SCF iteration at a given ``tau``
        (a small LRU absorbs the incremental builder's varying effective
        thresholds).  Planning time lands in the ``class_plan`` profiler
        phase.
        """
        plan = self._class_plans.get(tau)
        if plan is not None:
            self._class_plans.move_to_end(tau)
            return plan
        from repro.obs.profile import PHASE_CLASS_PLAN, get_profiler

        with get_profiler().phase(PHASE_CLASS_PLAN):
            plan = build_class_plan(
                self.basis,
                getattr(self, "pair_cache", None),
                iter_canonical_quartets(self.schwarz(), tau),
            )
        self._class_plans[tau] = plan
        while len(self._class_plans) > _MAX_CLASS_PLANS:
            self._class_plans.popitem(last=False)
        return plan

    def quartet(self, m: int, n: int, p: int, q: int) -> np.ndarray:
        """ERI block (MN|PQ) for shell indices, basis-function shape.

        With the quartet cache enabled, blocks are computed for the
        canonical index tuple only and every permutation image is served
        as a transposed view -- treat the result as read-only.  An
        attached ready integral store is consulted between the cache and
        the kernel; a filling store records every computed canonical
        block.
        """
        cache = self.quartet_cache
        store = self.integral_store
        if cache is None and store is None:
            self.quartets_computed += 1
            block = self._quartet(m, n, p, q)
            # sum-reduction sentinel: any NaN/Inf element makes the sum
            # non-finite, without materialising a bool array per block
            if self.finite_check and not np.isfinite(block.sum()):
                block = self._rescue_quartet(m, n, p, q)
            return block
        key, perm = canonical_quartet(m, n, p, q)
        block = cache.get(key) if cache is not None else None
        if block is None and store is not None and store.ready:
            block = store.get(key)
            if block is not None:
                self.quartets_served_from_store += 1
                if cache is not None:
                    cache.put(key, block)
        elif block is not None:
            self.quartets_served_from_cache += 1
        if block is None:
            self.quartets_computed += 1
            block = self._quartet(*key)
            if self.finite_check and not np.isfinite(block.sum()):
                block = self._rescue_quartet(*key)
            if store is not None and store.filling:
                store.record(key, block)
            if cache is not None:
                cache.put(key, block)
        if perm == _IDENTITY:
            return block
        return np.transpose(block, perm)

    def _rescue_quartet(self, m: int, n: int, p: int, q: int) -> np.ndarray:
        """Last resort for a non-finite block; engines without an
        independent slow path have nothing to degrade to."""
        raise NonFiniteERIError((m, n, p, q), "engine has no rescue path")

    @property
    def supports_reference_path(self) -> bool:
        """Whether :meth:`force_reference_path` can do anything here."""
        return False

    def force_reference_path(self) -> None:
        """Permanently drop to the engine's reference kernel (no-op here)."""

    def schwarz(self) -> np.ndarray:
        """Shell-pair screening values sigma(M,N), cached."""
        if self._schwarz is None:
            from repro.obs.profile import PHASE_SCHWARZ, get_profiler

            with get_profiler().phase(PHASE_SCHWARZ):
                self._schwarz = self._build_schwarz()
        return self._schwarz


class MDEngine(ERIEngine):
    """Real ERIs via McMurchie-Davidson (production engine).

    By default quartets go through the batched primitive kernel fed by a
    per-basis :class:`~repro.integrals.pairdata.ShellPairData` cache;
    ``batched=False`` falls back to the seed per-primitive path (kept as
    the cross-validation reference and for A/B benchmarking).
    """

    def __init__(
        self,
        basis: BasisSet,
        model_schwarz: bool = False,
        batched: bool = True,
        class_batched: bool = True,
        cache_mb: float | None = None,
        store: str | Path | ERIStore | None = None,
    ):
        super().__init__(basis, cache_mb=cache_mb, store=store)
        self.model_schwarz = model_schwarz
        self.batched = batched
        #: opt out of the cross-quartet class-batched J/K path while
        #: keeping the per-quartet batched kernel (A/B benchmarking)
        self.class_batched = class_batched
        self.pair_cache: ShellPairData | None = (
            ShellPairData(basis) if batched else None
        )

    def _quartet(self, m: int, n: int, p: int, q: int) -> np.ndarray:
        sh = self.basis.shells
        if self.pair_cache is not None:
            block = eri_shell_quartet_batched(
                sh[m], sh[n], sh[p], sh[q],
                bra=self.pair_cache.get(m, n),
                ket=self.pair_cache.get(p, q),
            )
            if self.scf_faults is not None:
                # the scf fault family models a bug in the *fast* kernel:
                # corruption never touches the reference path below
                block = self.scf_faults.corrupt_quartet(block, (m, n, p, q))
            return block
        return eri_shell_quartet(sh[m], sh[n], sh[p], sh[q])

    def _rescue_quartet(self, m: int, n: int, p: int, q: int) -> np.ndarray:
        """Graceful degradation at quartet granularity.

        A non-finite batched block is recomputed on the independent
        per-primitive reference kernel (the two agree to ~3e-15 per
        element, so a rescued build stays inside the 1e-12 chaos gate).
        """
        sh = self.basis.shells
        block = eri_shell_quartet(sh[m], sh[n], sh[p], sh[q])
        if not np.isfinite(block).all():
            raise NonFiniteERIError(
                (m, n, p, q), "reference kernel is non-finite too"
            )
        self.eri_rescues += 1
        get_metrics().counter(
            "repro_scf_guard_eri_rescues_total",
            "non-finite batched ERI blocks recomputed on the reference kernel",
        ).inc()
        return block

    @property
    def supports_reference_path(self) -> bool:
        return True

    @property
    def supports_class_batched(self) -> bool:
        """The cross-quartet path shares the batched MD kernel math, so
        it is available exactly when the batched kernel is (and not
        explicitly opted out)."""
        return (
            self.class_batched and self.batched and self.pair_cache is not None
        )

    def force_reference_path(self) -> None:
        """Permanently fall back to the per-primitive reference kernel.

        The guard's last ladder rung: disables the batched kernel, its
        pair cache, and the class-batched plans, clears the quartet
        cache, and detaches any integral store (cached and stored blocks
        may have come from the distrusted fast path).
        """
        self.batched = False
        self.pair_cache = None
        self._class_plans.clear()
        self.integral_store = None
        if self.quartet_cache is not None:
            self.quartet_cache.clear()

    def _build_schwarz(self) -> np.ndarray:
        if self.model_schwarz:
            return schwarz_model(self.basis)
        return schwarz_matrix(self.basis)


class OSEngine(ERIEngine):
    """Real ERIs via Obara-Saika (validation engine, Table V comparator)."""

    def _quartet(self, m: int, n: int, p: int, q: int) -> np.ndarray:
        sh = self.basis.shells
        return eri_shell_quartet_os(sh[m], sh[n], sh[p], sh[q])

    def _build_schwarz(self) -> np.ndarray:
        return schwarz_matrix(self.basis)


class SyntheticERIEngine(ERIEngine):
    """Deterministic symmetric fake ERIs with closed-form contractions.

    ``(ij|kl) = u_i u_j u_k u_l + v_ij v_kl`` with
    ``v_ij = w_i w_j exp(-gamma d_ij^2)`` (d = distance between the owning
    shells' centers).  This satisfies all permutational symmetries of
    Eq (4) exactly and decays with distance like real integrals, so
    Cauchy-Schwarz screening behaves realistically.

    Closed forms used by :meth:`coulomb_exact` / :meth:`exchange_exact`::

        J = (u^T D u) u u^T + (sum_kl D_kl v_kl) V
        K = (u^T D u) u u^T + V D V
    """

    def __init__(self, basis: BasisSet, gamma: float = 0.08, seed: int = 7):
        super().__init__(basis)
        rng = np.random.default_rng(seed)
        n = basis.nbf
        self.u = rng.uniform(0.05, 0.25, n)
        w = rng.uniform(0.3, 1.0, n)
        # function -> shell center map
        centers = np.empty((n, 3))
        for s in range(basis.nshells):
            centers[basis.shell_slice(s)] = basis.shells[s].center
        diff = centers[:, None, :] - centers[None, :, :]
        d2 = np.einsum("ijd,ijd->ij", diff, diff)
        self.v = w[:, None] * w[None, :] * np.exp(-gamma * d2)

    def _quartet(self, m: int, n: int, p: int, q: int) -> np.ndarray:
        b = self.basis
        sm, sn, sp, sq = (b.shell_slice(s) for s in (m, n, p, q))
        u = self.u
        out = (
            u[sm, None, None, None]
            * u[None, sn, None, None]
            * u[None, None, sp, None]
            * u[None, None, None, sq]
        )
        out = out + self.v[sm, sn][:, :, None, None] * self.v[sp, sq][None, None, :, :]
        return out

    def _build_schwarz(self) -> np.ndarray:
        # sigma(M,N) = max_{ij in MN} sqrt((ij|ij)); (ij|ij) = u_i^2 u_j^2 + v_ij^2
        b = self.basis
        fn = np.sqrt(self.u[:, None] ** 2 * self.u[None, :] ** 2 + self.v**2)
        ns = b.nshells
        sigma = np.empty((ns, ns))
        offsets = b.offsets
        for m in range(ns):
            rows = fn[offsets[m] : offsets[m + 1]]
            # reduce function rows to shell blocks along columns
            col_max = np.maximum.reduceat(rows.max(axis=0), offsets[:-1])
            sigma[m] = col_max
        return sigma

    # -- exact closed-form contractions (for validation) --------------------

    def coulomb_exact(self, density: np.ndarray) -> np.ndarray:
        """J_ij = sum_kl D_kl (kl|ij), computed in O(n^2)."""
        s1 = float(self.u @ density @ self.u)
        s2 = float(np.sum(density * self.v))
        return s1 * np.outer(self.u, self.u) + s2 * self.v

    def exchange_exact(self, density: np.ndarray) -> np.ndarray:
        """K_ij = sum_kl D_kl (ki|lj), computed in O(n^2) + one matmul."""
        s1 = float(self.u @ density @ self.u)
        return s1 * np.outer(self.u, self.u) + self.v @ density @ self.v

    def fock_exact(self, hcore: np.ndarray, density: np.ndarray) -> np.ndarray:
        """F = Hcore + 2J - K with *no screening* (tau = 0 reference)."""
        return hcore + 2.0 * self.coulomb_exact(density) - self.exchange_exact(density)
