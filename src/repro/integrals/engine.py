"""ERI engine abstraction consumed by all Fock builders.

An engine supplies two things:

* ``quartet(M, N, P, Q)`` -- the ERI block for four shell indices;
* ``schwarz()`` -- the shell-pair screening matrix sigma.

Engines provided:

* :class:`MDEngine` / :class:`OSEngine` -- real integrals
  (McMurchie-Davidson / Obara-Saika).
* :class:`SyntheticERIEngine` -- deterministic separable fake integrals
  with the full 8-fold permutational symmetry and distance-based decay.
  They admit *closed-form* J/K contractions, so distributed Fock builds
  on medium-size systems can be validated exactly without O(n^4) work.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.integrals.eri_md import eri_shell_quartet
from repro.integrals.eri_os import eri_shell_quartet_os
from repro.integrals.schwarz import schwarz_matrix, schwarz_model


class ERIEngine(abc.ABC):
    """Interface between integral generation and Fock construction."""

    def __init__(self, basis: BasisSet):
        self.basis = basis
        self._schwarz: np.ndarray | None = None
        #: number of quartet() calls served (used by benchmarks/tests)
        self.quartets_computed = 0

    @abc.abstractmethod
    def _quartet(self, m: int, n: int, p: int, q: int) -> np.ndarray: ...

    @abc.abstractmethod
    def _build_schwarz(self) -> np.ndarray: ...

    def quartet(self, m: int, n: int, p: int, q: int) -> np.ndarray:
        """ERI block (MN|PQ) for shell indices, basis-function shape."""
        self.quartets_computed += 1
        return self._quartet(m, n, p, q)

    def schwarz(self) -> np.ndarray:
        """Shell-pair screening values sigma(M,N), cached."""
        if self._schwarz is None:
            self._schwarz = self._build_schwarz()
        return self._schwarz


class MDEngine(ERIEngine):
    """Real ERIs via McMurchie-Davidson (production engine)."""

    def __init__(self, basis: BasisSet, model_schwarz: bool = False):
        super().__init__(basis)
        self.model_schwarz = model_schwarz

    def _quartet(self, m: int, n: int, p: int, q: int) -> np.ndarray:
        sh = self.basis.shells
        return eri_shell_quartet(sh[m], sh[n], sh[p], sh[q])

    def _build_schwarz(self) -> np.ndarray:
        if self.model_schwarz:
            return schwarz_model(self.basis)
        return schwarz_matrix(self.basis)


class OSEngine(ERIEngine):
    """Real ERIs via Obara-Saika (validation engine, Table V comparator)."""

    def _quartet(self, m: int, n: int, p: int, q: int) -> np.ndarray:
        sh = self.basis.shells
        return eri_shell_quartet_os(sh[m], sh[n], sh[p], sh[q])

    def _build_schwarz(self) -> np.ndarray:
        return schwarz_matrix(self.basis)


class SyntheticERIEngine(ERIEngine):
    """Deterministic symmetric fake ERIs with closed-form contractions.

    ``(ij|kl) = u_i u_j u_k u_l + v_ij v_kl`` with
    ``v_ij = w_i w_j exp(-gamma d_ij^2)`` (d = distance between the owning
    shells' centers).  This satisfies all permutational symmetries of
    Eq (4) exactly and decays with distance like real integrals, so
    Cauchy-Schwarz screening behaves realistically.

    Closed forms used by :meth:`coulomb_exact` / :meth:`exchange_exact`::

        J = (u^T D u) u u^T + (sum_kl D_kl v_kl) V
        K = (u^T D u) u u^T + V D V
    """

    def __init__(self, basis: BasisSet, gamma: float = 0.08, seed: int = 7):
        super().__init__(basis)
        rng = np.random.default_rng(seed)
        n = basis.nbf
        self.u = rng.uniform(0.05, 0.25, n)
        w = rng.uniform(0.3, 1.0, n)
        # function -> shell center map
        centers = np.empty((n, 3))
        for s in range(basis.nshells):
            centers[basis.shell_slice(s)] = basis.shells[s].center
        diff = centers[:, None, :] - centers[None, :, :]
        d2 = np.einsum("ijd,ijd->ij", diff, diff)
        self.v = w[:, None] * w[None, :] * np.exp(-gamma * d2)

    def _quartet(self, m: int, n: int, p: int, q: int) -> np.ndarray:
        b = self.basis
        sm, sn, sp, sq = (b.shell_slice(s) for s in (m, n, p, q))
        u = self.u
        out = (
            u[sm, None, None, None]
            * u[None, sn, None, None]
            * u[None, None, sp, None]
            * u[None, None, None, sq]
        )
        out = out + self.v[sm, sn][:, :, None, None] * self.v[sp, sq][None, None, :, :]
        return out

    def _build_schwarz(self) -> np.ndarray:
        # sigma(M,N) = max_{ij in MN} sqrt((ij|ij)); (ij|ij) = u_i^2 u_j^2 + v_ij^2
        b = self.basis
        fn = np.sqrt(self.u[:, None] ** 2 * self.u[None, :] ** 2 + self.v**2)
        ns = b.nshells
        sigma = np.empty((ns, ns))
        offsets = b.offsets
        for m in range(ns):
            rows = fn[offsets[m] : offsets[m + 1]]
            # reduce function rows to shell blocks along columns
            col_max = np.maximum.reduceat(rows.max(axis=0), offsets[:-1])
            sigma[m] = col_max
        return sigma

    # -- exact closed-form contractions (for validation) --------------------

    def coulomb_exact(self, density: np.ndarray) -> np.ndarray:
        """J_ij = sum_kl D_kl (kl|ij), computed in O(n^2)."""
        s1 = float(self.u @ density @ self.u)
        s2 = float(np.sum(density * self.v))
        return s1 * np.outer(self.u, self.u) + s2 * self.v

    def exchange_exact(self, density: np.ndarray) -> np.ndarray:
        """K_ij = sum_kl D_kl (ki|lj), computed in O(n^2) + one matmul."""
        s1 = float(self.u @ density @ self.u)
        return s1 * np.outer(self.u, self.u) + self.v @ density @ self.v

    def fock_exact(self, hcore: np.ndarray, density: np.ndarray) -> np.ndarray:
        """F = Hcore + 2J - K with *no screening* (tau = 0 reference)."""
        return hcore + 2.0 * self.coulomb_exact(density) - self.exchange_exact(density)
