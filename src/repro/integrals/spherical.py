"""Cartesian -> real solid-harmonic (spherical) transformations.

Supported through l = 2, which covers every basis set shipped with this
library (cc-pVDZ-structured sets top out at d shells).  The coefficients
assume *individually normalized* Cartesian components (this library's
convention) and produce unit-normalized spherical functions.

Spherical d ordering: m = -2, -1, 0, +1, +2, i.e.
``xy, yz, z^2, xz, x^2-y^2``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.chem.basis.shells import Shell, ncart, nsph

_SQRT3_OVER_2 = math.sqrt(3.0) / 2.0

# rows: spherical m = -2..+2; cols: cartesian xx, xy, xz, yy, yz, zz
_D_TRANSFORM = np.array(
    [
        [0.0, 1.0, 0.0, 0.0, 0.0, 0.0],  # m=-2: xy
        [0.0, 0.0, 0.0, 0.0, 1.0, 0.0],  # m=-1: yz
        [-0.5, 0.0, 0.0, -0.5, 0.0, 1.0],  # m= 0: (2zz - xx - yy)/2-ish
        [0.0, 0.0, 1.0, 0.0, 0.0, 0.0],  # m=+1: xz
        [_SQRT3_OVER_2, 0.0, 0.0, -_SQRT3_OVER_2, 0.0, 0.0],  # m=+2
    ]
)


def transform_matrix(l: int) -> np.ndarray:
    """The (nsph x ncart) transform for angular momentum ``l``."""
    if l == 0:
        return np.ones((1, 1))
    if l == 1:
        return np.eye(3)
    if l == 2:
        return _D_TRANSFORM.copy()
    raise NotImplementedError(f"spherical transform not implemented for l={l}")


def shell_transform(shell: Shell) -> np.ndarray:
    """Transform from this shell's Cartesian components to its basis functions.

    Identity-shaped for Cartesian shells; the solid-harmonic matrix for
    pure shells.
    """
    if shell.pure:
        return transform_matrix(shell.l)
    return np.eye(ncart(shell.l))


def apply_transforms(block: np.ndarray, shells: tuple[Shell, ...]) -> np.ndarray:
    """Apply per-axis shell transforms to a Cartesian integral block.

    ``block`` has one axis per shell (2 axes for one-electron blocks,
    4 for ERIs), each of Cartesian length; pure axes are contracted down
    to spherical length.
    """
    if block.ndim != len(shells):
        raise ValueError(
            f"block rank {block.ndim} does not match {len(shells)} shells"
        )
    out = block
    for axis, sh in enumerate(shells):
        if sh.pure:
            t = transform_matrix(sh.l)
            out = np.tensordot(t, out, axes=([1], [axis]))
            out = np.moveaxis(out, 0, axis)
        elif out.shape[axis] != ncart(sh.l):
            raise ValueError(
                f"axis {axis} has length {out.shape[axis]}, expected {ncart(sh.l)}"
            )
    expected = tuple(nsph(sh.l) if sh.pure else ncart(sh.l) for sh in shells)
    if out.shape != expected:
        raise AssertionError(f"transformed shape {out.shape} != {expected}")
    return out
