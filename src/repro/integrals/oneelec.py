"""One-electron integrals: overlap S, kinetic T, nuclear attraction V.

These form the overlap matrix S (for the basis orthogonalization
``X = U s^{-1/2}``) and the core Hamiltonian ``H^core = T + V`` of
Algorithm 1 in the paper.  They are computed once per SCF run, so clarity
wins over micro-optimization; the shell-pair structure mirrors the ERI
code.
"""

from __future__ import annotations

import math

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.chem.basis.shells import Shell, cartesian_components, component_scale
from repro.integrals.hermite import e_coefficients, r_tensor
from repro.integrals.spherical import apply_transforms


def _pair_e1d(sh_a: Shell, sh_b: Shell, extra_b: int = 0):
    """Per-primitive-pair 1-D Hermite coefficients for the three directions.

    Yields ``(ca*cb, p, P, (Ex, Ey, Ez))`` for every primitive pair, where
    the E arrays allow 1-D angular momenta up to ``la`` and ``lb+extra_b``.
    """
    la, lb = sh_a.l, sh_b.l
    A, B = sh_a.center, sh_b.center
    for a, ca in zip(sh_a.exps, sh_a.norm_coefs):
        for b, cb in zip(sh_b.exps, sh_b.norm_coefs):
            p = a + b
            P = (a * A + b * B) / p
            es = tuple(
                e_coefficients(la, lb + extra_b, a, b, float(A[d] - B[d]))
                for d in range(3)
            )
            yield ca * cb, a, b, p, P, es


def overlap_block(sh_a: Shell, sh_b: Shell) -> np.ndarray:
    """Overlap block between two shells (basis-function shape)."""
    comps_a = cartesian_components(sh_a.l)
    comps_b = cartesian_components(sh_b.l)
    block = np.zeros((len(comps_a), len(comps_b)))
    for coef, _a, _b, p, _P, (ex, ey, ez) in _pair_e1d(sh_a, sh_b):
        pref = coef * (math.pi / p) ** 1.5
        for ia, (ax, ay, az) in enumerate(comps_a):
            for ib, (bx, by, bz) in enumerate(comps_b):
                block[ia, ib] += pref * ex[ax, bx, 0] * ey[ay, by, 0] * ez[az, bz, 0]
    _scale_components(block, sh_a, sh_b)
    return apply_transforms(block, (sh_a, sh_b))


def kinetic_block(sh_a: Shell, sh_b: Shell) -> np.ndarray:
    """Kinetic-energy block ``-1/2 <a|del^2|b>`` between two shells."""
    comps_a = cartesian_components(sh_a.l)
    comps_b = cartesian_components(sh_b.l)
    block = np.zeros((len(comps_a), len(comps_b)))
    for coef, _a, b, p, _P, (ex, ey, ez) in _pair_e1d(sh_a, sh_b, extra_b=2):
        pref = coef * (math.pi / p) ** 1.5
        for ia, (ax, ay, az) in enumerate(comps_a):
            for ib, (bx, by, bz) in enumerate(comps_b):
                sx, sy, sz = ex[ax, bx, 0], ey[ay, by, 0], ez[az, bz, 0]
                tx = _kin1d(ex, ax, bx, b)
                ty = _kin1d(ey, ay, by, b)
                tz = _kin1d(ez, az, bz, b)
                block[ia, ib] += pref * (tx * sy * sz + sx * ty * sz + sx * sy * tz)
    _scale_components(block, sh_a, sh_b)
    return apply_transforms(block, (sh_a, sh_b))


def nuclear_attraction_block(
    sh_a: Shell, sh_b: Shell, charges: np.ndarray, positions: np.ndarray
) -> np.ndarray:
    """Nuclear-attraction block ``-sum_C Z_C <a| 1/|r-C| |b>``."""
    comps_a = cartesian_components(sh_a.l)
    comps_b = cartesian_components(sh_b.l)
    ltot = sh_a.l + sh_b.l
    block = np.zeros((len(comps_a), len(comps_b)))
    for coef, _a, _b, p, P, (ex, ey, ez) in _pair_e1d(sh_a, sh_b):
        pref = coef * 2.0 * math.pi / p
        for z, c in zip(charges, positions):
            r = r_tensor(ltot, p, P - c)
            for ia, (ax, ay, az) in enumerate(comps_a):
                for ib, (bx, by, bz) in enumerate(comps_b):
                    acc = 0.0
                    for t in range(ax + bx + 1):
                        for u in range(ay + by + 1):
                            for v in range(az + bz + 1):
                                acc += (
                                    ex[ax, bx, t]
                                    * ey[ay, by, u]
                                    * ez[az, bz, v]
                                    * r[t, u, v]
                                )
                    block[ia, ib] -= pref * z * acc
    _scale_components(block, sh_a, sh_b)
    return apply_transforms(block, (sh_a, sh_b))


def _kin1d(e: np.ndarray, i: int, j: int, b: float) -> float:
    """1-D kinetic factor from overlap coefficients E with lb extended by 2."""
    term = -2.0 * b * b * e[i, j + 2, 0] + b * (2 * j + 1) * e[i, j, 0]
    if j >= 2:
        term -= 0.5 * j * (j - 1) * e[i, j - 2, 0]
    return term


def _scale_components(block: np.ndarray, sh_a: Shell, sh_b: Shell) -> None:
    """Apply per-component angular normalization in place (Cartesian block)."""
    sa = np.array([component_scale(*c) for c in cartesian_components(sh_a.l)])
    sb = np.array([component_scale(*c) for c in cartesian_components(sh_b.l)])
    block *= sa[:, None] * sb[None, :]


def _assemble(basis: BasisSet, block_fn) -> np.ndarray:
    n = basis.nbf
    out = np.zeros((n, n))
    for i in range(basis.nshells):
        si = basis.shell_slice(i)
        for j in range(i + 1):
            sj = basis.shell_slice(j)
            blk = block_fn(basis.shells[i], basis.shells[j])
            out[si, sj] = blk
            if i != j:
                out[sj, si] = blk.T
    return out


def overlap(basis: BasisSet) -> np.ndarray:
    """Full overlap matrix S, shape (nbf, nbf)."""
    return _assemble(basis, overlap_block)


def kinetic(basis: BasisSet) -> np.ndarray:
    """Full kinetic-energy matrix T."""
    return _assemble(basis, kinetic_block)


def nuclear_attraction(basis: BasisSet) -> np.ndarray:
    """Full nuclear-attraction matrix V (includes the -Z sign)."""
    charges = basis.molecule.numbers.astype(float)
    positions = basis.molecule.coords
    return _assemble(
        basis, lambda a, b: nuclear_attraction_block(a, b, charges, positions)
    )


def core_hamiltonian(basis: BasisSet) -> np.ndarray:
    """H^core = T + V (line 2 of Algorithm 1 in the paper)."""
    return kinetic(basis) + nuclear_attraction(basis)
