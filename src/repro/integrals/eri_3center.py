"""Two- and three-center electron repulsion integrals.

``(ab|P)`` and ``(P|Q)`` over auxiliary shells, the building blocks of
density fitting (RI).  Both reduce to the McMurchie-Davidson bilinear
form with the auxiliary side expanded as a *single* Gaussian shell: its
Hermite expansion is an (l, 0) pair with a zero second exponent, for
which all E recurrences stay valid (the product prefactor is 1 and the
composite center is the shell's own center).
"""

from __future__ import annotations

import math

import numpy as np

from repro.chem.basis.shells import Shell, cartesian_components, component_scale
from repro.integrals.eri_md import _pair_hermite
from repro.integrals.hermite import e_coefficients, hermite_index, r_tensor
from repro.integrals.spherical import apply_transforms


def _single_hermite(sh: Shell):
    """Hermite expansion records of one shell as a charge distribution.

    Returns the same record structure as
    :func:`repro.integrals.eri_md._pair_hermite`: per primitive,
    ``(coef, exponent, center, E[ncart, 1, nh])``.
    """
    l = sh.l
    comps = cartesian_components(l)
    hidx = hermite_index(l)
    tt = np.array([h[0] for h in hidx])
    uu = np.array([h[1] for h in hidx])
    vv = np.array([h[2] for h in hidx])
    cx = np.array([c[0] for c in comps])
    cy = np.array([c[1] for c in comps])
    cz = np.array([c[2] for c in comps])
    records = []
    for a, ca in zip(sh.exps, sh.norm_coefs):
        ex = e_coefficients(l, 0, a, 0.0, 0.0)
        ey = ex  # AB distance is 0 in all directions for a single center
        ez = ex
        e = (
            ex[cx[:, None], 0, tt[None, :]]
            * ey[cy[:, None], 0, uu[None, :]]
            * ez[cz[:, None], 0, vv[None, :]]
        )[:, None, :]
        records.append((ca, a, sh.center, e))
    return records, (tt, uu, vv)


def eri_3center_block(sh_a: Shell, sh_b: Shell, sh_p: Shell) -> np.ndarray:
    """The block ``(ab|P)`` with basis-function shape (na, nb, nP)."""
    bra, (tb, ub, vb) = _pair_hermite(sh_a, sh_b)
    ket, (tk, uk, vk) = _single_hermite(sh_p)
    lmax = sh_a.l + sh_b.l + sh_p.l
    ket_sign = (-1.0) ** (tk + uk + vk)
    na = len(cartesian_components(sh_a.l))
    nb = len(cartesian_components(sh_b.l))
    np_ = len(cartesian_components(sh_p.l))
    out = np.zeros((na, nb, np_))
    two_pi_52 = 2.0 * math.pi**2.5
    for cab, p, pc, eab in bra:
        for cp, q, qc, ep in ket:
            alpha = p * q / (p + q)
            r = r_tensor(lmax, alpha, pc - qc)
            rmat = (
                r[
                    tb[:, None] + tk[None, :],
                    ub[:, None] + uk[None, :],
                    vb[:, None] + vk[None, :],
                ]
                * ket_sign[None, :]
            )
            pref = cab * cp * two_pi_52 / (p * q * math.sqrt(p + q))
            out += pref * np.einsum(
                "abi,ij,cj->abc", eab, rmat, ep[:, 0, :], optimize=True
            )
    for axis, sh in enumerate((sh_a, sh_b, sh_p)):
        scales = np.array([component_scale(*c) for c in cartesian_components(sh.l)])
        shape = [1, 1, 1]
        shape[axis] = len(scales)
        out *= scales.reshape(shape)
    return apply_transforms(out, (sh_a, sh_b, sh_p))


def eri_2center_block(sh_p: Shell, sh_q: Shell) -> np.ndarray:
    """The metric block ``(P|Q)`` with shape (nP, nQ)."""
    ketp, (tb, ub, vb) = _single_hermite(sh_p)
    ketq, (tk, uk, vk) = _single_hermite(sh_q)
    lmax = sh_p.l + sh_q.l
    ket_sign = (-1.0) ** (tk + uk + vk)
    np_ = len(cartesian_components(sh_p.l))
    nq = len(cartesian_components(sh_q.l))
    out = np.zeros((np_, nq))
    two_pi_52 = 2.0 * math.pi**2.5
    for cp, p, pc, ep in ketp:
        for cq, q, qc, eq in ketq:
            alpha = p * q / (p + q)
            r = r_tensor(lmax, alpha, pc - qc)
            rmat = (
                r[
                    tb[:, None] + tk[None, :],
                    ub[:, None] + uk[None, :],
                    vb[:, None] + vk[None, :],
                ]
                * ket_sign[None, :]
            )
            pref = cp * cq * two_pi_52 / (p * q * math.sqrt(p + q))
            out += pref * ep[:, 0, :] @ rmat @ eq[:, 0, :].T
    for axis, sh in enumerate((sh_p, sh_q)):
        scales = np.array([component_scale(*c) for c in cartesian_components(sh.l)])
        shape = [1, 1]
        shape[axis] = len(scales)
        out *= scales.reshape(shape)
    return apply_transforms(out, (sh_p, sh_q))
