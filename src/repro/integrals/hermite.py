"""McMurchie-Davidson Hermite machinery.

Two building blocks:

* :func:`e_coefficients` -- the 1-D Hermite expansion coefficients
  ``E_t^{ij}`` that express a product of two Cartesian Gaussians as a sum
  of Hermite Gaussians (one array per Cartesian direction).
* :func:`r_tensor` -- the Hermite Coulomb integrals ``R_{tuv}`` obtained
  from Boys-function values by the standard upward recursion.

Everything downstream (overlap, kinetic, nuclear attraction, ERIs) is a
contraction of these two objects.
"""

from __future__ import annotations

import math

import numpy as np

from repro.integrals.boys import boys, boys_array


def e_coefficients(la: int, lb: int, a: float, b: float, ab_dist: float) -> np.ndarray:
    """Hermite expansion coefficients for one Cartesian direction.

    Returns ``E[i, j, t]`` of shape (la+1, lb+1, la+lb+1) with the
    convention ``E[i, j, t] = 0`` for ``t > i + j``.

    Parameters
    ----------
    la, lb:
        Maximum 1-D angular momenta of the two centers.
    a, b:
        Primitive exponents.
    ab_dist:
        ``A_x - B_x`` (the coordinate difference along this direction).
    """
    p = a + b
    mu = a * b / p
    one_over_2p = 0.5 / p
    # distances from the Gaussian product center P
    pa = -b / p * ab_dist  # P - A
    pb = a / p * ab_dist  # P - B

    E = np.zeros((la + 1, lb + 1, la + lb + 1))
    E[0, 0, 0] = math.exp(-mu * ab_dist * ab_dist)
    # build up i with j = 0
    for i in range(1, la + 1):
        tmax = i
        E[i, 0, 0] = pa * E[i - 1, 0, 0] + E[i - 1, 0, 1]
        for t in range(1, tmax + 1):
            E[i, 0, t] = (
                one_over_2p * E[i - 1, 0, t - 1]
                + pa * E[i - 1, 0, t]
                + (t + 1) * (E[i - 1, 0, t + 1] if t + 1 <= i - 1 else 0.0)
            )
    # build up j for every i
    for j in range(1, lb + 1):
        for i in range(la + 1):
            tmax = i + j
            E[i, j, 0] = pb * E[i, j - 1, 0] + E[i, j - 1, 1]
            for t in range(1, tmax + 1):
                E[i, j, t] = (
                    one_over_2p * E[i, j - 1, t - 1]
                    + pb * E[i, j - 1, t]
                    + (t + 1) * (E[i, j - 1, t + 1] if t + 1 <= i + j - 1 else 0.0)
                )
    return E


def hermite_index(lmax: int) -> list[tuple[int, int, int]]:
    """Flattened (t, u, v) index list with t+u+v <= lmax, in fixed order."""
    idx = []
    for t in range(lmax + 1):
        for u in range(lmax + 1 - t):
            for v in range(lmax + 1 - t - u):
                idx.append((t, u, v))
    return idx


def r_tensor(lmax: int, p: float, pq: np.ndarray) -> np.ndarray:
    """Hermite Coulomb integrals ``R_{tuv}`` with t+u+v <= lmax.

    Parameters
    ----------
    lmax:
        Maximum total Hermite order.
    p:
        The composite exponent (``p`` for nuclear attraction with the
        nucleus at distance PQ; ``p q / (p + q)`` for ERIs).
    pq:
        The 3-vector from the composite center to the other center.

    Returns
    -------
    R of shape (lmax+1, lmax+1, lmax+1); entries with t+u+v > lmax are 0.
    """
    x, y, z = (float(c) for c in pq)
    r2 = x * x + y * y + z * z
    fm = boys(lmax, p * r2)
    # R^{(n)}_{000} = (-2p)^n F_n
    rn = np.empty((lmax + 1, lmax + 1, lmax + 1, lmax + 1))
    # layer n stored at rn[n]; fill by downward n so recursion only reads n+1
    scale = 1.0
    base = np.zeros((lmax + 1, lmax + 1, lmax + 1, lmax + 1))
    for n in range(lmax + 1):
        base[n, 0, 0, 0] = scale * fm[n]
        scale *= -2.0 * p
    rn = base
    for total in range(1, lmax + 1):
        for n in range(lmax - total, -1, -1):
            for t in range(total + 1):
                for u in range(total - t + 1):
                    v = total - t - u
                    if t > 0:
                        val = x * rn[n + 1, t - 1, u, v]
                        if t > 1:
                            val += (t - 1) * rn[n + 1, t - 2, u, v]
                    elif u > 0:
                        val = y * rn[n + 1, t, u - 1, v]
                        if u > 1:
                            val += (u - 1) * rn[n + 1, t, u - 2, v]
                    else:
                        val = z * rn[n + 1, t, u, v - 1]
                        if v > 1:
                            val += (v - 1) * rn[n + 1, t, u, v - 2]
                    rn[n, t, u, v] = val
    return rn[0]


def r_tensor_batch(lmax: int, ps: np.ndarray, pqs: np.ndarray) -> np.ndarray:
    """Hermite Coulomb integrals for a whole batch of composite centers.

    The batched equivalent of :func:`r_tensor`: one Boys-function sweep
    over every argument (``boys_array``), then the same upward recursion
    with each (n, t, u, v) entry holding a length-``nq`` vector.  The
    recursion loop count is independent of the batch size, so the Python
    overhead is amortized over all primitive quartets of a shell quartet.

    Parameters
    ----------
    lmax:
        Maximum total Hermite order (shared by the batch).
    ps:
        Composite exponents, shape (nq,).
    pqs:
        Composite-center difference vectors, shape (nq, 3).

    Returns
    -------
    R of shape (nq, lmax+1, lmax+1, lmax+1); entries with t+u+v > lmax
    are 0.
    """
    ps = np.asarray(ps, dtype=float).ravel()
    pqs = np.asarray(pqs, dtype=float).reshape(-1, 3)
    nq = ps.size
    x, y, z = pqs[:, 0], pqs[:, 1], pqs[:, 2]
    r2 = x * x + y * y + z * z
    fm = boys_array(lmax, ps * r2)  # (nq, lmax+1)
    # batch axis last so each recursion entry is one contiguous vector
    rn = np.zeros((lmax + 1, lmax + 1, lmax + 1, lmax + 1, nq))
    scale = np.ones(nq)
    for n in range(lmax + 1):
        rn[n, 0, 0, 0] = scale * fm[:, n]
        scale = scale * (-2.0 * ps)
    for total in range(1, lmax + 1):
        for n in range(lmax - total, -1, -1):
            for t in range(total + 1):
                for u in range(total - t + 1):
                    v = total - t - u
                    if t > 0:
                        val = x * rn[n + 1, t - 1, u, v]
                        if t > 1:
                            val = val + (t - 1) * rn[n + 1, t - 2, u, v]
                    elif u > 0:
                        val = y * rn[n + 1, t, u - 1, v]
                        if u > 1:
                            val = val + (u - 1) * rn[n + 1, t, u - 2, v]
                    else:
                        val = z * rn[n + 1, t, u, v - 1]
                        if v > 1:
                            val = val + (v - 1) * rn[n + 1, t, u, v - 2]
                    rn[n, t, u, v] = val
    return np.moveaxis(rn[0], -1, 0)
