"""Shell-pair data caching and the batched McMurchie-Davidson ERI kernel.

GTFock's central performance idea (Sec II-C/III of the paper) is that
everything density-*independent* about a shell pair -- Gaussian product
exponents, product centers, contraction prefactors, and the Hermite
E-coefficient tensors -- should be computed *once per basis* and then
amortized over every quartet that pair participates in.  The seed
implementation (:func:`repro.integrals.eri_md.eri_shell_quartet`)
recomputes all of it for bra and ket on every call, and then walks the
bra x ket primitive pairs in a Python loop.

Two pieces fix that:

* :class:`PairData` / :class:`ShellPairData` -- the per-pair primitive
  records stacked into contiguous ndarrays, built lazily and cached per
  ordered shell-pair index so each pair is expanded exactly once.
* :func:`eri_shell_quartet_batched` -- the quartet kernel that flattens
  the bra x ket primitive loops: one vectorized Boys/``r_tensor_batch``
  evaluation over *all* primitive quartets at once and a single einsum
  contraction, instead of one ``r_tensor`` + einsum per primitive pair.

Numerics are identical to the per-primitive path up to floating-point
summation order (agreement far below 1e-10; see tests/test_pairdata.py).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.chem.basis.shells import Shell, cartesian_components
from repro.integrals.eri_md import finalize_quartet
from repro.integrals.hermite import e_coefficients, hermite_index, r_tensor_batch

_TWO_PI_52 = 2.0 * math.pi**2.5


@dataclass(frozen=True)
class PairData:
    """Stacked density-independent primitive data for one shell pair.

    All arrays share the leading primitive-pair axis of length
    ``npp = nprim_a * nprim_b``.
    """

    la: int
    lb: int
    #: contraction coefficient products ``c_a c_b``, shape (npp,)
    coef: np.ndarray
    #: composite exponents ``p = a + b``, shape (npp,)
    p: np.ndarray
    #: Gaussian product centers ``P``, shape (npp, 3)
    P: np.ndarray
    #: E tensors stacked, shape (npp, ncart_a, ncart_b, nherm)
    E: np.ndarray
    #: flattened Hermite (t, u, v) indices, each shape (nherm,)
    tt: np.ndarray
    uu: np.ndarray
    vv: np.ndarray

    @property
    def npp(self) -> int:
        """Number of primitive pairs."""
        return int(self.p.size)

    @property
    def nbytes(self) -> int:
        """Memory held by the stacked arrays."""
        return sum(
            arr.nbytes for arr in (self.coef, self.p, self.P, self.E,
                                   self.tt, self.uu, self.vv)
        )


def build_pair_data(sh_a: Shell, sh_b: Shell) -> PairData:
    """Expand one shell pair into its stacked primitive records.

    This is the stacked-ndarray equivalent of the seed's per-call
    ``_pair_hermite``; the E tensor of each primitive pair lands in one
    slice of a single (npp, ncart_a, ncart_b, nherm) array.
    """
    la, lb = sh_a.l, sh_b.l
    lab = la + lb
    comps_a = cartesian_components(la)
    comps_b = cartesian_components(lb)
    hidx = hermite_index(lab)
    tt = np.array([h[0] for h in hidx])
    uu = np.array([h[1] for h in hidx])
    vv = np.array([h[2] for h in hidx])
    ax = np.array([c[0] for c in comps_a])
    ay = np.array([c[1] for c in comps_a])
    az = np.array([c[2] for c in comps_a])
    bx = np.array([c[0] for c in comps_b])
    by = np.array([c[1] for c in comps_b])
    bz = np.array([c[2] for c in comps_b])
    A, B = sh_a.center, sh_b.center
    npp = sh_a.nprim * sh_b.nprim
    coef = np.empty(npp)
    p = np.empty(npp)
    P = np.empty((npp, 3))
    E = np.empty((npp, len(comps_a), len(comps_b), len(hidx)))
    i = 0
    for a, ca in zip(sh_a.exps, sh_a.norm_coefs):
        for b, cb in zip(sh_b.exps, sh_b.norm_coefs):
            pp = a + b
            coef[i] = ca * cb
            p[i] = pp
            P[i] = (a * A + b * B) / pp
            ex = e_coefficients(la, lb, a, b, float(A[0] - B[0]))
            ey = e_coefficients(la, lb, a, b, float(A[1] - B[1]))
            ez = e_coefficients(la, lb, a, b, float(A[2] - B[2]))
            E[i] = (
                ex[ax[:, None, None], bx[None, :, None], tt[None, None, :]]
                * ey[ay[:, None, None], by[None, :, None], uu[None, None, :]]
                * ez[az[:, None, None], bz[None, :, None], vv[None, None, :]]
            )
            i += 1
    return PairData(la=la, lb=lb, coef=coef, p=p, P=P, E=E, tt=tt, uu=uu, vv=vv)


class ShellPairData:
    """Per-basis cache of :class:`PairData`, built once per ordered pair.

    Keys are ordered shell-index pairs ``(i, j)`` -- the E tensor of
    ``(j, i)`` is not a plain transpose of ``(i, j)``, so the two
    orientations are cached independently.  With the canonical-quartet
    ordering used by every Fock builder, only the ``i >= j`` half is ever
    materialized in practice.
    """

    def __init__(self, basis: BasisSet):
        self.basis = basis
        self._pairs: dict[tuple[int, int], PairData] = {}
        #: number of pair expansions actually performed (tests/metrics)
        self.pairs_built = 0

    def get(self, i: int, j: int) -> PairData:
        """The stacked pair data for shells ``(i, j)``, computed once."""
        key = (i, j)
        data = self._pairs.get(key)
        if data is None:
            from repro.obs.profile import PHASE_PAIRDATA, get_profiler

            with get_profiler().phase(PHASE_PAIRDATA):
                shells = self.basis.shells
                data = build_pair_data(shells[i], shells[j])
            self._pairs[key] = data
            self.pairs_built += 1
        return data

    def __len__(self) -> int:
        return len(self._pairs)

    @property
    def nbytes(self) -> int:
        """Total memory held by all cached pair records."""
        return sum(d.nbytes for d in self._pairs.values())


@dataclass(frozen=True)
class StackedPairs:
    """Unique shell pairs of one angular-momentum class, stacked.

    The cross-quartet analogue of :class:`PairData`: all arrays gain a
    leading *pair-slot* axis of length ``npairs`` so a whole class batch
    can gather its bra (or ket) primitive data with one fancy-index read
    (see :mod:`repro.integrals.class_batch`).  Stacking requires every
    member pair to share ``(la, lb, npp)`` -- guaranteed by the class
    key.
    """

    la: int
    lb: int
    #: contraction coefficient products, shape (npairs, npp)
    coef: np.ndarray
    #: composite exponents, shape (npairs, npp)
    p: np.ndarray
    #: Gaussian product centers, shape (npairs, npp, 3)
    P: np.ndarray
    #: E tensors, shape (npairs, npp, ncart_a, ncart_b, nherm)
    E: np.ndarray
    #: flattened Hermite (t, u, v) indices shared by the class, (nherm,)
    tt: np.ndarray
    uu: np.ndarray
    vv: np.ndarray

    @property
    def npairs(self) -> int:
        return int(self.p.shape[0])

    @property
    def npp(self) -> int:
        """Primitive pairs per shell pair (uniform across the stack)."""
        return int(self.p.shape[1])

    @property
    def nbytes(self) -> int:
        return sum(
            arr.nbytes for arr in (self.coef, self.p, self.P, self.E,
                                   self.tt, self.uu, self.vv)
        )


def stack_pairs(
    cache: ShellPairData, pairs: list[tuple[int, int]]
) -> StackedPairs:
    """Stack the :class:`PairData` of ``pairs`` into one contiguous block.

    ``pairs`` must be non-empty and class-uniform (same ``la``, ``lb``,
    and primitive-pair count); the per-pair records come from (and are
    memoized in) ``cache``.
    """
    if not pairs:
        raise ValueError("cannot stack an empty pair list")
    records = [cache.get(i, j) for i, j in pairs]
    first = records[0]
    for rec in records[1:]:
        if (rec.la, rec.lb, rec.npp) != (first.la, first.lb, first.npp):
            raise ValueError("stack_pairs requires class-uniform pairs")
    return StackedPairs(
        la=first.la,
        lb=first.lb,
        coef=np.stack([r.coef for r in records]),
        p=np.stack([r.p for r in records]),
        P=np.stack([r.P for r in records]),
        E=np.stack([r.E for r in records]),
        tt=first.tt,
        uu=first.uu,
        vv=first.vv,
    )


def eri_shell_quartet_batched(
    sh_a: Shell,
    sh_b: Shell,
    sh_c: Shell,
    sh_d: Shell,
    bra: PairData | None = None,
    ket: PairData | None = None,
) -> np.ndarray:
    """The ERI block ``(ab|cd)`` via one batched primitive evaluation.

    Drop-in equivalent of
    :func:`repro.integrals.eri_md.eri_shell_quartet`: same shapes, same
    normalization, same spherical handling.  Pass precomputed ``bra`` /
    ``ket`` :class:`PairData` (e.g. from a :class:`ShellPairData` cache)
    to skip the per-call pair expansion entirely.
    """
    if bra is None:
        bra = build_pair_data(sh_a, sh_b)
    if ket is None:
        ket = build_pair_data(sh_c, sh_d)
    lmax = bra.la + bra.lb + ket.la + ket.lb
    nb, nk = bra.npp, ket.npp

    # composite Gaussian data over all nb*nk primitive quartets
    pb = bra.p[:, None]
    qk = ket.p[None, :]
    psum = pb + qk
    alpha = pb * qk / psum
    pq_vec = bra.P[:, None, :] - ket.P[None, :, :]
    r = r_tensor_batch(lmax, alpha.ravel(), pq_vec.reshape(-1, 3))

    # gather R at summed Hermite indices: (nq, nherm_bra, nherm_ket)
    ket_sign = (-1.0) ** (ket.tt + ket.uu + ket.vv)
    rmat = (
        r[
            :,
            bra.tt[:, None] + ket.tt[None, :],
            bra.uu[:, None] + ket.uu[None, :],
            bra.vv[:, None] + ket.vv[None, :],
        ]
        * ket_sign[None, None, :]
    ).reshape(nb, nk, bra.tt.size, ket.tt.size)
    pref = bra.coef[:, None] * ket.coef[None, :] * _TWO_PI_52 / (
        pb * qk * np.sqrt(psum)
    )
    out = np.einsum(
        "xabi,xyij,ycdj,xy->abcd", bra.E, rmat, ket.E, pref, optimize=True
    )
    return finalize_quartet(out, (sh_a, sh_b, sh_c, sh_d))
