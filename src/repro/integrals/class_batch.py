"""Cross-quartet, class-batched ERI evaluation and J/K contraction.

PR 2's batched kernel removed the per-*primitive* Python loop but still
walks shell quartets one at a time: ``build_jk`` pays interpreter and
einsum-dispatch overhead per quartet, exactly the loop structure the
MPI/OpenMP Xeon Phi HF restructure (arxiv 1708.00033) targets.  This
module restructures the loop the same way:

* **Class plan** (:func:`build_class_plan`): Schwarz-surviving canonical
  quartets are grouped by angular-momentum class -- the tuple
  ``(la, lb, lc, ld, pure flags, npp_bra, npp_ket)`` that fixes every
  array shape of the MD kernel.  Each class stacks the unique bra/ket
  :class:`~repro.integrals.pairdata.PairData` records into contiguous
  tensors once, and records per-quartet slots into those stacks.
* **Class-batched kernel** (one sweep per chunk): a single
  ``boys_array``/:func:`~repro.integrals.hermite.r_tensor_batch` call
  over *all* primitive quartets of up to thousands of shell quartets,
  followed by one 4-operand einsum with a leading quartet axis --
  replacing thousands of per-quartet kernel calls with a handful of
  large contractions.
* **Batched scatter** (:func:`_scatter_chunk`): quartets are sorted by
  their index-coincidence pattern, so each permutation image of a whole
  sub-batch is applied with one multi-quartet einsum against the
  gathered density blocks and one ``np.bincount`` scatter-add --
  replacing ``scatter_quartet``'s per-quartet ``np.einsum`` pair.
* **Threaded contraction** (:func:`jk_from_plan` ``threads=``): class
  chunks are dealt cost-sorted across a thread pool, each worker
  accumulating into private J/K buffers that are reduced at the end.

Numerics agree with the per-quartet paths to summation order (tests pin
<= 1e-10 elementwise across mixed s/p/d bases; the water benchmark gate
pins <= 1e-12 on J/K vs the seed kernel).
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.chem.basis.shells import (
    cartesian_components,
    component_scale,
    ncart,
    nsph,
)
from repro.integrals.hermite import r_tensor_batch
from repro.integrals.pairdata import (
    _TWO_PI_52,
    ShellPairData,
    StackedPairs,
    stack_pairs,
)
from repro.integrals.spherical import transform_matrix

#: The 8 axis permutations of an (ab|cd) block under Eq (4)'s
#: permutational symmetry.  This is the one shared definition --
#: ``repro.scf.fock`` and ``repro.integrals.engine`` import it.
EIGHT_PERMUTATIONS: tuple[tuple[int, int, int, int], ...] = (
    (0, 1, 2, 3),
    (1, 0, 2, 3),
    (0, 1, 3, 2),
    (1, 0, 3, 2),
    (2, 3, 0, 1),
    (3, 2, 0, 1),
    (2, 3, 1, 0),
    (3, 2, 1, 0),
)

#: budget (float64 elements) for the Hermite r-recursion working set of
#: one sweep; bounds peak memory and keeps chunks cache-friendly
MAX_R_WORK = 1 << 22

#: hard cap on shell quartets per chunk (index/scatter array sizes)
MAX_CHUNK_QUARTETS = 8192


def iter_canonical_quartets(sigma: np.ndarray, tau: float):
    """Canonical (M>=N, pair(MN) >= pair(PQ)) screened shell quartets.

    ``sigma`` is the shell-pair Schwarz matrix; a quartet survives iff
    ``sigma[M,N] * sigma[P,Q] > tau``.  (Moved here from
    ``repro.scf.fock`` so the class planner sits below the Fock builders
    in the import graph; ``canonical_shell_quartets`` still re-exports
    it.)
    """
    ns = sigma.shape[0]
    for m in range(ns):
        for n in range(m + 1):
            smn = sigma[m, n]
            if smn <= 0.0:
                continue
            for p in range(m + 1):
                qmax = n if p == m else p
                for q in range(qmax + 1):
                    if smn * sigma[p, q] > tau:
                        yield (m, n, p, q)


def distinct_perms(
    quartet: tuple[int, int, int, int]
) -> tuple[tuple[int, int, int, int], ...]:
    """The permutations of :data:`EIGHT_PERMUTATIONS` whose images of
    ``quartet`` are distinct, in enumeration order.

    Which images coincide depends only on the *equality pattern* of the
    four indices (which positions hold equal values), so one
    representative answers for every quartet sharing its pattern --
    that is what lets the batched scatter apply a uniform permutation
    list to a whole sub-batch.
    """
    seen: set[tuple[int, int, int, int]] = set()
    perms = []
    for perm in EIGHT_PERMUTATIONS:
        img = (quartet[perm[0]], quartet[perm[1]],
               quartet[perm[2]], quartet[perm[3]])
        if img not in seen:
            seen.add(img)
            perms.append(perm)
    return tuple(perms)


@dataclass
class ClassBatch:
    """All surviving quartets of one angular-momentum class.

    ``quartets`` rows are sorted by index-coincidence pattern so each
    ``subgroups`` entry is a contiguous ``(lo, hi, perms)`` slice whose
    members share one distinct-permutation list.
    """

    lkey: tuple[int, int, int, int]
    pure: tuple[bool, bool, bool, bool]
    #: basis-function block shape (spherical length on pure axes)
    dims: tuple[int, int, int, int]
    lmax: int
    quartets: np.ndarray  # (nq, 4) int64
    bra_slots: np.ndarray  # (nq,) into ``bra`` stacks
    ket_slots: np.ndarray
    bra: StackedPairs
    ket: StackedPairs
    subgroups: list[tuple[int, int, tuple]]
    #: estimated primitive-quartet work (thread balancing / chunking)
    cost: float
    # -- precomputed kernel constants ------------------------------------
    TT: np.ndarray = field(repr=False, default=None)
    UU: np.ndarray = field(repr=False, default=None)
    VV: np.ndarray = field(repr=False, default=None)
    ket_sign: np.ndarray = field(repr=False, default=None)
    scales: tuple = field(repr=False, default=None)
    transforms: tuple = field(repr=False, default=None)
    #: memoized store-offset resolution: (store generation, offsets)
    _store_res: tuple = field(repr=False, default=None, compare=False)

    @property
    def nq(self) -> int:
        return int(self.quartets.shape[0])

    @property
    def block_size(self) -> int:
        d = self.dims
        return d[0] * d[1] * d[2] * d[3]

    def chunk_rows(self) -> int:
        """Quartets per sweep under the :data:`MAX_R_WORK` budget."""
        per_q = self.bra.npp * self.ket.npp * (self.lmax + 1) ** 4
        return int(max(1, min(MAX_CHUNK_QUARTETS, MAX_R_WORK // max(per_q, 1))))


@dataclass
class ClassPlan:
    """The class-grouped execution plan of one screened quartet set."""

    batches: list[ClassBatch]
    nquartets: int

    def chunks(self) -> list[tuple[ClassBatch, int, int]]:
        """All ``(batch, lo, hi)`` work items, largest classes first."""
        out = []
        for batch in self.batches:
            step = batch.chunk_rows()
            for lo in range(0, batch.nq, step):
                out.append((batch, lo, min(lo + step, batch.nq)))
        return out


def _build_batch(
    basis: BasisSet, pair_cache: ShellPairData, key: tuple, quartet_list: list
) -> ClassBatch:
    la, lb, lc, ld = key[:4]
    pure = key[4:8]
    qarr = np.asarray(quartet_list, dtype=np.int64).reshape(-1, 4)
    m, n, p, q = qarr.T
    pattern = (
        (m == n).astype(np.int64)
        | ((p == q).astype(np.int64) << 1)
        | ((m == p).astype(np.int64) << 2)
        | ((m == q).astype(np.int64) << 3)
        | ((n == p).astype(np.int64) << 4)
        | ((n == q).astype(np.int64) << 5)
    )
    order = np.argsort(pattern, kind="stable")
    qarr = qarr[order]
    pattern = pattern[order]
    subgroups: list[tuple[int, int, tuple]] = []
    lo = 0
    nq = qarr.shape[0]
    while lo < nq:
        hi = lo + int(np.searchsorted(pattern[lo:], pattern[lo], side="right"))
        subgroups.append((lo, hi, distinct_perms(tuple(int(i) for i in qarr[lo]))))
        lo = hi

    def slot_pairs(cols: np.ndarray):
        slots = np.empty(nq, dtype=np.int64)
        index: dict[tuple[int, int], int] = {}
        pairs: list[tuple[int, int]] = []
        for row, (i, j) in enumerate(cols):
            pk = (int(i), int(j))
            slot = index.get(pk)
            if slot is None:
                slot = index[pk] = len(pairs)
                pairs.append(pk)
            slots[row] = slot
        return slots, pairs

    bra_slots, bra_pairs = slot_pairs(qarr[:, :2])
    ket_slots, ket_pairs = slot_pairs(qarr[:, 2:])
    bra = stack_pairs(pair_cache, bra_pairs)
    ket = stack_pairs(pair_cache, ket_pairs)

    lmax = la + lb + lc + ld
    dims = tuple(
        nsph(l) if pu else ncart(l)
        for l, pu in zip((la, lb, lc, ld), pure)
    )
    TT = bra.tt[:, None] + ket.tt[None, :]
    UU = bra.uu[:, None] + ket.uu[None, :]
    VV = bra.vv[:, None] + ket.vv[None, :]
    ket_sign = (-1.0) ** (ket.tt + ket.uu + ket.vv)
    scales = tuple(
        np.array([component_scale(*c) for c in cartesian_components(l)])
        for l in (la, lb, lc, ld)
    )
    transforms = tuple(
        transform_matrix(l) if pu else None
        for l, pu in zip((la, lb, lc, ld), pure)
    )
    cost = float(nq) * bra.npp * ket.npp * (lmax + 1) ** 4
    return ClassBatch(
        lkey=(la, lb, lc, ld), pure=pure, dims=dims, lmax=lmax,
        quartets=qarr, bra_slots=bra_slots, ket_slots=ket_slots,
        bra=bra, ket=ket, subgroups=subgroups, cost=cost,
        TT=TT, UU=UU, VV=VV, ket_sign=ket_sign,
        scales=scales, transforms=transforms,
    )


def build_class_plan(
    basis: BasisSet,
    pair_cache: ShellPairData | None,
    quartets,
) -> ClassPlan:
    """Group ``quartets`` (an iterable of shell-index 4-tuples) by class.

    ``pair_cache`` supplies (and memoizes) the stacked
    :class:`~repro.integrals.pairdata.PairData`; pass ``None`` to use a
    throwaway per-plan cache.
    """
    if pair_cache is None:
        pair_cache = ShellPairData(basis)
    shells = basis.shells
    groups: dict[tuple, list] = {}
    for quartet in quartets:
        m, n, p, q = quartet
        sa, sb, sc, sd = shells[m], shells[n], shells[p], shells[q]
        key = (
            sa.l, sb.l, sc.l, sd.l,
            sa.pure, sb.pure, sc.pure, sd.pure,
            sa.nprim * sb.nprim, sc.nprim * sd.nprim,
        )
        groups.setdefault(key, []).append(quartet)
    batches = [
        _build_batch(basis, pair_cache, key, qlist)
        for key, qlist in groups.items()
    ]
    batches.sort(key=lambda b: -b.cost)
    return ClassPlan(
        batches=batches, nquartets=sum(b.nq for b in batches)
    )


# ---------------------------------------------------------------------------
# the class-batched MD kernel
# ---------------------------------------------------------------------------


def compute_class_rows(batch: ClassBatch, rows) -> np.ndarray:
    """ERI blocks for ``rows`` of a class in one primitive sweep.

    Returns the stacked, finalized blocks of shape ``(nrows, *dims)``:
    one ``boys_array``/``r_tensor_batch`` evaluation and one einsum over
    every primitive quartet of every selected shell quartet.
    """
    bra, ket = batch.bra, batch.ket
    bs = batch.bra_slots[rows]
    ks = batch.ket_slots[rows]
    cb, pb, Pb, Eb = bra.coef[bs], bra.p[bs], bra.P[bs], bra.E[bs]
    ck, pk, Pk, Ek = ket.coef[ks], ket.p[ks], ket.P[ks], ket.E[ks]
    nq, nb = pb.shape
    nk = pk.shape[1]

    pbx = pb[:, :, None]
    qkx = pk[:, None, :]
    psum = pbx + qkx
    alpha = pbx * qkx / psum
    pq_vec = Pb[:, :, None, :] - Pk[:, None, :, :]
    r = r_tensor_batch(batch.lmax, alpha.ravel(), pq_vec.reshape(-1, 3))
    hb, hk = batch.TT.shape
    rmat = (
        (r[:, batch.TT, batch.UU, batch.VV] * batch.ket_sign[None, None, :])
        .reshape(nq, nb, nk, hb, hk)
    )
    pref = (
        cb[:, :, None] * ck[:, None, :] * _TWO_PI_52
        / (pbx * qkx * np.sqrt(psum))
    )
    # the 4-operand contraction sum_{x,y,i,j} Eb R Ek pref as two batched
    # matmuls (BLAS; no per-call einsum path search): fold pref into R,
    # then (ab, xi) @ (xi, yj) @ (yj, cd)
    rp = rmat * pref[:, :, :, None, None]
    na, nb_c = Eb.shape[2], Eb.shape[3]
    nc, nd = Ek.shape[2], Ek.shape[3]
    ebm = Eb.transpose(0, 2, 3, 1, 4).reshape(nq, na * nb_c, nb * hb)
    rpm = rp.transpose(0, 1, 3, 2, 4).reshape(nq, nb * hb, nk * hk)
    ekm = Ek.transpose(0, 1, 4, 2, 3).reshape(nq, nk * hk, nc * nd)
    out = np.matmul(np.matmul(ebm, rpm), ekm).reshape(nq, na, nb_c, nc, nd)
    return _finalize_class(out, batch)


def _finalize_class(out: np.ndarray, batch: ClassBatch) -> np.ndarray:
    """Batched component normalization + spherical transform.

    The stacked equivalent of
    :func:`repro.integrals.eri_md.finalize_quartet`: scales broadcast
    over the leading quartet axis; each pure axis is contracted with the
    shared solid-harmonic matrix of its angular momentum.
    """
    for axis, scale in enumerate(batch.scales):
        shape = [1, 1, 1, 1, 1]
        shape[axis + 1] = scale.size
        out *= scale.reshape(shape)
    for axis, t in enumerate(batch.transforms):
        if t is None:
            continue
        out = np.tensordot(out, t, axes=([axis + 1], [1]))
        out = np.moveaxis(out, -1, axis + 1)
    return np.ascontiguousarray(out)


# ---------------------------------------------------------------------------
# the batched J/K scatter
# ---------------------------------------------------------------------------


def _scatter_chunk(
    jflat: np.ndarray,
    kflat: np.ndarray,
    density: np.ndarray,
    starts: np.ndarray,
    batch: ClassBatch,
    blocks: np.ndarray,
    lo: int,
    hi: int,
) -> None:
    """Accumulate one chunk's stacked blocks into flat J/K buffers.

    For every distinct permutation image of each coincidence subgroup::

        J[a,b] += sum_cd (ab|cd) D[c,d]
        K[a,c] += sum_bd (ab|cd) D[b,d]

    computed as one multi-quartet einsum per image and scattered with a
    single ``np.bincount`` per matrix -- the batched replacement of
    ``scatter_quartet``'s per-quartet einsum pair.
    """
    n = density.shape[0]
    ranges = [np.arange(d) for d in batch.dims]
    for glo, ghi, perms in batch.subgroups:
        s, e = max(glo, lo), min(ghi, hi)
        if s >= e:
            continue
        blk_rows = blocks[s - lo:e - lo]
        img_q = batch.quartets[s:e]
        for perm in perms:
            pq = img_q[:, perm]
            blkp = blk_rows.transpose(
                0, perm[0] + 1, perm[1] + 1, perm[2] + 1, perm[3] + 1
            )
            ra, rb, rc, rd = (ranges[i] for i in perm)
            ai = starts[pq[:, 0]][:, None] + ra
            bi = starts[pq[:, 1]][:, None] + rb
            ci = starts[pq[:, 2]][:, None] + rc
            di = starts[pq[:, 3]][:, None] + rd
            nq = pq.shape[0]
            da, db, dc, dd = (len(r) for r in (ra, rb, rc, rd))
            # J: sum_cd (ab|cd) D[c,d] -- one batched matvec per image
            dcd = density[ci[:, :, None], di[:, None, :]]
            cj = np.matmul(
                blkp.reshape(nq, da * db, dc * dd),
                dcd.reshape(nq, dc * dd, 1),
            )
            jflat += np.bincount(
                (ai[:, :, None] * n + bi[:, None, :]).ravel(),
                weights=cj.ravel(), minlength=n * n,
            )
            # K: sum_bd (ab|cd) D[b,d] -- regroup axes to (ac, bd)
            dbd = density[bi[:, :, None], di[:, None, :]]
            ck = np.matmul(
                blkp.transpose(0, 1, 3, 2, 4).reshape(nq, da * dc, db * dd),
                dbd.reshape(nq, db * dd, 1),
            )
            kflat += np.bincount(
                (ai[:, :, None] * n + ci[:, None, :]).ravel(),
                weights=ck.ravel(), minlength=n * n,
            )


# ---------------------------------------------------------------------------
# chunk resolution: store -> LRU cache -> compute
# ---------------------------------------------------------------------------


def _store_offsets(batch: ClassBatch, store) -> np.ndarray | None:
    """Per-row store offsets for a batch, memoized per store generation."""
    res = batch._store_res
    if res is not None and res[0] == store.generation:
        return res[1]
    offs = store.offsets_for(batch.quartets)
    batch._store_res = (store.generation, offs)
    return offs


def _resolve_chunk(
    engine, batch: ClassBatch, lo: int, hi: int, store, cache
) -> tuple[np.ndarray, dict]:
    """The stacked blocks for rows ``[lo, hi)`` and where they came from.

    Resolution order per row: memory-mapped store (vectorized read of the
    whole chunk), then the engine's LRU quartet cache, then one batched
    kernel sweep over the remaining rows.  Computed rows are recorded to
    a filling store and inserted into the cache, so both layers warm up
    from the batched path exactly as they do from the per-quartet path.
    """
    nrows = hi - lo
    counts = {"computed": 0, "from_store": 0, "from_cache": 0, "rescued": 0,
              "crc_rescued": 0}
    if store is not None and store.ready:
        offs = _store_offsets(batch, store)
        if offs is not None:
            sel = offs[lo:hi]
            if (sel >= 0).all():
                blocks = store.read_stacked(sel, batch.block_size, batch.dims)
                if store.verify_reads:
                    # rows whose bytes fail the finalize-time CRC are
                    # not trusted: recompute them with the same batched
                    # kernel (bitwise-identical values, so a corrupted
                    # store never perturbs F)
                    good = store.verify_stacked(sel, blocks)
                    if not good.all():
                        bad = np.flatnonzero(~good)
                        blocks[bad] = compute_class_rows(
                            batch, np.arange(lo, hi)[bad]
                        )
                        counts["crc_rescued"] = len(bad)
                counts["from_store"] = nrows
                return blocks, counts
    rows = np.arange(lo, hi)
    blocks = None
    missing = rows
    if cache is not None and len(cache) > 0:
        blocks = np.empty((nrows,) + batch.dims)
        miss_idx = []
        for i in range(nrows):
            key = tuple(int(v) for v in batch.quartets[lo + i])
            hit = cache.get(key)
            if hit is None:
                miss_idx.append(i)
            else:
                blocks[i] = hit
        counts["from_cache"] = nrows - len(miss_idx)
        if not miss_idx:
            return blocks, counts
        missing = rows[np.asarray(miss_idx)]
    computed = compute_class_rows(batch, missing)
    counts["computed"] = len(missing)
    if engine.finite_check and not np.isfinite(computed.sum()):
        finite = np.isfinite(computed.reshape(len(missing), -1)).all(axis=1)
        for i in np.flatnonzero(~finite):
            key = tuple(int(v) for v in batch.quartets[missing[i]])
            computed[i] = engine._rescue_quartet(*key)
            counts["rescued"] += 1
    if store is not None and store.filling:
        store.record_batch(batch.quartets[missing], computed)
    if cache is not None:
        for i, row in enumerate(missing):
            key = tuple(int(v) for v in batch.quartets[row])
            cache.put(key, computed[i])
    if blocks is None:
        return computed, counts
    blocks[missing - lo] = computed
    return blocks, counts


# ---------------------------------------------------------------------------
# drivers
# ---------------------------------------------------------------------------


def resolve_jk_threads(threads: int | None) -> int:
    """Thread count for the J/K contraction (``REPRO_JK_THREADS`` default)."""
    if threads is None:
        threads = int(os.environ.get("REPRO_JK_THREADS", "1"))
    return max(1, int(threads))


#: set by :func:`interrupt_jk_threads` (a dying worker's SIGTERM handler):
#: threaded J/K workers stop between chunks instead of draining their
#: whole queue while the process is trying to exit
_JK_INTERRUPT = threading.Event()


def interrupt_jk_threads() -> None:
    """Ask in-flight threaded J/K workers to stop at the next chunk edge."""
    _JK_INTERRUPT.set()


def clear_jk_interrupt() -> None:
    _JK_INTERRUPT.clear()


class JKInterrupted(RuntimeError):
    """A threaded J/K contraction was interrupted mid-build (job teardown)."""


def _run_chunks(engine, density, chunks, starts, store, cache):
    """One worker's share: private J/K buffers + per-phase wall/cpu."""
    n = density.shape[0]
    jflat = np.zeros(n * n)
    kflat = np.zeros(n * n)
    stats = {
        "eri_wall": 0.0, "eri_cpu": 0.0, "jk_wall": 0.0, "jk_cpu": 0.0,
        "calls": 0, "computed": 0, "from_store": 0, "from_cache": 0,
        "rescued": 0, "crc_rescued": 0,
    }
    for batch, lo, hi in chunks:
        if _JK_INTERRUPT.is_set():
            raise JKInterrupted("threaded J/K interrupted between chunks")
        t0, c0 = time.perf_counter(), time.thread_time()
        blocks, counts = _resolve_chunk(engine, batch, lo, hi, store, cache)
        t1, c1 = time.perf_counter(), time.thread_time()
        _scatter_chunk(jflat, kflat, density, starts, batch, blocks, lo, hi)
        t2, c2 = time.perf_counter(), time.thread_time()
        stats["eri_wall"] += t1 - t0
        stats["eri_cpu"] += c1 - c0
        stats["jk_wall"] += t2 - t1
        stats["jk_cpu"] += c2 - c1
        stats["calls"] += 1
        for key in ("computed", "from_store", "from_cache", "rescued",
                    "crc_rescued"):
            stats[key] += counts[key]
    return jflat, kflat, stats


def jk_from_plan(
    engine,
    density: np.ndarray,
    plan: ClassPlan,
    tau: float | None = None,
    threads: int | None = None,
    use_store: bool = True,
    use_cache: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """J and K matrices from a class plan, one batched sweep per chunk.

    ``threads > 1`` deals the cost-sorted chunk list round-robin across a
    thread pool; every worker owns private J/K accumulators (reduced at
    the end) plus private phase timings, which are folded into the active
    profiler as one ``eri_quartets``/``jk_contraction`` sample per chunk
    -- spans per class batch, never per quartet.
    """
    from repro.obs.profile import PHASE_ERI, PHASE_JK, get_profiler

    basis = engine.basis
    n = basis.nbf
    starts = basis.offsets[:-1].astype(np.int64)
    store = getattr(engine, "integral_store", None) if use_store else None
    cache = getattr(engine, "quartet_cache", None) if use_cache else None
    chunks = plan.chunks()
    nthreads = resolve_jk_threads(threads)
    prof = get_profiler()

    if nthreads <= 1 or len(chunks) <= 1:
        jflat = np.zeros(n * n)
        kflat = np.zeros(n * n)
        totals = {"computed": 0, "from_store": 0, "from_cache": 0,
                  "rescued": 0, "crc_rescued": 0}
        eri_span = prof.phase(PHASE_ERI)
        jk_span = prof.phase(PHASE_JK)
        for batch, lo, hi in chunks:
            with eri_span:
                blocks, counts = _resolve_chunk(
                    engine, batch, lo, hi, store, cache
                )
            with jk_span:
                _scatter_chunk(
                    jflat, kflat, density, starts, batch, blocks, lo, hi
                )
            for key in totals:
                totals[key] += counts[key]
        engine.last_jk_worker_stats = []
    else:
        shares: list[list] = [[] for _ in range(nthreads)]
        for i, chunk in enumerate(chunks):  # chunks are cost-sorted
            shares[i % nthreads].append(chunk)
        shares = [s for s in shares if s]
        with ThreadPoolExecutor(max_workers=len(shares)) as pool:
            results = list(pool.map(
                lambda share: _run_chunks(
                    engine, density, share, starts, store, cache
                ),
                shares,
            ))
        jflat = np.zeros(n * n)
        kflat = np.zeros(n * n)
        totals = {"computed": 0, "from_store": 0, "from_cache": 0,
                  "rescued": 0, "crc_rescued": 0}
        for jp, kp, stats in results:
            jflat += jp
            kflat += kp
            prof.add_sample(
                PHASE_ERI, stats["eri_wall"], stats["eri_cpu"], stats["calls"]
            )
            prof.add_sample(
                PHASE_JK, stats["jk_wall"], stats["jk_cpu"], stats["calls"]
            )
            for key in totals:
                totals[key] += stats[key]
        engine.last_jk_worker_stats = [stats for (_, _, stats) in results]

    engine.quartets_computed += totals["computed"]
    engine.quartets_served_from_cache += totals["from_cache"]
    if store is not None:
        engine.quartets_served_from_store += totals["from_store"]
        engine.crc_rescues += totals["crc_rescued"]
        if store.filling and store.pending_blocks:
            store.finalize(tau)
    return jflat.reshape(n, n), kflat.reshape(n, n)


def jk_for_quartets(
    engine,
    density: np.ndarray,
    quartets,
    threads: int | None = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """J/K contribution of an explicit quartet list, class-batched.

    Used by the multiprocessing Fock workers: each worker groups its
    task chunk's quartets into a throwaway plan and runs the same
    batched sweep + scatter.  The quartet tuples may be in any index
    order (the coincidence-pattern scatter handles arbitrary tuples);
    the store and LRU layers are bypassed because worker-side fills
    would be lost with the forked process anyway.
    """
    pair_cache = getattr(engine, "pair_cache", None)
    plan = build_class_plan(engine.basis, pair_cache, quartets)
    return jk_from_plan(
        engine, density, plan, threads=threads,
        use_store=False, use_cache=False,
    )
