"""Brute-force dense J/K reference: no symmetry, no screening.

Loops all ``nshells^4`` quartets; exponentially slower than the
production path but with no shared logic beyond the quartet engine, so it
independently validates symmetry exploitation and screening.  Test use
only -- keep the systems tiny.
"""

from __future__ import annotations

import numpy as np

from repro.integrals.engine import ERIEngine


def dense_fock_reference(
    engine: ERIEngine, density: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """(J, K) from the full unsymmetrized quartet sum.

    ``J_ij = sum_kl (ij|kl) D_kl`` and ``K_ij = sum_kl (ik|jl) D_kl``
    evaluated by enumerating every (M, N, P, Q) shell combination.
    """
    basis = engine.basis
    n = basis.nbf
    j = np.zeros((n, n))
    k = np.zeros((n, n))
    ns = basis.nshells
    slices = basis.shell_slices
    for m in range(ns):
        for nn in range(ns):
            for p in range(ns):
                for q in range(ns):
                    blk = engine.quartet(m, nn, p, q)
                    sm, sn, sp, sq = slices[m], slices[nn], slices[p], slices[q]
                    j[sm, sn] += np.einsum("abcd,cd->ab", blk, density[sp, sq])
                    k[sm, sp] += np.einsum("abcd,bd->ac", blk, density[sn, sq])
    return j, k
