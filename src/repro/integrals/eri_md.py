"""Electron repulsion integrals via the McMurchie-Davidson scheme.

Shell quartets are the minimal unit of ERI work (Sec II-C of the paper):
:func:`eri_shell_quartet` returns the 4-D block ``(MN|PQ)`` for four
shells, in chemists' notation

``(ab|cd) = \\iint a(r1) b(r1) 1/r12 c(r2) d(r2) dr1 dr2``.

The implementation expands each bra/ket charge distribution in Hermite
Gaussians (the E coefficients), reducing the quartet to the bilinear form
``E_bra^T R E_ket`` over Hermite indices, evaluated with NumPy einsum per
primitive quartet.
"""

from __future__ import annotations

import math

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.chem.basis.shells import Shell, cartesian_components, component_scale
from repro.integrals.hermite import e_coefficients, hermite_index, r_tensor
from repro.integrals.spherical import apply_transforms


def _pair_hermite(sh_a: Shell, sh_b: Shell):
    """Precompute Hermite expansion data for a shell pair (one electron side).

    Returns a list of primitive-pair records ``(coef, p, P, E)`` where E
    has shape (ncart_a, ncart_b, n_hermite) over the flattened (t, u, v)
    index with t+u+v <= la+lb, plus the flattened index arrays.
    """
    la, lb = sh_a.l, sh_b.l
    lab = la + lb
    comps_a = cartesian_components(la)
    comps_b = cartesian_components(lb)
    hidx = hermite_index(lab)
    tt = np.array([h[0] for h in hidx])
    uu = np.array([h[1] for h in hidx])
    vv = np.array([h[2] for h in hidx])
    ax = np.array([c[0] for c in comps_a])
    ay = np.array([c[1] for c in comps_a])
    az = np.array([c[2] for c in comps_a])
    bx = np.array([c[0] for c in comps_b])
    by = np.array([c[1] for c in comps_b])
    bz = np.array([c[2] for c in comps_b])
    A, B = sh_a.center, sh_b.center
    records = []
    for a, ca in zip(sh_a.exps, sh_a.norm_coefs):
        for b, cb in zip(sh_b.exps, sh_b.norm_coefs):
            p = a + b
            P = (a * A + b * B) / p
            ex = e_coefficients(la, lb, a, b, float(A[0] - B[0]))
            ey = e_coefficients(la, lb, a, b, float(A[1] - B[1]))
            ez = e_coefficients(la, lb, a, b, float(A[2] - B[2]))
            E = (
                ex[ax[:, None, None], bx[None, :, None], tt[None, None, :]]
                * ey[ay[:, None, None], by[None, :, None], uu[None, None, :]]
                * ez[az[:, None, None], bz[None, :, None], vv[None, None, :]]
            )
            records.append((ca * cb, p, P, E))
    return records, (tt, uu, vv)


def finalize_quartet(out: np.ndarray, shells: tuple[Shell, Shell, Shell, Shell]) -> np.ndarray:
    """Component normalization + spherical transform of a Cartesian block.

    Shared tail of the per-primitive and batched quartet kernels so both
    produce identically normalized blocks.
    """
    for axis, sh in enumerate(shells):
        scales = np.array(
            [component_scale(*c) for c in cartesian_components(sh.l)]
        )
        shape = [1, 1, 1, 1]
        shape[axis] = len(scales)
        out *= scales.reshape(shape)
    return apply_transforms(out, shells)


def eri_shell_quartet(
    sh_a: Shell, sh_b: Shell, sh_c: Shell, sh_d: Shell
) -> np.ndarray:
    """The ERI block ``(ab|cd)`` with basis-function shape.

    Shape is ``(nbf_a, nbf_b, nbf_c, nbf_d)`` -- spherical lengths for
    pure shells, Cartesian otherwise.
    """
    bra, (tb, ub, vb) = _pair_hermite(sh_a, sh_b)
    ket, (tk, uk, vk) = _pair_hermite(sh_c, sh_d)
    lmax = sh_a.l + sh_b.l + sh_c.l + sh_d.l
    ket_sign = (-1.0) ** (tk + uk + vk)

    na, nb = len(cartesian_components(sh_a.l)), len(cartesian_components(sh_b.l))
    nc, nd = len(cartesian_components(sh_c.l)), len(cartesian_components(sh_d.l))
    out = np.zeros((na, nb, nc, nd))
    two_pi_52 = 2.0 * math.pi**2.5
    for cab, p, P, Eab in bra:
        for ccd, q, Q, Ecd in ket:
            alpha = p * q / (p + q)
            r = r_tensor(lmax, alpha, P - Q)
            rmat = (
                r[
                    tb[:, None] + tk[None, :],
                    ub[:, None] + uk[None, :],
                    vb[:, None] + vk[None, :],
                ]
                * ket_sign[None, :]
            )
            pref = cab * ccd * two_pi_52 / (p * q * math.sqrt(p + q))
            out += pref * np.einsum(
                "abi,ij,cdj->abcd", Eab, rmat, Ecd, optimize=True
            )

    return finalize_quartet(out, (sh_a, sh_b, sh_c, sh_d))


def eri_tensor(basis: BasisSet) -> np.ndarray:
    """Full ERI tensor (nbf^4) for small systems.

    Exploits the 8-fold permutational symmetry of Eq (4): each unique
    shell quartet is computed once and scattered to all equivalent
    positions.  Memory is O(nbf^4) -- use only for validation-scale
    molecules.
    """
    n = basis.nbf
    eri = np.zeros((n, n, n, n))
    ns = basis.nshells
    for m in range(ns):
        sm = basis.shell_slice(m)
        for nsh in range(m + 1):
            sn = basis.shell_slice(nsh)
            for p in range(m + 1):
                sp = basis.shell_slice(p)
                qmax = nsh if p == m else p
                for q in range(qmax + 1):
                    sq = basis.shell_slice(q)
                    blk = eri_shell_quartet(
                        basis.shells[m],
                        basis.shells[nsh],
                        basis.shells[p],
                        basis.shells[q],
                    )
                    eri[sm, sn, sp, sq] = blk
                    eri[sn, sm, sp, sq] = blk.transpose(1, 0, 2, 3)
                    eri[sm, sn, sq, sp] = blk.transpose(0, 1, 3, 2)
                    eri[sn, sm, sq, sp] = blk.transpose(1, 0, 3, 2)
                    eri[sp, sq, sm, sn] = blk.transpose(2, 3, 0, 1)
                    eri[sq, sp, sm, sn] = blk.transpose(3, 2, 0, 1)
                    eri[sp, sq, sn, sm] = blk.transpose(2, 3, 1, 0)
                    eri[sq, sp, sn, sm] = blk.transpose(3, 2, 1, 0)
    return eri
