"""Cauchy-Schwarz screening bounds (Sec II-D of the paper).

The bound ``|(ij|kl)| <= sqrt((ij|ij)) sqrt((kl|kl))`` lets the Fock build
skip shell quartets whose estimate falls below a drop tolerance tau.  The
*shell pair value* is

``sigma(M,N) = max_{i in M, j in N} sqrt((ij|ij))``

so that a quartet (MN|PQ) may be skipped when
``sigma(M,N) * sigma(P,Q) < tau``.

Two evaluation paths:

* :func:`schwarz_matrix` -- exact: computes the diagonal quartet
  ``(MN|MN)`` for every shell pair.  O(nshells^2) quartets; fine for
  validation-scale molecules.
* :func:`schwarz_model` -- paper-scale model: the exact *diagonal* values
  ``sigma(M,M)`` combined with the Gaussian-product decay
  ``exp(-mu r_MN^2)`` of the most diffuse primitives, which is the factor
  that actually drives the distance screening (the ERI prefactor of the
  bra charge distribution).  Fully vectorized: O(nshells^2) array work.
"""

from __future__ import annotations


import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.integrals.pairdata import build_pair_data, eri_shell_quartet_batched


def pair_bound(basis: BasisSet, m: int, n: int) -> float:
    """Exact shell-pair value sigma(M,N) from the diagonal quartet.

    Evaluated on the batched primitive kernel with the (M,N) pair data
    built once and shared between bra and ket -- screening setup used to
    cost as much as a visible slice of the whole J/K build on the seed
    per-primitive kernel.
    """
    sh_m, sh_n = basis.shells[m], basis.shells[n]
    pd = build_pair_data(sh_m, sh_n)
    block = eri_shell_quartet_batched(sh_m, sh_n, sh_m, sh_n, bra=pd, ket=pd)
    nm, nn = sh_m.nbf, sh_n.nbf
    diag = np.abs(np.einsum("ijij->ij", block.reshape(nm, nn, nm, nn)))
    return float(np.sqrt(diag.max()))


def schwarz_matrix(basis: BasisSet) -> np.ndarray:
    """Exact sigma(M,N) for all shell pairs, shape (nshells, nshells)."""
    ns = basis.nshells
    sigma = np.zeros((ns, ns))
    for m in range(ns):
        for n in range(m + 1):
            v = pair_bound(basis, m, n)
            sigma[m, n] = sigma[n, m] = v
    return sigma


def schwarz_model(basis: BasisSet) -> np.ndarray:
    """Model sigma(M,N): exact diagonals + Gaussian-product distance decay.

    ``sigma(M,N) ~= sqrt(sigma(M,M) sigma(N,N)) * exp(-mu_MN r_MN^2)``
    with ``mu_MN = e_M e_N / (e_M + e_N)`` over the most diffuse primitive
    exponents.  This is exact for the r=0 diagonal and reproduces the
    asymptotic decay of the true bound, which is what determines the
    significant sets Phi(M) the parallel algorithm is built on.
    """
    ns = basis.nshells
    diag = np.array([pair_bound(basis, m, m) for m in range(ns)])
    e = basis.min_exponents()
    centers = basis.centers
    mu = e[:, None] * e[None, :] / (e[:, None] + e[None, :])
    diff = centers[:, None, :] - centers[None, :, :]
    r2 = np.einsum("mnd,mnd->mn", diff, diff)
    sigma = np.sqrt(diag[:, None] * diag[None, :]) * np.exp(-mu * r2)
    return sigma


def screening_stats(sigma: np.ndarray, tau: float) -> dict:
    """Summary statistics of a screening matrix for reports."""
    ns = sigma.shape[0]
    sig_max = float(sigma.max())
    significant = sigma >= tau / sig_max
    return {
        "nshells": ns,
        "sigma_max": sig_max,
        "n_significant_pairs": int(np.count_nonzero(significant)),
        "fraction_significant": float(np.count_nonzero(significant)) / (ns * ns),
    }


def unique_significant_quartet_count(sigma: np.ndarray, tau: float) -> int:
    """Number of unique shell quartets surviving screening (Table II column).

    Counts canonical quartets (M>=N, P>=Q... sorted pair ordering) with
    ``sigma(M,N) sigma(P,Q) >= tau``, exploiting the 8-fold symmetry the
    way the paper counts "Unique Shell Quartets".  Vectorized via sorting:
    for each canonical bra pair value v, counts canonical ket pairs with
    value >= tau / v that do not precede the bra pair.
    """
    ns = sigma.shape[0]
    iu, ju = np.triu_indices(ns)
    vals = sigma[iu, ju]
    keep = vals > 1e-300  # avoid overflow in tau / value for denormals
    vals = vals[keep]
    npair = vals.size
    if npair == 0:
        return 0
    # pair ids in canonical order 0..npair-1 (bra <= ket avoids double count)
    order = np.argsort(vals)
    sorted_vals = vals[order]
    rank_of = np.empty(npair, dtype=np.int64)
    rank_of[order] = np.arange(npair)
    # count, for each bra pair b (by original id), ket pairs k >= b with
    # vals[k] >= tau / vals[b].  Equivalent: over sorted values, pairs
    # (b, k) with product >= tau, b <= k by *pair id*; we instead count by
    # value ordering and correct: count unordered {b,k} with product >= tau
    # (including b == k), which is identical to counting with any fixed
    # total order on pairs.
    thresholds = tau / sorted_vals
    idx = np.searchsorted(sorted_vals, thresholds, side="left")
    counts = npair - idx  # pairs k (all) with product >= tau, per b
    total_ordered = int(counts.sum())
    diag = int(np.count_nonzero(sorted_vals * sorted_vals >= tau))
    # unordered pairs including b == k
    return (total_ordered - diag) // 2 + diag
