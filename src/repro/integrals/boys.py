"""The Boys function F_m(x), the radial kernel of all Coulomb integrals.

``F_m(x) = \\int_0^1 t^{2m} exp(-x t^2) dt``

Every electron-repulsion and nuclear-attraction integral reduces, through
the McMurchie-Davidson scheme, to linear combinations of Boys-function
values, so both accuracy and speed matter here.

Three evaluation paths are provided:

* :func:`boys` -- production path: the highest order is evaluated via the
  regularized lower incomplete gamma function (small/moderate x) or the
  asymptotic form (large x), and lower orders follow from the stable
  *downward* recursion ``F_m = (2x F_{m+1} + e^{-x}) / (2m+1)``.
* :func:`boys_series` -- Taylor/convergent series reference for small x.
* :func:`boys_quadrature` -- brute-force numerical quadrature used only in
  tests as an independent cross-check.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special

#: Beyond this argument the asymptotic form is accurate to machine precision.
_ASYMPTOTIC_X = 35.0


def boys_single(m: int, x: float) -> float:
    """F_m(x) for one order and one argument (scalar convenience path)."""
    return float(boys(m, x)[m])


def boys(mmax: int, x: float) -> np.ndarray:
    """Boys function values ``F_0(x) .. F_mmax(x)`` as a length-(mmax+1) array.

    Parameters
    ----------
    mmax:
        Highest order needed (total angular momentum of the integral).
    x:
        Non-negative argument.
    """
    if mmax < 0:
        raise ValueError(f"mmax must be >= 0, got {mmax}")
    if x < 0:
        raise ValueError(f"Boys argument must be >= 0, got {x}")
    out = np.empty(mmax + 1)
    if x < 1e-13:
        # F_m(0) = 1 / (2m + 1)
        out[:] = 1.0 / (2.0 * np.arange(mmax + 1) + 1.0)
        return out
    if x > _ASYMPTOTIC_X:
        # F_m(x) ~ (2m-1)!! / 2^{m+1} * sqrt(pi / x^{2m+1}); exp(-x) negligible
        top = _boys_asymptotic(mmax, x)
    else:
        # F_m(x) = Gamma(m+1/2) * P(m+1/2, x) / (2 x^{m+1/2})
        a = mmax + 0.5
        top = special.gamma(a) * special.gammainc(a, x) / (2.0 * x**a)
    out[mmax] = top
    emx = math.exp(-x)
    for m in range(mmax - 1, -1, -1):
        out[m] = (2.0 * x * out[m + 1] + emx) / (2.0 * m + 1.0)
    return out


def boys_array(mmax: int, xs: np.ndarray) -> np.ndarray:
    """Vectorized Boys: shape (len(xs), mmax+1).

    Used by batched one-electron integrals where many arguments share one
    order range.
    """
    xs = np.asarray(xs, dtype=float)
    if np.any(xs < 0):
        raise ValueError("Boys arguments must be >= 0")
    n = xs.size
    out = np.empty((n, mmax + 1))
    flat = xs.ravel()

    small = flat < 1e-13
    large = flat > _ASYMPTOTIC_X
    mid = ~(small | large)

    ms = np.arange(mmax + 1)
    if small.any():
        out[small] = 1.0 / (2.0 * ms + 1.0)
    a = mmax + 0.5
    top = np.empty(n)
    if mid.any():
        xm = flat[mid]
        top[mid] = special.gamma(a) * special.gammainc(a, xm) / (2.0 * xm**a)
    if large.any():
        xl = flat[large]
        top[large] = _boys_asymptotic_vec(mmax, xl)
    filled = ~small
    if filled.any():
        out[filled, mmax] = top[filled]
        emx = np.exp(-flat[filled])
        xf = flat[filled]
        for m in range(mmax - 1, -1, -1):
            out[filled, m] = (2.0 * xf * out[filled, m + 1] + emx) / (2.0 * m + 1.0)
    return out


def boys_series(m: int, x: float, terms: int = 200) -> float:
    """Convergent series: F_m(x) = e^{-x} sum_k (2m-1)!! (2x)^k / (2m+2k+1)!!.

    Reference implementation; converges for all x but is slow for large x.
    """
    acc = 0.0
    term = 1.0 / (2.0 * m + 1.0)
    for k in range(terms):
        acc += term
        term *= 2.0 * x / (2.0 * m + 2.0 * k + 3.0)
        if term < 1e-18 * max(acc, 1.0):
            break
    return math.exp(-x) * acc


def boys_quadrature(m: int, x: float, npts: int = 20001) -> float:
    """Direct numerical quadrature of the defining integral (tests only)."""
    t = np.linspace(0.0, 1.0, npts)
    y = t ** (2 * m) * np.exp(-x * t * t)
    return float(np.trapezoid(y, t))


def _boys_asymptotic(mmax: int, x: float) -> float:
    dfact = 1.0
    for k in range(1, mmax + 1):
        dfact *= 2 * k - 1
    return dfact / 2.0 ** (mmax + 1) * math.sqrt(math.pi / x ** (2 * mmax + 1))


def _boys_asymptotic_vec(mmax: int, xs: np.ndarray) -> np.ndarray:
    dfact = 1.0
    for k in range(1, mmax + 1):
        dfact *= 2 * k - 1
    return dfact / 2.0 ** (mmax + 1) * np.sqrt(math.pi / xs ** (2 * mmax + 1))
